// Copyright (c) memflow authors. MIT license.
//
// Tests for the fault-tolerance layer: GF(2^8) field axioms (property-swept),
// Reed–Solomon encode/reconstruct under every loss pattern, and the
// Carbink-style span store (packing, redundancy schemes, recovery,
// compaction).

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "ft/gf256.h"
#include "ft/reed_solomon.h"
#include "ft/span_store.h"
#include "simhw/presets.h"

namespace memflow::ft {
namespace {

// --- GF(256) field axioms -----------------------------------------------------

TEST(Gf256Test, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, 1), x);
    EXPECT_EQ(GfMul(x, 0), 0);
  }
}

TEST(Gf256Test, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, GfInv(x)), 1) << a;
    EXPECT_EQ(GfDiv(GfMul(x, 77), 77), x) << a;
  }
}

TEST(Gf256Test, MultiplicationCommutesAndAssociates) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.Below(256));
    const auto b = static_cast<std::uint8_t>(rng.Below(256));
    const auto c = static_cast<std::uint8_t>(rng.Below(256));
    EXPECT_EQ(GfMul(a, b), GfMul(b, a));
    EXPECT_EQ(GfMul(GfMul(a, b), c), GfMul(a, GfMul(b, c)));
  }
}

TEST(Gf256Test, DistributesOverAddition) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.Below(256));
    const auto b = static_cast<std::uint8_t>(rng.Below(256));
    const auto c = static_cast<std::uint8_t>(rng.Below(256));
    EXPECT_EQ(GfMul(a, GfAdd(b, c)), GfAdd(GfMul(a, b), GfMul(a, c)));
  }
}

TEST(Gf256Test, ExpGeneratesWholeField) {
  std::set<std::uint8_t> seen;
  for (int p = 0; p < 255; ++p) {
    seen.insert(GfExp(p));
  }
  EXPECT_EQ(seen.size(), 255u);  // generator hits every nonzero element
}

TEST(Gf256Test, MulAccumMatchesScalar) {
  Rng rng(7);
  std::vector<std::uint8_t> src(97);
  std::vector<std::uint8_t> dst(97);
  for (auto& b : src) {
    b = static_cast<std::uint8_t>(rng.Below(256));
  }
  for (auto& b : dst) {
    b = static_cast<std::uint8_t>(rng.Below(256));
  }
  auto expected = dst;
  const std::uint8_t coeff = 173;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] = GfAdd(expected[i], GfMul(src[i], coeff));
  }
  GfMulAccum(dst.data(), src.data(), coeff, src.size());
  EXPECT_EQ(dst, expected);
}

// --- Matrix inversion -----------------------------------------------------------

TEST(GfMatrixTest, InvertIdentity) {
  std::vector<std::uint8_t> m = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  ASSERT_TRUE(GfInvertMatrix(m, 3).ok());
  EXPECT_EQ(m, (std::vector<std::uint8_t>{1, 0, 0, 0, 1, 0, 0, 0, 1}));
}

TEST(GfMatrixTest, InverseTimesOriginalIsIdentity) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4;
    std::vector<std::uint8_t> m(16);
    for (auto& b : m) {
      b = static_cast<std::uint8_t>(rng.Below(256));
    }
    auto inv = m;
    if (!GfInvertMatrix(inv, n).ok()) {
      continue;  // singular random matrix; skip
    }
    // Multiply m * inv, expect identity.
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        std::uint8_t sum = 0;
        for (int k = 0; k < n; ++k) {
          sum = GfAdd(sum, GfMul(m[static_cast<std::size_t>(r * n + k)],
                                 inv[static_cast<std::size_t>(k * n + c)]));
        }
        EXPECT_EQ(sum, r == c ? 1 : 0);
      }
    }
  }
}

TEST(GfMatrixTest, SingularDetected) {
  std::vector<std::uint8_t> m = {1, 2, 2, 4};  // row2 = 2*row1 in GF(256)
  EXPECT_FALSE(GfInvertMatrix(m, 2).ok());
}

// --- Reed-Solomon ------------------------------------------------------------------

struct RsParam {
  int k;
  int m;
};

class ReedSolomonParamTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonParamTest, SurvivesEveryLossPatternUpToM) {
  const auto [k, m] = GetParam();
  constexpr std::size_t kLen = 257;  // odd on purpose
  ReedSolomon rs(k, m);

  Rng rng(static_cast<std::uint64_t>(k * 100 + m));
  std::vector<std::vector<std::uint8_t>> original(static_cast<std::size_t>(k + m),
                                                  std::vector<std::uint8_t>(kLen));
  for (int i = 0; i < k; ++i) {
    for (auto& b : original[static_cast<std::size_t>(i)]) {
      b = static_cast<std::uint8_t>(rng.Below(256));
    }
  }
  std::vector<std::span<const std::uint8_t>> data;
  std::vector<std::span<std::uint8_t>> parity;
  for (int i = 0; i < k; ++i) {
    data.emplace_back(original[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < m; ++j) {
    parity.emplace_back(original[static_cast<std::size_t>(k + j)]);
  }
  ASSERT_TRUE(rs.Encode(data, parity).ok());

  // Erase every single shard, then random pairs up to m shards.
  Rng pick(99);
  for (int trial = 0; trial < 40; ++trial) {
    const int losses = 1 + static_cast<int>(pick.Below(static_cast<std::uint64_t>(m)));
    std::vector<bool> present(static_cast<std::size_t>(k + m), true);
    auto shards = original;
    for (int l = 0; l < losses; ++l) {
      const auto victim = static_cast<std::size_t>(pick.Below(static_cast<std::uint64_t>(k + m)));
      present[victim] = false;
      std::fill(shards[victim].begin(), shards[victim].end(), 0xEE);
    }
    ASSERT_TRUE(rs.Reconstruct(shards, present).ok());
    for (int i = 0; i < k + m; ++i) {
      EXPECT_EQ(shards[static_cast<std::size_t>(i)], original[static_cast<std::size_t>(i)])
          << "shard " << i << " trial " << trial;
    }
  }
}

TEST_P(ReedSolomonParamTest, TooManyLossesDetected) {
  const auto [k, m] = GetParam();
  constexpr std::size_t kLen = 64;
  ReedSolomon rs(k, m);
  std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m),
                                                std::vector<std::uint8_t>(kLen, 1));
  std::vector<bool> present(static_cast<std::size_t>(k + m), true);
  for (int i = 0; i <= m; ++i) {
    present[static_cast<std::size_t>(i)] = false;  // m+1 losses
  }
  EXPECT_EQ(rs.Reconstruct(shards, present).code(), StatusCode::kDataLoss);
}

INSTANTIATE_TEST_SUITE_P(Configs, ReedSolomonParamTest,
                         ::testing::Values(RsParam{2, 1}, RsParam{4, 2}, RsParam{8, 3},
                                           RsParam{10, 4}, RsParam{3, 3}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "m" +
                                  std::to_string(info.param.m);
                         });

TEST(ReedSolomonTest, NoLossIsNoOp) {
  ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> shards(6, std::vector<std::uint8_t>(32, 7));
  std::vector<bool> present(6, true);
  EXPECT_TRUE(rs.Reconstruct(shards, present).ok());
}

TEST(ReedSolomonTest, MismatchedShardCountRejected) {
  ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> shards(5, std::vector<std::uint8_t>(32));
  std::vector<bool> present(5, true);
  EXPECT_EQ(rs.Reconstruct(shards, present).code(), StatusCode::kInvalidArgument);
}

// --- SpanStore -----------------------------------------------------------------------

class SpanStoreTest : public ::testing::TestWithParam<Redundancy> {
 protected:
  SpanStoreTest()
      : handles_(simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 12})),
        regions_(*handles_.cluster) {}

  StoreOptions Options() {
    StoreOptions o;
    o.scheme = GetParam();
    o.replicas = 3;
    o.rs_data = 4;
    o.rs_parity = 2;
    o.span_bytes = 16 * kKiB;
    return o;
  }

  std::vector<std::uint8_t> RandomBlob(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> blob(n);
    for (auto& b : blob) {
      b = static_cast<std::uint8_t>(rng.Below(256));
    }
    return blob;
  }

  simhw::DisaggHandles handles_;
  region::RegionManager regions_;
};

TEST_P(SpanStoreTest, PutGetRoundTrip) {
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], Options());
  const auto blob = RandomBlob(50000, 1);  // spans multiple spans
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store.Get(*id, out).ok());
  EXPECT_EQ(out, blob);
}

TEST_P(SpanStoreTest, ManySmallObjectsPackIntoSpans) {
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], Options());
  std::vector<ObjectId> ids;
  std::vector<std::vector<std::uint8_t>> blobs;
  for (int i = 0; i < 50; ++i) {
    blobs.push_back(RandomBlob(1000 + static_cast<std::size_t>(i) * 37, 100 + i));
    auto id = store.Put(blobs.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(store.Flush().ok());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.Get(ids[i], out).ok());
    EXPECT_EQ(out, blobs[i]) << i;
  }
}

TEST_P(SpanStoreTest, UnflushedObjectsReadableFromStaging) {
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], Options());
  const auto blob = RandomBlob(100, 3);
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store.Get(*id, out).ok());  // no Flush yet
  EXPECT_EQ(out, blob);
}

TEST_P(SpanStoreTest, FootprintMatchesScheme) {
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], Options());
  // Fill exactly 8 spans worth of data so EC groups are complete.
  const auto blob = RandomBlob(8 * 16 * kKiB, 4);
  ASSERT_TRUE(store.Put(blob).ok());
  ASSERT_TRUE(store.Flush().ok());
  const StoreFootprint fp = store.footprint();
  EXPECT_EQ(fp.user_bytes, blob.size());
  switch (GetParam()) {
    case Redundancy::kNone:
      EXPECT_NEAR(fp.overhead(), 1.0, 0.05);
      break;
    case Redundancy::kReplication:
      EXPECT_NEAR(fp.overhead(), 3.0, 0.1);
      break;
    case Redundancy::kErasureCoding:
      EXPECT_NEAR(fp.overhead(), 1.5, 0.1);  // (4+2)/4
      break;
  }
}

TEST_P(SpanStoreTest, DeleteThenCompactReclaims) {
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], Options());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 32; ++i) {
    auto id = store.Put(RandomBlob(8 * kKiB, 200 + i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(store.Flush().ok());
  const StoreFootprint before = store.footprint();

  // Delete 3 of every 4 objects, keep the survivors' contents.
  std::vector<std::pair<ObjectId, std::vector<std::uint8_t>>> keep;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 4 == 0) {
      std::vector<std::uint8_t> blob;
      ASSERT_TRUE(store.Get(ids[i], blob).ok());
      keep.emplace_back(ids[i], std::move(blob));
    } else {
      ASSERT_TRUE(store.Delete(ids[i]).ok());
    }
  }
  auto report = store.Compact();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->units_rewritten, 0);
  EXPECT_GT(report->bytes_reclaimed, 0u);
  const StoreFootprint after = store.footprint();
  EXPECT_LT(after.raw_bytes, before.raw_bytes);

  // Survivors still intact after compaction moved them.
  for (const auto& [id, blob] : keep) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.Get(id, out).ok());
    EXPECT_EQ(out, blob);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SpanStoreTest,
                         ::testing::Values(Redundancy::kNone, Redundancy::kReplication,
                                           Redundancy::kErasureCoding),
                         [](const auto& info) {
                           return std::string(RedundancyName(info.param)) == "erasure-coding"
                                      ? "ec"
                                      : std::string(RedundancyName(info.param));
                         });

// --- Failure / recovery ----------------------------------------------------------------

class SpanStoreFailureTest : public ::testing::Test {
 protected:
  SpanStoreFailureTest()
      : handles_(simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 12})),
        regions_(*handles_.cluster) {}

  simhw::DisaggHandles handles_;
  region::RegionManager regions_;
};

std::vector<std::uint8_t> Blob(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> blob(n);
  for (auto& b : blob) {
    b = static_cast<std::uint8_t>(rng.Below(256));
  }
  return blob;
}

TEST_F(SpanStoreFailureTest, SingleCopyLosesDataOnCrash) {
  StoreOptions o;
  o.scheme = Redundancy::kNone;
  o.span_bytes = 16 * kKiB;
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], o);
  const auto blob = Blob(40000, 1);
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());

  // Crash the node hosting the first span (round-robin device 0).
  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[0]).ok());
  auto report = store.HandleDeviceFailure(handles_.far_mem[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->objects_lost, 1);
  std::vector<std::uint8_t> out;
  EXPECT_EQ(store.Get(*id, out).code(), StatusCode::kDataLoss);
}

TEST_F(SpanStoreFailureTest, ReplicationSurvivesCrashAndReprotects) {
  StoreOptions o;
  o.scheme = Redundancy::kReplication;
  o.replicas = 3;
  o.span_bytes = 16 * kKiB;
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], o);
  const auto blob = Blob(60000, 2);
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());

  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[1]).ok());
  auto report = store.HandleDeviceFailure(handles_.far_mem[1]);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects_lost, 0);

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store.Get(*id, out).ok());
  EXPECT_EQ(out, blob);

  // A second, different crash after re-protection must also be survivable.
  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[2]).ok());
  ASSERT_TRUE(store.HandleDeviceFailure(handles_.far_mem[2]).ok());
  ASSERT_TRUE(store.Get(*id, out).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(SpanStoreFailureTest, ErasureCodingReconstructsOnDegradedRead) {
  StoreOptions o;
  o.scheme = Redundancy::kErasureCoding;
  o.rs_data = 4;
  o.rs_parity = 2;
  o.span_bytes = 16 * kKiB;
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], o);
  const auto blob = Blob(4 * 16 * kKiB, 3);  // one full spanset
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());

  // Crash a data-shard node but do NOT run recovery: Get must still work via
  // on-the-fly reconstruction.
  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[0]).ok());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store.Get(*id, out).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(SpanStoreFailureTest, ErasureCodingRecoversUpToParityCount) {
  StoreOptions o;
  o.scheme = Redundancy::kErasureCoding;
  o.rs_data = 4;
  o.rs_parity = 2;
  o.span_bytes = 16 * kKiB;
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], o);
  const auto blob = Blob(4 * 16 * kKiB, 4);
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());

  // Two simultaneous node losses (== parity count).
  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[0]).ok());
  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[1]).ok());
  auto r1 = store.HandleDeviceFailure(handles_.far_mem[0]);
  auto r2 = store.HandleDeviceFailure(handles_.far_mem[1]);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->objects_lost + r2->objects_lost, 0);
  EXPECT_GE(r1->spans_repaired + r2->spans_repaired, 2);

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store.Get(*id, out).ok());
  EXPECT_EQ(out, blob);

  // And the data is re-protected: a third crash is still survivable.
  ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[2]).ok());
  ASSERT_TRUE(store.HandleDeviceFailure(handles_.far_mem[2]).ok());
  ASSERT_TRUE(store.Get(*id, out).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(SpanStoreFailureTest, ErasureCodingBeyondParityLosesData) {
  StoreOptions o;
  o.scheme = Redundancy::kErasureCoding;
  o.rs_data = 4;
  o.rs_parity = 2;
  o.span_bytes = 16 * kKiB;
  SpanStore store(regions_, handles_.far_mem, handles_.cpus[0], o);
  const auto blob = Blob(4 * 16 * kKiB, 5);
  auto id = store.Put(blob);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());

  // Three simultaneous losses (> m=2) without recovery in between.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(handles_.cluster->CrashNode(handles_.memory_node_ids[i]).ok());
  }
  auto report = store.HandleDeviceFailure(handles_.far_mem[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->objects_lost, 1);
}

TEST_F(SpanStoreFailureTest, ReplicationUsesMoreMemoryThanEc) {
  // The Carbink trade-off: EC ~1.5x vs replication 3x footprint.
  StoreOptions repl;
  repl.scheme = Redundancy::kReplication;
  repl.replicas = 3;
  repl.span_bytes = 16 * kKiB;
  StoreOptions ec;
  ec.scheme = Redundancy::kErasureCoding;
  ec.rs_data = 4;
  ec.rs_parity = 2;
  ec.span_bytes = 16 * kKiB;

  SpanStore a(regions_, handles_.far_mem, handles_.cpus[0], repl);
  SpanStore b(regions_, handles_.far_mem, handles_.cpus[0], ec);
  const auto blob = Blob(4 * 16 * kKiB, 6);
  ASSERT_TRUE(a.Put(blob).ok());
  ASSERT_TRUE(b.Put(blob).ok());
  ASSERT_TRUE(a.Flush().ok());
  ASSERT_TRUE(b.Flush().ok());
  EXPECT_GT(a.footprint().overhead(), b.footprint().overhead() * 1.7);
}

TEST_F(SpanStoreFailureTest, OffloadedParityKeepsClientPathCheap) {
  StoreOptions offload;
  offload.scheme = Redundancy::kErasureCoding;
  offload.rs_data = 4;
  offload.rs_parity = 2;
  offload.span_bytes = 16 * kKiB;
  offload.offload_parity = true;
  StoreOptions inline_parity = offload;
  inline_parity.offload_parity = false;

  SpanStore a(regions_, handles_.far_mem, handles_.cpus[0], offload);
  SpanStore b(regions_, handles_.far_mem, handles_.cpus[0], inline_parity);
  const auto blob = Blob(8 * 16 * kKiB, 7);
  ASSERT_TRUE(a.Put(blob).ok());
  ASSERT_TRUE(a.Flush().ok());
  ASSERT_TRUE(b.Put(blob).ok());
  ASSERT_TRUE(b.Flush().ok());
  EXPECT_LT(a.total_cost().ns, b.total_cost().ns);
  EXPECT_GT(a.background_cost().ns, 0);
}

}  // namespace
}  // namespace memflow::ft
