// Copyright (c) memflow authors. MIT license.
//
// Tests for the critical-path analyzer (DESIGN.md §11): hand-built DAGs with
// known critical paths, the exact-attribution contract (buckets sum to the
// makespan), fingerprint stability across host worker counts, trace-ring
// overflow surfacing, and the trace instants every placement fallback path
// must emit.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "region/region_manager.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/analyze/analyzer.h"
#include "telemetry/analyze/doctor.h"
#include "telemetry/export.h"
#include "testing/workload.h"

namespace memflow::telemetry::analyze {
namespace {

using dataflow::Job;
using dataflow::JobOptions;
using dataflow::TaskId;
using dataflow::TaskProperties;
using memflow::testing::Producer;
using memflow::testing::SummingConsumer;
using memflow::testing::WideJob;

class AnalyzeTest : public ::testing::Test {
 protected:
  AnalyzeTest() : host_(simhw::MakeCxlExpansionHost()) {}

  rts::RuntimeOptions Options() {
    rts::RuntimeOptions o;
    o.registry = &registry_;
    o.tracer = &tracer_;
    return o;
  }

  static std::vector<std::string> PathNames(const JobProfile& profile) {
    std::vector<std::string> names;
    names.reserve(profile.critical_path.size());
    for (const CriticalStep& step : profile.critical_path) {
      names.push_back(step.name);
    }
    return names;
  }

  // Runs the job and returns its verified profile: analyzable, complete, and
  // with the six buckets summing exactly to the reported makespan.
  JobProfile RunAndProfile(rts::Runtime& rt, Job job) {
    auto report = rt.SubmitAndRun(std::move(job));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->status.ok()) << report->status.ToString();
    auto profile = AnalyzeJob(tracer_, report->id.value);
    EXPECT_TRUE(profile.ok()) << profile.status().ToString();
    EXPECT_TRUE(profile->complete);
    EXPECT_EQ(profile->status, "ok");
    EXPECT_EQ(profile->makespan.ns, report->Makespan().ns);
    EXPECT_EQ(profile->attribution.Sum().ns, profile->makespan.ns);
    EXPECT_EQ(profile->attribution.unattributed.ns, 0);
    return *profile;
  }

  simhw::CxlHostHandles host_;
  Registry registry_;
  TraceBuffer tracer_;
};

// --- hand-built DAGs: exact path membership + attribution sums ---------------

TEST_F(AnalyzeTest, ChainCriticalPathCoversEveryTask) {
  rts::Runtime rt(*host_.cluster, Options());
  Job job("chain");
  const TaskId a = job.AddTask("a", {}, Producer(512));
  const TaskId b = job.AddTask("b", {}, SummingConsumer());
  const TaskId c = job.AddTask("c", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());

  const JobProfile profile = RunAndProfile(rt, std::move(job));
  // Every task of a chain is critical, in source -> sink order.
  EXPECT_EQ(PathNames(profile), (std::vector<std::string>{"a", "b", "c"}));
  for (const TaskNode& node : profile.tasks) {
    EXPECT_TRUE(node.on_critical_path) << node.name;
    EXPECT_TRUE(node.has_span) << node.name;
  }
  // Compute dominates an uncontended chain; nothing may be unexplained.
  EXPECT_GT(profile.attribution.compute.ns, 0);
}

// Wraps a body so it charges `extra` virtual time on top of its real work —
// a branch that is genuinely slower, not just hinted slower to the placer.
dataflow::TaskFn Slowed(dataflow::TaskFn inner, SimDuration extra) {
  return [inner = std::move(inner), extra](dataflow::TaskContext& ctx) -> Status {
    ctx.Charge(extra);
    return inner(ctx);
  };
}

TEST_F(AnalyzeTest, DiamondPicksTheSlowBranch) {
  rts::Runtime rt(*host_.cluster, Options());
  Job job("diamond");
  const TaskId src = job.AddTask("src", {}, Producer(512));
  const TaskId slow =
      job.AddTask("slow", {}, Slowed(SummingConsumer(), SimDuration::Micros(50)));
  const TaskId fast = job.AddTask("fast", {}, SummingConsumer());
  const TaskId sink = job.AddTask("sink", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(src, slow).ok());
  ASSERT_TRUE(job.Connect(src, fast).ok());
  ASSERT_TRUE(job.Connect(slow, sink).ok());
  ASSERT_TRUE(job.Connect(fast, sink).ok());

  const JobProfile profile = RunAndProfile(rt, std::move(job));
  EXPECT_EQ(PathNames(profile), (std::vector<std::string>{"src", "slow", "sink"}));
  const auto fast_node =
      std::find_if(profile.tasks.begin(), profile.tasks.end(),
                   [](const TaskNode& n) { return n.name == "fast"; });
  ASSERT_NE(fast_node, profile.tasks.end());
  EXPECT_FALSE(fast_node->on_critical_path);
}

TEST_F(AnalyzeTest, FanInFollowsTheSlowSource) {
  rts::Runtime rt(*host_.cluster, Options());
  Job job("fan-in");
  const TaskId slow =
      job.AddTask("slow-src", {}, Slowed(Producer(512), SimDuration::Micros(50)));
  const TaskId fast = job.AddTask("fast-src", {}, Producer(512));
  const TaskId sink = job.AddTask("sink", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(slow, sink).ok());
  ASSERT_TRUE(job.Connect(fast, sink).ok());

  const JobProfile profile = RunAndProfile(rt, std::move(job));
  EXPECT_EQ(PathNames(profile), (std::vector<std::string>{"slow-src", "sink"}));
  // The sink's last input came over the slow edge; per-step buckets must tile
  // the span from the slow producer's finish to the sink's finish.
  const CriticalStep& step = profile.critical_path.back();
  EXPECT_EQ(step.name, "sink");
  const auto slow_node =
      std::find_if(profile.tasks.begin(), profile.tasks.end(),
                   [](const TaskNode& n) { return n.name == "slow-src"; });
  ASSERT_NE(slow_node, profile.tasks.end());
  const auto sink_node =
      std::find_if(profile.tasks.begin(), profile.tasks.end(),
                   [](const TaskNode& n) { return n.name == "sink"; });
  ASSERT_NE(sink_node, profile.tasks.end());
  EXPECT_EQ(step.transfer_in.ns + step.stall.ns + step.queue.ns + step.compute.ns +
                step.checkpoint.ns,
            sink_node->finish.ns - slow_node->finish.ns);
}

// --- fingerprint stability across worker counts ------------------------------

std::string FingerprintAt(simhw::CxlHostHandles& host, int workers, bool serialized) {
  Registry registry;
  TraceBuffer tracer;
  rts::RuntimeOptions options;
  options.registry = &registry;
  options.tracer = &tracer;
  options.worker_threads = workers;
  rts::Runtime rt(*host.cluster, options);

  JobOptions job_options;
  if (serialized) {
    job_options.global_state_bytes = KiB(64);  // shared state serializes bodies
  }
  Job job(serialized ? "serialized" : "parallel-safe", job_options);
  const TaskId src = job.AddTask("src", {}, Producer(512));
  const TaskId sink = job.AddTask("sink", {}, SummingConsumer());
  std::vector<TaskId> mids;
  for (int i = 0; i < 4; ++i) {
    mids.push_back(job.AddTask("mid" + std::to_string(i), {}, SummingConsumer()));
  }
  for (const TaskId mid : mids) {
    EXPECT_TRUE(job.Connect(src, mid).ok());
    EXPECT_TRUE(job.Connect(mid, sink).ok());
  }

  auto report = rt.SubmitAndRun(std::move(job));
  EXPECT_TRUE(report.ok() && report->status.ok());
  auto profile = AnalyzeJob(tracer, report->id.value);
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->attribution.Sum().ns, profile->makespan.ns);
  return AttributionFingerprint(*profile);
}

TEST_F(AnalyzeTest, FingerprintIdenticalAcrossWorkerCounts) {
  for (const bool serialized : {false, true}) {
    const std::string base = FingerprintAt(host_, 1, serialized);
    EXPECT_FALSE(base.empty());
    for (const int workers : {2, 8}) {
      EXPECT_EQ(FingerprintAt(host_, workers, serialized), base)
          << (serialized ? "serialized" : "parallel-safe") << " at " << workers
          << " workers";
    }
  }
}

// --- queue-wait shows up under contention ------------------------------------

TEST_F(AnalyzeTest, ContentionChargesQueueWait) {
  rts::RuntimeOptions options = Options();
  options.policy = rts::PlacementPolicyKind::kFirstFit;  // pile onto one device
  rts::Runtime rt(*host_.cluster, options);
  std::vector<dataflow::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = rt.Submit(WideJob("contend" + std::to_string(i), 6));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(rt.RunToCompletion().ok());

  std::int64_t total_queue = 0;
  for (const dataflow::JobId id : ids) {
    auto profile = AnalyzeJob(tracer_, id.value);
    ASSERT_TRUE(profile.ok()) << profile.status().ToString();
    EXPECT_EQ(profile->attribution.Sum().ns, profile->makespan.ns);
    EXPECT_EQ(profile->attribution.unattributed.ns, 0);
    total_queue += profile->attribution.queue.ns;
  }
  // Four six-wide jobs racing for the same first-fit device must wait.
  EXPECT_GT(total_queue, 0);
}

// --- analyzer error handling -------------------------------------------------

TEST_F(AnalyzeTest, MissingJobSpanIsNotFound) {
  auto profile = AnalyzeJob(tracer_, 999);
  EXPECT_FALSE(profile.ok());
  EXPECT_EQ(profile.status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzeTest, TracedJobsListsCompletedJobsAscending) {
  rts::Runtime rt(*host_.cluster, Options());
  for (int i = 0; i < 3; ++i) {
    Job job("j" + std::to_string(i));
    const TaskId p = job.AddTask("p", {}, Producer(64));
    const TaskId c = job.AddTask("c", {}, SummingConsumer());
    ASSERT_TRUE(job.Connect(p, c).ok());
    ASSERT_TRUE(rt.SubmitAndRun(std::move(job)).ok());
  }
  EXPECT_EQ(TracedJobs(tracer_), (std::vector<std::uint32_t>{1, 2, 3}));
}

// --- trace-ring overflow is surfaced everywhere ------------------------------

TEST_F(AnalyzeTest, RingOverflowSurfacedInSummaryDoctorAndMetrics) {
  TraceBuffer tiny(64);  // guaranteed to wrap under a 12-wide job
  rts::RuntimeOptions options;
  options.registry = &registry_;
  options.tracer = &tiny;
  rts::Runtime rt(*host_.cluster, options);
  auto report = rt.SubmitAndRun(WideJob("overflow", 12));
  ASSERT_TRUE(report.ok() && report->status.ok());

  ASSERT_GT(tiny.dropped(), 0u);
  ASSERT_FALSE(tiny.DroppedByTrack().empty());

  // The summary carries the banner and the per-track breakdown.
  const std::string summary = RenderTraceSummary(tiny);
  EXPECT_NE(summary.find("WARNING"), std::string::npos);
  EXPECT_NE(summary.find("profile incomplete"), std::string::npos);
  EXPECT_NE(summary.find("dropped on"), std::string::npos);

  // The profile knows it is truncated and the doctor says so.
  auto profile = AnalyzeJob(tiny, report->id.value);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(profile->dropped_events, 0u);
  EXPECT_FALSE(profile->complete);
  EXPECT_EQ(profile->attribution.Sum().ns, profile->makespan.ns);
  const std::string doctor = RenderJobDoctor(*profile);
  EXPECT_NE(doctor.find("WARNING"), std::string::npos);
  EXPECT_NE(doctor.find("profile incomplete"), std::string::npos);

  // The drop counters land in the metrics exporters.
  PublishTraceHealth(tiny, registry_);
  const std::string prometheus = registry_.Snapshot().ToPrometheus();
  EXPECT_NE(prometheus.find("trace_buffer_events_dropped_total"), std::string::npos);
  EXPECT_NE(prometheus.find("trace_buffer_events_dropped{"), std::string::npos);
}

// --- every placement fallback path emits a trace instant ---------------------

constexpr region::Principal kAlice{1, 10};
constexpr region::Principal kMallory{2, 20};

std::size_t CountInstants(const TraceBuffer& tracer, std::string_view name) {
  std::size_t n = 0;
  for (const TraceEvent& event : tracer.Events()) {
    if (event.type == TraceEventType::kInstant && event.name == name) {
      ++n;
    }
  }
  return n;
}

region::RegionManager::AllocRequest MakeRequest(std::uint64_t size,
                                                region::Properties props,
                                                simhw::ComputeDeviceId observer,
                                                region::Principal owner = kAlice) {
  region::RegionManager::AllocRequest r;
  r.size = size;
  r.props = props;
  r.observer = observer;
  r.owner = owner;
  return r;
}

TEST_F(AnalyzeTest, AllocationFailureEmitsFallbackInstant) {
  simhw::VirtualClock clock;
  region::RegionManager mgr(*host_.cluster, {}, 0x5eedULL, &registry_);
  mgr.BindTrace(&clock, &tracer_);

  auto r = mgr.Allocate(MakeRequest(std::uint64_t{1} << 60, {}, host_.cpu));
  EXPECT_FALSE(r.ok());
  EXPECT_GE(CountInstants(tracer_, "placement fallback: allocation failed"), 1u);
}

TEST_F(AnalyzeTest, LatencyRelaxEmitsFallbackInstant) {
  simhw::VirtualClock clock;
  region::PlacementConfig config;
  config.allow_latency_relax = true;
  region::RegionManager mgr(*host_.cluster, config, 0x5eedULL, &registry_);
  mgr.BindTrace(&clock, &tracer_);

  region::Properties p;
  p.persistent = true;
  p.latency = region::LatencyClass::kLow;  // no persistent device is that fast
  auto r = mgr.Allocate(MakeRequest(MiB(1), p, host_.cpu));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(CountInstants(tracer_, "placement fallback: latency relaxed"), 1u);
}

TEST_F(AnalyzeTest, ConfidentialityDenialEmitsInstant) {
  simhw::VirtualClock clock;
  region::RegionManager mgr(*host_.cluster, {}, 0x5eedULL, &registry_);
  mgr.BindTrace(&clock, &tracer_);

  region::Properties p;
  p.confidential = true;
  auto id = mgr.Allocate(MakeRequest(KiB(64), p, host_.cpu));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_FALSE(mgr.OpenSync(*id, kMallory, host_.cpu).ok());
  EXPECT_FALSE(mgr.Transfer(*id, kMallory, kAlice, host_.cpu).ok());
  EXPECT_GE(CountInstants(tracer_, "confidentiality denial"), 2u);
}

TEST_F(AnalyzeTest, FragmentationFallthroughEmitsInstantAndCounter) {
  // A one-DIMM cluster so the ranked candidate list is exactly {dram}: after
  // alternating frees, free bytes pass the capacity check but no contiguous
  // extent exists, forcing the fragmentation fallthrough path.
  simhw::Cluster cluster;
  const simhw::NodeId node = cluster.AddNode("frag-host");
  const simhw::ComputeDeviceId cpu =
      cluster.AddCompute(node, simhw::ComputeDeviceKind::kCPU, "cpu");
  const simhw::MemoryDeviceId dram =
      cluster.AddMemory(node, simhw::MemoryDeviceKind::kDRAM, MiB(512), "dram");
  cluster.Link(cluster.VertexOf(cpu), cluster.VertexOf(dram), simhw::LinkKind::kMemBus);

  simhw::VirtualClock clock;
  region::RegionManager mgr(cluster, {}, 0x5eedULL, &registry_);
  mgr.BindTrace(&clock, &tracer_);

  std::vector<region::RegionId> slots;
  for (int i = 0; i < 8; ++i) {
    auto id = mgr.AllocateOn(dram, MiB(64), {}, kAlice);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    slots.push_back(*id);
  }
  for (std::size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(mgr.Release(slots[i], kAlice).ok());
  }

  // 256 MiB free in non-adjacent 64 MiB holes: ranking admits dram, the
  // extent allocator refuses, and the only candidate is exhausted.
  auto r = mgr.Allocate(MakeRequest(MiB(128), {}, cpu));
  EXPECT_FALSE(r.ok());
  EXPECT_GE(CountInstants(tracer_, "placement fallback: fragmentation"), 1u);

  bool counter_seen = false;
  for (const auto& family : registry_.Snapshot().families) {
    if (family.name == "region_fragmentation_fallthroughs_total") {
      for (const auto& series : family.series) {
        counter_seen |= series.counter >= 1;
      }
    }
  }
  EXPECT_TRUE(counter_seen);
}

// --- doctor / exporter smoke over a real profile -----------------------------

TEST_F(AnalyzeTest, DoctorAndExportersAgreeOnTheProfile) {
  rts::Runtime rt(*host_.cluster, Options());
  Job job("export");
  const TaskId p = job.AddTask("produce", {}, Producer(1024));
  const TaskId c = job.AddTask("consume", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(p, c).ok());
  const JobProfile profile = RunAndProfile(rt, std::move(job));

  const std::string doctor = RenderJobDoctor(profile, ComputeWhatIfs(profile, &rt));
  EXPECT_NE(doctor.find("critical path"), std::string::npos);
  EXPECT_NE(doctor.find("produce"), std::string::npos);
  EXPECT_NE(doctor.find("consume"), std::string::npos);
  EXPECT_EQ(doctor.find("WARNING"), std::string::npos);  // nothing dropped

  const std::string json = ExportJobProfileJson(profile);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"sum_ns\""), std::string::npos);

  // The highlighted trace marks exactly the critical spans.
  const std::string trace = ExportHighlightedTraceJson(tracer_, profile);
  std::size_t highlighted = 0;
  for (std::size_t at = trace.find("\"cname\""); at != std::string::npos;
       at = trace.find("\"cname\"", at + 1)) {
    ++highlighted;
  }
  // Two critical task spans plus the flow arrow between them.
  EXPECT_GE(highlighted, profile.critical_path.size());

  // Every placement decision for the job explains itself.
  const auto& decisions = rt.PlacementLog(dataflow::JobId{profile.job});
  ASSERT_FALSE(decisions.empty());
  for (const auto& decision : decisions) {
    EXPECT_FALSE(decision.explain.candidates.empty());
    const std::string rendered = RenderPlacementDecision(decision, rt.cluster());
    EXPECT_NE(rendered.find("placement of"), std::string::npos);
  }
}

TEST(DoctorHealthTest, EmptyHistogramsRenderDashNotNan) {
  // A registered-but-never-observed latency histogram must render "-" cells,
  // never a bogus 0ns or a nan (metrics.h Quantile returns nullopt on empty).
  Registry reg;
  (void)reg.GetHistogram("rts_task_queue_wait_ns", "h", HistogramSpec{1.0, 2.0, 4});
  const std::string health = RenderRuntimeHealth(reg.Snapshot());
  EXPECT_NE(health.find("task queue wait"), std::string::npos);
  EXPECT_EQ(health.find("nan"), std::string::npos);
  EXPECT_NE(health.find("-"), std::string::npos);
}

}  // namespace
}  // namespace memflow::telemetry::analyze
