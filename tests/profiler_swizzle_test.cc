// Copyright (c) memflow authors. MIT license.
//
// Tests for the multi-level profiler (Challenge 8, limitation 1) and the
// AIFM-style swizzle cache.

#include <gtest/gtest.h>

#include <cstring>

#include "region/swizzle_cache.h"
#include "rts/profiler.h"
#include "simhw/presets.h"

namespace memflow {
namespace {

using dataflow::TaskContext;
using dataflow::TaskId;

dataflow::TaskFn Worker(double work) {
  return [work](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(KiB(64)));
    (void)out;
    ctx.ChargeCompute(work);
    return OkStatus();
  };
}

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : host_(simhw::MakeCxlExpansionHost()), rt_(*host_.cluster) {}
  simhw::CxlHostHandles host_;
  rts::Runtime rt_;
};

TEST_F(ProfilerTest, CriticalPathOfDiamondIsHeavierBranch) {
  // a -> {light, heavy} -> sink; the critical path must run through `heavy`.
  dataflow::Job job("diamond");
  const TaskId a = job.AddTask("a", {}, Worker(1e4));
  const TaskId light = job.AddTask("light", {}, Worker(1e3));
  const TaskId heavy = job.AddTask("heavy", {}, Worker(5e6));
  const TaskId sink = job.AddTask("sink", {}, Worker(1e3));
  ASSERT_TRUE(job.Connect(a, light).ok());
  ASSERT_TRUE(job.Connect(a, heavy).ok());
  ASSERT_TRUE(job.Connect(light, sink).ok());
  ASSERT_TRUE(job.Connect(heavy, sink).ok());

  auto report = rt_.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto profile = rts::ProfileJob(rt_, report->id);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  EXPECT_TRUE(profile->tasks[a.value].on_critical_path);
  EXPECT_TRUE(profile->tasks[heavy.value].on_critical_path);
  EXPECT_FALSE(profile->tasks[light.value].on_critical_path);
  EXPECT_TRUE(profile->tasks[sink.value].on_critical_path);
  // Critical path <= makespan (queueing/handover delays only add on top),
  // and total task time >= critical path.
  EXPECT_LE(profile->critical_path.ns, profile->makespan.ns);
  EXPECT_GE(profile->total_task_time.ns, profile->critical_path.ns);
}

TEST_F(ProfilerTest, ParallelEfficiencyReflectsOverlap) {
  // Two independent heavy tasks: with >=2 devices, they overlap.
  dataflow::Job job("par");
  job.AddTask("t0", {}, Worker(1e6));
  job.AddTask("t1", {}, Worker(1e6));
  auto report = rt_.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto profile = rts::ProfileJob(rt_, report->id);
  ASSERT_TRUE(profile.ok());
  EXPECT_GT(profile->parallel_efficiency, 0.0);
  EXPECT_LE(profile->parallel_efficiency, 1.01);
}

TEST_F(ProfilerTest, QueueingSeparatedFromExecution) {
  // Five independent CPU-only tasks on a device with 4 hardware queues: the
  // fifth waits, and the profiler shows nonzero queueing for at least one.
  dataflow::Job job("queue");
  dataflow::TaskProperties cpu_only;
  cpu_only.compute_device = simhw::ComputeDeviceKind::kCPU;
  for (int i = 0; i < 5; ++i) {
    job.AddTask("t" + std::to_string(i), cpu_only, Worker(1e6));
  }
  auto report = rt_.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto profile = rts::ProfileJob(rt_, report->id);
  ASSERT_TRUE(profile.ok());
  std::int64_t max_queueing = 0;
  for (const auto& line : profile->tasks) {
    max_queueing = std::max(max_queueing, line.queueing.ns);
  }
  EXPECT_GT(max_queueing, 0);
}

TEST_F(ProfilerTest, RenderContainsAllFourLevels) {
  dataflow::Job job("render");
  job.AddTask("only", {}, Worker(1e5));
  auto report = rt_.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto profile = rts::ProfileJob(rt_, report->id);
  ASSERT_TRUE(profile.ok());
  const std::string text = rts::RenderProfile(rt_, *profile);
  EXPECT_NE(text.find("level 0"), std::string::npos);
  EXPECT_NE(text.find("level 1"), std::string::npos);
  EXPECT_NE(text.find("level 2"), std::string::npos);
  EXPECT_NE(text.find("level 3"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

TEST_F(ProfilerTest, FailedJobHasNoProfile) {
  rts::RuntimeOptions options;
  options.max_task_attempts = 1;
  rts::Runtime rt(*host_.cluster, options);
  dataflow::Job job("boom");
  job.AddTask("fail", {}, [](TaskContext&) { return Internal("boom"); });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(rts::ProfileJob(rt, report->id).ok());
}

TEST_F(ProfilerTest, ChromeTraceExportsValidJson) {
  dataflow::Job job("traced");
  const TaskId a = job.AddTask("alpha", {}, Worker(1e5));
  const TaskId b = job.AddTask("beta", {}, Worker(2e5));
  ASSERT_TRUE(job.Connect(a, b).ok());
  auto report = rt_.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());

  auto trace = rts::ExportChromeTrace(rt_, report->id);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  // Structural checks: both tasks present, device lanes named, well-formed
  // bracket/braces balance (cheap JSON sanity without a parser).
  EXPECT_NE(trace->find("\"alpha\""), std::string::npos);
  EXPECT_NE(trace->find("\"beta\""), std::string::npos);
  EXPECT_NE(trace->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->find("thread_name"), std::string::npos);
  int depth = 0;
  for (const char ch : *trace) {
    if (ch == '{' || ch == '[') {
      depth++;
    }
    if (ch == '}' || ch == ']') {
      depth--;
    }
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ProfilerTest, ChromeTraceRefusedForFailedJob) {
  rts::RuntimeOptions options;
  options.max_task_attempts = 1;
  rts::Runtime rt(*host_.cluster, options);
  dataflow::Job job("boom2");
  job.AddTask("fail", {}, [](TaskContext&) { return Internal("boom"); });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(rts::ExportChromeTrace(rt, report->id).ok());
}

// --- SwizzleCache -----------------------------------------------------------------

constexpr region::Principal kOwner{5, 1};

class SwizzleCacheTest : public ::testing::Test {
 protected:
  SwizzleCacheTest() : host_(simhw::MakeCxlExpansionHost()), mgr_(*host_.cluster) {}

  region::RegionId FarRegion(std::uint64_t size) {
    auto id = mgr_.AllocateOn(host_.disagg, size, region::Properties{}, kOwner);
    MEMFLOW_CHECK(id.ok());
    return *id;
  }

  simhw::CxlHostHandles host_;
  region::RegionManager mgr_;
};

TEST_F(SwizzleCacheTest, MissThenHit) {
  const region::RegionId far = FarRegion(KiB(64));
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(16));
  auto p1 = cache.PinRange(far, 0, 256);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_TRUE(cache.UnpinRange(far, 0, 256, false).ok());
  auto p2 = cache.PinRange(far, 0, 256);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(*p1, *p2);  // same resident buffer
  const SimDuration after_miss = cache.total_cost();
  ASSERT_TRUE(cache.UnpinRange(far, 0, 256, false).ok());
  EXPECT_EQ(cache.total_cost().ns, after_miss.ns);  // hit was free
}

TEST_F(SwizzleCacheTest, DirtyWriteBackPersists) {
  const region::RegionId far = FarRegion(KiB(64));
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(16));
  {
    auto p = cache.PinRange(far, 128, 8);
    ASSERT_TRUE(p.ok());
    *static_cast<std::uint64_t*>(*p) = 0xabcdef0123456789ULL;
    ASSERT_TRUE(cache.UnpinRange(far, 128, 8, /*dirty=*/true).ok());
  }
  ASSERT_TRUE(cache.Flush().ok());
  // Read through the region directly: the write must have landed.
  auto acc = mgr_.OpenAsync(far, kOwner, host_.cpu);
  ASSERT_TRUE(acc.ok());
  std::uint64_t v = 0;
  acc->EnqueueRead(128, &v, 8);
  ASSERT_TRUE(acc->Drain().ok());
  EXPECT_EQ(v, 0xabcdef0123456789ULL);
}

TEST_F(SwizzleCacheTest, LruEvictionWritesBackDirtyVictims) {
  const region::RegionId far = FarRegion(MiB(1));
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(8));
  // Fill the cache with dirty 4 KiB entries; the third insert evicts the
  // first (LRU), which must be written back.
  for (int i = 0; i < 3; ++i) {
    auto p = cache.PinRange(far, static_cast<std::uint64_t>(i) * KiB(4), KiB(4));
    ASSERT_TRUE(p.ok());
    std::memset(*p, 0x40 + i, KiB(4));
    ASSERT_TRUE(
        cache.UnpinRange(far, static_cast<std::uint64_t>(i) * KiB(4), KiB(4), true).ok());
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_GE(cache.stats().writebacks, 1u);
  // Entry 0's bytes are on the device.
  auto acc = mgr_.OpenAsync(far, kOwner, host_.cpu);
  char buf[16];
  acc->EnqueueRead(0, buf, 16);
  ASSERT_TRUE(acc->Drain().ok());
  EXPECT_EQ(buf[0], 0x40);
}

TEST_F(SwizzleCacheTest, PinnedEntriesAreNotEvictable) {
  const region::RegionId far = FarRegion(MiB(1));
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(8));
  ASSERT_TRUE(cache.PinRange(far, 0, KiB(4)).ok());
  ASSERT_TRUE(cache.PinRange(far, KiB(4), KiB(4)).ok());  // cache now full, all pinned
  auto p = cache.PinRange(far, KiB(8), KiB(4));
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SwizzleCacheTest, OversizedRangeRejected) {
  const region::RegionId far = FarRegion(MiB(1));
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(4));
  EXPECT_EQ(cache.PinRange(far, 0, KiB(8)).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SwizzleCacheTest, RemotePtrSwizzleRoundTrip) {
  const region::RegionId far = FarRegion(KiB(64));
  // Write a known value remotely first.
  {
    auto acc = mgr_.OpenAsync(far, kOwner, host_.cpu);
    const double value = 2.71828;
    acc->EnqueueWrite(3 * sizeof(double), &value, sizeof(double));
    ASSERT_TRUE(acc->Drain().ok());
  }
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(16));
  auto ptr = region::RemotePtr<double>::Make(far, 3);
  auto cost = cache.Pin(ptr);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(cost->ns, 0);  // first touch fetched from far memory
  ASSERT_TRUE(ptr.swizzled());
  EXPECT_DOUBLE_EQ(*ptr, 2.71828);
  *ptr.raw() = 3.14159;  // mutate through the swizzled pointer
  ASSERT_TRUE(cache.Unpin(ptr, far, 3, /*dirty=*/true).ok());
  EXPECT_FALSE(ptr.swizzled());
  EXPECT_EQ(ptr.region(), far);
  ASSERT_TRUE(cache.Flush().ok());

  auto acc = mgr_.OpenAsync(far, kOwner, host_.cpu);
  double v = 0;
  acc->EnqueueRead(3 * sizeof(double), &v, sizeof(double));
  ASSERT_TRUE(acc->Drain().ok());
  EXPECT_DOUBLE_EQ(v, 3.14159);
}

TEST_F(SwizzleCacheTest, UnpinWithoutPinRejected) {
  const region::RegionId far = FarRegion(KiB(64));
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(16));
  EXPECT_EQ(cache.UnpinRange(far, 0, 64, false).code(), StatusCode::kFailedPrecondition);
}

TEST_F(SwizzleCacheTest, ConfidentialRegionsDecryptThroughCache) {
  region::Properties props;
  props.confidential = true;
  auto id = mgr_.AllocateOn(host_.disagg, KiB(4), props, kOwner);
  ASSERT_TRUE(id.ok());
  {
    auto acc = mgr_.OpenAsync(*id, kOwner, host_.cpu);
    const char secret[] = "cache sees plaintext";
    acc->EnqueueWrite(0, secret, sizeof(secret));
    ASSERT_TRUE(acc->Drain().ok());
  }
  region::SwizzleCache cache(mgr_, host_.cpu, kOwner, KiB(16));
  auto p = cache.PinRange(*id, 0, 32);
  ASSERT_TRUE(p.ok());
  EXPECT_STREQ(static_cast<const char*>(*p), "cache sees plaintext");
}

}  // namespace
}  // namespace memflow
