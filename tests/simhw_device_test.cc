// Copyright (c) memflow authors. MIT license.
//
// Tests for simulated memory devices: Table 1 profile ordering, the arena
// allocator (first-fit, coalescing), real data round-trips, the access cost
// model, and fault behaviour (volatile loss vs. persistent retention).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/units.h"
#include "simhw/compute.h"
#include "simhw/device.h"

namespace memflow::simhw {
namespace {

MemoryDevice MakeDram(std::uint64_t capacity = MiB(1)) {
  return MemoryDevice(MemoryDeviceId(0), NodeId(0), "dram",
                      DefaultProfile(MemoryDeviceKind::kDRAM), capacity);
}

// --- Table 1 profile invariants -------------------------------------------------

TEST(DeviceProfileTest, Table1LatencyOrdering) {
  // Cache < HBM <= DRAM < PMem < CXL? No: CXL sits between PMem-read and
  // DisaggMem. The ordering the paper's Table 1 encodes:
  const auto lat = [](MemoryDeviceKind k) { return DefaultProfile(k).read_latency.ns; };
  EXPECT_LT(lat(MemoryDeviceKind::kCache), lat(MemoryDeviceKind::kHBM));
  EXPECT_LE(lat(MemoryDeviceKind::kHBM), lat(MemoryDeviceKind::kDRAM) + 30);
  EXPECT_LT(lat(MemoryDeviceKind::kDRAM), lat(MemoryDeviceKind::kCxlDram));
  EXPECT_LT(lat(MemoryDeviceKind::kCxlDram), lat(MemoryDeviceKind::kDisaggMem));
  EXPECT_LT(lat(MemoryDeviceKind::kDisaggMem), lat(MemoryDeviceKind::kSSD));
  EXPECT_LT(lat(MemoryDeviceKind::kSSD), lat(MemoryDeviceKind::kHDD));
}

TEST(DeviceProfileTest, Table1BandwidthOrdering) {
  const auto bw = [](MemoryDeviceKind k) { return DefaultProfile(k).read_bw_gbps; };
  EXPECT_GT(bw(MemoryDeviceKind::kCache), bw(MemoryDeviceKind::kHBM));
  EXPECT_GT(bw(MemoryDeviceKind::kHBM), bw(MemoryDeviceKind::kDRAM));
  EXPECT_GT(bw(MemoryDeviceKind::kDRAM), bw(MemoryDeviceKind::kPMem));
  EXPECT_GT(bw(MemoryDeviceKind::kPMem), bw(MemoryDeviceKind::kDisaggMem));
  EXPECT_GT(bw(MemoryDeviceKind::kDisaggMem), bw(MemoryDeviceKind::kSSD));
  EXPECT_GT(bw(MemoryDeviceKind::kSSD), bw(MemoryDeviceKind::kHDD));
}

TEST(DeviceProfileTest, Table1Granularities) {
  EXPECT_EQ(DefaultProfile(MemoryDeviceKind::kCache).granularity, 1u);
  EXPECT_EQ(DefaultProfile(MemoryDeviceKind::kDRAM).granularity, 64u);
  EXPECT_EQ(DefaultProfile(MemoryDeviceKind::kPMem).granularity, 256u);
  EXPECT_EQ(DefaultProfile(MemoryDeviceKind::kCxlDram).granularity, 64u);
  EXPECT_EQ(DefaultProfile(MemoryDeviceKind::kSSD).granularity, KiB(4));
  EXPECT_EQ(DefaultProfile(MemoryDeviceKind::kHDD).granularity, KiB(4));
}

TEST(DeviceProfileTest, Table1PersistenceColumn) {
  EXPECT_FALSE(DefaultProfile(MemoryDeviceKind::kCache).persistent);
  EXPECT_FALSE(DefaultProfile(MemoryDeviceKind::kDRAM).persistent);
  EXPECT_TRUE(DefaultProfile(MemoryDeviceKind::kPMem).persistent);
  EXPECT_TRUE(DefaultProfile(MemoryDeviceKind::kSSD).persistent);
  EXPECT_TRUE(DefaultProfile(MemoryDeviceKind::kHDD).persistent);
}

TEST(DeviceProfileTest, Table1SyncColumn) {
  // Block devices and NIC-attached memory are not synchronously addressable.
  EXPECT_TRUE(DefaultProfile(MemoryDeviceKind::kDRAM).sync_access);
  EXPECT_TRUE(DefaultProfile(MemoryDeviceKind::kPMem).sync_access);
  EXPECT_FALSE(DefaultProfile(MemoryDeviceKind::kDisaggMem).sync_access);
  EXPECT_FALSE(DefaultProfile(MemoryDeviceKind::kSSD).sync_access);
}

TEST(DeviceProfileTest, PMemWritesAsymmetric) {
  const auto& p = DefaultProfile(MemoryDeviceKind::kPMem);
  EXPECT_GT(p.write_latency.ns, p.read_latency.ns);
  EXPECT_LT(p.write_bw_gbps, p.read_bw_gbps);
}

// --- Allocator -------------------------------------------------------------------

TEST(DeviceAllocTest, AllocateAndFree) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(1000);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size, 1024u);  // rounded to 64 B granularity... 1000 -> 1024
  EXPECT_EQ(dev.used(), e->size);
  ASSERT_TRUE(dev.Free(*e).ok());
  EXPECT_EQ(dev.used(), 0u);
}

TEST(DeviceAllocTest, GranularityRounding) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size, 64u);
  ASSERT_TRUE(dev.Free(*e).ok());
}

TEST(DeviceAllocTest, ExhaustionReported) {
  MemoryDevice dev = MakeDram(KiB(64));
  auto a = dev.Allocate(KiB(48));
  ASSERT_TRUE(a.ok());
  auto b = dev.Allocate(KiB(32));
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  auto c = dev.Allocate(KiB(16));
  EXPECT_TRUE(c.ok());
}

TEST(DeviceAllocTest, CoalescingReassemblesFreeSpace) {
  MemoryDevice dev = MakeDram(KiB(64));
  auto a = dev.Allocate(KiB(16));
  auto b = dev.Allocate(KiB(16));
  auto c = dev.Allocate(KiB(16));
  auto d = dev.Allocate(KiB(16));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  // Free b and d (non-adjacent), then c: all three must coalesce with each
  // other; freeing a restores the whole arena.
  ASSERT_TRUE(dev.Free(*b).ok());
  ASSERT_TRUE(dev.Free(*d).ok());
  ASSERT_TRUE(dev.Free(*c).ok());
  auto big = dev.Allocate(KiB(48));
  EXPECT_TRUE(big.ok()) << big.status().ToString();
  ASSERT_TRUE(dev.Free(*big).ok());
  ASSERT_TRUE(dev.Free(*a).ok());
  auto whole = dev.Allocate(KiB(64));
  EXPECT_TRUE(whole.ok());
}

TEST(DeviceAllocTest, DoubleFreeRejected) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(128);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(dev.Free(*e).ok());
  EXPECT_EQ(dev.Free(*e).code(), StatusCode::kNotFound);
}

TEST(DeviceAllocTest, ZeroSizeRejected) {
  MemoryDevice dev = MakeDram();
  EXPECT_EQ(dev.Allocate(0).status().code(), StatusCode::kInvalidArgument);
}

TEST(DeviceAllocTest, ForeignExtentRejected) {
  MemoryDevice dev = MakeDram();
  Extent foreign{MemoryDeviceId(99), 0, 64};
  EXPECT_EQ(dev.Free(foreign).code(), StatusCode::kInvalidArgument);
}

// --- Data round-trips ----------------------------------------------------------

TEST(DeviceDataTest, ReadBackWhatWasWritten) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(4096);
  ASSERT_TRUE(e.ok());
  std::vector<char> out(11);
  ASSERT_TRUE(dev.Write(*e, 100, "hello world", 11).ok());
  ASSERT_TRUE(dev.Read(*e, 100, out.data(), 11).ok());
  EXPECT_EQ(std::memcmp(out.data(), "hello world", 11), 0);
}

TEST(DeviceDataTest, FreshExtentReadsZero) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(256);
  ASSERT_TRUE(e.ok());
  std::vector<unsigned char> out(256, 0xab);
  ASSERT_TRUE(dev.Read(*e, 0, out.data(), 256).ok());
  for (const unsigned char b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(DeviceDataTest, OutOfBoundsRejected) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(128);
  ASSERT_TRUE(e.ok());
  char buf[64];
  EXPECT_EQ(dev.Read(*e, 100, buf, 64).status().code(), StatusCode::kInvalidArgument);
}

TEST(DeviceDataTest, StatsAccumulate) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(1024);
  ASSERT_TRUE(e.ok());
  char buf[512] = {};
  ASSERT_TRUE(dev.Write(*e, 0, buf, 512).ok());
  ASSERT_TRUE(dev.Read(*e, 0, buf, 512).ok());
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().bytes_read, 512u);
  EXPECT_EQ(dev.stats().bytes_written, 512u);
  EXPECT_GT(dev.stats().busy_time.ns, 0);
}

// --- Cost model -------------------------------------------------------------------

TEST(DeviceCostTest, SequentialCheaperThanRandom) {
  MemoryDevice dev = MakeDram();
  const SimDuration seq = dev.ChargeRead(KiB(64), /*sequential=*/true);
  const SimDuration rnd = dev.ChargeRead(KiB(64), /*sequential=*/false);
  EXPECT_LT(seq.ns, rnd.ns);
  // Random pays per-granularity latency: 1024 lines at 90ns each dominates.
  EXPECT_GT(rnd.ns, 1024 * 80);
}

TEST(DeviceCostTest, CostScalesWithSize) {
  MemoryDevice dev = MakeDram();
  const SimDuration small = dev.ChargeRead(KiB(4), true);
  const SimDuration large = dev.ChargeRead(MiB(4), true);
  EXPECT_GT(large.ns, small.ns * 100);
}

TEST(DeviceCostTest, HddSlowerThanDramByOrdersOfMagnitude) {
  MemoryDevice dram = MakeDram();
  MemoryDevice hdd(MemoryDeviceId(1), NodeId(0), "hdd",
                   DefaultProfile(MemoryDeviceKind::kHDD), MiB(1));
  const SimDuration d = dram.ChargeRead(KiB(64), true);
  const SimDuration h = hdd.ChargeRead(KiB(64), true);
  EXPECT_GT(h.ns, d.ns * 1000);
}

// --- Faults -------------------------------------------------------------------------

TEST(DeviceFaultTest, FailedDeviceRejectsAccess) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(128);
  ASSERT_TRUE(e.ok());
  dev.Fail();
  char buf[16];
  EXPECT_EQ(dev.Read(*e, 0, buf, 16).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dev.Allocate(64).status().code(), StatusCode::kUnavailable);
}

TEST(DeviceFaultTest, VolatileDeviceLosesContents) {
  MemoryDevice dev = MakeDram();
  auto e = dev.Allocate(128);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(dev.Write(*e, 0, "secret", 6).ok());
  dev.Fail();
  dev.Recover();
  char buf[6];
  ASSERT_TRUE(dev.Read(*e, 0, buf, 6).ok());
  EXPECT_NE(std::memcmp(buf, "secret", 6), 0);  // zeroed
}

TEST(DeviceFaultTest, PersistentDeviceKeepsContents) {
  MemoryDevice dev(MemoryDeviceId(0), NodeId(0), "pmem",
                   DefaultProfile(MemoryDeviceKind::kPMem), MiB(1));
  auto e = dev.Allocate(256);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(dev.Write(*e, 0, "durable", 7).ok());
  dev.Fail();
  dev.Recover();
  char buf[7];
  ASSERT_TRUE(dev.Read(*e, 0, buf, 7).ok());
  EXPECT_EQ(std::memcmp(buf, "durable", 7), 0);
}

// --- Compute devices ------------------------------------------------------------------

TEST(ComputeDeviceTest, GpuFasterOnParallelWork) {
  ComputeDevice cpu(ComputeDeviceId(0), NodeId(0), "cpu",
                    DefaultComputeProfile(ComputeDeviceKind::kCPU));
  ComputeDevice gpu(ComputeDeviceId(1), NodeId(0), "gpu",
                    DefaultComputeProfile(ComputeDeviceKind::kGPU));
  const SimDuration cpu_t = cpu.ComputeTime(1e6, 0.95);
  const SimDuration gpu_t = gpu.ComputeTime(1e6, 0.95);
  EXPECT_LT(gpu_t.ns, cpu_t.ns);
}

TEST(ComputeDeviceTest, CpuFasterOnScalarWork) {
  ComputeDevice cpu(ComputeDeviceId(0), NodeId(0), "cpu",
                    DefaultComputeProfile(ComputeDeviceKind::kCPU));
  ComputeDevice gpu(ComputeDeviceId(1), NodeId(0), "gpu",
                    DefaultComputeProfile(ComputeDeviceKind::kGPU));
  const SimDuration cpu_t = cpu.ComputeTime(1e6, 0.1);
  const SimDuration gpu_t = gpu.ComputeTime(1e6, 0.1);
  EXPECT_LT(cpu_t.ns, gpu_t.ns);
}

TEST(ComputeDeviceTest, ZeroWorkIsFree) {
  ComputeDevice cpu(ComputeDeviceId(0), NodeId(0), "cpu",
                    DefaultComputeProfile(ComputeDeviceKind::kCPU));
  EXPECT_EQ(cpu.ComputeTime(0, 0.5).ns, 0);
}

}  // namespace
}  // namespace memflow::simhw
