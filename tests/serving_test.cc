// Copyright (c) memflow authors. MIT license.
//
// Admission-rule fixtures for the serving layer (rts/serving.h): one failing
// and one passing fixture per catalog rule, token-bucket refill arithmetic at
// virtual-time boundaries, the priority-inversion regression, and the
// weighted-fair interleave.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rts/serving.h"
#include "simhw/presets.h"
#include "testing/workload.h"

namespace memflow::rts {
namespace {

using dataflow::Job;
using dataflow::TaskId;
using dataflow::TaskProperties;
using memflow::testing::Producer;

// A one-task CPU-pinned job, so every dispatch lands on the same device
// queue and ordering is observable.
Job CpuJob(const std::string& name, double work = 1e5) {
  Job job(name);
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kCPU;
  props.base_work = work;
  job.AddTask("t", props, Producer(64));
  return job;
}

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() : host_(simhw::MakeCxlExpansionHost()), rt_(*host_.cluster) {}

  simhw::CxlHostHandles host_;
  Runtime rt_;
};

TEST_F(ServingTest, AdmitRunsJobAndRecordsOutcome) {
  ServingLayer serving(rt_);
  const std::size_t t = serving.AddTenant({.name = "a"});
  const AdmissionDecision d = serving.Offer(t, CpuJob("j"));
  EXPECT_TRUE(d.admitted);
  EXPECT_STREQ(d.rule, kServeAdmit);
  EXPECT_EQ(serving.inflight(t), 1u);

  ASSERT_TRUE(rt_.RunToCompletion().ok());
  EXPECT_EQ(serving.inflight(t), 0u);
  EXPECT_EQ(serving.stats(t).arrived, 1u);
  EXPECT_EQ(serving.stats(t).admitted, 1u);
  EXPECT_EQ(serving.stats(t).completed, 1u);
  EXPECT_EQ(serving.stats(t).Rejections(), 0u);
  ASSERT_EQ(serving.served().size(), 1u);
  const ServedJob& sj = serving.served()[0];
  EXPECT_TRUE(sj.ok);
  EXPECT_GT(sj.finished.ns, sj.arrival.ns);
  EXPECT_GT(sj.work.ns, 0);
  // The decision is mirrored into serving_jobs_total{tenant, outcome}.
  EXPECT_EQ(rt_.metrics()
                .GetCounter("serving_jobs_total", "", {{"tenant", "a"}, {"outcome", kServeAdmit}})
                ->value(),
            1u);
}

TEST_F(ServingTest, QuotaExhaustionRejectsUntilRefill) {
  ServingLayer serving(rt_);
  const std::size_t t = serving.AddTenant(
      {.name = "a", .tokens_per_sec = 1.0, .burst_tokens = 1.0});

  EXPECT_TRUE(serving.Offer(t, CpuJob("j0")).admitted);  // spends the token
  const AdmissionDecision rejected = serving.Offer(t, CpuJob("j1"));
  EXPECT_FALSE(rejected.admitted);
  EXPECT_STREQ(rejected.rule, kServeRejectQuota);
  EXPECT_EQ(serving.stats(t).rejected_quota, 1u);
  ASSERT_TRUE(rt_.RunToCompletion().ok());  // drain, so the clock may move

  // One virtual second after the bucket emptied refills exactly one token.
  rt_.clock().AdvanceTo(SimTime{} + SimDuration::Seconds(1));
  EXPECT_TRUE(serving.Offer(t, CpuJob("j2")).admitted);
  EXPECT_EQ(serving.stats(t).admitted, 2u);
  ASSERT_TRUE(rt_.RunToCompletion().ok());
  EXPECT_EQ(serving.stats(t).completed, 2u);
}

TEST_F(ServingTest, TokenRefillIsExactAtVirtualTimeBoundaries) {
  ServingLayer serving(rt_);
  // 2 tokens/s: one token takes exactly 500ms of virtual time.
  const std::size_t a = serving.AddTenant(
      {.name = "a", .tokens_per_sec = 2.0, .burst_tokens = 1.0});
  const std::size_t b = serving.AddTenant(
      {.name = "b", .tokens_per_sec = 2.0, .burst_tokens = 1.0});
  EXPECT_TRUE(serving.Offer(a, CpuJob("a0")).admitted);
  EXPECT_TRUE(serving.Offer(b, CpuJob("b0")).admitted);
  ASSERT_TRUE(rt_.RunToCompletion().ok());  // drain before moving the clock

  // 1ns short of the refill boundary: 499'999'999ns * 2/s = 0.999999998
  // tokens — still below one.
  rt_.clock().AdvanceTo(SimTime{} + SimDuration::Nanos(499'999'999));
  EXPECT_STREQ(serving.Offer(a, CpuJob("a1")).rule, kServeRejectQuota);
  EXPECT_LT(serving.tokens(a), 1.0);

  // Exactly at the boundary (a single refill step for tenant b): one token.
  rt_.clock().AdvanceTo(SimTime{} + SimDuration::Millis(500));
  EXPECT_TRUE(serving.Offer(b, CpuJob("b1")).admitted);
  ASSERT_TRUE(rt_.RunToCompletion().ok());
}

TEST_F(ServingTest, BackpressureShedsAtInflightCapAndRecovers) {
  ServingLayer serving(rt_);
  const std::size_t t = serving.AddTenant({.name = "a", .max_inflight = 1});

  EXPECT_TRUE(serving.Offer(t, CpuJob("j0")).admitted);
  const AdmissionDecision shed = serving.Offer(t, CpuJob("j1"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_STREQ(shed.rule, kServeShedBackpressure);
  EXPECT_EQ(serving.stats(t).shed, 1u);

  // Draining the in-flight job reopens the gate.
  ASSERT_TRUE(rt_.RunToCompletion().ok());
  EXPECT_EQ(serving.inflight(t), 0u);
  EXPECT_TRUE(serving.Offer(t, CpuJob("j2")).admitted);
  ASSERT_TRUE(rt_.RunToCompletion().ok());
  EXPECT_EQ(serving.stats(t).completed, 2u);
}

TEST_F(ServingTest, PredictedSloViolationRejects) {
  ServingLayer serving(rt_);
  // An impossible deadline fails the prediction; a generous one passes with
  // the identical job.
  const std::size_t tight =
      serving.AddTenant({.name = "tight", .deadline = SimDuration::Nanos(1)});
  const std::size_t loose =
      serving.AddTenant({.name = "loose", .deadline = SimDuration::Seconds(100)});

  const AdmissionDecision rejected = serving.Offer(tight, CpuJob("j", 1e6));
  EXPECT_FALSE(rejected.admitted);
  EXPECT_STREQ(rejected.rule, kServeRejectSlo);
  EXPECT_GT(rejected.predicted_finish.ns, 0);
  EXPECT_EQ(serving.stats(tight).rejected_slo, 1u);

  const AdmissionDecision admitted = serving.Offer(loose, CpuJob("j", 1e6));
  EXPECT_TRUE(admitted.admitted);
  EXPECT_GT(admitted.predicted_finish.ns, 0);
  ASSERT_TRUE(rt_.RunToCompletion().ok());
  // The prediction was conservative: the job beat its predicted finish.
  ASSERT_EQ(serving.served().size(), 1u);
  EXPECT_LE(serving.served()[0].finished.ns, admitted.predicted_finish.ns);
}

TEST_F(ServingTest, InfeasibleJobRejectsWithSubmitRule) {
  ServingLayer serving(rt_);
  const std::size_t t = serving.AddTenant({.name = "a"});
  Job job("tpu");
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kTPU;  // host has none
  job.AddTask("k", props, Producer(64));
  const AdmissionDecision d = serving.Offer(t, std::move(job));
  EXPECT_FALSE(d.admitted);
  EXPECT_STREQ(d.rule, kServeRejectInfeasible);
  EXPECT_EQ(serving.stats(t).rejected_infeasible, 1u);
  // No token was spent on the rejected job.
  EXPECT_TRUE(serving.Offer(t, CpuJob("ok")).admitted);
  ASSERT_TRUE(rt_.RunToCompletion().ok());
}

TEST_F(ServingTest, TenantSloClassIsStampedOntoEveryTask) {
  ServingLayer serving(rt_);
  const std::size_t t = serving.AddTenant(
      {.name = "a", .slo = dataflow::SloClass::kInteractive});
  const AdmissionDecision d = serving.Offer(t, CpuJob("j"));
  ASSERT_TRUE(d.admitted);
  auto job = rt_.GetJob(d.job);
  ASSERT_TRUE(job.ok());
  for (std::size_t i = 0; i < (*job)->num_tasks(); ++i) {
    EXPECT_EQ((*job)->task(TaskId(static_cast<std::uint32_t>(i))).props.slo,
              dataflow::SloClass::kInteractive);
  }
  ASSERT_TRUE(rt_.RunToCompletion().ok());
}

// Regression: a high-priority arrival queued behind a backlog of low-priority
// work must dispatch from the *next free slot* even when its weighted-fair
// key is the worst in the queue — priority strictly dominates the fair key.
// (The first hw_queues submissions claim device slots eagerly and cannot be
// preempted, so the assertion is about the queued backlog, not started work.)
TEST_F(ServingTest, HighPriorityJobIsNotInvertedByFairKey) {
  ServingLayer serving(rt_);
  const std::size_t low = serving.AddTenant({.name = "low", .weight = 1.0});
  // Tiny weight = huge fair key: without the priority field this tenant
  // would dispatch dead last.
  const std::size_t high = serving.AddTenant(
      {.name = "high", .weight = 0.01, .priority = 5});

  constexpr int kLowJobs = 12;
  for (int i = 0; i < kLowJobs; ++i) {
    ASSERT_TRUE(serving.Offer(low, CpuJob("low" + std::to_string(i))).admitted);
  }
  const AdmissionDecision d = serving.Offer(high, CpuJob("urgent"));
  ASSERT_TRUE(d.admitted);
  ASSERT_TRUE(rt_.RunToCompletion().ok());

  SimTime high_finish;
  std::vector<SimTime> low_finishes;
  for (const ServedJob& sj : serving.served()) {
    ASSERT_TRUE(sj.ok);
    (sj.tenant == high ? (void)(high_finish = sj.finished)
                       : low_finishes.push_back(sj.finished));
  }
  ASSERT_EQ(low_finishes.size(), static_cast<std::size_t>(kLowJobs));
  // The urgent job rode the first freed slot wave: only jobs that claimed a
  // device slot before it arrived (at most hw_queues) plus its own batch
  // peers may finish with it; everything else in the backlog finishes
  // strictly later. With 12 queued jobs that is at least 5 of them.
  int strictly_later = 0;
  for (const SimTime f : low_finishes) {
    if (f.ns > high_finish.ns) {
      strictly_later++;
    }
  }
  EXPECT_GE(strictly_later, 5);
}

// Control for the regression above: same tiny weight but *equal* priority —
// now the fair key does decide, and the late arrival finishes last.
TEST_F(ServingTest, EqualPriorityFallsBackToFairKey) {
  ServingLayer serving(rt_);
  const std::size_t low = serving.AddTenant({.name = "low", .weight = 1.0});
  const std::size_t late = serving.AddTenant({.name = "late", .weight = 0.01});

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(serving.Offer(low, CpuJob("low" + std::to_string(i))).admitted);
  }
  ASSERT_TRUE(serving.Offer(late, CpuJob("straggler")).admitted);
  ASSERT_TRUE(rt_.RunToCompletion().ok());

  SimTime late_finish;
  std::vector<SimTime> low_finishes;
  for (const ServedJob& sj : serving.served()) {
    (sj.tenant == late ? (void)(late_finish = sj.finished)
                       : low_finishes.push_back(sj.finished));
  }
  for (const SimTime f : low_finishes) {
    EXPECT_GE(late_finish.ns, f.ns);
  }
}

TEST_F(ServingTest, WeightedFairInterleaveFavorsHeavierTenant) {
  ServingLayer serving(rt_);
  const std::size_t a = serving.AddTenant({.name = "a", .weight = 1.0});
  const std::size_t b = serving.AddTenant({.name = "b", .weight = 2.0});
  // Enough jobs that most of them queue behind the eagerly claimed device
  // slots — the fair key only orders the queued backlog.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(serving.Offer(a, CpuJob("a" + std::to_string(i))).admitted);
    ASSERT_TRUE(serving.Offer(b, CpuJob("b" + std::to_string(i))).admitted);
  }
  ASSERT_TRUE(rt_.RunToCompletion().ok());

  std::int64_t sum_a = 0, sum_b = 0;
  for (const ServedJob& sj : serving.served()) {
    (sj.tenant == a ? sum_a : sum_b) += sj.finished.ns;
  }
  // Identical jobs, double the weight: b's completions front-load, so its
  // total finish time is strictly smaller.
  EXPECT_LT(sum_b, sum_a);
}

TEST_F(ServingTest, ScheduledArrivalsDriveTheOpenLoop) {
  ServingLayer serving(rt_);
  const std::size_t t = serving.AddTenant({.name = "a"});
  const std::vector<SimTime> arrivals = {
      SimTime{} + SimDuration::Millis(1), SimTime{} + SimDuration::Millis(2),
      SimTime{} + SimDuration::Millis(3)};
  for (const SimTime at : arrivals) {
    serving.ScheduleArrival(t, at, [](std::uint64_t k) {
      return CpuJob("open" + std::to_string(k));
    });
  }
  ASSERT_TRUE(rt_.RunToCompletion().ok());

  EXPECT_EQ(serving.stats(t).arrived, 3u);
  EXPECT_EQ(serving.stats(t).admitted, 3u);
  EXPECT_EQ(serving.stats(t).completed, 3u);
  ASSERT_EQ(serving.served().size(), 3u);
  // Each job's recorded submission time is its scheduled arrival instant.
  std::vector<std::int64_t> submitted;
  for (const ServedJob& sj : serving.served()) {
    submitted.push_back(sj.arrival.ns);
  }
  std::sort(submitted.begin(), submitted.end());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(submitted[i], arrivals[i].ns);
  }
}

}  // namespace
}  // namespace memflow::rts
