// Copyright (c) memflow authors. MIT license.
//
// Tests for the Memory Region abstraction: declarative property matching,
// observer-relative allocation (Figure 3), the ownership state machine and
// zero-copy transfer (Figure 4), confidentiality enforcement, and the
// sync/async access interfaces (§2.2(3)).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "region/crypto.h"
#include "region/properties.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::region {
namespace {

using simhw::CxlHostHandles;
using simhw::MakeCxlExpansionHost;

constexpr Principal kAlice{1, 10};   // job 1
constexpr Principal kBob{1, 11};     // job 1, different task
constexpr Principal kMallory{2, 20};  // a different job

class RegionManagerTest : public ::testing::Test {
 protected:
  RegionManagerTest() : host_(MakeCxlExpansionHost()), mgr_(*host_.cluster) {}

  RegionManager::AllocRequest Request(std::uint64_t size, Properties props,
                                      simhw::ComputeDeviceId observer,
                                      Principal owner = kAlice) {
    RegionManager::AllocRequest r;
    r.size = size;
    r.props = props;
    r.observer = observer;
    r.owner = owner;
    return r;
  }

  CxlHostHandles host_;
  RegionManager mgr_;
};

// --- Properties / matching -----------------------------------------------------

TEST_F(RegionManagerTest, Table2BundlesHaveDeclaredShape) {
  const Properties ps = Properties::PrivateScratch();
  EXPECT_TRUE(ps.sync);
  EXPECT_FALSE(ps.coherent);  // noncoherent per Table 2
  EXPECT_EQ(ps.latency, LatencyClass::kLow);

  const Properties gs = Properties::GlobalState();
  EXPECT_TRUE(gs.sync);
  EXPECT_TRUE(gs.coherent);

  const Properties gsc = Properties::GlobalScratch();
  EXPECT_FALSE(gsc.sync);  // async interface
  EXPECT_TRUE(gsc.coherent);
}

TEST_F(RegionManagerTest, SatisfiesRespectsEveryAxis) {
  auto dram = host_.cluster->View(host_.cpu, host_.dram);
  ASSERT_TRUE(dram.ok());
  Properties p;
  EXPECT_TRUE(Satisfies(*dram, p));
  p.persistent = true;
  EXPECT_FALSE(Satisfies(*dram, p));  // DRAM is volatile

  auto pmem = host_.cluster->View(host_.cpu, host_.pmem);
  ASSERT_TRUE(pmem.ok());
  EXPECT_TRUE(Satisfies(*pmem, p));

  p.latency = LatencyClass::kLow;
  EXPECT_FALSE(Satisfies(*pmem, p));  // PMem read ~350ns > 300ns ceiling

  auto far = host_.cluster->View(host_.cpu, host_.disagg);
  ASSERT_TRUE(far.ok());
  Properties sync_req;
  sync_req.sync = true;
  EXPECT_FALSE(Satisfies(*far, sync_req));  // NIC memory is async-only
}

// --- Figure 3: allocation is observer-relative ---------------------------------

TEST_F(RegionManagerTest, FastScratchResolvesToDramForCpu) {
  auto id = mgr_.Allocate(Request(MiB(1), Properties::PrivateScratch(), host_.cpu));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto info = mgr_.Info(*id);
  ASSERT_TRUE(info.ok());
  // From the CPU, with a 1 MiB streaming hint, socket memory wins. Cache is
  // tiny but legal; accept cache/HBM/DRAM, reject GDDR and anything far.
  EXPECT_TRUE(info->device == host_.dram || info->device == host_.hbm ||
              info->device == host_.cache)
      << host_.cluster->memory(info->device).name();
}

TEST_F(RegionManagerTest, FastScratchResolvesToGddrForGpu) {
  // Exhaust nothing; just ask for a GPU-observed low-latency region too big
  // for the LLC.
  auto id = mgr_.Allocate(Request(MiB(64), Properties::PrivateScratch(), host_.gpu));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto info = mgr_.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->device, host_.gddr) << host_.cluster->memory(info->device).name();
}

TEST_F(RegionManagerTest, PersistentRequestLandsOnPersistentMedia) {
  Properties p;
  p.persistent = true;
  auto id = mgr_.Allocate(Request(MiB(1), p, host_.cpu));
  ASSERT_TRUE(id.ok());
  auto info = mgr_.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(host_.cluster->memory(info->device).profile().persistent);
}

TEST_F(RegionManagerTest, ImpossibleRequestIsRejected) {
  Properties p;
  p.persistent = true;
  p.latency = LatencyClass::kLow;  // no persistent device is that fast
  auto id = mgr_.Allocate(Request(MiB(1), p, host_.cpu));
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(mgr_.stats().failed_allocations, 1u);
}

TEST_F(RegionManagerTest, LatencyRelaxSpillsToSlowerTier) {
  PlacementConfig config;
  config.allow_latency_relax = true;
  RegionManager relaxed(*host_.cluster, config);
  Properties p;
  p.persistent = true;
  p.latency = LatencyClass::kLow;
  auto id = relaxed.Allocate(Request(MiB(1), p, host_.cpu));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto info = relaxed.Info(*id);
  EXPECT_TRUE(host_.cluster->memory(info->device).profile().persistent);
}

TEST_F(RegionManagerTest, PressureSpreadsAllocations) {
  // Fill DRAM close to full; new allocations must go elsewhere.
  Properties any;
  std::vector<RegionId> hold;
  while (host_.cluster->memory(host_.dram).free_bytes() > MiB(256)) {
    auto id = mgr_.AllocateOn(host_.dram, MiB(512), any, kAlice);
    ASSERT_TRUE(id.ok());
    hold.push_back(*id);
  }
  auto id = mgr_.Allocate(Request(MiB(512), Properties::PrivateScratch(), host_.cpu));
  ASSERT_TRUE(id.ok());
  auto info = mgr_.Info(*id);
  EXPECT_NE(info->device, host_.dram);
}

// --- Ownership (Figure 4) --------------------------------------------------------

TEST_F(RegionManagerTest, ExclusiveOwnerIsEnforced) {
  auto id = mgr_.Allocate(Request(KiB(64), Properties::PrivateScratch(), host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  // Bob cannot open, free, or transfer Alice's region.
  EXPECT_EQ(mgr_.OpenSync(*id, kBob, host_.cpu).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(mgr_.Free(*id, kBob).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(mgr_.Transfer(*id, kBob, kAlice, host_.cpu).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RegionManagerTest, TransferIsZeroCopyWhenPropertiesStillHold) {
  auto id = mgr_.Allocate(Request(MiB(1), Properties{}, host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  auto cost = mgr_.Transfer(*id, kAlice, kBob, host_.cpu);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->ns, 0);
  EXPECT_EQ(mgr_.stats().zero_copy_transfers, 1u);
  // Ownership moved: Alice is locked out, Bob is in.
  EXPECT_FALSE(mgr_.OpenSync(*id, kAlice, host_.cpu).ok());
  EXPECT_TRUE(mgr_.OpenSync(*id, kBob, host_.cpu).ok());
}

TEST_F(RegionManagerTest, TransferMigratesWhenNewObserverCannotSatisfy) {
  // A low-latency region on GDDR (for the GPU); handing it to a CPU task
  // violates the latency class from the CPU -> must migrate, cost > 0.
  auto id = mgr_.Allocate(Request(MiB(32), Properties::PrivateScratch(), host_.gpu, kAlice));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(mgr_.Info(*id)->device, host_.gddr);

  // Write a marker through the GPU first.
  {
    auto acc = mgr_.OpenSync(*id, kAlice, host_.gpu);
    ASSERT_TRUE(acc.ok());
    const std::uint64_t magic = 0xfeedfacecafebeefULL;
    ASSERT_TRUE(acc->Store(0, magic).ok());
  }

  auto cost = mgr_.Transfer(*id, kAlice, kBob, host_.cpu);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GT(cost->ns, 0);
  EXPECT_EQ(mgr_.stats().migrations, 1u);
  auto info = mgr_.Info(*id);
  EXPECT_NE(info->device, host_.gddr);

  // Data survived the migration byte-for-byte.
  auto acc = mgr_.OpenSync(*id, kBob, host_.cpu);
  ASSERT_TRUE(acc.ok());
  std::uint64_t magic = 0;
  ASSERT_TRUE(acc->Load(0, magic).ok());
  EXPECT_EQ(magic, 0xfeedfacecafebeefULL);
}

TEST_F(RegionManagerTest, UseAfterTransferIsRejected) {
  auto id = mgr_.Allocate(Request(KiB(64), Properties{}, host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  ASSERT_TRUE(mgr_.Transfer(*id, kAlice, kBob, host_.cpu).ok());
  // The stale accessor revalidates on use and is refused.
  char buf[8];
  EXPECT_EQ(acc->Read(0, buf, 8).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RegionManagerTest, ShareAndReleaseLifetime) {
  auto id = mgr_.Allocate(Request(KiB(64), Properties::GlobalState(), host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_.Share(*id, kAlice, kBob, host_.cpu).ok());
  EXPECT_EQ(mgr_.Info(*id)->state, OwnershipState::kShared);
  EXPECT_EQ(mgr_.Info(*id)->shared_refs, 2);

  // Both can access; region lives until the LAST release (§2.3).
  EXPECT_TRUE(mgr_.OpenSync(*id, kAlice, host_.cpu).ok());
  EXPECT_TRUE(mgr_.OpenSync(*id, kBob, host_.cpu).ok());
  ASSERT_TRUE(mgr_.Release(*id, kAlice).ok());
  EXPECT_TRUE(mgr_.OpenSync(*id, kBob, host_.cpu).ok());
  ASSERT_TRUE(mgr_.Release(*id, kBob).ok());
  EXPECT_EQ(mgr_.Info(*id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr_.stats().frees, 1u);
}

TEST_F(RegionManagerTest, SharedRegionCannotBeTransferred) {
  auto id = mgr_.Allocate(Request(KiB(64), Properties::GlobalState(), host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_.Share(*id, kAlice, kBob, host_.cpu).ok());
  EXPECT_EQ(mgr_.Transfer(*id, kAlice, kMallory, host_.cpu).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(mgr_.Transfer(*id, kAlice, kBob, host_.cpu).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RegionManagerTest, SharingRequiresCoherence) {
  // Region on plain-PCIe-reachable GDDR: not coherent from the CPU.
  auto id = mgr_.AllocateOn(host_.gddr, KiB(64), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(mgr_.Share(*id, kAlice, kBob, host_.cpu).code(),
            StatusCode::kFailedPrecondition);
  // Relaxed handoff sharing is allowed explicitly.
  EXPECT_TRUE(mgr_.Share(*id, kAlice, kBob, host_.cpu, /*require_coherent=*/false).ok());
}

TEST_F(RegionManagerTest, FreeWithOutstandingSharersRefused) {
  auto id = mgr_.Allocate(Request(KiB(64), Properties::GlobalState(), host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_.Share(*id, kAlice, kBob, host_.cpu).ok());
  EXPECT_EQ(mgr_.Free(*id, kAlice).code(), StatusCode::kFailedPrecondition);
}

// --- Confidentiality ---------------------------------------------------------------

TEST_F(RegionManagerTest, ConfidentialRegionInvisibleToOtherJobs) {
  Properties p;
  p.confidential = true;
  auto id = mgr_.Allocate(Request(KiB(64), p, host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(mgr_.OpenSync(*id, kMallory, host_.cpu).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(mgr_.Transfer(*id, kAlice, kMallory, host_.cpu).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(mgr_.Share(*id, kAlice, kMallory, host_.cpu).code(),
            StatusCode::kPermissionDenied);
  EXPECT_GE(mgr_.stats().confidentiality_denials, 3u);
  // Same-job task is fine.
  EXPECT_TRUE(mgr_.OpenSync(*id, kBob, host_.cpu).status().code() ==
              StatusCode::kFailedPrecondition);  // not owner, but NOT denied
}

TEST_F(RegionManagerTest, ConfidentialDataIsScrambledAtRest) {
  Properties p;
  p.confidential = true;
  auto id = mgr_.Allocate(Request(KiB(4), p, host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  const char plaintext[] = "attack at dawn, ward 7";
  ASSERT_TRUE(acc->Write(0, plaintext, sizeof(plaintext)).ok());

  // Owner reads back plaintext.
  char roundtrip[sizeof(plaintext)] = {};
  ASSERT_TRUE(acc->Read(0, roundtrip, sizeof(plaintext)).ok());
  EXPECT_STREQ(roundtrip, plaintext);

  // Raw device bytes do NOT contain the plaintext.
  auto extent = mgr_.ExtentOfForTest(*id);
  ASSERT_TRUE(extent.ok());
  simhw::MemoryDevice& dev = host_.cluster->memory(extent->device);
  char raw[sizeof(plaintext)] = {};
  ASSERT_TRUE(dev.Read(*extent, 0, raw, sizeof(plaintext)).ok());
  EXPECT_NE(std::memcmp(raw, plaintext, sizeof(plaintext)), 0);

  // A non-confidential region, in contrast, stores plaintext.
  auto plain_id = mgr_.Allocate(Request(KiB(4), Properties{}, host_.cpu, kAlice));
  ASSERT_TRUE(plain_id.ok());
  auto plain_acc = mgr_.OpenSync(*plain_id, kAlice, host_.cpu);
  ASSERT_TRUE(plain_acc.ok());
  ASSERT_TRUE(plain_acc->Write(0, plaintext, sizeof(plaintext)).ok());
  auto plain_extent = mgr_.ExtentOfForTest(*plain_id);
  ASSERT_TRUE(plain_extent.ok());
  char plain_raw[sizeof(plaintext)] = {};
  ASSERT_TRUE(host_.cluster->memory(plain_extent->device)
                  .Read(*plain_extent, 0, plain_raw, sizeof(plaintext))
                  .ok());
  EXPECT_EQ(std::memcmp(plain_raw, plaintext, sizeof(plaintext)), 0);
}

TEST_F(RegionManagerTest, ConfidentialSurvivesMigration) {
  Properties p;
  p.confidential = true;
  auto id = mgr_.Allocate(Request(KiB(64), p, host_.cpu, kAlice));
  ASSERT_TRUE(id.ok());
  {
    auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
    ASSERT_TRUE(acc.ok());
    ASSERT_TRUE(acc->Write(100, "classified", 10).ok());
  }
  ASSERT_TRUE(mgr_.Migrate(*id, host_.cxl_dram).ok());
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  char buf[10];
  ASSERT_TRUE(acc->Read(100, buf, 10).ok());
  EXPECT_EQ(std::memcmp(buf, "classified", 10), 0);
}

// --- Access interfaces (§2.2(3)) ------------------------------------------------

TEST_F(RegionManagerTest, SyncAccessorRefusedOnFarMemory) {
  auto id = mgr_.AllocateOn(host_.disagg, KiB(64), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(mgr_.OpenSync(*id, kAlice, host_.cpu).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(mgr_.OpenAsync(*id, kAlice, host_.cpu).ok());
}

TEST_F(RegionManagerTest, AsyncBatchBeatsSyncRandomOnFarMemory) {
  auto id = mgr_.AllocateOn(host_.cxl_dram, MiB(1), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());

  // 256 random 256-B reads, synchronous: pays full latency each time.
  auto sync_acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(sync_acc.ok());
  SimDuration sync_total{};
  std::vector<char> buf(256);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>((i * 2654435761u) % 4000) * 256;
    auto c = sync_acc->Read(off, buf.data(), 256);
    ASSERT_TRUE(c.ok());
    sync_total += *c;
  }

  // Same reads through the async queue: latency amortized per window.
  auto async_acc = mgr_.OpenAsync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(async_acc.ok());
  std::vector<std::vector<char>> bufs(256, std::vector<char>(256));
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>((i * 2654435761u) % 4000) * 256;
    async_acc->EnqueueRead(off, bufs[static_cast<std::size_t>(i)].data(), 256);
  }
  auto async_total = async_acc->Drain();
  ASSERT_TRUE(async_total.ok());
  EXPECT_LT(async_total->ns, sync_total.ns / 4);
}

TEST_F(RegionManagerTest, SequentialDetectionInSyncAccessor) {
  auto id = mgr_.AllocateOn(host_.dram, MiB(1), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  std::vector<char> buf(KiB(64));
  auto first = acc->Read(0, buf.data(), buf.size());
  auto second = acc->Read(buf.size(), buf.data(), buf.size());  // sequential
  auto jump = acc->Read(0, buf.data(), buf.size());             // random jump
  ASSERT_TRUE(first.ok() && second.ok() && jump.ok());
  EXPECT_LT(second->ns, jump->ns);
}

TEST_F(RegionManagerTest, AccessorBoundsChecked) {
  auto id = mgr_.AllocateOn(host_.dram, KiB(4), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  char buf[128];
  EXPECT_EQ(acc->Read(KiB(4) - 64, buf, 128).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RegionManagerTest, AsyncWriteRoundTrip) {
  auto id = mgr_.AllocateOn(host_.disagg, KiB(64), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  auto acc = mgr_.OpenAsync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  std::vector<std::uint32_t> data(1024);
  std::iota(data.begin(), data.end(), 7u);
  acc->EnqueueWrite(0, data.data(), data.size() * 4);
  ASSERT_TRUE(acc->Drain().ok());
  std::vector<std::uint32_t> out(1024, 0);
  acc->EnqueueRead(0, out.data(), out.size() * 4);
  ASSERT_TRUE(acc->Drain().ok());
  EXPECT_EQ(out, data);
}

// --- Faults / data loss --------------------------------------------------------------

TEST_F(RegionManagerTest, LostRegionReportsDataLoss) {
  auto id = mgr_.AllocateOn(host_.dram, KiB(64), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  host_.cluster->memory(host_.dram).Fail();
  host_.cluster->memory(host_.dram).Recover();
  const auto lost = mgr_.MarkLostOn(host_.dram);
  ASSERT_EQ(lost.size(), 1u);
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  char buf[8];
  EXPECT_EQ(acc->Read(0, buf, 8).status().code(), StatusCode::kDataLoss);
}

TEST_F(RegionManagerTest, PersistentRegionsSurviveMarkLost) {
  auto id = mgr_.AllocateOn(host_.pmem, KiB(64), Properties{}, kAlice);
  ASSERT_TRUE(id.ok());
  {
    auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
    ASSERT_TRUE(acc.ok());
    ASSERT_TRUE(acc->Write(0, "persist", 7).ok());
  }
  host_.cluster->memory(host_.pmem).Fail();
  host_.cluster->memory(host_.pmem).Recover();
  EXPECT_TRUE(mgr_.MarkLostOn(host_.pmem).empty());  // persistent: nothing lost
  auto acc = mgr_.OpenSync(*id, kAlice, host_.cpu);
  ASSERT_TRUE(acc.ok());
  char buf[7];
  ASSERT_TRUE(acc->Read(0, buf, 7).ok());
  EXPECT_EQ(std::memcmp(buf, "persist", 7), 0);
}

// --- Crypto keystream -----------------------------------------------------------------

TEST(CryptoTest, Involutive) {
  std::vector<unsigned char> data(333);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 7);
  }
  auto original = data;
  ApplyKeystream(0xdeadbeef, 100, data.data(), data.size());
  EXPECT_NE(data, original);
  ApplyKeystream(0xdeadbeef, 100, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(CryptoTest, PositionKeyedUnalignedRangesAgree) {
  // Encrypt [0, 64), then decrypt [13, 29) alone: must match plaintext.
  std::vector<unsigned char> data(64, 0x5a);
  auto original = data;
  ApplyKeystream(42, 0, data.data(), data.size());
  std::vector<unsigned char> window(data.begin() + 13, data.begin() + 29);
  ApplyKeystream(42, 13, window.data(), window.size());
  EXPECT_TRUE(std::equal(window.begin(), window.end(), original.begin() + 13));
}

TEST(CryptoTest, DifferentKeysDifferentStreams) {
  std::vector<unsigned char> a(64, 0);
  std::vector<unsigned char> b(64, 0);
  ApplyKeystream(1, 0, a.data(), a.size());
  ApplyKeystream(2, 0, b.data(), b.size());
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace memflow::region
