// Copyright (c) memflow authors. MIT license.
//
// Properties of the seeded arrival generators (testing/arrivals.h): streams
// are bit-reproducible pure functions of (spec, seed), strictly increasing,
// empirically close to their configured rates, and the multi-tenant merge is
// exactly the sorted interleaving of the tenant-wise streams.

#include <gtest/gtest.h>

#include <vector>

#include "testing/arrivals.h"

namespace memflow::testing {
namespace {

std::vector<SimTime> Take(ArrivalSpec spec, std::uint64_t seed, int n) {
  ArrivalGenerator gen(std::move(spec), seed);
  std::vector<SimTime> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(gen.Next());
  }
  return out;
}

ArrivalSpec Poisson(double rate) {
  ArrivalSpec s;
  s.kind = ArrivalKind::kPoisson;
  s.rate_per_sec = rate;
  return s;
}

ArrivalSpec Bursty(double rate) {
  ArrivalSpec s;
  s.kind = ArrivalKind::kBursty;
  s.rate_per_sec = rate;
  return s;
}

TEST(ArrivalsTest, PoissonStreamIsBitReproducible) {
  const auto a = Take(Poisson(50000), 7, 5000);
  const auto b = Take(Poisson(50000), 7, 5000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ns, b[i].ns) << "diverged at arrival " << i;
  }
}

TEST(ArrivalsTest, BurstyStreamIsBitReproducible) {
  const auto a = Take(Bursty(50000), 11, 5000);
  const auto b = Take(Bursty(50000), 11, 5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ns, b[i].ns) << "diverged at arrival " << i;
  }
}

TEST(ArrivalsTest, StreamsAreStrictlyIncreasing) {
  for (const ArrivalSpec& spec : {Poisson(1e6), Bursty(1e6)}) {
    ArrivalGenerator gen(spec, 3);
    SimTime prev;
    for (int i = 0; i < 20000; ++i) {
      const SimTime t = gen.Next();
      ASSERT_LT(prev.ns, t.ns) << ArrivalKindName(spec.kind) << " arrival " << i;
      prev = t;
    }
  }
}

TEST(ArrivalsTest, PrefixIsIndependentOfHowManyArrivalsAreDrawn) {
  // The k-th arrival is a pure function of (spec, seed, k): a fresh generator
  // replays the same prefix regardless of how far the first one ran.
  ArrivalGenerator longer(Bursty(20000), 13);
  std::vector<SimTime> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(longer.Next());
  }
  for (int i = 0; i < 900; ++i) {
    (void)longer.Next();
  }
  const auto replay = Take(Bursty(20000), 13, 100);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ns, replay[i].ns);
  }
}

TEST(ArrivalsTest, PoissonEmpiricalRateMatchesConfiguredRate) {
  constexpr double kRate = 100000.0;  // mean gap 10us
  constexpr int kN = 200000;
  const auto stream = Take(Poisson(kRate), 97, kN);
  const double elapsed_sec = static_cast<double>(stream.back().ns) / 1e9;
  const double empirical = static_cast<double>(kN) / elapsed_sec;
  // Relative error of the mean of 200k exponential gaps is ~1/sqrt(200k)
  // ≈ 0.22%; 3% is a wide deterministic bound for this fixed seed.
  EXPECT_NEAR(empirical / kRate, 1.0, 0.03);
}

TEST(ArrivalsTest, BurstyRateLandsBetweenCalmAndBurstRates) {
  ArrivalSpec spec = Bursty(50000);
  spec.burst_multiplier = 8.0;
  const int kN = 200000;
  const auto stream = Take(spec, 23, kN);
  const double elapsed_sec = static_cast<double>(stream.back().ns) / 1e9;
  const double empirical = static_cast<double>(kN) / elapsed_sec;
  EXPECT_GT(empirical, spec.rate_per_sec);
  EXPECT_LT(empirical, spec.rate_per_sec * spec.burst_multiplier);
  // The long-run MMPP rate is the sojourn-weighted mix of the state rates.
  const double t_calm = static_cast<double>(spec.mean_calm.ns);
  const double t_burst = static_cast<double>(spec.mean_burst.ns);
  const double expected = (spec.rate_per_sec * t_calm +
                           spec.rate_per_sec * spec.burst_multiplier * t_burst) /
                          (t_calm + t_burst);
  EXPECT_NEAR(empirical / expected, 1.0, 0.10);
}

TEST(ArrivalsTest, TraceReplaysOffsetsCyclically) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kTrace;
  spec.trace = {SimDuration::Micros(10), SimDuration::Micros(25),
                SimDuration::Micros(90)};
  spec.trace_period = SimDuration::Micros(100);
  ArrivalGenerator gen(spec, 1);  // seed must be irrelevant for traces
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (const SimDuration off : spec.trace) {
      const SimTime expect =
          SimTime{} + spec.trace_period * static_cast<std::int64_t>(cycle) + off;
      EXPECT_EQ(gen.Next().ns, expect.ns);
    }
  }
  EXPECT_EQ(gen.count(), 12u);
}

TEST(ArrivalsTest, TenantSeedsAreDistinctAndStable) {
  EXPECT_EQ(TenantSeed(42, 0), TenantSeed(42, 0));
  EXPECT_NE(TenantSeed(42, 0), TenantSeed(42, 1));
  EXPECT_NE(TenantSeed(42, 0), TenantSeed(43, 0));
}

TEST(ArrivalsTest, MergeEqualsTenantWiseInterleaving) {
  const std::vector<ArrivalSpec> specs = {Poisson(30000), Bursty(20000),
                                          Poisson(80000)};
  const std::uint64_t seed = 19;
  const SimTime horizon = SimTime{} + SimDuration::Millis(20);
  const auto merged = MergeArrivals(specs, seed, horizon);
  ASSERT_FALSE(merged.empty());

  // Ordered by (time, tenant), nothing past the horizon.
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const bool ordered = merged[i - 1].at < merged[i].at ||
                         (merged[i - 1].at == merged[i].at &&
                          merged[i - 1].tenant < merged[i].tenant);
    ASSERT_TRUE(ordered) << "merge out of order at " << i;
  }
  EXPECT_LE(merged.back().at.ns, horizon.ns);

  // Tenant i's subsequence of the merge is exactly tenant i's own stream.
  for (std::size_t tenant = 0; tenant < specs.size(); ++tenant) {
    ArrivalGenerator gen(specs[tenant], TenantSeed(seed, tenant));
    std::size_t matched = 0;
    for (const MergedArrival& m : merged) {
      if (m.tenant != tenant) {
        continue;
      }
      EXPECT_EQ(m.at.ns, gen.Next().ns)
          << "tenant " << tenant << " arrival " << matched;
      matched++;
    }
    EXPECT_GT(matched, 0u) << "tenant " << tenant << " absent from merge";
    // The next arrival of that tenant must lie beyond the horizon.
    EXPECT_GT(gen.Next().ns, horizon.ns);
  }
}

}  // namespace
}  // namespace memflow::testing
