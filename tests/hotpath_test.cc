// Copyright (c) memflow authors. MIT license.
//
// Tests for the dispatch hot-path machinery (DESIGN.md §14): the monotonic
// epoch arena, the memoized cost model and its churn invalidation contract,
// and the pooled-TaskContext path's determinism guarantee (pools on vs. off
// must be behaviourally invisible).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/arena.h"
#include "rts/cost_model.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace memflow {
namespace {

using memflow::testing::Fingerprint;
using memflow::testing::WideJob;

// --- MonotonicArena ----------------------------------------------------------

TEST(MonotonicArenaTest, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena;
  char* a = static_cast<char*>(arena.Allocate(13, 1));
  char* b = static_cast<char*>(arena.Allocate(64, 64));
  auto* c = arena.AllocateArray<std::uint64_t>(16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint64_t), 0u);
  // Writes to one allocation must not alias another.
  std::memset(a, 0xaa, 13);
  std::memset(b, 0xbb, 64);
  for (int i = 0; i < 16; ++i) {
    c[i] = 0xccccccccccccccccULL;
  }
  for (int i = 0; i < 13; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(a[i]), 0xaa);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(b[i]), 0xbb);
  }
  EXPECT_GE(arena.bytes_used(), 13u + 64u + 16u * 8u);
}

TEST(MonotonicArenaTest, GrowsAcrossBlocksAndResetRecyclesThem) {
  MonotonicArena arena(/*first_block_bytes=*/1024);
  // Force several block appends, including one larger than the default size.
  for (int i = 0; i < 64; ++i) {
    auto* p = arena.AllocateArray<std::uint64_t>(512);  // 4 KiB each
    p[0] = static_cast<std::uint64_t>(i);
    p[511] = ~static_cast<std::uint64_t>(i);
  }
  const std::size_t warm_capacity = arena.bytes_capacity();
  const std::uint64_t epoch_before = arena.epoch();
  EXPECT_GT(warm_capacity, 0u);

  // Steady state: the same allocation pattern after Reset() must be served
  // entirely from recycled blocks — capacity must not grow again. Under ASan
  // this also proves Allocate() unpoisons what Reset() poisoned: every byte
  // handed back out is written and read here.
  for (int round = 0; round < 3; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 64; ++i) {
      auto* p = arena.AllocateArray<std::uint64_t>(512);
      p[0] = static_cast<std::uint64_t>(round * 1000 + i);
      p[511] = p[0] ^ 0xffffffffffffffffULL;
      EXPECT_EQ(p[511], p[0] ^ 0xffffffffffffffffULL);
    }
    EXPECT_EQ(arena.bytes_capacity(), warm_capacity);
  }
  EXPECT_EQ(arena.epoch(), epoch_before + 3);
}

TEST(MonotonicArenaTest, ZeroByteAllocationsAreDistinct) {
  MonotonicArena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaVectorTest, PushBackGrowsAndKeepsContents) {
  MonotonicArena arena;
  ArenaVector<std::uint32_t> v(arena);
  EXPECT_TRUE(v.empty());
  for (std::uint32_t i = 0; i < 1000; ++i) {
    v.push_back(i * 3);
  }
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(v[i], i * 3);
  }
  std::uint64_t sum = 0;
  for (const std::uint32_t x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 3ull * 999 * 1000 / 2);
}

// --- cost-model memo ---------------------------------------------------------

TEST(CostModelMemoTest, RepeatEstimatesHitAndChurnInvalidates) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 2});
  rts::CostModel model(*rack.cluster);
  std::atomic<std::uint64_t> churn{1};
  model.BindInvalidationCounter(&churn);

  dataflow::TaskProperties props;
  props.base_work = 1e6;
  const simhw::ComputeDeviceId device = rack.cpus.front();

  auto first = model.Estimate(props, MiB(4), device);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(model.memo_hits(), 0u);
  EXPECT_EQ(model.memo_misses(), 1u);

  // Identical query: served from the memo, bit-identical answer.
  auto second = model.Estimate(props, MiB(4), device);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(model.memo_hits(), 1u);
  EXPECT_EQ(second->total.ns, first->total.ns);
  EXPECT_EQ(second->compute.ns, first->compute.ns);
  EXPECT_EQ(second->memory.ns, first->memory.ns);
  EXPECT_EQ(second->scratch_device.value, first->scratch_device.value);

  // A different query is its own entry, not a collision.
  auto other = model.Estimate(props, MiB(8), device);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(model.memo_misses(), 2u);
  EXPECT_GT(other->total.ns, first->total.ns);

  // Region churn (allocation, free, migration, device loss) bumps the
  // counter; the next lookup must flush the memo and recompute.
  churn.fetch_add(1, std::memory_order_release);
  auto after = model.Estimate(props, MiB(4), device);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(model.memo_hits(), 1u);
  EXPECT_EQ(model.memo_misses(), 3u);
  EXPECT_EQ(after->total.ns, first->total.ns);

  // With the epoch re-synced, repeats hit again.
  auto warm = model.Estimate(props, MiB(4), device);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(model.memo_hits(), 2u);
}

TEST(CostModelMemoTest, UnboundCounterDisablesMemo) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 2});
  rts::CostModel model(*rack.cluster);
  dataflow::TaskProperties props;
  const simhw::ComputeDeviceId device = rack.cpus.front();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(model.Estimate(props, MiB(1), device).ok());
  }
  EXPECT_EQ(model.memo_hits(), 0u);
  EXPECT_EQ(model.memo_misses(), 0u);
}

TEST(CostModelMemoTest, RuntimeBindsManagerChurnCounter) {
  // End-to-end: inside a runtime the memo is live (hits accumulate across a
  // job of identical tasks) and region churn keeps it honest.
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.worker_threads = 2;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  auto report = rt.SubmitAndRun(WideJob("memo", 12));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_GT(rt.cost_model().memo_hits() + rt.cost_model().memo_misses(), 0u);
}

// --- pooled contexts: determinism --------------------------------------------

struct PooledRun {
  std::string fingerprint;
  std::uint64_t selfprof_fingerprint = 0;
  std::uint64_t tasks_executed = 0;
};

PooledRun RunWidePooled(int workers, bool pools) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.worker_threads = workers;
  opts.registry = &reg;
  opts.hot_path_pools = pools;
  rts::Runtime rt(*rack.cluster, opts);
  PooledRun out;
  // Two jobs back-to-back so the second actually draws recycled contexts
  // from the pool the first one filled.
  for (int j = 0; j < 2; ++j) {
    auto report = rt.SubmitAndRun(WideJob("pooled" + std::to_string(j), 10));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
    out.fingerprint += Fingerprint(*report);
  }
  out.selfprof_fingerprint = rt.self_profiler().Fingerprint();
  out.tasks_executed = rt.stats().tasks_executed;
  return out;
}

TEST(HotPathDeterminismTest, PoolsOnAndOffAreIndistinguishable) {
  const PooledRun base = RunWidePooled(1, /*pools=*/true);
  EXPECT_GT(base.tasks_executed, 0u);
  for (const int workers : {1, 2, 8}) {
    const PooledRun on = RunWidePooled(workers, /*pools=*/true);
    const PooledRun off = RunWidePooled(workers, /*pools=*/false);
    EXPECT_EQ(on.fingerprint, off.fingerprint) << "workers=" << workers;
    EXPECT_EQ(on.selfprof_fingerprint, off.selfprof_fingerprint)
        << "workers=" << workers;
    EXPECT_EQ(on.tasks_executed, off.tasks_executed) << "workers=" << workers;
    // And both match the serial pooled baseline bit-for-bit.
    EXPECT_EQ(on.fingerprint, base.fingerprint) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace memflow
