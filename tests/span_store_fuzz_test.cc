// Copyright (c) memflow authors. MIT license.
//
// Model-based fuzz of the Carbink-style span store: a random interleaving of
// Put / Get / Delete / Flush / Compact / crash+recover is checked against a
// plain std::map reference. Under replication and erasure coding, no
// single-failure step (with repair) may ever lose or corrupt an object.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "ft/span_store.h"
#include "simhw/presets.h"

namespace memflow::ft {
namespace {

struct FuzzParam {
  Redundancy scheme;
  std::uint64_t seed;
};

class SpanStoreFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(SpanStoreFuzzTest, RandomOpsMatchReference) {
  const auto [scheme, seed] = GetParam();
  simhw::DisaggHandles rack =
      simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 10});
  region::RegionManager regions(*rack.cluster);
  StoreOptions options;
  options.scheme = scheme;
  options.replicas = 3;
  options.rs_data = 4;
  options.rs_parity = 2;
  options.span_bytes = 16 * kKiB;
  options.compaction_threshold = 0.3;
  SpanStore store(regions, rack.far_mem, rack.cpus[0], options);

  Rng rng(seed);
  std::map<std::uint32_t, std::vector<std::uint8_t>> reference;

  for (int step = 0; step < 300; ++step) {
    const std::uint64_t dice = rng.Below(100);
    if (dice < 35 || reference.empty()) {
      // Put an object of random size (spans fractions and multiples).
      std::vector<std::uint8_t> blob(1 + rng.Below(40 * kKiB));
      for (auto& b : blob) {
        b = static_cast<std::uint8_t>(rng.Below(256));
      }
      auto id = store.Put(blob);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      reference.emplace(id->value, std::move(blob));
    } else if (dice < 65) {
      // Get a random live object.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.Below(reference.size())));
      std::vector<std::uint8_t> out;
      ASSERT_TRUE(store.Get(ObjectId(it->first), out).ok()) << "step " << step;
      EXPECT_EQ(out, it->second) << "step " << step;
    } else if (dice < 80) {
      // Delete a random live object.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.Below(reference.size())));
      ASSERT_TRUE(store.Delete(ObjectId(it->first)).ok());
      reference.erase(it);
    } else if (dice < 88) {
      ASSERT_TRUE(store.Flush().ok());
    } else if (dice < 94) {
      auto report = store.Compact();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    } else if (scheme != Redundancy::kNone) {
      // Crash one node, repair, recover the node (empty) — redundancy must
      // carry every live object across.
      const std::size_t victim = rng.Below(rack.memory_node_ids.size());
      ASSERT_TRUE(rack.cluster->CrashNode(rack.memory_node_ids[victim]).ok());
      auto report = store.HandleDeviceFailure(rack.far_mem[victim]);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->objects_lost, 0) << "step " << step;
      ASSERT_TRUE(rack.cluster->RecoverNode(rack.memory_node_ids[victim]).ok());
    }
  }

  // Final audit: every reference object readable and byte-identical.
  for (const auto& [id, blob] : reference) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.Get(ObjectId(id), out).ok()) << "final audit " << id;
    EXPECT_EQ(out, blob) << "final audit " << id;
  }

  // Footprint sanity: raw bytes bounded by scheme overhead (+ slack for
  // unreclaimed garbage awaiting compaction).
  const StoreFootprint fp = store.footprint();
  if (fp.user_bytes > 0) {
    const double ceiling = scheme == Redundancy::kReplication ? 3.0 : 1.5;
    EXPECT_LT(fp.overhead(), ceiling * 6.0) << "runaway footprint";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SpanStoreFuzzTest,
    ::testing::Values(FuzzParam{Redundancy::kNone, 11},
                      FuzzParam{Redundancy::kReplication, 22},
                      FuzzParam{Redundancy::kReplication, 23},
                      FuzzParam{Redundancy::kErasureCoding, 33},
                      FuzzParam{Redundancy::kErasureCoding, 34}),
    [](const auto& info) {
      std::string name = std::string(RedundancyName(info.param.scheme)) + "_s" +
                         std::to_string(info.param.seed);
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace memflow::ft
