// Copyright (c) memflow authors. MIT license.
//
// Tests for the control-plane self-profiler (DESIGN.md §13): the telescoping
// accounting identity (exclusive sums to wall, residual < 1% against an
// externally measured wall), worker-count-independent phase fingerprints,
// the RegionManager contended-lock probes, checkpoint phase attribution, and
// the flamegraph / metrics exports.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rts/checkpoint.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/selfprof.h"

namespace memflow {
namespace {

using dataflow::TaskContext;
using telemetry::Phase;
using telemetry::PhaseStat;
using telemetry::PhaseTimer;
using telemetry::SelfProfile;
using telemetry::SelfProfiler;

// Calls charged to `phase`, summed over the control and worker trees (where a
// phase lands depends on the worker count; the sum does not).
std::uint64_t CallsOf(const SelfProfile& profile, Phase phase) {
  std::uint64_t calls = 0;
  for (const PhaseStat& ps : profile.phases) {
    if (ps.phase == phase) {
      calls += ps.calls;
    }
  }
  for (const PhaseStat& ps : profile.worker_phases) {
    if (ps.phase == phase) {
      calls += ps.calls;
    }
  }
  return calls;
}

std::int64_t SumExclusive(const std::vector<PhaseStat>& phases) {
  std::int64_t sum = 0;
  for (const PhaseStat& ps : phases) {
    sum += ps.exclusive_ns;
  }
  return sum;
}

void SpinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

// A task body with real work: a scratch-region write/read plus simulated
// compute, so profiled runs have non-trivial wall time at every phase.
Status MemcpyBody(TaskContext& ctx) {
  constexpr std::uint64_t kBytes = KiB(512);
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s, ctx.AllocatePrivateScratch(kBytes));
  MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(s));
  std::vector<std::uint64_t> buf(kBytes / 8, 0x5e1fULL);
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration w, acc.Write(0, buf.data(), kBytes));
  ctx.Charge(w);
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration r, acc.Read(0, buf.data(), kBytes));
  ctx.Charge(r);
  ctx.ChargeCompute(1e5);
  return OkStatus();
}

dataflow::Job FanJob(int tasks) {
  dataflow::Job job("selfprof");
  for (int i = 0; i < tasks; ++i) {
    job.AddTask("t" + std::to_string(i), {}, MemcpyBody);
  }
  return job;
}

// --- accounting identity ------------------------------------------------------

TEST(SelfProfilerTest, NestedScopesTelescopeExactly) {
  SelfProfiler prof;
  {
    PhaseTimer dispatch(&prof, Phase::kDispatch);
    {
      PhaseTimer stage(&prof, Phase::kStage);
      SpinFor(std::chrono::microseconds(200));
    }
    {
      PhaseTimer run(&prof, Phase::kBatchRun);
      PhaseTimer body(&prof, Phase::kBody);
      SpinFor(std::chrono::microseconds(200));
    }
  }
  const SelfProfile p = prof.Report();

  // No external wall given: wall is the summed root inclusive time, and the
  // exclusive breakdown telescopes to it with zero residual by construction.
  EXPECT_GT(p.wall_ns, 0);
  EXPECT_EQ(p.residual_ns, 0);
  EXPECT_EQ(SumExclusive(p.phases), p.wall_ns);

  std::int64_t dispatch_incl = 0;
  std::int64_t children_incl = 0;
  for (const PhaseStat& ps : p.phases) {
    if (ps.phase == Phase::kDispatch) {
      dispatch_incl = ps.inclusive_ns;
      EXPECT_EQ(ps.calls, 1u);
    } else if (ps.phase == Phase::kStage || ps.phase == Phase::kBatchRun) {
      children_incl += ps.inclusive_ns;
      EXPECT_GE(ps.inclusive_ns, 200 * 1000);
    }
  }
  // The dispatch root's inclusive time is the whole wall; its exclusive time
  // is what its direct children did not cover.
  EXPECT_EQ(dispatch_incl, p.wall_ns);
  for (const PhaseStat& ps : p.phases) {
    if (ps.phase == Phase::kDispatch) {
      EXPECT_EQ(ps.exclusive_ns, dispatch_incl - children_incl);
    }
  }
}

TEST(SelfProfilerTest, StopIsIdempotentAndReturnsElapsed) {
  SelfProfiler prof;
  PhaseTimer t(&prof, Phase::kAdmission);
  SpinFor(std::chrono::microseconds(50));
  const std::int64_t first = t.Stop();
  EXPECT_GE(first, 50 * 1000);
  EXPECT_EQ(t.Stop(), 0);
  const SelfProfile p = prof.Report();
  EXPECT_EQ(CallsOf(p, Phase::kAdmission), 1u);
}

TEST(SelfProfilerTest, ChargeWithoutScopeLandsInWorkerTree) {
  SelfProfiler prof;
  // Lock-wait probes measure their own interval and charge it; with no open
  // scope on this thread they root in the workers tree (they would otherwise
  // double-book the control-plane wall).
  prof.Charge(Phase::kLockWaitExclusive, 1234);
  const SelfProfile p = prof.Report();
  EXPECT_EQ(p.workers_ns, 1234);
  bool found = false;
  for (const PhaseStat& ps : p.worker_phases) {
    if (ps.phase == Phase::kLockWaitExclusive) {
      found = true;
      EXPECT_EQ(ps.calls, 1u);
      EXPECT_EQ(ps.inclusive_ns, 1234);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SelfProfilerTest, DisabledProfilerRecordsNothing) {
  SelfProfiler prof(/*enabled=*/false);
  {
    PhaseTimer t(&prof, Phase::kDispatch);
    PhaseTimer u(&prof, Phase::kStage);
  }
  prof.Charge(Phase::kLockWaitShared, 999);
  const SelfProfile p = prof.Report();
  EXPECT_EQ(p.wall_ns, 0);
  EXPECT_EQ(p.workers_ns, 0);
  for (const PhaseStat& ps : p.phases) {
    EXPECT_EQ(ps.calls, 0u);
  }
  // Null profiler pointers are equally inert.
  PhaseTimer none(nullptr, Phase::kBody);
  EXPECT_EQ(none.Stop(), 0);
}

// --- runtime integration ------------------------------------------------------

TEST(SelfProfilerTest, ResidualUnderOnePercentOfMeasuredWall) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.worker_threads = 2;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  dataflow::Job job = FanJob(48);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = rt.SubmitAndRun(std::move(job));
  const auto t1 = std::chrono::steady_clock::now();
  ASSERT_TRUE(report.ok() && report->status.ok());
  const std::int64_t wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();

  const SelfProfile p = rt.self_profiler().Report(wall_ns);
  EXPECT_EQ(p.wall_ns, wall_ns);
  // The unprofiled slack (SubmitAndRun glue, report assembly) must stay under
  // 1% of the measured wall: the phase breakdown explains the rest.
  EXPECT_GE(p.residual_ns, 0);
  EXPECT_LT(static_cast<double>(p.residual_ns), 0.01 * static_cast<double>(wall_ns));
  EXPECT_EQ(SumExclusive(p.phases) + p.residual_ns, wall_ns);

  // The dispatch loop phases all fired.
  EXPECT_GT(CallsOf(p, Phase::kDispatch), 0u);
  EXPECT_EQ(CallsOf(p, Phase::kAdmission), 1u);
  EXPECT_EQ(CallsOf(p, Phase::kAdmissionVerify), 1u);
  EXPECT_EQ(CallsOf(p, Phase::kStage), 48u);
  EXPECT_EQ(CallsOf(p, Phase::kBody), 48u);
  EXPECT_EQ(CallsOf(p, Phase::kPlacementScore), 48u);
  EXPECT_GT(CallsOf(p, Phase::kBatchRun), 0u);
  EXPECT_GT(CallsOf(p, Phase::kBatchCommit), 0u);
}

TEST(SelfProfilerTest, FingerprintIsWorkerCountInvariant) {
  const auto fingerprint_at = [](int workers) {
    simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
    telemetry::Registry reg;
    rts::RuntimeOptions opts;
    opts.seed = 7;
    opts.worker_threads = workers;
    opts.registry = &reg;
    rts::Runtime rt(*rack.cluster, opts);
    auto report = rt.SubmitAndRun(FanJob(24));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
    return rt.self_profiler().Fingerprint();
  };
  const std::uint64_t f1 = fingerprint_at(1);
  const std::uint64_t f2 = fingerprint_at(2);
  const std::uint64_t f8 = fingerprint_at(8);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f2, f8);
  EXPECT_NE(f1, 0u);

  // A different workload has a different deterministic shape.
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.seed = 7;
  opts.worker_threads = 2;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  auto report = rt.SubmitAndRun(FanJob(23));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_NE(rt.self_profiler().Fingerprint(), f1);
}

TEST(SelfProfilerTest, RegionLockProbesPublishCounters) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.worker_threads = 4;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  auto report = rt.SubmitAndRun(FanJob(24));
  ASSERT_TRUE(report.ok() && report->status.ok());

  const telemetry::MetricsSnapshot snap = reg.Snapshot();
  const telemetry::FamilySnapshot* acq = snap.FindFamily("region_lock_acquisitions_total");
  ASSERT_NE(acq, nullptr);
  // The probes split by mode and path (DESIGN.md §8): task bodies take the
  // striped per-region locks (path=data), the control thread takes the
  // manager-wide lock (path=control). This workload drives both.
  const telemetry::SeriesSnapshot* data_shared =
      acq->Find({{"mode", "shared"}, {"path", "data"}});
  const telemetry::SeriesSnapshot* ctrl_exclusive =
      acq->Find({{"mode", "exclusive"}, {"path", "control"}});
  ASSERT_NE(data_shared, nullptr);
  ASSERT_NE(ctrl_exclusive, nullptr);
  EXPECT_GT(data_shared->counter, 0u);
  EXPECT_GT(ctrl_exclusive->counter, 0u);

  // Contended acquisitions are a subset of all acquisitions, per series.
  const telemetry::FamilySnapshot* cont = snap.FindFamily("region_lock_contended_total");
  ASSERT_NE(cont, nullptr);
  for (const char* path : {"data", "control"}) {
    for (const char* mode : {"shared", "exclusive"}) {
      const telemetry::Labels labels = {{"mode", mode}, {"path", path}};
      const telemetry::SeriesSnapshot* c = cont->Find(labels);
      const telemetry::SeriesSnapshot* a = acq->Find(labels);
      if (c != nullptr && a != nullptr) {
        EXPECT_LE(c->counter, a->counter);
      }
    }
  }
}

TEST(SelfProfilerTest, CheckpointPhasesAreAttributed) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::JobCheckpointer ckpt(*host.cluster, host.pmem);

  dataflow::Job make_outputs("ckpt");
  for (int i = 0; i < 3; ++i) {
    make_outputs.AddTask("t" + std::to_string(i), {}, [](TaskContext& ctx) -> Status {
      MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(KiB(64)));
      MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(out));
      std::vector<std::uint64_t> buf(KiB(64) / 8, 42);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration w, acc.Write(0, buf.data(), KiB(64)));
      ctx.Charge(w);
      return OkStatus();
    });
  }

  // First run: every output is encoded. Single worker, so the checkpoint
  // scopes nest under the control-plane body phase deterministically.
  {
    telemetry::Registry reg;
    rts::RuntimeOptions opts;
    opts.worker_threads = 1;
    opts.registry = &reg;
    rts::Runtime rt(*host.cluster, opts);
    ckpt.BindProfiler(&rt.self_profiler());
    auto report = rt.SubmitAndRun(ckpt.Instrument(make_outputs));
    ASSERT_TRUE(report.ok() && report->status.ok());
    const SelfProfile p = rt.self_profiler().Report();
    EXPECT_EQ(CallsOf(p, Phase::kCheckpointEncode), 3u);
    EXPECT_EQ(CallsOf(p, Phase::kCheckpointRestore), 0u);
  }

  // Re-run after the "crash": every task restores instead of executing.
  {
    telemetry::Registry reg;
    rts::RuntimeOptions opts;
    opts.worker_threads = 1;
    opts.registry = &reg;
    rts::Runtime rt(*host.cluster, opts);
    ckpt.BindProfiler(&rt.self_profiler());
    auto report = rt.SubmitAndRun(ckpt.Instrument(make_outputs));
    ASSERT_TRUE(report.ok() && report->status.ok());
    const SelfProfile p = rt.self_profiler().Report();
    EXPECT_EQ(CallsOf(p, Phase::kCheckpointRestore), 3u);
    EXPECT_EQ(CallsOf(p, Phase::kCheckpointEncode), 0u);
  }
}

// --- exports ------------------------------------------------------------------

TEST(SelfProfilerTest, CollapsedStacksRenderNestedFrames) {
  SelfProfiler prof;
  {
    PhaseTimer dispatch(&prof, Phase::kDispatch);
    PhaseTimer stage(&prof, Phase::kStage);
    SpinFor(std::chrono::microseconds(20));
  }
  prof.Charge(Phase::kLockWaitExclusive, 777);
  const std::string stacks = prof.CollapsedStacks();
  EXPECT_NE(stacks.find("dispatch;stage "), std::string::npos);
  EXPECT_NE(stacks.find("workers;lock-wait-exclusive 777"), std::string::npos);
}

TEST(SelfProfilerTest, PublishToExportsPhaseGauges) {
  SelfProfiler prof;
  {
    PhaseTimer dispatch(&prof, Phase::kDispatch);
    PhaseTimer drain(&prof, Phase::kEventDrain);
    SpinFor(std::chrono::microseconds(20));
  }
  telemetry::Registry reg;
  prof.PublishTo(reg);
  const telemetry::MetricsSnapshot snap = reg.Snapshot();

  const telemetry::FamilySnapshot* wall = snap.FindFamily("selfprof_wall_ns");
  ASSERT_NE(wall, nullptr);
  ASSERT_EQ(wall->series.size(), 1u);
  EXPECT_GT(wall->series[0].gauge, 0.0);

  const telemetry::FamilySnapshot* excl = snap.FindFamily("selfprof_phase_exclusive_ns");
  ASSERT_NE(excl, nullptr);
  const telemetry::SeriesSnapshot* drain_series =
      excl->Find({{"phase", "event-drain"}, {"scope", "control"}});
  ASSERT_NE(drain_series, nullptr);
  EXPECT_GT(drain_series->gauge, 0.0);

  const telemetry::FamilySnapshot* calls = snap.FindFamily("selfprof_phase_calls");
  ASSERT_NE(calls, nullptr);
  const telemetry::SeriesSnapshot* dispatch_calls =
      calls->Find({{"phase", "dispatch"}, {"scope", "control"}});
  ASSERT_NE(dispatch_calls, nullptr);
  EXPECT_EQ(dispatch_calls->gauge, 1.0);

  // Gauges overwrite on re-publish instead of accumulating.
  prof.PublishTo(reg);
  const telemetry::MetricsSnapshot again = reg.Snapshot();
  EXPECT_EQ(again.FindFamily("selfprof_phase_calls")
                ->Find({{"phase", "dispatch"}, {"scope", "control"}})
                ->gauge,
            1.0);
}

}  // namespace
}  // namespace memflow
