// Copyright (c) memflow authors. MIT license.
//
// Tests for job checkpoint/restart (Challenge 8: stop-and-restart recovery).

#include <gtest/gtest.h>

#include "rts/checkpoint.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::rts {
namespace {

using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskId;

// Chain: produce -> double -> finish. Counts executions per task so tests can
// observe which tasks were skipped on restart.
struct ExecCounts {
  int produce = 0;
  int dbl = 0;
  int finish = 0;
};

Job MakeChain(ExecCounts* counts, bool poison_finish) {
  Job job("chain");
  const TaskId p = job.AddTask("produce", {}, [counts](TaskContext& ctx) -> Status {
    counts->produce++;
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(8 * 100));
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(out));
    for (std::uint64_t i = 0; i < 100; ++i) {
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration c, acc.Store(i, i + 1));
      ctx.Charge(c);
    }
    ctx.ChargeCompute(1e5);
    return OkStatus();
  });
  const TaskId d = job.AddTask("double", {}, [counts](TaskContext& ctx) -> Status {
    counts->dbl++;
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor in, ctx.OpenSync(ctx.inputs().front()));
    std::vector<std::uint64_t> data(in.size() / 8);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration rc, in.Read(0, data.data(), in.size()));
    ctx.Charge(rc);
    for (auto& v : data) {
      v *= 2;
    }
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(in.size()));
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor oa, ctx.OpenSync(out));
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration wc, oa.Write(0, data.data(), in.size()));
    ctx.Charge(wc);
    ctx.ChargeCompute(1e5);
    return OkStatus();
  });
  const TaskId f = job.AddTask(
      "finish", {}, [counts, poison_finish](TaskContext& ctx) -> Status {
        counts->finish++;
        if (poison_finish) {
          return Unavailable("injected crash");
        }
        MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor in, ctx.OpenSync(ctx.inputs().front()));
        std::uint64_t sum = 0;
        std::vector<std::uint64_t> data(in.size() / 8);
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration rc, in.Read(0, data.data(), in.size()));
        ctx.Charge(rc);
        for (const std::uint64_t v : data) {
          sum += v;
        }
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(8));
        MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor oa, ctx.OpenSync(out));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration wc, oa.Store(0, sum));
        ctx.Charge(wc);
        return OkStatus();
      });
  MEMFLOW_CHECK(job.Connect(p, d).ok());
  MEMFLOW_CHECK(job.Connect(d, f).ok());
  return job;
}

std::uint64_t ExpectedSum() {
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    sum += (i + 1) * 2;
  }
  return sum;
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : host_(simhw::MakeCxlExpansionHost()) {}
  simhw::CxlHostHandles host_;
};

TEST_F(CheckpointTest, RequiresPersistentMedia) {
  EXPECT_DEATH(JobCheckpointer(*host_.cluster, host_.dram), "persistent");
}

TEST_F(CheckpointTest, RestartSkipsCheckpointedTasks) {
  JobCheckpointer ckpt(*host_.cluster, host_.pmem);
  ExecCounts counts;

  // Run 1: the final task fails -> the job fails, but produce/double are
  // checkpointed.
  {
    rts::RuntimeOptions options;
    options.max_task_attempts = 1;
    Runtime rt(*host_.cluster, options);
    auto report = rt.SubmitAndRun(ckpt.Instrument(MakeChain(&counts, true)));
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->status.ok());
  }
  EXPECT_EQ(counts.produce, 1);
  EXPECT_EQ(counts.dbl, 1);
  EXPECT_EQ(counts.finish, 1);
  EXPECT_TRUE(ckpt.HasCheckpoint("chain", "produce"));
  EXPECT_TRUE(ckpt.HasCheckpoint("chain", "double"));
  EXPECT_FALSE(ckpt.HasCheckpoint("chain", "finish"));
  EXPECT_EQ(ckpt.stats().checkpoints_written, 2u);

  // Run 2 (fresh runtime, fault cleared): produce/double restore instead of
  // re-executing; only finish runs.
  {
    Runtime rt(*host_.cluster);
    auto report = rt.SubmitAndRun(ckpt.Instrument(MakeChain(&counts, false)));
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->status.ok()) << report->status.ToString();
    EXPECT_EQ(counts.produce, 1);  // unchanged: restored, not re-run
    EXPECT_EQ(counts.dbl, 1);
    EXPECT_EQ(counts.finish, 2);
    EXPECT_EQ(ckpt.stats().tasks_restored, 2u);

    // And the result is correct despite the partial re-execution.
    auto acc = rt.regions().OpenSync(report->outputs.front(),
                                     rt.JobPrincipal(report->id), host_.cpu);
    ASSERT_TRUE(acc.ok());
    std::uint64_t sum = 0;
    ASSERT_TRUE(acc->Load(0, sum).ok());
    EXPECT_EQ(sum, ExpectedSum());
  }
}

TEST_F(CheckpointTest, CheckpointsSurviveDeviceCrash) {
  JobCheckpointer ckpt(*host_.cluster, host_.pmem);
  ExecCounts counts;
  {
    rts::RuntimeOptions options;
    options.max_task_attempts = 1;
    Runtime rt(*host_.cluster, options);
    (void)rt.SubmitAndRun(ckpt.Instrument(MakeChain(&counts, true)));
  }
  // The persistent device crashes and recovers: checkpoints must survive.
  host_.cluster->memory(host_.pmem).Fail();
  host_.cluster->memory(host_.pmem).Recover();

  Runtime rt(*host_.cluster);
  auto report = rt.SubmitAndRun(ckpt.Instrument(MakeChain(&counts, false)));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->status.ok());
  EXPECT_EQ(counts.produce, 1);  // still restored from the surviving checkpoint
  auto acc = rt.regions().OpenSync(report->outputs.front(), rt.JobPrincipal(report->id),
                                   host_.cpu);
  std::uint64_t sum = 0;
  ASSERT_TRUE(acc->Load(0, sum).ok());
  EXPECT_EQ(sum, ExpectedSum());
}

TEST_F(CheckpointTest, DiscardFreesStorage) {
  JobCheckpointer ckpt(*host_.cluster, host_.pmem);
  ExecCounts counts;
  Runtime rt(*host_.cluster);
  auto report = rt.SubmitAndRun(ckpt.Instrument(MakeChain(&counts, false)));
  ASSERT_TRUE(report.ok() && report->status.ok());
  const std::uint64_t used = host_.cluster->memory(host_.pmem).used();
  EXPECT_GT(used, 0u);
  ckpt.Discard("chain");
  EXPECT_FALSE(ckpt.HasCheckpoint("chain", "produce"));
  EXPECT_LT(host_.cluster->memory(host_.pmem).used(), used);
}

TEST_F(CheckpointTest, CheckpointOverheadIsCharged) {
  // The same job runs slower with checkpointing enabled (write costs are on
  // the tasks), buying the restart speedup — the trade Challenge 8 describes.
  ExecCounts c1;
  Runtime rt1(*host_.cluster);
  auto plain = rt1.SubmitAndRun(MakeChain(&c1, false));
  ASSERT_TRUE(plain.ok() && plain->status.ok());

  JobCheckpointer ckpt(*host_.cluster, host_.pmem);
  ExecCounts c2;
  Runtime rt2(*host_.cluster);
  auto with_ckpt = rt2.SubmitAndRun(ckpt.Instrument(MakeChain(&c2, false)));
  ASSERT_TRUE(with_ckpt.ok() && with_ckpt->status.ok());

  EXPECT_GT(with_ckpt->Makespan().ns, plain->Makespan().ns);
  EXPECT_GT(ckpt.stats().write_cost.ns, 0);
}

TEST_F(CheckpointTest, OutputlessTasksSkippedOnRestart) {
  JobCheckpointer ckpt(*host_.cluster, host_.pmem);
  int runs = 0;
  const auto make = [&runs] {
    Job job("sideeffect");
    job.AddTask("noout", {}, [&runs](TaskContext& ctx) -> Status {
      runs++;
      ctx.ChargeCompute(1e4);
      return OkStatus();
    });
    return job;
  };
  Runtime rt(*host_.cluster);
  ASSERT_TRUE(rt.SubmitAndRun(ckpt.Instrument(make())).ok());
  EXPECT_EQ(runs, 1);
  Runtime rt2(*host_.cluster);
  auto report = rt2.SubmitAndRun(ckpt.Instrument(make()));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_EQ(runs, 1);  // skipped via the empty marker
}

}  // namespace
}  // namespace memflow::rts
