// Copyright (c) memflow authors. MIT license.
//
// Unit tests for the common substrate: status/result, rng, units, hashing,
// string helpers, and the table renderer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace memflow {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = NotFound("no such region");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such region");
  EXPECT_EQ(s.ToString(), "not_found: no such region");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  MEMFLOW_ASSIGN_OR_RETURN(int h, Half(x));
  MEMFLOW_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 500 draws
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Exponential(100.0);
  }
  EXPECT_NEAR(sum / kN, 100.0, 3.0);
}

TEST(ZipfTest, RankZeroIsHottest) {
  Rng rng(17);
  ZipfGenerator zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(19);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

// --- Units ---------------------------------------------------------------------

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(KiB(2), 2048u);
  EXPECT_EQ(MiB(1), 1048576u);
  EXPECT_EQ(GiB(1), 1073741824u);
}

TEST(UnitsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanBytes(KiB(1)), "1.00 KiB");
  EXPECT_EQ(HumanBytes(MiB(1) + MiB(1) / 2), "1.50 MiB");
  EXPECT_EQ(HumanBytes(GiB(3)), "3.00 GiB");
}

TEST(UnitsTest, DurationArithmetic) {
  const SimDuration a = SimDuration::Micros(2);
  const SimDuration b = SimDuration::Nanos(500);
  EXPECT_EQ((a + b).ns, 2500);
  EXPECT_EQ((a - b).ns, 1500);
  EXPECT_EQ((b * 4).ns, 2000);
  EXPECT_LT(b, a);
}

TEST(UnitsTest, TimePlusDuration) {
  const SimTime t = SimTime{} + SimDuration::Millis(1);
  EXPECT_EQ(t.ns, 1000000);
  EXPECT_EQ((t - SimTime{}).ns, 1000000);
}

TEST(UnitsTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(SimDuration::Nanos(15)), "15 ns");
  EXPECT_EQ(HumanDuration(SimDuration::Micros(12)), "12.000 us");
  EXPECT_EQ(HumanDuration(SimDuration::Millis(3)), "3.000 ms");
  EXPECT_EQ(HumanDuration(SimDuration::Seconds(2)), "2.000 s");
}

// --- Hash -----------------------------------------------------------------------

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, MixU64Bijective) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(MixU64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2), HashCombine(HashCombine(0, 2), 1));
}

// --- Strings ---------------------------------------------------------------------

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(12345678), "12,345,678");
}

TEST(StringsTest, Split) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, HasPrefix) {
  EXPECT_TRUE(HasPrefix("memflow", "mem"));
  EXPECT_FALSE(HasPrefix("mem", "memflow"));
}

// --- Table -----------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"Name", "Value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| Name "), std::string::npos);
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  // Every line has the same width.
  std::size_t width = 0;
  for (const auto line : SplitString(out, '\n')) {
    if (line.empty()) {
      continue;
    }
    if (width == 0) {
      width = line.size();
    }
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TableTest, RuleSeparatesSections) {
  TextTable t({"x"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  const std::string out = t.Render();
  // header rule + top + bottom + the explicit one = 4 dashes lines
  int rules = 0;
  for (const auto line : SplitString(out, '\n')) {
    if (!line.empty() && line[0] == '+') {
      rules++;
    }
  }
  EXPECT_EQ(rules, 4);
}

}  // namespace
}  // namespace memflow
