// Copyright (c) memflow authors. MIT license.
//
// Pins the FaultInjector's ordering contract: ApplyDue() applies events in
// ascending timestamp order, and events sharing a timestamp apply in the
// order they were Add()ed (stable sort). The simulation-testing harness
// (src/testing/fault_plan.cc) depends on this when it emits a fail event and
// its recovery: if the repair delay is zero, the fail must still land first.

#include <gtest/gtest.h>

#include "simhw/fault.h"
#include "simhw/presets.h"

namespace memflow::simhw {
namespace {

TEST(FaultInjectorTest, SameTimestampEventsApplyInInsertionOrder) {
  CxlHostHandles host = MakeCxlExpansionHost();
  FaultInjector injector(*host.cluster);

  // Inserted out of timestamp order, with two same-timestamp pairs whose
  // final device state depends on insertion order being preserved.
  injector.FailDeviceAt(SimTime{300}, host.cxl_dram);     // pair B, first in
  injector.FailDeviceAt(SimTime{100}, host.dram);         // pair A, first in
  injector.RecoverDeviceAt(SimTime{100}, host.dram);      // pair A, second in
  injector.FailDeviceAt(SimTime{200}, host.gddr);
  injector.RecoverDeviceAt(SimTime{300}, host.cxl_dram);  // pair B, second in

  EXPECT_EQ(injector.ApplyDue(SimTime{400}), 5u);

  // Fired order is the stable sort by timestamp: within t=100 and t=300 the
  // fail (inserted first) precedes the recover (inserted second).
  const auto& fired = injector.fired();
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_EQ(fired[0].at, SimTime{100});
  EXPECT_EQ(fired[0].kind, FaultEvent::Kind::kDeviceFail);
  EXPECT_EQ(fired[0].device, host.dram);
  EXPECT_EQ(fired[1].at, SimTime{100});
  EXPECT_EQ(fired[1].kind, FaultEvent::Kind::kDeviceRecover);
  EXPECT_EQ(fired[1].device, host.dram);
  EXPECT_EQ(fired[2].at, SimTime{200});
  EXPECT_EQ(fired[2].kind, FaultEvent::Kind::kDeviceFail);
  EXPECT_EQ(fired[2].device, host.gddr);
  EXPECT_EQ(fired[3].at, SimTime{300});
  EXPECT_EQ(fired[3].kind, FaultEvent::Kind::kDeviceFail);
  EXPECT_EQ(fired[3].device, host.cxl_dram);
  EXPECT_EQ(fired[4].at, SimTime{300});
  EXPECT_EQ(fired[4].kind, FaultEvent::Kind::kDeviceRecover);
  EXPECT_EQ(fired[4].device, host.cxl_dram);

  // Because fail-then-recover applied in insertion order, both devices end
  // healthy; the unpaired t=200 fail leaves gddr down.
  EXPECT_FALSE(host.cluster->memory(host.dram).failed());
  EXPECT_FALSE(host.cluster->memory(host.cxl_dram).failed());
  EXPECT_TRUE(host.cluster->memory(host.gddr).failed());
}

TEST(FaultInjectorTest, PartialApplyStopsAtNowAndKeepsOrder) {
  CxlHostHandles host = MakeCxlExpansionHost();
  FaultInjector injector(*host.cluster);

  injector.FailDeviceAt(SimTime{500}, host.gddr);
  injector.FailDeviceAt(SimTime{100}, host.dram);
  injector.RecoverDeviceAt(SimTime{100}, host.dram);

  // PendingTimes is the sorted schedule, duplicates preserved.
  const std::vector<SimTime> times = injector.PendingTimes();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], SimTime{100});
  EXPECT_EQ(times[1], SimTime{100});
  EXPECT_EQ(times[2], SimTime{500});

  // Only the two t=100 events are due; they apply in insertion order.
  EXPECT_EQ(injector.ApplyDue(SimTime{100}), 2u);
  EXPECT_FALSE(host.cluster->memory(host.dram).failed());
  EXPECT_EQ(injector.pending(), 1u);
  EXPECT_EQ(injector.fired().size(), 2u);
  EXPECT_EQ(injector.fired()[0].kind, FaultEvent::Kind::kDeviceFail);
  EXPECT_EQ(injector.fired()[1].kind, FaultEvent::Kind::kDeviceRecover);

  // The rest fires later.
  EXPECT_EQ(injector.ApplyDue(SimTime{600}), 1u);
  EXPECT_TRUE(host.cluster->memory(host.gddr).failed());
  EXPECT_EQ(injector.pending(), 0u);
}

}  // namespace
}  // namespace memflow::simhw
