// Copyright (c) memflow authors. MIT license.
//
// Crash-point sweep (DESIGN.md §10): on the memory-centric pool — whose pool
// node is a pure memory failure domain holding the persistent checkpoint
// media — a checkpointed chain job is run once fault-free to harvest its
// scheduler event times (every task start and finish). Then, for every event
// time t, a fresh cluster runs the same job with the pool node crashed at
// t-1ns, the node is recovered, and the job is resubmitted against the
// surviving checkpoint catalog. Restored sink outputs must be byte-identical
// to the fault-free run at *every* crash point: before admission effects,
// mid-chain, and just before the final completion.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "rts/checkpoint.h"
#include "rts/runtime.h"
#include "testing/scenario.h"
#include "testing/workload.h"

namespace memflow::testing {
namespace {

// A five-task chain; every edge is an exclusive kAuto handover, so each crash
// point bisects the chain into checkpointed and to-be-rerun halves.
JobSpec ChainSpec() {
  JobSpec spec;
  spec.name = "sweep-chain";
  for (int i = 0; i < 5; ++i) {
    TaskGen t;
    t.name = "t" + std::to_string(i);
    t.salt = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    t.output_bytes = 256;
    t.base_work = 4000 + 1000 * i;
    t.work_per_byte = 0.01;
    spec.tasks.push_back(t);
    if (i > 0) {
      spec.edges.push_back({i - 1, i, dataflow::EdgeMode::kAuto, false});
    }
  }
  return spec;
}

simhw::NodeId PoolNode(const simhw::Cluster& cluster) {
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    const simhw::Node& n = cluster.node(simhw::NodeId{static_cast<std::uint32_t>(i)});
    if (n.compute.empty()) {
      return n.id;
    }
  }
  return {};
}

struct SweepRun {
  bool ok = false;
  std::vector<std::vector<char>> outputs;   // retained sink bytes, task order
  std::vector<SimTime> events;              // distinct task start/finish times
};

// One runtime lifetime over the (instrumented) chain. With `crash_at` set the
// pool node goes down at that instant and stays down; the run is then allowed
// to fail — the sweep only requires the *restored* run to match.
SweepRun RunChain(TopologyInstance& inst, rts::JobCheckpointer& ckpt,
                  std::optional<SimTime> crash_at, simhw::NodeId victim) {
  SweepRun run;
  simhw::FaultInjector injector(*inst.cluster);
  rts::RuntimeOptions ropts;
  ropts.worker_threads = 1;
  rts::Runtime rt(*inst.cluster, ropts);
  if (crash_at) {
    injector.CrashNodeAt(*crash_at, victim);
    rt.AttachFaultInjector(&injector);
  }
  auto id = rt.Submit(ckpt.Instrument(BuildJob(ChainSpec())));
  if (!id.ok() || !rt.RunToCompletion().ok()) {
    return run;
  }
  const rts::JobReport& report = rt.report(*id);
  if (!report.status.ok()) {
    return run;
  }
  run.ok = true;
  for (const region::RegionId out : report.outputs) {
    auto acc = rt.regions().OpenAsync(out, rt.JobPrincipal(*id), inst.reader);
    if (!acc.ok()) {
      run.ok = false;
      return run;
    }
    std::vector<char> bytes(acc->size());
    acc->EnqueueRead(0, bytes.data(), bytes.size());
    if (!acc->Drain().ok()) {
      run.ok = false;
      return run;
    }
    run.outputs.push_back(std::move(bytes));
  }
  for (const rts::TaskReport& t : report.tasks) {
    run.events.push_back(t.start);
    run.events.push_back(t.finish);
  }
  std::sort(run.events.begin(), run.events.end());
  run.events.erase(std::unique(run.events.begin(), run.events.end()),
                   run.events.end());
  return run;
}

TEST(CrashSweepTest, RestoredOutputsByteIdenticalAtEveryCrashPoint) {
  // Fault-free reference: same instrumentation as the sweep legs so its
  // timeline (checkpoint write costs included) matches phase A exactly.
  TopologyInstance ref_inst = BuildTopology(TopologyKind::kMemoryPool);
  ASSERT_TRUE(ref_inst.persistent_device.has_value());
  rts::JobCheckpointer ref_ckpt(*ref_inst.cluster, *ref_inst.persistent_device);
  const SweepRun ref =
      RunChain(ref_inst, ref_ckpt, std::nullopt, simhw::NodeId{});
  ASSERT_TRUE(ref.ok);
  ASSERT_FALSE(ref.outputs.empty());
  ASSERT_GE(ref.events.size(), 2u);

  int swept = 0;
  for (const SimTime t : ref.events) {
    if (t.ns <= 0) {
      continue;  // nothing schedulable strictly before t=0
    }
    const SimTime crash{t.ns - 1};
    TopologyInstance inst = BuildTopology(TopologyKind::kMemoryPool);
    ASSERT_TRUE(inst.persistent_device.has_value());
    const simhw::NodeId victim = PoolNode(*inst.cluster);
    ASSERT_TRUE(victim.valid());
    rts::JobCheckpointer ckpt(*inst.cluster, *inst.persistent_device);

    // Phase A: crash at t-1 and leave the node down. The job usually fails
    // (pool memory and checkpoint media are gone); whatever it managed to
    // checkpoint before the crash is the recovery state.
    (void)RunChain(inst, ckpt, crash, victim);

    // Phase B: heal the node, resubmit against the surviving catalog.
    ASSERT_TRUE(inst.cluster->RecoverNode(victim).ok());
    const SweepRun restored = RunChain(inst, ckpt, std::nullopt, victim);
    ASSERT_TRUE(restored.ok) << "restored run failed for crash at t=" << crash.ns;
    ASSERT_EQ(restored.outputs.size(), ref.outputs.size())
        << "crash at t=" << crash.ns;
    for (std::size_t i = 0; i < ref.outputs.size(); ++i) {
      EXPECT_EQ(restored.outputs[i], ref.outputs[i])
          << "output " << i << " diverged for crash at t=" << crash.ns;
    }
    ++swept;
  }
  // Five tasks give ten scheduler events; at least the finishes are > 0.
  EXPECT_GE(swept, 5);
}

}  // namespace
}  // namespace memflow::testing
