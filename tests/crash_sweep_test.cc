// Copyright (c) memflow authors. MIT license.
//
// Crash-point sweep (DESIGN.md §10): on the memory-centric pool — whose pool
// node is a pure memory failure domain holding the persistent checkpoint
// media — a checkpointed chain job is run once fault-free to harvest its
// scheduler event times (every task start and finish). Then, for every event
// time t, a fresh cluster runs the same job with the pool node crashed at
// t-1ns, the node is recovered, and the job is resubmitted against the
// surviving checkpoint catalog. Restored sink outputs must be byte-identical
// to the fault-free run at *every* crash point: before admission effects,
// mid-chain, and just before the final completion.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rts/checkpoint.h"
#include "rts/runtime.h"
#include "rts/serving.h"
#include "telemetry/metrics.h"
#include "testing/arrivals.h"
#include "testing/scenario.h"
#include "testing/workload.h"

namespace memflow::testing {
namespace {

// A five-task chain; every edge is an exclusive kAuto handover, so each crash
// point bisects the chain into checkpointed and to-be-rerun halves.
JobSpec ChainSpec() {
  JobSpec spec;
  spec.name = "sweep-chain";
  for (int i = 0; i < 5; ++i) {
    TaskGen t;
    t.name = "t" + std::to_string(i);
    t.salt = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    t.output_bytes = 256;
    t.base_work = 4000 + 1000 * i;
    t.work_per_byte = 0.01;
    spec.tasks.push_back(t);
    if (i > 0) {
      spec.edges.push_back({i - 1, i, dataflow::EdgeMode::kAuto, false});
    }
  }
  return spec;
}

simhw::NodeId PoolNode(const simhw::Cluster& cluster) {
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    const simhw::Node& n = cluster.node(simhw::NodeId{static_cast<std::uint32_t>(i)});
    if (n.compute.empty()) {
      return n.id;
    }
  }
  return {};
}

struct SweepRun {
  bool ok = false;
  std::vector<std::vector<char>> outputs;   // retained sink bytes, task order
  std::vector<SimTime> events;              // distinct task start/finish times
};

// One runtime lifetime over the (instrumented) chain. With `crash_at` set the
// pool node goes down at that instant and stays down; the run is then allowed
// to fail — the sweep only requires the *restored* run to match.
SweepRun RunChain(TopologyInstance& inst, rts::JobCheckpointer& ckpt,
                  std::optional<SimTime> crash_at, simhw::NodeId victim) {
  SweepRun run;
  simhw::FaultInjector injector(*inst.cluster);
  rts::RuntimeOptions ropts;
  ropts.worker_threads = 1;
  rts::Runtime rt(*inst.cluster, ropts);
  if (crash_at) {
    injector.CrashNodeAt(*crash_at, victim);
    rt.AttachFaultInjector(&injector);
  }
  auto id = rt.Submit(ckpt.Instrument(BuildJob(ChainSpec())));
  if (!id.ok() || !rt.RunToCompletion().ok()) {
    return run;
  }
  const rts::JobReport& report = rt.report(*id);
  if (!report.status.ok()) {
    return run;
  }
  run.ok = true;
  for (const region::RegionId out : report.outputs) {
    auto acc = rt.regions().OpenAsync(out, rt.JobPrincipal(*id), inst.reader);
    if (!acc.ok()) {
      run.ok = false;
      return run;
    }
    std::vector<char> bytes(acc->size());
    acc->EnqueueRead(0, bytes.data(), bytes.size());
    if (!acc->Drain().ok()) {
      run.ok = false;
      return run;
    }
    run.outputs.push_back(std::move(bytes));
  }
  for (const rts::TaskReport& t : report.tasks) {
    run.events.push_back(t.start);
    run.events.push_back(t.finish);
  }
  std::sort(run.events.begin(), run.events.end());
  run.events.erase(std::unique(run.events.begin(), run.events.end()),
                   run.events.end());
  return run;
}

TEST(CrashSweepTest, RestoredOutputsByteIdenticalAtEveryCrashPoint) {
  // Fault-free reference: same instrumentation as the sweep legs so its
  // timeline (checkpoint write costs included) matches phase A exactly.
  TopologyInstance ref_inst = BuildTopology(TopologyKind::kMemoryPool);
  ASSERT_TRUE(ref_inst.persistent_device.has_value());
  rts::JobCheckpointer ref_ckpt(*ref_inst.cluster, *ref_inst.persistent_device);
  const SweepRun ref =
      RunChain(ref_inst, ref_ckpt, std::nullopt, simhw::NodeId{});
  ASSERT_TRUE(ref.ok);
  ASSERT_FALSE(ref.outputs.empty());
  ASSERT_GE(ref.events.size(), 2u);

  int swept = 0;
  for (const SimTime t : ref.events) {
    if (t.ns <= 0) {
      continue;  // nothing schedulable strictly before t=0
    }
    const SimTime crash{t.ns - 1};
    TopologyInstance inst = BuildTopology(TopologyKind::kMemoryPool);
    ASSERT_TRUE(inst.persistent_device.has_value());
    const simhw::NodeId victim = PoolNode(*inst.cluster);
    ASSERT_TRUE(victim.valid());
    rts::JobCheckpointer ckpt(*inst.cluster, *inst.persistent_device);

    // Phase A: crash at t-1 and leave the node down. The job usually fails
    // (pool memory and checkpoint media are gone); whatever it managed to
    // checkpoint before the crash is the recovery state.
    (void)RunChain(inst, ckpt, crash, victim);

    // Phase B: heal the node, resubmit against the surviving catalog.
    ASSERT_TRUE(inst.cluster->RecoverNode(victim).ok());
    const SweepRun restored = RunChain(inst, ckpt, std::nullopt, victim);
    ASSERT_TRUE(restored.ok) << "restored run failed for crash at t=" << crash.ns;
    ASSERT_EQ(restored.outputs.size(), ref.outputs.size())
        << "crash at t=" << crash.ns;
    for (std::size_t i = 0; i < ref.outputs.size(); ++i) {
      EXPECT_EQ(restored.outputs[i], ref.outputs[i])
          << "output " << i << " diverged for crash at t=" << crash.ns;
    }
    ++swept;
  }
  // Five tasks give ten scheduler events; at least the finishes are > 0.
  EXPECT_GE(swept, 5);
}

// ---------------------------------------------------------------------------
// Open-loop leg: a two-tenant arrival stream through the serving layer, with
// the pool node crashed mid-stream and healed later in the *same* runtime
// lifetime. Contract: everything that completed strictly before the crash is
// fingerprint- and byte-identical to a fault-free reference of the same
// stream, the scheduler never stalls, and both tenants resume completing
// jobs after the node recovers.

// One charging single-task CPU job per arrival; the salt makes every job's
// payload distinct so byte comparisons are meaningful.
JobSpec StreamSpec(std::size_t k) {
  JobSpec spec;
  spec.name = "stream" + std::to_string(k);
  TaskGen t;
  t.name = "t";
  t.salt = 0x51ed2701b7b4e5d5ULL * static_cast<std::uint64_t>(k + 1);
  t.output_bytes = 128;
  t.base_work = 20000;
  t.compute_device = simhw::ComputeDeviceKind::kCPU;
  spec.tasks = {t};
  return spec;
}

struct StreamOutcome {
  SimTime finished;
  bool ok = false;
  std::size_t tenant = 0;
};

struct OpenLoopRun {
  bool run_ok = false;
  // Per job name: report fingerprint, retained sink bytes (successful jobs
  // whose outputs were still readable at quiescence), finish time + outcome.
  std::map<std::string, std::string> fingerprints;
  std::map<std::string, std::vector<char>> bytes;
  std::map<std::string, StreamOutcome> finished;
  std::uint64_t completed[2] = {0, 0};
  std::vector<Violation> violations;
};

OpenLoopRun RunOpenLoopStream(std::optional<SimTime> crash_at, SimTime recover_at,
                              SimDuration horizon) {
  OpenLoopRun out;
  TopologyInstance inst = BuildTopology(TopologyKind::kMemoryPool);
  const simhw::NodeId victim = PoolNode(*inst.cluster);
  simhw::FaultInjector injector(*inst.cluster);
  telemetry::Registry registry;
  rts::RuntimeOptions ropts;
  ropts.worker_threads = 1;
  ropts.registry = &registry;
  rts::Runtime rt(*inst.cluster, ropts);
  if (crash_at) {
    injector.CrashNodeAt(*crash_at, victim);
    injector.RecoverNodeAt(recover_at, victim);
    rt.AttachFaultInjector(&injector);
  }
  rts::ServingLayer serving(rt);
  (void)serving.AddTenant({.name = "a"});
  (void)serving.AddTenant({.name = "b"});

  std::vector<ArrivalSpec> specs(2);
  for (ArrivalSpec& s : specs) {
    s.kind = ArrivalKind::kPoisson;
    s.rate_per_sec = 20000.0;  // ~40 arrivals/tenant over a 2ms horizon
  }
  const std::vector<MergedArrival> merged =
      MergeArrivals(specs, /*seed=*/0xC0FFEEull, SimTime{} + horizon);

  std::vector<std::pair<std::string, dataflow::JobId>> admitted;
  std::map<std::uint32_t, std::string> name_of;  // JobId -> name
  for (std::size_t k = 0; k < merged.size(); ++k) {
    const MergedArrival a = merged[k];
    rt.ScheduleAt(a.at, [&serving, &admitted, &name_of, a, k](SimTime) {
      JobSpec spec = StreamSpec(k);
      const rts::AdmissionDecision d = serving.Offer(a.tenant, BuildJob(spec));
      if (d.admitted) {
        admitted.emplace_back(spec.name, d.job);
        name_of[d.job.value] = spec.name;
      }
    });
  }
  if (!rt.RunToCompletion().ok()) {
    return out;  // run_ok=false: the stream wedged
  }
  out.run_ok = true;

  for (const auto& [name, id] : admitted) {
    const rts::JobReport& report = rt.report(id);
    out.fingerprints[name] = Fingerprint(report);
    if (!report.status.ok()) {
      continue;
    }
    std::vector<char> all;
    bool read_ok = true;
    for (const region::RegionId r : report.outputs) {
      auto acc = rt.regions().OpenAsync(r, rt.JobPrincipal(id), inst.reader);
      if (!acc.ok()) {
        read_ok = false;
        break;
      }
      std::vector<char> chunk(acc->size());
      acc->EnqueueRead(0, chunk.data(), chunk.size());
      if (!acc->Drain().ok()) {
        read_ok = false;
        break;
      }
      all.insert(all.end(), chunk.begin(), chunk.end());
    }
    if (read_ok) {
      out.bytes[name] = std::move(all);
    }
  }
  for (const rts::ServedJob& sj : serving.served()) {
    auto it = name_of.find(sj.job.value);
    if (it != name_of.end()) {
      out.finished[it->second] = {sj.finished, sj.ok, sj.tenant};
    }
  }
  out.completed[0] = serving.stats(0).completed;
  out.completed[1] = serving.stats(1).completed;
  CheckServing(serving, rt, &out.violations);
  return out;
}

TEST(CrashSweepTest, OpenLoopStreamSurvivesPoolCrashMidStream) {
  const SimDuration horizon = SimDuration::Millis(2);
  const SimTime crash_at = SimTime{} + SimDuration::Micros(700);
  const SimTime recover_at = SimTime{} + SimDuration::Micros(1100);

  const OpenLoopRun ref = RunOpenLoopStream(std::nullopt, recover_at, horizon);
  ASSERT_TRUE(ref.run_ok);
  ASSERT_TRUE(ref.violations.empty()) << ref.violations.front().message;

  const OpenLoopRun crashed = RunOpenLoopStream(crash_at, recover_at, horizon);
  ASSERT_TRUE(crashed.run_ok) << "open-loop stream wedged after the pool crash";
  // The serving layer's own books must still balance under faults: failed
  // jobs count as failed, nothing in flight at quiescence.
  ASSERT_TRUE(crashed.violations.empty()) << crashed.violations.front().message;

  // Everything that completed strictly before the crash saw an identical
  // prefix of the event timeline, so it must match the fault-free reference
  // exactly — timeline fingerprint and sink bytes.
  int compared = 0;
  for (const auto& [name, fin] : crashed.finished) {
    if (!fin.ok || !(fin.finished < crash_at)) {
      continue;
    }
    ASSERT_TRUE(ref.fingerprints.count(name)) << name;
    EXPECT_EQ(crashed.fingerprints.at(name), ref.fingerprints.at(name))
        << "pre-crash job " << name << " diverged from the fault-free run";
    ASSERT_TRUE(ref.bytes.count(name)) << name;
    ASSERT_TRUE(crashed.bytes.count(name))
        << "pre-crash output of " << name << " unreadable after recovery";
    EXPECT_EQ(crashed.bytes.at(name), ref.bytes.at(name))
        << "pre-crash output bytes of " << name << " diverged";
    ++compared;
  }
  EXPECT_GE(compared, 5) << "crash landed before the stream got going";

  // Both tenants keep completing once the node heals: the crash dents
  // throughput, it does not end the stream.
  int resumed[2] = {0, 0};
  for (const auto& [name, fin] : crashed.finished) {
    if (fin.ok && fin.finished > recover_at && fin.tenant < 2) {
      ++resumed[fin.tenant];
    }
  }
  EXPECT_GE(resumed[0], 1) << "tenant a did not resume after node recovery";
  EXPECT_GE(resumed[1], 1) << "tenant b did not resume after node recovery";
}

}  // namespace
}  // namespace memflow::testing
