// Copyright (c) memflow authors. MIT license.
//
// Tests for memory-access observability (DESIGN.md §16): the per-accessor
// pattern classifier, exact-vs-sampled miss-ratio curves on traces whose
// shape is known in closed form, WSS window decay, the counter-algebra
// self-check, fingerprint determinism across worker counts, and a
// sample-while-snapshot hammer for the sanitizer legs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/memaccess.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace memflow {
namespace {

using telemetry::AccessPatternKind;
using telemetry::AccessProfiler;
using telemetry::AccessProfilerConfig;
using telemetry::AccessSample;
using telemetry::ExactMissRatios;
using telemetry::kMrcPoints;
using telemetry::MissRatioCurve;
using telemetry::PatternTracker;
using telemetry::WssStats;

// --- pattern classifier -------------------------------------------------------

TEST(PatternTrackerTest, SequentialStreamIsSequential) {
  PatternTracker t;
  for (std::uint64_t off = 0; off < 10 * 64; off += 64) {
    EXPECT_EQ(t.Classify(off, 64), AccessPatternKind::kSequential) << off;
  }
}

TEST(PatternTrackerTest, ConstantStrideIsStridedAfterWarmup) {
  PatternTracker t;
  // Stride 256 with 64-byte accesses: never contiguous, constant delta.
  (void)t.Classify(0, 64);    // no history: random
  (void)t.Classify(256, 64);  // first delta observation
  for (std::uint64_t off = 512; off < 4096; off += 256) {
    EXPECT_EQ(t.Classify(off, 64), AccessPatternKind::kStrided) << off;
  }
}

TEST(PatternTrackerTest, IrregularOffsetsAreRandom) {
  PatternTracker t;
  const std::uint64_t offsets[] = {0, 1000, 64, 9000, 128, 5};
  int random = 0;
  for (const std::uint64_t off : offsets) {
    random += t.Classify(off, 64) == AccessPatternKind::kRandom ? 1 : 0;
  }
  EXPECT_GE(random, 4);  // everything after the first two must be random
}

// --- exact vs sampled MRC -----------------------------------------------------

// Feeds an offset trace as one access per virtual-time epoch, the regime
// where epoch quantization is exact (every sampled access is an epoch-first
// touch, so cum_closed growth equals the number of intervening accesses).
void Feed(AccessProfiler& prof, const std::vector<std::uint64_t>& offsets,
          std::uint64_t region_size) {
  std::int64_t vt = 0;
  for (const std::uint64_t off : offsets) {
    AccessSample s;
    s.region = 1;
    s.region_key = 0x9e3779b97f4a7c15ULL;
    s.offset = off;
    s.size = 64;
    s.region_size = region_size;
    s.pattern = AccessPatternKind::kRandom;
    s.latency_charged = true;
    s.vtime_ns = vt;
    prof.Note(s);
    vt += prof.config().epoch_ns;
  }
}

double MrcMae(const MissRatioCurve& curve, const std::vector<double>& exact) {
  double mae = 0.0;
  for (int i = 0; i < kMrcPoints; ++i) {
    mae += std::abs(curve.miss_ratio[static_cast<std::size_t>(i)] -
                    exact[static_cast<std::size_t>(i)]);
  }
  return mae / kMrcPoints;
}

// Runs a trace through an unsampled (shift 0) profiler and returns the MAE
// between its global curve and the exact LRU replay of the recorded stream.
double UnsampledMae(const std::vector<std::uint64_t>& offsets) {
  AccessProfilerConfig config;
  config.sample_shift = 0;  // sample everything: isolates the epoch estimator
  AccessProfiler prof(config);
  prof.StartRecording(offsets.size() + 1);
  Feed(prof, offsets, 256 * 4096);
  EXPECT_FALSE(prof.recording_truncated());
  EXPECT_EQ(prof.dropped_samples(), 0u);
  EXPECT_EQ(prof.sampled_accesses(), offsets.size());
  return MrcMae(prof.GlobalCurve(),
                ExactMissRatios(prof.RecordedChunkKeys(), kMrcPoints));
}

TEST(MissRatioCurveTest, SequentialScanMatchesExactReference) {
  // A cyclic scan's reuse distance is exactly the footprint; the epoch
  // estimator reproduces it with no error at all.
  EXPECT_LE(UnsampledMae(testing::SequentialTrace(64 * 4096, 4096, 3)), 1e-9);
}

TEST(MissRatioCurveTest, ZipfianTraceWithinTolerance) {
  Rng rng(42);
  EXPECT_LE(UnsampledMae(testing::ZipfTrace(rng, 64, 4096, 0.99, 4000)),
            testing::kWssMrcTolerance);
}

TEST(MissRatioCurveTest, ScanWithReuseWithinTolerance) {
  Rng rng(7);
  EXPECT_LE(UnsampledMae(testing::ScanWithReuseTrace(rng, 128, 8, 4096, 0.5, 4000)),
            testing::kWssMrcTolerance);
}

TEST(MissRatioCurveTest, SpatialSamplingTracksTheFullTrace) {
  // At shift 3 only ~1/8th of the chunks are kept, but the SHARDS-corrected
  // curve must still track the exact curve of the *full* trace.
  Rng rng(11);
  const std::vector<std::uint64_t> offsets =
      testing::ZipfTrace(rng, 512, 4096, 0.9, 20000);
  AccessProfilerConfig config;
  config.sample_shift = 3;
  AccessProfiler prof(config);
  Feed(prof, offsets, 512 * 4096);
  EXPECT_EQ(prof.dropped_samples(), 0u);
  const MissRatioCurve curve = prof.GlobalCurve();
  EXPECT_GT(curve.sampled, 0u);
  EXPECT_LT(curve.sampled, offsets.size());  // it really did sample
  // Exact reference over the full (unsampled) chunk stream. The sampled
  // curve's size axis is already SHARDS-corrected (chunk_bytes << shift), so
  // point i of the sampled curve estimates point i + shift of the exact one.
  std::vector<std::uint64_t> chunks;
  chunks.reserve(offsets.size());
  for (const std::uint64_t off : offsets) {
    chunks.push_back(off / config.chunk_bytes);
  }
  const std::vector<double> exact =
      ExactMissRatios(chunks, kMrcPoints + config.sample_shift);
  double mae = 0.0;
  for (int i = 0; i < kMrcPoints; ++i) {
    mae += std::abs(curve.miss_ratio[static_cast<std::size_t>(i)] -
                    exact[static_cast<std::size_t>(i + config.sample_shift)]);
  }
  mae /= kMrcPoints;
  EXPECT_LE(mae, testing::kWssMrcTolerance);
}

TEST(MissRatioCurveTest, CurveIsMonotoneAndSelfCheckClean) {
  Rng rng(3);
  AccessProfiler prof;
  prof.StartRecording(1 << 14);
  Feed(prof, testing::ScanWithReuseTrace(rng, 200, 16, 4096, 0.3, 8000),
       200 * 4096);
  const std::vector<std::string> problems = prof.SelfCheck();
  EXPECT_TRUE(problems.empty()) << problems.front();
  for (const MissRatioCurve& curve : prof.Curves()) {
    for (std::size_t i = 1; i < curve.miss_ratio.size(); ++i) {
      EXPECT_LE(curve.miss_ratio[i], curve.miss_ratio[i - 1] + 1e-12)
          << curve.scope << " point " << i;
    }
  }
}

// --- WSS windows --------------------------------------------------------------

TEST(WssTest, WindowCountsUniqueChunksAndEmaDecays) {
  AccessProfilerConfig config;
  config.sample_shift = 0;
  config.chunk_bytes = 4096;
  config.epoch_ns = 1000;
  config.wss_decay = 0.5;
  AccessProfiler prof(config);
  const auto touch = [&prof](std::uint64_t chunk, std::int64_t vt) {
    AccessSample s;
    s.region = 1;
    s.region_key = 77;
    s.offset = chunk * 4096;
    s.size = 64;
    s.region_size = 1 << 20;
    s.vtime_ns = vt;
    prof.Note(s);
  };
  // Epoch 1: four distinct chunks (one touched twice — still 4 unique).
  touch(0, 0);
  touch(1, 100);
  touch(2, 200);
  touch(3, 300);
  touch(0, 400);
  // First access of epoch 2 closes epoch 1.
  touch(0, 1000);
  WssStats w = prof.GlobalWss();
  EXPECT_EQ(w.window_bytes, 4u * 4096u);
  EXPECT_DOUBLE_EQ(w.smoothed_bytes, 0.5 * 4 * 4096);
  EXPECT_EQ(w.windows, 1u);
  // Jump to epoch 6: closes epoch 2 (1 unique chunk) and decays across the
  // three empty epochs in between.
  touch(0, 5000);
  w = prof.GlobalWss();
  EXPECT_EQ(w.window_bytes, 1u * 4096u);
  EXPECT_EQ(w.windows, 5u);
  const double after_two = 0.5 * (0.5 * 4 * 4096) + 0.5 * 4096;
  EXPECT_DOUBLE_EQ(w.smoothed_bytes, after_two * 0.5 * 0.5 * 0.5);
  EXPECT_EQ(w.unique_bytes, 4u * 4096u);  // footprint never decays
}

// --- enable/disable -----------------------------------------------------------

TEST(AccessProfilerTest, DisabledProfilerObservesNothing) {
  AccessProfiler prof;
  prof.set_enabled(false);
  Feed(prof, testing::SequentialTrace(16 * 4096, 4096, 2), 16 * 4096);
  EXPECT_EQ(prof.sampled_accesses(), 0u);
  EXPECT_TRUE(prof.RegionStats().empty());
  EXPECT_EQ(prof.RegionHotness(1), 0u);
  prof.set_enabled(true);
  Feed(prof, testing::SequentialTrace(16 * 4096, 4096, 1), 16 * 4096);
  EXPECT_GT(prof.sampled_accesses(), 0u);
  EXPECT_GT(prof.RegionHotness(1), 0u);
}

// --- end-to-end determinism ---------------------------------------------------

std::string RunWorkloadFingerprint(int workers) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.worker_threads = workers;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  for (int j = 0; j < 3; ++j) {
    auto report = rt.SubmitAndRun(testing::WideJob("mrc" + std::to_string(j), 8));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
  }
  EXPECT_TRUE(rt.regions().access_profiler().SelfCheck().empty());
  return rt.regions().access_profiler().Fingerprint();
}

TEST(AccessProfilerDeterminismTest, FingerprintIdenticalAtWorkers128) {
  const std::string base = RunWorkloadFingerprint(1);
  EXPECT_NE(base.find("global|"), std::string::npos);
  EXPECT_GT(base.size(), 0u);
  for (const int workers : {2, 8}) {
    EXPECT_EQ(RunWorkloadFingerprint(workers), base) << "workers=" << workers;
  }
}

// --- concurrency hammer (ASan/TSan legs run this under `ctest -L memaccess`) --

TEST(AccessProfilerHammerTest, ConcurrentNotesAndSnapshotsStayConsistent) {
  AccessProfilerConfig config;
  config.sample_shift = 1;
  AccessProfiler prof(config);
  prof.BindScopeNames({"dram", "cxl"}, {"local", "pool"});
  std::atomic<int> running{4};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&prof, &running, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      // All writers stay inside one virtual-time epoch, matching the PDES
      // barrier contract under which Note() is called concurrently.
      for (int i = 0; i < 20000; ++i) {
        AccessSample s;
        s.region = rng.Below(8);
        s.region_key = s.region + 1;
        s.offset = rng.Below(1 << 16) * 64;
        s.size = 64;
        s.region_size = 1 << 22;
        s.device = static_cast<std::uint32_t>(rng.Below(2));
        s.latency_class = static_cast<std::uint32_t>(rng.Below(2));
        s.latency_charged = true;
        s.vtime_ns = 500;
        prof.Note(s);
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  // Snapshot continuously while the writers hammer Note().
  telemetry::Registry reg;
  while (running.load(std::memory_order_relaxed) > 0) {
    (void)prof.Curves();
    (void)prof.Wss();
    (void)prof.RegionStats();
    (void)prof.Fingerprint();
    (void)prof.RenderPanel();
    prof.PublishTo(reg);
  }
  for (std::thread& w : writers) {
    w.join();
  }
  const std::vector<std::string> problems = prof.SelfCheck();
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_GT(prof.sampled_accesses(), 0u);
}

}  // namespace
}  // namespace memflow
