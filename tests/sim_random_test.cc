// Copyright (c) memflow authors. MIT license.
//
// Time-boxed randomized simulation batch (DESIGN.md §10). Runs generated
// scenarios from a base seed until the budget expires:
//
//   MEMFLOW_SIM_SEED       base seed (default fixed, so plain ctest runs are
//                          deterministic; ci.sh passes a fresh one per build)
//   MEMFLOW_SIM_BUDGET_MS  wall-clock budget in milliseconds (default 3000)
//
// On failure the scenario's "replay: seed=N" line is part of the assertion
// message — rerun with MEMFLOW_SIM_SEED=N MEMFLOW_SIM_BUDGET_MS=1 to replay
// exactly that scenario.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "testing/scenario.h"

namespace memflow::testing {
namespace {

TEST(SimRandomTest, TimeBoxedRandomBatch) {
  std::uint64_t base = 0x5eedf00dULL;
  if (const char* env = std::getenv("MEMFLOW_SIM_SEED")) {
    base = std::strtoull(env, nullptr, 0);
  }
  long long budget_ms = 3000;
  if (const char* env = std::getenv("MEMFLOW_SIM_BUDGET_MS")) {
    budget_ms = std::atoll(env);
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  int ran = 0;
  do {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(ran);
    const ScenarioResult result = RunScenario(MakeScenario(seed));
    ASSERT_TRUE(result.ok()) << result.ToString();
    ++ran;
  } while (std::chrono::steady_clock::now() < deadline);
  std::printf("[sim-random] %d scenario(s) clean, base seed %llu\n", ran,
              static_cast<unsigned long long>(base));
  EXPECT_GE(ran, 1);
}

}  // namespace
}  // namespace memflow::testing
