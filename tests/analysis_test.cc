// Copyright (c) memflow authors. MIT license.
//
// Tests for the static ownership & property verifier: one failing and one
// passing fixture per rule id, the runtime admission gate, and the
// executor-side ownership cross-check.

#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::analysis {
namespace {

using dataflow::EdgeMode;
using dataflow::EdgeOptions;
using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskFn;
using dataflow::TaskId;
using dataflow::TaskProperties;

TaskFn Nop() {
  return [](TaskContext&) { return OkStatus(); };
}

TaskProperties WithOutput(std::uint64_t bytes = KiB(4)) {
  TaskProperties props;
  props.output_bytes = bytes;
  return props;
}

int CountRule(const Report& report, std::string_view rule) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    n += d.rule == rule ? 1 : 0;
  }
  return n;
}

// --- own-use-after-transfer ---------------------------------------------------------

TEST(VerifierOwnership, UseAfterTransferDetected) {
  Job job("uat");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());  // kAuto still expects to read a's output

  const Report report = Verify(job);
  EXPECT_TRUE(report.HasRule(kRuleUseAfterTransfer));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierOwnership, FanOutViaShareIsClean) {
  Job job("fanout");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());

  const Report report = Verify(job);
  EXPECT_FALSE(report.HasRule(kRuleUseAfterTransfer));
  EXPECT_TRUE(report.ok());
  // Fan-out delivery is shared, and the cross-check data says so.
  EXPECT_EQ(report.ExpectedStateOf(b, a), region::OwnershipState::kShared);
  EXPECT_EQ(report.ExpectedStateOf(c, a), region::OwnershipState::kShared);
}

// --- own-double-transfer ------------------------------------------------------------

TEST(VerifierOwnership, DoubleTransferDetected) {
  Job job("double");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(a, c, {EdgeMode::kMove}).ok());

  const Report report = Verify(job);
  EXPECT_EQ(CountRule(report, kRuleDoubleTransfer), 1);
  EXPECT_FALSE(report.ok());
  // The diagnostic is edge-scoped: it names the producer and the second move.
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == kRuleDoubleTransfer) {
      EXPECT_EQ(d.task, a);
      EXPECT_EQ(d.other, c);
      EXPECT_FALSE(d.hint.empty());
    }
  }
}

TEST(VerifierOwnership, SingleMoveIsClean) {
  Job job("move");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());

  const Report report = Verify(job);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.ExpectedStateOf(b, a), region::OwnershipState::kExclusive);
}

// --- own-leaked-output --------------------------------------------------------------

TEST(VerifierOwnership, LeakedOutputWarned) {
  Job job("leak");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  // a declares an output but only orders b after it — nobody consumes it.
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kControl}).ok());

  const Report report = Verify(job);
  EXPECT_TRUE(report.HasRule(kRuleLeakedOutput));
  EXPECT_TRUE(report.ok());  // warning-severity: admissible
}

TEST(VerifierOwnership, ConsumedAndSinkOutputsNotLeaks) {
  Job job("noleak");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", WithOutput(), Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());  // a's output consumed; b is a sink

  const Report report = Verify(job);
  EXPECT_FALSE(report.HasRule(kRuleLeakedOutput));
}

// --- own-write-shared-input ---------------------------------------------------------

TEST(VerifierOwnership, WriteThroughSharedInputDetected) {
  Job job("wsi");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  EdgeOptions writes;
  writes.writes_input = true;
  ASSERT_TRUE(job.Connect(a, b, writes).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());  // fan-out: delivery is shared

  const Report report = Verify(job);
  EXPECT_TRUE(report.HasRule(kRuleWriteSharedInput));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierOwnership, WriteThroughExclusiveInputIsClean) {
  Job job("wxi");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  EdgeOptions writes;
  writes.mode = EdgeMode::kMove;
  writes.writes_input = true;
  ASSERT_TRUE(job.Connect(a, b, writes).ok());

  const Report report = Verify(job);
  EXPECT_FALSE(report.HasRule(kRuleWriteSharedInput));
  EXPECT_TRUE(report.ok());
}

// --- prop-confidential-downgrade ----------------------------------------------------

TEST(VerifierProperty, ConfidentialityDowngradeDetected) {
  Job job("downgrade");
  TaskProperties conf = WithOutput();
  conf.confidential = true;
  const TaskId a = job.AddTask("a", conf, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());

  const Report report = Verify(job);
  EXPECT_TRUE(report.HasRule(kRuleConfidentialityDowngrade));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierProperty, DeclassifyingConsumerIsClean) {
  Job job("declass");
  TaskProperties conf = WithOutput();
  conf.confidential = true;
  TaskProperties declass;
  declass.declassifies = true;
  const TaskId a = job.AddTask("a", conf, Nop());
  const TaskId b = job.AddTask("b", declass, Nop());
  const TaskId c = job.AddTask("c", conf, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());  // declassifies: allowed
  ASSERT_TRUE(job.Connect(a, c).ok());  // confidential consumer: allowed

  const Report report = Verify(job);
  EXPECT_FALSE(report.HasRule(kRuleConfidentialityDowngrade));
  EXPECT_TRUE(report.ok());
}

// --- prop-persistent-latency --------------------------------------------------------

TEST(VerifierProperty, PersistentIntoLowLatencyWarned) {
  Job job("plat");
  TaskProperties durable = WithOutput();
  durable.persistent = true;
  TaskProperties fast;
  fast.mem_latency = region::LatencyClass::kLow;
  const TaskId a = job.AddTask("a", durable, Nop());
  const TaskId b = job.AddTask("b", fast, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());

  const Report report = Verify(job);
  EXPECT_TRUE(report.HasRule(kRulePersistentLatency));
  EXPECT_TRUE(report.ok());  // warning-severity: admissible
}

TEST(VerifierProperty, PersistentIntoRelaxedConsumerIsClean) {
  Job job("pok");
  TaskProperties durable = WithOutput();
  durable.persistent = true;
  const TaskId a = job.AddTask("a", durable, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());

  const Report report = Verify(job);
  EXPECT_FALSE(report.HasRule(kRulePersistentLatency));
}

// --- graph-dead-task ----------------------------------------------------------------

TEST(VerifierGraph, DisconnectedTaskWarned) {
  Job job("dead");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  (void)c;  // never connected

  const Report report = Verify(job);
  EXPECT_EQ(CountRule(report, kRuleDeadTask), 1);
  EXPECT_TRUE(report.ok());  // warning-severity: admissible
}

TEST(VerifierGraph, SingleTaskAndConnectedJobsAreClean) {
  Job solo("solo");
  solo.AddTask("only", {}, Nop());
  EXPECT_FALSE(Verify(solo).HasRule(kRuleDeadTask));

  Job chain("chain");
  const TaskId a = chain.AddTask("a", {}, Nop());
  const TaskId b = chain.AddTask("b", {}, Nop());
  ASSERT_TRUE(chain.Connect(a, b).ok());
  EXPECT_FALSE(Verify(chain).HasRule(kRuleDeadTask));
}

// --- place-unsatisfiable-compute ----------------------------------------------------

TEST(VerifierPlacement, MissingDeviceKindDetected) {
  // A two-socket NUMA box has CPUs only; a TPU demand cannot be met.
  simhw::NumaHandles numa = simhw::MakeTwoSocketNuma();
  Job job("tpu");
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kTPU;
  job.AddTask("accel", props, Nop());

  const Report report = Verify(job, numa.cluster.get());
  EXPECT_TRUE(report.HasRule(kRuleUnsatisfiableCompute));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierPlacement, AvailableDeviceKindIsClean) {
  simhw::NumaHandles numa = simhw::MakeTwoSocketNuma();
  Job job("cpu");
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kCPU;
  job.AddTask("t", props, Nop());

  const Report report = Verify(job, numa.cluster.get());
  EXPECT_FALSE(report.HasRule(kRuleUnsatisfiableCompute));
  EXPECT_TRUE(report.ok());
}

TEST(VerifierPlacement, FailedDeviceKindDistinguished) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  host.cluster->compute(host.gpu).Fail();
  Job job("gpu");
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kGPU;
  job.AddTask("kernel", props, Nop());

  const Report report = Verify(job, host.cluster.get());
  ASSERT_TRUE(report.HasRule(kRuleUnsatisfiableCompute));
  bool mentions_failure = false;
  for (const Diagnostic& d : report.diagnostics()) {
    mentions_failure |= d.message.find("failed") != std::string::npos;
  }
  EXPECT_TRUE(mentions_failure);
}

// --- place-unsatisfiable-memory -----------------------------------------------------

TEST(VerifierPlacement, PersistentDemandWithoutPersistentMediaDetected) {
  // The NUMA preset has volatile DRAM only.
  simhw::NumaHandles numa = simhw::MakeTwoSocketNuma();
  Job job("durable");
  TaskProperties props = WithOutput();
  props.persistent = true;
  job.AddTask("store", props, Nop());

  const Report report = Verify(job, numa.cluster.get());
  EXPECT_TRUE(report.HasRule(kRuleUnsatisfiableMemory));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierPlacement, PersistentDemandWithPmemIsClean) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  Job job("durable");
  TaskProperties props = WithOutput();
  props.persistent = true;
  job.AddTask("store", props, Nop());

  const Report report = Verify(job, host.cluster.get());
  EXPECT_FALSE(report.HasRule(kRuleUnsatisfiableMemory));
  EXPECT_TRUE(report.ok());
}

// --- report plumbing ----------------------------------------------------------------

TEST(VerifierReport, InvalidJobsProduceEmptyReports) {
  Job job("cyclic");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, a).ok());
  ASSERT_FALSE(job.Validate().ok());

  const Report report = Verify(job);
  EXPECT_TRUE(report.diagnostics().empty());
  EXPECT_TRUE(report.expected_inputs().empty());
}

TEST(VerifierReport, DiagnosticsRenderRuleAndHint) {
  Job job("render");
  const TaskId a = job.AddTask("src", WithOutput(), Nop());
  const TaskId b = job.AddTask("x", {}, Nop());
  const TaskId c = job.AddTask("y", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(a, c, {EdgeMode::kMove}).ok());

  const Report report = Verify(job);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("error[own-double-transfer]"), std::string::npos);
  EXPECT_NE(text.find("src"), std::string::npos);
  EXPECT_NE(text.find("fix:"), std::string::npos);
  EXPECT_NE(report.Summary().find("1 error(s)"), std::string::npos);
}

// --- admission gate (rts::Runtime) --------------------------------------------------

Job DoubleMoveJob() {
  Job job("double-move");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  MEMFLOW_CHECK(job.Connect(a, b, {EdgeMode::kMove}).ok());
  MEMFLOW_CHECK(job.Connect(a, c, {EdgeMode::kMove}).ok());
  return job;
}

TEST(VerifierAdmission, EnforceRejectsWithStructuredDiagnostic) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);  // verify = kEnforce by default

  auto id = rt.Submit(DoubleMoveJob());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(id.status().message().find("own-double-transfer"), std::string::npos);
  EXPECT_EQ(rt.stats().jobs_rejected, 1u);
  EXPECT_EQ(rt.stats().jobs_rejected_by_verifier, 1u);

  // The full report stays inspectable after rejection.
  const Report& report = rt.last_verify_report();
  ASSERT_TRUE(report.HasRule(kRuleDoubleTransfer));
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == kRuleDoubleTransfer) {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_TRUE(d.other.has_value());
    }
  }
}

TEST(VerifierAdmission, WarnAndOffAdmitViolatingJobs) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();

  rts::RuntimeOptions warn;
  warn.verify = rts::VerifyMode::kWarn;
  rts::Runtime warn_rt(*host.cluster, warn);
  EXPECT_TRUE(warn_rt.Submit(DoubleMoveJob()).ok());
  EXPECT_TRUE(warn_rt.last_verify_report().HasRule(kRuleDoubleTransfer));

  rts::RuntimeOptions off;
  off.verify = rts::VerifyMode::kOff;
  rts::Runtime off_rt(*host.cluster, off);
  EXPECT_TRUE(off_rt.Submit(DoubleMoveJob()).ok());
  EXPECT_TRUE(off_rt.last_verify_report().diagnostics().empty());
}

TEST(VerifierAdmission, WarningsDoNotReject) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);

  Job job("warned");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  (void)c;  // dead task: warning only

  EXPECT_TRUE(rt.Submit(std::move(job)).ok());
  EXPECT_TRUE(rt.last_verify_report().HasRule(kRuleDeadTask));
}

// --- executor cross-check (accessors assert static ownership states) ----------------

dataflow::TaskFn WritingProducer(std::uint64_t n) {
  return [n](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(n * 8));
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(out));
    for (std::uint64_t i = 0; i < n; ++i) {
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Store(i, i + 1));
      ctx.Charge(cost);
    }
    return OkStatus();
  };
}

dataflow::TaskFn SummingSink(std::uint64_t* sink) {
  return [sink](TaskContext& ctx) -> Status {
    std::uint64_t sum = 0;
    for (const region::RegionId in : ctx.inputs()) {
      MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(in));
      for (std::uint64_t i = 0; i < acc.size() / 8; ++i) {
        std::uint64_t v = 0;
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Load(i, v));
        ctx.Charge(cost);
        sum += v;
      }
    }
    *sink += sum;
    return OkStatus();
  };
}

TEST(VerifierCrossCheck, ExclusiveAndSharedDeliveriesPassAtRuntime) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);  // kEnforce: cross-check active
  std::uint64_t sum = 0;

  // Chain (exclusive delivery) and fan-out (shared delivery) both execute
  // with the accessor-level assertions armed; any analyzer/executor
  // disagreement would fail the job with an Internal error.
  Job job("crosscheck");
  const TaskId a = job.AddTask("a", WithOutput(KiB(1)), WritingProducer(16));
  const TaskId b = job.AddTask("b", WithOutput(KiB(1)), SummingSink(&sum));
  const TaskId c = job.AddTask("c", {}, SummingSink(&sum));
  const TaskId d = job.AddTask("d", {}, SummingSink(&sum));
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());
  ASSERT_TRUE(job.Connect(b, d).ok());

  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok());
  // a's 1+2+...+16 = 136 summed once by b and the (empty-output) fan-out
  // readers c and d observing b's declared-but-unwritten output.
  EXPECT_GE(sum, 136u);
}

}  // namespace
}  // namespace memflow::analysis
