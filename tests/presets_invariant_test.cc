// Copyright (c) memflow authors. MIT license.
//
// Invariant sweep over every cluster preset: whatever topology we build, the
// same structural guarantees must hold (reachability, coherence domains,
// capacity accounting, fault/recovery round-trips).

#include <gtest/gtest.h>

#include <functional>

#include "region/properties.h"
#include "simhw/presets.h"

namespace memflow::simhw {
namespace {

struct PresetCase {
  const char* name;
  std::function<std::unique_ptr<Cluster>()> make;
};

class PresetInvariantTest : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetInvariantTest, EveryComputeReachesSomeAllocatableMemory) {
  auto cluster = GetParam().make();
  for (const ComputeDeviceId c : cluster->AllComputeDevices()) {
    int reachable = 0;
    for (const MemoryDeviceId m : cluster->AllMemoryDevices()) {
      if (!cluster->memory(m).profile().allocatable) {
        continue;
      }
      if (cluster->View(c, m).ok()) {
        reachable++;
      }
    }
    EXPECT_GE(reachable, 1) << cluster->compute(c).name();
  }
}

TEST_P(PresetInvariantTest, ViewsAreSelfConsistent) {
  auto cluster = GetParam().make();
  for (const ComputeDeviceId c : cluster->AllComputeDevices()) {
    for (const MemoryDeviceId m : cluster->AllMemoryDevices()) {
      auto view = cluster->View(c, m);
      if (!view.ok()) {
        continue;
      }
      const MemoryDeviceProfile& profile = cluster->memory(m).profile();
      // Effective figures can never beat the media itself.
      EXPECT_GE(view->read_latency.ns, profile.read_latency.ns);
      EXPECT_LE(view->read_bw_gbps, profile.read_bw_gbps + 1e-9);
      // sync implies addressable implies a positive-latency path exists.
      if (view->sync) {
        EXPECT_TRUE(view->addressable);
      }
      if (view->coherent) {
        EXPECT_TRUE(view->addressable);
      }
      // Costs behave: more bytes never cheaper; sequential never dearer.
      EXPECT_LE(view->ReadCost(KiB(4), true).ns, view->ReadCost(KiB(64), true).ns);
      EXPECT_LE(view->ReadCost(KiB(64), true).ns, view->ReadCost(KiB(64), false).ns);
    }
  }
}

TEST_P(PresetInvariantTest, PathsAreSymmetricInReachability) {
  auto cluster = GetParam().make();
  Topology& topo = cluster->topology();
  const auto n = static_cast<std::uint32_t>(topo.num_vertices());
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const bool ab = topo.Path(VertexId(a), VertexId(b)).ok();
      const bool ba = topo.Path(VertexId(b), VertexId(a)).ok();
      EXPECT_EQ(ab, ba) << topo.vertex_name(VertexId(a)) << " <-> "
                        << topo.vertex_name(VertexId(b));
    }
  }
}

TEST_P(PresetInvariantTest, CrashRecoverRoundTripRestoresCapacity) {
  auto cluster = GetParam().make();
  const std::uint64_t capacity = cluster->TotalMemoryCapacity();
  ASSERT_GT(capacity, 0u);
  for (std::size_t n = 0; n < cluster->num_nodes(); ++n) {
    const NodeId node(static_cast<std::uint32_t>(n));
    ASSERT_TRUE(cluster->CrashNode(node).ok());
    ASSERT_TRUE(cluster->RecoverNode(node).ok());
  }
  EXPECT_EQ(cluster->TotalMemoryCapacity(), capacity);
  EXPECT_EQ(cluster->TotalMemoryUsed(), 0u);
}

TEST_P(PresetInvariantTest, AllocationAccountingBalances) {
  auto cluster = GetParam().make();
  std::vector<Extent> extents;
  std::uint64_t total = 0;
  for (const MemoryDeviceId m : cluster->AllMemoryDevices()) {
    auto e = cluster->memory(m).Allocate(KiB(64));
    if (e.ok()) {
      extents.push_back(*e);
      total += e->size;
    }
  }
  EXPECT_EQ(cluster->TotalMemoryUsed(), total);
  for (const Extent& e : extents) {
    ASSERT_TRUE(cluster->memory(e.device).Free(e).ok());
  }
  EXPECT_EQ(cluster->TotalMemoryUsed(), 0u);
}

TEST_P(PresetInvariantTest, CoherentViewsFormConsistentDomains) {
  // If C coherently reaches M, C must also be able to address M
  // synchronously-or-not, and the path must exist in both directions (NUMA
  // coherence is symmetric in our link model).
  auto cluster = GetParam().make();
  for (const ComputeDeviceId c : cluster->AllComputeDevices()) {
    for (const MemoryDeviceId m : cluster->AllMemoryDevices()) {
      auto view = cluster->View(c, m);
      if (view.ok() && view->coherent) {
        EXPECT_TRUE(view->addressable);
        EXPECT_TRUE(cluster->topology()
                        .Path(cluster->VertexOf(m), cluster->VertexOf(c))
                        .ok());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetInvariantTest,
    ::testing::Values(
        PresetCase{"rack", [] { return MakeComputeCentricRack({}); }},
        PresetCase{"pool", [] { return MakeMemoryCentricPool({}); }},
        PresetCase{"numa", [] { return std::move(MakeTwoSocketNuma().cluster); }},
        PresetCase{"tiered", [] { return std::move(MakeTieredStorageHost().cluster); }},
        PresetCase{"cxlhost", [] { return std::move(MakeCxlExpansionHost().cluster); }},
        PresetCase{"disagg", [] { return std::move(MakeDisaggRack({}).cluster); }}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace memflow::simhw
