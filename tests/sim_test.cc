// Copyright (c) memflow authors. MIT license.
//
// The fixed simulation corpus (DESIGN.md §10). Twenty pinned seeds expand
// into generated (job DAG, topology, fault schedule, worker count) scenarios
// — ≥200 covered tuples — and every invariant in the oracle catalog must
// hold on each. A failing seed prints one "replay: seed=N" line.
//
// The suite also mutation-tests the oracle: a deliberately seeded bug (skip
// one job's output release) must be caught as sim-region-leak and shrunk to
// a smaller repro by the greedy minimizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "testing/minimize.h"
#include "testing/scenario.h"
#include "testing/workload.h"

namespace memflow::testing {
namespace {

constexpr std::uint64_t kCorpusSeeds[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                                          11, 12, 13, 14, 15, 16, 17, 18, 19, 20};

class SimCorpusTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimCorpusTest, AllInvariantsHold) {
  const ScenarioResult result = RunScenario(MakeScenario(GetParam()));
  EXPECT_TRUE(result.ok()) << result.ToString();
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, SimCorpusTest, ::testing::ValuesIn(kCorpusSeeds));

TEST(SimCorpusSizeTest, CorpusCoversAtLeast200Scenarios) {
  std::size_t covered = 0;
  for (const std::uint64_t seed : kCorpusSeeds) {
    covered += MakeScenario(seed).CoverageUnits();
  }
  EXPECT_GE(covered, 200u) << "fixed corpus shrank below the acceptance floor";
}

bool LeaksUnderHook(const Scenario& scenario) {
  RunHooks hooks;
  hooks.leak_job_outputs = true;
  const ScenarioResult result = RunScenario(scenario, hooks);
  for (const Violation& v : result.violations) {
    if (v.invariant == kInvRegionLeak) {
      return true;
    }
  }
  return false;
}

// Finds a corpus scenario where the seeded bug fires (it needs at least one
// job to complete in the first leg, which almost every seed provides).
Scenario FindLeakingScenario() {
  for (const std::uint64_t seed : kCorpusSeeds) {
    Scenario scenario = MakeScenario(seed);
    if (LeaksUnderHook(scenario)) {
      return scenario;
    }
  }
  return {};
}

TEST(SimMutationTest, SeededLeakIsCaughtWithReplayableSeed) {
  const Scenario scenario = FindLeakingScenario();
  ASSERT_FALSE(scenario.jobs.empty()) << "no corpus seed triggered the seeded leak";

  RunHooks hooks;
  hooks.leak_job_outputs = true;
  const ScenarioResult result = RunScenario(scenario, hooks);
  ASSERT_FALSE(result.ok());
  bool saw_leak = false;
  for (const Violation& v : result.violations) {
    saw_leak = saw_leak || v.invariant == kInvRegionLeak;
  }
  EXPECT_TRUE(saw_leak) << result.ToString();
  // The report must carry the one number needed to replay the failure.
  EXPECT_NE(result.ToString().find("replay: seed=" + std::to_string(scenario.seed)),
            std::string::npos)
      << result.ToString();
  // The same seed without the bug is clean: the oracle flags the mutation,
  // not the scenario.
  EXPECT_TRUE(RunScenario(scenario).ok());
}

TEST(SimMutationTest, MinimizerShrinksTheFailingScenario) {
  const Scenario original = FindLeakingScenario();
  ASSERT_FALSE(original.jobs.empty());

  const Scenario shrunk = Minimize(original, LeaksUnderHook, /*max_evals=*/60);
  EXPECT_TRUE(LeaksUnderHook(shrunk)) << "minimizer returned a passing scenario";
  EXPECT_LT(shrunk.TotalTasks(), original.TotalTasks());
  EXPECT_LE(shrunk.jobs.size(), original.jobs.size());
}

// A one-task CPU-pinned job: every dispatch contends on the same device, so
// WFQ proportions are observable.
dataflow::Job ServingCpuJob(const std::string& name) {
  dataflow::Job job(name);
  dataflow::TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kCPU;
  props.base_work = 1e5;
  job.AddTask("t", props, Producer(64));
  return job;
}

// sim-fairness on a constructed saturating phase: two tenants, identical
// jobs, all arrivals at t=0, weights 1:2. While both stay backlogged the
// heavier tenant must drain twice the work; once everything eventually
// completes the whole-run shares converge to the arrival mix instead — the
// mutation half asserts the invariant can tell those apart.
TEST(SimServingOracleTest, SaturatedFairShareHoldsAndWholeRunShareDoesNot) {
  auto host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  rts::ServingLayer serving(rt);
  const std::size_t a = serving.AddTenant({.name = "a", .weight = 1.0});
  const std::size_t b = serving.AddTenant({.name = "b", .weight = 2.0});
  constexpr int kJobsPerTenant = 30;
  for (int i = 0; i < kJobsPerTenant; ++i) {
    ASSERT_TRUE(serving.Offer(a, ServingCpuJob("a" + std::to_string(i))).admitted);
    ASSERT_TRUE(serving.Offer(b, ServingCpuJob("b" + std::to_string(i))).admitted);
  }
  ASSERT_TRUE(rt.RunToCompletion().ok());

  // The saturated window ends when the heavier tenant drains: until then both
  // tenants had continuous backlog, which is the regime WFQ makes promises
  // about.
  SimTime b_drained;
  for (const rts::ServedJob& sj : serving.served()) {
    if (sj.tenant == b) {
      b_drained = std::max(b_drained, sj.finished);
    }
  }
  std::vector<Violation> violations;
  CheckFairShare(serving, b_drained, /*tolerance=*/0.25, &violations);
  EXPECT_TRUE(violations.empty()) << violations.front().message;

  // Mutation: audited over the *whole* run (both tenants fully drained) the
  // completed-work split is the 1:1 arrival mix, not the 1:2 weight split —
  // the invariant must flag that, proving it can fire.
  std::vector<Violation> whole_run;
  CheckFairShare(serving, SimTime{} + SimDuration::Seconds(1000), 0.10, &whole_run);
  bool flagged = false;
  for (const Violation& v : whole_run) {
    flagged = flagged || v.invariant == kInvFairness;
  }
  EXPECT_TRUE(flagged) << "whole-run share audit should have failed";
}

// sim-slo mutation: the admission predictor takes the *least-loaded* alive
// device's backlog, so a CPU-pinned job behind a CPU backlog it cannot see
// (submitted around the serving layer) is admitted yet finishes late. The
// oracle must catch the successful-but-late job; the same setup without the
// hidden backlog is clean.
TEST(SimServingOracleTest, AdmittedDeadlineMissIsCaught) {
  auto host = simhw::MakeCxlExpansionHost();
  telemetry::Registry registry;  // own registry: the control below reuses the
                                 // tenant name and must not see these counters
  rts::RuntimeOptions ropts;
  ropts.registry = &registry;
  rts::Runtime rt(*host.cluster, ropts);
  rts::ServingLayer serving(rt);
  // The conservative estimate for the job below is ~100us; a deadline just
  // above it admits on an idle cluster.
  const std::size_t t = serving.AddTenant(
      {.name = "tight", .deadline = SimDuration::Micros(101)});

  // Hidden backlog: charging submissions the serving layer never sees (and
  // whose default dispatch hints sort ahead of the serving job's WFQ key),
  // long enough that the admitted job's *actual* finish slips past the
  // deadline. Built through BuildJob so ChecksumBody really charges the
  // declared work onto the virtual clock.
  for (int i = 0; i < 12; ++i) {
    JobSpec spec;
    spec.name = "hidden" + std::to_string(i);
    TaskGen g;
    g.name = "t";
    g.base_work = 1e5;
    g.output_bytes = 64;
    g.compute_device = simhw::ComputeDeviceKind::kCPU;
    spec.tasks = {g};
    ASSERT_TRUE(rt.Submit(BuildJob(spec)).ok());
  }
  const rts::AdmissionDecision d = serving.Offer(t, ServingCpuJob("late"));
  ASSERT_TRUE(d.admitted) << "predictor saw the idle GPU and admitted";
  ASSERT_TRUE(rt.RunToCompletion().ok());

  std::vector<Violation> violations;
  CheckServing(serving, rt, &violations);
  bool caught = false;
  for (const Violation& v : violations) {
    caught = caught || v.invariant == kInvSlo;
  }
  EXPECT_TRUE(caught) << "late admitted job was not flagged";

  // Control: the same tenant and job on a fresh, idle runtime meets its
  // deadline and audits clean.
  auto host2 = simhw::MakeCxlExpansionHost();
  telemetry::Registry registry2;
  rts::RuntimeOptions ropts2;
  ropts2.registry = &registry2;
  rts::Runtime rt2(*host2.cluster, ropts2);
  rts::ServingLayer serving2(rt2);
  const std::size_t t2 = serving2.AddTenant(
      {.name = "tight", .deadline = SimDuration::Micros(101)});
  ASSERT_TRUE(serving2.Offer(t2, ServingCpuJob("ontime")).admitted);
  ASSERT_TRUE(rt2.RunToCompletion().ok());
  std::vector<Violation> clean;
  CheckServing(serving2, rt2, &clean);
  EXPECT_TRUE(clean.empty()) << clean.front().message;
}

}  // namespace
}  // namespace memflow::testing
