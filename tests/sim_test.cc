// Copyright (c) memflow authors. MIT license.
//
// The fixed simulation corpus (DESIGN.md §10). Twenty pinned seeds expand
// into generated (job DAG, topology, fault schedule, worker count) scenarios
// — ≥200 covered tuples — and every invariant in the oracle catalog must
// hold on each. A failing seed prints one "replay: seed=N" line.
//
// The suite also mutation-tests the oracle: a deliberately seeded bug (skip
// one job's output release) must be caught as sim-region-leak and shrunk to
// a smaller repro by the greedy minimizer.

#include <gtest/gtest.h>

#include <cstdint>

#include "testing/minimize.h"
#include "testing/scenario.h"

namespace memflow::testing {
namespace {

constexpr std::uint64_t kCorpusSeeds[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                                          11, 12, 13, 14, 15, 16, 17, 18, 19, 20};

class SimCorpusTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimCorpusTest, AllInvariantsHold) {
  const ScenarioResult result = RunScenario(MakeScenario(GetParam()));
  EXPECT_TRUE(result.ok()) << result.ToString();
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, SimCorpusTest, ::testing::ValuesIn(kCorpusSeeds));

TEST(SimCorpusSizeTest, CorpusCoversAtLeast200Scenarios) {
  std::size_t covered = 0;
  for (const std::uint64_t seed : kCorpusSeeds) {
    covered += MakeScenario(seed).CoverageUnits();
  }
  EXPECT_GE(covered, 200u) << "fixed corpus shrank below the acceptance floor";
}

bool LeaksUnderHook(const Scenario& scenario) {
  RunHooks hooks;
  hooks.leak_job_outputs = true;
  const ScenarioResult result = RunScenario(scenario, hooks);
  for (const Violation& v : result.violations) {
    if (v.invariant == kInvRegionLeak) {
      return true;
    }
  }
  return false;
}

// Finds a corpus scenario where the seeded bug fires (it needs at least one
// job to complete in the first leg, which almost every seed provides).
Scenario FindLeakingScenario() {
  for (const std::uint64_t seed : kCorpusSeeds) {
    Scenario scenario = MakeScenario(seed);
    if (LeaksUnderHook(scenario)) {
      return scenario;
    }
  }
  return {};
}

TEST(SimMutationTest, SeededLeakIsCaughtWithReplayableSeed) {
  const Scenario scenario = FindLeakingScenario();
  ASSERT_FALSE(scenario.jobs.empty()) << "no corpus seed triggered the seeded leak";

  RunHooks hooks;
  hooks.leak_job_outputs = true;
  const ScenarioResult result = RunScenario(scenario, hooks);
  ASSERT_FALSE(result.ok());
  bool saw_leak = false;
  for (const Violation& v : result.violations) {
    saw_leak = saw_leak || v.invariant == kInvRegionLeak;
  }
  EXPECT_TRUE(saw_leak) << result.ToString();
  // The report must carry the one number needed to replay the failure.
  EXPECT_NE(result.ToString().find("replay: seed=" + std::to_string(scenario.seed)),
            std::string::npos)
      << result.ToString();
  // The same seed without the bug is clean: the oracle flags the mutation,
  // not the scenario.
  EXPECT_TRUE(RunScenario(scenario).ok());
}

TEST(SimMutationTest, MinimizerShrinksTheFailingScenario) {
  const Scenario original = FindLeakingScenario();
  ASSERT_FALSE(original.jobs.empty());

  const Scenario shrunk = Minimize(original, LeaksUnderHook, /*max_evals=*/60);
  EXPECT_TRUE(LeaksUnderHook(shrunk)) << "minimizer returned a passing scenario";
  EXPECT_LT(shrunk.TotalTasks(), original.TotalTasks());
  EXPECT_LE(shrunk.jobs.size(), original.jobs.size());
}

}  // namespace
}  // namespace memflow::testing
