// Copyright (c) memflow authors. MIT license.
//
// End-to-end tests for the runtime system: scheduling, placement, zero-copy
// handover, global regions, property enforcement, retries, and fault
// handling.

#include <gtest/gtest.h>

#include <cstring>

#include "rts/runtime.h"
#include "simhw/presets.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace memflow::rts {
namespace {

using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskId;
using dataflow::TaskProperties;

// The producer/consumer fixture bodies live in testing/workload.h now, so
// every suite (and the simulation harness) exercises the same bodies.
using memflow::testing::AsyncProducer;
using memflow::testing::AsyncSummingConsumer;
using memflow::testing::Fingerprint;
using memflow::testing::Producer;
using memflow::testing::SummingConsumer;
using memflow::testing::WideJob;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : host_(simhw::MakeCxlExpansionHost()) {}

  // Reads the single u64 in the job's first retained output.
  std::uint64_t ReadSinkValue(Runtime& rt, const JobReport& report) {
    MEMFLOW_CHECK(!report.outputs.empty());
    auto acc = rt.regions().OpenSync(report.outputs.front(), rt.JobPrincipal(report.id),
                                     host_.cpu);
    MEMFLOW_CHECK(acc.ok());
    std::uint64_t v = 0;
    MEMFLOW_CHECK(acc->Load(0, v).ok());
    return v;
  }

  simhw::CxlHostHandles host_;
};

TEST_F(RuntimeTest, LinearPipelineComputesCorrectResult) {
  Runtime rt(*host_.cluster);
  Job job("pipeline");
  const TaskId p = job.AddTask("produce", {}, Producer(1000));
  const TaskId c = job.AddTask("consume", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(p, c).ok());

  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks.size(), 2u);
  EXPECT_GT(report->Makespan().ns, 0);
  // sum of 3i for i<1000 = 3 * 999*1000/2
  EXPECT_EQ(ReadSinkValue(rt, *report), 3u * 999 * 1000 / 2);
}

TEST_F(RuntimeTest, HandoverIsZeroCopyOnSameObserver) {
  Runtime rt(*host_.cluster);
  Job job("zc");
  const TaskId p = job.AddTask("produce", {}, Producer(512));
  const TaskId c = job.AddTask("consume", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(p, c).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_GE(rt.stats().zero_copy_handovers, 1u);
  EXPECT_EQ(rt.stats().copied_handovers, 0u);
  // The producer's report records the zero-copy handover.
  const TaskReport& ptr = report->tasks[0];
  EXPECT_TRUE(ptr.zero_copy_handover);
  EXPECT_EQ(ptr.handover_cost.ns, 0);
}

TEST_F(RuntimeTest, DiamondFanOutSharesOutput) {
  Runtime rt(*host_.cluster);
  Job job("diamond");
  const TaskId a = job.AddTask("a", {}, Producer(256));
  const TaskId b = job.AddTask("b", {}, SummingConsumer());
  const TaskId c = job.AddTask("c", {}, SummingConsumer());
  const TaskId d = job.AddTask("d", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());
  ASSERT_TRUE(job.Connect(b, d).ok());
  ASSERT_TRUE(job.Connect(c, d).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  // b and c each summed a's 256 values; d sums their two sums.
  const std::uint64_t expect_each = 3u * 255 * 256 / 2;
  EXPECT_EQ(ReadSinkValue(rt, *report), 2 * expect_each);
}

TEST_F(RuntimeTest, GpuRequirementHonored) {
  Runtime rt(*host_.cluster);
  Job job("gpu-task");
  TaskProperties gpu_props;
  gpu_props.compute_device = simhw::ComputeDeviceKind::kGPU;
  gpu_props.base_work = 1e5;
  gpu_props.parallel_fraction = 0.99;
  const TaskId t = job.AddTask("kernel", gpu_props, Producer(64));
  (void)t;
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_EQ(report->tasks[0].device, host_.gpu);
}

TEST_F(RuntimeTest, ImpossibleComputeRequirementRejectsJob) {
  Runtime rt(*host_.cluster);
  Job job("tpu-task");
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kTPU;  // host has no TPU
  job.AddTask("t", props, Producer(16));
  auto id = rt.Submit(std::move(job));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(rt.stats().jobs_rejected, 1u);
}

TEST_F(RuntimeTest, GlobalStateSharedAcrossTasks) {
  Runtime rt(*host_.cluster);
  dataflow::JobOptions opts;
  opts.global_state_bytes = KiB(4);
  Job job("stateful", opts);

  // Writer bumps a counter in global state; reader checks it.
  const TaskId w = job.AddTask("writer", {}, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(ctx.global_state()));
    const std::uint64_t v = 41;
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Store(0, v));
    ctx.Charge(cost);
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(8));
    (void)out;
    return OkStatus();
  });
  const TaskId r = job.AddTask("reader", {}, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(ctx.global_state()));
    std::uint64_t v = 0;
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Load(0, v));
    ctx.Charge(cost);
    if (v != 41) {
      return Internal("global state not visible");
    }
    return OkStatus();
  });
  ASSERT_TRUE(job.Connect(w, r).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
}

TEST_F(RuntimeTest, GlobalScratchPassesDataBetweenUnconnectedTasks) {
  Runtime rt(*host_.cluster);
  dataflow::JobOptions opts;
  opts.global_scratch_bytes = KiB(64);
  Job job("scratchy", opts);

  // Two sources; the second reads what the first stashed in global scratch
  // even though no dataflow edge connects them. Order is guaranteed here by
  // connecting both to a sink and relying on source dispatch order (a before
  // b in submission order on the same device queue is NOT guaranteed across
  // devices, so give them the same device requirement).
  TaskProperties cpu_only;
  cpu_only.compute_device = simhw::ComputeDeviceKind::kCPU;
  const TaskId a = job.AddTask("stash", cpu_only, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(ctx.global_scratch()));
    static const char kBloom[] = "bloom-filter-bits";
    acc.EnqueueWrite(0, kBloom, sizeof(kBloom));
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    ctx.Charge(cost);
    return OkStatus();
  });
  const TaskId b = job.AddTask("probe", cpu_only, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(ctx.global_scratch()));
    char buf[18] = {};
    acc.EnqueueRead(0, buf, 18);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    ctx.Charge(cost);
    if (std::strcmp(buf, "bloom-filter-bits") != 0) {
      return Internal("scratch data not visible");
    }
    return OkStatus();
  });
  ASSERT_TRUE(job.Connect(a, b).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
}

TEST_F(RuntimeTest, PersistentSinkOutputSurvivesJob) {
  Runtime rt(*host_.cluster);
  Job job("persist");
  TaskProperties props;
  props.persistent = true;
  job.AddTask("save", props, Producer(128));
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  ASSERT_EQ(report->outputs.size(), 1u);
  const auto info = rt.regions().Info(report->outputs[0]);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(host_.cluster->memory(info->device).profile().persistent);
}

TEST_F(RuntimeTest, FailingTaskFailsJobAfterRetries) {
  RuntimeOptions options;
  options.max_task_attempts = 3;
  Runtime rt(*host_.cluster, options);
  Job job("doomed");
  int attempts = 0;
  job.AddTask("boom", {}, [&attempts](TaskContext&) -> Status {
    attempts++;
    return Internal("kaboom");
  });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(rt.stats().jobs_failed, 1u);
  EXPECT_EQ(rt.stats().task_retries, 2u);
}

TEST_F(RuntimeTest, TransientFailureRecoversViaRetry) {
  RuntimeOptions options;
  options.max_task_attempts = 2;
  Runtime rt(*host_.cluster, options);
  Job job("flaky");
  int attempts = 0;
  job.AddTask("flaky", {}, [&attempts](TaskContext& ctx) -> Status {
    if (++attempts == 1) {
      return Unavailable("transient");
    }
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(64));
    (void)out;
    return OkStatus();
  });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(report->tasks[0].attempts, 2);
}

TEST_F(RuntimeTest, ScratchRegionsFreedAfterTask) {
  Runtime rt(*host_.cluster);
  Job job("scratch-lifetime");
  job.AddTask("t", {}, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s, ctx.AllocatePrivateScratch(MiB(1)));
    (void)s;
    return OkStatus();
  });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_TRUE(rt.regions().LiveRegions().empty());  // nothing leaks
}

TEST_F(RuntimeTest, NonPersistentEverythingFreedAtTeardown) {
  Runtime rt(*host_.cluster);
  Job job("clean");
  const TaskId p = job.AddTask("p", {}, Producer(64));
  const TaskId c = job.AddTask("c", {}, SummingConsumer());
  ASSERT_TRUE(job.Connect(p, c).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  // Only the retained sink output remains; releasing it empties the manager.
  ASSERT_TRUE(rt.ReleaseJobOutputs(report->id).ok());
  EXPECT_TRUE(rt.regions().LiveRegions().empty());
}

TEST_F(RuntimeTest, ConcurrentJobsBothComplete) {
  Runtime rt(*host_.cluster);
  std::vector<dataflow::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    Job job("job" + std::to_string(i));
    const TaskId p = job.AddTask("p", {}, Producer(256));
    const TaskId c = job.AddTask("c", {}, SummingConsumer());
    ASSERT_TRUE(job.Connect(p, c).ok());
    auto id = rt.Submit(std::move(job));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(rt.RunToCompletion().ok());
  EXPECT_EQ(rt.stats().jobs_completed, 4u);
  for (const auto id : ids) {
    EXPECT_TRUE(rt.report(id).status.ok());
  }
}

TEST_F(RuntimeTest, VirtualTimeAdvancesWithWork) {
  Runtime rt(*host_.cluster);
  Job small("small");
  small.AddTask("p", {}, Producer(64));
  auto r1 = rt.SubmitAndRun(std::move(small));
  ASSERT_TRUE(r1.ok());
  const SimDuration small_makespan = r1->Makespan();

  Runtime rt2(*host_.cluster);
  Job big("big");
  big.AddTask("p", {}, Producer(1 << 20));
  auto r2 = rt2.SubmitAndRun(std::move(big));
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->Makespan().ns, small_makespan.ns * 10);
}

TEST_F(RuntimeTest, NodeCrashFaultFailsJobWhoseDataIsLost) {
  // Far-memory crash during a job that parked its input there.
  simhw::DisaggHandles h = simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 1});
  RuntimeOptions options;
  options.max_task_attempts = 2;
  Runtime rt(*h.cluster, options);
  simhw::FaultInjector faults(*h.cluster);
  // Crash the only far-memory node immediately; local DRAM survives.
  faults.CrashNodeAt(SimTime(1), h.memory_node_ids[0]);
  rt.AttachFaultInjector(&faults);

  Job job("victim");
  job.AddTask("t", {}, [&](TaskContext& ctx) -> Status {
    // Explicitly stash data on the far device, then read it back later than
    // the crash. The read itself happens "now" (dispatch), so instead we
    // just verify the device fails underneath us via a long-delay second job.
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(KiB(4)));
    (void)out;
    ctx.Charge(SimDuration::Millis(1));  // runs past the crash
    return OkStatus();
  });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  // The fault fired during the run.
  EXPECT_EQ(faults.fired().size(), 1u);
}

TEST_F(RuntimeTest, FailedJobWithInFlightTasksLeaksNothing) {
  // Two parallel chains; one fails while the other's task is in flight. The
  // in-flight task's completion event must still release every region it
  // held (inputs included) once it observes the failed job.
  RuntimeOptions options;
  options.max_task_attempts = 1;
  Runtime rt(*host_.cluster, options);
  Job job("half-doomed");
  const TaskId p1 = job.AddTask("p1", {}, Producer(4096));
  const TaskId c1 = job.AddTask("c1", {}, SummingConsumer());
  const TaskId p2 = job.AddTask("p2", {}, Producer(4096));
  const TaskId boom = job.AddTask("boom", {}, [](TaskContext& ctx) -> Status {
    (void)ctx;
    return Internal("dead");
  });
  ASSERT_TRUE(job.Connect(p1, c1).ok());
  ASSERT_TRUE(job.Connect(p2, boom).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->status.ok());
  EXPECT_TRUE(rt.regions().LiveRegions().empty());
  EXPECT_EQ(host_.cluster->TotalMemoryUsed(), 0u);
}

TEST_F(RuntimeTest, UtilizationReportRenders) {
  Runtime rt(*host_.cluster);
  Job job("r");
  job.AddTask("p", {}, Producer(256));
  ASSERT_TRUE(rt.SubmitAndRun(std::move(job)).ok());
  const std::string report = rt.UtilizationReport();
  EXPECT_NE(report.find("dram"), std::string::npos);
  EXPECT_NE(report.find("cpu"), std::string::npos);
}

// --- Placement policies -----------------------------------------------------------

TEST(PlacementTest, CostModelPicksGpuForParallelWork) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  CostModel model(*host.cluster);
  auto policy = MakePlacementPolicy(PlacementPolicyKind::kCostModel);
  Job job("j");
  TaskProperties props;
  props.base_work = 1e8;
  props.parallel_fraction = 0.99;
  const TaskId t = job.AddTask("kernel", props, Producer(1));
  auto placed = policy->Place(job, t, 0, *host.cluster, model);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(*placed, host.gpu);
}

TEST(PlacementTest, CostModelPicksCpuForScalarWork) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  CostModel model(*host.cluster);
  auto policy = MakePlacementPolicy(PlacementPolicyKind::kCostModel);
  Job job("j");
  TaskProperties props;
  props.base_work = 1e8;
  props.parallel_fraction = 0.05;
  const TaskId t = job.AddTask("branchy", props, Producer(1));
  auto placed = policy->Place(job, t, 0, *host.cluster, model);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(*placed, host.cpu);
}

TEST(PlacementTest, RoundRobinCycles) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  CostModel model(*host.cluster);
  auto policy = MakePlacementPolicy(PlacementPolicyKind::kRoundRobin);
  Job job("j");
  const TaskId t = job.AddTask("t", {}, Producer(1));
  auto a = policy->Place(job, t, 0, *host.cluster, model);
  auto b = policy->Place(job, t, 0, *host.cluster, model);
  auto c = policy->Place(job, t, 0, *host.cluster, model);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(*a, *c);  // two devices -> wraps around
}

TEST(PlacementTest, EligibilityFiltersKind) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  CostModel model(*host.cluster);
  for (const auto kind : {PlacementPolicyKind::kRoundRobin, PlacementPolicyKind::kFirstFit,
                          PlacementPolicyKind::kRandom, PlacementPolicyKind::kCostModel}) {
    auto policy = MakePlacementPolicy(kind);
    Job job("j");
    TaskProperties props;
    props.compute_device = simhw::ComputeDeviceKind::kGPU;
    const TaskId t = job.AddTask("t", props, Producer(1));
    auto placed = policy->Place(job, t, 0, *host.cluster, model);
    ASSERT_TRUE(placed.ok()) << PlacementPolicyKindName(kind);
    EXPECT_EQ(*placed, host.gpu) << PlacementPolicyKindName(kind);
  }
}

// --- Deterministic parallel execution ---------------------------------------------
//
// The executor is a conservative parallel discrete-event simulator: bodies
// dispatchable at one virtual-time step run concurrently on a worker pool and
// commit in (device, job, task) order (DESIGN.md §8). These tests pin the core
// guarantee: observable results are identical at every worker count. Region
// ids are deliberately NOT compared — allocation interleaving may assign them
// in a different order, which is the one permitted divergence.

void ExpectStatsEqual(const RuntimeStats& a, const RuntimeStats& b, int workers) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted) << "workers=" << workers;
  EXPECT_EQ(a.jobs_completed, b.jobs_completed) << "workers=" << workers;
  EXPECT_EQ(a.jobs_failed, b.jobs_failed) << "workers=" << workers;
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected) << "workers=" << workers;
  EXPECT_EQ(a.tasks_executed, b.tasks_executed) << "workers=" << workers;
  EXPECT_EQ(a.task_retries, b.task_retries) << "workers=" << workers;
  EXPECT_EQ(a.zero_copy_handovers, b.zero_copy_handovers) << "workers=" << workers;
  EXPECT_EQ(a.copied_handovers, b.copied_handovers) << "workers=" << workers;
}

struct DetRun {
  std::string fingerprint;
  RuntimeStats stats;
  std::uint64_t sink_value = 0;
};

DetRun RunWideAt(int workers) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
  telemetry::Registry reg;
  RuntimeOptions opts;
  opts.worker_threads = workers;
  opts.registry = &reg;
  Runtime rt(*rack.cluster, opts);
  auto report = rt.SubmitAndRun(WideJob("wide", 12));
  MEMFLOW_CHECK(report.ok() && report->status.ok());
  DetRun out;
  out.fingerprint = Fingerprint(*report);
  out.stats = rt.stats();
  MEMFLOW_CHECK(!report->outputs.empty());
  auto acc = rt.regions().OpenAsync(report->outputs.front(), rt.JobPrincipal(report->id),
                                    rack.cpus.front());
  MEMFLOW_CHECK(acc.ok());
  acc->EnqueueRead(0, &out.sink_value, 8);
  MEMFLOW_CHECK(acc->Drain().ok());
  return out;
}

TEST(DeterminismTest, ReportsIdenticalAcrossWorkerCounts) {
  const DetRun base = RunWideAt(1);
  // 12 mid tasks sharing the source's 512 values; sink sums the 12 sums.
  EXPECT_EQ(base.sink_value, 12u * (3u * 511 * 512 / 2));
  for (const int workers : {2, 8}) {
    const DetRun run = RunWideAt(workers);
    EXPECT_EQ(run.fingerprint, base.fingerprint) << "workers=" << workers;
    EXPECT_EQ(run.sink_value, base.sink_value) << "workers=" << workers;
    ExpectStatsEqual(run.stats, base.stats, workers);
  }
}

TEST(DeterminismTest, ConcurrentJobsDeterministicAcrossWorkerCounts) {
  // Several jobs submitted together: their same-step bodies interleave on the
  // pool across job boundaries, and everything must still replay bit-equal.
  auto run_at = [](int workers) {
    simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
    telemetry::Registry reg;
    RuntimeOptions opts;
    opts.worker_threads = workers;
    opts.registry = &reg;
    Runtime rt(*rack.cluster, opts);
    std::vector<dataflow::JobId> ids;
    for (int j = 0; j < 6; ++j) {
      auto id = rt.Submit(WideJob("job" + std::to_string(j), 4 + j));
      MEMFLOW_CHECK(id.ok());
      ids.push_back(*id);
    }
    MEMFLOW_CHECK(rt.RunToCompletion().ok());
    DetRun out;
    for (const dataflow::JobId id : ids) {
      const JobReport& report = rt.report(id);
      MEMFLOW_CHECK(report.status.ok());
      out.fingerprint += Fingerprint(report);
    }
    out.stats = rt.stats();
    return out;
  };
  const DetRun base = run_at(1);
  EXPECT_EQ(base.stats.jobs_completed, 6u);
  for (const int workers : {2, 8}) {
    const DetRun run = run_at(workers);
    EXPECT_EQ(run.fingerprint, base.fingerprint) << "workers=" << workers;
    ExpectStatsEqual(run.stats, base.stats, workers);
  }
}

TEST(DeterminismTest, NonParallelSafeJobsStillCorrect) {
  // A job whose tasks communicate through Global Scratch is not parallel-safe;
  // its same-step bodies must serialize (one chain) yet still run correctly
  // alongside other jobs at every worker count.
  auto make_scratch_job = [] {
    dataflow::JobOptions jopts;
    jopts.global_scratch_bytes = KiB(64);
    Job job("scratchy", jopts);
    const TaskId w = job.AddTask("w", {}, [](TaskContext& ctx) -> Status {
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc,
                               ctx.OpenAsync(ctx.global_scratch()));
      const std::uint64_t v = 7;
      acc.EnqueueWrite(0, &v, 8);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
      ctx.Charge(cost);
      return OkStatus();
    });
    const TaskId r = job.AddTask("r", {}, [](TaskContext& ctx) -> Status {
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc,
                               ctx.OpenAsync(ctx.global_scratch()));
      std::uint64_t v = 0;
      acc.EnqueueRead(0, &v, 8);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
      ctx.Charge(cost);
      return v == 7 ? OkStatus() : Internal("scratch write not visible");
    });
    MEMFLOW_CHECK(job.Connect(w, r, {.mode = dataflow::EdgeMode::kControl}).ok());
    return job;
  };
  for (const int workers : {1, 8}) {
    simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 4});
    telemetry::Registry reg;
    RuntimeOptions opts;
    opts.worker_threads = workers;
    opts.registry = &reg;
    Runtime rt(*rack.cluster, opts);
    auto a = rt.Submit(make_scratch_job());
    auto b = rt.Submit(WideJob("bystander", 8));
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(rt.RunToCompletion().ok());
    EXPECT_TRUE(rt.report(*a).status.ok()) << rt.report(*a).status.ToString();
    EXPECT_TRUE(rt.report(*b).status.ok()) << rt.report(*b).status.ToString();
  }
}

// --- Cost model -------------------------------------------------------------------

TEST(CostModelTest, EstimateScalesWithInput) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  CostModel model(*host.cluster);
  TaskProperties props;
  props.work_per_byte = 1.0;
  auto small = model.Estimate(props, KiB(64), host.cpu);
  auto large = model.Estimate(props, MiB(64), host.cpu);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->total.ns, small->total.ns * 100);
}

TEST(CostModelTest, DerivedSizes) {
  TaskProperties props;
  props.scratch_bytes = 100;
  props.scratch_bytes_per_input_byte = 0.5;
  props.output_bytes = 10;
  props.output_bytes_per_input_byte = 2.0;
  props.base_work = 5;
  props.work_per_byte = 1.0;
  EXPECT_EQ(CostModel::ScratchBytes(props, 1000), 600u);
  EXPECT_EQ(CostModel::OutputBytes(props, 1000), 2010u);
  EXPECT_DOUBLE_EQ(CostModel::WorkUnits(props, 1000), 1005.0);
}

TEST(CostModelTest, WrongDeviceKindRefused) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  CostModel model(*host.cluster);
  TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kGPU;
  EXPECT_FALSE(model.Estimate(props, 0, host.cpu).ok());
  EXPECT_TRUE(model.Estimate(props, 0, host.gpu).ok());
}

}  // namespace
}  // namespace memflow::rts
