// Copyright (c) memflow authors. MIT license.
//
// Integration tests: the four Table 3 application types plus the Figure 2
// hospital pipeline run end-to-end through the runtime, and their outputs are
// verified against host-side reference implementations.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/dbms.h"
#include "apps/hospital.h"
#include "apps/hpc.h"
#include "apps/ml.h"
#include "apps/streaming.h"
#include "apps/util.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::apps {
namespace {

// Reads a sink output region as a typed vector using the job principal.
template <typename T>
std::vector<T> ReadOutput(rts::Runtime& rt, const rts::JobReport& report,
                          region::RegionId id) {
  auto info = rt.regions().Info(id);
  MEMFLOW_CHECK(info.ok());
  std::vector<T> out(info->size / sizeof(T));
  auto acc = rt.regions().OpenAsync(id, rt.JobPrincipal(report.id),
                                    rt.cluster().AllComputeDevices().front());
  MEMFLOW_CHECK(acc.ok());
  acc->EnqueueRead(0, out.data(), out.size() * sizeof(T));
  MEMFLOW_CHECK(acc->Drain().ok());
  return out;
}

// Finds the output region of the task with the given name.
region::RegionId OutputOf(const rts::JobReport& report, std::string_view task_name) {
  for (const rts::TaskReport& t : report.tasks) {
    if (t.name == task_name) {
      return t.output;
    }
  }
  MEMFLOW_CHECK_MSG(false, "no such task");
  return {};
}

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() : host_(simhw::MakeCxlExpansionHost()), rt_(*host_.cluster) {}

  simhw::CxlHostHandles host_;
  rts::Runtime rt_;
};

// --- DBMS -----------------------------------------------------------------------

TEST_F(AppsTest, DbmsScanAggregateMatchesReference) {
  dbms::TableSpec spec;
  spec.rows = 20000;
  spec.groups = 32;
  auto report = rt_.SubmitAndRun(dbms::BuildScanAggregateJob(spec, 0.35));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  const auto got = ReadOutput<double>(rt_, *report, report->outputs.front());
  const auto expected = dbms::ExpectedScanAggregate(spec, 0.35);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t g = 0; g < got.size(); ++g) {
    EXPECT_NEAR(got[g], expected[g], 1e-6) << "group " << g;
  }
}

TEST_F(AppsTest, DbmsScanAggregateSelectivityZeroAndOne) {
  dbms::TableSpec spec;
  spec.rows = 5000;
  spec.groups = 8;
  for (const double sel : {0.0, 1.0}) {
    rts::Runtime rt(*host_.cluster);
    auto report = rt.SubmitAndRun(dbms::BuildScanAggregateJob(spec, sel));
    ASSERT_TRUE(report.ok() && report->status.ok()) << sel;
    const auto got = ReadOutput<double>(rt, *report, report->outputs.front());
    const auto expected = dbms::ExpectedScanAggregate(spec, sel);
    for (std::size_t g = 0; g < got.size(); ++g) {
      EXPECT_NEAR(got[g], expected[g], 1e-6);
    }
  }
}

TEST_F(AppsTest, DbmsJoinMatchesReference) {
  dbms::TableSpec fact;
  fact.rows = 30000;
  fact.groups = 500;  // foreign keys into dim
  fact.seed = 11;
  dbms::TableSpec dim;
  dim.rows = 500;
  dim.groups = 10;
  dim.seed = 22;
  auto report = rt_.SubmitAndRun(dbms::BuildJoinJob(fact, dim));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  const auto got = ReadOutput<double>(rt_, *report, report->outputs.front());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NEAR(got[0], dbms::ExpectedJoin(fact, dim), std::abs(got[0]) * 1e-9);
}

// --- ML --------------------------------------------------------------------------

TEST_F(AppsTest, MlTrainingConverges) {
  ml::MlSpec spec;
  spec.examples = 5000;
  spec.features = 4;
  spec.epochs = 20;
  spec.learning_rate = 0.4;
  auto report = rt_.SubmitAndRun(ml::BuildTrainingJob(spec));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  const auto raw = ReadOutput<double>(rt_, *report, report->outputs.front());
  const ml::TrainedModel model = ml::DecodeModel(raw, spec.features);
  EXPECT_LT(model.final_loss, model.initial_loss / 10.0);
  for (int f = 0; f < spec.features; ++f) {
    EXPECT_NEAR(model.weights[static_cast<std::size_t>(f)], ml::TrueWeight(f), 0.3)
        << "feature " << f;
  }
}

TEST_F(AppsTest, MlTrainingRunsOnGpuWithPersistentWeights) {
  ml::MlSpec spec;
  spec.examples = 2000;
  spec.features = 3;
  spec.epochs = 3;
  auto report = rt_.SubmitAndRun(ml::BuildTrainingJob(spec, /*persist_weights=*/true));
  ASSERT_TRUE(report.ok() && report->status.ok());
  for (const rts::TaskReport& t : report->tasks) {
    if (t.name == "train") {
      EXPECT_EQ(t.device, host_.gpu);
    }
  }
  const auto info = rt_.regions().Info(report->outputs.front());
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(host_.cluster->memory(info->device).profile().persistent);
}

// --- Streaming ----------------------------------------------------------------------

TEST_F(AppsTest, StreamingWindowMeansMatchReference) {
  streaming::StreamSpec spec;
  spec.events = 50000;
  spec.sensors = 8;
  spec.window_events = 5000;
  auto report = rt_.SubmitAndRun(streaming::BuildStreamingJob(spec));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  const auto got = ReadOutput<double>(rt_, *report, report->outputs.front());
  const auto expected = streaming::ExpectedWindowMeans(spec);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-4) << i;
  }
}

TEST_F(AppsTest, StreamingHandlesPartialFinalWindow) {
  streaming::StreamSpec spec;
  spec.events = 10500;  // last window is partial
  spec.sensors = 4;
  spec.window_events = 4000;
  auto report = rt_.SubmitAndRun(streaming::BuildStreamingJob(spec));
  ASSERT_TRUE(report.ok() && report->status.ok());
  const auto got = ReadOutput<double>(rt_, *report, report->outputs.front());
  EXPECT_EQ(got.size(), streaming::NumWindows(spec) * spec.sensors);
  const auto expected = streaming::ExpectedWindowMeans(spec);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-4);
  }
}

// --- HPC --------------------------------------------------------------------------

TEST_F(AppsTest, StencilMatchesReferenceExactly) {
  hpc::StencilSpec spec;
  spec.nx = 32;
  spec.ny = 32;
  spec.sweeps = 6;
  auto report = rt_.SubmitAndRun(hpc::BuildStencilJob(spec));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  const auto got = ReadOutput<double>(rt_, *report, report->outputs.front());
  const auto expected = hpc::ReferenceStencil(spec);
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(hpc::MaxAbsDiff(got, expected), 0.0);  // bit-exact
}

TEST_F(AppsTest, StencilGridHandoversAreZeroCopy) {
  hpc::StencilSpec spec;
  spec.nx = 16;
  spec.ny = 16;
  spec.sweeps = 5;
  auto report = rt_.SubmitAndRun(hpc::BuildStencilJob(spec));
  ASSERT_TRUE(report.ok() && report->status.ok());
  // The grid travels by ownership transfer: every non-sink handover free.
  int zero_copy = 0;
  for (const rts::TaskReport& t : report->tasks) {
    if (t.zero_copy_handover) {
      zero_copy++;
    }
  }
  EXPECT_GE(zero_copy, spec.sweeps);
  EXPECT_GE(rt_.stats().zero_copy_handovers, static_cast<std::uint64_t>(spec.sweeps));
}

// --- Hospital (Figure 2) --------------------------------------------------------------

TEST_F(AppsTest, HospitalPipelineMatchesReference) {
  hospital::HospitalSpec spec;
  spec.minutes = 12 * 60;
  spec.staff = 10;
  spec.patients = 25;
  auto report = rt_.SubmitAndRun(hospital::BuildHospitalJob(spec));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  const hospital::HospitalExpectation expected = hospital::ExpectedHospital(spec);
  const auto hours =
      ReadOutput<std::uint64_t>(rt_, *report, OutputOf(*report, "track-hours"));
  const auto util =
      ReadOutput<std::uint32_t>(rt_, *report, OutputOf(*report, "compute-utilization"));
  const auto alerts =
      ReadOutput<std::uint32_t>(rt_, *report, OutputOf(*report, "alert-caregivers"));
  EXPECT_EQ(hours, expected.staff_minutes);
  EXPECT_EQ(util, expected.hourly_utilization);
  EXPECT_EQ(alerts, expected.alerts);
  EXPECT_FALSE(alerts.empty());  // the scenario produces at least one alert
}

TEST_F(AppsTest, HospitalGpuTasksRunOnGpu) {
  hospital::HospitalSpec spec;
  spec.minutes = 6 * 60;
  auto report = rt_.SubmitAndRun(hospital::BuildHospitalJob(spec));
  ASSERT_TRUE(report.ok() && report->status.ok());
  for (const rts::TaskReport& t : report->tasks) {
    if (t.name == "preprocess" || t.name == "face-recognition") {
      EXPECT_EQ(t.device, host_.gpu) << t.name;
    }
    if (t.name == "track-hours" || t.name == "alert-caregivers") {
      EXPECT_EQ(t.device, host_.cpu) << t.name;
    }
  }
}

TEST_F(AppsTest, HospitalAlertsArePersistentAndConfidential) {
  hospital::HospitalSpec spec;
  spec.minutes = 6 * 60;
  auto report = rt_.SubmitAndRun(hospital::BuildHospitalJob(spec));
  ASSERT_TRUE(report.ok() && report->status.ok());

  const region::RegionId alerts = OutputOf(*report, "alert-caregivers");
  const auto info = rt_.regions().Info(alerts);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(host_.cluster->memory(info->device).profile().persistent);

  // Confidential: another job's principal is denied.
  EXPECT_EQ(rt_.regions()
                .OpenSync(alerts, region::Principal{9999, 1}, host_.cpu)
                .status()
                .code(),
            StatusCode::kPermissionDenied);

  // Crash-survival: fail the device holding the alerts; contents persist.
  host_.cluster->memory(info->device).Fail();
  host_.cluster->memory(info->device).Recover();
  EXPECT_TRUE(rt_.regions().MarkLostOn(info->device).empty());
  const auto still = ReadOutput<std::uint32_t>(rt_, *report, alerts);
  EXPECT_EQ(still, hospital::ExpectedHospital(spec).alerts);
}

TEST_F(AppsTest, HospitalUtilizationIsPublic) {
  hospital::HospitalSpec spec;
  spec.minutes = 6 * 60;
  auto report = rt_.SubmitAndRun(hospital::BuildHospitalJob(spec));
  ASSERT_TRUE(report.ok() && report->status.ok());
  const region::RegionId util = OutputOf(*report, "compute-utilization");
  // Utilization feeds a public website: its own region is not confidential,
  // but it is still owned by the job, so a foreign principal gets an
  // ownership (not confidentiality) error.
  const auto status =
      rt_.regions().OpenSync(util, region::Principal{9999, 1}, host_.cpu).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace memflow::apps
