// Copyright (c) memflow authors. MIT license.
//
// Tests for remotable tagged pointers (swizzling, hotness tags) and the
// hotness-driven tiering daemon.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "region/region_manager.h"
#include "region/remote_ptr.h"
#include "region/tiering.h"
#include "simhw/presets.h"

namespace memflow::region {
namespace {

constexpr Principal kOwner{1, 1};

// --- RemotePtr ------------------------------------------------------------------

TEST(RemotePtrTest, PacksRegionAndOffset) {
  const auto p = RemotePtr<double>::Make(RegionId(12345), 678);
  EXPECT_FALSE(p.swizzled());
  EXPECT_EQ(p.region().value, 12345u);
  EXPECT_EQ(p.offset(), 678u);
  EXPECT_EQ(p.byte_offset(), 678 * sizeof(double));
  EXPECT_EQ(p.hotness(), 0);
}

TEST(RemotePtrTest, IsOneMachineWord) {
  EXPECT_EQ(sizeof(RemotePtr<int>), 8u);
}

TEST(RemotePtrTest, TouchSaturates) {
  auto p = RemotePtr<int>::Make(RegionId(1), 0);
  for (int i = 0; i < 40000; ++i) {
    p.Touch();
  }
  EXPECT_EQ(p.hotness(), kRemotePtrMaxHotness);
  // Address bits untouched by the tag.
  EXPECT_EQ(p.region().value, 1u);
  EXPECT_EQ(p.offset(), 0u);
}

TEST(RemotePtrTest, CoolHalves) {
  auto p = RemotePtr<int>::Make(RegionId(1), 0);
  for (int i = 0; i < 100; ++i) {
    p.Touch();
  }
  p.Cool();
  EXPECT_EQ(p.hotness(), 50);
}

TEST(RemotePtrTest, SwizzleRoundTrip) {
  int local = 99;
  auto p = RemotePtr<int>::Make(RegionId(7), 3);
  p.Touch();
  p.Touch();
  p.Swizzle(&local);
  ASSERT_TRUE(p.swizzled());
  EXPECT_EQ(p.raw(), &local);
  EXPECT_EQ(*p, 99);
  EXPECT_EQ(p.hotness(), 2);  // tag survives swizzling

  p.Unswizzle(RegionId(7), 3);
  EXPECT_FALSE(p.swizzled());
  EXPECT_EQ(p.region().value, 7u);
  EXPECT_EQ(p.offset(), 3u);
  EXPECT_EQ(p.hotness(), 2);
}

// --- Tiering ---------------------------------------------------------------------

class TieringTest : public ::testing::Test {
 protected:
  TieringTest() : host_(simhw::MakeCxlExpansionHost()), mgr_(*host_.cluster) {}

  RegionId AllocOn(simhw::MemoryDeviceId dev, std::uint64_t size) {
    auto id = mgr_.AllocateOn(dev, size, Properties{}, kOwner);
    MEMFLOW_CHECK(id.ok());
    return *id;
  }

  void Touch(RegionId id, int times) {
    auto acc = mgr_.OpenAsync(id, kOwner, host_.cpu);
    MEMFLOW_CHECK(acc.ok());
    std::vector<char> buf(KiB(64));
    for (int i = 0; i < times; ++i) {
      acc->EnqueueRead(0, buf.data(), buf.size());
    }
    MEMFLOW_CHECK(acc->Drain().ok());
  }

  simhw::CxlHostHandles host_;
  RegionManager mgr_;
};

TEST_F(TieringTest, HotRegionOnSlowTierGetsPromoted) {
  const RegionId hot = AllocOn(host_.cxl_dram, MiB(1));
  Touch(hot, 200);

  TieringDaemon daemon(mgr_, host_.cpu);
  const TieringReport report = daemon.RunEpoch();
  EXPECT_GE(report.promoted, 1);
  auto info = mgr_.Info(hot);
  ASSERT_TRUE(info.ok());
  // Promoted to something faster than the CXL expander from the CPU.
  auto old_view = host_.cluster->View(host_.cpu, host_.cxl_dram);
  auto new_view = host_.cluster->View(host_.cpu, info->device);
  ASSERT_TRUE(old_view.ok() && new_view.ok());
  EXPECT_LT(new_view->read_latency.ns, old_view->read_latency.ns);
}

TEST_F(TieringTest, ColdRegionStaysPutWhenNoPressure) {
  const RegionId cold = AllocOn(host_.cxl_dram, MiB(1));
  TieringDaemon daemon(mgr_, host_.cpu);
  daemon.RunEpoch();
  EXPECT_EQ(mgr_.Info(cold)->device, host_.cxl_dram);
}

TEST_F(TieringTest, ColdRegionDemotedUnderPressure) {
  // Fill DRAM past the high watermark with cold regions.
  std::vector<RegionId> filler;
  const std::uint64_t cap = host_.cluster->memory(host_.dram).capacity();
  while (host_.cluster->memory(host_.dram).utilization() < 0.95) {
    filler.push_back(AllocOn(host_.dram, cap / 32));
  }
  TieringConfig config;
  config.epoch_budget_bytes = cap;  // plenty of budget
  TieringDaemon daemon(mgr_, host_.cpu, config);
  const TieringReport report = daemon.RunEpoch();
  EXPECT_GE(report.demoted, 1);
  EXPECT_LT(host_.cluster->memory(host_.dram).utilization(), 0.95);
}

TEST_F(TieringTest, BudgetBoundsMovement) {
  const RegionId hot1 = AllocOn(host_.cxl_dram, MiB(8));
  const RegionId hot2 = AllocOn(host_.cxl_dram, MiB(8));
  Touch(hot1, 300);
  Touch(hot2, 300);
  TieringConfig config;
  config.epoch_budget_bytes = MiB(8);  // room for only one
  TieringDaemon daemon(mgr_, host_.cpu, config);
  const TieringReport report = daemon.RunEpoch();
  EXPECT_EQ(report.promoted, 1);
  EXPECT_LE(report.bytes_moved, MiB(8));
}

TEST_F(TieringTest, EpochDecaysHotness) {
  const RegionId r = AllocOn(host_.dram, KiB(64));
  Touch(r, 50);
  const std::uint64_t before = mgr_.Info(r)->hotness;
  ASSERT_GT(before, 0u);
  TieringDaemon daemon(mgr_, host_.cpu);
  daemon.RunEpoch();
  EXPECT_LT(mgr_.Info(r)->hotness, before);
}

TEST_F(TieringTest, SkewedWorkloadConvergesHotToFastTier) {
  // 8 regions on the CXL expander, Zipf-accessed; after a few epochs the
  // hottest ranks should live on faster media than the coldest.
  std::vector<RegionId> regions;
  for (int i = 0; i < 8; ++i) {
    regions.push_back(AllocOn(host_.cxl_dram, MiB(2)));
  }
  Rng rng(1234);
  ZipfGenerator zipf(8, 1.2);
  TieringDaemon daemon(mgr_, host_.cpu);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 400; ++i) {
      Touch(regions[zipf.Sample(rng)], 1);
    }
    daemon.RunEpoch();
  }
  auto hottest = host_.cluster->View(host_.cpu, mgr_.Info(regions[0])->device);
  auto coldest = host_.cluster->View(host_.cpu, mgr_.Info(regions[7])->device);
  ASSERT_TRUE(hottest.ok() && coldest.ok());
  EXPECT_LE(hottest->read_latency.ns, coldest->read_latency.ns);
}

}  // namespace
}  // namespace memflow::region
