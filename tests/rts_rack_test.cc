// Copyright (c) memflow authors. MIT license.
//
// Runtime behaviour on the compute-centric rack (Figure 1a): coherence
// domains end at the server boundary, so job planning must keep coherent
// Global State inside one domain — the re-placement fallback in the planner —
// and jobs that cannot be contained are rejected rather than silently broken.

#include <gtest/gtest.h>

#include <set>

#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::rts {
namespace {

using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskId;

dataflow::TaskFn StateToucher() {
  return [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state, ctx.OpenSync(ctx.global_state()));
    std::uint64_t v = 0;
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration rc, state.Load(0, v));
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration wc, state.Store(0, v + 1));
    ctx.Charge(rc + wc);
    ctx.ChargeCompute(1e4);
    return OkStatus();
  };
}

TEST(RackPlanningTest, GlobalStateJobsAreConfinedToOneCoherenceDomain) {
  // Round-robin placement would spread tasks across servers, but tasks
  // sharing coherent Global State cannot span the NIC: the planner must
  // re-place them into one server's coherence domain.
  auto rack = simhw::MakeComputeCentricRack({.servers = 4});
  RuntimeOptions options;
  options.policy = PlacementPolicyKind::kRoundRobin;
  Runtime rt(*rack, options);

  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);
  Job job("stateful", jopts);
  for (int i = 0; i < 6; ++i) {
    job.AddTask("t" + std::to_string(i), {}, StateToucher());
  }
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  // Every task must have run on a device that can coherently reach the
  // state's device — i.e. all within one server node.
  std::set<std::uint32_t> nodes;
  for (const TaskReport& t : report->tasks) {
    nodes.insert(rack->compute(t.device).node().value);
  }
  EXPECT_EQ(nodes.size(), 1u) << "tasks leaked across coherence domains";
}

TEST(RackPlanningTest, StatelessJobsStillSpreadAcrossServers) {
  // Without Global State there is no coherence constraint; round-robin may
  // use every server.
  auto rack = simhw::MakeComputeCentricRack({.servers = 4});
  RuntimeOptions options;
  options.policy = PlacementPolicyKind::kRoundRobin;
  Runtime rt(*rack, options);

  Job job("stateless");
  for (int i = 0; i < 8; ++i) {
    job.AddTask("t" + std::to_string(i), {}, [](TaskContext& ctx) {
      ctx.ChargeCompute(1e4);
      return OkStatus();
    });
  }
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  std::set<std::uint32_t> nodes;
  for (const TaskReport& t : report->tasks) {
    nodes.insert(rack->compute(t.device).node().value);
  }
  EXPECT_GT(nodes.size(), 1u);
}

TEST(RackPlanningTest, MixedDeviceStatefulJobNeedsCxlNotNic) {
  // The paper's core architectural point, as an admission decision: on the
  // Fig. 1a rack there is NO memory coherent from both a CPU and a GPU (GDDR
  // is GPU-coherent only, DRAM is CPU-coherent only, and the fabric is a
  // NIC). A job whose CPU and GPU tasks share coherent Global State is
  // therefore unsatisfiable — and must be rejected, not silently broken.
  const auto make_job = [] {
    dataflow::JobOptions jopts;
    jopts.global_state_bytes = KiB(4);
    Job job("mixed", jopts);
    dataflow::TaskProperties gpu_props;
    gpu_props.compute_device = simhw::ComputeDeviceKind::kGPU;
    job.AddTask("gpu-task", gpu_props, StateToucher());
    dataflow::TaskProperties cpu_props;
    cpu_props.compute_device = simhw::ComputeDeviceKind::kCPU;
    job.AddTask("cpu-task", cpu_props, StateToucher());
    return job;
  };

  auto rack = simhw::MakeComputeCentricRack({.servers = 4});
  Runtime rack_rt(*rack);
  EXPECT_FALSE(rack_rt.Submit(make_job()).ok());
  EXPECT_EQ(rack_rt.stats().jobs_rejected, 1u);

  // On the CXL host the expander is coherent from both devices: admitted.
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  Runtime cxl_rt(*host.cluster);
  auto report = cxl_rt.SubmitAndRun(make_job());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
}

TEST(RackPlanningTest, CrossDomainRequirementIsRejectedNotBroken) {
  // Two GPU-only tasks with Global State on a rack whose servers have at
  // most one GPU each: satisfiable (both on the same GPU server's single
  // GPU). But if the only GPU-bearing server's GPU is failed, admission must
  // reject the job rather than schedule incoherent state access.
  auto rack = simhw::MakeComputeCentricRack({.servers = 2});  // GPU on server0 only
  // Fail the GPU.
  for (const simhw::ComputeDeviceId c : rack->AllComputeDevices()) {
    if (rack->compute(c).kind() == simhw::ComputeDeviceKind::kGPU) {
      rack->compute(c).Fail();
    }
  }
  Runtime rt(*rack);
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);
  Job job("gpu-needed", jopts);
  dataflow::TaskProperties gpu_props;
  gpu_props.compute_device = simhw::ComputeDeviceKind::kGPU;
  job.AddTask("kernel", gpu_props, StateToucher());
  auto id = rt.Submit(std::move(job));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(rt.stats().jobs_rejected, 1u);
  EXPECT_TRUE(rt.regions().LiveRegions().empty());  // nothing leaked
}

TEST(RackPlanningTest, HandoverAcrossServersCopiesInsteadOfSharing) {
  // A producer on server A handing to a consumer on server B: the output is
  // not load/store addressable remotely, so the runtime must migrate it
  // (copied handover), not zero-copy.
  auto rack = simhw::MakeComputeCentricRack({.servers = 2});
  RuntimeOptions options;
  options.policy = PlacementPolicyKind::kRoundRobin;  // forces the spread
  Runtime rt(*rack, options);

  Job job("cross");
  const TaskId p = job.AddTask("produce", {}, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(MiB(1)));
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(out));
    const std::uint64_t magic = 0x600dULL;
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration c, acc.Store(0, magic));
    ctx.Charge(c);
    return OkStatus();
  });
  const TaskId c = job.AddTask("consume", {}, [](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor in, ctx.OpenSync(ctx.inputs().front()));
    std::uint64_t v = 0;
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, in.Load(0, v));
    ctx.Charge(cost);
    return v == 0x600dULL ? OkStatus() : Internal("payload corrupted in handover");
  });
  ASSERT_TRUE(job.Connect(p, c).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  const std::uint32_t n0 = rack->compute(report->tasks[0].device).node().value;
  const std::uint32_t n1 = rack->compute(report->tasks[1].device).node().value;
  if (n0 != n1) {
    // Cross-server: must have paid a copy (the consumer can still read it —
    // correctness held — but the handover was not free).
    EXPECT_FALSE(report->tasks[0].zero_copy_handover);
    EXPECT_GT(report->tasks[0].handover_cost.ns, 0);
  }
}

}  // namespace
}  // namespace memflow::rts
