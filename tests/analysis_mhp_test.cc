// Copyright (c) memflow authors. MIT license.
//
// Tests for the static concurrency & capacity analyzer (DESIGN.md §12): one
// failing and one passing fixture per mhp-*/cap-* rule id, the MHP relation
// and max-weight-antichain primitives, the CostModel mirror, and the rule
// catalog regression against DESIGN.md §6.1.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/verifier.h"
#include "rts/cost_model.h"
#include "simhw/presets.h"
#include "testing/workload.h"

namespace memflow::analysis {
namespace {

using dataflow::EdgeMode;
using dataflow::EdgeOptions;
using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskFn;
using dataflow::TaskId;
using dataflow::TaskProperties;

TaskFn Nop() {
  return [](TaskContext&) { return OkStatus(); };
}

TaskProperties WithOutput(std::uint64_t bytes = KiB(4)) {
  TaskProperties props;
  props.output_bytes = bytes;
  return props;
}

EdgeOptions Writes() {
  EdgeOptions opts;
  opts.writes_input = true;
  return opts;
}

void ExpectRuleWithHint(const Report& report, std::string_view rule) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) {
      ++n;
      EXPECT_FALSE(d.hint.empty()) << "rule " << rule << " has no fix-it";
      EXPECT_FALSE(d.message.empty());
    }
  }
  EXPECT_GT(n, 0) << "rule " << rule << " did not fire";
}

// --- MHP relation primitives --------------------------------------------------------

TEST(Mhp, DiamondReachabilityAndUnorderedPairs) {
  Job job("diamond");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", WithOutput(), Nop());
  const TaskId c = job.AddTask("c", WithOutput(), Nop());
  const TaskId d = job.AddTask("d", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());
  ASSERT_TRUE(job.Connect(b, d).ok());
  ASSERT_TRUE(job.Connect(c, d).ok());

  const MhpSummary mhp = ComputeMhp(job);
  EXPECT_EQ(mhp.num_tasks, 4u);
  EXPECT_TRUE(mhp.parallel_safe);
  EXPECT_TRUE(mhp.Reaches(a, d));  // transitive through b/c
  EXPECT_FALSE(mhp.Reaches(d, a));
  EXPECT_TRUE(mhp.Unordered(b, c));
  EXPECT_TRUE(mhp.MayRunConcurrently(b, c));
  EXPECT_FALSE(mhp.MayRunConcurrently(a, b));
  EXPECT_EQ(mhp.UnorderedPairCount(), 1u);  // exactly {b,c}
}

TEST(Mhp, GlobalsAndInPlaceWritesSerialize) {
  dataflow::JobOptions with_state;
  with_state.global_state_bytes = KiB(1);
  Job stateful("stateful", with_state);
  stateful.AddTask("a", {}, Nop());
  stateful.AddTask("b", {}, Nop());
  EXPECT_FALSE(JobParallelSafe(stateful));
  const MhpSummary mhp = ComputeMhp(stateful);
  EXPECT_TRUE(mhp.Unordered(TaskId(0), TaskId(1)));
  EXPECT_FALSE(mhp.MayRunConcurrently(TaskId(0), TaskId(1)));

  Job writer("writer");
  const TaskId p = writer.AddTask("p", WithOutput(), Nop());
  const TaskId w = writer.AddTask("w", {}, Nop());
  EdgeOptions opts;
  opts.mode = EdgeMode::kMove;
  opts.writes_input = true;
  ASSERT_TRUE(writer.Connect(p, w, opts).ok());
  EXPECT_FALSE(JobParallelSafe(writer));

  Job clean("clean");
  clean.AddTask("a", WithOutput(), Nop());
  EXPECT_TRUE(JobParallelSafe(clean));
}

// --- max-weight antichain -----------------------------------------------------------

TEST(Antichain, IncomparableChainAndDiamond) {
  // Two incomparable elements: both can be live at once.
  EXPECT_EQ(MaxWeightAntichain({{false, false}, {false, false}}, {3, 5}), 8u);
  // A chain: only the heavier element.
  EXPECT_EQ(MaxWeightAntichain({{false, true}, {false, false}}, {3, 5}), 5u);
  // Diamond a<{b,c}<d, unit weights: the middle pair.
  const std::vector<std::vector<bool>> diamond = {
      {false, true, true, true},
      {false, false, false, true},
      {false, false, false, true},
      {false, false, false, false},
  };
  EXPECT_EQ(MaxWeightAntichain(diamond, {1, 1, 1, 1}), 2u);
  // Heavy chain element dominates the antichain of light ones.
  EXPECT_EQ(MaxWeightAntichain(diamond, {10, 1, 1, 1}), 10u);
  // Zero weights drop out entirely.
  EXPECT_EQ(MaxWeightAntichain(diamond, {0, 1, 1, 0}), 2u);
  EXPECT_EQ(MaxWeightAntichain({}, {}), 0u);
}

// --- CostModel mirror ---------------------------------------------------------------

TEST(CapacityModel, SizeEstimatesMatchCostModel) {
  TaskProperties props;
  props.output_bytes = 4096;
  props.output_bytes_per_input_byte = 0.75;
  props.scratch_bytes = 123;
  props.scratch_bytes_per_input_byte = 1.5;
  for (const std::uint64_t input : {0ull, 64ull, 4095ull, 1ull << 30}) {
    EXPECT_EQ(EstimatedOutputBytes(props, input), rts::CostModel::OutputBytes(props, input));
    EXPECT_EQ(EstimatedScratchBytes(props, input), rts::CostModel::ScratchBytes(props, input));
  }
}

// --- mhp-write-write-race -----------------------------------------------------------

TEST(MhpRules, UnorderedInPlaceWritersDetected) {
  const Job job = testing::BuildJob(testing::MakeRacyJobSpec());
  const Report report = Verify(job);
  ExpectRuleWithHint(report, kRuleMhpWriteWriteRace);
  EXPECT_FALSE(report.ok());
}

TEST(MhpRules, OrderedWritersAreClean) {
  Job job("ordered-writers");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, Writes()).ok());
  ASSERT_TRUE(job.Connect(a, c, Writes()).ok());
  ASSERT_TRUE(job.Connect(b, c, {EdgeMode::kControl}).ok());  // orders the writers

  EXPECT_FALSE(Verify(job).HasRule(kRuleMhpWriteWriteRace));
}

// --- mhp-write-read-race ------------------------------------------------------------

TEST(MhpRules, UnorderedWriterAndReaderDetected) {
  Job job("wr-race");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, Writes()).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());  // plain reader, unordered with b

  const Report report = Verify(job);
  ExpectRuleWithHint(report, kRuleMhpWriteReadRace);
  EXPECT_FALSE(report.ok());
}

TEST(MhpRules, ReaderOrderedBeforeWriterIsClean) {
  Job job("wr-ordered");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, Writes()).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());
  ASSERT_TRUE(job.Connect(c, b, {EdgeMode::kControl}).ok());  // read fully precedes write

  EXPECT_FALSE(Verify(job).HasRule(kRuleMhpWriteReadRace));
}

// --- mhp-transfer-race --------------------------------------------------------------

TEST(MhpRules, MoveRacingSiblingReaderDetected) {
  Job job("move-race");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());

  const Report report = Verify(job);
  ExpectRuleWithHint(report, kRuleMhpTransferRace);
  EXPECT_FALSE(report.ok());
}

TEST(MhpRules, ReaderOrderedBeforeMoveIsClean) {
  Job job("move-ordered");
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());
  ASSERT_TRUE(job.Connect(c, b, {EdgeMode::kControl}).ok());

  EXPECT_FALSE(Verify(job).HasRule(kRuleMhpTransferRace));
}

// --- mhp-serialized -----------------------------------------------------------------

TEST(MhpRules, LostParallelismNoted) {
  dataflow::JobOptions with_state;
  with_state.global_state_bytes = KiB(1);
  Job job("serialized", with_state);
  const TaskId a = job.AddTask("a", WithOutput(), Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());  // b,c unordered but serialized

  const Report report = Verify(job);
  ExpectRuleWithHint(report, kRuleMhpSerialized);
  EXPECT_TRUE(report.ok());  // note-severity: admissible
}

TEST(MhpRules, ParallelSafeAndChainJobsNotNoted) {
  Job par("parallel");
  const TaskId a = par.AddTask("a", WithOutput(), Nop());
  const TaskId b = par.AddTask("b", {}, Nop());
  const TaskId c = par.AddTask("c", {}, Nop());
  ASSERT_TRUE(par.Connect(a, b).ok());
  ASSERT_TRUE(par.Connect(a, c).ok());
  EXPECT_FALSE(Verify(par).HasRule(kRuleMhpSerialized));

  // Serialized but with no parallelism to lose: a pure chain.
  dataflow::JobOptions with_state;
  with_state.global_state_bytes = KiB(1);
  Job chain("chain", with_state);
  const TaskId x = chain.AddTask("x", WithOutput(), Nop());
  const TaskId y = chain.AddTask("y", {}, Nop());
  ASSERT_TRUE(chain.Connect(x, y).ok());
  EXPECT_FALSE(Verify(chain).HasRule(kRuleMhpSerialized));
}

// --- capacity fixtures --------------------------------------------------------------

// One CPU with a small DRAM DIMM (1 MiB) and a large but slow far-memory pool
// behind the NIC — enough texture to separate the three cap-* rules.
struct TinyRig {
  simhw::Cluster cluster;
  simhw::ComputeDeviceId cpu;
  simhw::MemoryDeviceId dram;
  simhw::MemoryDeviceId far;

  explicit TinyRig(bool with_far = false) {
    const simhw::NodeId node = cluster.AddNode("n0");
    cpu = cluster.AddCompute(node, simhw::ComputeDeviceKind::kCPU, "cpu");
    dram = cluster.AddMemory(node, simhw::MemoryDeviceKind::kDRAM, MiB(1), "dram");
    cluster.Link(cluster.VertexOf(cpu), cluster.VertexOf(dram), simhw::LinkKind::kMemBus);
    if (with_far) {
      far = cluster.AddMemory(node, simhw::MemoryDeviceKind::kDisaggMem, GiB(1), "far");
      cluster.Link(cluster.VertexOf(cpu), cluster.VertexOf(far), simhw::LinkKind::kNic);
    }
  }
};

// --- cap-unplaceable ----------------------------------------------------------------

TEST(CapacityRules, OversizedDemandDetected) {
  TinyRig rig;
  Job job("huge");
  job.AddTask("hog", WithOutput(MiB(4)), Nop());

  const Report report = Verify(job, &rig.cluster);
  ExpectRuleWithHint(report, kRuleCapUnplaceable);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.capacity().computed);
  EXPECT_EQ(report.capacity().peak_concurrent_bytes, MiB(4));
}

TEST(CapacityRules, FittingDemandIsClean) {
  TinyRig rig;
  Job job("fits");
  job.AddTask("t", WithOutput(KiB(256)), Nop());

  const Report report = Verify(job, &rig.cluster);
  EXPECT_FALSE(report.HasRule(kRuleCapUnplaceable));
  EXPECT_TRUE(report.ok());
  // The bound covers the one device that can hold the region.
  ASSERT_TRUE(report.capacity().computed);
  ASSERT_LT(rig.dram.value, report.capacity().peak_device_bytes.size());
  EXPECT_GE(report.capacity().peak_device_bytes[rig.dram.value], KiB(256));
}

// --- cap-overcommit -----------------------------------------------------------------

TEST(CapacityRules, ConcurrentFootprintOvercommitWarned) {
  TinyRig rig;
  Job job("overcommit");
  const TaskId src = job.AddTask("src", WithOutput(64), Nop());
  const TaskId a = job.AddTask("a", WithOutput(KiB(768)), Nop());
  const TaskId b = job.AddTask("b", WithOutput(KiB(768)), Nop());
  ASSERT_TRUE(job.Connect(src, a, {EdgeMode::kShare}).ok());
  ASSERT_TRUE(job.Connect(src, b, {EdgeMode::kShare}).ok());

  const Report report = Verify(job, &rig.cluster);
  ExpectRuleWithHint(report, kRuleCapOvercommit);
  EXPECT_FALSE(report.HasRule(kRuleCapUnplaceable));  // each region fits alone
  EXPECT_TRUE(report.ok());  // warning-severity: admissible
  EXPECT_GT(report.capacity().peak_concurrent_bytes, MiB(1));
}

TEST(CapacityRules, ChainedFootprintIsClean) {
  TinyRig rig;
  Job job("chained");
  const TaskId a = job.AddTask("a", WithOutput(KiB(768)), Nop());
  const TaskId b = job.AddTask("b", WithOutput(KiB(64)), Nop());
  const TaskId c = job.AddTask("c", WithOutput(KiB(64)), Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());

  const Report report = Verify(job, &rig.cluster);
  EXPECT_FALSE(report.HasRule(kRuleCapOvercommit));
  // a's output cannot overlap c's: a dies when b (its sole consumer) ends,
  // strictly before c starts — so the peak stays under the sum of all three.
  EXPECT_LT(report.capacity().peak_concurrent_bytes, KiB(768) + KiB(64) + KiB(64));
}

// --- cap-fragile --------------------------------------------------------------------

TEST(CapacityRules, StrictLatencyDemandBeyondClassCapacityWarned) {
  TinyRig rig(/*with_far=*/true);
  Job job("fragile");
  TaskProperties fast = WithOutput(KiB(512));
  fast.mem_latency = region::LatencyClass::kLow;
  const TaskId a = job.AddTask("a", fast, Nop());
  const TaskId b = job.AddTask("b", fast, Nop());
  const TaskId c = job.AddTask("c", fast, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());

  const Report report = Verify(job, &rig.cluster);
  ExpectRuleWithHint(report, kRuleCapFragile);
  // Individually each 512 KiB region fits DRAM, and the 1 GiB far pool keeps
  // the total footprint uncontested — only the latency class is oversubscribed.
  EXPECT_FALSE(report.HasRule(kRuleCapUnplaceable));
  EXPECT_FALSE(report.HasRule(kRuleCapOvercommit));
  EXPECT_TRUE(report.ok());  // warning-severity: admissible
}

TEST(CapacityRules, RelaxedLatencyDemandIsClean) {
  TinyRig rig(/*with_far=*/true);
  Job job("relaxed");
  const TaskId a = job.AddTask("a", WithOutput(KiB(512)), Nop());
  const TaskId b = job.AddTask("b", WithOutput(KiB(512)), Nop());
  const TaskId c = job.AddTask("c", WithOutput(KiB(512)), Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());

  const Report report = Verify(job, &rig.cluster);
  EXPECT_FALSE(report.HasRule(kRuleCapFragile));
  EXPECT_TRUE(report.ok());
}

// --- generator self-tests -----------------------------------------------------------

TEST(NegativeSpecs, RacySpecIsRejectedOvercommittedSpecIsWarned) {
  const Report racy = Verify(testing::BuildJob(testing::MakeRacyJobSpec()));
  EXPECT_FALSE(racy.ok());
  EXPECT_TRUE(racy.HasRule(kRuleMhpWriteWriteRace));

  TinyRig rig;
  const Report over = Verify(
      testing::BuildJob(testing::MakeOvercommittedJobSpec(KiB(512), 4)), &rig.cluster);
  EXPECT_TRUE(over.HasRule(kRuleCapOvercommit));
}

// --- rule catalog regression --------------------------------------------------------

TEST(RuleCatalog, IdsAreStable) {
  // Renaming or dropping a published rule id breaks downstream grep/triage
  // workflows; additions append here and to DESIGN.md §6.1.
  const std::vector<std::string_view> expected = {
      "own-use-after-transfer", "own-double-transfer", "own-leaked-output",
      "own-write-shared-input", "prop-confidential-downgrade", "prop-persistent-latency",
      "place-unsatisfiable-compute", "place-unsatisfiable-memory", "graph-dead-task",
      "mhp-write-write-race", "mhp-write-read-race", "mhp-transfer-race", "mhp-serialized",
      "cap-unplaceable", "cap-overcommit", "cap-fragile",
  };
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  ASSERT_EQ(catalog.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(catalog[i].id, expected[i]);
    EXPECT_FALSE(catalog[i].summary.empty()) << catalog[i].id;
  }
}

TEST(RuleCatalog, EveryRuleIsDocumentedInDesignDoc) {
  const std::string path = std::string(MEMFLOW_SOURCE_DIR) + "/DESIGN.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string design = buf.str();
  for (const RuleInfo& rule : RuleCatalog()) {
    EXPECT_NE(design.find(rule.id), std::string::npos)
        << "rule " << rule.id << " is not documented in DESIGN.md";
  }
}

}  // namespace
}  // namespace memflow::analysis
