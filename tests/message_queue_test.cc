// Copyright (c) memflow authors. MIT license.
//
// Tests for shared-memory message queues (§2.1's inter-task communication
// pattern): FIFO discipline, wraparound, full/empty edges, cross-principal
// producer/consumer, coherence enforcement, and use inside a dataflow job.

#include <gtest/gtest.h>

#include <cstring>

#include "region/message_queue.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::region {
namespace {

constexpr Principal kProducer{3, 1};
constexpr Principal kConsumer{3, 2};

struct Msg {
  std::uint64_t seq;
  char payload[24];
};

class MessageQueueTest : public ::testing::Test {
 protected:
  MessageQueueTest() : host_(simhw::MakeCxlExpansionHost()), mgr_(*host_.cluster) {}

  RegionId SharedRegion(std::uint64_t size, simhw::MemoryDeviceId device) {
    auto id = mgr_.AllocateOn(device, size, Properties{}, kProducer);
    MEMFLOW_CHECK(id.ok());
    MEMFLOW_CHECK(mgr_.Share(*id, kProducer, kConsumer, host_.cpu).ok());
    return *id;
  }

  simhw::CxlHostHandles host_;
  RegionManager mgr_;
};

TEST_F(MessageQueueTest, FifoOrderAcrossPrincipals) {
  const RegionId region = SharedRegion(KiB(4), host_.dram);
  auto producer = MessageQueue::Create(mgr_, region, kProducer, host_.cpu, sizeof(Msg));
  ASSERT_TRUE(producer.ok()) << producer.status().ToString();
  auto consumer = MessageQueue::Open(mgr_, region, kConsumer, host_.cpu);
  ASSERT_TRUE(consumer.ok());

  for (std::uint64_t i = 0; i < 10; ++i) {
    Msg m{i, {}};
    std::snprintf(m.payload, sizeof(m.payload), "msg-%llu",
                  static_cast<unsigned long long>(i));
    ASSERT_TRUE(producer->Push(&m).ok());
  }
  EXPECT_EQ(*consumer->Size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Msg m{};
    ASSERT_TRUE(consumer->Pop(&m).ok());
    EXPECT_EQ(m.seq, i);
    char expected[24];
    std::snprintf(expected, sizeof(expected), "msg-%llu",
                  static_cast<unsigned long long>(i));
    EXPECT_STREQ(m.payload, expected);
  }
  Msg m{};
  EXPECT_EQ(consumer->Pop(&m).status().code(), StatusCode::kNotFound);
}

TEST_F(MessageQueueTest, WraparoundPreservesFifo) {
  // Small queue, many interleaved push/pop cycles crossing the ring boundary.
  const RegionId region = SharedRegion(64 + 4 * sizeof(Msg), host_.dram);
  auto q = MessageQueue::Create(mgr_, region, kProducer, host_.cpu, sizeof(Msg));
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->capacity(), 4u);  // 3 usable slots

  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    Msg in{next_push++, {}};
    ASSERT_TRUE(q->Push(&in).ok()) << cycle;
    if (cycle % 2 == 1) {
      Msg a{};
      Msg b{};
      ASSERT_TRUE(q->Pop(&a).ok());
      ASSERT_TRUE(q->Pop(&b).ok());
      EXPECT_EQ(a.seq, next_pop++);
      EXPECT_EQ(b.seq, next_pop++);
    }
  }
}

TEST_F(MessageQueueTest, FullQueueRejectsPush) {
  const RegionId region = SharedRegion(64 + 4 * sizeof(Msg), host_.dram);
  auto q = MessageQueue::Create(mgr_, region, kProducer, host_.cpu, sizeof(Msg));
  ASSERT_TRUE(q.ok());
  Msg m{0, {}};
  ASSERT_TRUE(q->Push(&m).ok());
  ASSERT_TRUE(q->Push(&m).ok());
  ASSERT_TRUE(q->Push(&m).ok());  // capacity 4 -> 3 usable
  EXPECT_EQ(q->Push(&m).status().code(), StatusCode::kResourceExhausted);
  // Draining one makes room again.
  Msg out{};
  ASSERT_TRUE(q->Pop(&out).ok());
  EXPECT_TRUE(q->Push(&m).ok());
}

TEST_F(MessageQueueTest, RefusedOnNonSyncMemory) {
  // Far memory is not synchronously addressable, so a queue cannot live
  // there (no coherent sharing either — allocate unshared).
  auto region = mgr_.AllocateOn(host_.disagg, KiB(4), Properties{}, kProducer);
  ASSERT_TRUE(region.ok());
  auto q = MessageQueue::Create(mgr_, *region, kProducer, host_.cpu, sizeof(Msg));
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MessageQueueTest, OpenValidatesHeader) {
  const RegionId region = SharedRegion(KiB(4), host_.dram);
  // Never Create()d: garbage header.
  auto q = MessageQueue::Open(mgr_, region, kConsumer, host_.cpu);
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MessageQueueTest, TooSmallRegionRejected) {
  const RegionId region = SharedRegion(64 + sizeof(Msg), host_.dram);
  auto q = MessageQueue::Create(mgr_, region, kProducer, host_.cpu, sizeof(Msg));
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MessageQueueTest, QueueTrafficIsCharged) {
  const RegionId region = SharedRegion(KiB(4), host_.cxl_dram);  // farther = dearer
  auto q = MessageQueue::Create(mgr_, region, kProducer, host_.cpu, sizeof(Msg));
  ASSERT_TRUE(q.ok());
  Msg m{1, {}};
  auto push_cost = q->Push(&m);
  ASSERT_TRUE(push_cost.ok());
  EXPECT_GT(push_cost->ns, 0);

  const RegionId near = SharedRegion(KiB(4), host_.dram);
  auto nq = MessageQueue::Create(mgr_, near, kProducer, host_.cpu, sizeof(Msg));
  ASSERT_TRUE(nq.ok());
  auto near_cost = nq->Push(&m);
  ASSERT_TRUE(near_cost.ok());
  EXPECT_GT(push_cost->ns, near_cost->ns);  // CXL hop costs more than DRAM
}

TEST_F(MessageQueueTest, WorksAsInterTaskChannelInsideAJob) {
  // Producer and consumer tasks communicate through a queue living in the
  // job's Global State region — the Naiad pattern end to end.
  rts::Runtime rt(*host_.cluster);
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);
  dataflow::Job job("channel", jopts);

  const auto p = job.AddTask("produce", {}, [](dataflow::TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(
        MessageQueue q, MessageQueue::Create(ctx.regions(), ctx.global_state(), ctx.self(),
                                             ctx.device(), sizeof(std::uint64_t)));
    for (std::uint64_t i = 1; i <= 5; ++i) {
      const std::uint64_t v = i * 11;
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, q.Push(&v));
      ctx.Charge(cost);
    }
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(8));
    (void)out;
    return OkStatus();
  });
  const auto c = job.AddTask("consume", {}, [](dataflow::TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(MessageQueue q,
                             MessageQueue::Open(ctx.regions(), ctx.global_state(),
                                                ctx.self(), ctx.device()));
    std::uint64_t sum = 0;
    while (true) {
      std::uint64_t v = 0;
      auto cost = q.Pop(&v);
      if (!cost.ok()) {
        break;
      }
      ctx.Charge(*cost);
      sum += v;
    }
    return sum == 11 * (1 + 2 + 3 + 4 + 5) ? OkStatus()
                                           : Internal("channel lost messages");
  });
  ASSERT_TRUE(job.Connect(p, c).ok());
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
}

}  // namespace
}  // namespace memflow::region
