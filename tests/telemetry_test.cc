// Copyright (c) memflow authors. MIT license.
//
// Tests for the telemetry substrate: metrics registry semantics (monotonic
// counters, `le` histogram buckets, the label-cardinality cap), the bounded
// trace ring, exporter output shapes, and the runtime integration (flow
// arrows, JSON escaping in ExportChromeTrace, ProfileJob regression).

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rts/profiler.h"
#include "simhw/presets.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/selfprof.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace memflow {
namespace {

using dataflow::TaskContext;
using telemetry::HistogramSpec;
using telemetry::Labels;
using telemetry::MetricKind;
using telemetry::Registry;
using telemetry::TraceBuffer;
using telemetry::TraceEvent;
using telemetry::TraceEventType;

// --- metrics registry ---------------------------------------------------------

TEST(MetricsTest, CounterIsMonotonicAndInterned) {
  Registry reg;
  telemetry::Counter* c = reg.GetCounter("requests_total", "help");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name + labels -> the same instrument, not a fresh series.
  EXPECT_EQ(reg.GetCounter("requests_total", "help"), c);
  // Different labels -> a distinct series starting at zero.
  telemetry::Counter* labeled =
      reg.GetCounter("requests_total", "help", {{"device", "gpu"}});
  EXPECT_NE(labeled, c);
  EXPECT_EQ(labeled->value(), 0u);
}

TEST(MetricsTest, LabelOrderDoesNotSplitSeries) {
  Registry reg;
  telemetry::Counter* a =
      reg.GetCounter("x_total", "h", {{"a", "1"}, {"b", "2"}});
  telemetry::Counter* b =
      reg.GetCounter("x_total", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, HistogramBucketBoundariesUseLeSemantics) {
  Registry reg;
  // Bounds: 1, 2, 4, 8 (+Inf implicit).
  telemetry::Histogram* h =
      reg.GetHistogram("latency", "h", HistogramSpec{1.0, 2.0, 4});
  ASSERT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  h->Observe(1.0);   // le 1  : a sample exactly on a bound lands in that bucket
  h->Observe(1.5);   // le 2
  h->Observe(8.0);   // le 8
  h->Observe(9.0);   // +Inf
  const std::vector<std::uint64_t> counts = h->counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 19.5);
}

TEST(MetricsTest, CardinalityCapCollapsesIntoOverflowSeries) {
  Registry reg(/*max_series_per_family=*/4);
  std::vector<telemetry::Counter*> series;
  for (int i = 0; i < 10; ++i) {
    series.push_back(
        reg.GetCounter("hot_total", "h", {{"device", "d" + std::to_string(i)}}));
    series.back()->Increment();
  }
  // The first 4 label sets are distinct; everything after shares one
  // overflow instrument.
  EXPECT_NE(series[0], series[1]);
  EXPECT_EQ(series[4], series[5]);
  EXPECT_EQ(series[4], series[9]);
  EXPECT_EQ(series[4]->value(), 6u);

  const telemetry::MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.families.size(), 1u);
  EXPECT_EQ(snap.families[0].series.size(), 5u);  // 4 real + 1 overflow
  bool found_overflow = false;
  for (const auto& s : snap.families[0].series) {
    if (s.labels == Labels{{"overflow", "true"}}) {
      found_overflow = true;
      EXPECT_EQ(s.counter, 6u);
    }
  }
  EXPECT_TRUE(found_overflow);
}

TEST(MetricsTest, PrometheusExpositionShape) {
  Registry reg;
  reg.GetCounter("rts_jobs_total", "Jobs", {{"result", "completed"}})->Increment(3);
  reg.GetGauge("depth", "Depth")->Set(2.5);
  telemetry::Histogram* h = reg.GetHistogram("lat", "Lat", HistogramSpec{1.0, 2.0, 2});
  h->Observe(1.0);
  h->Observe(100.0);
  const std::string text = reg.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# HELP rts_jobs_total Jobs\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rts_jobs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("rts_jobs_total{result=\"completed\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2.5\n"), std::string::npos);
  // Histogram buckets are cumulative, with an explicit +Inf bucket.
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 101\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2\n"), std::string::npos);
}

TEST(MetricsTest, JsonSnapshotShape) {
  Registry reg;
  reg.GetCounter("a_total", "with \"quotes\" and \\slash")->Increment(7);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  // Help strings pass through the shared JSON escaper.
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slash"), std::string::npos);
}

// --- trace ring ---------------------------------------------------------------

TraceEvent Instant(const std::string& name, std::int64_t ts_ns) {
  TraceEvent e;
  e.type = TraceEventType::kInstant;
  e.name = name;
  e.ts = SimTime{ts_ns};
  return e;
}

TEST(TraceTest, RingWrapsAroundAndCountsDropped) {
  TraceBuffer buf(/*capacity=*/8);
  for (int i = 0; i < 12; ++i) {
    buf.Emit(Instant("e" + std::to_string(i), i));
  }
  EXPECT_EQ(buf.total_emitted(), 12u);
  EXPECT_EQ(buf.dropped(), 4u);
  const std::vector<TraceEvent> events = buf.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: the 4 oldest were overwritten.
  EXPECT_EQ(events.front().name, "e4");
  EXPECT_EQ(events.back().name, "e11");
  buf.Clear();
  EXPECT_EQ(buf.Events().size(), 0u);
  EXPECT_EQ(buf.total_emitted(), 0u);
}

TEST(TraceTest, FlowIdsAreUnique) {
  TraceBuffer buf(8);
  const std::uint64_t a = buf.NextFlowId();
  const std::uint64_t b = buf.NextFlowId();
  EXPECT_NE(a, b);
}

// --- runtime integration ------------------------------------------------------

dataflow::TaskFn Worker(double work) {
  return [work](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(KiB(64)));
    (void)out;
    ctx.ChargeCompute(work);
    return OkStatus();
  };
}

class TelemetryRuntimeTest : public ::testing::Test {
 protected:
  TelemetryRuntimeTest() : host_(simhw::MakeCxlExpansionHost()) {
    rts::RuntimeOptions options;
    options.registry = &registry_;
    options.tracer = &tracer_;
    rt_ = std::make_unique<rts::Runtime>(*host_.cluster, options);
  }

  std::uint64_t CounterValue(const std::string& family, const Labels& want = {}) {
    for (const auto& f : registry_.Snapshot().families) {
      if (f.name != family) {
        continue;
      }
      std::uint64_t total = 0;
      for (const auto& s : f.series) {
        bool match = true;
        for (const auto& [k, v] : want) {
          bool found = false;
          for (const auto& [sk, sv] : s.labels) {
            found |= (sk == k && sv == v);
          }
          match &= found;
        }
        if (match) {
          total += s.counter;
        }
      }
      return total;
    }
    return 0;
  }

  simhw::CxlHostHandles host_;
  telemetry::Registry registry_;
  telemetry::TraceBuffer tracer_;
  std::unique_ptr<rts::Runtime> rt_;
};

TEST_F(TelemetryRuntimeTest, JobUpdatesMetricsAcrossLayers) {
  dataflow::Job job("chain");
  const dataflow::TaskId a = job.AddTask("a", {}, Worker(1e5));
  const dataflow::TaskId b = job.AddTask("b", {}, Worker(1e5));
  ASSERT_TRUE(job.Connect(a, b).ok());
  auto report = rt_->SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());

  EXPECT_EQ(CounterValue("rts_jobs_submitted_total"), 1u);
  EXPECT_EQ(CounterValue("rts_jobs_total", {{"result", "completed"}}), 1u);
  EXPECT_EQ(CounterValue("rts_tasks_executed_total"), 2u);
  EXPECT_GE(CounterValue("rts_placement_decisions_total"), 2u);
  EXPECT_GE(CounterValue("rts_handovers_total"), 1u);
  // The region layer reported through the same registry.
  EXPECT_GE(CounterValue("region_allocations_total"), 2u);
  EXPECT_GT(CounterValue("region_alloc_bytes_total"), 0u);
}

TEST_F(TelemetryRuntimeTest, AdmissionVerifierVerdictsExported) {
  // A disconnected task trips graph-dead-task (warning: still admitted); the
  // finding and the verification timing must land in every export format.
  dataflow::Job job("warned");
  const dataflow::TaskId a = job.AddTask("a", {}, Worker(1e4));
  const dataflow::TaskId b = job.AddTask("b", {}, Worker(1e4));
  ASSERT_TRUE(job.Connect(a, b).ok());
  job.AddTask("dead", {}, Worker(1e4));
  ASSERT_TRUE(rt_->Submit(std::move(job)).ok());

  EXPECT_EQ(CounterValue("analysis_rule_findings_total", {{"rule", "graph-dead-task"}}),
            1u);
  std::uint64_t verify_count = 0;
  for (const auto& f : registry_.Snapshot().families) {
    if (f.name == "rts_admission_verify_ns") {
      for (const auto& s : f.series) {
        verify_count += s.count;
      }
    }
  }
  EXPECT_EQ(verify_count, 1u);  // one Submit, one timed Verify

  const std::string prom = registry_.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("analysis_rule_findings_total{rule=\"graph-dead-task\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("rts_admission_verify_ns_count"), std::string::npos);
  const std::string json = registry_.Snapshot().ToJson();
  EXPECT_NE(json.find("analysis_rule_findings_total"), std::string::npos);
  EXPECT_NE(json.find("rts_admission_verify_ns"), std::string::npos);
}

TEST_F(TelemetryRuntimeTest, HandoverEmitsFlowArrowWithOrderedEndpoints) {
  dataflow::Job job("flow");
  const dataflow::TaskId a = job.AddTask("producer", {}, Worker(1e5));
  const dataflow::TaskId b = job.AddTask("consumer", {}, Worker(1e5));
  ASSERT_TRUE(job.Connect(a, b).ok());
  auto report = rt_->SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());

  std::vector<TraceEvent> begins;
  std::vector<TraceEvent> ends;
  for (const TraceEvent& e : tracer_.Events()) {
    if (e.type == TraceEventType::kFlowBegin) {
      begins.push_back(e);
    } else if (e.type == TraceEventType::kFlowEnd) {
      ends.push_back(e);
    }
  }
  ASSERT_GE(begins.size(), 1u);
  ASSERT_GE(ends.size(), 1u);
  // Every end pairs with a begin of the same flow id, and never precedes it.
  for (const TraceEvent& end : ends) {
    bool paired = false;
    for (const TraceEvent& begin : begins) {
      if (begin.flow_id == end.flow_id) {
        paired = true;
        EXPECT_LE(begin.ts.ns, end.ts.ns);
      }
    }
    EXPECT_TRUE(paired);
  }
}

TEST_F(TelemetryRuntimeTest, ChromeTraceEscapesQuotesAndBackslashes) {
  dataflow::Job job("tricky \"name\"");
  job.AddTask("he\"avy\\", {}, Worker(1e5));
  auto report = rt_->SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto trace = rts::ExportChromeTrace(*rt_, report->id);
  ASSERT_TRUE(trace.ok());
  // The raw name must never appear unescaped inside a JSON string.
  EXPECT_EQ(trace->find("\"he\"avy\\\""), std::string::npos);
  EXPECT_NE(trace->find("he\\\"avy\\\\"), std::string::npos);
  EXPECT_NE(trace->find("\"traceEvents\":["), std::string::npos);
  // Quotes must balance once escapes are accounted for.
  int quotes = 0;
  for (std::size_t i = 0; i < trace->size(); ++i) {
    if ((*trace)[i] == '\\') {
      ++i;  // skip the escaped character
    } else if ((*trace)[i] == '"') {
      ++quotes;
    }
  }
  EXPECT_EQ(quotes % 2, 0);
}

TEST_F(TelemetryRuntimeTest, ChromeTraceContainsSpansFlowsAndTrackNames) {
  dataflow::Job job("trace");
  const dataflow::TaskId a = job.AddTask("a", {}, Worker(1e5));
  const dataflow::TaskId b = job.AddTask("b", {}, Worker(1e5));
  ASSERT_TRUE(job.Connect(a, b).ok());
  auto report = rt_->SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto trace = rts::ExportChromeTrace(*rt_, report->id);
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->find("\"ph\":\"X\""), std::string::npos);  // task spans
  EXPECT_NE(trace->find("\"ph\":\"s\""), std::string::npos);  // flow begin
  EXPECT_NE(trace->find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(trace->find("thread_name"), std::string::npos);   // named lanes
  EXPECT_NE(trace->find("\"process_name\""), std::string::npos);
}

TEST_F(TelemetryRuntimeTest, ProfileJobReportsSameValuesAsBefore) {
  // The profiler still derives its numbers from the job report, not the
  // trace stream: a diamond's critical path must run through `heavy`.
  dataflow::Job job("diamond");
  const dataflow::TaskId a = job.AddTask("a", {}, Worker(1e4));
  const dataflow::TaskId light = job.AddTask("light", {}, Worker(1e3));
  const dataflow::TaskId heavy = job.AddTask("heavy", {}, Worker(5e6));
  const dataflow::TaskId sink = job.AddTask("sink", {}, Worker(1e3));
  ASSERT_TRUE(job.Connect(a, light).ok());
  ASSERT_TRUE(job.Connect(a, heavy).ok());
  ASSERT_TRUE(job.Connect(light, sink).ok());
  ASSERT_TRUE(job.Connect(heavy, sink).ok());
  auto report = rt_->SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  auto profile = rts::ProfileJob(*rt_, report->id);
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->tasks[heavy.value].on_critical_path);
  EXPECT_FALSE(profile->tasks[light.value].on_critical_path);
  EXPECT_LE(profile->critical_path.ns, profile->makespan.ns);
  SimDuration total;
  for (const auto& line : profile->tasks) {
    total += line.duration;
  }
  EXPECT_EQ(total.ns, profile->total_task_time.ns);
}

TEST_F(TelemetryRuntimeTest, TraceSummaryAggregatesAcrossJobs) {
  for (int i = 0; i < 2; ++i) {
    dataflow::Job job("j" + std::to_string(i));
    job.AddTask("t", {}, Worker(1e5));
    auto report = rt_->SubmitAndRun(std::move(job));
    ASSERT_TRUE(report.ok() && report->status.ok());
  }
  const std::string summary = telemetry::RenderTraceSummary(tracer_);
  EXPECT_NE(summary.find("task"), std::string::npos);
  EXPECT_NE(summary.find("job"), std::string::npos);
}

// --- snapshot ring (time-series layer) ----------------------------------------

TEST(SnapshotRingTest, WindowedDeltaAndRate) {
  Registry reg;
  telemetry::Counter* jobs = reg.GetCounter("jobs_total", "h");
  telemetry::SnapshotRing ring(&reg, 8);

  // Fewer than two snapshots: no window to difference over.
  EXPECT_FALSE(ring.DeltaOver("jobs_total", SimDuration::Millis(1)).has_value());
  ring.Tick(SimTime{});
  EXPECT_FALSE(ring.RateOver("jobs_total", SimDuration::Millis(1)).has_value());

  jobs->Increment(5);
  ring.Tick(SimTime{} + SimDuration::Millis(1));
  jobs->Increment(5);
  ring.Tick(SimTime{} + SimDuration::Millis(2));

  // A window covering all history differences newest against the oldest.
  auto whole = ring.DeltaOver("jobs_total", SimDuration::Millis(10));
  ASSERT_TRUE(whole.has_value());
  EXPECT_DOUBLE_EQ(*whole, 10.0);
  // A 1 ms window anchors the baseline one snapshot back.
  auto recent = ring.DeltaOver("jobs_total", SimDuration::Millis(1));
  ASSERT_TRUE(recent.has_value());
  EXPECT_DOUBLE_EQ(*recent, 5.0);
  // Rates divide by the *actual* snapshot spacing on the virtual timeline.
  auto rate = ring.RateOver("jobs_total", SimDuration::Millis(1));
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 5000.0);

  EXPECT_FALSE(ring.DeltaOver("absent_total", SimDuration::Millis(10)).has_value());
}

TEST(SnapshotRingTest, LabelsSelectOneSeriesEmptySumsAll) {
  Registry reg;
  telemetry::Counter* a = reg.GetCounter("ops_total", "h", {{"device", "a"}});
  telemetry::Counter* b = reg.GetCounter("ops_total", "h", {{"device", "b"}});
  telemetry::SnapshotRing ring(&reg, 8);
  ring.Tick(SimTime{});
  a->Increment(3);
  b->Increment(4);
  ring.Tick(SimTime{} + SimDuration::Millis(1));

  auto all = ring.DeltaOver("ops_total", SimDuration::Millis(10));
  ASSERT_TRUE(all.has_value());
  EXPECT_DOUBLE_EQ(*all, 7.0);
  auto only_a = ring.DeltaOver("ops_total", SimDuration::Millis(10), {{"device", "a"}});
  ASSERT_TRUE(only_a.has_value());
  EXPECT_DOUBLE_EQ(*only_a, 3.0);
  EXPECT_FALSE(
      ring.DeltaOver("ops_total", SimDuration::Millis(10), {{"device", "c"}}).has_value());
}

TEST(SnapshotRingTest, QuantileOverSeesOnlyWindowedSamples) {
  Registry reg;
  // Bounds 1, 2, 4, 8 (+Inf implicit).
  telemetry::Histogram* h = reg.GetHistogram("lat", "h", HistogramSpec{1.0, 2.0, 4});
  telemetry::SnapshotRing ring(&reg, 8);
  h->Observe(100.0);  // old outlier, before the first snapshot
  ring.Tick(SimTime{});
  for (int i = 0; i < 10; ++i) {
    h->Observe(1.5);  // everything in the window lands in the `le 2` bucket
  }
  ring.Tick(SimTime{} + SimDuration::Millis(1));

  // Whole-history window: includes the outlier, so p999 saturates at the
  // largest finite bound.
  auto q_narrow = ring.QuantileOver("lat", SimDuration::Millis(1), 0.99);
  ASSERT_TRUE(q_narrow.has_value());
  EXPECT_LE(*q_narrow, 2.0);  // the outlier was observed before the baseline
  // A counter family has no quantiles.
  reg.GetCounter("c_total", "h")->Increment();
  ring.Tick(SimTime{} + SimDuration::Millis(2));
  EXPECT_FALSE(ring.QuantileOver("c_total", SimDuration::Millis(10), 0.5).has_value());
}

TEST(HistogramQuantileTest, EmptyHistogramHasNoQuantiles) {
  Registry reg;
  telemetry::Histogram* h = reg.GetHistogram("empty", "h", HistogramSpec{1.0, 2.0, 4});
  EXPECT_FALSE(h->Quantile(0.5).has_value());
  EXPECT_FALSE(h->Quantile(0.999).has_value());
  const telemetry::MetricsSnapshot snap = reg.Snapshot();
  const telemetry::FamilySnapshot* f = snap.FindFamily("empty");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->Quantile(0.5).has_value());
  h->Observe(1.5);
  ASSERT_TRUE(h->Quantile(0.5).has_value());
  EXPECT_TRUE(reg.Snapshot().FindFamily("empty")->Quantile(0.5).has_value());
}

TEST(SnapshotRingTest, QuantileOverEmptyWindowIsNullopt) {
  Registry reg;
  telemetry::Histogram* h = reg.GetHistogram("lat2", "h", HistogramSpec{1.0, 2.0, 4});
  telemetry::SnapshotRing ring(&reg, 8);
  h->Observe(1.5);
  ring.Tick(SimTime{});
  ring.Tick(SimTime{} + SimDuration::Millis(1));
  // The only observation predates the window baseline: zero mass, no value.
  EXPECT_FALSE(ring.QuantileOver("lat2", SimDuration::Millis(1), 0.99).has_value());
}

TEST(SnapshotRingTest, CapacityEvictsOldestButKeepsTickCount) {
  Registry reg;
  telemetry::SnapshotRing ring(&reg, 2);
  ring.Tick(SimTime{});
  ring.Tick(SimTime{} + SimDuration::Millis(1));
  ring.Tick(SimTime{} + SimDuration::Millis(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.total_ticks(), 3u);
  const std::vector<telemetry::TimedSnapshot> entries = ring.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.front().sim_time, SimTime{} + SimDuration::Millis(1));
  ASSERT_TRUE(ring.Latest().has_value());
  EXPECT_EQ(ring.Latest()->sim_time, SimTime{} + SimDuration::Millis(2));
}

TEST(SnapshotRingTest, PreTickHooksRefreshOnDemandPublishers) {
  Registry reg;
  telemetry::SnapshotRing ring(&reg, 4);
  int fired = 0;
  ring.AddPreTickHook([&] {
    ++fired;
    reg.GetGauge("hooked", "h")->Set(static_cast<double>(fired));
  });
  ring.Tick(SimTime{});
  ring.Tick(SimTime{} + SimDuration::Millis(1));
  EXPECT_EQ(fired, 2);
  const std::optional<telemetry::TimedSnapshot> latest = ring.Latest();
  ASSERT_TRUE(latest.has_value());
  const telemetry::FamilySnapshot* fam = latest->metrics.FindFamily("hooked");
  ASSERT_NE(fam, nullptr);
  EXPECT_DOUBLE_EQ(fam->series[0].gauge, 2.0);
}

// TSan leg: snapshots and windowed queries race against live recording on
// instrument atomics and a self-profiler publishing through a pre-tick hook.
TEST(SnapshotRingTest, ConcurrentRecordingSnapshottingAndQuerying) {
  Registry reg;
  telemetry::Counter* c = reg.GetCounter("hammer_total", "h");
  telemetry::Histogram* h = reg.GetHistogram("hammer_ns", "h", HistogramSpec{1.0, 2.0, 8});
  telemetry::SelfProfiler prof;
  telemetry::SnapshotRing ring(&reg, 16);
  ring.AddPreTickHook([&] { prof.PublishTo(reg); });

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Increment();
        h->Observe(3.0);
        telemetry::PhaseTimer timer(&prof, telemetry::Phase::kBody);
      }
    });
  }
  for (int i = 1; i <= 64; ++i) {
    ring.Tick(SimTime{} + SimDuration::Micros(i));
    (void)ring.DeltaOver("hammer_total", SimDuration::Micros(8));
    (void)ring.RateOver("hammer_total", SimDuration::Micros(8));
    (void)ring.QuantileOver("hammer_ns", SimDuration::Micros(8), 0.99);
    (void)prof.Report();
  }
  stop.store(true);
  for (std::thread& t : hammers) {
    t.join();
  }
  EXPECT_EQ(ring.size(), 16u);
  EXPECT_EQ(ring.total_ticks(), 64u);
  auto delta = ring.DeltaOver("hammer_total", SimDuration::Micros(64));
  ASSERT_TRUE(delta.has_value());
  EXPECT_GE(*delta, 0.0);
}

// --- dashboard + counter tracks -------------------------------------------------

TEST(DashboardTest, RuntimeFedRingRendersAndExports) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  Registry registry;
  TraceBuffer tracer;
  telemetry::SnapshotRing ring(&registry, 64);
  rts::RuntimeOptions options;
  options.registry = &registry;
  options.tracer = &tracer;
  options.snapshot_ring = &ring;
  options.snapshot_interval = SimDuration::Micros(200);
  rts::Runtime rt(*host.cluster, options);

  dataflow::Job job("dash");
  for (int i = 0; i < 12; ++i) {
    job.AddTask("t" + std::to_string(i), {}, [](TaskContext& ctx) {
      ctx.ChargeCompute(1e6);
      return OkStatus();
    });
  }
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  ASSERT_GE(ring.size(), 2u);

  const telemetry::DashboardStats stats =
      telemetry::ComputeDashboard(ring, SimDuration::Millis(50));
  EXPECT_GT(stats.ticks, 0u);
  EXPECT_GT(stats.selfprof_wall_ns, 0.0);
  EXPECT_FALSE(stats.phase_share.empty());

  const std::string text = telemetry::RenderDashboard(stats);
  EXPECT_NE(text.find("tasks/s"), std::string::npos);
  const std::string json = telemetry::DashboardJson(stats);
  EXPECT_NE(json.find("\"tasks_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_share\""), std::string::npos);

  const std::string tracks = telemetry::ExportCounterTracksJson(ring);
  EXPECT_NE(tracks.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(tracks.find("rts_tasks_executed_total"), std::string::npos);
  // Family filter narrows the export.
  const std::string only =
      telemetry::ExportCounterTracksJson(ring, {"rts_jobs_total"});
  EXPECT_EQ(only.find("rts_tasks_executed_total"), std::string::npos);
}

TEST(TraceSummaryTest, OverflowedFamiliesSurfaceAsWarnings) {
  Registry reg(/*max_series_per_family=*/4);
  for (int i = 0; i < 10; ++i) {
    reg.GetCounter("wide_total", "h", {{"k", std::to_string(i)}})->Increment();
  }
  const telemetry::MetricsSnapshot snap = reg.Snapshot();
  ASSERT_FALSE(snap.OverflowedFamilies().empty());

  TraceBuffer tracer;
  const std::string summary = telemetry::RenderTraceSummary(tracer, &snap);
  EXPECT_NE(summary.find("WARNING"), std::string::npos);
  EXPECT_NE(summary.find("wide_total"), std::string::npos);
  // Without the metrics view there is nothing to warn about.
  const std::string plain = telemetry::RenderTraceSummary(tracer);
  EXPECT_EQ(plain.find("wide_total"), std::string::npos);
}

TEST_F(TelemetryRuntimeTest, FailedJobCountsAsFailure) {
  rts::RuntimeOptions options;
  options.registry = &registry_;
  options.tracer = &tracer_;
  options.max_task_attempts = 1;
  rts::Runtime rt(*host_.cluster, options);
  dataflow::Job job("boom");
  job.AddTask("fail", {}, [](TaskContext&) { return Internal("boom"); });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->status.ok());
  EXPECT_EQ(CounterValue("rts_jobs_total", {{"result", "failed"}}), 1u);
}

}  // namespace
}  // namespace memflow
