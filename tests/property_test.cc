// Copyright (c) memflow authors. MIT license.
//
// Property-based tests: randomized sequences checked against reference
// models and algebraic invariants. Everything is seeded and deterministic.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.h"
#include "region/crypto.h"
#include "region/region_manager.h"
#include "region/remote_ptr.h"
#include "simhw/device.h"
#include "simhw/presets.h"

namespace memflow {
namespace {

// --- Allocator vs reference model ------------------------------------------------

struct AllocatorParam {
  simhw::MemoryDeviceKind kind;
  std::uint64_t seed;
};

class AllocatorModelTest : public ::testing::TestWithParam<AllocatorParam> {};

TEST_P(AllocatorModelTest, RandomChurnKeepsInvariants) {
  const auto [kind, seed] = GetParam();
  const std::uint64_t capacity = MiB(4);
  simhw::MemoryDevice dev(simhw::MemoryDeviceId(0), simhw::NodeId(0), "dut",
                          simhw::DefaultProfile(kind), capacity);
  Rng rng(seed);
  std::map<std::uint64_t, simhw::Extent> live;  // by offset
  std::uint64_t used_model = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || rng.Chance(0.55);
    if (do_alloc) {
      const std::uint64_t size = 1 + rng.Below(KiB(64));
      auto extent = dev.Allocate(size);
      if (!extent.ok()) {
        EXPECT_EQ(extent.status().code(), StatusCode::kResourceExhausted);
        continue;
      }
      // Invariant: extent respects granularity and bounds.
      EXPECT_EQ(extent->offset % dev.profile().granularity, 0u);
      EXPECT_EQ(extent->size % dev.profile().granularity, 0u);
      EXPECT_GE(extent->size, size);
      EXPECT_LE(extent->offset + extent->size, capacity);
      // Invariant: no overlap with any live extent.
      for (const auto& [off, e] : live) {
        const bool disjoint =
            extent->offset + extent->size <= off || off + e.size <= extent->offset;
        EXPECT_TRUE(disjoint) << "overlap at step " << step;
      }
      used_model += extent->size;
      live.emplace(extent->offset, *extent);
    } else {
      // Free a pseudo-random live extent.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      ASSERT_TRUE(dev.Free(it->second).ok());
      used_model -= it->second.size;
      live.erase(it);
    }
    EXPECT_EQ(dev.used(), used_model);
  }

  // Free everything: the arena must coalesce back to one run.
  for (const auto& [off, e] : live) {
    ASSERT_TRUE(dev.Free(e).ok());
  }
  auto whole = dev.Allocate(capacity);
  EXPECT_TRUE(whole.ok()) << "fragmentation after full free";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllocatorModelTest,
    ::testing::Values(AllocatorParam{simhw::MemoryDeviceKind::kDRAM, 1},
                      AllocatorParam{simhw::MemoryDeviceKind::kPMem, 2},
                      AllocatorParam{simhw::MemoryDeviceKind::kSSD, 3},
                      AllocatorParam{simhw::MemoryDeviceKind::kDRAM, 99}),
    [](const auto& info) {
      return std::string(MemoryDeviceKindName(info.param.kind)) + "_s" +
             std::to_string(info.param.seed);
    });

// --- Accessor round-trip fuzz vs shadow buffer -------------------------------------

class AccessorFuzzTest : public ::testing::TestWithParam<bool> {};  // confidential?

TEST_P(AccessorFuzzTest, RandomReadsWritesMatchShadow) {
  const bool confidential = GetParam();
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  constexpr region::Principal kOwner{11, 1};
  constexpr std::uint64_t kSize = KiB(64);

  region::Properties props;
  props.confidential = confidential;
  auto id = mgr.AllocateOn(host.dram, kSize, props, kOwner);
  ASSERT_TRUE(id.ok());
  auto acc = mgr.OpenSync(*id, kOwner, host.cpu);
  ASSERT_TRUE(acc.ok());

  // Initialize: an untouched *confidential* region reads back keystream
  // noise, not zeros (decrypt of the zeroed backing store) — uninitialized
  // contents are unspecified, as documented. Write zeros first.
  std::vector<unsigned char> shadow(kSize, 0);
  ASSERT_TRUE(acc->Write(0, shadow.data(), kSize).ok());
  Rng rng(confidential ? 7 : 8);
  for (int step = 0; step < 1500; ++step) {
    const std::uint64_t offset = rng.Below(kSize);
    const std::uint64_t len = 1 + rng.Below(std::min<std::uint64_t>(kSize - offset, 777));
    if (rng.Chance(0.5)) {
      std::vector<unsigned char> data(len);
      for (auto& b : data) {
        b = static_cast<unsigned char>(rng.Below(256));
      }
      ASSERT_TRUE(acc->Write(offset, data.data(), len).ok());
      std::memcpy(shadow.data() + offset, data.data(), len);
    } else {
      std::vector<unsigned char> got(len);
      ASSERT_TRUE(acc->Read(offset, got.data(), len).ok());
      EXPECT_EQ(std::memcmp(got.data(), shadow.data() + offset, len), 0)
          << "mismatch at step " << step << " offset " << offset << " len " << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PlainAndConfidential, AccessorFuzzTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "confidential" : "plain";
                         });

// --- Crypto keystream properties ----------------------------------------------------

TEST(CryptoPropertyTest, RandomRangesComposable) {
  // Encrypting a whole buffer equals encrypting any partition of it.
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t key = rng.Next() | 1;
    const std::size_t len = 1 + rng.Below(512);
    const std::uint64_t base = rng.Below(1 << 20);
    std::vector<unsigned char> whole(len);
    for (auto& b : whole) {
      b = static_cast<unsigned char>(rng.Below(256));
    }
    auto parts = whole;
    region::ApplyKeystream(key, base, whole.data(), len);
    // Split at a random point and encrypt the halves independently.
    const std::size_t cut = rng.Below(len + 1);
    region::ApplyKeystream(key, base, parts.data(), cut);
    region::ApplyKeystream(key, base + cut, parts.data() + cut, len - cut);
    EXPECT_EQ(whole, parts) << "trial " << trial;
  }
}

TEST(CryptoPropertyTest, CiphertextLooksUniform) {
  // Chi-squared-lite: encrypt zeros, expect byte histogram roughly flat.
  std::vector<unsigned char> buf(1 << 16, 0);
  region::ApplyKeystream(0xfeedULL, 0, buf.data(), buf.size());
  std::vector<int> hist(256, 0);
  for (const unsigned char b : buf) {
    hist[b]++;
  }
  const double expect = static_cast<double>(buf.size()) / 256.0;
  for (int v = 0; v < 256; ++v) {
    EXPECT_NEAR(hist[v], expect, expect * 0.5) << "byte " << v;
  }
}

// --- RemotePtr bit-packing fuzz -----------------------------------------------------

TEST(RemotePtrPropertyTest, PackUnpackLossless) {
  Rng rng(33);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto region = region::RegionId(
        static_cast<std::uint32_t>(rng.Below(region::kRemotePtrMaxRegion + 1)));
    const std::uint64_t offset = rng.Below(region::kRemotePtrMaxOffset + 1);
    auto p = region::RemotePtr<int>::Make(region, offset);
    const int touches = static_cast<int>(rng.Below(40));
    for (int i = 0; i < touches; ++i) {
      p.Touch();
    }
    EXPECT_EQ(p.region(), region);
    EXPECT_EQ(p.offset(), offset);
    EXPECT_EQ(p.hotness(), touches);
    EXPECT_FALSE(p.swizzled());
  }
}

// --- Cost model algebraic properties -------------------------------------------------

TEST(CostPropertyTest, UseCostMonotoneInSize) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  const region::AccessHint hint{0.5, 0.5, 1.0};
  for (const simhw::MemoryDeviceId dev : host.cluster->AllMemoryDevices()) {
    auto view = host.cluster->View(host.cpu, dev);
    ASSERT_TRUE(view.ok());
    std::int64_t prev = 0;
    for (std::uint64_t size = KiB(4); size <= MiB(4); size *= 4) {
      const std::int64_t cost = ExpectedUseCost(*view, size, hint).ns;
      EXPECT_GE(cost, prev) << host.cluster->memory(dev).name();
      prev = cost;
    }
  }
}

TEST(CostPropertyTest, RelaxingPropertiesNeverShrinksCandidateSet) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  region::RegionManager::AllocRequest request;
  request.size = MiB(1);
  request.observer = host.cpu;
  request.owner = region::Principal{12, 1};

  region::Properties strict;
  strict.latency = region::LatencyClass::kLow;
  strict.sync = true;
  strict.coherent = true;
  region::Properties relaxed_latency = strict;
  relaxed_latency.latency = region::LatencyClass::kMedium;
  region::Properties relaxed_all;

  const auto n_strict = mgr.RankDevices(request, strict).size();
  const auto n_latency = mgr.RankDevices(request, relaxed_latency).size();
  const auto n_all = mgr.RankDevices(request, relaxed_all).size();
  EXPECT_LE(n_strict, n_latency);
  EXPECT_LE(n_latency, n_all);
  EXPECT_GE(n_all, 5u);
}

TEST(CostPropertyTest, ViewCostsScaleWithPathDistance) {
  // For every pair of devices on the same medium, the farther observer pays
  // at least as much per access.
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  auto near = host.cluster->View(host.cpu, host.dram);
  auto far = host.cluster->View(host.gpu, host.dram);
  ASSERT_TRUE(near.ok() && far.ok());
  for (const std::uint64_t bytes : {std::uint64_t{64}, KiB(4), KiB(64), MiB(1)}) {
    EXPECT_LE(near->ReadCost(bytes, true).ns, far->ReadCost(bytes, true).ns);
    EXPECT_LE(near->ReadCost(bytes, false).ns, far->ReadCost(bytes, false).ns);
  }
}

// --- Ownership state machine fuzz -----------------------------------------------------

TEST(OwnershipPropertyTest, RandomLifecyclesNeverLeak) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  Rng rng(55);
  const region::Principal owners[] = {{1, 1}, {1, 2}, {1, 3}};

  for (int round = 0; round < 60; ++round) {
    // Allocate a handful of regions with random owners.
    std::vector<std::pair<region::RegionId, region::Principal>> live;
    for (int i = 0; i < 8; ++i) {
      region::RegionManager::AllocRequest request;
      request.size = KiB(4) << rng.Below(4);
      request.observer = rng.Chance(0.5) ? host.cpu : host.gpu;
      request.owner = owners[rng.Below(3)];
      auto id = mgr.Allocate(request);
      ASSERT_TRUE(id.ok());
      live.push_back({*id, request.owner});
    }
    // Random transfers/shares/migrations, then release everything.
    for (int step = 0; step < 24; ++step) {
      auto& [id, owner] = live[rng.Below(live.size())];
      const auto info = mgr.Info(id);
      if (!info.ok()) {
        continue;
      }
      switch (rng.Below(3)) {
        case 0: {
          const region::Principal to = owners[rng.Below(3)];
          auto cost = mgr.Transfer(id, owner, to, host.cpu);
          if (cost.ok()) {
            owner = to;
          }
          break;
        }
        case 1:
          (void)mgr.Share(id, owner, owners[rng.Below(3)], host.cpu,
                          /*require_coherent=*/false);
          break;
        default:
          (void)mgr.Migrate(id, rng.Chance(0.5) ? host.cxl_dram : host.dram);
          break;
      }
    }
    for (auto& [id, owner] : live) {
      (void)mgr.ForceFree(id);
    }
    EXPECT_TRUE(mgr.LiveRegions().empty()) << "leak in round " << round;
    // All devices drained.
    for (const simhw::MemoryDeviceId dev : host.cluster->AllMemoryDevices()) {
      EXPECT_EQ(host.cluster->memory(dev).used(), 0u);
    }
  }
}

}  // namespace
}  // namespace memflow
