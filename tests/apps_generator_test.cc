// Copyright (c) memflow authors. MIT license.
//
// Unit tests for the application-level generators and reference
// implementations (the ground truth all integration tests compare against),
// plus runtime API edge cases.

#include <gtest/gtest.h>

#include <set>

#include "apps/dbms.h"
#include "apps/hospital.h"
#include "apps/hpc.h"
#include "apps/ml.h"
#include "apps/streaming.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow {
namespace {

// --- DBMS generators -----------------------------------------------------------

TEST(DbmsGeneratorTest, RowsDeterministicPerSeed) {
  apps::dbms::TableSpec spec;
  spec.seed = 42;
  const apps::dbms::Row a = apps::dbms::MakeRow(spec, 123);
  const apps::dbms::Row b = apps::dbms::MakeRow(spec, 123);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.group, b.group);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  spec.seed = 43;
  const apps::dbms::Row c = apps::dbms::MakeRow(spec, 123);
  EXPECT_TRUE(c.group != a.group || c.value != a.value);
}

TEST(DbmsGeneratorTest, GroupsWithinBounds) {
  apps::dbms::TableSpec spec;
  spec.groups = 7;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_LT(apps::dbms::MakeRow(spec, i).group, 7u);
  }
}

TEST(DbmsGeneratorTest, SelectivityMonotone) {
  apps::dbms::TableSpec spec;
  std::uint64_t kept25 = 0;
  std::uint64_t kept75 = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const apps::dbms::Row row = apps::dbms::MakeRow(spec, i);
    kept25 += apps::dbms::KeepRow(row, 0.25) ? 1 : 0;
    kept75 += apps::dbms::KeepRow(row, 0.75) ? 1 : 0;
    // Monotone: a row kept at 0.25 is kept at 0.75.
    EXPECT_LE(apps::dbms::KeepRow(row, 0.25), apps::dbms::KeepRow(row, 0.75));
  }
  EXPECT_NEAR(static_cast<double>(kept25) / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(kept75) / 20000.0, 0.75, 0.02);
}

TEST(DbmsGeneratorTest, ExpectedAggregateConsistentWithJoinInputs) {
  // The join of a table against itself via group ids equals the group-sum
  // dot the dim values — a cross-check between the two reference paths.
  apps::dbms::TableSpec fact{.rows = 4000, .groups = 50, .seed = 9};
  apps::dbms::TableSpec dim{.rows = 50, .groups = 5, .seed = 10};
  std::vector<double> group_sums(50, 0.0);
  for (std::uint64_t i = 0; i < fact.rows; ++i) {
    const apps::dbms::Row row = apps::dbms::MakeRow(fact, i);
    group_sums[row.group] += row.value;
  }
  double expected = 0;
  for (std::uint64_t k = 0; k < dim.rows; ++k) {
    const apps::dbms::Row d = apps::dbms::MakeRow(dim, k);
    if (d.key < 50) {
      expected += group_sums[d.key] * d.value;
    }
  }
  EXPECT_NEAR(apps::dbms::ExpectedJoin(fact, dim), expected, 1e-6);
}

// --- Hospital generators -----------------------------------------------------------

TEST(HospitalGeneratorTest, FramesChronologicalAndDeterministic) {
  apps::hospital::HospitalSpec spec;
  spec.minutes = 8 * 60;
  const auto frames1 = apps::hospital::GenerateFrames(spec);
  const auto frames2 = apps::hospital::GenerateFrames(spec);
  ASSERT_EQ(frames1.size(), frames2.size());
  for (std::size_t i = 1; i < frames1.size(); ++i) {
    EXPECT_LE(frames1[i - 1].minute, frames1[i].minute);
    EXPECT_EQ(frames1[i].feature, frames2[i].feature);
  }
}

TEST(HospitalGeneratorTest, GarbageRateRespected) {
  apps::hospital::HospitalSpec spec;
  spec.garbage_rate = 0.25;
  const auto frames = apps::hospital::GenerateFrames(spec);
  std::size_t garbage = 0;
  for (const auto& f : frames) {
    // Valid frames carry registry features; count checksum failures via the
    // expectation machinery: a frame for an unknown feature w/ bad checksum.
    bool known = false;
    for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(spec.staff + spec.patients);
         ++p) {
      if (apps::hospital::FaceFeature(spec, p) == f.feature) {
        known = true;
        break;
      }
    }
    if (!known) {
      garbage++;
    }
  }
  EXPECT_NEAR(static_cast<double>(garbage) / static_cast<double>(frames.size()), 0.2,
              0.08);
}

TEST(HospitalGeneratorTest, PersonEventsAlternateEnterExit) {
  apps::hospital::HospitalSpec spec;
  const auto frames = apps::hospital::GenerateFrames(spec);
  std::map<std::uint64_t, std::uint32_t> last_direction;  // feature -> dir
  std::set<std::uint64_t> registry;
  for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(spec.staff + spec.patients); ++p) {
    registry.insert(apps::hospital::FaceFeature(spec, p));
  }
  for (const auto& f : frames) {
    if (!registry.contains(f.feature)) {
      continue;
    }
    auto it = last_direction.find(f.feature);
    if (it != last_direction.end()) {
      EXPECT_NE(it->second, f.direction)
          << "person repeated direction " << f.direction << " at minute " << f.minute;
    }
    last_direction[f.feature] = f.direction;
  }
}

TEST(HospitalGeneratorTest, ExpectationScalesWithGrace) {
  // A longer grace period can only reduce (or keep) the number of alerts.
  apps::hospital::HospitalSpec strict;
  strict.grace_minutes = 10;
  apps::hospital::HospitalSpec lenient = strict;
  lenient.grace_minutes = 300;
  EXPECT_GE(apps::hospital::ExpectedHospital(strict).alerts.size(),
            apps::hospital::ExpectedHospital(lenient).alerts.size());
}

TEST(HospitalGeneratorTest, AlertsAreAlwaysPatients) {
  apps::hospital::HospitalSpec spec;
  for (const std::uint32_t person : apps::hospital::ExpectedHospital(spec).alerts) {
    EXPECT_GE(person, static_cast<std::uint32_t>(spec.staff));
    EXPECT_LT(person, static_cast<std::uint32_t>(spec.staff + spec.patients));
  }
}

// --- Streaming / HPC references -------------------------------------------------------

TEST(StreamingGeneratorTest, SensorsWithinBoundsAndMeansFinite) {
  apps::streaming::StreamSpec spec;
  spec.sensors = 5;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_LT(apps::streaming::MakeEvent(spec, i).sensor, 5u);
  }
  for (const double m : apps::streaming::ExpectedWindowMeans(spec)) {
    EXPECT_TRUE(std::isfinite(m));
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 100.0);  // readings are in [0, 100)
  }
}

TEST(StreamingGeneratorTest, WindowCountRounding) {
  apps::streaming::StreamSpec spec;
  spec.events = 10;
  spec.window_events = 3;
  EXPECT_EQ(apps::streaming::NumWindows(spec), 4u);
  spec.events = 9;
  EXPECT_EQ(apps::streaming::NumWindows(spec), 3u);
}

TEST(HpcReferenceTest, StencilConvergesAndRespectsBoundaries) {
  apps::hpc::StencilSpec few{.nx = 16, .ny = 16, .sweeps = 2};
  apps::hpc::StencilSpec many = few;
  many.sweeps = 50;
  const auto early = apps::hpc::ReferenceStencil(few);
  const auto late = apps::hpc::ReferenceStencil(many);
  // Boundary row stays at the fixed temperature.
  for (int x = 0; x < few.nx; ++x) {
    EXPECT_DOUBLE_EQ(late[static_cast<std::size_t>(x)], few.boundary);
  }
  // Heat diffuses downward over time: interior sum grows.
  double early_sum = 0;
  double late_sum = 0;
  for (std::size_t i = 16; i < early.size(); ++i) {
    early_sum += early[i];
    late_sum += late[i];
  }
  EXPECT_GT(late_sum, early_sum);
}

TEST(MlGeneratorTest, CacheBytesMatchesMatrixShape) {
  apps::ml::MlSpec spec;
  spec.examples = 100;
  spec.features = 3;
  EXPECT_EQ(apps::ml::CacheBytes(spec), 100u * 4 * 8);
}

// --- Runtime edge cases -----------------------------------------------------------------

TEST(RuntimeEdgeTest, SubmitAfterRunContinuesOnSameClock) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  dataflow::Job first("first");
  first.AddTask("t", {}, [](dataflow::TaskContext& ctx) {
    ctx.ChargeCompute(1e6);
    return OkStatus();
  });
  auto r1 = rt.SubmitAndRun(std::move(first));
  ASSERT_TRUE(r1.ok() && r1->status.ok());
  const SimTime after_first = rt.clock().now();
  ASSERT_GT(after_first.ns, 0);

  dataflow::Job second("second");
  second.AddTask("t", {}, [](dataflow::TaskContext& ctx) {
    ctx.ChargeCompute(1e6);
    return OkStatus();
  });
  auto r2 = rt.SubmitAndRun(std::move(second));
  ASSERT_TRUE(r2.ok() && r2->status.ok());
  EXPECT_GE(r2->submitted.ns, after_first.ns);  // the timeline is continuous
}

TEST(RuntimeEdgeTest, ReleaseOutputsOfUnknownJobIsNotFound) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  EXPECT_EQ(rt.ReleaseJobOutputs(dataflow::JobId(777)).code(), StatusCode::kNotFound);
  EXPECT_FALSE(rt.GetJob(dataflow::JobId(777)).ok());
}

TEST(RuntimeEdgeTest, InvalidDagRejectedBeforeAnyAllocation) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  dataflow::Job cyclic("cyclic", {.global_state_bytes = KiB(4)});
  const auto a = cyclic.AddTask("a", {}, [](dataflow::TaskContext&) { return OkStatus(); });
  const auto b = cyclic.AddTask("b", {}, [](dataflow::TaskContext&) { return OkStatus(); });
  ASSERT_TRUE(cyclic.Connect(a, b).ok());
  ASSERT_TRUE(cyclic.Connect(b, a).ok());
  EXPECT_FALSE(rt.Submit(std::move(cyclic)).ok());
  EXPECT_TRUE(rt.regions().LiveRegions().empty());
  EXPECT_EQ(host.cluster->TotalMemoryUsed(), 0u);
}

TEST(RuntimeEdgeTest, RunToCompletionIdempotentWhenIdle) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  EXPECT_TRUE(rt.RunToCompletion().ok());
  EXPECT_TRUE(rt.RunToCompletion().ok());
}

TEST(RuntimeEdgeTest, ZeroWorkJobFinishesInstantly) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  dataflow::Job job("instant");
  job.AddTask("noop", {}, [](dataflow::TaskContext&) { return OkStatus(); });
  auto report = rt.SubmitAndRun(std::move(job));
  ASSERT_TRUE(report.ok() && report->status.ok());
  EXPECT_EQ(report->Makespan().ns, 0);
}

}  // namespace
}  // namespace memflow
