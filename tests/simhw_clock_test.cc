// Copyright (c) memflow authors. MIT license.
//
// Tests for virtual time, the discrete-event queue, and the fault injector.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "simhw/clock.h"
#include "simhw/fault.h"
#include "simhw/presets.h"

namespace memflow::simhw {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now().ns, 0);
  clock.Advance(SimDuration::Micros(5));
  EXPECT_EQ(clock.now().ns, 5000);
  clock.AdvanceTo(SimTime(6000));
  EXPECT_EQ(clock.now().ns, 6000);
}

TEST(EventQueueTest, FiresInTimestampOrder) {
  VirtualClock clock;
  EventQueue events;
  std::vector<int> fired;
  events.Schedule(SimTime(300), [&](SimTime) { fired.push_back(3); });
  events.Schedule(SimTime(100), [&](SimTime) { fired.push_back(1); });
  events.Schedule(SimTime(200), [&](SimTime) { fired.push_back(2); });
  events.RunUntilIdle(clock);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now().ns, 300);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  VirtualClock clock;
  EventQueue events;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    events.Schedule(SimTime(42), [&fired, i](SimTime) { fired.push_back(i); });
  }
  events.RunUntilIdle(clock);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, CallbacksMayScheduleMoreEvents) {
  VirtualClock clock;
  EventQueue events;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    if (++count < 5) {
      events.Schedule(t + SimDuration::Nanos(10), chain);
    }
  };
  events.Schedule(SimTime(0), chain);
  const std::uint64_t n = events.RunUntilIdle(clock);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(clock.now().ns, 40);
}

TEST(EventQueueTest, ScheduleAfterUsesClock) {
  VirtualClock clock;
  clock.Advance(SimDuration::Micros(1));
  EventQueue events;
  events.ScheduleAfter(clock, SimDuration::Micros(2), [](SimTime) {});
  EXPECT_EQ(events.next_time().ns, 3000);
}

// --- Fault injector -----------------------------------------------------------------

TEST(FaultInjectorTest, AppliesDueEventsInOrder) {
  DisaggHandles h = MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 2});
  FaultInjector inj(*h.cluster);
  inj.CrashNodeAt(SimTime(1000), h.memory_node_ids[0]);
  inj.RecoverNodeAt(SimTime(2000), h.memory_node_ids[0]);

  EXPECT_EQ(inj.ApplyDue(SimTime(500)), 0u);
  EXPECT_FALSE(h.cluster->memory(h.far_mem[0]).failed());

  EXPECT_EQ(inj.ApplyDue(SimTime(1500)), 1u);
  EXPECT_TRUE(h.cluster->memory(h.far_mem[0]).failed());

  EXPECT_EQ(inj.ApplyDue(SimTime(2500)), 1u);
  EXPECT_FALSE(h.cluster->memory(h.far_mem[0]).failed());
  EXPECT_EQ(inj.fired().size(), 2u);
}

TEST(FaultInjectorTest, UnsortedInsertionStillAppliesInTimeOrder) {
  DisaggHandles h = MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 1});
  FaultInjector inj(*h.cluster);
  inj.RecoverNodeAt(SimTime(200), h.memory_node_ids[0]);
  inj.CrashNodeAt(SimTime(100), h.memory_node_ids[0]);
  EXPECT_EQ(inj.ApplyDue(SimTime(300)), 2u);
  EXPECT_FALSE(h.cluster->memory(h.far_mem[0]).failed());  // crash then recover
}

TEST(FaultInjectorTest, GeneratedScheduleIsDeterministic) {
  DisaggHandles h1 = MakeDisaggRack({});
  DisaggHandles h2 = MakeDisaggRack({});
  Rng rng1(99);
  Rng rng2(99);
  FaultInjector a(*h1.cluster);
  FaultInjector b(*h2.cluster);
  a.GenerateNodeCrashes(rng1, h1.memory_node_ids, SimDuration::Millis(10),
                        SimDuration::Millis(1), SimTime(100000000));
  b.GenerateNodeCrashes(rng2, h2.memory_node_ids, SimDuration::Millis(10),
                        SimDuration::Millis(1), SimTime(100000000));
  auto ta = a.PendingTimes();
  auto tb = b.PendingTimes();
  ASSERT_EQ(ta.size(), tb.size());
  EXPECT_GT(ta.size(), 0u);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].ns, tb[i].ns);
  }
}

TEST(FaultInjectorTest, PendingTimesSortedAndShrinks) {
  DisaggHandles h = MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 1});
  FaultInjector inj(*h.cluster);
  inj.CrashNodeAt(SimTime(300), h.memory_node_ids[0]);
  inj.CrashNodeAt(SimTime(100), h.memory_node_ids[0]);
  auto times = inj.PendingTimes();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_LT(times[0].ns, times[1].ns);
  inj.ApplyDue(SimTime(150));
  EXPECT_EQ(inj.PendingTimes().size(), 1u);
}

}  // namespace
}  // namespace memflow::simhw
