// Copyright (c) memflow authors. MIT license.
//
// Tests for the interconnect topology, observer-relative AccessViews (the
// Figure 3 mechanism), cluster presets, and node-level fault domains.

#include <gtest/gtest.h>

#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "simhw/topology.h"

namespace memflow::simhw {
namespace {

// --- Raw topology ----------------------------------------------------------------

TEST(TopologyTest, DirectPath) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  const VertexId b = topo.AddVertex("b");
  topo.Connect(a, b, DefaultLink(LinkKind::kMemBus));
  auto p = topo.Path(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->hops, 1);
  EXPECT_EQ(p->latency.ns, DefaultLink(LinkKind::kMemBus).latency.ns);
  EXPECT_TRUE(p->coherent);
  EXPECT_TRUE(p->loadstore);
}

TEST(TopologyTest, SelfPathIsFree) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  auto p = topo.Path(a, a);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->hops, 0);
  EXPECT_EQ(p->latency.ns, 0);
}

TEST(TopologyTest, UnreachableIsNotFound) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  const VertexId b = topo.AddVertex("b");
  EXPECT_EQ(topo.Path(a, b).status().code(), StatusCode::kNotFound);
}

TEST(TopologyTest, PicksShorterLatencyPath) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  const VertexId b = topo.AddVertex("b");
  const VertexId mid = topo.AddVertex("mid");
  // Direct slow link vs two-hop fast path.
  LinkDesc slow = DefaultLink(LinkKind::kNic);  // 1500ns
  topo.Connect(a, b, slow);
  topo.Connect(a, mid, DefaultLink(LinkKind::kOnChip));  // 5ns
  topo.Connect(mid, b, DefaultLink(LinkKind::kOnChip));
  auto p = topo.Path(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->hops, 2);
  EXPECT_EQ(p->latency.ns, 10);
}

TEST(TopologyTest, PropertiesFoldAlongPath) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  const VertexId mid = topo.AddVertex("mid");
  const VertexId b = topo.AddVertex("b");
  topo.Connect(a, mid, DefaultLink(LinkKind::kCxl));   // coherent, loadstore
  topo.Connect(mid, b, DefaultLink(LinkKind::kPcie));  // NOT coherent
  auto p = topo.Path(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->coherent);
  EXPECT_TRUE(p->loadstore);
  // Bandwidth is the min along the path.
  EXPECT_DOUBLE_EQ(p->bw_gbps, 30.0);
}

TEST(TopologyTest, NicPathForbidsLoadStore) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  const VertexId b = topo.AddVertex("b");
  topo.Connect(a, b, DefaultLink(LinkKind::kNic));
  auto p = topo.Path(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->loadstore);
  EXPECT_FALSE(p->coherent);
}

TEST(TopologyTest, FailedLinkExcludedAndRecovers) {
  Topology topo;
  const VertexId a = topo.AddVertex("a");
  const VertexId b = topo.AddVertex("b");
  const LinkId l = topo.Connect(a, b, DefaultLink(LinkKind::kMemBus));
  ASSERT_TRUE(topo.Path(a, b).ok());
  ASSERT_TRUE(topo.FailLink(l).ok());
  EXPECT_FALSE(topo.Path(a, b).ok());
  ASSERT_TRUE(topo.RecoverLink(l).ok());
  EXPECT_TRUE(topo.Path(a, b).ok());
}

// --- Cluster views (the Figure 3 mechanism) ----------------------------------------

class CxlHostTest : public ::testing::Test {
 protected:
  void SetUp() override { h_ = MakeCxlExpansionHost(); }
  CxlHostHandles h_;
};

TEST_F(CxlHostTest, SameDeviceLooksDifferentFromCpuAndGpu) {
  // DRAM is near for the CPU, far (over PCIe) for the GPU.
  auto cpu_dram = h_.cluster->View(h_.cpu, h_.dram);
  auto gpu_dram = h_.cluster->View(h_.gpu, h_.dram);
  ASSERT_TRUE(cpu_dram.ok() && gpu_dram.ok());
  EXPECT_LT(cpu_dram->read_latency.ns, gpu_dram->read_latency.ns);
  EXPECT_GT(cpu_dram->read_bw_gbps, gpu_dram->read_bw_gbps);

  // And symmetrically for GDDR.
  auto cpu_gddr = h_.cluster->View(h_.cpu, h_.gddr);
  auto gpu_gddr = h_.cluster->View(h_.gpu, h_.gddr);
  ASSERT_TRUE(cpu_gddr.ok() && gpu_gddr.ok());
  EXPECT_LT(gpu_gddr->read_latency.ns, cpu_gddr->read_latency.ns);
}

TEST_F(CxlHostTest, FastLocalScratchPrefersDramForCpuGddrForGpu) {
  // The literal Figure 3 statement, at the view level: from the CPU, DRAM
  // beats GDDR; from the GPU, GDDR beats DRAM.
  auto cpu_dram = h_.cluster->View(h_.cpu, h_.dram);
  auto cpu_gddr = h_.cluster->View(h_.cpu, h_.gddr);
  auto gpu_dram = h_.cluster->View(h_.gpu, h_.dram);
  auto gpu_gddr = h_.cluster->View(h_.gpu, h_.gddr);
  ASSERT_TRUE(cpu_dram.ok() && cpu_gddr.ok() && gpu_dram.ok() && gpu_gddr.ok());
  EXPECT_LT(cpu_dram->read_latency.ns, cpu_gddr->read_latency.ns);
  EXPECT_LT(gpu_gddr->read_latency.ns, gpu_dram->read_latency.ns);
}

TEST_F(CxlHostTest, CxlIsCoherentPcieIsNot) {
  auto gpu_cxl = h_.cluster->View(h_.gpu, h_.cxl_dram);
  ASSERT_TRUE(gpu_cxl.ok());
  EXPECT_TRUE(gpu_cxl->coherent);  // via CXL.cache

  auto gpu_dram = h_.cluster->View(h_.gpu, h_.dram);
  ASSERT_TRUE(gpu_dram.ok());
  EXPECT_FALSE(gpu_dram->coherent);  // via plain PCIe
  EXPECT_TRUE(gpu_dram->addressable);
}

TEST_F(CxlHostTest, FarMemoryIsAsyncOnly) {
  auto v = h_.cluster->View(h_.cpu, h_.disagg);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->addressable);
  EXPECT_FALSE(v->sync);
}

TEST_F(CxlHostTest, BlockDevicesAreNotSync) {
  auto ssd = h_.cluster->View(h_.cpu, h_.ssd);
  ASSERT_TRUE(ssd.ok());
  EXPECT_FALSE(ssd->sync);
  EXPECT_TRUE(ssd->persistent);
}

TEST_F(CxlHostTest, SequentialBurstCheaperThanRandom) {
  auto v = h_.cluster->View(h_.cpu, h_.dram);
  ASSERT_TRUE(v.ok());
  EXPECT_LT(v->ReadCost(KiB(256), true).ns, v->ReadCost(KiB(256), false).ns);
}

// --- NUMA preset -------------------------------------------------------------------

TEST(NumaPresetTest, RemoteSocketCostsMore) {
  NumaHandles h = MakeTwoSocketNuma();
  auto local = h.cluster->View(h.cpu0, h.dram0);
  auto remote = h.cluster->View(h.cpu0, h.dram1);
  ASSERT_TRUE(local.ok() && remote.ok());
  EXPECT_GT(remote->read_latency.ns, local->read_latency.ns * 2);
  EXPECT_LT(remote->read_bw_gbps, local->read_bw_gbps);
  EXPECT_TRUE(remote->coherent);  // UPI keeps coherence
}

// --- Rack presets ------------------------------------------------------------------

TEST(RackPresetTest, RemoteServerMemoryNotLoadStoreAddressable) {
  auto cluster = MakeComputeCentricRack({.servers = 2});
  // server0 cpu -> server1 dram crosses the NIC fabric.
  const auto& n0 = cluster->node(NodeId(0));
  const auto& n1 = cluster->node(NodeId(1));
  auto v = cluster->View(n0.compute[0], n1.memory[0]);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->addressable);
  auto local = cluster->View(n0.compute[0], n0.memory[0]);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->addressable);
}

TEST(PoolPresetTest, EveryComputeReachesThePoolCoherently) {
  auto cluster = MakeMemoryCentricPool({});
  const auto mems = cluster->AllMemoryDevices();
  for (const ComputeDeviceId c : cluster->AllComputeDevices()) {
    int coherent_pool_devices = 0;
    for (const MemoryDeviceId m : mems) {
      auto v = cluster->View(c, m);
      if (v.ok() && v->coherent) {
        coherent_pool_devices++;
      }
    }
    // At least the four pool devices (own HBM may add one more).
    EXPECT_GE(coherent_pool_devices, 4) << cluster->compute(c).name();
  }
}

TEST(PoolPresetTest, UtilizationAggregates) {
  auto cluster = MakeMemoryCentricPool({});
  EXPECT_DOUBLE_EQ(cluster->MemoryUtilization(), 0.0);
  const MemoryDeviceId first = cluster->AllMemoryDevices().front();
  auto e = cluster->memory(first).Allocate(MiB(64));
  ASSERT_TRUE(e.ok());
  EXPECT_GT(cluster->MemoryUtilization(), 0.0);
  EXPECT_EQ(cluster->TotalMemoryUsed(), e->size);
}

// --- Node fault domains ---------------------------------------------------------------

TEST(ClusterFaultTest, CrashNodeFailsAllItsDevices) {
  DisaggHandles h = MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 2});
  const NodeId victim = h.memory_node_ids[0];
  ASSERT_TRUE(h.cluster->CrashNode(victim).ok());
  EXPECT_TRUE(h.cluster->memory(h.far_mem[0]).failed());
  EXPECT_FALSE(h.cluster->memory(h.far_mem[1]).failed());
  // Views of the failed device error out.
  EXPECT_FALSE(h.cluster->View(h.cpus[0], h.far_mem[0]).ok());
  ASSERT_TRUE(h.cluster->RecoverNode(victim).ok());
  EXPECT_TRUE(h.cluster->View(h.cpus[0], h.far_mem[0]).ok());
}

TEST(ClusterFaultTest, FailedDeviceExcludedFromCapacity) {
  DisaggHandles h = MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 2});
  const std::uint64_t before = h.cluster->TotalMemoryCapacity();
  ASSERT_TRUE(h.cluster->CrashNode(h.memory_node_ids[0]).ok());
  EXPECT_LT(h.cluster->TotalMemoryCapacity(), before);
}

}  // namespace
}  // namespace memflow::simhw
