// Copyright (c) memflow authors. MIT license.
//
// Stress tests: randomized DAGs through the runtime, multi-job concurrency,
// and fault storms against the fault-tolerance layer. All seeded.

#include <gtest/gtest.h>

#include <cstring>

#include "common/hash.h"
#include "common/rng.h"
#include "ft/span_store.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "testing/workload.h"

namespace memflow {
namespace {

using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskId;

// Random DAGs come from the shared workload generator (testing/workload.h):
// same checksum-chain bodies, same distributions, one implementation for the
// stress suite and the simulation harness.
using memflow::testing::RandomDag;

class RandomDagTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagTest, CompletesAndLeaksNothing) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime rt(*host.cluster);
  Rng rng(GetParam());

  std::vector<dataflow::JobId> ids;
  for (int j = 0; j < 6; ++j) {
    auto id = rt.Submit(RandomDag(rng, 4 + static_cast<int>(rng.Below(14)),
                                  "rand"));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_TRUE(rt.RunToCompletion().ok());

  for (const dataflow::JobId id : ids) {
    const rts::JobReport& report = rt.report(id);
    EXPECT_TRUE(report.status.ok()) << report.status.ToString();
    EXPECT_EQ(report.tasks.size(), rt.GetJob(id).value()->num_tasks());
    // Every task ran exactly once (no spurious retries in a fault-free run).
    for (const rts::TaskReport& t : report.tasks) {
      EXPECT_EQ(t.attempts, 1);
      EXPECT_GE(t.finish.ns, t.start.ns);
    }
    (void)rt.ReleaseJobOutputs(id);
  }
  // After releasing retained outputs, no regions survive.
  EXPECT_TRUE(rt.regions().LiveRegions().empty());
  for (const simhw::MemoryDeviceId dev : host.cluster->AllMemoryDevices()) {
    EXPECT_EQ(host.cluster->memory(dev).used(), 0u)
        << host.cluster->memory(dev).name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(RandomDagPolicyTest, AllPoliciesCompleteTheSameDags) {
  for (const auto policy :
       {rts::PlacementPolicyKind::kCostModel, rts::PlacementPolicyKind::kRoundRobin,
        rts::PlacementPolicyKind::kFirstFit, rts::PlacementPolicyKind::kRandom}) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    rts::RuntimeOptions options;
    options.policy = policy;
    rts::Runtime rt(*host.cluster, options);
    Rng rng(31415);
    for (int j = 0; j < 4; ++j) {
      ASSERT_TRUE(rt.Submit(RandomDag(rng, 10, "p")).ok());
    }
    ASSERT_TRUE(rt.RunToCompletion().ok());
    EXPECT_EQ(rt.stats().jobs_completed, 4u)
        << rts::PlacementPolicyKindName(policy);
  }
}

TEST(RandomDagDeterminismTest, SameSeedSameSchedule) {
  // Two identical runs produce identical makespans and placements.
  std::vector<std::int64_t> makespans;
  std::vector<std::uint32_t> devices;
  for (int run = 0; run < 2; ++run) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    rts::Runtime rt(*host.cluster);
    Rng rng(777);
    auto id = rt.Submit(RandomDag(rng, 12, "det"));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(rt.RunToCompletion().ok());
    const rts::JobReport& report = rt.report(*id);
    ASSERT_TRUE(report.status.ok());
    if (run == 0) {
      makespans.push_back(report.Makespan().ns);
      for (const rts::TaskReport& t : report.tasks) {
        devices.push_back(t.device.value);
      }
    } else {
      EXPECT_EQ(report.Makespan().ns, makespans[0]);
      for (std::size_t i = 0; i < report.tasks.size(); ++i) {
        EXPECT_EQ(report.tasks[i].device.value, devices[i]);
      }
    }
  }
}

// --- Fault storms --------------------------------------------------------------------

TEST(FaultStormTest, ReplicatedStoreSurvivesSequentialCrashStorm) {
  simhw::DisaggHandles rack =
      simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 10});
  region::RegionManager regions(*rack.cluster);
  ft::StoreOptions options;
  options.scheme = ft::Redundancy::kReplication;
  options.replicas = 3;
  options.span_bytes = 16 * kKiB;
  ft::SpanStore store(regions, rack.far_mem, rack.cpus[0], options);

  Rng rng(123);
  std::vector<std::pair<ft::ObjectId, std::vector<std::uint8_t>>> objects;
  for (int i = 0; i < 24; ++i) {
    std::vector<std::uint8_t> blob(4000 + rng.Below(20000));
    for (auto& b : blob) {
      b = static_cast<std::uint8_t>(rng.Below(256));
    }
    auto id = store.Put(blob);
    ASSERT_TRUE(id.ok());
    objects.emplace_back(*id, std::move(blob));
  }
  ASSERT_TRUE(store.Flush().ok());

  // 6 crash/repair/recover cycles over random nodes; data must survive every
  // single-failure step (replication factor 3, repaired between crashes).
  for (int storm = 0; storm < 6; ++storm) {
    const std::size_t victim = rng.Below(rack.memory_node_ids.size());
    ASSERT_TRUE(rack.cluster->CrashNode(rack.memory_node_ids[victim]).ok());
    auto report = store.HandleDeviceFailure(rack.far_mem[victim]);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->objects_lost, 0) << "storm " << storm;
    ASSERT_TRUE(rack.cluster->RecoverNode(rack.memory_node_ids[victim]).ok());
    for (const auto& [id, blob] : objects) {
      std::vector<std::uint8_t> out;
      ASSERT_TRUE(store.Get(id, out).ok()) << "storm " << storm;
      EXPECT_EQ(out, blob);
    }
  }
}

TEST(FaultStormTest, RuntimeWithCrashScheduleTerminates) {
  // Random node crashes during a multi-job run: every job must end in a
  // definite state (completed or failed); the scheduler must not hang.
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::RuntimeOptions options;
  options.max_task_attempts = 3;
  rts::Runtime rt(*host.cluster, options);

  simhw::FaultInjector faults(*host.cluster);
  // Crash and quickly recover the far-memory node a few times.
  for (int i = 0; i < 3; ++i) {
    faults.CrashNodeAt(SimTime(50000 + i * 200000), simhw::NodeId(1));
    faults.RecoverNodeAt(SimTime(150000 + i * 200000), simhw::NodeId(1));
  }
  rt.AttachFaultInjector(&faults);

  Rng rng(999);
  std::vector<dataflow::JobId> ids;
  for (int j = 0; j < 5; ++j) {
    auto id = rt.Submit(RandomDag(rng, 8, "storm"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(rt.RunToCompletion().ok());
  EXPECT_EQ(rt.stats().jobs_completed + rt.stats().jobs_failed, 5u);
  EXPECT_EQ(faults.pending(), 0u);
}

TEST(FaultStormTest, EcStoreGridOfDoubleFailures) {
  // RS(4,2): every unordered pair of node failures within one spanset's
  // placement must be survivable. Exercise many pairs.
  simhw::DisaggHandles rack =
      simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 8});
  Rng rng(321);
  for (int trial = 0; trial < 6; ++trial) {
    region::RegionManager regions(*rack.cluster);
    ft::StoreOptions options;
    options.scheme = ft::Redundancy::kErasureCoding;
    options.rs_data = 4;
    options.rs_parity = 2;
    options.span_bytes = 16 * kKiB;
    ft::SpanStore store(regions, rack.far_mem, rack.cpus[0], options);

    std::vector<std::uint8_t> blob(4 * 16 * kKiB);
    for (auto& b : blob) {
      b = static_cast<std::uint8_t>(rng.Below(256));
    }
    auto id = store.Put(blob);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(store.Flush().ok());

    const std::size_t a = trial % rack.memory_node_ids.size();
    const std::size_t b = (trial * 3 + 1) % rack.memory_node_ids.size();
    if (a == b) {
      continue;
    }
    ASSERT_TRUE(rack.cluster->CrashNode(rack.memory_node_ids[a]).ok());
    ASSERT_TRUE(rack.cluster->CrashNode(rack.memory_node_ids[b]).ok());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.Get(*id, out).ok()) << "pair " << a << "," << b;
    EXPECT_EQ(out, blob);
    ASSERT_TRUE(rack.cluster->RecoverNode(rack.memory_node_ids[a]).ok());
    ASSERT_TRUE(rack.cluster->RecoverNode(rack.memory_node_ids[b]).ok());
  }
}

TEST(ScaleTest, ManyConcurrentJobsOnPool) {
  // 24 jobs on the memory-centric pool; everything completes and the pool
  // utilization returns to zero afterwards.
  auto pool = simhw::MakeMemoryCentricPool({});
  rts::Runtime rt(*pool);
  Rng rng(2468);
  std::vector<dataflow::JobId> ids;
  for (int j = 0; j < 24; ++j) {
    auto id = rt.Submit(RandomDag(rng, 6, "scale"));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_TRUE(rt.RunToCompletion().ok());
  EXPECT_EQ(rt.stats().jobs_completed, 24u);
  for (const dataflow::JobId id : ids) {
    (void)rt.ReleaseJobOutputs(id);
  }
  EXPECT_EQ(pool->TotalMemoryUsed(), 0u);
}

}  // namespace
}  // namespace memflow
