// Copyright (c) memflow authors. MIT license.
//
// Tests for the dataflow layer: DAG construction/validation, topological
// ordering, and the TaskContext memory API.

#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/context.h"
#include "dataflow/job.h"
#include "simhw/presets.h"

namespace memflow::dataflow {
namespace {

TaskFn Nop() {
  return [](TaskContext&) { return OkStatus(); };
}

// --- Job DAG ----------------------------------------------------------------------

TEST(JobTest, EmptyJobInvalid) {
  Job job("empty");
  EXPECT_EQ(job.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, TaskWithoutBodyInvalid) {
  Job job("nobody");
  job.AddTask("t", {}, TaskFn{});
  EXPECT_EQ(job.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, LinearChainValidates) {
  Job job("chain");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());
  EXPECT_TRUE(job.Validate().ok());
  EXPECT_EQ(job.Sources(), std::vector<TaskId>{a});
  EXPECT_EQ(job.Sinks(), std::vector<TaskId>{c});
}

TEST(JobTest, CycleDetected) {
  Job job("cycle");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, a).ok());
  EXPECT_EQ(job.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, SelfLoopRejected) {
  Job job("self");
  const TaskId a = job.AddTask("a", {}, Nop());
  EXPECT_EQ(job.Connect(a, a).code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, DuplicateEdgeRejected) {
  Job job("dup");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  EXPECT_EQ(job.Connect(a, b).code(), StatusCode::kAlreadyExists);
}

TEST(JobTest, UnknownTaskEdgeRejected) {
  Job job("bad");
  const TaskId a = job.AddTask("a", {}, Nop());
  EXPECT_EQ(job.Connect(a, TaskId(9)).code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, TopologicalOrderRespectsEdges) {
  // Diamond: a -> {b, c} -> d.
  Job job("diamond");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  const TaskId d = job.AddTask("d", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(a, c).ok());
  ASSERT_TRUE(job.Connect(b, d).ok());
  ASSERT_TRUE(job.Connect(c, d).ok());
  ASSERT_TRUE(job.Validate().ok());

  const auto order = job.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&](TaskId t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(d));
  EXPECT_LT(pos(c), pos(d));
}

TEST(JobTest, CycleIntroducedAfterValidationDetected) {
  Job job("latecycle");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());
  ASSERT_TRUE(job.Validate().ok());
  // Validation is stateless: closing the loop afterwards must be caught by
  // the next Validate() call (the runtime re-validates at admission).
  ASSERT_TRUE(job.Connect(c, a).ok());
  EXPECT_EQ(job.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, DanglingTaskIdsRejectedInBothPositions) {
  Job job("dangling");
  const TaskId a = job.AddTask("a", {}, Nop());
  EXPECT_EQ(job.Connect(TaskId(7), a).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(job.Connect(a, TaskId(7)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(job.Connect(TaskId(5), TaskId(7)).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(job.successors(a).empty());
  EXPECT_TRUE(job.predecessors(a).empty());
}

TEST(JobTest, EdgeOptionsStoredAndDataEdgesFiltered) {
  Job job("edges");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, b, {EdgeMode::kMove}).ok());
  ASSERT_TRUE(job.Connect(a, c, {EdgeMode::kControl}).ok());

  EXPECT_EQ(job.edge_options(a, b).mode, EdgeMode::kMove);
  EXPECT_EQ(job.edge_options(a, c).mode, EdgeMode::kControl);
  // Control edges order execution but carry no data.
  EXPECT_EQ(job.DataSuccessors(a), std::vector<TaskId>{b});
  EXPECT_EQ(job.DataPredecessors(c), std::vector<TaskId>{});
  EXPECT_EQ(job.DataPredecessors(b), std::vector<TaskId>{a});
  // Plain successors still see both.
  EXPECT_EQ(job.successors(a).size(), 2u);
}

TEST(JobTest, WritesInputOnControlEdgeRejected) {
  Job job("cw");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  EdgeOptions options;
  options.mode = EdgeMode::kControl;
  options.writes_input = true;
  EXPECT_EQ(job.Connect(a, b, options).code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, PredecessorsAndSuccessorsTracked) {
  Job job("g");
  const TaskId a = job.AddTask("a", {}, Nop());
  const TaskId b = job.AddTask("b", {}, Nop());
  const TaskId c = job.AddTask("c", {}, Nop());
  ASSERT_TRUE(job.Connect(a, c).ok());
  ASSERT_TRUE(job.Connect(b, c).ok());
  EXPECT_EQ(job.predecessors(c).size(), 2u);
  EXPECT_EQ(job.successors(a), std::vector<TaskId>{c});
}

// --- TaskContext --------------------------------------------------------------------

class TaskContextTest : public ::testing::Test {
 protected:
  TaskContextTest() : host_(simhw::MakeCxlExpansionHost()), mgr_(*host_.cluster) {}

  TaskContext::Init BaseInit() {
    TaskContext::Init init;
    init.regions = &mgr_;
    init.self = region::Principal{1, 1};
    init.device = host_.cpu;
    init.output_observer = host_.cpu;
    init.rng_seed = 7;
    return init;
  }

  simhw::CxlHostHandles host_;
  region::RegionManager mgr_;
};

TEST_F(TaskContextTest, PrivateScratchIsLowLatencyFromOwnDevice) {
  TaskContext ctx(BaseInit());
  auto scratch = ctx.AllocatePrivateScratch(MiB(1));
  ASSERT_TRUE(scratch.ok());
  auto info = mgr_.Info(*scratch);
  ASSERT_TRUE(info.ok());
  auto view = host_.cluster->View(host_.cpu, info->device);
  ASSERT_TRUE(view.ok());
  EXPECT_LE(view->read_latency.ns, 300);
  EXPECT_EQ(ctx.scratch_regions().size(), 1u);
}

TEST_F(TaskContextTest, OutputAllocatedForConsumer) {
  // Consumer runs on the GPU: a large output lands on GPU-fast memory.
  TaskContext::Init init = BaseInit();
  init.output_observer = host_.gpu;
  init.props.mem_latency = region::LatencyClass::kLow;
  TaskContext ctx(std::move(init));
  auto out = ctx.AllocateOutput(MiB(64));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(mgr_.Info(*out)->device, host_.gddr);
}

TEST_F(TaskContextTest, SingleOutputEnforced) {
  TaskContext ctx(BaseInit());
  ASSERT_TRUE(ctx.AllocateOutput(KiB(4)).ok());
  EXPECT_EQ(ctx.AllocateOutput(KiB(4)).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TaskContextTest, ConfidentialTaskGetsConfidentialRegions) {
  TaskContext::Init init = BaseInit();
  init.props.confidential = true;
  TaskContext ctx(std::move(init));
  auto scratch = ctx.AllocatePrivateScratch(KiB(64));
  ASSERT_TRUE(scratch.ok());
  // Another job cannot open it.
  EXPECT_EQ(mgr_.OpenSync(*scratch, region::Principal{2, 9}, host_.cpu).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TaskContextTest, PersistentTaskOutputOnPersistentMedia) {
  TaskContext::Init init = BaseInit();
  init.props.persistent = true;
  TaskContext ctx(std::move(init));
  auto out = ctx.AllocateOutput(MiB(1));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(host_.cluster->memory(mgr_.Info(*out)->device).profile().persistent);
}

TEST_F(TaskContextTest, ChargeAccumulates) {
  TaskContext ctx(BaseInit());
  EXPECT_EQ(ctx.charged().ns, 0);
  ctx.Charge(SimDuration::Micros(5));
  ctx.ChargeCompute(1000.0);  // 1000 work units on a CPU ~ 1000 ns
  EXPECT_GT(ctx.charged().ns, 5000);
}

TEST_F(TaskContextTest, ChargeComputeUsesDeviceSpeed) {
  TaskContext::Init cpu_init = BaseInit();
  cpu_init.props.parallel_fraction = 1.0;
  TaskContext cpu_ctx(std::move(cpu_init));
  cpu_ctx.ChargeCompute(1e6);

  TaskContext::Init gpu_init = BaseInit();
  gpu_init.device = host_.gpu;
  gpu_init.props.parallel_fraction = 1.0;
  TaskContext gpu_ctx(std::move(gpu_init));
  gpu_ctx.ChargeCompute(1e6);

  EXPECT_LT(gpu_ctx.charged().ns, cpu_ctx.charged().ns);
}

TEST_F(TaskContextTest, InputBytesSumsInputs) {
  auto r1 = mgr_.AllocateOn(host_.dram, KiB(64), region::Properties{}, region::Principal{1, 1});
  auto r2 = mgr_.AllocateOn(host_.dram, KiB(32), region::Properties{}, region::Principal{1, 1});
  ASSERT_TRUE(r1.ok() && r2.ok());
  TaskContext::Init init = BaseInit();
  init.inputs = {*r1, *r2};
  TaskContext ctx(std::move(init));
  EXPECT_EQ(ctx.input_bytes(), KiB(96));
}

TEST_F(TaskContextTest, RngDeterministicPerSeed) {
  TaskContext a(BaseInit());
  TaskContext b(BaseInit());
  EXPECT_EQ(a.rng().Next(), b.rng().Next());
}

}  // namespace
}  // namespace memflow::dataflow
