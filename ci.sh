#!/usr/bin/env bash
# memflow CI: plain build + tests, then the same under ASan+UBSan, then the
# parallel-executor test binaries under TSan.
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== build (RelWithDebInfo) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "== test =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== static-analyzer corpus gate =="
# Verify (ownership + MHP + capacity passes, DESIGN.md §6.1/§12) must accept
# every shipped app DAG and every generated corpus job with zero errors, and
# must still flag the deliberately inadmissible negative specs.
./build/tools/verify_corpus

echo "== clang-tidy gate =="
# Enforced only where the binary exists (the CI container does not ship it
# yet). New warnings beyond the committed budget fail; intentional changes:
# update .clang-tidy-budget to the new count printed here.
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_WARNINGS="$(clang-tidy -p build --quiet $(git ls-files 'src/*.cc') 2>/dev/null \
    | grep -c 'warning:' || true)"
  TIDY_BUDGET="$(grep -v '^#' .clang-tidy-budget)"
  echo "clang-tidy: $TIDY_WARNINGS warning(s), budget $TIDY_BUDGET"
  if [[ "$TIDY_WARNINGS" -gt "$TIDY_BUDGET" ]]; then
    echo "clang-tidy gate FAILED: $TIDY_WARNINGS > budget $TIDY_BUDGET" \
         "(fix the new warnings, or re-baseline .clang-tidy-budget)" >&2
    exit 1
  fi
else
  echo "clang-tidy not installed; gate skipped"
fi

echo "== simulation corpus (fixed seeds) =="
# The sim label covers the deterministic harness: the pinned 20-seed corpus,
# the fault-injector ordering contract, and the crash-point sweep.
ctest --test-dir build --output-on-failure -L sim
echo "== simulation batch (randomized, time-boxed) =="
# Fresh base seed per CI run; a failing scenario prints "replay: seed=N" --
# rerun with MEMFLOW_SIM_SEED=N MEMFLOW_SIM_BUDGET_MS=1 to replay it.
SIM_BASE_SEED="${MEMFLOW_SIM_SEED:-$(date +%s)}"
echo "sim batch base seed: $SIM_BASE_SEED"
MEMFLOW_SIM_SEED="$SIM_BASE_SEED" MEMFLOW_SIM_BUDGET_MS="${MEMFLOW_SIM_BUDGET_MS:-5000}" \
  ./build/tests/sim_random_test

echo "== telemetry artifacts =="
# Bench artifact numbers -> BENCH_rts.json (timers skipped: filter matches none).
./build/bench/bench_fig3_mapping --benchmark_filter='^$' --json build/fig3.json >/dev/null
./build/bench/bench_fig4_ownership --benchmark_filter='^$' --json build/fig4.json >/dev/null
./build/bench/bench_throughput --benchmark_filter='^$' --json build/throughput.json >/dev/null
./build/bench/bench_overhead --benchmark_filter='^$' --json build/overhead.json >/dev/null
./build/bench/bench_serving --benchmark_filter='^$' --json build/serving.json >/dev/null
./build/bench/bench_memaccess --benchmark_filter='^$' --json build/memaccess.json >/dev/null
python3 - build/fig3.json build/fig4.json build/throughput.json build/overhead.json \
  build/serving.json build/memaccess.json <<'EOF'
import json, sys
merged = {"benches": [json.load(open(p)) for p in sys.argv[1:]]}
assert all(b["results"] for b in merged["benches"]), "empty bench results"
with open("BENCH_rts.json", "w") as f:
    json.dump(merged, f, indent=1)
EOF
test -s BENCH_rts.json
# End-to-end observability demo: metrics snapshot + Perfetto trace.
./build/examples/observe_runtime build/observe_metrics.json build/observe_trace.json >/dev/null
# Critical-path analyzer demo: job doctor + placement explanation + what-ifs.
./build/examples/explain_job build/explain_profile.json build/explain_trace.json >/dev/null
# Live-dashboard one-shot: the runtime must stay healthy under its own
# time-series observation, and the dashboard JSON + Perfetto counter tracks
# must be machine-readable.
./build/tools/memflow_top --once --jobs 2 --json build/memflow_top.json \
  --counters build/memflow_top_counters.json >/dev/null
# Every exported JSON artifact must parse.
for artifact in build/fig3.json build/fig4.json build/throughput.json \
                build/overhead.json build/serving.json build/memaccess.json \
                BENCH_rts.json \
                build/memflow_top.json build/memflow_top_counters.json \
                build/observe_metrics.json build/observe_trace.json \
                build/explain_profile.json build/explain_trace.json; do
  python3 -m json.tool "$artifact" >/dev/null
done
echo "BENCH_rts.json + telemetry artifacts ok"

echo "== perf-regression gate =="
# Deterministic (virtual-time) bench metrics must stay within tolerance of
# the committed baseline. Intentional changes: cp BENCH_rts.json BENCH_baseline.json
# The --min-improvement floor is a throughput ratchet: the hot-path overhaul
# (DESIGN.md §14) must keep tasks_per_sec_1_worker at >= 2x the PR 7
# baseline of 168.75 tasks/s, even though tasks/s is otherwise informational.
python3 tools/check_bench.py BENCH_baseline.json BENCH_rts.json \
  --tolerance "${MEMFLOW_BENCH_TOLERANCE:-0.10}" \
  --min-improvement tasks_per_sec_1_worker:337.5
# Self-test: the gate must actually fail when a gated metric drifts.
python3 - <<'EOF'
import json, subprocess, sys
doc = json.load(open("BENCH_rts.json"))
for result in doc["benches"][0]["results"]:
    if result["unit"] == "ns" and result["value"] > 0:
        result["value"] = int(result["value"] * 2)
        break
json.dump(doc, open("build/bench_perturbed.json", "w"))
rc = subprocess.run(
    [sys.executable, "tools/check_bench.py", "BENCH_baseline.json",
     "build/bench_perturbed.json"], stdout=subprocess.DEVNULL).returncode
sys.exit(0 if rc != 0 else 1)
EOF
echo "perf gate ok (and fails when perturbed)"

if [[ "$SKIP_SANITIZE" == "1" ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== build (ASan+UBSan) =="
cmake -B build-asan -S . -DMEMFLOW_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
echo "== test (ASan+UBSan) =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
echo "== test (ASan+UBSan: memaccess label) =="
# The access-profiler suite (DESIGN.md §16) as its own sanitizer gate; it
# includes the concurrent sample-while-snapshot hammer.
ctest --test-dir build-asan --output-on-failure -L memaccess
echo "== test (ASan+UBSan: serving label) =="
# Redundant with the full run above, but keeps the serving admission/arrival
# suite visible as its own sanitizer gate (DESIGN.md §15 acceptance).
ctest --test-dir build-asan --output-on-failure -L serving

echo "== build (TSan) =="
cmake -B build-tsan -S . -DMEMFLOW_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target rts_test region_test telemetry_test sim_test \
  arrivals_test serving_test memaccess_test
echo "== test (TSan: executor / regions / telemetry / sim corpus / serving / memaccess) =="
for t in rts_test region_test telemetry_test sim_test arrivals_test serving_test memaccess_test; do
  ./build-tsan/tests/"$t"
done

echo "== ci ok =="
