#!/usr/bin/env bash
# memflow CI: plain build + tests, then the same under ASan+UBSan.
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== build (RelWithDebInfo) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "== test =="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$SKIP_SANITIZE" == "1" ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== build (ASan+UBSan) =="
cmake -B build-asan -S . -DMEMFLOW_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
echo "== test (ASan+UBSan) =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== ci ok =="
