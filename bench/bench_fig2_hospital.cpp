// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Figure 2**: the hospital dataflow — jobs, tasks forming a DAG,
// and declarative properties per task. Runs the five-task pipeline, verifies
// every property is *enforced* (GPU tasks on GPUs, confidential regions
// encrypted+isolated, persistent alerts surviving a crash), and verifies the
// computed results against the host-side reference.

#include <cstdio>

#include "apps/hospital.h"
#include "bench/bench_util.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/analyze/doctor.h"

namespace memflow::bench {
namespace {

void PrintArtifact() {
  PrintHeader("Figure 2 — hospital dataflow with declarative task properties",
              "T1 preprocess {GPU, conf, low-lat}; T2 face recognition {GPU, conf,\n"
              "low-lat}; T3 track hours {CPU, conf, low-lat}; T4 utilization {CPU};\n"
              "T5 alert caregivers {CPU, conf, persistent, low-lat}.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::Runtime runtime(*host.cluster);

  apps::hospital::HospitalSpec spec;
  spec.minutes = 24 * 60;
  spec.staff = 15;
  spec.patients = 40;

  auto report = runtime.SubmitAndRun(apps::hospital::BuildHospitalJob(spec));
  MEMFLOW_CHECK(report.ok() && report->status.ok());

  TextTable table({"Task", "Declared properties", "Ran on", "Output device",
                   "Duration"});
  const auto props_of = [&](const std::string& name) -> std::string {
    if (name == "preprocess" || name == "face-recognition") {
      return "{GPU, confidential, low-lat}";
    }
    if (name == "track-hours") {
      return "{CPU, confidential, low-lat}";
    }
    if (name == "compute-utilization") {
      return "{CPU, public}";
    }
    if (name == "alert-caregivers") {
      return "{CPU, confidential, persistent}";
    }
    return "{confidential}";
  };
  for (const rts::TaskReport& t : report->tasks) {
    std::string out_dev = "-";
    if (t.output.valid()) {
      auto info = runtime.regions().Info(t.output);
      if (info.ok()) {
        out_dev = host.cluster->memory(info->device).name();
      }
    }
    table.AddRow({t.name, props_of(t.name), host.cluster->compute(t.device).name(),
                  out_dev, HumanDuration(t.duration)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Enforcement checks.
  bool gpu_ok = true;
  bool cpu_ok = true;
  region::RegionId alerts;
  for (const rts::TaskReport& t : report->tasks) {
    if (t.name == "preprocess" || t.name == "face-recognition") {
      gpu_ok = gpu_ok && t.device == host.gpu;
    }
    if (t.name == "track-hours" || t.name == "alert-caregivers") {
      cpu_ok = cpu_ok && t.device == host.cpu;
    }
    if (t.name == "alert-caregivers") {
      alerts = t.output;
    }
  }
  const auto alert_info = runtime.regions().Info(alerts);
  const bool persistent_ok =
      alert_info.ok() && host.cluster->memory(alert_info->device).profile().persistent;
  const bool confidential_ok =
      runtime.regions()
          .OpenSync(alerts, region::Principal{4242, 1}, host.cpu)
          .status()
          .code() == StatusCode::kPermissionDenied;

  // Results match the reference.
  const auto expected = apps::hospital::ExpectedHospital(spec);
  std::vector<std::uint32_t> got(expected.alerts.size());
  bool results_ok = false;
  if (alert_info.ok() && alert_info->size == expected.alerts.size() * 4) {
    auto acc = runtime.regions().OpenAsync(alerts, runtime.JobPrincipal(report->id),
                                           host.cpu);
    if (acc.ok() && !got.empty()) {
      acc->EnqueueRead(0, got.data(), got.size() * 4);
      results_ok = acc->Drain().ok() && got == expected.alerts;
    } else {
      results_ok = got.empty();
    }
  }

  std::printf("enforcement: GPU tasks on GPU %s | CPU tasks on CPU %s |\n"
              "alerts persistent %s | alerts isolated from other jobs %s |\n"
              "alert list matches reference %s (%zu alerts)\n\n",
              gpu_ok ? "PASS" : "FAIL", cpu_ok ? "PASS" : "FAIL",
              persistent_ok ? "PASS" : "FAIL", confidential_ok ? "PASS" : "FAIL",
              results_ok ? "PASS" : "FAIL", expected.alerts.size());

  // Where the makespan went: the critical-path doctor over the trace stream
  // (DESIGN.md §11). The buckets sum exactly to the makespan above.
  auto profile = telemetry::analyze::AnalyzeJob(runtime.tracer(), report->id.value);
  MEMFLOW_CHECK(profile.ok() && profile->complete);
  std::printf("%s\n",
              telemetry::analyze::RenderJobDoctor(
                  *profile, telemetry::analyze::ComputeWhatIfs(*profile, &runtime))
                  .c_str());
}

void BM_HospitalPipeline(benchmark::State& state) {
  apps::hospital::HospitalSpec spec;
  spec.minutes = static_cast<int>(state.range(0)) * 60;
  spec.staff = 10;
  spec.patients = 20;
  for (auto _ : state) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    rts::Runtime runtime(*host.cluster);
    auto report = runtime.SubmitAndRun(apps::hospital::BuildHospitalJob(spec));
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_HospitalPipeline)->Arg(6)->Arg(24)->ArgNames({"hours"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
