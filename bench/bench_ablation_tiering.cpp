// Copyright (c) memflow authors. MIT license.
//
// Ablation **A2**: hotness-driven tiering (§3, Challenges 1-3: pointer
// tagging -> hotness -> placement optimization). A Zipf-skewed access stream
// hits 32 regions that all start on the CXL expander; with the tiering daemon
// running between epochs, hot regions migrate into DRAM/HBM and total access
// time drops. Without it, every access keeps paying expander latency.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "region/region_manager.h"
#include "region/tiering.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kBench{84, 1};
constexpr int kRegions = 32;
constexpr std::uint64_t kRegionBytes = MiB(2);
constexpr int kEpochs = 6;
constexpr int kAccessesPerEpoch = 800;

struct StreamResult {
  SimDuration access_time;
  SimDuration migration_time;
  int promoted = 0;
};

StreamResult RunStream(bool enable_tiering, double zipf_theta) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  // Shrink DRAM so tiering must choose: only ~1/4 of the working set fits.
  // (Capacity pressure is what makes the policy interesting.)
  region::RegionManager mgr(*host.cluster);
  std::vector<region::RegionId> regions;
  for (int i = 0; i < kRegions; ++i) {
    auto id = mgr.AllocateOn(host.cxl_dram, kRegionBytes, region::Properties{}, kBench);
    MEMFLOW_CHECK(id.ok());
    regions.push_back(*id);
  }

  region::TieringConfig config;
  config.epoch_budget_bytes = MiB(16);
  region::TieringDaemon daemon(mgr, host.cpu, config);

  Rng rng(31337);
  ZipfGenerator zipf(kRegions, zipf_theta);
  StreamResult result;
  std::vector<char> buf(KiB(64));
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (int a = 0; a < kAccessesPerEpoch; ++a) {
      const auto target = regions[zipf.Sample(rng)];
      auto acc = mgr.OpenAsync(target, kBench, host.cpu);
      MEMFLOW_CHECK(acc.ok());
      acc->EnqueueRead((a % 31) * KiB(64), buf.data(), buf.size());
      auto cost = acc->Drain();
      MEMFLOW_CHECK(cost.ok());
      result.access_time += *cost;
    }
    if (enable_tiering) {
      const region::TieringReport report = daemon.RunEpoch();
      result.migration_time += report.migration_cost;
      result.promoted += report.promoted;
    }
  }
  return result;
}

void PrintArtifact() {
  PrintHeader("Ablation A2 — hotness-driven tiering (pointer-tagging model)",
              "Zipf access stream over 32 x 2 MiB regions starting on the CXL\n"
              "expander; 6 epochs x 800 reads. Tiering promotes hot regions to\n"
              "faster tiers between epochs (budget 16 MiB/epoch).");

  TextTable table({"Skew", "No tiering", "With tiering", "Migration time", "Promoted",
                   "Speedup (incl. migration)"});
  double uniform_speedup = 0;
  double skewed_speedup = 0;
  for (const double theta : {0.0, 0.9, 1.3}) {
    const StreamResult off = RunStream(false, theta);
    const StreamResult on = RunStream(true, theta);
    const double speedup =
        static_cast<double>(off.access_time.ns) /
        static_cast<double>(on.access_time.ns + on.migration_time.ns);
    if (theta == 0.0) {
      uniform_speedup = speedup;
    }
    if (theta == 1.3) {
      skewed_speedup = speedup;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "Zipf theta=%.1f", theta);
    table.AddRow({label, HumanDuration(off.access_time), HumanDuration(on.access_time),
                  HumanDuration(on.migration_time), std::to_string(on.promoted),
                  FormatDouble(speedup, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("check: tiering pays off under skew (%.2fx) much more than under\n"
              "uniform access (%.2fx) -> %s\n\n",
              skewed_speedup, uniform_speedup,
              skewed_speedup > 1.2 && skewed_speedup > uniform_speedup ? "PASS" : "FAIL");
}

void BM_TieringEpoch(benchmark::State& state) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  for (int i = 0; i < kRegions; ++i) {
    (void)mgr.AllocateOn(host.cxl_dram, kRegionBytes, region::Properties{}, kBench);
  }
  region::TieringDaemon daemon(mgr, host.cpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daemon.RunEpoch());
  }
}
BENCHMARK(BM_TieringEpoch);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
