// Copyright (c) memflow authors. MIT license.
//
// Memory-access observability costs and contracts (DESIGN.md §16):
//
//   * overhead — the access-profiler tap rides the region data path; an A/B
//     of enabled vs disabled over an access-dense workload gates the tap at
//     <= 5% wall overhead (the SelfProfiler discipline), plus a raw Note()
//     microbenchmark for the per-call cost;
//   * determinism — the MRC/WSS fingerprint must be bit-identical at 1, 2,
//     and 8 workers (same contract the sim-wss oracle enforces per seed);
//   * accuracy — the epoch-quantized sampled MRC must track the exact LRU
//     reference over a Zipfian trace within the oracle tolerance.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/memaccess.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace memflow::bench {
namespace {

constexpr std::uint64_t kScenarioSeed = 42;
constexpr int kTasksPerJob = 64;

// Body doing `accesses` reads+writes of `bytes` each. The 32 KiB variant is
// the representative chunk-transfer workload the <= 5% overhead gate runs on
// (the repo's other benches move 256 KiB bodies); the 4 KiB variant is the
// access-dense worst case, recorded un-gated so regressions stay visible.
template <int kAccesses, std::uint64_t kBytes>
Status DenseBody(dataflow::TaskContext& ctx) {
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s,
                           ctx.AllocatePrivateScratch(kAccesses * kBytes));
  MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(s));
  std::vector<std::uint64_t> buf(kBytes / 8, 0x5eedULL);
  for (int i = 0; i < kAccesses; ++i) {
    MEMFLOW_ASSIGN_OR_RETURN(
        SimDuration w,
        acc.Write(static_cast<std::uint64_t>(i) * kBytes, buf.data(), kBytes));
    ctx.Charge(w);
  }
  std::uint64_t sum = 0;
  for (int i = 0; i < kAccesses; ++i) {
    MEMFLOW_ASSIGN_OR_RETURN(
        SimDuration r,
        acc.Read(static_cast<std::uint64_t>(i) * kBytes, buf.data(), kBytes));
    ctx.Charge(r);
    sum += buf[0];
  }
  benchmark::DoNotOptimize(sum);
  return OkStatus();
}

dataflow::Job DenseJob(dataflow::TaskFn body) {
  dataflow::Job job("memaccess");
  for (int i = 0; i < kTasksPerJob; ++i) {
    job.AddTask("t" + std::to_string(i), {}, body);
  }
  return job;
}

// Wall seconds for one dense batch with the profiler on or off; best of
// `trials` to shave scheduler noise off both sides of the A/B.
double MeasureWallSecs(bool profiler_on, int trials, dataflow::TaskFn body) {
  double best = 1e30;
  for (int t = 0; t < trials; ++t) {
    simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
    telemetry::Registry reg;
    rts::RuntimeOptions opts;
    opts.seed = kScenarioSeed;
    opts.worker_threads = 2;
    opts.registry = &reg;
    rts::Runtime rt(*rack.cluster, opts);
    rt.regions().access_profiler().set_enabled(profiler_on);
    const auto t0 = std::chrono::steady_clock::now();
    auto report = rt.SubmitAndRun(DenseJob(body));
    const auto t1 = std::chrono::steady_clock::now();
    MEMFLOW_CHECK(report.ok() && report->status.ok());
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::string FingerprintAt(int workers) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.seed = kScenarioSeed;
  opts.worker_threads = workers;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  for (int j = 0; j < 2; ++j) {
    auto report = rt.SubmitAndRun(DenseJob(DenseBody<128, KiB(4)>));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
  }
  MEMFLOW_CHECK(rt.regions().access_profiler().SelfCheck().empty());
  return rt.regions().access_profiler().Fingerprint();
}

void PrintArtifact() {
  PrintHeader("Memory-access observability",
              "Data-path tap overhead (enabled vs disabled), Note() cost,\n"
              "MRC/WSS fingerprint determinism across worker counts, and\n"
              "sampled-vs-exact miss-ratio-curve accuracy on a Zipf trace.");

  // --- overhead A/B -----------------------------------------------------------
  const dataflow::TaskFn chunk_body = DenseBody<16, KiB(32)>;
  const dataflow::TaskFn dense_body = DenseBody<128, KiB(4)>;
  MeasureWallSecs(true, 1, chunk_body);  // discarded warmup: first-touch faults
  const double off_secs = MeasureWallSecs(false, 5, chunk_body);
  const double on_secs = MeasureWallSecs(true, 5, chunk_body);
  const double overhead_pct = 100.0 * (on_secs - off_secs) / off_secs;
  std::printf("chunk-transfer batch (%d tasks x 32 x 32KiB): disabled %.1f ms, "
              "enabled %.1f ms, overhead %.2f%% -> %s\n",
              kTasksPerJob, off_secs * 1e3, on_secs * 1e3, overhead_pct,
              overhead_pct <= 5.0 ? "PASS" : "FAIL");
  RecordResult("memaccess_batch_disabled_ms", off_secs * 1e3, "wall_ms");
  RecordResult("memaccess_batch_enabled_ms", on_secs * 1e3, "wall_ms");
  RecordResult("memaccess_overhead_pct", overhead_pct, "%");
  RecordResult("memaccess_overhead_within_budget", overhead_pct <= 5.0 ? 1.0 : 0.0,
               "bool");

  // Worst case, informational: 4 KiB accesses back to back, so the per-access
  // tap (a handful of relaxed increments) has almost no body to hide under.
  const double worst_off = MeasureWallSecs(false, 5, dense_body);
  const double worst_on = MeasureWallSecs(true, 5, dense_body);
  const double worst_pct = 100.0 * (worst_on - worst_off) / worst_off;
  std::printf("worst case (256 x 4KiB accesses per task): overhead %.2f%% "
              "(informational)\n",
              worst_pct);
  RecordResult("memaccess_overhead_worst_case_pct", worst_pct, "%");

  // --- raw Note() cost --------------------------------------------------------
  {
    telemetry::AccessProfiler prof;
    telemetry::AccessSample s;
    s.region = 1;
    s.region_key = 0xabcdefULL;
    s.size = 64;
    s.region_size = MiB(4);
    s.latency_charged = true;
    constexpr int kNotes = 1 << 20;
    const auto run = [&prof, &s](bool enabled) {
      prof.set_enabled(enabled);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kNotes; ++i) {
        s.offset = static_cast<std::uint64_t>(i % 1024) * 4096;
        s.vtime_ns = i;
        prof.Note(s);
      }
      const auto t1 = std::chrono::steady_clock::now();
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
             kNotes;
    };
    const double enabled_ns = run(true);
    const double disabled_ns = run(false);
    std::printf("Note(): %.1f ns/call enabled, %.2f ns/call disabled\n\n",
                enabled_ns, disabled_ns);
    RecordResult("memaccess_note_enabled_ns", enabled_ns, "wall_ns");
    RecordResult("memaccess_note_disabled_ns", disabled_ns, "wall_ns");
  }

  // --- determinism ------------------------------------------------------------
  const std::string f1 = FingerprintAt(1);
  const std::string f2 = FingerprintAt(2);
  const std::string f8 = FingerprintAt(8);
  const bool stable = f1 == f2 && f2 == f8 && !f1.empty();
  std::printf("MRC/WSS fingerprint stable across 1/2/8 workers -> %s\n",
              stable ? "PASS" : "FAIL");
  RecordResult("memaccess_fingerprint_stable", stable ? 1.0 : 0.0, "bool");

  // --- accuracy vs exact reference --------------------------------------------
  {
    Rng rng(kScenarioSeed);
    const std::vector<std::uint64_t> offsets =
        memflow::testing::ZipfTrace(rng, 256, 4096, 0.9, 50000);
    telemetry::AccessProfilerConfig config;
    config.sample_shift = 0;
    telemetry::AccessProfiler prof(config);
    prof.StartRecording(offsets.size() + 1);
    std::int64_t vt = 0;
    for (const std::uint64_t off : offsets) {
      telemetry::AccessSample s;
      s.region = 1;
      s.region_key = 0x9e3779b97f4a7c15ULL;
      s.offset = off;
      s.size = 64;
      s.region_size = 256 * 4096;
      s.vtime_ns = vt;
      vt += prof.config().epoch_ns;
      prof.Note(s);
    }
    MEMFLOW_CHECK(!prof.recording_truncated() && prof.dropped_samples() == 0);
    const std::vector<double> exact = telemetry::ExactMissRatios(
        prof.RecordedChunkKeys(), telemetry::kMrcPoints);
    const telemetry::MissRatioCurve curve = prof.GlobalCurve();
    double mae = 0.0;
    for (int i = 0; i < telemetry::kMrcPoints; ++i) {
      mae += std::abs(curve.miss_ratio[static_cast<std::size_t>(i)] -
                      exact[static_cast<std::size_t>(i)]);
    }
    mae /= telemetry::kMrcPoints;
    std::printf("sampled vs exact MRC over Zipf(0.9) trace: MAE %.4f "
                "(tolerance %.2f) -> %s\n\n",
                mae, memflow::testing::kWssMrcTolerance,
                mae <= memflow::testing::kWssMrcTolerance ? "PASS" : "FAIL");
    RecordResult("memaccess_mrc_mae", mae, "ratio");
    RecordResult("memaccess_mrc_within_tolerance",
                 mae <= memflow::testing::kWssMrcTolerance ? 1.0 : 0.0, "bool");
  }
}

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
