// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Figure 1**: moving from a compute-centric architecture (every
// server owns its memory; remote memory is unreachable for load/store) to a
// memory-centric one (compute devices share a pooled memory behind a CXL
// switch). The same job mix runs on both. Compute-centric servers strand
// memory — jobs whose scratch does not fit locally fail even though the rack
// has free memory elsewhere; the pool serves them all and reaches higher
// utilization. This is the paper's motivation: "average memory utilization
// ... 50-65%" and overprovisioning costs.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

struct MixResult {
  int completed = 0;
  int failed = 0;
  double peak_utilization = 0;
  SimDuration makespan;
};

// A job that allocates `scratch` of working memory, holds it while "working",
// and finishes. Each job's single task samples cluster utilization at its own
// peak so we can report the high-water mark.
dataflow::Job MakeMemoryHungryJob(std::uint64_t scratch, simhw::Cluster* cluster,
                                  double* peak) {
  dataflow::Job job("hungry-" + std::to_string(scratch / kMiB));
  dataflow::TaskProperties props;
  props.scratch_bytes = scratch;
  props.base_work = 1e6;
  props.parallel_fraction = 0.5;
  // Working memory tolerates pooled-memory latency (the point of Fig. 1b);
  // kLow would demand socket-local DRAM and defeat pooling.
  props.mem_latency = region::LatencyClass::kMedium;
  job.AddTask("work", props, [scratch, cluster, peak](dataflow::TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s, ctx.AllocatePrivateScratch(scratch));
    // Touch a sample of the scratch (first MiB) so the traffic is real.
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(s));
    std::vector<char> buf(std::min<std::uint64_t>(scratch, MiB(1)));
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Write(0, buf.data(), buf.size()));
    ctx.Charge(cost);
    ctx.ChargeCompute(1e6);
    *peak = std::max(*peak, cluster->MemoryUtilization());
    return OkStatus();
  });
  return job;
}

MixResult RunMix(simhw::Cluster& cluster, const std::vector<std::uint64_t>& demands) {
  rts::RuntimeOptions options;
  options.max_task_attempts = 1;
  rts::Runtime runtime(cluster, options);
  MixResult result;
  std::vector<dataflow::JobId> ids;
  for (const std::uint64_t scratch : demands) {
    auto id = runtime.Submit(MakeMemoryHungryJob(scratch, &cluster, &result.peak_utilization));
    if (id.ok()) {
      ids.push_back(*id);
    } else {
      result.failed++;
    }
  }
  MEMFLOW_CHECK(runtime.RunToCompletion().ok());
  SimTime last{};
  for (const dataflow::JobId id : ids) {
    const rts::JobReport& report = runtime.report(id);
    if (report.status.ok()) {
      result.completed++;
      last = std::max(last, report.finished);
    } else {
      result.failed++;
    }
  }
  result.makespan = last - SimTime{};
  return result;
}

void PrintArtifact() {
  PrintHeader("Figure 1 — compute-centric vs memory-centric architecture",
              "Same job mix (scratch demands 0.5-7 GiB) on (a) a 4-server rack where\n"
              "each server owns 8 GiB DRAM (remote DRAM is NOT load/store reachable)\n"
              "and (b) a pool with identical total memory behind a CXL switch.");

  // Job mix: many small, a few large; total demand ~ 60% of rack memory, but
  // the large jobs exceed any single server's free share.
  Rng rng(2024);
  std::vector<std::uint64_t> demands;
  for (int i = 0; i < 12; ++i) {
    demands.push_back(MiB(512) + MiB(256) * rng.Below(4));  // 0.5 - 1.25 GiB
  }
  demands.push_back(GiB(5));
  demands.push_back(GiB(6));
  demands.push_back(GiB(7));  // > one server's DRAM, < the pool

  // (a) Compute-centric rack: 4 servers x 8 GiB DRAM (no PMem to keep the
  // comparison clean), CPU-only.
  auto rack = simhw::MakeComputeCentricRack(
      {.servers = 4, .dram_per_server = GiB(8), .pmem_per_server = 0,
       .gpu_on_every_server = false});
  const MixResult rack_result = RunMix(*rack, demands);

  // (b) Memory-centric pool: same 32 GiB total, 4 CPUs.
  auto pool = simhw::MakeMemoryCentricPool({.cpus = 4,
                                            .gpus = 0,
                                            .tpus = 0,
                                            .fpgas = 0,
                                            .pool_dram = GiB(32),
                                            .pool_gddr = 0,
                                            .pool_pmem = 0,
                                            .pool_cxl_dram = 0,
                                            .local_hbm = 0});
  const MixResult pool_result = RunMix(*pool, demands);

  TextTable table({"Architecture", "Jobs done", "Jobs failed", "Peak mem util",
                   "Makespan"});
  table.AddRow({"Fig 1a: compute-centric rack", std::to_string(rack_result.completed),
                std::to_string(rack_result.failed),
                FormatDouble(rack_result.peak_utilization * 100, 1) + " %",
                HumanDuration(rack_result.makespan)});
  table.AddRow({"Fig 1b: memory-centric pool", std::to_string(pool_result.completed),
                std::to_string(pool_result.failed),
                FormatDouble(pool_result.peak_utilization * 100, 1) + " %",
                HumanDuration(pool_result.makespan)});
  std::printf("%s\n", table.Render().c_str());

  std::printf("check: pool completes all %zu jobs (%d) and beats the rack's peak\n"
              "utilization (%.1f%% vs %.1f%%) -> %s\n\n",
              demands.size(), pool_result.completed, pool_result.peak_utilization * 100,
              rack_result.peak_utilization * 100,
              (pool_result.failed == 0 && rack_result.failed > 0 &&
               pool_result.peak_utilization > rack_result.peak_utilization)
                  ? "PASS"
                  : "FAIL");
  std::printf("The rack strands memory: %d large jobs fail although the rack holds\n"
              "enough total DRAM — the paper's overprovisioning argument.\n\n",
              rack_result.failed);
}

void BM_JobAdmission(benchmark::State& state) {
  auto pool = simhw::MakeMemoryCentricPool({});
  rts::Runtime runtime(*pool);
  double sink = 0;
  for (auto _ : state) {
    auto id = runtime.Submit(MakeMemoryHungryJob(MiB(64), pool.get(), &sink));
    benchmark::DoNotOptimize(id);
    MEMFLOW_CHECK(runtime.RunToCompletion().ok());
  }
}
BENCHMARK(BM_JobAdmission);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
