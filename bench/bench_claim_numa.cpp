// Copyright (c) memflow authors. MIT license.
//
// Reproduces the introduction's claim that "non-uniform memory accesses
// (NUMA) can slow down algorithms by up to 3x" [39, Li et al., data
// shuffling]. A two-socket host shuffles data: NUMA-naive placement puts
// every partition on socket 0's DRAM (so socket 1 pays UPI costs for all its
// accesses); NUMA-aware placement gives each socket its local partitions.

#include <cstdio>

#include "bench/bench_util.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kBench{80, 1};

struct ShuffleResult {
  SimDuration socket0;
  SimDuration socket1;
  SimDuration makespan() const { return std::max(socket0, socket1); }
};

// Each socket reads `bytes` of partition data (partially random, as a shuffle
// re-partitions) and writes half of it back.
ShuffleResult RunShuffle(simhw::Cluster& cluster, simhw::ComputeDeviceId cpu0,
                         simhw::ComputeDeviceId cpu1, simhw::MemoryDeviceId mem_for_0,
                         simhw::MemoryDeviceId mem_for_1, std::uint64_t bytes) {
  const region::AccessHint hint{0.6, 0.7, 1.0};
  auto v0 = cluster.View(cpu0, mem_for_0);
  auto v1 = cluster.View(cpu1, mem_for_1);
  MEMFLOW_CHECK(v0.ok() && v1.ok());
  ShuffleResult result;
  result.socket0 = ExpectedUseCost(*v0, bytes, hint);
  result.socket1 = ExpectedUseCost(*v1, bytes, hint);
  return result;
}

void PrintArtifact() {
  PrintHeader("Intro claim C1 — NUMA can slow algorithms by up to 3x",
              "Data shuffle on a two-socket host: all partitions on socket 0's DRAM\n"
              "(naive) vs socket-local partitions (aware). [Li et al., CIDR'13]");

  simhw::NumaHandles numa = simhw::MakeTwoSocketNuma();
  const std::uint64_t bytes = GiB(1);

  const ShuffleResult aware =
      RunShuffle(*numa.cluster, numa.cpu0, numa.cpu1, numa.dram0, numa.dram1, bytes);
  const ShuffleResult naive =
      RunShuffle(*numa.cluster, numa.cpu0, numa.cpu1, numa.dram0, numa.dram0, bytes);

  TextTable table({"Placement", "Socket 0 time", "Socket 1 time", "Shuffle makespan",
                   "Slowdown"});
  table.AddRow({"NUMA-aware (local partitions)", HumanDuration(aware.socket0),
                HumanDuration(aware.socket1), HumanDuration(aware.makespan()), "1.00x"});
  table.AddRow({"NUMA-naive (all on socket 0)", HumanDuration(naive.socket0),
                HumanDuration(naive.socket1), HumanDuration(naive.makespan()),
                Ratio(static_cast<double>(naive.makespan().ns),
                      static_cast<double>(aware.makespan().ns))});
  std::printf("%s\n", table.Render().c_str());

  const double slowdown = static_cast<double>(naive.makespan().ns) /
                          static_cast<double>(aware.makespan().ns);
  std::printf("measured slowdown: %.2fx (paper: 'up to 3x') -> %s\n\n", slowdown,
              slowdown > 1.5 && slowdown <= 3.5 ? "PASS (in-band)" : "FAIL");

  // And the fix the paper proposes: let declarative allocation handle it.
  // Each socket requests {low latency} scratch; the manager picks the local
  // DRAM automatically.
  region::RegionManager mgr(*numa.cluster);
  region::RegionManager::AllocRequest request;
  request.size = MiB(64);
  request.props = region::Properties::PrivateScratch();
  request.observer = numa.cpu1;
  request.owner = kBench;
  auto id = mgr.Allocate(request);
  MEMFLOW_CHECK(id.ok());
  std::printf("declarative check: socket-1 scratch request resolved to %s -> %s\n\n",
              numa.cluster->memory(mgr.Info(*id)->device).name().c_str(),
              mgr.Info(*id)->device == numa.dram1 ? "PASS (local)" : "FAIL");
}

void BM_LocalVsRemoteAccess(benchmark::State& state) {
  simhw::NumaHandles numa = simhw::MakeTwoSocketNuma();
  region::RegionManager mgr(*numa.cluster);
  const bool remote = state.range(0) != 0;
  auto id = mgr.AllocateOn(remote ? numa.dram0 : numa.dram1, MiB(1), region::Properties{},
                           kBench);
  auto acc = mgr.OpenSync(*id, kBench, numa.cpu1);
  std::vector<char> buf(KiB(4));
  std::int64_t sim_ns = 0;
  for (auto _ : state) {
    auto cost = acc->Read(0, buf.data(), buf.size());
    sim_ns += cost->ns;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["sim_ns_per_op"] =
      benchmark::Counter(static_cast<double>(sim_ns) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_LocalVsRemoteAccess)->Arg(0)->Arg(1)->ArgNames({"remote"});

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
