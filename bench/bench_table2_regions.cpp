// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Table 2**: the three pre-defined Memory Regions — Private
// Scratch {noncoherent, sync}, Global State {coherent, sync}, Global Scratch
// {coherent, async} — allocated from a CPU task and from a GPU task. Shows
// the properties, the physical device each request resolves to per observer,
// and the cost of the region's intended access pattern.

#include <cstdio>

#include "bench/bench_util.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kBench{82, 1};

struct Bundle {
  const char* name;
  const char* purpose;
  region::Properties props;
  region::AccessHint hint;
};

void PrintArtifact() {
  PrintHeader("Table 2 — common Memory Regions",
              "Each named property bundle resolved from a CPU task and a GPU task on\n"
              "the CXL host. The device differs per observer; the properties do not.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);

  const Bundle bundles[] = {
      {"Private Scratch", "Thread-local data", region::Properties::PrivateScratch(),
       {0.3, 0.5, 2.0}},
      {"Global State", "Syncing tasks", region::Properties::GlobalState(), {0.0, 0.5, 4.0}},
      {"Global Scratch", "Data exchange", region::Properties::GlobalScratch(),
       {0.9, 0.6, 1.0}},
  };

  TextTable table({"Name", "Properties", "Purpose", "From CPU", "From GPU",
                   "CPU use cost (1 MiB)"});
  for (const Bundle& bundle : bundles) {
    std::string cpu_dev = "-";
    std::string gpu_dev = "-";
    std::string cost = "-";
    region::RegionManager::AllocRequest request;
    request.size = MiB(1);
    request.props = bundle.props;
    request.hint = bundle.hint;
    request.owner = kBench;

    request.observer = host.cpu;
    auto cpu_id = mgr.Allocate(request);
    if (cpu_id.ok()) {
      const auto dev = mgr.Info(*cpu_id)->device;
      cpu_dev = host.cluster->memory(dev).name();
      auto view = host.cluster->View(host.cpu, dev);
      cost = HumanDuration(ExpectedUseCost(*view, MiB(1), bundle.hint));
      (void)mgr.Free(*cpu_id, kBench);
    }
    request.observer = host.gpu;
    auto gpu_id = mgr.Allocate(request);
    if (gpu_id.ok()) {
      gpu_dev = host.cluster->memory(mgr.Info(*gpu_id)->device).name();
      (void)mgr.Free(*gpu_id, kBench);
    }
    table.AddRow({bundle.name, bundle.props.ToString(), bundle.purpose, cpu_dev, gpu_dev,
                  cost});
  }
  std::printf("%s\n", table.Render().c_str());

  // Interface enforcement: Global Scratch on far memory is async-only.
  auto far_region = mgr.AllocateOn(host.disagg, MiB(1), region::Properties{}, kBench);
  MEMFLOW_CHECK(far_region.ok());
  const bool sync_refused = !mgr.OpenSync(*far_region, kBench, host.cpu).ok();
  const bool async_granted = mgr.OpenAsync(*far_region, kBench, host.cpu).ok();
  std::printf("interface check: far memory refuses sync (%s), grants async (%s) -> %s\n\n",
              sync_refused ? "yes" : "no", async_granted ? "yes" : "no",
              sync_refused && async_granted ? "PASS" : "FAIL");
  (void)mgr.Free(*far_region, kBench);
}

void BM_RegionLifecycle(benchmark::State& state) {
  // Allocate -> open -> 4 KiB write -> free, per named bundle.
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  region::Properties props;
  switch (state.range(0)) {
    case 0:
      props = region::Properties::PrivateScratch();
      break;
    case 1:
      props = region::Properties::GlobalState();
      break;
    default:
      props = region::Properties::GlobalScratch();
      break;
  }
  std::vector<char> buf(KiB(4));
  for (auto _ : state) {
    region::RegionManager::AllocRequest request;
    request.size = KiB(64);
    request.props = props;
    request.observer = host.cpu;
    request.owner = kBench;
    auto id = mgr.Allocate(request);
    auto acc = mgr.OpenAsync(*id, kBench, host.cpu);
    acc->EnqueueWrite(0, buf.data(), buf.size());
    benchmark::DoNotOptimize(acc->Drain());
    (void)mgr.Free(*id, kBench);
  }
}
BENCHMARK(BM_RegionLifecycle)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"bundle"});

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
