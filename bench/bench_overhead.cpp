// Copyright (c) memflow authors. MIT license.
//
// Observability overhead budget (DESIGN.md §13). Observability only earns its
// keep if leaving it on is free enough to never think about, so this bench
// runs the same deterministic batch twice — once with the full telemetry
// stack (trace buffer attached, control-plane self-profiler enabled, snapshot
// ring ticking at the default 1 ms virtual interval) and once with the
// self-profiler disabled and no ring — and gates the wall-clock delta at 5%.
//
// The metrics registry itself stays attached in both legs: counters predate
// the self-profiler and are unconditionally on in every runtime, so the
// measured delta isolates exactly the machinery this budget covers (phase
// timers, lock-wait probes, periodic registry snapshots, trace spans).
//
// Bodies do real memcpy work with no emulated stall (bench_throughput's
// sleeps would flatter the ratio by inflating both legs equally), and the
// comparison takes the min over alternating runs so one scheduler hiccup
// cannot fail the gate. The gated leg runs single-worker; the 8-worker delta
// rides along informationally (less wall to amortize against, more noise).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/timeseries.h"

namespace memflow::bench {
namespace {

constexpr std::uint64_t kBodyBytes = MiB(1);
constexpr int kTasksPerJob = 96;
constexpr int kPairs = 5;
constexpr std::uint64_t kScenarioSeed = 42;
constexpr double kOverheadBudgetPct = 5.0;

Status MemcpyBody(dataflow::TaskContext& ctx) {
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s, ctx.AllocatePrivateScratch(kBodyBytes));
  MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(s));
  std::vector<std::uint64_t> buf(kBodyBytes / 8);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = i * 0x9e3779b97f4a7c15ULL;
  }
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration w, acc.Write(0, buf.data(), kBodyBytes));
  ctx.Charge(w);
  std::uint64_t sum = 0;
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration r, acc.Read(0, buf.data(), kBodyBytes));
  ctx.Charge(r);
  for (const std::uint64_t v : buf) {
    sum += v;
  }
  benchmark::DoNotOptimize(sum);
  ctx.ChargeCompute(1e5);
  return OkStatus();
}

dataflow::Job IndependentTasksJob(int tasks) {
  dataflow::Job job("overhead");
  for (int i = 0; i < tasks; ++i) {
    job.AddTask("t" + std::to_string(i), {}, MemcpyBody);
  }
  return job;
}

// One full job at `workers` threads; returns the wall seconds of
// Submit + RunToCompletion.
double RunOnceSecs(int workers, bool telemetry_on) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
  telemetry::Registry reg;
  telemetry::TraceBuffer tracer;
  telemetry::SnapshotRing ring(&reg, /*capacity=*/256);
  rts::RuntimeOptions opts;
  opts.seed = kScenarioSeed;
  opts.worker_threads = workers;
  opts.registry = &reg;
  if (telemetry_on) {
    opts.tracer = &tracer;
    opts.self_profile = true;
    opts.snapshot_ring = &ring;
    // Default virtual cadence — the configuration the budget is quoted for.
    opts.snapshot_interval = SimDuration::Millis(1);
  } else {
    opts.self_profile = false;
  }
  rts::Runtime rt(*rack.cluster, opts);
  dataflow::Job job = IndependentTasksJob(kTasksPerJob);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = rt.SubmitAndRun(std::move(job));
  const auto t1 = std::chrono::steady_clock::now();
  MEMFLOW_CHECK(report.ok() && report->status.ok());
  MEMFLOW_CHECK(rt.stats().tasks_executed == static_cast<std::uint64_t>(kTasksPerJob));
  return std::chrono::duration<double>(t1 - t0).count();
}

// Min-of-kPairs for each leg, runs alternating so drift hits both equally.
std::pair<double, double> MeasureOnOffSecs(int workers) {
  double on_min = 1e300;
  double off_min = 1e300;
  for (int i = 0; i < kPairs; ++i) {
    off_min = std::min(off_min, RunOnceSecs(workers, /*telemetry_on=*/false));
    on_min = std::min(on_min, RunOnceSecs(workers, /*telemetry_on=*/true));
  }
  return {on_min, off_min};
}

double OverheadPct(const std::pair<double, double>& on_off) {
  return 100.0 * (on_off.first - on_off.second) / on_off.second;
}

void PrintArtifact() {
  PrintHeader("Telemetry overhead budget",
              "Wall-clock cost of the full observability stack (self-profiler,\n"
              "snapshot ring, trace spans) vs the same workload with it off.");

  const std::pair<double, double> w1 = MeasureOnOffSecs(1);
  const std::pair<double, double> w8 = MeasureOnOffSecs(8);
  const double pct1 = OverheadPct(w1);
  const double pct8 = OverheadPct(w8);

  TextTable table({"Workers", "Telemetry off", "Telemetry on", "Overhead"});
  table.AddRow({"1", FormatDouble(w1.second * 1e3, 2) + " ms",
                FormatDouble(w1.first * 1e3, 2) + " ms", FormatDouble(pct1, 2) + "%"});
  table.AddRow({"8", FormatDouble(w8.second * 1e3, 2) + " ms",
                FormatDouble(w8.first * 1e3, 2) + " ms", FormatDouble(pct8, 2) + "%"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("check: overhead at 1 worker within %.0f%% budget -> %s\n\n",
              kOverheadBudgetPct, pct1 <= kOverheadBudgetPct ? "PASS" : "FAIL");

  const auto attrs = [](int workers) {
    return std::vector<std::pair<std::string, std::string>>{
        {"scenario_seed", std::to_string(kScenarioSeed)},
        {"workers", std::to_string(workers)},
        {"pairs", std::to_string(kPairs)}};
  };
  RecordResult("telemetry_overhead_pct_1_worker", pct1, "%", attrs(1));
  RecordResult("telemetry_overhead_pct_8_workers", pct8, "%", attrs(8));
  RecordResult("telemetry_off_wall_ns_1_worker", w1.second * 1e9, "wall_ns", attrs(1));
  RecordResult("telemetry_on_wall_ns_1_worker", w1.first * 1e9, "wall_ns", attrs(1));
  RecordResult("telemetry_overhead_within_budget",
               pct1 <= kOverheadBudgetPct ? 1.0 : 0.0, "bool", attrs(1));
}

void BM_JobWithTelemetry(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOnceSecs(/*workers=*/1, on));
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerJob);
}
BENCHMARK(BM_JobWithTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
