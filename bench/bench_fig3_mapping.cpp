// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Figure 3**: mapping logical Memory Regions to physical memory
// depends on the compute device. The identical declarative request — "fast
// local scratch" — is allocated once from a CPU task's point of view and once
// from a GPU task's: the runtime resolves it to DRAM vs GDDR. The harness
// also quantifies what ignoring the observer costs (fixed placement).

#include <cstdio>

#include "bench/bench_util.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kBench{78, 1};

void PrintArtifact() {
  PrintHeader("Figure 3 — logical->physical mapping depends on the compute device",
              "The same request {fast local scratch, 64 MiB} resolves to different\n"
              "physical devices per observer; fixed placement pays a penalty.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);

  const std::uint64_t size = MiB(64);
  const region::AccessHint hint{0.5, 0.6, 2.0};  // mixed working-set traffic

  struct Observer {
    const char* name;
    const char* key;  // stable name for --json results
    simhw::ComputeDeviceId device;
  };
  const Observer observers[] = {{"CPU task", "cpu", host.cpu},
                                {"GPU task", "gpu", host.gpu}};

  TextTable table({"Requesting task", "Request", "Resolved device", "Use cost",
                   "Cost if fixed on DRAM", "Cost if fixed on GDDR"});

  for (const Observer& obs : observers) {
    region::RegionManager::AllocRequest request;
    request.size = size;
    request.props = region::Properties::PrivateScratch();
    request.hint = hint;
    request.observer = obs.device;
    request.owner = kBench;
    auto id = mgr.Allocate(request);
    MEMFLOW_CHECK(id.ok());
    const auto info = mgr.Info(*id);
    MEMFLOW_CHECK(info.ok());

    auto chosen_view = host.cluster->View(obs.device, info->device);
    auto dram_view = host.cluster->View(obs.device, host.dram);
    auto gddr_view = host.cluster->View(obs.device, host.gddr);
    MEMFLOW_CHECK(chosen_view.ok() && dram_view.ok() && gddr_view.ok());

    table.AddRow({obs.name, "{low latency, sync, 64 MiB}",
                  host.cluster->memory(info->device).name(),
                  HumanDuration(ExpectedUseCost(*chosen_view, size, hint)),
                  HumanDuration(ExpectedUseCost(*dram_view, size, hint)),
                  HumanDuration(ExpectedUseCost(*gddr_view, size, hint))});
    const std::string prefix = std::string("fig3.") + obs.key;
    RecordResult(prefix + ".use_cost_ns",
                 static_cast<double>(ExpectedUseCost(*chosen_view, size, hint).ns), "ns");
    RecordResult(prefix + ".fixed_dram_cost_ns",
                 static_cast<double>(ExpectedUseCost(*dram_view, size, hint).ns), "ns");
    RecordResult(prefix + ".fixed_gddr_cost_ns",
                 static_cast<double>(ExpectedUseCost(*gddr_view, size, hint).ns), "ns");
    (void)mgr.Free(*id, kBench);
  }
  std::printf("%s\n", table.Render().c_str());

  // The headline check: CPU -> DRAM-class, GPU -> GDDR.
  region::RegionManager::AllocRequest cpu_req;
  cpu_req.size = size;
  cpu_req.props = region::Properties::PrivateScratch();
  cpu_req.hint = hint;
  cpu_req.observer = host.cpu;
  cpu_req.owner = kBench;
  auto cpu_id = mgr.Allocate(cpu_req);
  auto gpu_req = cpu_req;
  gpu_req.observer = host.gpu;
  auto gpu_id = mgr.Allocate(gpu_req);
  MEMFLOW_CHECK(cpu_id.ok() && gpu_id.ok());
  const auto cpu_dev = mgr.Info(*cpu_id)->device;
  const auto gpu_dev = mgr.Info(*gpu_id)->device;
  const bool observer_relative = cpu_dev != gpu_dev && gpu_dev == host.gddr;
  std::printf("check: CPU scratch on %s, GPU scratch on %s -> %s\n\n",
              host.cluster->memory(cpu_dev).name().c_str(),
              host.cluster->memory(gpu_dev).name().c_str(),
              observer_relative ? "PASS (observer-relative)" : "FAIL");
  RecordResult("fig3.observer_relative", observer_relative ? 1 : 0, "bool");
  (void)mgr.Free(*cpu_id, kBench);
  (void)mgr.Free(*gpu_id, kBench);
}

void BM_DeclarativeAllocate(benchmark::State& state) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  region::RegionManager::AllocRequest request;
  request.size = MiB(1);
  request.props = region::Properties::PrivateScratch();
  request.observer = host.cpu;
  request.owner = kBench;
  for (auto _ : state) {
    auto id = mgr.Allocate(request);
    benchmark::DoNotOptimize(id);
    (void)mgr.Free(*id, kBench);
  }
}
BENCHMARK(BM_DeclarativeAllocate);

void BM_ExplicitAllocate(benchmark::State& state) {
  // Baseline: the traditional model (caller names the device) — shows the
  // bookkeeping cost of declarative matching.
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  for (auto _ : state) {
    auto id = mgr.AllocateOn(host.dram, MiB(1), region::Properties{}, kBench);
    benchmark::DoNotOptimize(id);
    (void)mgr.Free(*id, kBench);
  }
}
BENCHMARK(BM_ExplicitAllocate);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
