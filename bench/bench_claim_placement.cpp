// Copyright (c) memflow authors. MIT license.
//
// Reproduces the introduction's claim that "a naive data placement in a
// heterogeneous storage landscape can reduce a database system's performance
// by up to 3x" [59, Mosaic]. A database of tables with Zipf-skewed access
// heat is placed across DRAM / PMem / SSD / HDD either naively (round-robin,
// heat-blind) or heat-aware (hottest tables on the fastest tier that has
// room, greedy by heat density) — then the same scan workload is costed.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

struct TableInfo {
  std::uint64_t bytes;
  double scans_per_day;  // heat
};

std::vector<TableInfo> MakeDatabase(int tables, Rng& rng) {
  // Sizes log-uniform 64 MiB..1 GiB; heat Zipf by a *shuffled* rank, so
  // creation order carries no heat information (as in a real schema, where
  // hot tables are not the ones created first).
  std::vector<int> rank(static_cast<std::size_t>(tables));
  std::iota(rank.begin(), rank.end(), 0);
  for (int t = tables - 1; t > 0; --t) {
    std::swap(rank[static_cast<std::size_t>(t)],
              rank[rng.Below(static_cast<std::uint64_t>(t) + 1)]);
  }
  std::vector<TableInfo> db;
  for (int t = 0; t < tables; ++t) {
    const std::uint64_t bytes = MiB(64) << rng.Below(5);
    const double heat = 1000.0 / std::pow(rank[static_cast<std::size_t>(t)] + 1, 1.1);
    db.push_back({bytes, heat});
  }
  return db;
}

// Total simulated scan time of the whole workload under a placement. The
// database keeps a DRAM buffer cache that absorbs `hit_rate` of scan traffic
// (as Mosaic's measured systems do); misses stream from the table's tier.
constexpr double kBufferCacheHitRate = 0.75;

SimDuration WorkloadCost(simhw::Cluster& cluster, simhw::ComputeDeviceId cpu,
                         simhw::MemoryDeviceId dram, const std::vector<TableInfo>& db,
                         const std::vector<simhw::MemoryDeviceId>& placement) {
  auto dram_view = cluster.View(cpu, dram);
  MEMFLOW_CHECK(dram_view.ok());
  SimDuration total{};
  for (std::size_t t = 0; t < db.size(); ++t) {
    auto view = cluster.View(cpu, placement[t]);
    MEMFLOW_CHECK(view.ok());
    const SimDuration hit = dram_view->ReadCost(db[t].bytes, /*sequential=*/true);
    const SimDuration miss = view->ReadCost(db[t].bytes, /*sequential=*/true);
    const double per_scan = kBufferCacheHitRate * static_cast<double>(hit.ns) +
                            (1.0 - kBufferCacheHitRate) * static_cast<double>(miss.ns);
    total += SimDuration::Nanos(static_cast<std::int64_t>(per_scan * db[t].scans_per_day));
  }
  return total;
}

void PrintArtifact() {
  PrintHeader("Intro claim C2 — naive placement in heterogeneous storage costs up to 3x",
              "20-table database, shuffled Zipf heat, tiers DRAM/PMem/SSD. Naive =\n"
              "creation-order fill; aware = greedy by heat density. 75% buffer-cache\n"
              "hit rate absorbs most traffic, as in the measured systems.\n"
              "[Vogel et al., Mosaic, VLDB'20]");

  simhw::TieredHandles host = simhw::MakeTieredStorageHost(GiB(1), GiB(2), GiB(32), GiB(256));
  Rng rng(4242);
  const std::vector<TableInfo> db = MakeDatabase(20, rng);
  // DRAM / PMem / SSD, as in Mosaic's main configurations (HDD-only tiers
  // produce arbitrarily large factors and are excluded from the claim).
  const std::vector<simhw::MemoryDeviceId> tiers = {host.dram, host.pmem, host.ssd};

  // Naive: fill the fastest tier in table-creation order until it is full,
  // then the next — the classic heat-blind policy real systems default to.
  std::vector<simhw::MemoryDeviceId> naive(db.size());
  {
    std::vector<std::uint64_t> used(tiers.size(), 0);
    for (std::size_t t = 0; t < db.size(); ++t) {
      for (std::size_t tier = 0; tier < tiers.size(); ++tier) {
        if (used[tier] + db[t].bytes <= host.cluster->memory(tiers[tier]).capacity()) {
          naive[t] = tiers[tier];
          used[tier] += db[t].bytes;
          break;
        }
      }
    }
  }

  // Heat-aware: sort by heat density (scans/byte), fill fastest tiers first.
  std::vector<simhw::MemoryDeviceId> aware(db.size());
  {
    std::vector<std::size_t> order(db.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return db[a].scans_per_day / static_cast<double>(db[a].bytes) >
             db[b].scans_per_day / static_cast<double>(db[b].bytes);
    });
    std::vector<std::uint64_t> used(tiers.size(), 0);
    for (const std::size_t t : order) {
      for (std::size_t tier = 0; tier < tiers.size(); ++tier) {
        if (used[tier] + db[t].bytes <= host.cluster->memory(tiers[tier]).capacity()) {
          aware[t] = tiers[tier];
          used[tier] += db[t].bytes;
          break;
        }
      }
    }
  }

  const SimDuration naive_cost =
      WorkloadCost(*host.cluster, host.cpu, host.dram, db, naive);
  const SimDuration aware_cost =
      WorkloadCost(*host.cluster, host.cpu, host.dram, db, aware);

  TextTable table({"Placement", "Daily scan time", "Slowdown"});
  table.AddRow({"heat-aware (what the RTS computes)", HumanDuration(aware_cost), "1.00x"});
  table.AddRow({"naive round-robin", HumanDuration(naive_cost),
                Ratio(static_cast<double>(naive_cost.ns),
                      static_cast<double>(aware_cost.ns))});
  std::printf("%s\n", table.Render().c_str());

  const double slowdown =
      static_cast<double>(naive_cost.ns) / static_cast<double>(aware_cost.ns);
  std::printf("measured slowdown: %.2fx (paper: 'up to 3x') -> %s\n\n", slowdown,
              slowdown > 1.5 && slowdown < 8.0 ? "PASS (in-band)" : "FAIL");

  // Show per-tier assignment for the aware placement (the interesting one).
  TextTable detail({"Table", "Size", "Scans/day", "Naive tier", "Aware tier"});
  for (std::size_t t = 0; t < db.size(); ++t) {
    detail.AddRow({"T" + std::to_string(t), HumanBytes(db[t].bytes),
                   FormatDouble(db[t].scans_per_day, 1),
                   host.cluster->memory(naive[t]).name(),
                   host.cluster->memory(aware[t]).name()});
  }
  std::printf("%s\n", detail.Render().c_str());
}

void BM_PlacementDecision(benchmark::State& state) {
  // Wall-clock cost of ranking all devices for one declarative request.
  simhw::TieredHandles host = simhw::MakeTieredStorageHost();
  region::RegionManager mgr(*host.cluster);
  region::RegionManager::AllocRequest request;
  request.size = MiB(64);
  request.props = region::Properties{};
  request.observer = host.cpu;
  request.owner = region::Principal{81, 1};
  for (auto _ : state) {
    auto ranked = mgr.RankDevices(request, request.props);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_PlacementDecision);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
