// Copyright (c) memflow authors. MIT license.
//
// Ablation **A3**: stop-and-restart fault tolerance via output checkpointing
// (paper §3, Challenge 8, limitation (3)). A pipeline of N stages crashes at
// the last stage and is resubmitted. Without checkpoints, the restart re-runs
// everything; with them, completed stages restore from persistent media. The
// trade: checkpoint write overhead on the healthy path vs re-execution saved
// on restart.

#include <cstdio>

#include "bench/bench_util.h"
#include "rts/checkpoint.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

using dataflow::Job;
using dataflow::TaskContext;
using dataflow::TaskId;

constexpr int kStages = 8;
constexpr std::uint64_t kStageBytes = MiB(4);
constexpr double kStageWork = 3e6;

// An N-stage pipeline; stage `poison_stage` fails (once) if >= 0.
Job MakePipeline(const char* name, int poison_stage) {
  Job job(name);
  TaskId prev;
  for (int s = 0; s < kStages; ++s) {
    dataflow::TaskProperties props;
    props.output_bytes = kStageBytes;
    props.base_work = kStageWork;
    props.parallel_fraction = 0.7;
    const bool poisoned = s == poison_stage;
    const TaskId t = job.AddTask(
        "stage" + std::to_string(s), props, [poisoned](TaskContext& ctx) -> Status {
          if (poisoned) {
            return Unavailable("injected failure");
          }
          // Touch inputs, produce the next stage's buffer.
          if (!ctx.inputs().empty()) {
            MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor in,
                                     ctx.OpenAsync(ctx.inputs().front()));
            std::vector<std::uint8_t> data(in.size());
            in.EnqueueRead(0, data.data(), data.size());
            MEMFLOW_ASSIGN_OR_RETURN(SimDuration rc, in.Drain());
            ctx.Charge(rc);
          }
          MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(kStageBytes));
          MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor oa, ctx.OpenAsync(out));
          std::vector<std::uint8_t> payload(kStageBytes, 0x5a);
          oa.EnqueueWrite(0, payload.data(), payload.size());
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration wc, oa.Drain());
          ctx.Charge(wc);
          ctx.ChargeCompute(kStageWork);
          return OkStatus();
        });
    if (s > 0) {
      MEMFLOW_CHECK(job.Connect(prev, t).ok());
    }
    prev = t;
  }
  return job;
}

SimDuration RunOnce(simhw::Cluster& cluster, Job job) {
  rts::RuntimeOptions options;
  options.max_task_attempts = 1;
  rts::Runtime rt(cluster, options);
  auto report = rt.SubmitAndRun(std::move(job));
  MEMFLOW_CHECK(report.ok());
  return report->Makespan();
}

void PrintArtifact() {
  PrintHeader("Ablation A3 — checkpoint/restart fault tolerance (Challenge 8)",
              "8-stage pipeline (4 MiB/stage) crashes at the final stage and is\n"
              "resubmitted. Checkpointed runs restore completed stages from PMem\n"
              "instead of re-executing them.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();

  // Healthy-path overhead.
  const SimDuration plain_healthy = RunOnce(*host.cluster, MakePipeline("plain", -1));
  SimDuration ckpt_healthy;
  {
    rts::JobCheckpointer ckpt(*host.cluster, host.pmem);
    ckpt_healthy = RunOnce(*host.cluster, ckpt.Instrument(MakePipeline("ck-h", -1)));
  }

  // Crash-at-the-end and restart: total time to a successful completion.
  const SimDuration plain_crashed =
      RunOnce(*host.cluster, MakePipeline("plain-crash", kStages - 1));
  const SimDuration plain_restart = RunOnce(*host.cluster, MakePipeline("plain-crash", -1));
  const SimDuration plain_total = plain_crashed + plain_restart;

  SimDuration ckpt_crashed;
  SimDuration ckpt_restart;
  std::uint64_t restored = 0;
  {
    rts::JobCheckpointer ckpt(*host.cluster, host.pmem);
    ckpt_crashed =
        RunOnce(*host.cluster, ckpt.Instrument(MakePipeline("ck-crash", kStages - 1)));
    ckpt_restart = RunOnce(*host.cluster, ckpt.Instrument(MakePipeline("ck-crash", -1)));
    restored = ckpt.stats().tasks_restored;
  }
  const SimDuration ckpt_total = ckpt_crashed + ckpt_restart;

  TextTable table({"Strategy", "Healthy run", "Failed run", "Restart",
                   "Total (crash+restart)"});
  table.AddRow({"no checkpoints (full re-run)", HumanDuration(plain_healthy),
                HumanDuration(plain_crashed), HumanDuration(plain_restart),
                HumanDuration(plain_total)});
  table.AddRow({"output checkpoints on PMem", HumanDuration(ckpt_healthy),
                HumanDuration(ckpt_crashed), HumanDuration(ckpt_restart),
                HumanDuration(ckpt_total)});
  std::printf("%s\n", table.Render().c_str());

  const double overhead = static_cast<double>(ckpt_healthy.ns) /
                          static_cast<double>(plain_healthy.ns);
  const double recovery_speedup =
      static_cast<double>(plain_restart.ns) / static_cast<double>(ckpt_restart.ns);
  std::printf("healthy-path overhead %.2fx; restart %.1fx faster (%llu stages restored)\n",
              overhead, recovery_speedup, static_cast<unsigned long long>(restored));
  std::printf("check: restart speedup > overhead, total-with-crash lower -> %s\n\n",
              (recovery_speedup > overhead && ckpt_total.ns < plain_total.ns) ? "PASS"
                                                                              : "FAIL");
}

void BM_CheckpointedPipeline(benchmark::State& state) {
  const bool with_ckpt = state.range(0) != 0;
  for (auto _ : state) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    if (with_ckpt) {
      rts::JobCheckpointer ckpt(*host.cluster, host.pmem);
      benchmark::DoNotOptimize(
          RunOnce(*host.cluster, ckpt.Instrument(MakePipeline("bm", -1))));
    } else {
      benchmark::DoNotOptimize(RunOnce(*host.cluster, MakePipeline("bm", -1)));
    }
  }
}
BENCHMARK(BM_CheckpointedPipeline)->Arg(0)->Arg(1)->ArgNames({"ckpt"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
