// Copyright (c) memflow authors. MIT license.
//
// Reproduces **§2.2(3)**: "If memory is 'far away', we should switch to an
// asynchronous interface that fetches memory in the background ...
// Asynchronous accesses improve the accelerator's utilization and overall
// throughput." Sweeps device distance (DRAM -> CXL -> far memory) and the
// async queue depth; reports the throughput of 256 random 4 KiB reads under
// each interface. The async advantage must *grow* with distance.

#include <cstdio>

#include "bench/bench_util.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kBench{83, 1};
constexpr int kOps = 256;
constexpr std::uint64_t kOpBytes = KiB(4);

// Total simulated time for kOps random reads through the given interface.
SimDuration RunSyncReads(region::RegionManager& mgr, region::RegionId id,
                         simhw::ComputeDeviceId cpu) {
  auto acc = mgr.OpenSync(id, kBench, cpu);
  MEMFLOW_CHECK(acc.ok());
  std::vector<char> buf(kOpBytes);
  SimDuration total{};
  std::uint64_t pos = 0;
  for (int i = 0; i < kOps; ++i) {
    auto cost = acc->Read(pos, buf.data(), kOpBytes);
    MEMFLOW_CHECK(cost.ok());
    total += *cost;
    pos = (pos + 7919 * kOpBytes) % (MiB(4) - kOpBytes);
  }
  return total;
}

SimDuration RunAsyncReads(region::RegionManager& mgr, region::RegionId id,
                          simhw::ComputeDeviceId cpu, int depth) {
  auto acc = mgr.OpenAsync(id, kBench, cpu);
  MEMFLOW_CHECK(acc.ok());
  acc->set_queue_depth(depth);
  std::vector<std::vector<char>> bufs(kOps, std::vector<char>(kOpBytes));
  std::uint64_t pos = 0;
  for (int i = 0; i < kOps; ++i) {
    acc->EnqueueRead(pos, bufs[static_cast<std::size_t>(i)].data(), kOpBytes);
    pos = (pos + 7919 * kOpBytes) % (MiB(4) - kOpBytes);
  }
  auto total = acc->Drain();
  MEMFLOW_CHECK(total.ok());
  return *total;
}

void PrintArtifact() {
  PrintHeader("§2.2(3) — asynchronous interfaces for far memory",
              "256 random 4 KiB reads per device. Sync pays full latency per access;\n"
              "async overlaps a window of in-flight requests. The async win grows\n"
              "with distance — the paper's rationale for per-region interfaces.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);

  struct Target {
    const char* name;
    simhw::MemoryDeviceId device;
    bool sync_possible;
  };
  const Target targets[] = {
      {"DRAM (near)", host.dram, true},
      {"CXL-DRAM (middle)", host.cxl_dram, true},
      {"Disagg. mem (far)", host.disagg, false},
  };

  TextTable table({"Device", "Sync", "Async d=4", "Async d=16", "Async d=64",
                   "Best async speedup"});
  double near_speedup = 0;
  double far_speedup = 0;
  for (const Target& target : targets) {
    auto id = mgr.AllocateOn(target.device, MiB(4), region::Properties{}, kBench);
    MEMFLOW_CHECK(id.ok());
    std::string sync_cell = "refused (async-only)";
    SimDuration sync_total{};
    if (target.sync_possible) {
      sync_total = RunSyncReads(mgr, *id, host.cpu);
      sync_cell = HumanDuration(sync_total);
    } else {
      // For the async-only device, compare against depth-1 async (equivalent
      // of a blocking interface).
      sync_total = RunAsyncReads(mgr, *id, host.cpu, 1);
      sync_cell = HumanDuration(sync_total) + " (d=1)";
    }
    const SimDuration d4 = RunAsyncReads(mgr, *id, host.cpu, 4);
    const SimDuration d16 = RunAsyncReads(mgr, *id, host.cpu, 16);
    const SimDuration d64 = RunAsyncReads(mgr, *id, host.cpu, 64);
    const SimDuration best = std::min({d4, d16, d64});
    const double speedup =
        static_cast<double>(sync_total.ns) / static_cast<double>(best.ns);
    if (target.device == host.dram) {
      near_speedup = speedup;
    }
    if (target.device == host.disagg) {
      far_speedup = speedup;
    }
    table.AddRow({target.name, sync_cell, HumanDuration(d4), HumanDuration(d16),
                  HumanDuration(d64),
                  Ratio(static_cast<double>(sync_total.ns), static_cast<double>(best.ns))});
    (void)mgr.Free(*id, kBench);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("check: async speedup on far memory (%.1fx) exceeds near memory (%.1fx)\n"
              "-> %s\n\n",
              far_speedup, near_speedup,
              far_speedup > near_speedup * 1.5 && far_speedup > 2.0 ? "PASS" : "FAIL");
}

void BM_AsyncDrain(benchmark::State& state) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  auto id = mgr.AllocateOn(host.cxl_dram, MiB(4), region::Properties{}, kBench);
  std::vector<std::vector<char>> bufs(64, std::vector<char>(kOpBytes));
  for (auto _ : state) {
    auto acc = mgr.OpenAsync(*id, kBench, host.cpu);
    for (int i = 0; i < 64; ++i) {
      acc->EnqueueRead(static_cast<std::uint64_t>(i) * kOpBytes,
                       bufs[static_cast<std::size_t>(i)].data(), kOpBytes);
    }
    benchmark::DoNotOptimize(acc->Drain());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * kOpBytes);
}
BENCHMARK(BM_AsyncDrain);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
