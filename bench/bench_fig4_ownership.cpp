// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Figure 4**: tasks and typed memory regions — the "out" of one
// task becomes the "in" of the next by *ownership transfer*. Sweeps the
// handover size and compares:
//   (a) memflow: ownership transfer (zero-copy when the consumer's device can
//       address the region with the declared properties),
//   (b) traditional: allocate a new input buffer and physically copy,
// and shows the fallback case where the runtime must migrate (GPU -> CPU with
// a strict latency class).

#include <cstdio>

#include "bench/bench_util.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kProducer{79, 1};
constexpr region::Principal kConsumer{79, 2};

// Simulated cost of the traditional model: copy the region into a fresh
// buffer near the consumer.
SimDuration CopyCost(simhw::Cluster& cluster, simhw::ComputeDeviceId consumer,
                     simhw::MemoryDeviceId src, simhw::MemoryDeviceId dst,
                     std::uint64_t bytes) {
  auto read = cluster.View(consumer, src);
  auto write = cluster.View(consumer, dst);
  MEMFLOW_CHECK(read.ok() && write.ok());
  return read->ReadCost(bytes, true) + write->WriteCost(bytes, true);
}

void PrintArtifact() {
  PrintHeader("Figure 4 — handover by ownership transfer vs physical copy",
              "Producer output becomes consumer input. Transfer is O(1) bookkeeping\n"
              "when the region is addressable by both; the traditional model copies.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();

  TextTable table({"Handover size", "Ownership transfer", "Traditional copy", "Speedup"});
  for (const std::uint64_t mib : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
    const std::uint64_t bytes = MiB(mib);
    region::RegionManager mgr(*host.cluster);
    region::RegionManager::AllocRequest request;
    request.size = bytes;
    request.props = region::Properties{};  // relaxed: both CPUs can address it
    request.observer = host.cpu;
    request.owner = kProducer;
    auto id = mgr.Allocate(request);
    MEMFLOW_CHECK(id.ok());
    const auto src_dev = mgr.Info(*id)->device;

    auto transfer_cost = mgr.Transfer(*id, kProducer, kConsumer, host.cpu);
    MEMFLOW_CHECK(transfer_cost.ok());
    const SimDuration copy = CopyCost(*host.cluster, host.cpu, src_dev, src_dev, bytes);

    table.AddRow({HumanBytes(bytes), HumanDuration(*transfer_cost), HumanDuration(copy),
                  transfer_cost->ns == 0
                      ? "inf (zero-copy)"
                      : Ratio(static_cast<double>(copy.ns),
                              static_cast<double>(transfer_cost->ns))});
    const std::string prefix = "fig4." + std::to_string(mib) + "mib";
    RecordResult(prefix + ".transfer_ns", static_cast<double>(transfer_cost->ns), "ns");
    RecordResult(prefix + ".copy_ns", static_cast<double>(copy.ns), "ns");
    (void)mgr.Free(*id, kConsumer);
  }
  std::printf("%s\n", table.Render().c_str());

  // Fallback: the new observer cannot satisfy the properties -> the runtime
  // migrates (the "or copied after the first task is done" case).
  {
    region::RegionManager mgr(*host.cluster);
    region::RegionManager::AllocRequest request;
    request.size = MiB(64);
    request.props = region::Properties::PrivateScratch();  // low latency, sync
    request.observer = host.gpu;
    request.owner = kProducer;
    auto id = mgr.Allocate(request);
    MEMFLOW_CHECK(id.ok());
    const auto before = mgr.Info(*id)->device;
    auto cost = mgr.Transfer(*id, kProducer, kConsumer, host.cpu);
    MEMFLOW_CHECK(cost.ok());
    const auto after = mgr.Info(*id)->device;
    std::printf("fallback: {low-latency} region on %s handed GPU->CPU: migrated to %s,\n"
                "cost %s (a copy, charged by the runtime, invisible to the app)\n\n",
                host.cluster->memory(before).name().c_str(),
                host.cluster->memory(after).name().c_str(),
                HumanDuration(*cost).c_str());
    std::printf("check: zero-copy for relaxed properties, migration for strict -> %s\n\n",
                (before == host.gddr && after != host.gddr) ? "PASS" : "FAIL");
    RecordResult("fig4.fallback_migration_ns", static_cast<double>(cost->ns), "ns");
    RecordResult("fig4.fallback_migrated",
                 (before == host.gddr && after != host.gddr) ? 1 : 0, "bool");
  }
}

void BM_OwnershipTransfer(benchmark::State& state) {
  // Wall-clock cost of the Transfer operation itself (pure bookkeeping).
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  auto id = mgr.AllocateOn(host.dram, MiB(64), region::Properties{}, kProducer);
  bool forward = true;
  for (auto _ : state) {
    auto cost = forward ? mgr.Transfer(*id, kProducer, kConsumer, host.cpu)
                        : mgr.Transfer(*id, kConsumer, kProducer, host.cpu);
    benchmark::DoNotOptimize(cost);
    forward = !forward;
  }
}
BENCHMARK(BM_OwnershipTransfer);

void BM_PhysicalMigration(benchmark::State& state) {
  // Wall-clock cost of actually moving bytes between devices (the fallback).
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  auto id = mgr.AllocateOn(host.dram, static_cast<std::uint64_t>(state.range(0)),
                           region::Properties{}, kProducer);
  bool to_cxl = true;
  for (auto _ : state) {
    auto cost = mgr.Migrate(*id, to_cxl ? host.cxl_dram : host.dram);
    benchmark::DoNotOptimize(cost);
    to_cxl = !to_cxl;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PhysicalMigration)->Arg(1 << 20)->Arg(16 << 20);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
