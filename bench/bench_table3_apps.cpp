// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Table 3**: how applications use memory regions. Runs all four
// application types (DBMS, ML/AI, HPC, Streaming) through the runtime and
// reports the traffic each one generated per region class — confirming that
// each application exercises Private Scratch / Global State / Global Scratch
// in the way the paper's table describes.

#include <cstdio>
#include <functional>

#include "apps/dbms.h"
#include "apps/hpc.h"
#include "apps/ml.h"
#include "apps/streaming.h"
#include "bench/bench_util.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

struct AppRun {
  const char* name;
  const char* paper_row;
  std::function<dataflow::Job()> build;
};

void PrintArtifact() {
  PrintHeader("Table 3 — how applications use memory regions",
              "All four application types run end-to-end; traffic is accounted per\n"
              "region class (bytes read+written through each class of region).");

  const AppRun apps[] = {
      {"DBMS (hash join)", "operator state / latches / reusable index",
       [] {
         apps::dbms::TableSpec fact{.rows = 60000, .groups = 400, .seed = 3};
         apps::dbms::TableSpec dim{.rows = 400, .groups = 16, .seed = 4};
         return apps::dbms::BuildJoinJob(fact, dim);
       }},
      {"ML/AI (training)", "training state / worker state / cached transf. data",
       [] {
         apps::ml::MlSpec spec;
         spec.examples = 8000;
         spec.features = 6;
         spec.epochs = 4;
         return apps::ml::BuildTrainingJob(spec, false);
       }},
      {"HPC (stencil)", "node-local working mem / job metadata / blob storage",
       [] {
         apps::hpc::StencilSpec spec{.nx = 48, .ny = 48, .sweeps = 6};
         return apps::hpc::BuildStencilJob(spec);
       }},
      {"Streaming (windows)", "recv buffers / worker state / result cache",
       [] {
         apps::streaming::StreamSpec spec;
         spec.events = 40000;
         spec.sensors = 8;
         spec.window_events = 8000;
         return apps::streaming::BuildStreamingJob(spec);
       }},
  };

  TextTable table({"Application", "Makespan", "Priv. Scratch", "Glob. State",
                   "Glob. Scratch", "Paper's usage row"});
  bool all_ok = true;
  for (const AppRun& app : apps) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    rts::Runtime runtime(*host.cluster);
    auto report = runtime.SubmitAndRun(app.build());
    MEMFLOW_CHECK_MSG(report.ok() && report->status.ok(), app.name);
    const region::ManagerStats& stats = runtime.regions().stats();
    const auto traffic = [&](region::RegionClass c) {
      const int i = static_cast<int>(c);
      return HumanBytes(stats.bytes_read_by_class[i] + stats.bytes_written_by_class[i]);
    };
    const auto nonzero = [&](region::RegionClass c) {
      const int i = static_cast<int>(c);
      return stats.bytes_read_by_class[i] + stats.bytes_written_by_class[i] > 0;
    };
    all_ok = all_ok && nonzero(region::RegionClass::kPrivateScratch) &&
             nonzero(region::RegionClass::kGlobalState) &&
             nonzero(region::RegionClass::kGlobalScratch);
    table.AddRow({app.name, HumanDuration(report->Makespan()),
                  traffic(region::RegionClass::kPrivateScratch),
                  traffic(region::RegionClass::kGlobalState),
                  traffic(region::RegionClass::kGlobalScratch), app.paper_row});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("check: every application touches all three region classes -> %s\n\n",
              all_ok ? "PASS" : "FAIL");
}

void BM_DbmsJoinEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    rts::Runtime runtime(*host.cluster);
    apps::dbms::TableSpec fact{.rows = 10000, .groups = 100, .seed = 3};
    apps::dbms::TableSpec dim{.rows = 100, .groups = 16, .seed = 4};
    auto report = runtime.SubmitAndRun(apps::dbms::BuildJoinJob(fact, dim));
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DbmsJoinEndToEnd)->Unit(benchmark::kMillisecond);

void BM_StencilEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    rts::Runtime runtime(*host.cluster);
    auto report =
        runtime.SubmitAndRun(apps::hpc::BuildStencilJob({.nx = 24, .ny = 24, .sweeps = 4}));
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_StencilEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
