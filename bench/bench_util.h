// Copyright (c) memflow authors. MIT license.
//
// Shared scaffolding for the benchmark harness. Every bench binary
// regenerates one artifact of the paper (a table, a figure, or a quantified
// claim): it first prints the reproduced artifact from a deterministic
// simulation, then runs google-benchmark timers over the runtime's own
// (wall-clock) overheads.

#ifndef MEMFLOW_BENCH_BENCH_UTIL_H_
#define MEMFLOW_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace memflow::bench {

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("================================================================\n");
  std::printf("Reproduction: %s\n", artifact);
  std::printf("%s\n", description);
  std::printf("================================================================\n\n");
}

// "3.1x" style ratio cell.
inline std::string Ratio(double num, double den) {
  if (den <= 0) {
    return "-";
  }
  return FormatDouble(num / den, 2) + "x";
}

inline std::string GbPerSec(std::uint64_t bytes, SimDuration d) {
  if (d.ns <= 0) {
    return "-";
  }
  return FormatDouble(static_cast<double>(bytes) / static_cast<double>(d.ns), 1);
}

// --- machine-readable artifact results ---------------------------------------
//
// Artifact printers call RecordResult for each headline number; when the
// binary is invoked with `--json <path>`, the recorded results are written
// there as a stable JSON document (consumed by ci.sh into BENCH_rts.json).

struct BenchResult {
  std::string name;
  double value = 0;
  std::string unit;
  // Optional key/value context (scenario seed, worker count, ...) carried
  // into the JSON document so a recorded number is replayable.
  std::vector<std::pair<std::string, std::string>> attrs;
};

inline std::vector<BenchResult>& Results() {
  static std::vector<BenchResult> results;
  return results;
}

inline void RecordResult(const std::string& name, double value, const std::string& unit) {
  Results().push_back({name, value, unit, {}});
}

inline void RecordResult(const std::string& name, double value, const std::string& unit,
                         std::vector<std::pair<std::string, std::string>> attrs) {
  Results().push_back({name, value, unit, std::move(attrs)});
}

// Pulls `--json <path>` / `--json=<path>` out of argv before google-benchmark
// sees (and rejects) it. Returns the path, or "" if the flag is absent.
inline std::string ExtractJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

inline bool WriteResultsJson(const std::string& path, const char* bench_name) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::string json = "{\"bench\":" + JsonQuote(bench_name) + ",\"results\":[";
  bool first = true;
  for (const BenchResult& r : Results()) {
    if (!first) {
      json += ',';
    }
    first = false;
    json += "{\"name\":" + JsonQuote(r.name) + ",\"value\":" + JsonNumber(r.value) +
            ",\"unit\":" + JsonQuote(r.unit);
    if (!r.attrs.empty()) {
      json += ",\"attrs\":{";
      bool first_attr = true;
      for (const auto& [k, v] : r.attrs) {
        if (!first_attr) {
          json += ',';
        }
        first_attr = false;
        json += JsonQuote(k) + ":" + JsonQuote(v);
      }
      json += '}';
    }
    json += '}';
  }
  json += "]}\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

// Standard main for bench binaries: artifact first, then timers, then the
// optional --json results dump.
#define MEMFLOW_BENCH_MAIN(print_artifact_fn)                            \
  int main(int argc, char** argv) {                                      \
    const std::string json_path =                                        \
        ::memflow::bench::ExtractJsonFlag(&argc, argv);                  \
    print_artifact_fn();                                                 \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {          \
      return 1;                                                          \
    }                                                                    \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    if (!json_path.empty() &&                                            \
        !::memflow::bench::WriteResultsJson(json_path, argv[0])) {       \
      return 1;                                                          \
    }                                                                    \
    return 0;                                                            \
  }

}  // namespace memflow::bench

#endif  // MEMFLOW_BENCH_BENCH_UTIL_H_
