// Copyright (c) memflow authors. MIT license.
//
// Shared scaffolding for the benchmark harness. Every bench binary
// regenerates one artifact of the paper (a table, a figure, or a quantified
// claim): it first prints the reproduced artifact from a deterministic
// simulation, then runs google-benchmark timers over the runtime's own
// (wall-clock) overheads.

#ifndef MEMFLOW_BENCH_BENCH_UTIL_H_
#define MEMFLOW_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace memflow::bench {

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("================================================================\n");
  std::printf("Reproduction: %s\n", artifact);
  std::printf("%s\n", description);
  std::printf("================================================================\n\n");
}

// "3.1x" style ratio cell.
inline std::string Ratio(double num, double den) {
  if (den <= 0) {
    return "-";
  }
  return FormatDouble(num / den, 2) + "x";
}

inline std::string GbPerSec(std::uint64_t bytes, SimDuration d) {
  if (d.ns <= 0) {
    return "-";
  }
  return FormatDouble(static_cast<double>(bytes) / static_cast<double>(d.ns), 1);
}

// Standard main for bench binaries: artifact first, then timers.
#define MEMFLOW_BENCH_MAIN(print_artifact_fn)                  \
  int main(int argc, char** argv) {                            \
    print_artifact_fn();                                       \
    ::benchmark::Initialize(&argc, argv);                      \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                \
    }                                                          \
    ::benchmark::RunSpecifiedBenchmarks();                     \
    ::benchmark::Shutdown();                                   \
    return 0;                                                  \
  }

}  // namespace memflow::bench

#endif  // MEMFLOW_BENCH_BENCH_UTIL_H_
