// Copyright (c) memflow authors. MIT license.
//
// Open-loop serving under sustained multi-tenant load (DESIGN.md §15). Two
// tenants stream single-task CPU jobs through the SLO-aware admission layer
// at offered rates below, near, and above the device's service capacity
// (one CPU, 4 hardware queues, ~100us per job => ~40k jobs/s). For each
// rate the artifact reports sustained completions/sec and exact end-to-end
// latency quantiles (p50/p99/p999 over every served job — virtual time, so
// bit-stable and gated by the CI perf gate), plus the admission outcome mix.
//
// A determinism leg replays the mid-rate sweep at 1, 2, and 8 worker
// threads and gates that the served-job log is identical — the serving
// layer inherits the executor's fingerprint promise (DESIGN.md §8).

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "rts/runtime.h"
#include "rts/serving.h"
#include "simhw/presets.h"
#include "testing/arrivals.h"

namespace memflow::bench {
namespace {

constexpr std::uint64_t kArrivalSeed = 0x5e41c0de;
constexpr std::int64_t kHorizonMs = 50;
constexpr double kJobWork = 1e5;  // ~100us virtual service per job

// One admitted unit of work: a single CPU-pinned task that charges exactly
// its declared work, so virtual service time tracks the cost-model estimate.
dataflow::Job ServeJob(std::size_t tenant, std::size_t index) {
  dataflow::Job job("serve-t" + std::to_string(tenant) + "-" + std::to_string(index));
  dataflow::TaskProperties props;
  props.compute_device = simhw::ComputeDeviceKind::kCPU;
  props.base_work = kJobWork;
  job.AddTask("t", props, [](dataflow::TaskContext& ctx) {
    ctx.ChargeCompute(kJobWork);
    return OkStatus();
  });
  return job;
}

struct ClassQuantiles {
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
};

struct SweepResult {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // quota + slo + infeasible + shed
  std::uint64_t completed = 0;
  double sustained_per_sec = 0;  // completions / virtual second to quiescence
  ClassQuantiles all;
  // Per latency class (tenant a = interactive, tenant b = batch).
  ClassQuantiles interactive;
  ClassQuantiles batch;
  // Served-job log digest: (job id, tenant, arrival, finish, ok) per job —
  // the determinism comparand across worker counts.
  std::string fingerprint;
};

// Exact quantile of a sorted sample vector (nearest-rank).
std::int64_t QuantileNs(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

SweepResult RunSweep(double offered_rate_per_sec, int workers) {
  SweepResult out;
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  telemetry::Registry registry;
  rts::RuntimeOptions ropts;
  ropts.worker_threads = workers;
  ropts.registry = &registry;
  rts::Runtime rt(*host.cluster, ropts);
  rts::ServingLayer serving(rt);
  (void)serving.AddTenant(
      {.name = "a", .weight = 1.0, .slo = dataflow::SloClass::kInteractive});
  (void)serving.AddTenant(
      {.name = "b", .weight = 2.0, .slo = dataflow::SloClass::kBatch});

  std::vector<testing::ArrivalSpec> specs(2);
  for (testing::ArrivalSpec& s : specs) {
    s.kind = testing::ArrivalKind::kPoisson;
    s.rate_per_sec = offered_rate_per_sec / 2.0;
  }
  const auto arrivals = testing::MergeArrivals(
      specs, kArrivalSeed, SimTime{} + SimDuration::Millis(kHorizonMs));
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    const testing::MergedArrival a = arrivals[k];
    rt.ScheduleAt(a.at, [&serving, a, k](SimTime) {
      (void)serving.Offer(a.tenant, ServeJob(a.tenant, k));
    });
  }
  MEMFLOW_CHECK(rt.RunToCompletion().ok());

  for (std::size_t t = 0; t < serving.num_tenants(); ++t) {
    const rts::TenantStats& stats = serving.stats(t);
    out.offered += stats.arrived;
    out.admitted += stats.admitted;
    out.rejected += stats.Rejections();
    out.completed += stats.completed;
  }
  std::vector<std::int64_t> latencies;
  std::vector<std::int64_t> per_tenant[2];
  SimTime quiesced;
  for (const rts::ServedJob& sj : serving.served()) {
    quiesced = std::max(quiesced, sj.finished);
    if (sj.ok) {
      latencies.push_back((sj.finished - sj.arrival).ns);
      if (sj.tenant < 2) {
        per_tenant[sj.tenant].push_back((sj.finished - sj.arrival).ns);
      }
    }
    out.fingerprint += std::to_string(sj.job.value) + ":" +
                       std::to_string(sj.tenant) + ":" +
                       std::to_string(sj.arrival.ns) + ":" +
                       std::to_string(sj.finished.ns) + ":" + (sj.ok ? "1" : "0") +
                       ";";
  }
  const auto quantiles = [](std::vector<std::int64_t>& sample) {
    std::sort(sample.begin(), sample.end());
    return ClassQuantiles{QuantileNs(sample, 0.50), QuantileNs(sample, 0.99),
                          QuantileNs(sample, 0.999)};
  };
  out.all = quantiles(latencies);
  out.interactive = quantiles(per_tenant[0]);
  out.batch = quantiles(per_tenant[1]);
  const double secs = (quiesced - SimTime{}).ToSeconds();
  out.sustained_per_sec = secs > 0 ? static_cast<double>(out.completed) / secs : 0;
  return out;
}

void PrintArtifact() {
  PrintHeader("Open-loop serving",
              "Sustained completions/sec and end-to-end latency quantiles of\n"
              "the SLO-aware admission layer under two-tenant Poisson load at\n"
              "offered rates below, near, and above service capacity.");

  const double rates[] = {10000, 25000, 50000};
  TextTable table({"Offered/s", "Admitted", "Completed", "Sustained/s", "p50", "p99",
                   "p999"});
  for (const double rate : rates) {
    const SweepResult r = RunSweep(rate, /*workers=*/1);
    table.AddRow({FormatDouble(rate, 0), std::to_string(r.admitted),
                  std::to_string(r.completed), FormatDouble(r.sustained_per_sec, 1),
                  HumanDuration(SimDuration::Nanos(r.all.p50_ns)),
                  HumanDuration(SimDuration::Nanos(r.all.p99_ns)),
                  HumanDuration(SimDuration::Nanos(r.all.p999_ns))});
    const std::string tag = "_rate" + std::to_string(static_cast<int>(rate));
    const std::vector<std::pair<std::string, std::string>> attrs = {
        {"arrival_seed", std::to_string(kArrivalSeed)},
        {"offered_per_sec", FormatDouble(rate, 0)},
        {"horizon_ms", std::to_string(kHorizonMs)}};
    // Virtual-time quantiles are bit-stable: gated (ns), overall and per
    // latency class. Rates and counts ride along informationally.
    const auto record_class = [&](const char* prefix, const ClassQuantiles& q) {
      RecordResult(std::string(prefix) + "_p50" + tag,
                   static_cast<double>(q.p50_ns), "ns", attrs);
      RecordResult(std::string(prefix) + "_p99" + tag,
                   static_cast<double>(q.p99_ns), "ns", attrs);
      RecordResult(std::string(prefix) + "_p999" + tag,
                   static_cast<double>(q.p999_ns), "ns", attrs);
    };
    record_class("serving", r.all);
    record_class("serving_interactive", r.interactive);
    record_class("serving_batch", r.batch);
    RecordResult("serving_sustained_jobs_per_sec" + tag, r.sustained_per_sec,
                 "jobs/s", attrs);
    RecordResult("serving_admitted" + tag, static_cast<double>(r.admitted), "count",
                 attrs);
    RecordResult("serving_rejected" + tag, static_cast<double>(r.rejected), "count",
                 attrs);
  }
  std::printf("%s\n", table.Render().c_str());

  // Determinism leg: the mid-rate sweep must produce an identical served-job
  // log — same admissions, same virtual finish times — at every worker count.
  const SweepResult w1 = RunSweep(25000, 1);
  const SweepResult w2 = RunSweep(25000, 2);
  const SweepResult w8 = RunSweep(25000, 8);
  const bool deterministic =
      w1.fingerprint == w2.fingerprint && w2.fingerprint == w8.fingerprint;
  std::printf("served-job log identical at 1/2/8 workers -> %s\n\n",
              deterministic ? "PASS" : "FAIL");
  RecordResult("serving_deterministic", deterministic ? 1.0 : 0.0, "bool");
}

// Wall-clock admission overhead: offers against an idle runtime, so each
// iteration is the Offer hot path (token refill, estimate, WFQ key, submit)
// plus the executor's dispatch of one short job batch.
void BM_OfferAndDrain(benchmark::State& state) {
  for (auto _ : state) {
    simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
    telemetry::Registry registry;
    rts::RuntimeOptions ropts;
    ropts.worker_threads = 1;
    ropts.registry = &registry;
    rts::Runtime rt(*host.cluster, ropts);
    rts::ServingLayer serving(rt);
    (void)serving.AddTenant({.name = "a"});
    for (std::size_t k = 0; k < 64; ++k) {
      MEMFLOW_CHECK(serving.Offer(0, ServeJob(0, k)).admitted);
    }
    MEMFLOW_CHECK(rt.RunToCompletion().ok());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_OfferAndDrain)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
