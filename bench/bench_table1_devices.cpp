// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Table 1**: memory device properties as seen from a CPU.
// Latency and bandwidth are *measured* against the simulated devices (pointer
// chase for latency, large sequential read for bandwidth) rather than read
// out of the profiles, so the table validates the whole access path:
// device media + interconnect topology + accessor cost model.

#include <cstdio>

#include "bench/bench_util.h"
#include "region/region_manager.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

constexpr region::Principal kBench{77, 1};

struct MeasuredRow {
  std::string name;
  SimDuration latency;       // single-granule random access
  double bandwidth_gbps;     // 16 MiB sequential read
  std::uint64_t granularity;
  std::string attached;
  bool sync;
  bool persistent;
};

MeasuredRow Measure(simhw::Cluster& cluster, region::RegionManager& mgr,
                    simhw::ComputeDeviceId cpu, simhw::MemoryDeviceId dev) {
  const simhw::MemoryDevice& device = cluster.memory(dev);
  MeasuredRow row;
  row.name = std::string(MemoryDeviceKindName(device.profile().kind));
  row.granularity = device.profile().granularity;
  row.attached = std::string(AttachmentName(device.profile().attachment));
  row.persistent = device.profile().persistent;

  const std::uint64_t probe_bytes = MiB(16);
  auto region = mgr.AllocateOn(dev, probe_bytes, region::Properties{}, kBench);
  MEMFLOW_CHECK(region.ok());

  auto view = cluster.View(cpu, dev);
  MEMFLOW_CHECK(view.ok());
  row.sync = view->sync;

  // Latency: 256 dependent random single-granule reads (pointer chase).
  auto async = mgr.OpenAsync(*region, kBench, cpu);
  MEMFLOW_CHECK(async.ok());
  async->set_queue_depth(1);  // dependent chain: no overlap possible
  std::vector<char> buf(row.granularity);
  SimDuration chase{};
  std::uint64_t pos = 0;
  for (int i = 0; i < 256; ++i) {
    async->EnqueueRead(pos, buf.data(), row.granularity);
    auto cost = async->Drain();
    MEMFLOW_CHECK(cost.ok());
    chase += *cost;
    pos = (pos * 2654435761ULL + 12345) % (probe_bytes - row.granularity);
    pos = pos / row.granularity * row.granularity;
  }
  row.latency = SimDuration::Nanos(chase.ns / 256);

  // Bandwidth: one 16 MiB sequential read.
  std::vector<char> big(probe_bytes);
  auto seq = mgr.OpenAsync(*region, kBench, cpu);
  MEMFLOW_CHECK(seq.ok());
  seq->EnqueueRead(0, big.data(), probe_bytes);
  auto cost = seq->Drain();
  MEMFLOW_CHECK(cost.ok());
  row.bandwidth_gbps = static_cast<double>(probe_bytes) / static_cast<double>(cost->ns);

  (void)mgr.Free(*region, kBench);
  return row;
}

// The paper's qualitative grade for a quantity: ++, +, o, -, --.
std::string LatencyGrade(SimDuration lat) {
  if (lat.ns <= 20) {
    return "++";
  }
  if (lat.ns <= 150) {
    return "+";
  }
  if (lat.ns <= 5000) {
    return "o";
  }
  if (lat.ns <= 500000) {
    return "-";
  }
  return "--";
}

std::string BandwidthGrade(double gbps) {
  if (gbps >= 500) {
    return "++";
  }
  if (gbps >= 80) {
    return "+";
  }
  if (gbps >= 10) {
    return "o";
  }
  if (gbps >= 1) {
    return "-";
  }
  return "--";
}

void PrintArtifact() {
  PrintHeader("Table 1 — memory device properties as seen from a CPU",
              "Measured on the simulated devices through the full access path\n"
              "(media + topology + accessor): pointer-chase latency, 16 MiB\n"
              "sequential-read bandwidth. Grades use the paper's ++/+/o/-/-- scale.");

  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);

  const std::vector<simhw::MemoryDeviceId> order = {
      host.cache, host.hbm, host.dram, host.pmem, host.cxl_dram,
      host.disagg, host.ssd, host.hdd};

  TextTable table({"Name", "Bw.", "Lat.", "Bw. GB/s", "Lat. (ns)", "Gran.", "Attached",
                   "Sync", "Persist."});
  std::vector<MeasuredRow> rows;
  for (const simhw::MemoryDeviceId dev : order) {
    rows.push_back(Measure(*host.cluster, mgr, host.cpu, dev));
    const MeasuredRow& r = rows.back();
    table.AddRow({r.name, BandwidthGrade(r.bandwidth_gbps), LatencyGrade(r.latency),
                  FormatDouble(r.bandwidth_gbps, 1), WithThousands(
                      static_cast<std::uint64_t>(r.latency.ns)),
                  r.granularity >= KiB(1) ? std::to_string(r.granularity / KiB(1)) + " KiB"
                                          : std::to_string(r.granularity) + " B",
                  r.attached, r.sync ? "yes" : "no", r.persistent ? "yes" : "no"});
  }
  std::printf("%s\n", table.Render().c_str());

  // Verify the orderings the paper's table implies.
  bool latency_ok = true;
  bool bandwidth_ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].latency.ns + 40 < rows[i - 1].latency.ns) {
      latency_ok = false;
    }
  }
  // Bandwidth ordering skips GDDR-less CPU view; check strictly decreasing
  // from HBM on.
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].bandwidth_gbps > rows[i - 1].bandwidth_gbps * 1.1) {
      bandwidth_ok = false;
    }
  }
  std::printf("ordering check: latency monotone %s, bandwidth monotone %s\n\n",
              latency_ok ? "PASS" : "FAIL", bandwidth_ok ? "PASS" : "FAIL");
}

// --- wall-clock overhead timers -------------------------------------------------

void BM_ViewResolution(benchmark::State& state) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  for (auto _ : state) {
    auto view = host.cluster->View(host.cpu, host.cxl_dram);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ViewResolution);

void BM_DeviceAllocateFree(benchmark::State& state) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  simhw::MemoryDevice& dram = host.cluster->memory(host.dram);
  for (auto _ : state) {
    auto extent = dram.Allocate(static_cast<std::uint64_t>(state.range(0)));
    benchmark::DoNotOptimize(extent);
    (void)dram.Free(*extent);
  }
}
BENCHMARK(BM_DeviceAllocateFree)->Arg(4096)->Arg(1 << 20);

void BM_SimulatedRead64K(benchmark::State& state) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  region::RegionManager mgr(*host.cluster);
  auto region = mgr.AllocateOn(host.dram, MiB(1), region::Properties{}, kBench);
  auto acc = mgr.OpenSync(*region, kBench, host.cpu);
  std::vector<char> buf(KiB(64));
  for (auto _ : state) {
    auto cost = acc->Read(0, buf.data(), buf.size());
    benchmark::DoNotOptimize(cost);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * KiB(64));
}
BENCHMARK(BM_SimulatedRead64K);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
