// Copyright (c) memflow authors. MIT license.
//
// Ablation **A1**: how much of the runtime's benefit comes from cost-model
// placement? The same mixed job set (DBMS join + ML training + streaming +
// HPC stencil, submitted together) runs under each placement policy on the
// heterogeneous CXL host. The cost-model policy is the paper's RTS; the rest
// are the naive/explicit strategies it replaces.

#include <cstdio>

#include "apps/dbms.h"
#include "apps/hpc.h"
#include "apps/ml.h"
#include "apps/streaming.h"
#include "bench/bench_util.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

struct MixOutcome {
  SimDuration makespan;
  std::uint64_t zero_copy = 0;
  std::uint64_t copied = 0;
  bool all_ok = true;
};

std::vector<dataflow::Job> BuildMix() {
  std::vector<dataflow::Job> jobs;
  jobs.push_back(apps::dbms::BuildJoinJob({.rows = 50000, .groups = 300, .seed = 5},
                                          {.rows = 300, .groups = 8, .seed = 6}));
  apps::ml::MlSpec ml;
  ml.examples = 6000;
  ml.features = 5;
  ml.epochs = 4;
  jobs.push_back(apps::ml::BuildTrainingJob(ml, false));
  apps::streaming::StreamSpec stream;
  stream.events = 30000;
  stream.sensors = 8;
  stream.window_events = 6000;
  jobs.push_back(apps::streaming::BuildStreamingJob(stream));
  jobs.push_back(apps::hpc::BuildStencilJob({.nx = 40, .ny = 40, .sweeps = 5}));
  // Two parallel-heavy analytics queries that any device may run — where
  // placement actually has freedom to matter.
  jobs.push_back(
      apps::dbms::BuildScanAggregateJob({.rows = 150000, .groups = 64, .seed = 7}, 0.3));
  jobs.push_back(
      apps::dbms::BuildScanAggregateJob({.rows = 150000, .groups = 64, .seed = 8}, 0.6));
  return jobs;
}

MixOutcome RunMix(rts::PlacementPolicyKind policy) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::RuntimeOptions options;
  options.policy = policy;
  rts::Runtime runtime(*host.cluster, options);

  std::vector<dataflow::JobId> ids;
  for (dataflow::Job& job : BuildMix()) {
    auto id = runtime.Submit(std::move(job));
    MEMFLOW_CHECK_MSG(id.ok(), id.status().message().c_str());
    ids.push_back(*id);
  }
  MEMFLOW_CHECK(runtime.RunToCompletion().ok());

  MixOutcome outcome;
  SimTime last{};
  for (const dataflow::JobId id : ids) {
    const rts::JobReport& report = runtime.report(id);
    outcome.all_ok = outcome.all_ok && report.status.ok();
    last = std::max(last, report.finished);
  }
  outcome.makespan = last - SimTime{};
  outcome.zero_copy = runtime.stats().zero_copy_handovers;
  outcome.copied = runtime.stats().copied_handovers;
  return outcome;
}

// A single job run alone: where placement quality shows undiluted.
SimDuration RunSoloScanAgg(rts::PlacementPolicyKind policy) {
  simhw::CxlHostHandles host = simhw::MakeCxlExpansionHost();
  rts::RuntimeOptions options;
  options.policy = policy;
  rts::Runtime runtime(*host.cluster, options);
  auto report = runtime.SubmitAndRun(
      apps::dbms::BuildScanAggregateJob({.rows = 150000, .groups = 64, .seed = 7}, 0.3));
  MEMFLOW_CHECK(report.ok() && report->status.ok());
  return report->Makespan();
}

void PrintArtifact() {
  PrintHeader("Ablation A1 — value of cost-model placement",
              "(i) one analytics job run alone, (ii) a six-job mix (DBMS join, ML\n"
              "training, streaming, HPC stencil, 2x scan-aggregate) submitted\n"
              "concurrently — per placement policy on the CXL host.");

  // (i) Solo job: the cost model must win outright.
  TextTable solo({"Placement policy", "Solo job makespan", "vs cost-model"});
  const SimDuration solo_cm = RunSoloScanAgg(rts::PlacementPolicyKind::kCostModel);
  bool solo_wins = true;
  for (const auto policy :
       {rts::PlacementPolicyKind::kCostModel, rts::PlacementPolicyKind::kFirstFit,
        rts::PlacementPolicyKind::kRoundRobin, rts::PlacementPolicyKind::kRandom}) {
    const SimDuration t = policy == rts::PlacementPolicyKind::kCostModel
                              ? solo_cm
                              : RunSoloScanAgg(policy);
    if (t.ns < solo_cm.ns) {
      solo_wins = false;
    }
    solo.AddRow({std::string(PlacementPolicyKindName(policy)), HumanDuration(t),
                 Ratio(static_cast<double>(t.ns), static_cast<double>(solo_cm.ns))});
  }
  std::printf("%s\n", solo.Render().c_str());
  std::printf("check (solo): cost-model placement is fastest -> %s\n\n",
              solo_wins ? "PASS" : "FAIL");

  const MixOutcome cost_model = RunMix(rts::PlacementPolicyKind::kCostModel);

  TextTable table({"Placement policy", "Mix makespan", "vs cost-model", "Zero-copy",
                   "Copied", "All jobs OK"});
  std::int64_t best_ns = cost_model.makespan.ns;
  std::int64_t rr_ns = 0;
  std::int64_t random_ns = 0;
  for (const auto policy :
       {rts::PlacementPolicyKind::kCostModel, rts::PlacementPolicyKind::kFirstFit,
        rts::PlacementPolicyKind::kRoundRobin, rts::PlacementPolicyKind::kRandom}) {
    const MixOutcome outcome =
        policy == rts::PlacementPolicyKind::kCostModel ? cost_model : RunMix(policy);
    best_ns = std::min(best_ns, outcome.makespan.ns);
    if (policy == rts::PlacementPolicyKind::kRoundRobin) {
      rr_ns = outcome.makespan.ns;
    }
    if (policy == rts::PlacementPolicyKind::kRandom) {
      random_ns = outcome.makespan.ns;
    }
    table.AddRow({std::string(PlacementPolicyKindName(policy)),
                  HumanDuration(outcome.makespan),
                  Ratio(static_cast<double>(outcome.makespan.ns),
                        static_cast<double>(cost_model.makespan.ns)),
                  std::to_string(outcome.zero_copy), std::to_string(outcome.copied),
                  outcome.all_ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());
  // Under saturation a greedy per-task cost model is not guaranteed optimal
  // (list scheduling); the honest claim: it beats the blind spreading
  // policies and stays close to the best policy for this mix.
  const bool mix_ok = cost_model.makespan.ns < rr_ns && cost_model.makespan.ns < random_ns &&
                      static_cast<double>(cost_model.makespan.ns) <
                          static_cast<double>(best_ns) * 1.3;
  std::printf("check (mix): cost-model beats round-robin and random, and is within\n"
              "30%% of the best policy -> %s\n\n", mix_ok ? "PASS" : "FAIL");
}

void BM_MixUnderPolicy(benchmark::State& state) {
  const auto policy = static_cast<rts::PlacementPolicyKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMix(policy));
  }
}
BENCHMARK(BM_MixUnderPolicy)
    ->Arg(static_cast<int>(rts::PlacementPolicyKind::kCostModel))
    ->Arg(static_cast<int>(rts::PlacementPolicyKind::kRoundRobin))
    ->ArgNames({"policy"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
