// Copyright (c) memflow authors. MIT license.
//
// Wall-clock throughput of the deterministic parallel executor (DESIGN.md §8).
// The same batch of far-memory-heavy task bodies runs at 1, 2, and 8 worker
// threads; virtual-time results are identical (see DeterminismTest), so the
// only thing that changes is how fast the host chews through each
// virtual-time step's batch.
//
// Each body does real memcpy work (256 KiB through the simulated device) and
// then emulates the wall-clock stall its far-memory traffic would impose by
// sleeping in proportion to the simulated access cost it charged. A real
// disaggregated runtime spends most of a task's wall time stalled exactly
// like this — overlapping those stalls across bodies is what the parallel
// phase exists for, so tasks/sec at N workers is the executor's headline.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "rts/runtime.h"
#include "simhw/presets.h"
#include "telemetry/analyze/doctor.h"
#include "telemetry/selfprof.h"

namespace memflow::bench {
namespace {

constexpr std::uint64_t kBodyBytes = KiB(256);
constexpr int kTasksPerJob = 96;
// Runtime seed for every measured run; recorded in the JSON results so a
// number in BENCH_rts.json can be replayed against the exact scenario.
constexpr std::uint64_t kScenarioSeed = 42;
// Emulated stall: one real microsecond per simulated microsecond charged,
// clamped to [0.5ms, 1ms] so every body stalls long enough for the parallel
// phase to have something to overlap. The floor was 5 ms before the hot-path
// overhaul (DESIGN.md §14) — that put ~480 ms of sleep in every 1-worker run
// and capped tasks/sec near 190 no matter how fast dispatch got; the body
// was likewise shrunk from 1 MiB so its (serial, unscalable) real memcpy
// work does not drown the stall overlap on small CI hosts.
constexpr std::int64_t kMinStallUs = 500;
constexpr std::int64_t kMaxStallUs = 1000;

Status HeavyBody(dataflow::TaskContext& ctx) {
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s, ctx.AllocatePrivateScratch(kBodyBytes));
  MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(s));
  std::vector<std::uint64_t> buf(kBodyBytes / 8);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = i * 0x9e3779b97f4a7c15ULL;
  }
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration w, acc.Write(0, buf.data(), kBodyBytes));
  ctx.Charge(w);
  std::uint64_t sum = 0;
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration r, acc.Read(0, buf.data(), kBodyBytes));
  ctx.Charge(r);
  for (const std::uint64_t v : buf) {
    sum += v;
  }
  benchmark::DoNotOptimize(sum);
  ctx.ChargeCompute(1e5);
  const std::int64_t stall_us = std::clamp<std::int64_t>(
      ctx.charged().ns / 1000, kMinStallUs, kMaxStallUs);
  std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  return OkStatus();
}

// Control-plane-only body: charges nothing, touches nothing. Every wall
// nanosecond of a run built from these is dispatch overhead — stage, place,
// drain, commit — so ctrl_tasks_per_sec_* measures the control plane alone.
Status ZeroCostBody(dataflow::TaskContext& ctx) {
  benchmark::DoNotOptimize(&ctx);
  return OkStatus();
}

// Independent tasks, no edges: every task is a source, so each virtual-time
// step dispatches one maximal batch across all compute nodes.
dataflow::Job IndependentTasksJob(int tasks, dataflow::TaskFn body = HeavyBody) {
  dataflow::Job job("throughput");
  for (int i = 0; i < tasks; ++i) {
    job.AddTask("t" + std::to_string(i), {}, body);
  }
  return job;
}

// Runs the workload at `workers` host threads; returns tasks per wall second.
double MeasureTasksPerSec(int workers, dataflow::TaskFn body = HeavyBody) {
  simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
  telemetry::Registry reg;
  rts::RuntimeOptions opts;
  opts.seed = kScenarioSeed;
  opts.worker_threads = workers;
  opts.registry = &reg;
  rts::Runtime rt(*rack.cluster, opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = rt.SubmitAndRun(IndependentTasksJob(kTasksPerJob, body));
  const auto t1 = std::chrono::steady_clock::now();
  MEMFLOW_CHECK(report.ok() && report->status.ok());
  MEMFLOW_CHECK(rt.stats().tasks_executed == static_cast<std::uint64_t>(kTasksPerJob));
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(kTasksPerJob) / secs;
}

void PrintArtifact() {
  PrintHeader("Executor throughput",
              "Wall-clock tasks/sec of the two-phase deterministic executor at\n"
              "1, 2, and 8 worker threads (identical virtual-time results).");

  // Discarded warmup: the first run in the process otherwise pays every page
  // fault for body buffers and device backing chunks (hundreds of MiB of
  // first-touch), which belongs to the allocator, not the executor.
  MeasureTasksPerSec(1);

  const double w1 = MeasureTasksPerSec(1);
  const double w2 = MeasureTasksPerSec(2);
  const double w8 = MeasureTasksPerSec(8);

  TextTable table({"Workers", "Tasks/sec", "Speedup vs serial"});
  table.AddRow({"1", FormatDouble(w1, 1), "1.00x"});
  table.AddRow({"2", FormatDouble(w2, 1), Ratio(w2, w1)});
  table.AddRow({"8", FormatDouble(w8, 1), Ratio(w8, w1)});
  std::printf("%s\n", table.Render().c_str());

  std::printf("check: 8 workers reach >= 2x the serial executor -> %s\n\n",
              w8 >= 2.0 * w1 ? "PASS" : "FAIL");

  // Each body moves 2x kBodyBytes through the simulated device (write+read).
  const double body_mib = 2.0 * static_cast<double>(kBodyBytes) / static_cast<double>(MiB(1));
  const auto attrs = [](int workers) {
    return std::vector<std::pair<std::string, std::string>>{
        {"scenario_seed", std::to_string(kScenarioSeed)},
        {"workers", std::to_string(workers)}};
  };
  RecordResult("tasks_per_sec_1_worker", w1, "tasks/s", attrs(1));
  RecordResult("tasks_per_sec_2_workers", w2, "tasks/s", attrs(2));
  RecordResult("tasks_per_sec_8_workers", w8, "tasks/s", attrs(8));
  RecordResult("body_mib_per_sec_1_worker", w1 * body_mib, "MiB/s", attrs(1));
  RecordResult("body_mib_per_sec_8_workers", w8 * body_mib, "MiB/s", attrs(8));
  RecordResult("speedup_2_workers", w2 / w1, "x", attrs(2));
  RecordResult("speedup_8_workers", w8 / w1, "x", attrs(8));

  // Control-plane-only leg: zero-cost bodies, so every wall nanosecond is
  // dispatch overhead. This is the number the hot-path work (DESIGN.md §14)
  // moves directly — the heavy legs above dilute it with body time.
  const double c1 = MeasureTasksPerSec(1, ZeroCostBody);
  const double c2 = MeasureTasksPerSec(2, ZeroCostBody);
  const double c8 = MeasureTasksPerSec(8, ZeroCostBody);
  TextTable ctrl({"Workers", "Ctrl tasks/sec"});
  ctrl.AddRow({"1", FormatDouble(c1, 1)});
  ctrl.AddRow({"2", FormatDouble(c2, 1)});
  ctrl.AddRow({"8", FormatDouble(c8, 1)});
  std::printf("control-plane only (zero-cost bodies):\n%s\n", ctrl.Render().c_str());
  RecordResult("ctrl_tasks_per_sec_1_worker", c1, "tasks/s", attrs(1));
  RecordResult("ctrl_tasks_per_sec_2_workers", c2, "tasks/s", attrs(2));
  RecordResult("ctrl_tasks_per_sec_8_workers", c8, "tasks/s", attrs(8));

  // Attribution leg (DESIGN.md §11): profile one deterministic batch and gate
  // the virtual-time makespan attribution in CI — these are ns metrics, so the
  // perf-regression gate holds them within tolerance run over run.
  {
    simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
    telemetry::Registry reg;
    telemetry::TraceBuffer tracer;
    rts::RuntimeOptions opts;
    opts.seed = kScenarioSeed;
    opts.worker_threads = 8;
    opts.registry = &reg;
    opts.tracer = &tracer;
    rts::Runtime rt(*rack.cluster, opts);
    auto report = rt.SubmitAndRun(IndependentTasksJob(kTasksPerJob));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
    auto profile = telemetry::analyze::AnalyzeJob(tracer, report->id.value);
    MEMFLOW_CHECK(profile.ok() && profile->complete);
    std::printf("%s\n", telemetry::analyze::RenderJobDoctor(*profile).c_str());
    const auto& attr = profile->attribution;
    RecordResult("batch_makespan_ns", static_cast<double>(profile->makespan.ns), "ns");
    RecordResult("batch_critical_compute_ns", static_cast<double>(attr.compute.ns), "ns");
    RecordResult("batch_critical_queue_ns", static_cast<double>(attr.queue.ns), "ns");
    RecordResult("batch_critical_transfer_ns", static_cast<double>(attr.transfer.ns), "ns");
    RecordResult("attribution_residual_ns", static_cast<double>(attr.unattributed.ns), "ns");
    RecordResult("attribution_sums_to_makespan",
                 attr.Sum().ns == profile->makespan.ns ? 1.0 : 0.0, "bool");
  }

  // Self-profile leg (DESIGN.md §13): the control-plane profiler's per-phase
  // exclusive breakdown must telescope to the externally measured dispatch
  // wall at every worker count (residual < 1%), and the deterministic phase
  // -call fingerprint must not depend on the worker count. Host phase times
  // are recorded under the informational "wall_ns" unit (they vary with the
  // machine); the residual and fingerprint claims are the gated bools.
  {
    struct ProfiledRun {
      telemetry::SelfProfile profile;
      std::uint64_t fingerprint = 0;
    };
    const auto profile_at = [](int workers) {
      simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
      telemetry::Registry reg;
      rts::RuntimeOptions opts;
      opts.seed = kScenarioSeed;
      opts.worker_threads = workers;
      opts.registry = &reg;
      rts::Runtime rt(*rack.cluster, opts);
      dataflow::Job job = IndependentTasksJob(kTasksPerJob);
      const auto t0 = std::chrono::steady_clock::now();
      auto report = rt.SubmitAndRun(std::move(job));
      const auto t1 = std::chrono::steady_clock::now();
      MEMFLOW_CHECK(report.ok() && report->status.ok());
      const std::int64_t wall_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
      return ProfiledRun{rt.self_profiler().Report(wall_ns),
                         rt.self_profiler().Fingerprint()};
    };
    const ProfiledRun r1 = profile_at(1);
    const ProfiledRun r2 = profile_at(2);
    const ProfiledRun r8 = profile_at(8);
    std::printf("%s\n", r1.profile.Render().c_str());
    std::printf("%s\n", r8.profile.Render().c_str());

    const auto residual_pct = [](const ProfiledRun& r) {
      return 100.0 * static_cast<double>(r.profile.residual_ns) /
             static_cast<double>(r.profile.wall_ns);
    };
    const std::pair<int, const ProfiledRun*> runs[] = {{1, &r1}, {2, &r2}, {8, &r8}};
    for (const auto& [workers, run] : runs) {
      const double pct = residual_pct(*run);
      const std::string w = std::to_string(workers);
      std::printf("self-profile @ %d worker(s): wall %s, unprofiled residual %.3f%% -> %s\n",
                  workers,
                  HumanDuration(SimDuration{run->profile.wall_ns}).c_str(), pct,
                  pct < 1.0 ? "PASS" : "FAIL");
      RecordResult("selfprof_wall_ns_" + w + "_workers",
                   static_cast<double>(run->profile.wall_ns), "wall_ns", attrs(workers));
      RecordResult("selfprof_residual_pct_" + w + "_workers", pct, "%", attrs(workers));
      RecordResult("selfprof_residual_under_1pct_" + w + "_workers",
                   pct < 1.0 ? 1.0 : 0.0, "bool", attrs(workers));
    }
    std::printf("self-profile fingerprint stable across 1/2/8 workers -> %s\n\n",
                r1.fingerprint == r2.fingerprint && r2.fingerprint == r8.fingerprint
                    ? "PASS"
                    : "FAIL");
    RecordResult("selfprof_fingerprint_stable",
                 r1.fingerprint == r2.fingerprint && r2.fingerprint == r8.fingerprint
                     ? 1.0
                     : 0.0,
                 "bool");

    // The 8-worker per-phase exclusive breakdown, for the committed artifact.
    // All kNumPhases phases are exported — including zero-call ones — so the
    // exported exclusives telescope to the profiled wall: by the §13
    // accounting identity, wall = sum(exclusive) + residual, and the residual
    // is already gated < 1% above. Skipping zero-call phases (the old
    // behaviour) silently dropped series and broke that telescoping claim.
    std::int64_t exported_sum_ns = 0;
    for (const telemetry::PhaseStat& ps : r8.profile.phases) {
      std::string name(telemetry::PhaseName(ps.phase));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      exported_sum_ns += ps.exclusive_ns;
      RecordResult("selfprof_" + name + "_exclusive_ns",
                   static_cast<double>(ps.exclusive_ns), "wall_ns", attrs(8));
    }
    MEMFLOW_CHECK(r8.profile.phases.size() ==
                  static_cast<std::size_t>(telemetry::kNumPhases));
    const double export_gap_pct =
        100.0 * static_cast<double>(r8.profile.wall_ns - exported_sum_ns) /
        static_cast<double>(r8.profile.wall_ns);
    std::printf("exported exclusives sum to wall - %.3f%% -> %s\n\n",
                export_gap_pct, export_gap_pct < 1.0 ? "PASS" : "FAIL");
    RecordResult("selfprof_exported_sum_matches_wall",
                 export_gap_pct < 1.0 ? 1.0 : 0.0, "bool", attrs(8));
  }
}

void BM_BatchAtWorkers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simhw::DisaggHandles rack = simhw::MakeDisaggRack({.compute_nodes = 8});
    telemetry::Registry reg;
    rts::RuntimeOptions opts;
    opts.worker_threads = workers;
    opts.registry = &reg;
    rts::Runtime rt(*rack.cluster, opts);
    auto report = rt.SubmitAndRun(IndependentTasksJob(16));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_BatchAtWorkers)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
