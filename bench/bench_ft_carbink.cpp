// Copyright (c) memflow authors. MIT license.
//
// Reproduces **Challenge 8 / Carbink** (paper §3): fault-tolerant far memory
// via replication vs erasure-coded spansets with offloadable parity and
// compaction. Reports the trade-off triangle the paper cites Carbink for:
// memory overhead, normal-path cost, degraded-read cost, and recovery cost —
// plus correctness under injected node crashes.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ft/span_store.h"
#include "simhw/presets.h"

namespace memflow::bench {
namespace {

struct SchemeResult {
  double overhead = 0;
  SimDuration put_cost;
  SimDuration get_cost;
  SimDuration degraded_get_cost;
  SimDuration recovery_cost;
  std::uint64_t recovery_bytes = 0;
  int objects_lost = 0;
  bool intact_after_two_crashes = true;
};

SchemeResult RunScheme(ft::Redundancy scheme) {
  simhw::DisaggHandles rack =
      simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 12});
  region::RegionManager regions(*rack.cluster);
  ft::StoreOptions options;
  options.scheme = scheme;
  options.replicas = 3;
  options.rs_data = 4;
  options.rs_parity = 2;
  options.span_bytes = 64 * kKiB;
  ft::SpanStore store(regions, rack.far_mem, rack.cpus[0], options);

  // 48 objects of ~32 KiB.
  Rng rng(99);
  std::vector<ft::ObjectId> ids;
  std::vector<std::vector<std::uint8_t>> blobs;
  for (int i = 0; i < 48; ++i) {
    std::vector<std::uint8_t> blob(KiB(24) + rng.Below(KiB(16)));
    for (auto& b : blob) {
      b = static_cast<std::uint8_t>(rng.Below(256));
    }
    auto id = store.Put(blob);
    MEMFLOW_CHECK(id.ok());
    ids.push_back(*id);
    blobs.push_back(std::move(blob));
  }
  MEMFLOW_CHECK(store.Flush().ok());

  SchemeResult result;
  result.overhead = store.footprint().overhead();
  result.put_cost = store.total_cost();

  // Healthy read path.
  {
    const SimDuration before = store.total_cost();
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 8; ++i) {
      MEMFLOW_CHECK(store.Get(ids[static_cast<std::size_t>(i)], out).ok());
    }
    result.get_cost = store.total_cost() - before;
  }

  // Crash one node; measure degraded reads BEFORE repair (EC reconstructs on
  // the fly, replication reads a surviving copy, single-copy loses data).
  (void)rack.cluster->CrashNode(rack.memory_node_ids[0]);
  (void)regions.MarkLostOn(rack.far_mem[0]);
  {
    const SimDuration before = store.total_cost();
    std::vector<std::uint8_t> out;
    int ok = 0;
    for (int i = 0; i < 8; ++i) {
      if (store.Get(ids[static_cast<std::size_t>(i)], out).ok()) {
        ok++;
      }
    }
    result.degraded_get_cost = store.total_cost() - before;
    (void)ok;
  }

  // Repair, then a second crash; verify every object still reads back right.
  auto r1 = store.HandleDeviceFailure(rack.far_mem[0]);
  MEMFLOW_CHECK(r1.ok());
  result.recovery_cost = r1->cost;
  result.recovery_bytes = r1->bytes_rewritten;
  result.objects_lost = r1->objects_lost;

  (void)rack.cluster->CrashNode(rack.memory_node_ids[1]);
  auto r2 = store.HandleDeviceFailure(rack.far_mem[1]);
  MEMFLOW_CHECK(r2.ok());
  result.objects_lost += r2->objects_lost;

  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::vector<std::uint8_t> out;
    if (!store.Get(ids[i], out).ok() || out != blobs[i]) {
      result.intact_after_two_crashes = false;
    }
  }
  return result;
}

void PrintArtifact() {
  PrintHeader("Challenge 8 / Carbink — fault-tolerant far memory",
              "48 objects over 12 far-memory nodes; one crash, repair, second crash.\n"
              "Replication = 3 copies; erasure coding = RS(4,2) spansets with\n"
              "offloaded parity. The Carbink trade: ~1.5x memory vs 3x, at slower\n"
              "degraded reads and reconstruction-based recovery.");

  TextTable table({"Scheme", "Mem overhead", "Put cost", "Read (healthy)",
                   "Read (degraded)", "Recovery", "Lost", "All intact after 2 crashes"});
  SchemeResult repl;
  SchemeResult ec;
  for (const ft::Redundancy scheme :
       {ft::Redundancy::kNone, ft::Redundancy::kReplication,
        ft::Redundancy::kErasureCoding}) {
    const SchemeResult r = RunScheme(scheme);
    if (scheme == ft::Redundancy::kReplication) {
      repl = r;
    }
    if (scheme == ft::Redundancy::kErasureCoding) {
      ec = r;
    }
    table.AddRow({std::string(ft::RedundancyName(scheme)),
                  FormatDouble(r.overhead, 2) + "x", HumanDuration(r.put_cost),
                  HumanDuration(r.get_cost), HumanDuration(r.degraded_get_cost),
                  HumanDuration(r.recovery_cost) + " / " + HumanBytes(r.recovery_bytes),
                  std::to_string(r.objects_lost),
                  r.intact_after_two_crashes ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());

  const bool shape_ok = ec.overhead < repl.overhead * 0.65 &&
                        ec.degraded_get_cost.ns > repl.degraded_get_cost.ns &&
                        ec.intact_after_two_crashes && repl.intact_after_two_crashes &&
                        ec.objects_lost == 0 && repl.objects_lost == 0;
  std::printf("check: EC halves replication's footprint, survives the same crashes,\n"
              "and pays more on degraded reads -> %s\n\n", shape_ok ? "PASS" : "FAIL");
}

void BM_RsEncode(benchmark::State& state) {
  // Wall-clock Reed-Solomon encode of one RS(4,2) spanset of 64 KiB spans.
  ft::ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> data(4, std::vector<std::uint8_t>(64 * kKiB, 7));
  std::vector<std::vector<std::uint8_t>> parity(2, std::vector<std::uint8_t>(64 * kKiB));
  std::vector<std::span<const std::uint8_t>> d;
  std::vector<std::span<std::uint8_t>> p;
  for (auto& s : data) {
    d.emplace_back(s);
  }
  for (auto& s : parity) {
    p.emplace_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(d, p));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4 * 64 * kKiB);
}
BENCHMARK(BM_RsEncode);

void BM_RsReconstruct(benchmark::State& state) {
  ft::ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> shards(6, std::vector<std::uint8_t>(64 * kKiB, 9));
  {
    std::vector<std::span<const std::uint8_t>> d;
    std::vector<std::span<std::uint8_t>> p;
    for (int i = 0; i < 4; ++i) {
      d.emplace_back(shards[static_cast<std::size_t>(i)]);
    }
    for (int i = 4; i < 6; ++i) {
      p.emplace_back(shards[static_cast<std::size_t>(i)]);
    }
    MEMFLOW_CHECK(rs.Encode(d, p).ok());
  }
  std::vector<bool> present = {false, true, true, true, true, false};
  for (auto _ : state) {
    auto copy = shards;
    benchmark::DoNotOptimize(rs.Reconstruct(copy, present));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * kKiB);
}
BENCHMARK(BM_RsReconstruct);

}  // namespace
}  // namespace memflow::bench

MEMFLOW_BENCH_MAIN(memflow::bench::PrintArtifact)
