// Copyright (c) memflow authors. MIT license.
//
// memflow_top: live text dashboard over the runtime's time-series layer
// (DESIGN.md §13). Drives a stream of hospital pipelines (Figure 2) through
// an in-process runtime whose dispatch loop ticks a SnapshotRing on the
// virtual clock, and renders windowed throughput (jobs/s, tasks/s), queue
// depths, latency quantiles (p50/p99/p999 of queue wait and task duration),
// the control-plane phase breakdown from the self-profiler, and WARNING
// lines for trace-ring drops and overflowed metric families.
//
// Live mode redraws between jobs (ANSI clear). CI runs it one-shot:
//
//   memflow_top --once --json top.json
//
// writes the DashboardJson document and exits 0 only if the runtime stayed
// healthy. Optional artifacts: --counters FILE (Perfetto counter tracks over
// the whole ring), --flamegraph FILE (collapsed stacks of the control-plane
// self-profile), --health (append the doctor's runtime health report),
// --memory (append the access profiler's MRC/WSS/heatmap panel, §16).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/hospital.h"
#include "rts/serving.h"
#include "simhw/presets.h"
#include "telemetry/analyze/doctor.h"
#include "telemetry/export.h"
#include "telemetry/timeseries.h"
#include "testing/arrivals.h"

namespace mf = memflow;

namespace {

struct Options {
  int jobs = 6;
  int tenants = 2;  // open-loop serving tenants after the batch jobs (0: off)
  bool once = false;
  bool health = false;
  bool memory = false;  // append the access profiler's MRC/WSS/heatmap panel
  std::int64_t interval_us = 200;   // snapshot-ring tick interval (virtual)
  std::int64_t window_ms = 50;      // dashboard query window (virtual)
  const char* json_path = nullptr;
  const char* counters_path = nullptr;
  const char* flamegraph_path = nullptr;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--once] [--jobs N] [--tenants N] [--interval-us N]\n"
               "          [--window-ms N] [--json FILE|-] [--counters FILE]\n"
               "          [--flamegraph FILE] [--health] [--memory]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--once") == 0) {
      opts->once = true;
    } else if (std::strcmp(arg, "--health") == 0) {
      opts->health = true;
    } else if (std::strcmp(arg, "--memory") == 0) {
      opts->memory = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opts->jobs = std::atoi(v);
    } else if (std::strcmp(arg, "--tenants") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opts->tenants = std::atoi(v);
    } else if (std::strcmp(arg, "--interval-us") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opts->interval_us = std::atoll(v);
    } else if (std::strcmp(arg, "--window-ms") == 0) {
      const char* v = value();
      if (v == nullptr) return false;
      opts->window_ms = std::atoll(v);
    } else if (std::strcmp(arg, "--json") == 0) {
      opts->json_path = value();
      if (opts->json_path == nullptr) return false;
    } else if (std::strcmp(arg, "--counters") == 0) {
      opts->counters_path = value();
      if (opts->counters_path == nullptr) return false;
    } else if (std::strcmp(arg, "--flamegraph") == 0) {
      opts->flamegraph_path = value();
      if (opts->flamegraph_path == nullptr) return false;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return opts->jobs > 0 && opts->tenants >= 0 && opts->interval_us > 0 &&
         opts->window_ms > 0;
}

bool WriteFile(const char* path, const std::string& contents) {
  if (std::strcmp(path, "-") == 0) {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  const bool ok = std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    return 2;
  }

  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();
  mf::telemetry::Registry registry;
  mf::telemetry::TraceBuffer tracer;
  mf::telemetry::SnapshotRing ring(&registry, /*capacity=*/512);

  mf::rts::RuntimeOptions options;
  options.registry = &registry;
  options.tracer = &tracer;
  options.snapshot_ring = &ring;
  options.snapshot_interval = mf::SimDuration::Micros(opts.interval_us);
  mf::rts::Runtime runtime(*host.cluster, options);

  const mf::SimDuration window = mf::SimDuration::Millis(opts.window_ms);
  bool all_ok = true;
  for (int i = 0; i < opts.jobs; ++i) {
    mf::apps::hospital::HospitalSpec spec;
    spec.minutes = 6 * 60;
    spec.seed = 1337 + static_cast<std::uint64_t>(i);
    auto report = runtime.SubmitAndRun(mf::apps::hospital::BuildHospitalJob(spec));
    if (!report.ok() || !report->status.ok()) {
      std::fprintf(stderr, "job %d failed\n", i);
      all_ok = false;
      break;
    }
    if (!opts.once) {
      // Live redraw: clear screen, home cursor, current dashboard.
      const mf::telemetry::DashboardStats stats =
          mf::telemetry::ComputeDashboard(ring, window);
      std::printf("\x1b[2J\x1b[H%s", mf::telemetry::RenderDashboard(stats).c_str());
      std::fflush(stdout);
    }
  }

  // Open-loop serving phase (DESIGN.md §15): N tenants stream small CPU jobs
  // through the admission layer on the same virtual timeline, so the
  // dashboard's per-tenant rows (completed/s, latency p50/p99/p999) carry
  // live data. Arrivals are offset to the current clock — the batch phase
  // above already advanced virtual time.
  if (all_ok && opts.tenants > 0) {
    mf::rts::ServingLayer serving(runtime);
    for (int t = 0; t < opts.tenants; ++t) {
      mf::rts::TenantConfig cfg;
      cfg.name = "tenant" + std::to_string(t);
      cfg.weight = 1.0 + static_cast<double>(t);
      (void)serving.AddTenant(cfg);
    }
    std::vector<mf::testing::ArrivalSpec> specs(
        static_cast<std::size_t>(opts.tenants));
    for (mf::testing::ArrivalSpec& s : specs) {
      s.kind = mf::testing::ArrivalKind::kPoisson;
      s.rate_per_sec = 20000.0;
    }
    const mf::SimTime base = runtime.clock().now();
    const auto arrivals = mf::testing::MergeArrivals(
        specs, /*seed=*/0x70BEDA5Dull, mf::SimTime{} + mf::SimDuration::Millis(20));
    for (const mf::testing::MergedArrival& a : arrivals) {
      runtime.ScheduleAt(base + (a.at - mf::SimTime{}), [&serving, a](mf::SimTime) {
        mf::dataflow::Job job("serve-t" + std::to_string(a.tenant));
        mf::dataflow::TaskProperties props;
        props.compute_device = mf::simhw::ComputeDeviceKind::kCPU;
        props.base_work = 50000;
        job.AddTask("t", props, [](mf::dataflow::TaskContext& ctx) {
          ctx.ChargeCompute(50000.0);
          return mf::OkStatus();
        });
        (void)serving.Offer(a.tenant, std::move(job));
      });
    }
    if (!runtime.RunToCompletion().ok()) {
      std::fprintf(stderr, "serving phase failed\n");
      all_ok = false;
    }
  }

  const mf::telemetry::DashboardStats stats = mf::telemetry::ComputeDashboard(ring, window);
  if (opts.once) {
    std::printf("%s", mf::telemetry::RenderDashboard(stats).c_str());
  }
  if (opts.health) {
    std::printf("\n%s", mf::telemetry::analyze::RenderRuntimeHealth(
                            ring.Latest() ? ring.Latest()->metrics : registry.Snapshot())
                            .c_str());
  }
  if (opts.memory) {
    std::printf("\n%s", runtime.regions().access_profiler().RenderPanel().c_str());
  }

  if (opts.json_path != nullptr &&
      !WriteFile(opts.json_path, mf::telemetry::DashboardJson(stats) + "\n")) {
    return 1;
  }
  if (opts.counters_path != nullptr &&
      !WriteFile(opts.counters_path, mf::telemetry::ExportCounterTracksJson(ring))) {
    return 1;
  }
  if (opts.flamegraph_path != nullptr &&
      !WriteFile(opts.flamegraph_path, runtime.self_profiler().CollapsedStacks())) {
    return 1;
  }

  if (!all_ok) {
    return 1;
  }
  // One-shot health gate for CI: the run itself must not have degraded its
  // own observability (ring wrap is tolerated and only warned about; a
  // missing snapshot stream is not).
  if (ring.size() < 2) {
    std::fprintf(stderr, "snapshot ring never accumulated history\n");
    return 1;
  }
  return 0;
}
