#!/usr/bin/env python3
"""CI perf-regression gate over the bench artifact (BENCH_rts.json).

Compares a freshly generated artifact against the committed baseline
(BENCH_baseline.json). Only metrics with deterministic units are gated:

  ns    -- virtual-time costs from the simulator (bit-stable run to run);
           gated within a relative tolerance (default 10%),
  bool  -- claim checks; must match exactly.

Wall-clock units (tasks/s, MiB/s, x, ...) vary with host load and are
reported informationally, never gated.

Wall-clock throughput metrics can additionally be held above an absolute
floor with --min-improvement NAME:FLOOR (repeatable). Floors are a ratchet:
they encode "this optimization landed and must not silently un-land" — e.g.
tasks_per_sec_1_worker:337.5 pins the hot-path overhaul at >= 2x the PR 7
baseline (168.75) even though tasks/s is otherwise informational.

Usage: check_bench.py BASELINE CURRENT [--tolerance 0.10]
                      [--min-improvement NAME:FLOOR]...
Exit status: 0 = within tolerance, 1 = regression (delta table printed).
"""

import argparse
import json
import sys

GATED_UNITS = {"ns", "bool"}


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    for bench in doc.get("benches", []):
        for result in bench.get("results", []):
            metrics[result["name"]] = (float(result["value"]), result.get("unit", ""))
    return metrics


def fmt(value, unit):
    if unit == "bool":
        return "true" if value else "false"
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.3f}"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative delta for ns metrics (default 0.10)")
    parser.add_argument("--min-improvement", action="append", default=[],
                        metavar="NAME:FLOOR",
                        help="fail unless current metric NAME >= FLOOR "
                             "(absolute ratchet for wall-clock metrics; repeatable)")
    args = parser.parse_args()

    floors = []
    for spec in args.min_improvement:
        name, sep, floor = spec.rpartition(":")
        if not sep:
            parser.error(f"--min-improvement needs NAME:FLOOR, got {spec!r}")
        try:
            floors.append((name, float(floor)))
        except ValueError:
            parser.error(f"--min-improvement floor must be a number, got {spec!r}")

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    rows = []
    failures = 0
    for name in sorted(base):
        bval, unit = base[name]
        if name not in cur:
            rows.append((name, unit, fmt(bval, unit), "MISSING", "-", "FAIL"))
            failures += 1
            continue
        cval, cunit = cur[name]
        if unit not in GATED_UNITS:
            delta = f"{(cval - bval) / bval:+.1%}" if bval else "-"
            rows.append((name, unit, fmt(bval, unit), fmt(cval, unit), delta, "info"))
            continue
        if cunit != unit:
            rows.append((name, unit, fmt(bval, unit), f"unit={cunit}", "-", "FAIL"))
            failures += 1
            continue
        if unit == "bool":
            ok = bval == cval
        elif bval == 0:
            ok = cval == 0
        else:
            ok = abs(cval - bval) / abs(bval) <= args.tolerance
        if bval == 0:
            delta = "0" if cval == 0 else "new-nonzero"
        else:
            delta = f"{(cval - bval) / bval:+.1%}"
        rows.append((name, unit, fmt(bval, unit), fmt(cval, unit), delta,
                     "ok" if ok else "FAIL"))
        failures += 0 if ok else 1
    new_metrics = sorted(set(cur) - set(base))
    for name in new_metrics:
        cval, unit = cur[name]
        rows.append((name, unit, "-", fmt(cval, unit), "-", "new"))

    widths = [max(len(str(row[i])) for row in rows + [("Metric", "Unit", "Baseline",
                                                       "Current", "Delta", "Status")])
              for i in range(6)]
    header = ("Metric", "Unit", "Baseline", "Current", "Delta", "Status")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    if floors:
        print("\nMinimum-improvement ratchets:")
        for name, floor in floors:
            if name not in cur:
                print(f"  {name}: MISSING from current artifact (floor {floor:,.1f}) -> FAIL")
                failures += 1
                continue
            cval, unit = cur[name]
            ok = cval >= floor
            print(f"  {name}: {cval:,.1f} {unit} vs floor {floor:,.1f} -> "
                  f"{'ok' if ok else 'FAIL'}")
            failures += 0 if ok else 1

    if new_metrics:
        # New metrics are ungated until the baseline learns about them — a
        # warning, not a failure, so adding a bench metric doesn't brick CI.
        print(f"\nWARNING: {len(new_metrics)} metric(s) present only in the current "
              f"artifact (not gated yet): {', '.join(new_metrics)}")
        print("Pick them up into the baseline with:")
        print(f"  cp {args.current} {args.baseline}")
    if failures:
        print(f"\nFAIL: {failures} gated metric(s) beyond {args.tolerance:.0%} tolerance "
              f"(units {sorted(GATED_UNITS)} are gated; wall-clock units are informational).")
        print("If the change is intentional, re-baseline with:")
        print(f"  cp {args.current} {args.baseline}")
        return 1
    print(f"\nOK: all gated metrics within {args.tolerance:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
