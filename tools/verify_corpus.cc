// Copyright (c) memflow authors. MIT license.
//
// CI gate: runs the full static verifier (ownership, property, graph, MHP,
// placement, capacity — DESIGN.md §6.1/§12) over every DAG the repository
// ships or generates:
//
//   1. the example/bench application jobs (DBMS, hospital, stencil, ML,
//      streaming) against a topology that can host each of them,
//   2. every job of the pinned 20-seed simulation corpus against its
//      scenario's own topology — with ZERO tolerance for errors: the
//      generator promises admissible-by-construction DAGs, so a single
//      analyzer error here is either a generator regression or an analyzer
//      false positive, and both must fail CI,
//   3. the deliberately inadmissible negative specs, asserting they ARE
//      flagged — so a change that silently blinds the analyzer also fails.
//
// Exit status is the number of failing checks (0 = gate passes).

#include <cstdio>
#include <string>

#include "analysis/verifier.h"
#include "apps/dbms.h"
#include "apps/hospital.h"
#include "apps/hpc.h"
#include "apps/ml.h"
#include "apps/streaming.h"
#include "simhw/presets.h"
#include "testing/scenario.h"
#include "testing/workload.h"

namespace {

int g_failures = 0;
int g_jobs_checked = 0;
int g_warnings = 0;
int g_notes = 0;

void Check(bool ok, const std::string& what, const memflow::analysis::Report& report) {
  if (!ok) {
    ++g_failures;
    std::printf("FAIL  %s\n%s", what.c_str(), report.ToString().c_str());
  }
}

// An admissible DAG: no errors allowed, warnings/notes tallied for the log.
void ExpectClean(const memflow::dataflow::Job& job, const memflow::simhw::Cluster* cluster,
                 const std::string& what) {
  const memflow::analysis::Report report =
      cluster ? memflow::analysis::Verify(job, cluster) : memflow::analysis::Verify(job);
  ++g_jobs_checked;
  g_warnings += report.warnings();
  for (const memflow::analysis::Diagnostic& d : report.diagnostics()) {
    g_notes += d.severity == memflow::analysis::Severity::kNote ? 1 : 0;
  }
  Check(report.ok(), what + ": expected no analyzer errors", report);
}

}  // namespace

int main() {
  namespace analysis = memflow::analysis;
  namespace apps = memflow::apps;
  namespace testing = memflow::testing;

  // --- 1. shipped application DAGs -------------------------------------------
  // The CXL expansion host has every media class the app jobs demand
  // (persistent PMem for the hospital alert log and the trained weights).
  {
    memflow::simhw::CxlHostHandles host = memflow::simhw::MakeCxlExpansionHost();
    ExpectClean(apps::dbms::BuildScanAggregateJob({}, 0.5), host.cluster.get(),
                "apps/dbms scan-aggregate");
    ExpectClean(apps::dbms::BuildJoinJob({}, {1000, 16, 2}), host.cluster.get(),
                "apps/dbms join");
    ExpectClean(apps::hospital::BuildHospitalJob({}), host.cluster.get(),
                "apps/hospital pipeline");
    ExpectClean(apps::hpc::BuildStencilJob({}), host.cluster.get(), "apps/hpc stencil");
    ExpectClean(apps::ml::BuildTrainingJob({}), host.cluster.get(), "apps/ml training");
    ExpectClean(apps::streaming::BuildStreamingJob({}), host.cluster.get(),
                "apps/streaming windows");
  }

  // --- 2. the pinned 20-seed simulation corpus --------------------------------
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const testing::Scenario scenario = testing::MakeScenario(seed);
    const testing::TopologyInstance topo = testing::BuildTopology(scenario.topology);
    for (const testing::JobSpec& spec : scenario.jobs) {
      ExpectClean(testing::BuildJob(spec), topo.cluster,
                  "corpus seed " + std::to_string(seed) + " job " + spec.name);
    }
  }

  // --- 3. negative specs: the analyzer must still bite ------------------------
  {
    const analysis::Report racy = analysis::Verify(testing::BuildJob(testing::MakeRacyJobSpec()));
    Check(racy.HasRule(analysis::kRuleMhpWriteWriteRace) && !racy.ok(),
          "negative racy spec: mhp-write-write-race must fire", racy);

    // A 4 x 512 KiB unordered fan-out against the smallest preset would still
    // fit, so build the probe on a deliberately tiny single-DIMM host.
    memflow::simhw::Cluster tiny;
    const memflow::simhw::NodeId node = tiny.AddNode("n0");
    const auto cpu = tiny.AddCompute(node, memflow::simhw::ComputeDeviceKind::kCPU, "cpu");
    const auto dram =
        tiny.AddMemory(node, memflow::simhw::MemoryDeviceKind::kDRAM, memflow::MiB(1), "dram");
    tiny.Link(tiny.VertexOf(cpu), tiny.VertexOf(dram), memflow::simhw::LinkKind::kMemBus);
    const analysis::Report over = analysis::Verify(
        testing::BuildJob(testing::MakeOvercommittedJobSpec(memflow::KiB(512), 4)), &tiny);
    Check(over.HasRule(analysis::kRuleCapOvercommit),
          "negative overcommitted spec: cap-overcommit must fire", over);
  }

  std::printf("verify_corpus: %d job(s) checked, %d warning(s), %d note(s), %d failure(s)\n",
              g_jobs_checked, g_warnings, g_notes, g_failures);
  return g_failures;
}
