file(REMOVE_RECURSE
  "libmemflow_region.a"
)
