
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/accessor.cc" "src/region/CMakeFiles/memflow_region.dir/accessor.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/accessor.cc.o.d"
  "/root/repo/src/region/crypto.cc" "src/region/CMakeFiles/memflow_region.dir/crypto.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/crypto.cc.o.d"
  "/root/repo/src/region/message_queue.cc" "src/region/CMakeFiles/memflow_region.dir/message_queue.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/message_queue.cc.o.d"
  "/root/repo/src/region/properties.cc" "src/region/CMakeFiles/memflow_region.dir/properties.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/properties.cc.o.d"
  "/root/repo/src/region/region_manager.cc" "src/region/CMakeFiles/memflow_region.dir/region_manager.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/region_manager.cc.o.d"
  "/root/repo/src/region/remote_ptr.cc" "src/region/CMakeFiles/memflow_region.dir/remote_ptr.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/remote_ptr.cc.o.d"
  "/root/repo/src/region/swizzle_cache.cc" "src/region/CMakeFiles/memflow_region.dir/swizzle_cache.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/swizzle_cache.cc.o.d"
  "/root/repo/src/region/tiering.cc" "src/region/CMakeFiles/memflow_region.dir/tiering.cc.o" "gcc" "src/region/CMakeFiles/memflow_region.dir/tiering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simhw/CMakeFiles/memflow_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
