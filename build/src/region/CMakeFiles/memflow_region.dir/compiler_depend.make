# Empty compiler generated dependencies file for memflow_region.
# This may be replaced when dependencies are built.
