file(REMOVE_RECURSE
  "CMakeFiles/memflow_region.dir/accessor.cc.o"
  "CMakeFiles/memflow_region.dir/accessor.cc.o.d"
  "CMakeFiles/memflow_region.dir/crypto.cc.o"
  "CMakeFiles/memflow_region.dir/crypto.cc.o.d"
  "CMakeFiles/memflow_region.dir/message_queue.cc.o"
  "CMakeFiles/memflow_region.dir/message_queue.cc.o.d"
  "CMakeFiles/memflow_region.dir/properties.cc.o"
  "CMakeFiles/memflow_region.dir/properties.cc.o.d"
  "CMakeFiles/memflow_region.dir/region_manager.cc.o"
  "CMakeFiles/memflow_region.dir/region_manager.cc.o.d"
  "CMakeFiles/memflow_region.dir/remote_ptr.cc.o"
  "CMakeFiles/memflow_region.dir/remote_ptr.cc.o.d"
  "CMakeFiles/memflow_region.dir/swizzle_cache.cc.o"
  "CMakeFiles/memflow_region.dir/swizzle_cache.cc.o.d"
  "CMakeFiles/memflow_region.dir/tiering.cc.o"
  "CMakeFiles/memflow_region.dir/tiering.cc.o.d"
  "libmemflow_region.a"
  "libmemflow_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
