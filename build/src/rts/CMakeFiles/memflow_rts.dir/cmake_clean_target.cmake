file(REMOVE_RECURSE
  "libmemflow_rts.a"
)
