
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rts/checkpoint.cc" "src/rts/CMakeFiles/memflow_rts.dir/checkpoint.cc.o" "gcc" "src/rts/CMakeFiles/memflow_rts.dir/checkpoint.cc.o.d"
  "/root/repo/src/rts/cost_model.cc" "src/rts/CMakeFiles/memflow_rts.dir/cost_model.cc.o" "gcc" "src/rts/CMakeFiles/memflow_rts.dir/cost_model.cc.o.d"
  "/root/repo/src/rts/placement.cc" "src/rts/CMakeFiles/memflow_rts.dir/placement.cc.o" "gcc" "src/rts/CMakeFiles/memflow_rts.dir/placement.cc.o.d"
  "/root/repo/src/rts/profiler.cc" "src/rts/CMakeFiles/memflow_rts.dir/profiler.cc.o" "gcc" "src/rts/CMakeFiles/memflow_rts.dir/profiler.cc.o.d"
  "/root/repo/src/rts/runtime.cc" "src/rts/CMakeFiles/memflow_rts.dir/runtime.cc.o" "gcc" "src/rts/CMakeFiles/memflow_rts.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/memflow_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/memflow_region.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/memflow_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
