file(REMOVE_RECURSE
  "CMakeFiles/memflow_rts.dir/checkpoint.cc.o"
  "CMakeFiles/memflow_rts.dir/checkpoint.cc.o.d"
  "CMakeFiles/memflow_rts.dir/cost_model.cc.o"
  "CMakeFiles/memflow_rts.dir/cost_model.cc.o.d"
  "CMakeFiles/memflow_rts.dir/placement.cc.o"
  "CMakeFiles/memflow_rts.dir/placement.cc.o.d"
  "CMakeFiles/memflow_rts.dir/profiler.cc.o"
  "CMakeFiles/memflow_rts.dir/profiler.cc.o.d"
  "CMakeFiles/memflow_rts.dir/runtime.cc.o"
  "CMakeFiles/memflow_rts.dir/runtime.cc.o.d"
  "libmemflow_rts.a"
  "libmemflow_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
