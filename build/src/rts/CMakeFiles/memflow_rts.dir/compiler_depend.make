# Empty compiler generated dependencies file for memflow_rts.
# This may be replaced when dependencies are built.
