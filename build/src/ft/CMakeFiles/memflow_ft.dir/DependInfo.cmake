
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/gf256.cc" "src/ft/CMakeFiles/memflow_ft.dir/gf256.cc.o" "gcc" "src/ft/CMakeFiles/memflow_ft.dir/gf256.cc.o.d"
  "/root/repo/src/ft/reed_solomon.cc" "src/ft/CMakeFiles/memflow_ft.dir/reed_solomon.cc.o" "gcc" "src/ft/CMakeFiles/memflow_ft.dir/reed_solomon.cc.o.d"
  "/root/repo/src/ft/span_store.cc" "src/ft/CMakeFiles/memflow_ft.dir/span_store.cc.o" "gcc" "src/ft/CMakeFiles/memflow_ft.dir/span_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/region/CMakeFiles/memflow_region.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/memflow_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
