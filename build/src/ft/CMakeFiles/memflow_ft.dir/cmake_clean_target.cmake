file(REMOVE_RECURSE
  "libmemflow_ft.a"
)
