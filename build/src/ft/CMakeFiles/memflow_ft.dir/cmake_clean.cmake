file(REMOVE_RECURSE
  "CMakeFiles/memflow_ft.dir/gf256.cc.o"
  "CMakeFiles/memflow_ft.dir/gf256.cc.o.d"
  "CMakeFiles/memflow_ft.dir/reed_solomon.cc.o"
  "CMakeFiles/memflow_ft.dir/reed_solomon.cc.o.d"
  "CMakeFiles/memflow_ft.dir/span_store.cc.o"
  "CMakeFiles/memflow_ft.dir/span_store.cc.o.d"
  "libmemflow_ft.a"
  "libmemflow_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
