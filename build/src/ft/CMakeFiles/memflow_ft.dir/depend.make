# Empty dependencies file for memflow_ft.
# This may be replaced when dependencies are built.
