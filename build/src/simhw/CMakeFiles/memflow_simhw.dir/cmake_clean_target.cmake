file(REMOVE_RECURSE
  "libmemflow_simhw.a"
)
