file(REMOVE_RECURSE
  "CMakeFiles/memflow_simhw.dir/cluster.cc.o"
  "CMakeFiles/memflow_simhw.dir/cluster.cc.o.d"
  "CMakeFiles/memflow_simhw.dir/compute.cc.o"
  "CMakeFiles/memflow_simhw.dir/compute.cc.o.d"
  "CMakeFiles/memflow_simhw.dir/device.cc.o"
  "CMakeFiles/memflow_simhw.dir/device.cc.o.d"
  "CMakeFiles/memflow_simhw.dir/fault.cc.o"
  "CMakeFiles/memflow_simhw.dir/fault.cc.o.d"
  "CMakeFiles/memflow_simhw.dir/presets.cc.o"
  "CMakeFiles/memflow_simhw.dir/presets.cc.o.d"
  "CMakeFiles/memflow_simhw.dir/topology.cc.o"
  "CMakeFiles/memflow_simhw.dir/topology.cc.o.d"
  "libmemflow_simhw.a"
  "libmemflow_simhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_simhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
