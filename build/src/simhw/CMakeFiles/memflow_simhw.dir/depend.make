# Empty dependencies file for memflow_simhw.
# This may be replaced when dependencies are built.
