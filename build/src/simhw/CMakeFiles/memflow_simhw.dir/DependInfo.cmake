
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simhw/cluster.cc" "src/simhw/CMakeFiles/memflow_simhw.dir/cluster.cc.o" "gcc" "src/simhw/CMakeFiles/memflow_simhw.dir/cluster.cc.o.d"
  "/root/repo/src/simhw/compute.cc" "src/simhw/CMakeFiles/memflow_simhw.dir/compute.cc.o" "gcc" "src/simhw/CMakeFiles/memflow_simhw.dir/compute.cc.o.d"
  "/root/repo/src/simhw/device.cc" "src/simhw/CMakeFiles/memflow_simhw.dir/device.cc.o" "gcc" "src/simhw/CMakeFiles/memflow_simhw.dir/device.cc.o.d"
  "/root/repo/src/simhw/fault.cc" "src/simhw/CMakeFiles/memflow_simhw.dir/fault.cc.o" "gcc" "src/simhw/CMakeFiles/memflow_simhw.dir/fault.cc.o.d"
  "/root/repo/src/simhw/presets.cc" "src/simhw/CMakeFiles/memflow_simhw.dir/presets.cc.o" "gcc" "src/simhw/CMakeFiles/memflow_simhw.dir/presets.cc.o.d"
  "/root/repo/src/simhw/topology.cc" "src/simhw/CMakeFiles/memflow_simhw.dir/topology.cc.o" "gcc" "src/simhw/CMakeFiles/memflow_simhw.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
