file(REMOVE_RECURSE
  "libmemflow_common.a"
)
