file(REMOVE_RECURSE
  "CMakeFiles/memflow_common.dir/log.cc.o"
  "CMakeFiles/memflow_common.dir/log.cc.o.d"
  "CMakeFiles/memflow_common.dir/status.cc.o"
  "CMakeFiles/memflow_common.dir/status.cc.o.d"
  "CMakeFiles/memflow_common.dir/strings.cc.o"
  "CMakeFiles/memflow_common.dir/strings.cc.o.d"
  "CMakeFiles/memflow_common.dir/table.cc.o"
  "CMakeFiles/memflow_common.dir/table.cc.o.d"
  "libmemflow_common.a"
  "libmemflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
