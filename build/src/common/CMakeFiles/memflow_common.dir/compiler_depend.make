# Empty compiler generated dependencies file for memflow_common.
# This may be replaced when dependencies are built.
