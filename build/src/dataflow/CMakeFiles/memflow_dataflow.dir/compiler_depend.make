# Empty compiler generated dependencies file for memflow_dataflow.
# This may be replaced when dependencies are built.
