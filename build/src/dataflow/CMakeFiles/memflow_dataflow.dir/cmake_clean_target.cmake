file(REMOVE_RECURSE
  "libmemflow_dataflow.a"
)
