file(REMOVE_RECURSE
  "CMakeFiles/memflow_dataflow.dir/context.cc.o"
  "CMakeFiles/memflow_dataflow.dir/context.cc.o.d"
  "CMakeFiles/memflow_dataflow.dir/job.cc.o"
  "CMakeFiles/memflow_dataflow.dir/job.cc.o.d"
  "libmemflow_dataflow.a"
  "libmemflow_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
