file(REMOVE_RECURSE
  "CMakeFiles/memflow_apps.dir/dbms.cc.o"
  "CMakeFiles/memflow_apps.dir/dbms.cc.o.d"
  "CMakeFiles/memflow_apps.dir/hospital.cc.o"
  "CMakeFiles/memflow_apps.dir/hospital.cc.o.d"
  "CMakeFiles/memflow_apps.dir/hpc.cc.o"
  "CMakeFiles/memflow_apps.dir/hpc.cc.o.d"
  "CMakeFiles/memflow_apps.dir/ml.cc.o"
  "CMakeFiles/memflow_apps.dir/ml.cc.o.d"
  "CMakeFiles/memflow_apps.dir/streaming.cc.o"
  "CMakeFiles/memflow_apps.dir/streaming.cc.o.d"
  "libmemflow_apps.a"
  "libmemflow_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memflow_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
