
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dbms.cc" "src/apps/CMakeFiles/memflow_apps.dir/dbms.cc.o" "gcc" "src/apps/CMakeFiles/memflow_apps.dir/dbms.cc.o.d"
  "/root/repo/src/apps/hospital.cc" "src/apps/CMakeFiles/memflow_apps.dir/hospital.cc.o" "gcc" "src/apps/CMakeFiles/memflow_apps.dir/hospital.cc.o.d"
  "/root/repo/src/apps/hpc.cc" "src/apps/CMakeFiles/memflow_apps.dir/hpc.cc.o" "gcc" "src/apps/CMakeFiles/memflow_apps.dir/hpc.cc.o.d"
  "/root/repo/src/apps/ml.cc" "src/apps/CMakeFiles/memflow_apps.dir/ml.cc.o" "gcc" "src/apps/CMakeFiles/memflow_apps.dir/ml.cc.o.d"
  "/root/repo/src/apps/streaming.cc" "src/apps/CMakeFiles/memflow_apps.dir/streaming.cc.o" "gcc" "src/apps/CMakeFiles/memflow_apps.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/memflow_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/memflow_region.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/memflow_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
