file(REMOVE_RECURSE
  "libmemflow_apps.a"
)
