# Empty dependencies file for memflow_apps.
# This may be replaced when dependencies are built.
