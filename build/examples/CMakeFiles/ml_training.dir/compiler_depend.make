# Empty compiler generated dependencies file for ml_training.
# This may be replaced when dependencies are built.
