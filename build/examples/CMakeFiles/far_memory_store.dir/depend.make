# Empty dependencies file for far_memory_store.
# This may be replaced when dependencies are built.
