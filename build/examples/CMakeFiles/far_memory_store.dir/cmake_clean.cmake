file(REMOVE_RECURSE
  "CMakeFiles/far_memory_store.dir/far_memory_store.cpp.o"
  "CMakeFiles/far_memory_store.dir/far_memory_store.cpp.o.d"
  "far_memory_store"
  "far_memory_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/far_memory_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
