# Empty compiler generated dependencies file for far_memory_store.
# This may be replaced when dependencies are built.
