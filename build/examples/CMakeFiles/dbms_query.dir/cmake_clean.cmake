file(REMOVE_RECURSE
  "CMakeFiles/dbms_query.dir/dbms_query.cpp.o"
  "CMakeFiles/dbms_query.dir/dbms_query.cpp.o.d"
  "dbms_query"
  "dbms_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
