# Empty dependencies file for dbms_query.
# This may be replaced when dependencies are built.
