# Empty compiler generated dependencies file for hospital_pipeline.
# This may be replaced when dependencies are built.
