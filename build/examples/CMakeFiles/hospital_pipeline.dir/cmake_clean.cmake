file(REMOVE_RECURSE
  "CMakeFiles/hospital_pipeline.dir/hospital_pipeline.cpp.o"
  "CMakeFiles/hospital_pipeline.dir/hospital_pipeline.cpp.o.d"
  "hospital_pipeline"
  "hospital_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
