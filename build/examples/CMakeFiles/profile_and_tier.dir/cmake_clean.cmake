file(REMOVE_RECURSE
  "CMakeFiles/profile_and_tier.dir/profile_and_tier.cpp.o"
  "CMakeFiles/profile_and_tier.dir/profile_and_tier.cpp.o.d"
  "profile_and_tier"
  "profile_and_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
