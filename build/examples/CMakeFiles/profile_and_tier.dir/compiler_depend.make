# Empty compiler generated dependencies file for profile_and_tier.
# This may be replaced when dependencies are built.
