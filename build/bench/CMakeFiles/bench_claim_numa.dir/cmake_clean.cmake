file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_numa.dir/bench_claim_numa.cpp.o"
  "CMakeFiles/bench_claim_numa.dir/bench_claim_numa.cpp.o.d"
  "bench_claim_numa"
  "bench_claim_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
