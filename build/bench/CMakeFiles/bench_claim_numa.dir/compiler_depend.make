# Empty compiler generated dependencies file for bench_claim_numa.
# This may be replaced when dependencies are built.
