file(REMOVE_RECURSE
  "CMakeFiles/bench_async_interface.dir/bench_async_interface.cpp.o"
  "CMakeFiles/bench_async_interface.dir/bench_async_interface.cpp.o.d"
  "bench_async_interface"
  "bench_async_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
