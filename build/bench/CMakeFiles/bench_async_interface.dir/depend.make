# Empty dependencies file for bench_async_interface.
# This may be replaced when dependencies are built.
