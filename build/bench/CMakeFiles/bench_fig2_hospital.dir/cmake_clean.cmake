file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hospital.dir/bench_fig2_hospital.cpp.o"
  "CMakeFiles/bench_fig2_hospital.dir/bench_fig2_hospital.cpp.o.d"
  "bench_fig2_hospital"
  "bench_fig2_hospital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hospital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
