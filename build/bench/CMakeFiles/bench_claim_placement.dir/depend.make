# Empty dependencies file for bench_claim_placement.
# This may be replaced when dependencies are built.
