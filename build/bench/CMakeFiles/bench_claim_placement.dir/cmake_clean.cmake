file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_placement.dir/bench_claim_placement.cpp.o"
  "CMakeFiles/bench_claim_placement.dir/bench_claim_placement.cpp.o.d"
  "bench_claim_placement"
  "bench_claim_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
