file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ownership.dir/bench_fig4_ownership.cpp.o"
  "CMakeFiles/bench_fig4_ownership.dir/bench_fig4_ownership.cpp.o.d"
  "bench_fig4_ownership"
  "bench_fig4_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
