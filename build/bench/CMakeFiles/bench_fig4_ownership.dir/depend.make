# Empty dependencies file for bench_fig4_ownership.
# This may be replaced when dependencies are built.
