file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pooling.dir/bench_fig1_pooling.cpp.o"
  "CMakeFiles/bench_fig1_pooling.dir/bench_fig1_pooling.cpp.o.d"
  "bench_fig1_pooling"
  "bench_fig1_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
