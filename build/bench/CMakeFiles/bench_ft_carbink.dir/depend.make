# Empty dependencies file for bench_ft_carbink.
# This may be replaced when dependencies are built.
