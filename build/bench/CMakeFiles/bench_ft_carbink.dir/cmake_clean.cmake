file(REMOVE_RECURSE
  "CMakeFiles/bench_ft_carbink.dir/bench_ft_carbink.cpp.o"
  "CMakeFiles/bench_ft_carbink.dir/bench_ft_carbink.cpp.o.d"
  "bench_ft_carbink"
  "bench_ft_carbink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ft_carbink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
