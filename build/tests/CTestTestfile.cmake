# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simhw_device_test[1]_include.cmake")
include("/root/repo/build/tests/simhw_topology_test[1]_include.cmake")
include("/root/repo/build/tests/simhw_clock_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/region_ptr_tiering_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/rts_test[1]_include.cmake")
include("/root/repo/build/tests/ft_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_swizzle_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/presets_invariant_test[1]_include.cmake")
include("/root/repo/build/tests/span_store_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/apps_generator_test[1]_include.cmake")
include("/root/repo/build/tests/rts_rack_test[1]_include.cmake")
include("/root/repo/build/tests/message_queue_test[1]_include.cmake")
