file(REMOVE_RECURSE
  "CMakeFiles/ft_test.dir/ft_test.cc.o"
  "CMakeFiles/ft_test.dir/ft_test.cc.o.d"
  "ft_test"
  "ft_test.pdb"
  "ft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
