file(REMOVE_RECURSE
  "CMakeFiles/rts_test.dir/rts_test.cc.o"
  "CMakeFiles/rts_test.dir/rts_test.cc.o.d"
  "rts_test"
  "rts_test.pdb"
  "rts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
