# Empty compiler generated dependencies file for profiler_swizzle_test.
# This may be replaced when dependencies are built.
