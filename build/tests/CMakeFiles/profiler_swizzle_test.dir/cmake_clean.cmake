file(REMOVE_RECURSE
  "CMakeFiles/profiler_swizzle_test.dir/profiler_swizzle_test.cc.o"
  "CMakeFiles/profiler_swizzle_test.dir/profiler_swizzle_test.cc.o.d"
  "profiler_swizzle_test"
  "profiler_swizzle_test.pdb"
  "profiler_swizzle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_swizzle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
