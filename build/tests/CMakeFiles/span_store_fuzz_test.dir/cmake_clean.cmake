file(REMOVE_RECURSE
  "CMakeFiles/span_store_fuzz_test.dir/span_store_fuzz_test.cc.o"
  "CMakeFiles/span_store_fuzz_test.dir/span_store_fuzz_test.cc.o.d"
  "span_store_fuzz_test"
  "span_store_fuzz_test.pdb"
  "span_store_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/span_store_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
