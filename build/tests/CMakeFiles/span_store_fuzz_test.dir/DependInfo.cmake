
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/span_store_fuzz_test.cc" "tests/CMakeFiles/span_store_fuzz_test.dir/span_store_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/span_store_fuzz_test.dir/span_store_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/memflow_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/memflow_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/memflow_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/memflow_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/memflow_region.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/memflow_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
