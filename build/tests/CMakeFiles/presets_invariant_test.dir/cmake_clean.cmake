file(REMOVE_RECURSE
  "CMakeFiles/presets_invariant_test.dir/presets_invariant_test.cc.o"
  "CMakeFiles/presets_invariant_test.dir/presets_invariant_test.cc.o.d"
  "presets_invariant_test"
  "presets_invariant_test.pdb"
  "presets_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presets_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
