# Empty compiler generated dependencies file for region_ptr_tiering_test.
# This may be replaced when dependencies are built.
