file(REMOVE_RECURSE
  "CMakeFiles/region_ptr_tiering_test.dir/region_ptr_tiering_test.cc.o"
  "CMakeFiles/region_ptr_tiering_test.dir/region_ptr_tiering_test.cc.o.d"
  "region_ptr_tiering_test"
  "region_ptr_tiering_test.pdb"
  "region_ptr_tiering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_ptr_tiering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
