file(REMOVE_RECURSE
  "CMakeFiles/rts_rack_test.dir/rts_rack_test.cc.o"
  "CMakeFiles/rts_rack_test.dir/rts_rack_test.cc.o.d"
  "rts_rack_test"
  "rts_rack_test.pdb"
  "rts_rack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_rack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
