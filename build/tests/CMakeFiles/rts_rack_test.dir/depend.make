# Empty dependencies file for rts_rack_test.
# This may be replaced when dependencies are built.
