# Empty dependencies file for simhw_clock_test.
# This may be replaced when dependencies are built.
