file(REMOVE_RECURSE
  "CMakeFiles/simhw_clock_test.dir/simhw_clock_test.cc.o"
  "CMakeFiles/simhw_clock_test.dir/simhw_clock_test.cc.o.d"
  "simhw_clock_test"
  "simhw_clock_test.pdb"
  "simhw_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simhw_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
