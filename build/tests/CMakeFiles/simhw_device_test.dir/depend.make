# Empty dependencies file for simhw_device_test.
# This may be replaced when dependencies are built.
