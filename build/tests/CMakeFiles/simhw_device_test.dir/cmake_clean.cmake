file(REMOVE_RECURSE
  "CMakeFiles/simhw_device_test.dir/simhw_device_test.cc.o"
  "CMakeFiles/simhw_device_test.dir/simhw_device_test.cc.o.d"
  "simhw_device_test"
  "simhw_device_test.pdb"
  "simhw_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simhw_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
