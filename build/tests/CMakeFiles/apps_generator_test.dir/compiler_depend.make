# Empty compiler generated dependencies file for apps_generator_test.
# This may be replaced when dependencies are built.
