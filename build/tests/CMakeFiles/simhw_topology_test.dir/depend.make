# Empty dependencies file for simhw_topology_test.
# This may be replaced when dependencies are built.
