file(REMOVE_RECURSE
  "CMakeFiles/simhw_topology_test.dir/simhw_topology_test.cc.o"
  "CMakeFiles/simhw_topology_test.dir/simhw_topology_test.cc.o.d"
  "simhw_topology_test"
  "simhw_topology_test.pdb"
  "simhw_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simhw_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
