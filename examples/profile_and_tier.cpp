// Copyright (c) memflow authors. MIT license.
//
// Observability + locality tooling (paper §3, Challenge 8): runs a dataflow
// job and prints the 4-level profile (job / task / region-class / device),
// then demonstrates the remotable-pointer stack: RemotePtr hotness tags, the
// swizzle cache serving far-memory objects locally, and the tiering daemon
// promoting a hot region.

#include <cstdio>

#include "apps/dbms.h"
#include "region/swizzle_cache.h"
#include "region/tiering.h"
#include "rts/profiler.h"
#include "simhw/presets.h"

namespace mf = memflow;

int main() {
  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();

  // --- Part 1: the multi-level profiler over a real query --------------------
  {
    mf::rts::Runtime runtime(*host.cluster);
    mf::apps::dbms::TableSpec fact{.rows = 80000, .groups = 500, .seed = 5};
    mf::apps::dbms::TableSpec dim{.rows = 500, .groups = 16, .seed = 6};
    auto report = runtime.SubmitAndRun(mf::apps::dbms::BuildJoinJob(fact, dim));
    if (!report.ok() || !report->status.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    auto profile = mf::rts::ProfileJob(runtime, report->id);
    if (!profile.ok()) {
      std::fprintf(stderr, "profile failed: %s\n", profile.status().ToString().c_str());
      return 1;
    }
    std::printf("Multi-level profile of the hash-join query "
                "(Challenge 8: profiling across abstraction layers)\n\n%s\n",
                mf::rts::RenderProfile(runtime, *profile).c_str());
  }

  // --- Part 2: remotable pointers + swizzle cache + tiering -------------------
  mf::region::RegionManager mgr(*host.cluster);
  constexpr mf::region::Principal kApp{1, 1};

  // A far-memory array of doubles, accessed through RemotePtrs.
  auto far = mgr.AllocateOn(host.disagg, mf::MiB(2), mf::region::Properties{}, kApp);
  if (!far.ok()) {
    return 1;
  }
  mf::region::SwizzleCache cache(mgr, host.cpu, kApp, mf::KiB(64));

  std::printf("Remotable pointers over %s:\n",
              host.cluster->memory(mgr.Info(*far)->device).name().c_str());
  auto ptr = mf::region::RemotePtr<double>::Make(*far, 1000);
  for (int round = 0; round < 3; ++round) {
    auto cost = cache.Pin(ptr);
    if (!cost.ok()) {
      return 1;
    }
    *ptr.raw() += 1.0;  // dereference at local speed while pinned
    const double value = *ptr;
    (void)cache.Unpin(ptr, *far, 1000, /*dirty=*/true);
    std::printf("  round %d: fetch cost %-10s value %.0f  hotness tag %u\n", round,
                mf::HumanDuration(*cost).c_str(), value, ptr.hotness());
  }
  std::printf("  cache: %llu miss, %llu hits (only the first touch paid far latency)\n\n",
              static_cast<unsigned long long>(cache.stats().misses),
              static_cast<unsigned long long>(cache.stats().hits));

  // Tiering: hammer a region on the CXL expander, let the daemon promote it.
  auto hot = mgr.AllocateOn(host.cxl_dram, mf::MiB(2), mf::region::Properties{}, kApp);
  if (!hot.ok()) {
    return 1;
  }
  std::vector<char> buf(mf::KiB(64));
  for (int i = 0; i < 300; ++i) {
    auto acc = mgr.OpenAsync(*hot, kApp, host.cpu);
    acc->EnqueueRead(0, buf.data(), buf.size());
    (void)acc->Drain();
  }
  mf::region::TieringDaemon daemon(mgr, host.cpu);
  const auto before = host.cluster->memory(mgr.Info(*hot)->device).name();
  const mf::region::TieringReport tier_report = daemon.RunEpoch();
  const auto after = host.cluster->memory(mgr.Info(*hot)->device).name();
  std::printf("Tiering daemon: hot region %s -> %s (%d promoted, %s moved)\n", before.c_str(),
              after.c_str(), tier_report.promoted,
              mf::HumanBytes(tier_report.bytes_moved).c_str());
  return 0;
}
