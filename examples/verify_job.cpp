// Copyright (c) memflow authors. MIT license.
//
// The static verifier in action: a "borrow checker" for job DAGs.
//
//  1. Build a job with three classic ownership/property bugs — a double
//     transfer, a confidentiality downgrade, and a dead task — and show the
//     structured diagnostics analysis::Verify() produces for each.
//  2. Show the runtime refusing the job at admission (VerifyMode::kEnforce,
//     the default), before any resource is allocated.
//  3. Fix the bugs as the diagnostics' hints suggest and run the job.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/verify_job

#include <cstdio>

#include "analysis/verifier.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace mf = memflow;
using mf::dataflow::EdgeMode;
using mf::dataflow::EdgeOptions;
using mf::dataflow::TaskContext;
using mf::dataflow::TaskId;
using mf::dataflow::TaskProperties;

namespace {

mf::dataflow::TaskFn Nop() {
  return [](TaskContext&) { return mf::OkStatus(); };
}

// `buggy` injects the three violations; otherwise the job is the fixed
// version of the same pipeline.
mf::dataflow::Job MakePipeline(bool buggy) {
  mf::dataflow::Job job(buggy ? "pipeline-buggy" : "pipeline-fixed");

  TaskProperties ingest;
  ingest.confidential = true;  // raw records are sensitive
  ingest.output_bytes = 1 << 16;
  const TaskId t_ingest = job.AddTask("ingest", ingest, Nop());

  TaskProperties scrub;
  scrub.confidential = !buggy;  // BUG 2: scrub handles raw records unencrypted
  scrub.output_bytes = 1 << 16;
  const TaskId t_scrub = job.AddTask("scrub", scrub, Nop());

  TaskProperties publish;
  publish.declassifies = true;  // emits only aggregate counts
  publish.output_bytes = 1 << 10;
  const TaskId t_publish = job.AddTask("publish", publish, Nop());

  const TaskId t_audit = job.AddTask("audit", TaskProperties{}, Nop());

  MEMFLOW_CHECK(job.Connect(t_ingest, t_scrub, {EdgeMode::kMove}).ok());
  if (buggy) {
    // BUG 1: ingest's output was already moved to scrub — moving it again to
    // publish is a double transfer (and publish would read freed data).
    MEMFLOW_CHECK(job.Connect(t_ingest, t_publish, {EdgeMode::kMove}).ok());
    // BUG 3: audit is never connected — a dead task.
  } else {
    MEMFLOW_CHECK(job.Connect(t_scrub, t_publish).ok());
    MEMFLOW_CHECK(job.Connect(t_publish, t_audit).ok());
  }
  return job;
}

}  // namespace

int main() {
  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();

  // 1. Library layer: run the verifier directly and print the findings.
  const mf::analysis::Report report =
      mf::analysis::Verify(MakePipeline(/*buggy=*/true), host.cluster.get());
  std::printf("verifier findings for the buggy pipeline (%d error(s), %d warning(s)):\n",
              report.errors(), report.warnings());
  std::printf("%s\n", report.ToString().c_str());

  // 2. Admission layer: the runtime runs the same analysis before planning
  //    and rejects the job with the first error.
  mf::rts::Runtime runtime(*host.cluster);  // VerifyMode::kEnforce is default
  auto rejected = runtime.Submit(MakePipeline(/*buggy=*/true));
  std::printf("Submit(buggy) -> %s\n\n", rejected.status().ToString().c_str());

  // 3. Apply the hints and run for real.
  auto fixed = runtime.SubmitAndRun(MakePipeline(/*buggy=*/false));
  if (!fixed.ok() || !fixed->status.ok()) {
    std::fprintf(stderr, "fixed job failed: %s\n",
                 (fixed.ok() ? fixed->status : fixed.status()).ToString().c_str());
    return 1;
  }
  std::printf("Submit(fixed) -> OK, finished in %s (simulated), %llu task(s)\n",
              mf::HumanDuration(fixed->Makespan()).c_str(),
              static_cast<unsigned long long>(fixed->tasks.size()));
  std::printf("jobs rejected by verifier so far: %llu\n",
              static_cast<unsigned long long>(runtime.stats().jobs_rejected_by_verifier));
  return 0;
}
