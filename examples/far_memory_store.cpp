// Copyright (c) memflow authors. MIT license.
//
// Fault-tolerant far memory (paper §3, Challenge 8; Carbink): store objects
// across far-memory nodes under three redundancy schemes, crash nodes, and
// watch recovery (or data loss) happen. Prints the memory-overhead /
// resilience trade-off the paper cites Carbink for.

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "ft/span_store.h"
#include "simhw/presets.h"

namespace mf = memflow;
using mf::ft::Redundancy;
using mf::ft::SpanStore;
using mf::ft::StoreOptions;

int main() {
  mf::TextTable table({"Scheme", "Raw/user bytes", "Crash 1 node", "Crash 2 more",
                       "Client time", "Background time"});

  for (const Redundancy scheme :
       {Redundancy::kNone, Redundancy::kReplication, Redundancy::kErasureCoding}) {
    mf::simhw::DisaggHandles rack =
        mf::simhw::MakeDisaggRack({.compute_nodes = 1, .memory_nodes = 12});
    mf::region::RegionManager regions(*rack.cluster);

    StoreOptions options;
    options.scheme = scheme;
    options.replicas = 3;
    options.rs_data = 4;
    options.rs_parity = 2;
    options.span_bytes = 64 * mf::kKiB;
    SpanStore store(regions, rack.far_mem, rack.cpus[0], options);

    // Store 64 objects of ~20 KiB each.
    mf::Rng rng(7);
    std::vector<mf::ft::ObjectId> ids;
    std::vector<std::vector<std::uint8_t>> blobs;
    for (int i = 0; i < 64; ++i) {
      std::vector<std::uint8_t> blob(20000 + rng.Below(8000));
      for (auto& b : blob) {
        b = static_cast<std::uint8_t>(rng.Below(256));
      }
      auto id = store.Put(blob);
      MEMFLOW_CHECK(id.ok());
      ids.push_back(*id);
      blobs.push_back(std::move(blob));
    }
    MEMFLOW_CHECK(store.Flush().ok());
    const mf::ft::StoreFootprint fp = store.footprint();

    const auto survivors = [&]() {
      int ok = 0;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        std::vector<std::uint8_t> out;
        if (store.Get(ids[i], out).ok() && out == blobs[i]) {
          ok++;
        }
      }
      return ok;
    };

    // One node dies.
    (void)rack.cluster->CrashNode(rack.memory_node_ids[0]);
    (void)store.HandleDeviceFailure(rack.far_mem[0]);
    const int after_one = survivors();

    // Two more die (sequentially, with recovery between).
    for (int n = 1; n <= 2; ++n) {
      (void)rack.cluster->CrashNode(rack.memory_node_ids[n]);
      (void)store.HandleDeviceFailure(rack.far_mem[n]);
    }
    const int after_three = survivors();

    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.2fx", fp.overhead());
    table.AddRow({std::string(mf::ft::RedundancyName(scheme)), overhead,
                  std::to_string(after_one) + "/64 intact",
                  std::to_string(after_three) + "/64 intact",
                  mf::HumanDuration(store.total_cost()),
                  mf::HumanDuration(store.background_cost())});
  }

  std::printf("Fault-tolerant far memory, 64 objects across 12 memory nodes\n");
  std::printf("(replication = 3 copies; erasure coding = RS(4,2) spansets)\n\n%s",
              table.Render().c_str());
  std::printf(
      "\nThe Carbink trade-off: erasure coding halves the memory overhead of\n"
      "replication while surviving the same crashes, at the price of slower\n"
      "(reconstruction-based) recovery and degraded reads.\n");
  return 0;
}
