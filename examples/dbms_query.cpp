// Copyright (c) memflow authors. MIT license.
//
// Mini-DBMS on the memflow model (Table 3, row "DBMS"): runs a filtered
// group-by aggregation and a hash join whose build-side index is published in
// Global Scratch — and compares the runtime's cost-model placement against
// the traditional naive placement on the same queries.

#include <cstdio>

#include "apps/dbms.h"
#include "common/table.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace mf = memflow;
namespace dbms = mf::apps::dbms;

namespace {

mf::SimDuration RunQuery(mf::simhw::Cluster& cluster, mf::rts::PlacementPolicyKind policy,
                         mf::dataflow::Job job) {
  mf::rts::RuntimeOptions options;
  options.policy = policy;
  mf::rts::Runtime runtime(cluster, options);
  auto report = runtime.SubmitAndRun(std::move(job));
  MEMFLOW_CHECK_MSG(report.ok() && report->status.ok(), "query failed");
  return report->Makespan();
}

}  // namespace

int main() {
  dbms::TableSpec lineitem;
  lineitem.rows = 200000;
  lineitem.groups = 128;
  dbms::TableSpec part;
  part.rows = 2000;
  part.groups = 128;
  part.seed = 42;
  // Make fact.group a foreign key into `part`.
  lineitem.groups = static_cast<std::uint32_t>(part.rows);

  std::printf("memflow mini-DBMS — %llu-row fact table, %llu-row dimension\n\n",
              static_cast<unsigned long long>(lineitem.rows),
              static_cast<unsigned long long>(part.rows));

  // Correctness first: run once and verify against the reference.
  {
    auto host = mf::simhw::MakeCxlExpansionHost();
    mf::rts::Runtime runtime(*host.cluster);
    auto report = runtime.SubmitAndRun(dbms::BuildScanAggregateJob(lineitem, 0.25));
    MEMFLOW_CHECK(report.ok() && report->status.ok());
    const auto expected = dbms::ExpectedScanAggregate(lineitem, 0.25);
    std::vector<double> got(expected.size());
    auto acc = runtime.regions().OpenAsync(report->outputs.front(),
                                           runtime.JobPrincipal(report->id), host.cpu);
    acc->EnqueueRead(0, got.data(), got.size() * sizeof(double));
    (void)acc->Drain();
    double max_err = 0;
    for (std::size_t g = 0; g < got.size(); ++g) {
      max_err = std::max(max_err, std::abs(got[g] - expected[g]));
    }
    std::printf("Q1 scan+aggregate: %zu groups, max abs error vs reference = %.2e\n",
                got.size(), max_err);

    auto join_report = runtime.SubmitAndRun(dbms::BuildJoinJob(lineitem, part));
    MEMFLOW_CHECK(join_report.ok() && join_report->status.ok());
    double join_sum = 0;
    auto jacc = runtime.regions().OpenAsync(join_report->outputs.front(),
                                            runtime.JobPrincipal(join_report->id), host.cpu);
    jacc->EnqueueRead(0, &join_sum, sizeof(join_sum));
    (void)jacc->Drain();
    std::printf("Q2 hash join:     sum = %.2f (reference %.2f)\n\n", join_sum,
                dbms::ExpectedJoin(lineitem, part));
  }

  // Placement comparison: the declarative runtime vs. naive placements.
  mf::TextTable table({"Placement policy", "Q1 makespan", "Q2 makespan"});
  for (const auto policy :
       {mf::rts::PlacementPolicyKind::kCostModel, mf::rts::PlacementPolicyKind::kRoundRobin,
        mf::rts::PlacementPolicyKind::kFirstFit, mf::rts::PlacementPolicyKind::kRandom}) {
    auto host = mf::simhw::MakeCxlExpansionHost();
    const mf::SimDuration q1 =
        RunQuery(*host.cluster, policy, dbms::BuildScanAggregateJob(lineitem, 0.25));
    auto host2 = mf::simhw::MakeCxlExpansionHost();
    const mf::SimDuration q2 =
        RunQuery(*host2.cluster, policy, dbms::BuildJoinJob(lineitem, part));
    table.AddRow({std::string(mf::rts::PlacementPolicyKindName(policy)),
                  mf::HumanDuration(q1), mf::HumanDuration(q2)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nThe cost-model policy is what the paper's runtime system does; the\n"
              "others are the 'traditional' explicit/naive placements it replaces.\n");
  return 0;
}
