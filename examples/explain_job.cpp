// Copyright (c) memflow authors. MIT license.
//
// Critical-path profiling and placement explainability demo (DESIGN.md §11):
// run the paper's Figure 2 hospital pipeline, then ask the analyzer the
// questions the telemetry stream exists to answer —
//
//   * the "job doctor": where every nanosecond of the makespan went
//     (buckets sum exactly to the makespan) and the top reasons the job is
//     as slow as it is,
//   * why a task ran where it ran: the ranked per-device cost-model
//     breakdown recorded at placement time,
//   * why a region lives where it lives: Runtime::ExplainPlacement,
//   * what-if counterfactuals replayed through the runtime's cost model,
//
// and write the machine-readable profile plus a Perfetto trace with the
// critical path highlighted.
//
// Usage: explain_job [profile.json] [trace.json]

#include <cstdio>
#include <string>

#include "apps/hospital.h"
#include "simhw/presets.h"
#include "telemetry/analyze/doctor.h"
#include "telemetry/export.h"

namespace mf = memflow;

namespace {

bool WriteFile(const char* path, const std::string& contents) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  const bool ok = std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* profile_path = argc > 1 ? argv[1] : "explain_profile.json";
  const char* trace_path = argc > 2 ? argv[2] : "explain_trace.json";

  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();
  mf::telemetry::Registry registry;
  mf::telemetry::TraceBuffer tracer;
  mf::rts::RuntimeOptions options;
  options.registry = &registry;
  options.tracer = &tracer;
  mf::rts::Runtime runtime(*host.cluster, options);

  mf::apps::hospital::HospitalSpec spec;
  spec.minutes = 12 * 60;
  auto report = runtime.SubmitAndRun(mf::apps::hospital::BuildHospitalJob(spec));
  if (!report.ok() || !report->status.ok()) {
    std::fprintf(stderr, "hospital job failed\n");
    return 1;
  }

  // --- the job doctor ---------------------------------------------------------
  auto profile = mf::telemetry::analyze::AnalyzeJob(tracer, report->id.value);
  if (!profile.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n", profile.status().ToString().c_str());
    return 1;
  }
  const auto what_ifs = mf::telemetry::analyze::ComputeWhatIfs(*profile, &runtime);
  std::printf("%s\n", mf::telemetry::analyze::RenderJobDoctor(*profile, what_ifs).c_str());

  // --- whole-runtime health (latency quantiles, lock pressure, control-plane
  // phase shares from the self-profiler) ---------------------------------------
  runtime.self_profiler().PublishTo(registry);
  mf::telemetry::PublishTraceHealth(tracer, registry);
  std::printf("%s\n",
              mf::telemetry::analyze::RenderRuntimeHealth(registry.Snapshot()).c_str());

  if (profile->attribution.Sum().ns != report->Makespan().ns) {
    std::fprintf(stderr, "attribution does not sum to makespan\n");
    return 1;
  }
  std::printf("attribution sum == makespan: %s (exact, by construction)\n\n",
              mf::HumanDuration(profile->attribution.Sum()).c_str());

  // --- why did my task run there? --------------------------------------------
  const auto& decisions = runtime.PlacementLog(report->id);
  if (!decisions.empty()) {
    std::printf("%s\n",
                mf::telemetry::analyze::RenderPlacementDecision(decisions.front(),
                                                                runtime.cluster())
                    .c_str());
  }

  // --- why does my region live there? ----------------------------------------
  if (!report->outputs.empty()) {
    auto explain = runtime.ExplainPlacement(report->outputs.front());
    if (explain.ok()) {
      std::printf("%s\n",
                  mf::telemetry::analyze::RenderRegionExplain(*explain, runtime.cluster())
                      .c_str());
    }
  }

  // --- the doctor on a mis-placed run ----------------------------------------
  // Same pipeline under first-fit (the compute-centric model the paper argues
  // against): tasks pile onto the first eligible device, and the what-if
  // engine — replaying candidates through the cost model — quantifies what
  // the naive placement costs.
  {
    mf::telemetry::Registry ff_registry;
    mf::telemetry::TraceBuffer ff_tracer;
    mf::rts::RuntimeOptions ff_options;
    ff_options.policy = mf::rts::PlacementPolicyKind::kFirstFit;
    ff_options.registry = &ff_registry;
    ff_options.tracer = &ff_tracer;
    mf::rts::Runtime ff_runtime(*host.cluster, ff_options);
    mf::dataflow::JobId last;
    for (int i = 0; i < 4; ++i) {
      auto id = ff_runtime.Submit(mf::apps::hospital::BuildHospitalJob(spec));
      if (id.ok()) {
        last = *id;
      }
    }
    if (ff_runtime.RunToCompletion().ok() && last.valid()) {
      auto ff_profile = mf::telemetry::analyze::AnalyzeJob(ff_tracer, last.value);
      if (ff_profile.ok()) {
        const auto ff_what_ifs =
            mf::telemetry::analyze::ComputeWhatIfs(*ff_profile, &ff_runtime);
        std::printf("---- 4 concurrent pipelines under first-fit placement ----\n%s\n",
                    mf::telemetry::analyze::RenderJobDoctor(*ff_profile, ff_what_ifs)
                        .c_str());
      }
    }
  }

  // --- machine-readable artifacts --------------------------------------------
  if (!WriteFile(profile_path, mf::telemetry::analyze::ExportJobProfileJson(*profile) + "\n")) {
    return 1;
  }
  if (!WriteFile(trace_path,
                 mf::telemetry::analyze::ExportHighlightedTraceJson(tracer, *profile))) {
    return 1;
  }
  std::printf("wrote job profile to %s and highlighted Perfetto trace to %s\n",
              profile_path, trace_path);
  return 0;
}
