// Copyright (c) memflow authors. MIT license.
//
// Runtime-wide telemetry demo (paper §3, Challenge 8): one registry and one
// trace buffer observe every layer at once. A dataflow job exercises the rts
// (placement, dispatch, handovers -> flow arrows); the swizzle cache, a
// message queue, and a tiering epoch exercise the region layer. The program
// then prints the Prometheus exposition page, writes the JSON metrics
// snapshot and a Perfetto-loadable trace, and prints the cross-job trace
// summary.
//
// Usage: observe_runtime [metrics.json] [trace.json]

#include <cstdio>
#include <string>
#include <vector>

#include "apps/hospital.h"
#include "region/message_queue.h"
#include "region/swizzle_cache.h"
#include "region/tiering.h"
#include "rts/profiler.h"
#include "simhw/presets.h"
#include "telemetry/export.h"

namespace mf = memflow;

namespace {

bool WriteFile(const char* path, const std::string& contents) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  const bool ok = std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* metrics_path = argc > 1 ? argv[1] : "observe_metrics.json";
  const char* trace_path = argc > 2 ? argv[2] : "observe_trace.json";

  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();

  // One registry + one tracer for the whole runtime: every layer below
  // reports into these two objects.
  mf::telemetry::Registry registry;
  mf::telemetry::TraceBuffer tracer;
  mf::rts::RuntimeOptions options;
  options.registry = &registry;
  options.tracer = &tracer;
  mf::rts::Runtime runtime(*host.cluster, options);

  // --- rts layer: the paper's hospital pipeline (Figure 2) -------------------
  // T1 filter -> T2 recognize fans out to the three sinks (T3/T4/T5), so the
  // trace gets task spans, handovers, and producer -> consumer flow arrows.
  {
    mf::apps::hospital::HospitalSpec spec;
    spec.minutes = 12 * 60;
    auto report = runtime.SubmitAndRun(mf::apps::hospital::BuildHospitalJob(spec));
    if (!report.ok() || !report->status.ok()) {
      std::fprintf(stderr, "hospital job failed\n");
      return 1;
    }
    std::printf("ran the hospital pipeline (%zu tasks) in %s of virtual time\n",
                report->tasks.size(), mf::HumanDuration(report->Makespan()).c_str());
  }

  // The runtime's RegionManager is already wired to the same registry and
  // tracer, so driving the region-layer services through it lands in the
  // same telemetry stream.
  mf::region::RegionManager& regions = runtime.regions();
  constexpr mf::region::Principal kApp{9, 1};

  // --- region layer: swizzle cache over far memory ---------------------------
  {
    auto far = regions.AllocateOn(host.disagg, mf::MiB(2), mf::region::Properties{}, kApp);
    MEMFLOW_CHECK(far.ok());
    mf::region::SwizzleCache cache(regions, host.cpu, kApp, mf::KiB(64));
    auto ptr = mf::region::RemotePtr<double>::Make(*far, 512);
    for (int round = 0; round < 4; ++round) {
      auto cost = cache.Pin(ptr);
      MEMFLOW_CHECK(cost.ok());
      *ptr.raw() += 1.0;
      (void)cache.Unpin(ptr, *far, 512, /*dirty=*/true);
    }
    std::printf("swizzle cache: %llu miss, %llu hits over far memory\n",
                static_cast<unsigned long long>(cache.stats().misses),
                static_cast<unsigned long long>(cache.stats().hits));
  }

  // --- region layer: message-passing over shared memory ----------------------
  {
    auto qr = regions.AllocateOn(host.dram, mf::KiB(4), mf::region::Properties{}, kApp);
    MEMFLOW_CHECK(qr.ok());
    auto queue = mf::region::MessageQueue::Create(regions, *qr, kApp, host.cpu, 64);
    MEMFLOW_CHECK(queue.ok());
    char msg[64] = "telemetry";
    for (int i = 0; i < 5; ++i) {
      MEMFLOW_CHECK(queue->Push(msg).ok());
    }
    for (int i = 0; i < 5; ++i) {
      MEMFLOW_CHECK(queue->Pop(msg).ok());
    }
    (void)queue->Pop(msg);  // empty -> recorded as an empty stall
    std::printf("message queue: 5 messages through shared memory (+1 empty-pop stall)\n");
  }

  // --- region layer: tiering epoch (promotes the hammered region) ------------
  {
    auto hot = regions.AllocateOn(host.cxl_dram, mf::MiB(2), mf::region::Properties{}, kApp);
    MEMFLOW_CHECK(hot.ok());
    std::vector<char> buf(mf::KiB(64));
    for (int i = 0; i < 300; ++i) {
      auto acc = regions.OpenAsync(*hot, kApp, host.cpu);
      MEMFLOW_CHECK(acc.ok());
      acc->EnqueueRead(0, buf.data(), buf.size());
      (void)acc->Drain();
    }
    mf::region::TieringDaemon daemon(regions, host.cpu);
    const mf::region::TieringReport tier = daemon.RunEpoch();
    std::printf("tiering epoch: %d promoted, %s moved (migration span traced)\n\n",
                tier.promoted, mf::HumanBytes(tier.bytes_moved).c_str());
  }

  // --- exports ----------------------------------------------------------------
  // Trace-ring health (emitted/dropped per track) and the control-plane
  // self-profile ride along in the same snapshot, so a truncated profile or a
  // control-bound dispatch loop is visible in the metrics too.
  mf::telemetry::PublishTraceHealth(tracer, registry);
  runtime.self_profiler().PublishTo(registry);
  const mf::telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  const std::string prometheus = snapshot.ToPrometheus();
  std::printf("---- Prometheus exposition (%zu metric families) ----\n%s\n",
              snapshot.families.size(), prometheus.c_str());

  if (!WriteFile(metrics_path, snapshot.ToJson() + "\n")) {
    return 1;
  }
  // job=0 exports the full cross-job stream: task/handover spans, the flow
  // arrows between them, migration + tiering activity on their own lanes.
  if (!WriteFile(trace_path, mf::telemetry::ExportTraceJson(tracer))) {
    return 1;
  }
  std::printf("wrote metrics snapshot to %s and Perfetto trace to %s\n\n", metrics_path,
              trace_path);

  // The overflow-aware overload: cardinality-capped metric families surface
  // as WARNING lines next to the ring-wrap warning.
  std::printf("%s", mf::telemetry::RenderTraceSummary(tracer, &snapshot).c_str());
  return 0;
}
