// Copyright (c) memflow authors. MIT license.
//
// Quickstart: the whole programming model in one file.
//
//  1. Assemble a simulated disaggregated host (CPU + GPU + heterogeneous
//     memory, CXL expander, far memory).
//  2. Declare a dataflow job: a producer and a consumer, with *declarative*
//     properties instead of device placement.
//  3. Let the runtime place tasks and memory; run; inspect the report.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "rts/runtime.h"
#include "simhw/presets.h"

namespace mf = memflow;

int main() {
  // 1. A Sapphire-Rapids-like host: CPU (+DRAM/PMem/CXL expander), GPU
  //    (+GDDR), NVMe, and NIC-attached far memory.
  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();
  mf::rts::Runtime runtime(*host.cluster);

  // 2. Declare the job. Note what is ABSENT: no device names, no explicit
  //    placement — only properties (Figure 2c of the paper).
  mf::dataflow::Job job("quickstart");

  mf::dataflow::TaskProperties produce_props;
  produce_props.output_bytes = 1 << 20;       // ~1 MiB of output
  produce_props.base_work = 1e6;              // synthetic compute
  produce_props.parallel_fraction = 0.9;      // data-parallel -> GPU-friendly

  const mf::dataflow::TaskId produce = job.AddTask(
      "produce", produce_props, [](mf::dataflow::TaskContext& ctx) -> mf::Status {
        const std::uint64_t n = (1 << 20) / 8;
        MEMFLOW_ASSIGN_OR_RETURN(mf::region::RegionId out, ctx.AllocateOutput(n * 8));
        MEMFLOW_ASSIGN_OR_RETURN(mf::region::SyncAccessor acc, ctx.OpenSync(out));
        std::vector<std::uint64_t> data(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          data[i] = i * i;
        }
        MEMFLOW_ASSIGN_OR_RETURN(mf::SimDuration cost, acc.Write(0, data.data(), n * 8));
        ctx.Charge(cost);
        ctx.ChargeCompute(1e6);
        return mf::OkStatus();
      });

  mf::dataflow::TaskProperties consume_props;
  consume_props.persistent = true;  // the result must survive crashes
  consume_props.work_per_byte = 0.1;

  const mf::dataflow::TaskId consume = job.AddTask(
      "consume", consume_props, [](mf::dataflow::TaskContext& ctx) -> mf::Status {
        // The input region arrived by OWNERSHIP TRANSFER from `produce` —
        // no copy happened if both sides can address it (Figure 4).
        MEMFLOW_ASSIGN_OR_RETURN(mf::region::SyncAccessor in,
                                 ctx.OpenSync(ctx.inputs().front()));
        std::vector<std::uint64_t> data(in.size() / 8);
        MEMFLOW_ASSIGN_OR_RETURN(mf::SimDuration cost,
                                 in.Read(0, data.data(), in.size()));
        ctx.Charge(cost);
        std::uint64_t sum = 0;
        for (const std::uint64_t v : data) {
          sum += v;
        }
        MEMFLOW_ASSIGN_OR_RETURN(mf::region::RegionId out, ctx.AllocateOutput(8));
        MEMFLOW_ASSIGN_OR_RETURN(mf::region::SyncAccessor acc, ctx.OpenSync(out));
        MEMFLOW_ASSIGN_OR_RETURN(mf::SimDuration wc, acc.Store(0, sum));
        ctx.Charge(wc);
        return mf::OkStatus();
      });

  if (mf::Status s = job.Connect(produce, consume); !s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Run and inspect.
  auto report = runtime.SubmitAndRun(std::move(job));
  if (!report.ok() || !report->status.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 (report.ok() ? report->status : report.status()).ToString().c_str());
    return 1;
  }

  std::printf("job '%s' finished in %s (simulated)\n\n", report->name.c_str(),
              mf::HumanDuration(report->Makespan()).c_str());
  for (const mf::rts::TaskReport& t : report->tasks) {
    std::printf("  task %-8s -> %-4s  dur=%-12s handover=%s\n", t.name.c_str(),
                host.cluster->compute(t.device).name().c_str(),
                mf::HumanDuration(t.duration).c_str(),
                t.zero_copy_handover ? "zero-copy" : "copied");
  }

  // The persistent result outlives the job; read it back.
  const auto& out = report->outputs.front();
  auto acc = runtime.regions().OpenSync(out, runtime.JobPrincipal(report->id), host.cpu);
  std::uint64_t sum = 0;
  if (acc.ok()) {
    (void)acc->Load(0, sum);
  }
  std::printf("\npersistent result: sum of i^2 for i < 2^17 = %llu\n",
              static_cast<unsigned long long>(sum));
  std::printf("stored on: %s (persistent media, chosen by the runtime)\n",
              host.cluster->memory(runtime.regions().Info(out)->device).name().c_str());
  std::printf("\n%s\n", runtime.UtilizationReport().c_str());
  return 0;
}
