// Copyright (c) memflow authors. MIT license.
//
// The paper's Figure 2: a hospital's CCTV dataflow with declarative task
// properties (compute device, confidentiality, persistence, memory latency).
// Runs the five-task pipeline end to end on a simulated CPU+GPU host, prints
// where the runtime placed each task and each region, and shows the T5
// alerting output surviving a crash of its device.

#include <cstdio>

#include "apps/hospital.h"
#include "common/table.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace mf = memflow;
using mf::apps::hospital::BuildHospitalJob;
using mf::apps::hospital::ExpectedHospital;
using mf::apps::hospital::HospitalSpec;

int main() {
  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();
  mf::rts::Runtime runtime(*host.cluster);

  HospitalSpec spec;
  spec.minutes = 24 * 60;
  spec.staff = 15;
  spec.patients = 40;
  spec.grace_minutes = 30;

  auto report = runtime.SubmitAndRun(BuildHospitalJob(spec));
  if (!report.ok() || !report->status.ok()) {
    std::fprintf(stderr, "hospital job failed: %s\n",
                 (report.ok() ? report->status : report.status()).ToString().c_str());
    return 1;
  }

  std::printf("Hospital dataflow (Figure 2) — %d staff, %d patients, %d h horizon\n\n",
              spec.staff, spec.patients, spec.minutes / 60);

  mf::TextTable table({"Task", "Compute", "Duration", "Output device", "Handover"});
  for (const mf::rts::TaskReport& t : report->tasks) {
    std::string out_dev = "-";
    if (t.output.valid()) {
      auto info = runtime.regions().Info(t.output);
      if (info.ok()) {
        out_dev = host.cluster->memory(info->device).name();
      }
    }
    table.AddRow({t.name, host.cluster->compute(t.device).name(),
                  mf::HumanDuration(t.duration), out_dev,
                  t.zero_copy_handover ? "zero-copy" : "copied"});
  }
  std::printf("%s\n", table.Render().c_str());

  // Read back the three results with the job principal.
  const auto read_u32 = [&](std::string_view task) {
    std::vector<std::uint32_t> out;
    for (const mf::rts::TaskReport& t : report->tasks) {
      if (t.name == task && t.output.valid()) {
        auto info = runtime.regions().Info(t.output);
        out.resize(info->size / 4);
        auto acc =
            runtime.regions().OpenAsync(t.output, runtime.JobPrincipal(report->id), host.cpu);
        acc->EnqueueRead(0, out.data(), info->size);
        (void)acc->Drain();
      }
    }
    return out;
  };

  const auto alerts = read_u32("alert-caregivers");
  std::printf("T5 alerts: %zu missing patient(s):", alerts.size());
  for (const std::uint32_t p : alerts) {
    std::printf(" #%u", p);
  }
  std::printf("\n");

  const auto util = read_u32("compute-utilization");
  std::printf("T4 ward utilization by hour:");
  for (std::size_t h = 0; h < util.size(); ++h) {
    std::printf(" %u", util[h]);
  }
  std::printf("\n\n");

  // Verify against the host-side reference.
  const auto expected = ExpectedHospital(spec);
  const bool alerts_ok = alerts == expected.alerts;
  const bool util_ok = util == expected.hourly_utilization;
  std::printf("verification vs reference: alerts %s, utilization %s\n",
              alerts_ok ? "MATCH" : "MISMATCH", util_ok ? "MATCH" : "MISMATCH");

  // Crash the device holding the alerts: persistence means nothing is lost.
  for (const mf::rts::TaskReport& t : report->tasks) {
    if (t.name == "alert-caregivers") {
      const auto dev = runtime.regions().Info(t.output)->device;
      host.cluster->memory(dev).Fail();
      host.cluster->memory(dev).Recover();
      std::printf("crashed+recovered %s: alerts still readable = %s\n",
                  host.cluster->memory(dev).name().c_str(),
                  read_u32("alert-caregivers") == expected.alerts ? "yes" : "NO");
    }
  }
  return alerts_ok && util_ok ? 0 : 1;
}
