// Copyright (c) memflow authors. MIT license.
//
// Cachew-style ML input pipeline + accelerator training (Table 3, row
// "ML/AI"): parse -> transform (cached in Global Scratch) -> train on the
// GPU. Gradient descent really runs; the example prints convergence and
// where the runtime put each stage.

#include <cstdio>

#include "apps/ml.h"
#include "common/table.h"
#include "rts/runtime.h"
#include "simhw/presets.h"

namespace mf = memflow;
namespace ml = mf::apps::ml;

int main() {
  mf::simhw::CxlHostHandles host = mf::simhw::MakeCxlExpansionHost();
  mf::rts::Runtime runtime(*host.cluster);

  ml::MlSpec spec;
  spec.examples = 30000;
  spec.features = 6;
  spec.epochs = 25;
  spec.learning_rate = 0.35;

  std::printf("training linear model: %llu examples x %d features, %d epochs\n\n",
              static_cast<unsigned long long>(spec.examples), spec.features, spec.epochs);

  auto report = runtime.SubmitAndRun(ml::BuildTrainingJob(spec, /*persist_weights=*/true));
  if (!report.ok() || !report->status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 (report.ok() ? report->status : report.status()).ToString().c_str());
    return 1;
  }

  mf::TextTable table({"Stage", "Compute", "Duration"});
  for (const mf::rts::TaskReport& t : report->tasks) {
    table.AddRow({t.name, host.cluster->compute(t.device).name(),
                  mf::HumanDuration(t.duration)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Read back the persistent weights.
  std::vector<double> raw(static_cast<std::size_t>(spec.features) + 2);
  auto acc = runtime.regions().OpenAsync(report->outputs.front(),
                                         runtime.JobPrincipal(report->id), host.cpu);
  acc->EnqueueRead(0, raw.data(), raw.size() * sizeof(double));
  (void)acc->Drain();
  const ml::TrainedModel model = ml::DecodeModel(raw, spec.features);

  std::printf("loss: %.4f -> %.4f (%.1fx reduction)\n", model.initial_loss,
              model.final_loss, model.initial_loss / std::max(model.final_loss, 1e-12));
  std::printf("weights (trained vs true):\n");
  for (int f = 0; f < spec.features; ++f) {
    std::printf("  w[%d] = %+.3f   (true %+.3f)\n", f,
                model.weights[static_cast<std::size_t>(f)], ml::TrueWeight(f));
  }
  std::printf("\nweights persisted on: %s\n",
              host.cluster
                  ->memory(runtime.regions().Info(report->outputs.front())->device)
                  .name()
                  .c_str());
  return model.final_loss < model.initial_loss ? 0 : 1;
}
