// Copyright (c) memflow authors. MIT license.
//
// Mini relational engine on the memflow programming model (Table 3, row
// "DBMS"): queries are jobs whose operators are tasks; operator state (hash
// tables) lives in Private Scratch, synchronization in Global State, and
// reusable artifacts (a serialized hash index) in Global Scratch.
//
// All operators compute real results over deterministic synthetic tables, so
// every query's output is verifiable against a host-side reference
// implementation.

#ifndef MEMFLOW_APPS_DBMS_H_
#define MEMFLOW_APPS_DBMS_H_

#include <cstdint>
#include <vector>

#include "dataflow/job.h"

namespace memflow::apps::dbms {

// One tuple. Trivially copyable: tables are arrays of Row inside regions.
struct Row {
  std::uint64_t key;
  std::uint32_t group;
  double value;
};
static_assert(std::is_trivially_copyable_v<Row>);

struct TableSpec {
  std::uint64_t rows = 100000;
  std::uint32_t groups = 64;  // distinct group ids
  std::uint64_t seed = 1;
};

// Deterministic row generator (shared by tasks and reference computations).
Row MakeRow(const TableSpec& spec, std::uint64_t index);

// Filter predicate used by scans: keeps ~selectivity of rows, deterministic.
bool KeepRow(const Row& row, double selectivity);

// --- Query 1: SELECT group, SUM(value) WHERE <filter> GROUP BY group ----------

// Job shape: generate -> filter-scan -> hash-aggregate(sink).
// The sink output region holds `groups` doubles (sum per group id).
dataflow::Job BuildScanAggregateJob(const TableSpec& spec, double selectivity);

// Host-side reference for the same query.
std::vector<double> ExpectedScanAggregate(const TableSpec& spec, double selectivity);

// --- Query 2: SELECT SUM(f.value * d.value) FROM fact f JOIN dim d ------------
//               ON f.group = d.key

// Job shape:
//   build-index (dim scan -> hash index serialized into Global Scratch)
//   generate-fact -> probe-join (reads the index from Global Scratch) -> sink
// The sink output holds one double. This exercises the paper's Global
// Scratch reuse pattern ("a hash join might re-use a hash index created by
// an aggregation operator").
dataflow::Job BuildJoinJob(const TableSpec& fact, const TableSpec& dim);

double ExpectedJoin(const TableSpec& fact, const TableSpec& dim);

// Global Scratch sizing the join job needs (index for `dim.rows` entries).
std::uint64_t JoinScratchBytes(const TableSpec& dim);

}  // namespace memflow::apps::dbms

#endif  // MEMFLOW_APPS_DBMS_H_
