// Copyright (c) memflow authors. MIT license.

#include "apps/dbms.h"

#include <bit>
#include <cmath>

#include "apps/util.h"
#include "common/hash.h"
#include "common/rng.h"

namespace memflow::apps::dbms {

namespace {

// Serialized open-addressing hash index slot (Global Scratch layout).
struct IndexSlot {
  std::uint64_t key_plus_one = 0;  // 0 = empty
  double value = 0;
};
static_assert(std::is_trivially_copyable_v<IndexSlot>);

struct IndexHeader {
  std::uint64_t capacity = 0;
};

std::uint64_t IndexCapacity(std::uint64_t entries) {
  return std::bit_ceil(std::max<std::uint64_t>(entries * 2, 16));
}

}  // namespace

Row MakeRow(const TableSpec& spec, std::uint64_t index) {
  std::uint64_t state = spec.seed ^ MixU64(index);
  const std::uint64_t r = SplitMix64(state);
  Row row;
  row.key = index;
  row.group = static_cast<std::uint32_t>(r % spec.groups);
  row.value = static_cast<double>((r >> 20) % 10000) / 100.0;
  return row;
}

bool KeepRow(const Row& row, double selectivity) {
  return static_cast<double>(MixU64(row.key) % 100000) < selectivity * 100000.0;
}

std::uint64_t JoinScratchBytes(const TableSpec& dim) {
  return sizeof(IndexHeader) + IndexCapacity(dim.rows) * sizeof(IndexSlot);
}

// --- Scan + aggregate -----------------------------------------------------------

dataflow::Job BuildScanAggregateJob(const TableSpec& spec, double selectivity) {
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);  // operator latches (Table 3, DBMS row)
  dataflow::Job job("dbms-scan-agg", jopts);

  dataflow::TaskProperties gen_props;
  gen_props.output_bytes = spec.rows * sizeof(Row);
  gen_props.base_work = static_cast<double>(spec.rows) * 2;
  gen_props.parallel_fraction = 0.8;
  const dataflow::TaskId gen = job.AddTask(
      "generate", gen_props, [spec](dataflow::TaskContext& ctx) -> Status {
        std::vector<Row> rows(spec.rows);
        for (std::uint64_t i = 0; i < spec.rows; ++i) {
          rows[i] = MakeRow(spec, i);
        }
        ctx.ChargeCompute(static_cast<double>(spec.rows) * 2);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<Row>(ctx, rows, {1.0, 0.0, 1.0}));
        (void)out;
        return OkStatus();
      });

  dataflow::TaskProperties scan_props;
  scan_props.output_bytes_per_input_byte = selectivity;
  scan_props.work_per_byte = 0.1;
  scan_props.parallel_fraction = 0.9;
  const dataflow::TaskId scan = job.AddTask(
      "filter-scan", scan_props, [selectivity](dataflow::TaskContext& ctx) -> Status {
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                 ReadAll<Row>(ctx, ctx.inputs().front()));
        std::vector<Row> kept;
        kept.reserve(rows.size());
        for (const Row& row : rows) {
          if (KeepRow(row, selectivity)) {
            kept.push_back(row);
          }
        }
        ctx.ChargeCompute(static_cast<double>(rows.size()) * 0.5);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<Row>(ctx, kept));
        (void)out;
        return OkStatus();
      });

  dataflow::TaskProperties agg_props;
  agg_props.output_bytes = spec.groups * sizeof(double);
  agg_props.scratch_bytes = spec.groups * sizeof(double) * 2;  // group hash table
  agg_props.work_per_byte = 0.2;
  agg_props.parallel_fraction = 0.6;
  const dataflow::TaskId agg = job.AddTask(
      "hash-aggregate", agg_props, [spec](dataflow::TaskContext& ctx) -> Status {
        // Latch in Global State around the (conceptually shared) catalog.
        {
          MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state,
                                   ctx.OpenSync(ctx.global_state()));
          const std::uint64_t locked = 1;
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration c1, state.Store(0, locked));
          ctx.Charge(c1);
        }
        std::vector<Row> rows;
        if (!ctx.inputs().empty()) {
          MEMFLOW_ASSIGN_OR_RETURN(rows, ReadAll<Row>(ctx, ctx.inputs().front()));
        }
        // Operator state: the per-group table lives in Private Scratch.
        MEMFLOW_ASSIGN_OR_RETURN(
            region::RegionId scratch,
            ctx.AllocatePrivateScratch(spec.groups * sizeof(double), {0.2, 0.5, 2.0}));
        std::vector<double> sums(spec.groups, 0.0);
        for (const Row& row : rows) {
          sums[row.group] += row.value;
        }
        ctx.ChargeCompute(static_cast<double>(rows.size()));
        // Materialize the table into scratch (random-access writes).
        MEMFLOW_RETURN_IF_ERROR(WriteAll<double>(ctx, scratch, sums));
        {
          MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state,
                                   ctx.OpenSync(ctx.global_state()));
          const std::uint64_t unlocked = 0;
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration c2, state.Store(0, unlocked));
          ctx.Charge(c2);
        }
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<double>(ctx, sums));
        (void)out;
        return OkStatus();
      });

  MEMFLOW_CHECK(job.Connect(gen, scan).ok());
  MEMFLOW_CHECK(job.Connect(scan, agg).ok());
  return job;
}

std::vector<double> ExpectedScanAggregate(const TableSpec& spec, double selectivity) {
  std::vector<double> sums(spec.groups, 0.0);
  for (std::uint64_t i = 0; i < spec.rows; ++i) {
    const Row row = MakeRow(spec, i);
    if (KeepRow(row, selectivity)) {
      sums[row.group] += row.value;
    }
  }
  return sums;
}

// --- Join -------------------------------------------------------------------------

dataflow::Job BuildJoinJob(const TableSpec& fact, const TableSpec& dim) {
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);
  jopts.global_scratch_bytes = JoinScratchBytes(dim);  // the reusable index
  dataflow::Job job("dbms-join", jopts);

  // Build the dim-side hash index into Global Scratch.
  dataflow::TaskProperties build_props;
  build_props.output_bytes = 8;  // ordering token
  build_props.base_work = static_cast<double>(dim.rows) * 3;
  build_props.parallel_fraction = 0.5;
  const dataflow::TaskId build = job.AddTask(
      "build-index", build_props, [dim](dataflow::TaskContext& ctx) -> Status {
        const std::uint64_t capacity = IndexCapacity(dim.rows);
        std::vector<IndexSlot> slots(capacity);
        for (std::uint64_t i = 0; i < dim.rows; ++i) {
          const Row row = MakeRow(dim, i);
          std::uint64_t pos = MixU64(row.key) & (capacity - 1);
          while (slots[pos].key_plus_one != 0) {
            pos = (pos + 1) & (capacity - 1);
          }
          slots[pos] = IndexSlot{row.key + 1, row.value};
        }
        ctx.ChargeCompute(static_cast<double>(dim.rows) * 3);

        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor scratch,
                                 ctx.OpenAsync(ctx.global_scratch()));
        const IndexHeader header{capacity};
        scratch.EnqueueWrite(0, &header, sizeof(header));
        scratch.EnqueueWrite(sizeof(header), slots.data(), slots.size() * sizeof(IndexSlot));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, scratch.Drain());
        ctx.Charge(cost);

        const std::uint64_t token = 1;
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<std::uint64_t>(ctx, {&token, 1}));
        (void)out;
        return OkStatus();
      });

  dataflow::TaskProperties gen_props;
  gen_props.output_bytes = fact.rows * sizeof(Row);
  gen_props.base_work = static_cast<double>(fact.rows) * 2;
  gen_props.parallel_fraction = 0.8;
  const dataflow::TaskId gen = job.AddTask(
      "generate-fact", gen_props, [fact](dataflow::TaskContext& ctx) -> Status {
        std::vector<Row> rows(fact.rows);
        for (std::uint64_t i = 0; i < fact.rows; ++i) {
          rows[i] = MakeRow(fact, i);
        }
        ctx.ChargeCompute(static_cast<double>(fact.rows) * 2);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<Row>(ctx, rows));
        (void)out;
        return OkStatus();
      });

  dataflow::TaskProperties probe_props;
  probe_props.output_bytes = sizeof(double);
  probe_props.work_per_byte = 0.3;
  probe_props.scratch_bytes_per_input_byte = 0.1;
  probe_props.parallel_fraction = 0.8;
  const dataflow::TaskId probe = job.AddTask(
      "probe-join", probe_props, [](dataflow::TaskContext& ctx) -> Status {
        // Latch the shared catalog while the probe pipeline runs.
        {
          MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state,
                                   ctx.OpenSync(ctx.global_state()));
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration lc, state.Store<std::uint64_t>(0, 1));
          ctx.Charge(lc);
        }
        // Find the fact input (the bigger one; the other is the 8-byte token).
        region::RegionId fact_region;
        std::uint64_t best = 0;
        for (const region::RegionId in : ctx.inputs()) {
          auto info = ctx.regions().Info(in);
          if (info.ok() && info->size > best) {
            best = info->size;
            fact_region = in;
          }
        }
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<Row> rows, ReadAll<Row>(ctx, fact_region));

        // Load the index from Global Scratch.
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor scratch,
                                 ctx.OpenAsync(ctx.global_scratch()));
        IndexHeader header;
        scratch.EnqueueRead(0, &header, sizeof(header));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration hc, scratch.Drain());
        ctx.Charge(hc);
        std::vector<IndexSlot> slots(header.capacity);
        scratch.EnqueueRead(sizeof(header), slots.data(), slots.size() * sizeof(IndexSlot));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration sc, scratch.Drain());
        ctx.Charge(sc);

        // Probe-side batch buffer: operator state in Private Scratch.
        if (!rows.empty()) {
          MEMFLOW_ASSIGN_OR_RETURN(
              region::RegionId batch,
              ctx.AllocatePrivateScratch(std::min<std::uint64_t>(rows.size() * sizeof(Row),
                                                                 MiB(1))));
          MEMFLOW_RETURN_IF_ERROR(WriteAll<Row>(
              ctx, batch,
              {rows.data(), std::min<std::size_t>(rows.size(), MiB(1) / sizeof(Row))}));
        }
        double sum = 0;
        for (const Row& row : rows) {
          const auto key = static_cast<std::uint64_t>(row.group);
          std::uint64_t pos = MixU64(key) & (header.capacity - 1);
          while (slots[pos].key_plus_one != 0) {
            if (slots[pos].key_plus_one == key + 1) {
              sum += row.value * slots[pos].value;
              break;
            }
            pos = (pos + 1) & (header.capacity - 1);
          }
        }
        ctx.ChargeCompute(static_cast<double>(rows.size()) * 3);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<double>(ctx, {&sum, 1}));
        (void)out;
        return OkStatus();
      });

  MEMFLOW_CHECK(job.Connect(build, probe).ok());
  MEMFLOW_CHECK(job.Connect(gen, probe).ok());
  return job;
}

double ExpectedJoin(const TableSpec& fact, const TableSpec& dim) {
  std::vector<double> dim_value(dim.rows);
  std::vector<bool> present(dim.rows, false);
  for (std::uint64_t i = 0; i < dim.rows; ++i) {
    const Row row = MakeRow(dim, i);
    if (row.key < dim.rows) {
      dim_value[row.key] = row.value;
      present[row.key] = true;
    }
  }
  double sum = 0;
  for (std::uint64_t i = 0; i < fact.rows; ++i) {
    const Row row = MakeRow(fact, i);
    if (row.group < dim.rows && present[row.group]) {
      sum += row.value * dim_value[row.group];
    }
  }
  return sum;
}

}  // namespace memflow::apps::dbms
