// Copyright (c) memflow authors. MIT license.
//
// HPC stencil workload (Table 3, row "HPC"): a Jacobi heat-diffusion solver
// whose grid moves through the task chain by *ownership transfer* — each
// sweep task takes the grid region from its predecessor, updates it using
// node-local working memory (Private Scratch), and hands it on. Job metadata
// (iteration counter, residual) lives in Global State; the final field is the
// sink output ("object/blob storage").

#ifndef MEMFLOW_APPS_HPC_H_
#define MEMFLOW_APPS_HPC_H_

#include <cstdint>
#include <vector>

#include "dataflow/job.h"

namespace memflow::apps::hpc {

struct StencilSpec {
  int nx = 64;
  int ny = 64;
  int sweeps = 8;          // one task per sweep
  double boundary = 100.0; // fixed temperature on the top edge
};

// Host-side reference: the grid after `sweeps` Jacobi iterations.
std::vector<double> ReferenceStencil(const StencilSpec& spec);

// Job shape: init -> sweep x N (ownership-transferred grid) -> sink returns
// the final grid (nx*ny doubles).
dataflow::Job BuildStencilJob(const StencilSpec& spec);

// Residual between two fields (max abs diff), for convergence checks.
double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace memflow::apps::hpc

#endif  // MEMFLOW_APPS_HPC_H_
