// Copyright (c) memflow authors. MIT license.

#include "apps/hospital.h"

#include <algorithm>
#include <map>
#include <optional>

#include "apps/util.h"
#include "common/hash.h"
#include "common/rng.h"

namespace memflow::apps::hospital {

namespace {

constexpr std::uint64_t kFrameMagic = 0x4f5043414d455241ULL;  // "OPCAMERA"

std::uint64_t FrameChecksum(std::uint32_t minute, std::uint32_t direction,
                            std::uint64_t feature) {
  return HashCombine(HashCombine(HashCombine(kFrameMagic, minute), direction), feature);
}

struct Visit {
  std::uint32_t enter;
  std::optional<std::uint32_t> exit;  // nullopt: still inside at the horizon
};

std::vector<Visit> VisitsFor(const HospitalSpec& spec, std::uint32_t person) {
  Rng rng(spec.seed ^ MixU64(person + 0x9e3779b9ULL));
  std::vector<Visit> visits;
  const auto horizon = static_cast<std::uint32_t>(spec.minutes);
  std::uint32_t t = static_cast<std::uint32_t>(rng.Below(horizon / 2));
  const int n = 1 + static_cast<int>(rng.Below(2));
  for (int k = 0; k < n; ++k) {
    if (t + 2 >= horizon) {
      break;
    }
    const std::uint32_t enter = t;
    const auto duration = static_cast<std::uint32_t>(30 + rng.Below(240));
    const std::uint32_t exit = enter + duration;
    if (exit >= horizon) {
      visits.push_back(Visit{enter, std::nullopt});
      break;
    }
    visits.push_back(Visit{enter, exit});
    t = exit + 10 + static_cast<std::uint32_t>(rng.Below(120));
  }
  return visits;
}

// Registry entry serialized into Global Scratch.
struct RegistryEntry {
  std::uint64_t feature;
  std::uint32_t person;
  std::uint32_t is_staff;
};
static_assert(std::is_trivially_copyable_v<RegistryEntry>);

std::vector<RegistryEntry> BuildRegistry(const HospitalSpec& spec) {
  const auto total = static_cast<std::uint32_t>(spec.staff + spec.patients);
  std::vector<RegistryEntry> registry(total);
  for (std::uint32_t p = 0; p < total; ++p) {
    registry[p] = RegistryEntry{FaceFeature(spec, p), p,
                                p < static_cast<std::uint32_t>(spec.staff) ? 1u : 0u};
  }
  return registry;
}

std::vector<Frame> CleanFrames(const std::vector<Frame>& raw) {
  std::vector<Frame> valid;
  valid.reserve(raw.size());
  for (const Frame& f : raw) {
    if (f.checksum == FrameChecksum(f.minute, f.direction, f.feature)) {
      valid.push_back(f);
    }
  }
  return valid;
}

std::vector<Recognized> Recognize(const std::vector<RegistryEntry>& registry,
                                  const std::vector<Frame>& frames) {
  std::map<std::uint64_t, const RegistryEntry*> by_feature;
  for (const RegistryEntry& e : registry) {
    by_feature[e.feature] = &e;
  }
  std::vector<Recognized> out;
  out.reserve(frames.size());
  for (const Frame& f : frames) {
    auto it = by_feature.find(f.feature);
    if (it == by_feature.end()) {
      continue;  // visitor not in the registry
    }
    out.push_back(Recognized{f.minute, f.direction, it->second->person,
                             it->second->is_staff});
  }
  return out;
}

std::vector<std::uint64_t> TrackHours(const HospitalSpec& spec,
                                      const std::vector<Recognized>& events) {
  std::vector<std::uint64_t> minutes(static_cast<std::size_t>(spec.staff), 0);
  std::vector<std::int64_t> entered(static_cast<std::size_t>(spec.staff), -1);
  for (const Recognized& e : events) {
    if (e.is_staff == 0) {
      continue;
    }
    if (e.direction == 0) {
      entered[e.person] = e.minute;
    } else if (entered[e.person] >= 0) {
      minutes[e.person] += e.minute - static_cast<std::uint64_t>(entered[e.person]);
      entered[e.person] = -1;
    }
  }
  for (std::size_t p = 0; p < minutes.size(); ++p) {
    if (entered[p] >= 0) {
      minutes[p] += static_cast<std::uint64_t>(spec.minutes) -
                    static_cast<std::uint64_t>(entered[p]);
    }
  }
  return minutes;
}

std::vector<std::uint32_t> Utilization(const HospitalSpec& spec,
                                       const std::vector<Recognized>& events) {
  const int hours = spec.minutes / 60;
  std::vector<std::uint32_t> per_hour(static_cast<std::size_t>(hours), 0);
  std::uint32_t occupancy = 0;
  std::size_t next = 0;
  for (int h = 0; h < hours; ++h) {
    const auto boundary = static_cast<std::uint32_t>((h + 1) * 60);
    while (next < events.size() && events[next].minute < boundary) {
      if (events[next].direction == 0) {
        occupancy++;
      } else if (occupancy > 0) {
        occupancy--;
      }
      next++;
    }
    per_hour[static_cast<std::size_t>(h)] = occupancy;
  }
  return per_hour;
}

std::vector<std::uint32_t> Alerts(const HospitalSpec& spec,
                                  const std::vector<Recognized>& events) {
  // A patient whose last observed event is an exit, with at least
  // grace_minutes of horizon after it, has gone missing (Figure 2's T5).
  std::map<std::uint32_t, const Recognized*> last_event;
  for (const Recognized& e : events) {
    if (e.is_staff == 0) {
      last_event[e.person] = &e;
    }
  }
  std::vector<std::uint32_t> alerts;
  for (const auto& [person, event] : last_event) {
    if (event->direction == 1 &&
        event->minute + static_cast<std::uint32_t>(spec.grace_minutes) <=
            static_cast<std::uint32_t>(spec.minutes)) {
      alerts.push_back(person);
    }
  }
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

}  // namespace

std::uint64_t FaceFeature(const HospitalSpec& spec, std::uint32_t person) {
  return MixU64(spec.seed ^ (0xfacef00dULL + person));
}

std::uint64_t RegistryBytes(const HospitalSpec& spec) {
  return static_cast<std::uint64_t>(spec.staff + spec.patients) * sizeof(RegistryEntry);
}

std::vector<Frame> GenerateFrames(const HospitalSpec& spec) {
  std::vector<Frame> frames;
  const auto total = static_cast<std::uint32_t>(spec.staff + spec.patients);
  for (std::uint32_t p = 0; p < total; ++p) {
    const std::uint64_t feature = FaceFeature(spec, p);
    for (const Visit& v : VisitsFor(spec, p)) {
      frames.push_back(Frame{v.enter, 0, feature, FrameChecksum(v.enter, 0, feature)});
      if (v.exit.has_value()) {
        frames.push_back(Frame{*v.exit, 1, feature, FrameChecksum(*v.exit, 1, feature)});
      }
    }
  }
  // Corrupted frames the preprocessing stage must reject.
  Rng rng(spec.seed ^ 0xbadc0ffeULL);
  const auto garbage =
      static_cast<std::size_t>(static_cast<double>(frames.size()) * spec.garbage_rate);
  for (std::size_t g = 0; g < garbage; ++g) {
    Frame junk;
    junk.minute = static_cast<std::uint32_t>(rng.Below(static_cast<std::uint64_t>(spec.minutes)));
    junk.direction = static_cast<std::uint32_t>(rng.Below(2));
    junk.feature = rng.Next();
    junk.checksum = rng.Next();  // wrong with probability ~1
    frames.push_back(junk);
  }
  std::sort(frames.begin(), frames.end(), [](const Frame& a, const Frame& b) {
    if (a.minute != b.minute) {
      return a.minute < b.minute;
    }
    if (a.feature != b.feature) {
      return a.feature < b.feature;
    }
    return a.direction < b.direction;
  });
  return frames;
}

HospitalExpectation ExpectedHospital(const HospitalSpec& spec) {
  const std::vector<Frame> frames = CleanFrames(GenerateFrames(spec));
  const std::vector<Recognized> events = Recognize(BuildRegistry(spec), frames);
  HospitalExpectation expect;
  expect.staff_minutes = TrackHours(spec, events);
  expect.hourly_utilization = Utilization(spec, events);
  expect.alerts = Alerts(spec, events);
  return expect;
}

dataflow::Job BuildHospitalJob(const HospitalSpec& spec) {
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);
  jopts.global_scratch_bytes = RegistryBytes(spec);
  jopts.confidential = true;  // the registry is patient data
  dataflow::Job job("hospital", jopts);

  // T0: load the employee/patient database into Global Scratch.
  dataflow::TaskProperties registry_props;
  registry_props.confidential = true;  // the registry is sensitive
  registry_props.output_bytes = 8;
  registry_props.base_work = static_cast<double>(spec.staff + spec.patients);
  const dataflow::TaskId registry_task = job.AddTask(
      "load-registry", registry_props, [spec](dataflow::TaskContext& ctx) -> Status {
        const std::vector<RegistryEntry> registry = BuildRegistry(spec);
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor scratch,
                                 ctx.OpenAsync(ctx.global_scratch()));
        scratch.EnqueueWrite(0, registry.data(), registry.size() * sizeof(RegistryEntry));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, scratch.Drain());
        ctx.Charge(cost);
        const std::uint64_t token = 1;
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<std::uint64_t>(ctx, {&token, 1}));
        (void)out;
        return OkStatus();
      });

  // T1: preprocessing on the GPU — decode frames, drop corrupted ones.
  dataflow::TaskProperties t1;
  t1.compute_device = simhw::ComputeDeviceKind::kGPU;
  t1.confidential = true;
  t1.mem_latency = region::LatencyClass::kLow;
  t1.parallel_fraction = 0.95;
  t1.base_work = 1e5;
  t1.output_bytes = 4096;  // rough estimate; actual set at runtime
  const dataflow::TaskId preprocess = job.AddTask(
      "preprocess", t1, [spec](dataflow::TaskContext& ctx) -> Status {
        const std::vector<Frame> raw = GenerateFrames(spec);  // the camera feed
        const std::vector<Frame> valid = CleanFrames(raw);
        ctx.ChargeCompute(static_cast<double>(raw.size()) * 20);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<Frame>(ctx, valid));
        (void)out;
        return OkStatus();
      });

  // T2: GPU face recognition against the registry.
  dataflow::TaskProperties t2;
  t2.compute_device = simhw::ComputeDeviceKind::kGPU;
  t2.confidential = true;
  t2.mem_latency = region::LatencyClass::kLow;
  t2.parallel_fraction = 0.98;
  t2.work_per_byte = 5.0;
  t2.output_bytes_per_input_byte = 0.7;
  const dataflow::TaskId recognize = job.AddTask(
      "face-recognition", t2, [spec](dataflow::TaskContext& ctx) -> Status {
        region::RegionId frames_region;
        std::uint64_t biggest = 0;
        for (const region::RegionId in : ctx.inputs()) {
          auto info = ctx.regions().Info(in);
          if (info.ok() && info->size > biggest) {
            biggest = info->size;
            frames_region = in;
          }
        }
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<Frame> frames,
                                 ReadAll<Frame>(ctx, frames_region));
        std::vector<RegistryEntry> registry(
            static_cast<std::size_t>(spec.staff + spec.patients));
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor scratch,
                                 ctx.OpenAsync(ctx.global_scratch()));
        scratch.EnqueueRead(0, registry.data(), registry.size() * sizeof(RegistryEntry));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, scratch.Drain());
        ctx.Charge(cost);

        const std::vector<Recognized> events = Recognize(registry, frames);
        ctx.ChargeCompute(static_cast<double>(frames.size()) * 50);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<Recognized>(ctx, events));
        (void)out;
        return OkStatus();
      });

  // T3: track staff working hours (CPU, confidential).
  dataflow::TaskProperties t3;
  t3.compute_device = simhw::ComputeDeviceKind::kCPU;
  t3.confidential = true;
  t3.mem_latency = region::LatencyClass::kLow;
  t3.work_per_byte = 0.5;
  const dataflow::TaskId hours = job.AddTask(
      "track-hours", t3, [spec](dataflow::TaskContext& ctx) -> Status {
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<Recognized> events,
                                 ReadAll<Recognized>(ctx, ctx.inputs().front()));
        const std::vector<std::uint64_t> minutes = TrackHours(spec, events);
        ctx.ChargeCompute(static_cast<double>(events.size()) * 3);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<std::uint64_t>(ctx, minutes));
        (void)out;
        return OkStatus();
      });

  // T4: public ward-utilization feed (CPU, not confidential, latency "–").
  dataflow::TaskProperties t4;
  t4.compute_device = simhw::ComputeDeviceKind::kCPU;
  t4.confidential = false;
  // The feed consumes confidential recognition events but publishes only
  // aggregate counts — an intentional declassification boundary the static
  // verifier would otherwise flag (prop-confidential-downgrade).
  t4.declassifies = true;
  t4.mem_latency = region::LatencyClass::kAny;
  t4.work_per_byte = 0.2;
  const dataflow::TaskId utilization = job.AddTask(
      "compute-utilization", t4, [spec](dataflow::TaskContext& ctx) -> Status {
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<Recognized> events,
                                 ReadAll<Recognized>(ctx, ctx.inputs().front()));
        const std::vector<std::uint32_t> per_hour = Utilization(spec, events);
        ctx.ChargeCompute(static_cast<double>(events.size()));
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<std::uint32_t>(ctx, per_hour));
        (void)out;
        return OkStatus();
      });

  // T5: alert caregivers about missing patients (CPU, confidential,
  // persistent — a crash must not forget them).
  dataflow::TaskProperties t5;
  t5.compute_device = simhw::ComputeDeviceKind::kCPU;
  t5.confidential = true;
  t5.persistent = true;
  t5.mem_latency = region::LatencyClass::kLow;
  t5.work_per_byte = 0.5;
  const dataflow::TaskId alerts = job.AddTask(
      "alert-caregivers", t5, [spec](dataflow::TaskContext& ctx) -> Status {
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<Recognized> events,
                                 ReadAll<Recognized>(ctx, ctx.inputs().front()));
        const std::vector<std::uint32_t> missing = Alerts(spec, events);
        ctx.ChargeCompute(static_cast<double>(events.size()) * 2);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<std::uint32_t>(ctx, missing));
        (void)out;
        return OkStatus();
      });

  MEMFLOW_CHECK(job.Connect(registry_task, recognize).ok());
  MEMFLOW_CHECK(job.Connect(preprocess, recognize).ok());
  MEMFLOW_CHECK(job.Connect(recognize, hours).ok());
  MEMFLOW_CHECK(job.Connect(recognize, utilization).ok());
  MEMFLOW_CHECK(job.Connect(recognize, alerts).ok());
  return job;
}

}  // namespace memflow::apps::hospital
