// Copyright (c) memflow authors. MIT license.

#include "apps/streaming.h"

#include "apps/util.h"
#include "common/hash.h"
#include "common/rng.h"

namespace memflow::apps::streaming {

Event MakeEvent(const StreamSpec& spec, std::uint64_t sequence) {
  std::uint64_t state = spec.seed ^ MixU64(sequence);
  const std::uint64_t r = SplitMix64(state);
  Event event;
  event.sequence = sequence;
  event.sensor = static_cast<std::uint32_t>(r % spec.sensors);
  event.reading = static_cast<float>((r >> 16) % 10000) / 100.0f;
  return event;
}

std::vector<double> ExpectedWindowMeans(const StreamSpec& spec) {
  const std::uint64_t windows = NumWindows(spec);
  std::vector<double> sums(windows * spec.sensors, 0.0);
  std::vector<std::uint64_t> counts(windows * spec.sensors, 0);
  for (std::uint64_t i = 0; i < spec.events; ++i) {
    const Event e = MakeEvent(spec, i);
    const std::uint64_t w = i / spec.window_events;
    sums[w * spec.sensors + e.sensor] += e.reading;
    counts[w * spec.sensors + e.sensor]++;
  }
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (counts[i] > 0) {
      sums[i] /= static_cast<double>(counts[i]);
    }
  }
  return sums;
}

dataflow::Job BuildStreamingJob(const StreamSpec& spec) {
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);  // worker/watermark state
  jopts.global_scratch_bytes =
      NumWindows(spec) * spec.sensors * sizeof(double);  // result cache
  dataflow::Job job("streaming", jopts);

  dataflow::TaskProperties source_props;
  source_props.output_bytes = spec.events * sizeof(Event);
  source_props.base_work = static_cast<double>(spec.events);
  source_props.parallel_fraction = 0.5;
  const dataflow::TaskId source = job.AddTask(
      "source", source_props, [spec](dataflow::TaskContext& ctx) -> Status {
        std::vector<Event> events(spec.events);
        for (std::uint64_t i = 0; i < spec.events; ++i) {
          events[i] = MakeEvent(spec, i);
        }
        ctx.ChargeCompute(static_cast<double>(spec.events));
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<Event>(ctx, events));
        (void)out;
        return OkStatus();
      });

  dataflow::TaskProperties window_props;
  window_props.output_bytes = NumWindows(spec) * spec.sensors * sizeof(double);
  window_props.scratch_bytes = spec.window_events * sizeof(Event);  // recv buffer
  window_props.work_per_byte = 0.2;
  window_props.parallel_fraction = 0.7;
  const dataflow::TaskId window = job.AddTask(
      "window-aggregate", window_props, [spec](dataflow::TaskContext& ctx) -> Status {
        // Receive buffer in Private Scratch: events stream through it window
        // by window (Table 3's "cache/buffer (send, recv.)").
        MEMFLOW_ASSIGN_OR_RETURN(
            region::RegionId buffer,
            ctx.AllocatePrivateScratch(spec.window_events * sizeof(Event)));

        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor in,
                                 ctx.OpenAsync(ctx.inputs().front()));
        const std::uint64_t windows = NumWindows(spec);
        std::vector<double> means(windows * spec.sensors, 0.0);
        std::vector<std::uint64_t> counts(spec.sensors);
        std::vector<Event> batch(spec.window_events);

        // Watermark in Global State after each window (worker progress).
        MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state,
                                 ctx.OpenSync(ctx.global_state()));

        for (std::uint64_t w = 0; w < windows; ++w) {
          const std::uint64_t begin = w * spec.window_events;
          const std::uint64_t n = std::min(spec.window_events, spec.events - begin);
          batch.resize(n);
          in.EnqueueRead(begin * sizeof(Event), batch.data(), n * sizeof(Event));
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration rc, in.Drain());
          ctx.Charge(rc);
          // Stage the window through the scratch buffer.
          MEMFLOW_RETURN_IF_ERROR(
              WriteAll<Event>(ctx, buffer, {batch.data(), batch.size()}));

          std::fill(counts.begin(), counts.end(), 0);
          std::vector<double> sums(spec.sensors, 0.0);
          for (const Event& e : batch) {
            sums[e.sensor] += e.reading;
            counts[e.sensor]++;
          }
          for (std::uint32_t s = 0; s < spec.sensors; ++s) {
            means[w * spec.sensors + s] =
                counts[s] == 0 ? 0.0 : sums[s] / static_cast<double>(counts[s]);
          }
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration wc, state.Store(0, w + 1));
          ctx.Charge(wc);
        }
        ctx.ChargeCompute(static_cast<double>(spec.events) * 2);
        // Publish the aggregates into the shared result cache (Table 3).
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor cache,
                                 ctx.OpenAsync(ctx.global_scratch()));
        cache.EnqueueWrite(0, means.data(), means.size() * sizeof(double));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cc, cache.Drain());
        ctx.Charge(cc);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<double>(ctx, means));
        (void)out;
        return OkStatus();
      });

  MEMFLOW_CHECK(job.Connect(source, window).ok());
  return job;
}

}  // namespace memflow::apps::streaming
