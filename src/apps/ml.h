// Copyright (c) memflow authors. MIT license.
//
// ML input pipeline + training in the style of Cachew (Table 3, row "ML/AI";
// §2.4): parse -> transform (cached in Global Scratch) -> train on an
// accelerator (Private Scratch for training state), weights as a persistent
// output. Training really runs (gradient descent on a synthetic linear
// regression), so convergence is verifiable.

#ifndef MEMFLOW_APPS_ML_H_
#define MEMFLOW_APPS_ML_H_

#include <cstdint>

#include "dataflow/job.h"

namespace memflow::apps::ml {

struct MlSpec {
  std::uint64_t examples = 20000;
  int features = 8;
  int epochs = 5;
  double learning_rate = 0.05;
  std::uint64_t seed = 7;
};

// Ground-truth weights the synthetic data is generated from: weight[f] of
// feature f is (f + 1) * 0.5. Training should approach these.
double TrueWeight(int feature);

// Layout of the trained output region: [features x double weights,
// initial_loss, final_loss].
struct TrainedModel {
  std::vector<double> weights;
  double initial_loss = 0;
  double final_loss = 0;
};

// Job shape: parse -> transform (writes the transformed matrix into Global
// Scratch as a cache) -> train (GPU-preferred, reads the cache). The job's
// Global Scratch must hold examples*(features+1) doubles; use
// CacheBytes(spec) for JobOptions::global_scratch_bytes (BuildTrainingJob
// sets it for you).
dataflow::Job BuildTrainingJob(const MlSpec& spec, bool persist_weights = true);

std::uint64_t CacheBytes(const MlSpec& spec);

// Decodes a training job's sink output region contents.
TrainedModel DecodeModel(const std::vector<double>& raw, int features);

}  // namespace memflow::apps::ml

#endif  // MEMFLOW_APPS_ML_H_
