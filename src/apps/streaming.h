// Copyright (c) memflow authors. MIT license.
//
// Streaming analytics (Table 3, row "Streaming"): a source emits sensor
// events, a windowing operator keeps send/receive buffers in Private Scratch
// and cluster/worker state in Global State, and per-window aggregates land in
// the result cache (the sink output). Deterministic input makes the window
// sums verifiable.

#ifndef MEMFLOW_APPS_STREAMING_H_
#define MEMFLOW_APPS_STREAMING_H_

#include <cstdint>
#include <vector>

#include "dataflow/job.h"

namespace memflow::apps::streaming {

struct StreamSpec {
  std::uint64_t events = 100000;
  std::uint32_t sensors = 16;
  std::uint64_t window_events = 10000;  // tumbling window size, in events
  std::uint64_t seed = 21;
};

struct Event {
  std::uint64_t sequence;
  std::uint32_t sensor;
  float reading;
};
static_assert(std::is_trivially_copyable_v<Event>);

Event MakeEvent(const StreamSpec& spec, std::uint64_t sequence);

// Per (window, sensor) mean reading; layout windows x sensors row-major.
std::vector<double> ExpectedWindowMeans(const StreamSpec& spec);

inline std::uint64_t NumWindows(const StreamSpec& spec) {
  return (spec.events + spec.window_events - 1) / spec.window_events;
}

// Job shape: source -> window-aggregate -> sink(result cache). The sink
// output region holds NumWindows x sensors doubles.
dataflow::Job BuildStreamingJob(const StreamSpec& spec);

}  // namespace memflow::apps::streaming

#endif  // MEMFLOW_APPS_STREAMING_H_
