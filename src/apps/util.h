// Copyright (c) memflow authors. MIT license.
//
// Shared helpers for the example applications: whole-region typed reads and
// writes through the async interface, with costs charged to the task.

#ifndef MEMFLOW_APPS_UTIL_H_
#define MEMFLOW_APPS_UTIL_H_

#include <span>
#include <vector>

#include "dataflow/context.h"

namespace memflow::apps {

// Reads the entire region as a vector of T (region size must be a multiple
// of sizeof(T); trailing partial elements are dropped).
template <typename T>
Result<std::vector<T>> ReadAll(dataflow::TaskContext& ctx, region::RegionId id) {
  static_assert(std::is_trivially_copyable_v<T>);
  MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(id));
  std::vector<T> out(acc.size() / sizeof(T));
  if (!out.empty()) {
    acc.EnqueueRead(0, out.data(), out.size() * sizeof(T));
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    ctx.Charge(cost);
  }
  return out;
}

template <typename T>
Status WriteAll(dataflow::TaskContext& ctx, region::RegionId id, std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.empty()) {
    return OkStatus();
  }
  MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(id));
  acc.EnqueueWrite(0, data.data(), data.size() * sizeof(T));
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
  ctx.Charge(cost);
  return OkStatus();
}

// Allocates the task's output region sized for `data` and writes it.
// Empty data produces no output (returns an invalid id); downstream tasks
// must tolerate missing inputs.
template <typename T>
Result<region::RegionId> EmitOutput(dataflow::TaskContext& ctx, std::span<const T> data,
                                    region::AccessHint hint = {}) {
  if (data.empty()) {
    return region::RegionId{};
  }
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                           ctx.AllocateOutput(data.size() * sizeof(T), hint));
  MEMFLOW_RETURN_IF_ERROR(WriteAll<T>(ctx, out, data));
  return out;
}

}  // namespace memflow::apps

#endif  // MEMFLOW_APPS_UTIL_H_
