// Copyright (c) memflow authors. MIT license.

#include "apps/ml.h"

#include <cmath>

#include "apps/util.h"
#include "common/hash.h"
#include "common/rng.h"

namespace memflow::apps::ml {

namespace {

// Raw "on-disk" example: integer sensor readings plus a scaled label; the
// parse stage converts them to floats, the transform stage normalizes.
struct RawExample {
  std::int32_t readings[16];  // first `features` entries used
  std::int64_t label_milli;
};
static_assert(std::is_trivially_copyable_v<RawExample>);

RawExample MakeRaw(const MlSpec& spec, std::uint64_t index) {
  std::uint64_t state = spec.seed ^ MixU64(index);
  RawExample raw{};
  double label = 0;
  for (int f = 0; f < spec.features; ++f) {
    const auto v = static_cast<std::int32_t>(SplitMix64(state) % 2000) - 1000;
    raw.readings[f] = v;
    label += TrueWeight(f) * (static_cast<double>(v) / 1000.0);
  }
  // Small deterministic noise.
  label += (static_cast<double>(SplitMix64(state) % 100) - 50.0) / 5000.0;
  raw.label_milli = static_cast<std::int64_t>(label * 1000.0);
  return raw;
}

}  // namespace

double TrueWeight(int feature) { return (feature + 1) * 0.5; }

std::uint64_t CacheBytes(const MlSpec& spec) {
  return spec.examples * (static_cast<std::uint64_t>(spec.features) + 1) * sizeof(double);
}

TrainedModel DecodeModel(const std::vector<double>& raw, int features) {
  MEMFLOW_CHECK(raw.size() >= static_cast<std::size_t>(features) + 2);
  TrainedModel model;
  model.weights.assign(raw.begin(), raw.begin() + features);
  model.initial_loss = raw[static_cast<std::size_t>(features)];
  model.final_loss = raw[static_cast<std::size_t>(features) + 1];
  return model;
}

dataflow::Job BuildTrainingJob(const MlSpec& spec, bool persist_weights) {
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);  // dispatcher/worker state (Cachew)
  jopts.global_scratch_bytes = CacheBytes(spec);
  dataflow::Job job("ml-training", jopts);

  // T1: parse raw examples into floats.
  dataflow::TaskProperties parse_props;
  parse_props.output_bytes = spec.examples * sizeof(RawExample);
  parse_props.base_work = static_cast<double>(spec.examples) * 4;
  parse_props.parallel_fraction = 0.7;
  const dataflow::TaskId parse = job.AddTask(
      "parse", parse_props, [spec](dataflow::TaskContext& ctx) -> Status {
        std::vector<RawExample> raw(spec.examples);
        for (std::uint64_t i = 0; i < spec.examples; ++i) {
          raw[i] = MakeRaw(spec, i);
        }
        ctx.ChargeCompute(static_cast<double>(spec.examples) * 4);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<RawExample>(ctx, raw));
        (void)out;
        return OkStatus();
      });

  // T2: transform/normalize; cache the transformed matrix in Global Scratch.
  dataflow::TaskProperties transform_props;
  transform_props.output_bytes = 8;  // cache-ready token
  transform_props.work_per_byte = 0.2;
  transform_props.parallel_fraction = 0.9;
  const dataflow::TaskId transform = job.AddTask(
      "transform", transform_props, [spec](dataflow::TaskContext& ctx) -> Status {
        MEMFLOW_ASSIGN_OR_RETURN(std::vector<RawExample> raw,
                                 ReadAll<RawExample>(ctx, ctx.inputs().front()));
        const auto stride = static_cast<std::size_t>(spec.features) + 1;
        std::vector<double> matrix(raw.size() * stride);
        for (std::size_t i = 0; i < raw.size(); ++i) {
          for (int f = 0; f < spec.features; ++f) {
            matrix[i * stride + static_cast<std::size_t>(f)] =
                static_cast<double>(raw[i].readings[f]) / 1000.0;
          }
          matrix[i * stride + static_cast<std::size_t>(spec.features)] =
              static_cast<double>(raw[i].label_milli) / 1000.0;
        }
        ctx.ChargeCompute(static_cast<double>(matrix.size()));
        // Worker state (Cachew dispatcher): publish transform progress.
        {
          MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state,
                                   ctx.OpenSync(ctx.global_state()));
          MEMFLOW_ASSIGN_OR_RETURN(
              SimDuration sc, state.Store<std::uint64_t>(0, raw.size()));
          ctx.Charge(sc);
        }
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor cache,
                                 ctx.OpenAsync(ctx.global_scratch()));
        cache.EnqueueWrite(0, matrix.data(), matrix.size() * sizeof(double));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, cache.Drain());
        ctx.Charge(cost);
        const std::uint64_t token = 1;
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                 EmitOutput<std::uint64_t>(ctx, {&token, 1}));
        (void)out;
        return OkStatus();
      });

  // T3: train on the accelerator, reading the cached matrix.
  dataflow::TaskProperties train_props;
  train_props.compute_device = simhw::ComputeDeviceKind::kGPU;
  train_props.parallel_fraction = 0.98;
  train_props.base_work =
      static_cast<double>(spec.examples) * spec.features * spec.epochs * 2;
  train_props.scratch_bytes = static_cast<std::uint64_t>(spec.features) * sizeof(double) * 4;
  train_props.output_bytes = (static_cast<std::uint64_t>(spec.features) + 2) * sizeof(double);
  train_props.persistent = persist_weights;
  train_props.mem_latency = region::LatencyClass::kAny;
  const dataflow::TaskId train = job.AddTask(
      "train", train_props, [spec](dataflow::TaskContext& ctx) -> Status {
        const auto stride = static_cast<std::size_t>(spec.features) + 1;
        std::vector<double> matrix(spec.examples * stride);
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor cache,
                                 ctx.OpenAsync(ctx.global_scratch()));
        cache.EnqueueRead(0, matrix.data(), matrix.size() * sizeof(double));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, cache.Drain());
        ctx.Charge(cost);

        // Training state in Private Scratch (per Table 3).
        MEMFLOW_ASSIGN_OR_RETURN(
            region::RegionId state,
            ctx.AllocatePrivateScratch(static_cast<std::uint64_t>(spec.features) *
                                       sizeof(double) * 2));

        std::vector<double> weights(static_cast<std::size_t>(spec.features), 0.0);
        const auto loss_of = [&](const std::vector<double>& w) {
          double total = 0;
          for (std::uint64_t i = 0; i < spec.examples; ++i) {
            double pred = 0;
            for (int f = 0; f < spec.features; ++f) {
              pred += w[static_cast<std::size_t>(f)] *
                      matrix[i * stride + static_cast<std::size_t>(f)];
            }
            const double err = pred - matrix[i * stride + static_cast<std::size_t>(spec.features)];
            total += err * err;
          }
          return total / static_cast<double>(spec.examples);
        };

        const double initial_loss = loss_of(weights);
        std::vector<double> grad(static_cast<std::size_t>(spec.features));
        for (int epoch = 0; epoch < spec.epochs; ++epoch) {
          std::fill(grad.begin(), grad.end(), 0.0);
          for (std::uint64_t i = 0; i < spec.examples; ++i) {
            double pred = 0;
            for (int f = 0; f < spec.features; ++f) {
              pred += weights[static_cast<std::size_t>(f)] *
                      matrix[i * stride + static_cast<std::size_t>(f)];
            }
            const double err =
                pred - matrix[i * stride + static_cast<std::size_t>(spec.features)];
            for (int f = 0; f < spec.features; ++f) {
              grad[static_cast<std::size_t>(f)] +=
                  2.0 * err * matrix[i * stride + static_cast<std::size_t>(f)];
            }
          }
          for (int f = 0; f < spec.features; ++f) {
            weights[static_cast<std::size_t>(f)] -=
                spec.learning_rate * grad[static_cast<std::size_t>(f)] /
                static_cast<double>(spec.examples);
          }
          // Checkpoint epoch weights into scratch.
          MEMFLOW_RETURN_IF_ERROR(WriteAll<double>(ctx, state, weights));
        }
        ctx.ChargeCompute(static_cast<double>(spec.examples) * spec.features *
                          spec.epochs * 2);

        std::vector<double> out_vec = weights;
        out_vec.push_back(initial_loss);
        out_vec.push_back(loss_of(weights));
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<double>(ctx, out_vec));
        (void)out;
        return OkStatus();
      });

  MEMFLOW_CHECK(job.Connect(parse, transform).ok());
  MEMFLOW_CHECK(job.Connect(transform, train).ok());
  return job;
}

}  // namespace memflow::apps::ml
