// Copyright (c) memflow authors. MIT license.

#include "apps/hpc.h"

#include <cmath>

#include "apps/util.h"

namespace memflow::apps::hpc {

namespace {

std::vector<double> InitialGrid(const StencilSpec& spec) {
  std::vector<double> grid(static_cast<std::size_t>(spec.nx) * spec.ny, 0.0);
  for (int x = 0; x < spec.nx; ++x) {
    grid[static_cast<std::size_t>(x)] = spec.boundary;  // top row (y == 0)
  }
  return grid;
}

// One Jacobi sweep; boundary cells stay fixed.
std::vector<double> Sweep(const StencilSpec& spec, const std::vector<double>& in) {
  std::vector<double> out = in;
  for (int y = 1; y < spec.ny - 1; ++y) {
    for (int x = 1; x < spec.nx - 1; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * spec.nx + x;
      out[i] = 0.25 * (in[i - 1] + in[i + 1] + in[i - static_cast<std::size_t>(spec.nx)] +
                       in[i + static_cast<std::size_t>(spec.nx)]);
    }
  }
  return out;
}

}  // namespace

std::vector<double> ReferenceStencil(const StencilSpec& spec) {
  std::vector<double> grid = InitialGrid(spec);
  for (int s = 0; s < spec.sweeps; ++s) {
    grid = Sweep(spec, grid);
  }
  return grid;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  MEMFLOW_CHECK(a.size() == b.size());
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

dataflow::Job BuildStencilJob(const StencilSpec& spec) {
  const std::uint64_t grid_bytes =
      static_cast<std::uint64_t>(spec.nx) * spec.ny * sizeof(double);

  dataflow::JobOptions jopts;
  jopts.global_state_bytes = KiB(4);       // iteration counter + residual
  jopts.global_scratch_bytes = grid_bytes; // object/blob storage (Table 3)
  dataflow::Job job("hpc-stencil", jopts);

  dataflow::TaskProperties init_props;
  init_props.output_bytes = grid_bytes;
  init_props.base_work = static_cast<double>(spec.nx) * spec.ny;
  init_props.parallel_fraction = 0.9;
  dataflow::TaskId prev = job.AddTask(
      "init", init_props, [spec](dataflow::TaskContext& ctx) -> Status {
        const std::vector<double> grid = InitialGrid(spec);
        ctx.ChargeCompute(static_cast<double>(grid.size()));
        // Archive the initial field to the job's blob storage (Table 3's
        // "object/blob storage" use of Global Scratch).
        MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor blob,
                                 ctx.OpenAsync(ctx.global_scratch()));
        blob.EnqueueWrite(0, grid.data(), grid.size() * sizeof(double));
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration bc, blob.Drain());
        ctx.Charge(bc);
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<double>(ctx, grid));
        (void)out;
        return OkStatus();
      });

  for (int s = 0; s < spec.sweeps; ++s) {
    dataflow::TaskProperties sweep_props;
    sweep_props.output_bytes = grid_bytes;
    sweep_props.scratch_bytes = grid_bytes;  // node-local working memory
    sweep_props.work_per_byte = 0.6;
    sweep_props.parallel_fraction = 0.95;
    const dataflow::TaskId sweep = job.AddTask(
        "sweep" + std::to_string(s), sweep_props,
        [spec, s](dataflow::TaskContext& ctx) -> Status {
          MEMFLOW_ASSIGN_OR_RETURN(std::vector<double> grid,
                                   ReadAll<double>(ctx, ctx.inputs().front()));
          // Working copy staged through node-local scratch.
          MEMFLOW_ASSIGN_OR_RETURN(region::RegionId work,
                                   ctx.AllocatePrivateScratch(grid.size() * sizeof(double)));
          std::vector<double> next = Sweep(spec, grid);
          MEMFLOW_RETURN_IF_ERROR(WriteAll<double>(ctx, work, next));
          ctx.ChargeCompute(static_cast<double>(grid.size()) * 5);

          // Publish progress + residual to Global State.
          MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor state,
                                   ctx.OpenSync(ctx.global_state()));
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration c1,
                                   state.Store<std::uint64_t>(0, static_cast<std::uint64_t>(s + 1)));
          const double residual = MaxAbsDiff(grid, next);
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration c2, state.Store(1, residual));
          ctx.Charge(c1 + c2);

          MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, EmitOutput<double>(ctx, next));
          (void)out;
          return OkStatus();
        });
    MEMFLOW_CHECK(job.Connect(prev, sweep).ok());
    prev = sweep;
  }
  return job;
}

}  // namespace memflow::apps::hpc
