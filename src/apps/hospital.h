// Copyright (c) memflow authors. MIT license.
//
// The paper's running example (Figure 2): a hospital's CCTV dataflow.
//
//   T1 preprocessing       {GPU, confidential, low latency}
//   T2 face recognition    {GPU, confidential, low latency}
//   T3 track working hours {CPU, confidential, low latency}
//   T4 compute utilization {CPU, public}
//   T5 alert caregivers    {CPU, confidential, persistent, low latency}
//
// T1 cleans raw camera frames (drops corrupted ones via checksum), T2 matches
// face features against the employee/patient registry (kept in Global
// Scratch), and T3/T4/T5 consume T2's recognized events through a shared
// (fanned-out) region. Everything is generated deterministically from the
// spec seed, so every output is verifiable host-side.

#ifndef MEMFLOW_APPS_HOSPITAL_H_
#define MEMFLOW_APPS_HOSPITAL_H_

#include <cstdint>
#include <vector>

#include "dataflow/job.h"

namespace memflow::apps::hospital {

struct HospitalSpec {
  int minutes = 24 * 60;     // observation horizon
  int staff = 20;
  int patients = 40;
  int grace_minutes = 30;    // T5: alert if gone longer than this
  double garbage_rate = 0.1; // fraction of corrupted camera frames
  std::uint64_t seed = 1337;
};

// A raw camera frame: a face feature sighting plus an integrity checksum.
struct Frame {
  std::uint32_t minute;
  std::uint32_t direction;  // 0 = enter, 1 = exit
  std::uint64_t feature;    // face feature hash
  std::uint64_t checksum;   // Fnv-style; garbage frames fail it
};
static_assert(std::is_trivially_copyable_v<Frame>);

// A recognized event after T2.
struct Recognized {
  std::uint32_t minute;
  std::uint32_t direction;
  std::uint32_t person;     // registry id: [0, staff) staff, then patients
  std::uint32_t is_staff;
};
static_assert(std::is_trivially_copyable_v<Recognized>);

// Face feature of a registry person (deterministic).
std::uint64_t FaceFeature(const HospitalSpec& spec, std::uint32_t person);

// The raw frame stream the camera produces (with garbage mixed in),
// chronologically ordered.
std::vector<Frame> GenerateFrames(const HospitalSpec& spec);

struct HospitalExpectation {
  std::vector<std::uint64_t> staff_minutes;      // per staff id
  std::vector<std::uint32_t> hourly_utilization; // max occupancy per hour
  std::vector<std::uint32_t> alerts;             // patient ids, ascending
};

HospitalExpectation ExpectedHospital(const HospitalSpec& spec);

// Builds the Figure 2 job. The three sinks (T3, T4, T5) retain outputs:
// report.outputs holds them in task order [hours, utilization, alerts].
dataflow::Job BuildHospitalJob(const HospitalSpec& spec);

// Global Scratch bytes needed by the registry.
std::uint64_t RegistryBytes(const HospitalSpec& spec);

}  // namespace memflow::apps::hospital

#endif  // MEMFLOW_APPS_HOSPITAL_H_
