// Copyright (c) memflow authors. MIT license.
//
// The consumer-facing half of the critical-path analyzer (DESIGN.md §11):
// what-if counterfactuals replayed through the runtime's own cost model, the
// "job doctor" text report ("top 3 reasons this job is slow"), a stable JSON
// export of the full profile, and a Chrome trace render with the critical
// path highlighted.

#ifndef MEMFLOW_TELEMETRY_ANALYZE_DOCTOR_H_
#define MEMFLOW_TELEMETRY_ANALYZE_DOCTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rts/runtime.h"
#include "telemetry/analyze/analyzer.h"

namespace memflow::telemetry::analyze {

// One counterfactual: a concrete change and the makespan reduction it is
// predicted to buy. `estimated_savings` is an upper bound — removing one
// bottleneck can expose another path.
struct WhatIf {
  std::string description;
  SimDuration estimated_savings;
};

// Ranks counterfactuals by estimated savings, largest first, at most
// `max_items`. Structural what-ifs (zero-copy a critical handover, drain a
// queue, avoid a retry stall, skip checkpointing) come from the profile
// alone. When `runtime` is non-null, each critical task is additionally
// *re-placed through the runtime's cost model*: every alternative compute
// device is re-estimated with the same inputs the placement policy saw, and
// a predicted win becomes a "re-place task X on device Y" counterfactual.
std::vector<WhatIf> ComputeWhatIfs(const JobProfile& profile,
                                   const rts::Runtime* runtime = nullptr,
                                   std::size_t max_items = 5);

// "Top 3 reasons this job is slow": the doctor report. Leads with a
// WARNING banner when the trace ring dropped events (profile incomplete),
// then the makespan attribution table, the critical path, the ranked
// slowness reasons, and the what-if list.
std::string RenderJobDoctor(const JobProfile& profile,
                            const std::vector<WhatIf>& what_ifs = {});

// Stable machine-readable JSON document of the whole profile: attribution
// (with the sums-to-makespan contract made explicit), the critical path,
// and every executed task.
std::string ExportJobProfileJson(const JobProfile& profile);

// Chrome trace JSON of the profile's job with the critical path highlighted:
// critical task spans and the flow arrows between consecutive critical tasks
// are colored and tagged `"critical":true`.
std::string ExportHighlightedTraceJson(const TraceBuffer& tracer, const JobProfile& profile);

// Human rendering of one recorded task-placement decision (ranked candidate
// table with per-term cost-model scores and loser reasons).
std::string RenderPlacementDecision(const rts::PlacementDecision& decision,
                                    const simhw::Cluster& cluster);

// Human rendering of a region placement explanation (RegionManager /
// Runtime::ExplainPlacement).
std::string RenderRegionExplain(const region::RegionPlacementExplain& explain,
                                const simhw::Cluster& cluster);

// Whole-runtime health check over one metrics snapshot: latency quantiles
// (task queue wait / duration via the snapshot Quantile helpers), lock
// contention, control-plane phase shares from the self-profiler gauges, and
// WARNING lines for dropped trace events and overflowed metric families.
// Complements RenderJobDoctor: that explains one job, this checks the
// runtime under it.
std::string RenderRuntimeHealth(const MetricsSnapshot& snapshot);

}  // namespace memflow::telemetry::analyze

#endif  // MEMFLOW_TELEMETRY_ANALYZE_DOCTOR_H_
