// Copyright (c) memflow authors. MIT license.

#include "telemetry/analyze/analyzer.h"

#include <algorithm>
#include <charconv>
#include <set>

namespace memflow::telemetry::analyze {

namespace {

const TraceArg* FindArg(const TraceEvent& e, std::string_view key) {
  for (const TraceArg& a : e.args) {
    if (a.key == key) {
      return &a;
    }
  }
  return nullptr;
}

std::int64_t ArgInt(const TraceEvent& e, std::string_view key, std::int64_t fallback = 0) {
  const TraceArg* a = FindArg(e, key);
  if (a == nullptr) {
    return fallback;
  }
  std::int64_t v = fallback;
  (void)std::from_chars(a->value.data(), a->value.data() + a->value.size(), v);
  return v;
}

std::string ArgString(const TraceEvent& e, std::string_view key) {
  const TraceArg* a = FindArg(e, key);
  return a != nullptr ? a->value : std::string();
}

SimDuration Max0(SimDuration d) { return d.ns < 0 ? SimDuration{} : d; }

// "job inference-pipeline" -> "inference-pipeline".
std::string JobName(const TraceEvent& job_span) {
  constexpr std::string_view kPrefix = "job ";
  if (job_span.name.starts_with(kPrefix)) {
    return job_span.name.substr(kPrefix.size());
  }
  return job_span.name;
}

void EnsureTask(std::vector<TaskNode>& tasks, std::uint32_t id) {
  if (tasks.size() <= id) {
    tasks.resize(id + 1);
  }
  tasks[id].task = id;
}

}  // namespace

std::vector<std::uint32_t> TracedJobs(const TraceBuffer& tracer) {
  std::set<std::uint32_t> ids;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.type == TraceEventType::kSpan && e.category == "job" && e.job != 0) {
      ids.insert(e.job);
    }
  }
  return {ids.begin(), ids.end()};
}

Result<JobProfile> AnalyzeJob(const TraceBuffer& tracer, std::uint32_t job) {
  const std::vector<TraceEvent> events = tracer.Events();

  JobProfile profile;
  profile.job = job;
  profile.dropped_events = tracer.dropped();

  // Pass 1: the job span bounds the window and names the job.
  const TraceEvent* job_span = nullptr;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kSpan && e.category == "job" && e.job == job) {
      job_span = &e;  // last wins (ids are unique per runtime anyway)
    }
  }
  if (job_span == nullptr) {
    return NotFound("no job span for job " + std::to_string(job) +
                    " in the trace buffer (job unfinished, or span overwritten)");
  }
  profile.name = JobName(*job_span);
  profile.status = ArgString(*job_span, "status");
  profile.submitted = job_span->ts;
  profile.makespan = job_span->dur;
  profile.expected_tasks = static_cast<std::size_t>(ArgInt(*job_span, "tasks"));

  // Pass 2: task spans, flow arrows (the executed DAG), checkpoint I/O.
  for (const TraceEvent& e : events) {
    if (e.job != job) {
      continue;
    }
    if (e.type == TraceEventType::kSpan && e.category == "task") {
      const auto id = static_cast<std::uint32_t>(ArgInt(e, "task"));
      EnsureTask(profile.tasks, id);
      TaskNode& node = profile.tasks[id];
      node.name = e.name;
      node.device_track = e.track;
      node.arrival = SimTime(ArgInt(e, "arrival_ns"));
      node.ready = SimTime(ArgInt(e, "ready_ns"));
      node.start = e.ts;
      node.duration = e.dur;
      node.finish = e.ts + e.dur;
      node.handover = SimDuration(ArgInt(e, "handover_ns"));
      node.attempts = static_cast<int>(ArgInt(e, "attempts", 1));
      node.zero_copy = ArgString(e, "zero_copy") != "false";
      node.has_span = true;
    } else if (e.type == TraceEventType::kFlowBegin && e.category == "flow") {
      const auto src = static_cast<std::uint32_t>(ArgInt(e, "src"));
      const auto dst = static_cast<std::uint32_t>(ArgInt(e, "dst"));
      EnsureTask(profile.tasks, std::max(src, dst));
      profile.tasks[dst].preds.push_back(
          {src, SimDuration(ArgInt(e, "handover_ns")), ArgString(e, "kind")});
    } else if (e.type == TraceEventType::kSpan && e.category == "checkpoint") {
      const auto id = static_cast<std::uint32_t>(ArgInt(e, "task"));
      EnsureTask(profile.tasks, id);
      profile.tasks[id].checkpoint += e.dur;
    }
  }

  std::size_t executed = 0;
  for (const TaskNode& node : profile.tasks) {
    executed += node.has_span ? 1 : 0;
  }
  profile.complete = profile.status == "ok" && profile.dropped_events == 0 &&
                     executed == profile.expected_tasks;

  // Anchor: the last-finishing executed task. Ties break to the *largest* id:
  // the executor commits simultaneous completions in ascending task order, so
  // the largest id is the completion that actually finished the job — e.g. a
  // zero-duration sink tying with its producer must still anchor the path.
  const TaskNode* anchor = nullptr;
  for (const TaskNode& node : profile.tasks) {
    if (node.has_span &&
        (anchor == nullptr || node.finish > anchor->finish ||
         (node.finish == anchor->finish && node.task > anchor->task))) {
      anchor = &node;
    }
  }
  if (anchor == nullptr) {
    // Nothing executed (admission-time failure): all latency is unexplained.
    profile.attribution.unattributed = profile.makespan;
    return profile;
  }

  // Backward walk: from the anchor, repeatedly step to the predecessor whose
  // completion + handover gated this task's arrival — that edge is what the
  // task was actually waiting for, so it bounds the makespan.
  std::vector<const TaskNode*> path;
  std::set<std::uint32_t> visited;
  const TaskNode* cur = anchor;
  while (cur != nullptr && visited.insert(cur->task).second) {
    path.push_back(cur);
    const TaskNode* critical_pred = nullptr;
    SimTime best_wake;
    for (const TaskNode::Edge& edge : cur->preds) {
      const TaskNode& p = profile.tasks[edge.src];
      if (!p.has_span) {
        profile.complete = false;  // edge into a missing span: truncated ring
        continue;
      }
      const SimTime wake = p.finish + edge.handover;
      if (critical_pred == nullptr || wake > best_wake ||
          (wake == best_wake && p.task < critical_pred->task)) {
        critical_pred = &p;
        best_wake = wake;
      }
    }
    cur = critical_pred;
  }
  std::reverse(path.begin(), path.end());

  // Tile the timeline. Each step owns [prev finish, own finish); the buckets
  // below tile that segment exactly, so the running sum telescopes from the
  // source's arrival to the anchor's finish. Whatever the walk cannot see —
  // submit -> source arrival, anchor finish -> job finish (both zero for a
  // healthy profile), or clamped inconsistencies from a truncated ring — is
  // the residual, kept in `unattributed` so Sum() == makespan axiomatically.
  Attribution& attr = profile.attribution;
  SimTime prev_finish;
  bool have_prev = false;
  for (const TaskNode* node : path) {
    CriticalStep step;
    step.task = node->task;
    step.name = node->name;
    step.transfer_in = have_prev ? Max0(node->arrival - prev_finish) : SimDuration{};
    step.stall = Max0(node->ready - node->arrival);
    step.queue = Max0(node->start - node->ready);
    step.checkpoint = std::min(Max0(node->checkpoint), Max0(node->duration));
    step.compute = Max0(node->duration - step.checkpoint);
    attr.transfer += step.transfer_in;
    attr.stall += step.stall;
    attr.queue += step.queue;
    attr.checkpoint += step.checkpoint;
    attr.compute += step.compute;
    profile.tasks[node->task].on_critical_path = true;
    profile.critical_path.push_back(std::move(step));
    prev_finish = node->finish;
    have_prev = true;
  }
  attr.unattributed = profile.makespan - (attr.compute + attr.transfer + attr.queue +
                                          attr.stall + attr.checkpoint);
  if (profile.complete && attr.unattributed.ns != 0) {
    // A successful, fully-traced job must be fully explained; a residual
    // means the trace contract was violated somewhere upstream.
    profile.complete = false;
  }
  return profile;
}

std::string AttributionFingerprint(const JobProfile& profile) {
  std::string fp = "job=" + std::to_string(profile.job) + " name=" + profile.name +
                   " status=" + profile.status +
                   " makespan=" + std::to_string(profile.makespan.ns) + " buckets=" +
                   std::to_string(profile.attribution.compute.ns) + "," +
                   std::to_string(profile.attribution.transfer.ns) + "," +
                   std::to_string(profile.attribution.queue.ns) + "," +
                   std::to_string(profile.attribution.stall.ns) + "," +
                   std::to_string(profile.attribution.checkpoint.ns) + "," +
                   std::to_string(profile.attribution.unattributed.ns) + " path=";
  for (const CriticalStep& step : profile.critical_path) {
    fp += std::to_string(step.task) + ":" + step.name + ":" +
          std::to_string(step.transfer_in.ns) + ":" + std::to_string(step.stall.ns) +
          ":" + std::to_string(step.queue.ns) + ":" + std::to_string(step.compute.ns) +
          ":" + std::to_string(step.checkpoint.ns) + ";";
  }
  return fp;
}

}  // namespace memflow::telemetry::analyze
