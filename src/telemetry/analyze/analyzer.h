// Copyright (c) memflow authors. MIT license.
//
// Critical-path profiler over the shared trace stream (DESIGN.md §11): turns
// the raw event ring into answers. The runtime already emits everything the
// analysis needs — task spans carry arrival/ready/start/duration, flow
// arrows carry the executed DAG edges with their handover costs, checkpoint
// spans carry the I/O charged inside a task, and job spans bound the
// makespan. This module reconstructs each job's task/flow DAG *from the
// trace alone* (no runtime introspection), walks the chain that bounded the
// makespan, and attributes every nanosecond of job latency to one of
//
//   compute     — critical tasks' body time, minus checkpoint I/O,
//   transfer    — handover gaps between critical producer and consumer,
//   queue       — ready -> dispatch wait behind other work on the device,
//   stall       — arrival -> ready: failed attempts, retry backoff,
//                 re-placement after device faults,
//   checkpoint  — checkpoint save/restore I/O charged inside critical tasks,
//   unattributed— the residual; zero for a complete, successful profile
//                 (failed jobs and truncated rings land here),
//
// such that the six buckets sum *exactly* to the makespan — the contract the
// sim oracle's `sim-attribution` invariant enforces at every worker count.

#ifndef MEMFLOW_TELEMETRY_ANALYZE_ANALYZER_H_
#define MEMFLOW_TELEMETRY_ANALYZE_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "telemetry/trace.h"

namespace memflow::telemetry::analyze {

// Where the critical-path nanoseconds went. Sum() == makespan, always.
struct Attribution {
  SimDuration compute;
  SimDuration transfer;
  SimDuration queue;
  SimDuration stall;
  SimDuration checkpoint;
  SimDuration unattributed;

  SimDuration Sum() const {
    return compute + transfer + queue + stall + checkpoint + unattributed;
  }
};

// One executed task, reconstructed from its trace span and the flow arrows
// pointing at it.
struct TaskNode {
  std::uint32_t task = 0;
  std::string name;
  std::uint64_t device_track = 0;  // trace lane == compute device id
  SimTime arrival;                 // first enqueue (all inputs delivered)
  SimTime ready;                   // last enqueue (== arrival unless retried)
  SimTime start;                   // dispatch of the successful attempt
  SimTime finish;                  // start + charged duration
  SimDuration duration;            // charged simulated time of the body
  SimDuration checkpoint;          // checkpoint I/O included in `duration`
  SimDuration handover;            // cost of moving the output onward
  int attempts = 1;
  bool zero_copy = true;
  bool on_critical_path = false;
  bool has_span = false;           // false: edge mentioned it, span missing

  struct Edge {
    std::uint32_t src = 0;
    SimDuration handover;          // producer's handover cost on this edge
    std::string kind;              // transfer | share | control | empty
  };
  std::vector<Edge> preds;
};

// One hop of the critical path: the task plus the edge that delivered its
// last input. The five per-step buckets tile [critical-pred finish, finish].
struct CriticalStep {
  std::uint32_t task = 0;
  std::string name;
  SimDuration transfer_in;  // critical predecessor's finish -> arrival
  SimDuration stall;        // arrival -> ready
  SimDuration queue;        // ready -> start
  SimDuration compute;      // duration - checkpoint
  SimDuration checkpoint;
};

struct JobProfile {
  std::uint32_t job = 0;
  std::string name;
  std::string status;        // "ok" | "failed"
  bool complete = false;     // ok, every task span present, nothing dropped
  SimTime submitted;
  SimDuration makespan;
  std::uint64_t dropped_events = 0;  // ring overwrites while this was traced
  std::size_t expected_tasks = 0;    // from the job span; executed may be fewer
  std::vector<TaskNode> tasks;       // indexed by task id
  std::vector<CriticalStep> critical_path;  // source -> sink order
  Attribution attribution;
};

// Job ids with a completed job span in the buffer, ascending.
std::vector<std::uint32_t> TracedJobs(const TraceBuffer& tracer);

// Reconstructs `job`'s profile from the trace stream. Fails only if the
// buffer holds no job span for `job` (job unfinished, or span overwritten).
Result<JobProfile> AnalyzeJob(const TraceBuffer& tracer, std::uint32_t job);

// Deterministic digest of the critical path and attribution, built from task
// ids/names and virtual-time values only — must be identical across host
// worker counts for the same workload (the executor contract).
std::string AttributionFingerprint(const JobProfile& profile);

}  // namespace memflow::telemetry::analyze

#endif  // MEMFLOW_TELEMETRY_ANALYZE_ANALYZER_H_
