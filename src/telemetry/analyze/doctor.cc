// Copyright (c) memflow authors. MIT license.

#include "telemetry/analyze/doctor.h"

#include <algorithm>
#include <charconv>
#include <optional>
#include <set>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"
#include "telemetry/export.h"

namespace memflow::telemetry::analyze {

namespace {

std::int64_t ArgInt(const TraceEvent& e, std::string_view key, std::int64_t fallback = 0) {
  for (const TraceArg& a : e.args) {
    if (a.key == key) {
      std::int64_t v = fallback;
      (void)std::from_chars(a.value.data(), a.value.data() + a.value.size(), v);
      return v;
    }
  }
  return fallback;
}

double Percent(SimDuration part, SimDuration whole) {
  if (whole.ns <= 0) {
    return 0;
  }
  return 100.0 * static_cast<double>(part.ns) / static_cast<double>(whole.ns);
}

std::string PercentCell(SimDuration part, SimDuration whole) {
  return FormatDouble(Percent(part, whole), 1) + "%";
}

// The last recorded decision per task is the one that stuck (admission, then
// any fault-driven replans).
const rts::PlacementDecision* LastDecision(const std::vector<rts::PlacementDecision>& log,
                                           std::uint32_t task) {
  const rts::PlacementDecision* found = nullptr;
  for (const rts::PlacementDecision& d : log) {
    if (d.task.value == task) {
      found = &d;
    }
  }
  return found;
}

}  // namespace

std::vector<WhatIf> ComputeWhatIfs(const JobProfile& profile, const rts::Runtime* runtime,
                                   std::size_t max_items) {
  std::vector<WhatIf> out;
  SimDuration checkpoint_total;
  for (const CriticalStep& step : profile.critical_path) {
    if (step.transfer_in.ns > 0) {
      out.push_back({"make the handover into '" + step.name +
                         "' zero-copy (co-place producer and consumer, or share "
                         "instead of transferring)",
                     step.transfer_in});
    }
    if (step.queue.ns > 0) {
      out.push_back({"drain the device queue ahead of '" + step.name +
                         "' (add capacity or spread placement)",
                     step.queue});
    }
    if (step.stall.ns > 0) {
      out.push_back({"avoid the retry/re-placement stall before '" + step.name +
                         "' (failed attempts + backoff)",
                     step.stall});
    }
    checkpoint_total += step.checkpoint;
  }
  if (checkpoint_total.ns > 0) {
    out.push_back({"skip checkpointing on the critical path", checkpoint_total});
  }

  // Counterfactual re-placement through the runtime's own cost model: would
  // any critical task have finished sooner somewhere else?
  const dataflow::Job* job = nullptr;
  if (runtime != nullptr) {
    auto got = runtime->GetJob(dataflow::JobId(profile.job));
    job = got.ok() ? *got : nullptr;
  }
  if (job != nullptr) {
    const std::vector<rts::PlacementDecision>& log =
        runtime->PlacementLog(dataflow::JobId(profile.job));
    const rts::CostModel& model = runtime->cost_model();
    const simhw::Cluster& cluster = runtime->cluster();
    for (const CriticalStep& step : profile.critical_path) {
      if (step.task >= job->num_tasks()) {
        continue;
      }
      const rts::PlacementDecision* decision = LastDecision(log, step.task);
      const std::uint64_t input_bytes =
          decision != nullptr ? decision->explain.input_bytes_estimate : 0;
      const dataflow::TaskProperties& props =
          job->task(dataflow::TaskId(step.task)).props;
      const auto actual =
          simhw::ComputeDeviceId(static_cast<std::uint32_t>(profile.tasks[step.task].device_track));
      auto actual_est = model.Estimate(props, input_bytes, actual);
      if (!actual_est.ok()) {
        continue;
      }
      WhatIf best;
      for (const simhw::ComputeDeviceId alt : cluster.AllComputeDevices()) {
        if (alt == actual || cluster.compute(alt).failed()) {
          continue;
        }
        auto est = model.Estimate(props, input_bytes, alt);
        if (!est.ok() || est->total >= actual_est->total) {
          continue;
        }
        const SimDuration saved = actual_est->total - est->total;
        if (saved > best.estimated_savings) {
          best = {"re-place '" + step.name + "' on " + cluster.compute(alt).name() +
                      " (cost model: " + HumanDuration(est->total) + " vs " +
                      HumanDuration(actual_est->total) + " on " +
                      cluster.compute(actual).name() + ")",
                  saved};
        }
      }
      if (best.estimated_savings.ns > 0) {
        out.push_back(std::move(best));
      }
    }
  }

  std::stable_sort(out.begin(), out.end(), [](const WhatIf& a, const WhatIf& b) {
    return a.estimated_savings > b.estimated_savings;
  });
  if (out.size() > max_items) {
    out.resize(max_items);
  }
  return out;
}

std::string RenderJobDoctor(const JobProfile& profile, const std::vector<WhatIf>& what_ifs) {
  std::string out = "== job doctor: " + profile.name + " (job #" +
                    std::to_string(profile.job) + ") ==========================\n";
  if (profile.dropped_events > 0) {
    out += "WARNING: " + WithThousands(profile.dropped_events) +
           " spans dropped — profile incomplete\n";
  }
  out += "status          " + profile.status + "\n";
  out += "makespan        " + HumanDuration(profile.makespan) + "\n";
  std::size_t executed = 0;
  for (const TaskNode& t : profile.tasks) {
    executed += t.has_span ? 1 : 0;
  }
  out += "tasks executed  " + std::to_string(executed) + " of " +
         std::to_string(profile.expected_tasks) + "\n";

  out += "critical path   ";
  for (std::size_t i = 0; i < profile.critical_path.size(); ++i) {
    out += (i == 0 ? "" : " -> ") + profile.critical_path[i].name;
  }
  out += "  (" + std::to_string(profile.critical_path.size()) + " of " +
         std::to_string(profile.expected_tasks) + " tasks)\n\n";

  const Attribution& a = profile.attribution;
  out += "where the makespan went (buckets sum exactly to makespan):\n";
  TextTable buckets({"Bucket", "Time", "Share"});
  buckets.AddRow({"compute", HumanDuration(a.compute), PercentCell(a.compute, profile.makespan)});
  buckets.AddRow(
      {"transfer", HumanDuration(a.transfer), PercentCell(a.transfer, profile.makespan)});
  buckets.AddRow(
      {"queue-wait", HumanDuration(a.queue), PercentCell(a.queue, profile.makespan)});
  buckets.AddRow({"stall", HumanDuration(a.stall), PercentCell(a.stall, profile.makespan)});
  buckets.AddRow({"checkpoint", HumanDuration(a.checkpoint),
                  PercentCell(a.checkpoint, profile.makespan)});
  buckets.AddRow({"unattributed", HumanDuration(a.unattributed),
                  PercentCell(a.unattributed, profile.makespan)});
  out += buckets.Render();

  // Rank every (bucket, critical task) contribution; the top three are "the
  // reasons this job is slow".
  struct Reason {
    std::string text;
    SimDuration cost;
  };
  std::vector<Reason> reasons;
  for (const CriticalStep& step : profile.critical_path) {
    if (step.compute.ns > 0) {
      reasons.push_back({"compute in '" + step.name + "'", step.compute});
    }
    if (step.transfer_in.ns > 0) {
      reasons.push_back({"handover copy into '" + step.name + "'", step.transfer_in});
    }
    if (step.queue.ns > 0) {
      reasons.push_back({"queue-wait before '" + step.name + "'", step.queue});
    }
    if (step.stall.ns > 0) {
      reasons.push_back({"retry/re-placement stall before '" + step.name + "'", step.stall});
    }
    if (step.checkpoint.ns > 0) {
      reasons.push_back({"checkpoint I/O in '" + step.name + "'", step.checkpoint});
    }
  }
  if (a.unattributed.ns > 0) {
    reasons.push_back({"unattributed (failed tasks / truncated trace)", a.unattributed});
  }
  std::stable_sort(reasons.begin(), reasons.end(),
                   [](const Reason& x, const Reason& y) { return x.cost > y.cost; });

  out += "\ntop " + std::to_string(std::min<std::size_t>(3, reasons.size())) +
         " reasons this job is slow:\n";
  for (std::size_t i = 0; i < reasons.size() && i < 3; ++i) {
    out += "  " + std::to_string(i + 1) + ". " + reasons[i].text + " — " +
           HumanDuration(reasons[i].cost) + " (" +
           FormatDouble(Percent(reasons[i].cost, profile.makespan), 1) +
           "% of makespan)\n";
  }

  if (!what_ifs.empty()) {
    out += "\nwhat-if (largest predicted savings first):\n";
    for (std::size_t i = 0; i < what_ifs.size(); ++i) {
      out += "  " + std::to_string(i + 1) + ". " + what_ifs[i].description +
             " — saves up to " + HumanDuration(what_ifs[i].estimated_savings) + "\n";
    }
  }
  return out;
}

std::string ExportJobProfileJson(const JobProfile& profile) {
  const Attribution& a = profile.attribution;
  std::string json = "{\"job\":" + std::to_string(profile.job) +
                     ",\"name\":" + JsonQuote(profile.name) +
                     ",\"status\":" + JsonQuote(profile.status) +
                     ",\"complete\":" + (profile.complete ? "true" : "false") +
                     ",\"submitted_ns\":" + std::to_string(profile.submitted.ns) +
                     ",\"makespan_ns\":" + std::to_string(profile.makespan.ns) +
                     ",\"dropped_events\":" + std::to_string(profile.dropped_events) +
                     ",\"attribution\":{\"compute_ns\":" + std::to_string(a.compute.ns) +
                     ",\"transfer_ns\":" + std::to_string(a.transfer.ns) +
                     ",\"queue_ns\":" + std::to_string(a.queue.ns) +
                     ",\"stall_ns\":" + std::to_string(a.stall.ns) +
                     ",\"checkpoint_ns\":" + std::to_string(a.checkpoint.ns) +
                     ",\"unattributed_ns\":" + std::to_string(a.unattributed.ns) +
                     ",\"sum_ns\":" + std::to_string(a.Sum().ns) + "}";
  json += ",\"critical_path\":[";
  for (std::size_t i = 0; i < profile.critical_path.size(); ++i) {
    const CriticalStep& s = profile.critical_path[i];
    json += (i == 0 ? "" : ",");
    json += "{\"task\":" + std::to_string(s.task) + ",\"name\":" + JsonQuote(s.name) +
            ",\"transfer_in_ns\":" + std::to_string(s.transfer_in.ns) +
            ",\"stall_ns\":" + std::to_string(s.stall.ns) +
            ",\"queue_ns\":" + std::to_string(s.queue.ns) +
            ",\"compute_ns\":" + std::to_string(s.compute.ns) +
            ",\"checkpoint_ns\":" + std::to_string(s.checkpoint.ns) + "}";
  }
  json += "],\"tasks\":[";
  bool first = true;
  for (const TaskNode& t : profile.tasks) {
    if (!t.has_span) {
      continue;
    }
    json += (first ? "" : ",");
    first = false;
    json += "{\"task\":" + std::to_string(t.task) + ",\"name\":" + JsonQuote(t.name) +
            ",\"device\":" + std::to_string(t.device_track) +
            ",\"arrival_ns\":" + std::to_string(t.arrival.ns) +
            ",\"ready_ns\":" + std::to_string(t.ready.ns) +
            ",\"start_ns\":" + std::to_string(t.start.ns) +
            ",\"finish_ns\":" + std::to_string(t.finish.ns) +
            ",\"duration_ns\":" + std::to_string(t.duration.ns) +
            ",\"checkpoint_ns\":" + std::to_string(t.checkpoint.ns) +
            ",\"handover_ns\":" + std::to_string(t.handover.ns) +
            ",\"attempts\":" + std::to_string(t.attempts) +
            ",\"zero_copy\":" + (t.zero_copy ? "true" : "false") +
            ",\"critical\":" + (t.on_critical_path ? "true" : "false") + "}";
  }
  json += "]}";
  return json;
}

std::string ExportHighlightedTraceJson(const TraceBuffer& tracer, const JobProfile& profile) {
  std::set<std::uint32_t> critical_tasks;
  std::set<std::pair<std::uint32_t, std::uint32_t>> critical_edges;
  for (std::size_t i = 0; i < profile.critical_path.size(); ++i) {
    critical_tasks.insert(profile.critical_path[i].task);
    if (i + 1 < profile.critical_path.size()) {
      critical_edges.insert({profile.critical_path[i].task, profile.critical_path[i + 1].task});
    }
  }
  TraceExportOptions options;
  options.job = profile.job;
  options.process_name = "memflow job " + profile.name;
  options.highlight = [critical_tasks, critical_edges,
                       job = profile.job](const TraceEvent& e) {
    if (e.job != job) {
      return false;
    }
    if (e.type == TraceEventType::kSpan && e.category == "task") {
      return critical_tasks.contains(static_cast<std::uint32_t>(ArgInt(e, "task", -1)));
    }
    if (e.type == TraceEventType::kFlowBegin && e.category == "flow") {
      return critical_edges.contains(
          {static_cast<std::uint32_t>(ArgInt(e, "src", -1)),
           static_cast<std::uint32_t>(ArgInt(e, "dst", -1))});
    }
    return false;
  };
  return ExportTraceJson(tracer, options);
}

std::string RenderPlacementDecision(const rts::PlacementDecision& decision,
                                    const simhw::Cluster& cluster) {
  std::string out = "placement of '" + decision.task_name + "' (policy " +
                    decision.explain.policy + ", est. input " +
                    HumanBytes(decision.explain.input_bytes_estimate) + ", t=" +
                    HumanDuration(SimDuration(decision.at.ns)) +
                    (decision.replan ? ", replan after failure" : "") + ")\n";
  TextTable table({"Device", "Outcome", "Backlog", "Compute", "Memory", "Score", "Why"});
  for (const rts::PlacementCandidate& c : decision.explain.candidates) {
    const bool scored = c.outcome == rts::CandidateOutcome::kChosen ||
                        c.outcome == rts::CandidateOutcome::kRankedLoser;
    table.AddRow({cluster.compute(c.device).name(),
                  std::string(rts::CandidateOutcomeName(c.outcome)),
                  scored ? HumanDuration(SimDuration(static_cast<std::int64_t>(c.backlog_ns)))
                         : "-",
                  scored ? HumanDuration(SimDuration(static_cast<std::int64_t>(c.compute_ns)))
                         : "-",
                  scored ? HumanDuration(SimDuration(static_cast<std::int64_t>(c.memory_ns)))
                         : "-",
                  scored ? HumanDuration(SimDuration(static_cast<std::int64_t>(c.score))) : "-",
                  c.detail});
  }
  return out + table.Render();
}

std::string RenderRegionExplain(const region::RegionPlacementExplain& explain,
                                const simhw::Cluster& cluster) {
  std::string out = "region #" + std::to_string(explain.region.value) + " (" +
                    HumanBytes(explain.size) + ")";
  if (explain.pinned) {
    out += ", pinned";
  } else if (explain.observer.valid()) {
    out += ", observer " + cluster.compute(explain.observer).name();
  }
  if (explain.latency_relaxed) {
    out += ", latency relaxed to " +
           std::string(region::LatencyClassName(explain.effective_latency));
  }
  out += "\n";
  TextTable table({"Device", "Verdict", "Expected cost", "Util", "Score", "Why"});
  for (const region::RegionCandidate& c : explain.candidates) {
    const bool scored = c.verdict == region::DeviceVerdict::kChosen ||
                        c.verdict == region::DeviceVerdict::kRankedLoser;
    table.AddRow(
        {cluster.memory(c.device).name(), std::string(region::DeviceVerdictName(c.verdict)),
         scored ? HumanDuration(SimDuration(static_cast<std::int64_t>(c.expected_cost_ns)))
                : "-",
         scored ? FormatDouble(100.0 * c.utilization, 1) + "%" : "-",
         scored ? HumanDuration(SimDuration(static_cast<std::int64_t>(c.score))) : "-",
         c.detail});
  }
  return out + table.Render();
}

std::string RenderRuntimeHealth(const MetricsSnapshot& snapshot) {
  std::string out = "== runtime health ==\n";

  const auto quantile_row = [&snapshot](TextTable& table, const char* label,
                                        std::string_view family) {
    const FamilySnapshot* f = snapshot.FindFamily(family);
    if (f == nullptr || f->kind != MetricKind::kHistogram) {
      return;
    }
    // An empty histogram has no quantiles; render "-" rather than a bogus 0ns.
    const auto cell = [&f](double p) -> std::string {
      const std::optional<double> q = f->Quantile(p);
      if (!q.has_value()) {
        return "-";
      }
      return HumanDuration(SimDuration(static_cast<std::int64_t>(*q)));
    };
    table.AddRow({label, cell(0.50), cell(0.99), cell(0.999)});
  };
  TextTable latency({"Latency", "p50", "p99", "p999"});
  quantile_row(latency, "task queue wait (virtual)", "rts_task_queue_wait_ns");
  quantile_row(latency, "task duration (virtual)", "rts_task_duration_ns");
  quantile_row(latency, "admission verify (host)", "rts_admission_verify_ns");
  out += latency.Render();

  // Region-lock pressure: contended acquisitions and blocked host time, from
  // the RegionManager's try-lock probes. Split by path since DESIGN.md §8's
  // lock split: "data" rows are the striped per-region locks task bodies
  // take, "control" rows are the manager-wide lock the control thread takes —
  // sustained data-path blocking means the stripe split is not working.
  if (const FamilySnapshot* acq = snapshot.FindFamily("region_lock_acquisitions_total")) {
    const FamilySnapshot* contended = snapshot.FindFamily("region_lock_contended_total");
    const FamilySnapshot* waited = snapshot.FindFamily("region_lock_wait_ns_total");
    TextTable lock({"Region lock", "Acquisitions", "Contended", "Blocked (host)"});
    for (const char* path : {"data", "control"}) {
      for (const char* mode : {"shared", "exclusive"}) {
        const Labels labels = {{"mode", mode}, {"path", path}};
        const SeriesSnapshot* a = acq->Find(labels);
        if (a == nullptr) {
          continue;
        }
        const SeriesSnapshot* c =
            contended != nullptr ? contended->Find(labels) : nullptr;
        const SeriesSnapshot* w = waited != nullptr ? waited->Find(labels) : nullptr;
        lock.AddRow({std::string(path) + "/" + mode, WithThousands(a->counter),
                     WithThousands(c != nullptr ? c->counter : 0),
                     HumanDuration(SimDuration(
                         static_cast<std::int64_t>(w != nullptr ? w->counter : 0)))});
      }
    }
    out += "\n" + lock.Render();
  }

  // Where the control plane itself spends host time (self-profiler gauges).
  if (const FamilySnapshot* phases = snapshot.FindFamily("selfprof_phase_exclusive_ns")) {
    double wall = 0;
    if (const FamilySnapshot* w = snapshot.FindFamily("selfprof_wall_ns")) {
      for (const SeriesSnapshot& s : w->series) {
        wall += s.gauge;
      }
    }
    std::vector<std::pair<std::string, double>> shares;
    for (const SeriesSnapshot& series : phases->series) {
      std::string phase;
      bool control = false;
      for (const auto& [key, value] : series.labels) {
        if (key == "phase") {
          phase = value;
        } else if (key == "scope" && value == "control") {
          control = true;
        }
      }
      if (control && !phase.empty()) {
        shares.emplace_back(std::move(phase), series.gauge);
      }
    }
    std::sort(shares.begin(), shares.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (!shares.empty()) {
      TextTable prof({"Control-plane phase", "Exclusive (host)", "Share"});
      for (const auto& [phase, ns] : shares) {
        prof.AddRow({phase, HumanDuration(SimDuration(static_cast<std::int64_t>(ns))),
                     FormatDouble(100.0 * ns / (wall > 0 ? wall : 1.0), 1) + "%"});
      }
      out += "\n" + prof.Render();
    }
  }

  // Memory-access observability (DESIGN.md §16): working set + pattern mix
  // per scope, from the AccessProfiler gauges published at snapshot ticks.
  if (const FamilySnapshot* wss = snapshot.FindFamily("memaccess_wss_smoothed_bytes")) {
    const FamilySnapshot* window = snapshot.FindFamily("memaccess_wss_window_bytes");
    const FamilySnapshot* unique = snapshot.FindFamily("memaccess_wss_unique_bytes");
    TextTable mem({"Working set", "Smoothed", "Window", "Unique"});
    for (const SeriesSnapshot& series : wss->series) {
      std::string scope;
      for (const auto& [key, value] : series.labels) {
        if (key == "scope") {
          scope = value;
        }
      }
      const auto sibling = [&series](const FamilySnapshot* f) -> double {
        const SeriesSnapshot* s = f != nullptr ? f->Find(series.labels) : nullptr;
        return s != nullptr ? s->gauge : 0.0;
      };
      mem.AddRow({scope, HumanBytes(static_cast<std::uint64_t>(series.gauge)),
                  HumanBytes(static_cast<std::uint64_t>(sibling(window))),
                  HumanBytes(static_cast<std::uint64_t>(sibling(unique)))});
    }
    out += "\n" + mem.Render();
  }
  if (const FamilySnapshot* pattern = snapshot.FindFamily("memaccess_pattern_accesses")) {
    double total = 0;
    for (const SeriesSnapshot& s : pattern->series) {
      total += s.gauge;
    }
    if (total > 0) {
      out += "access pattern mix:";
      for (const SeriesSnapshot& s : pattern->series) {
        for (const auto& [key, value] : s.labels) {
          if (key == "pattern") {
            out += " " + value + " " + FormatDouble(100.0 * s.gauge / total, 1) + "%";
          }
        }
      }
      out += "\n";
    }
  }

  if (const FamilySnapshot* dropped =
          snapshot.FindFamily("trace_buffer_events_dropped_total")) {
    double total = 0;
    for (const SeriesSnapshot& s : dropped->series) {
      total += s.gauge;
    }
    if (total > 0) {
      out += "WARNING: trace ring dropped " +
             WithThousands(static_cast<std::uint64_t>(total)) +
             " events; profiles over it are incomplete\n";
    }
  }
  for (const std::string& name : snapshot.OverflowedFamilies()) {
    out += "WARNING: metric family '" + name +
           "' hit its series cap; data collapsed into {overflow=\"true\"}\n";
  }
  return out;
}

}  // namespace memflow::telemetry::analyze
