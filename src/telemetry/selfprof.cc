// Copyright (c) memflow authors. MIT license.

#include "telemetry/selfprof.h"

#include <algorithm>
#include <functional>

#include "common/hash.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace memflow::telemetry {

namespace {

std::atomic<std::uint64_t> next_profiler_id{1};

}  // namespace

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kDispatch:
      return "dispatch";
    case Phase::kAdmission:
      return "admission";
    case Phase::kEventDrain:
      return "event-drain";
    case Phase::kStage:
      return "stage";
    case Phase::kBatchRun:
      return "batch-run";
    case Phase::kBatchCommit:
      return "batch-commit";
    case Phase::kBody:
      return "body";
    case Phase::kPlacementScore:
      return "placement-score";
    case Phase::kAdmissionVerify:
      return "admission-verify";
    case Phase::kCheckpointEncode:
      return "checkpoint-encode";
    case Phase::kCheckpointRestore:
      return "checkpoint-restore";
    case Phase::kLockWaitShared:
      return "lock-wait-shared";
    case Phase::kLockWaitExclusive:
      return "lock-wait-exclusive";
  }
  return "?";
}

bool PhaseCountDeterministic(Phase phase) {
  // Contention is a host-scheduling accident; everything else fires once per
  // deterministic schedule step (submit, event, stage, body, batch, ...).
  return phase != Phase::kLockWaitShared && phase != Phase::kLockWaitExclusive;
}

SelfProfiler::SelfProfiler(bool enabled)
    : enabled_(enabled),
      id_(next_profiler_id.fetch_add(1, std::memory_order_relaxed)) {}

SelfProfiler::ThreadSlot& SelfProfiler::Slot() {
  static thread_local ThreadSlot slot;
  return slot;
}

SelfProfiler::Node* SelfProfiler::ChildOf(Node* base, Phase phase) {
  const int index = static_cast<int>(phase);
  Node* child = base->children[index].load(std::memory_order_acquire);
  if (child != nullptr) {
    return child;
  }
  std::lock_guard<std::mutex> lock(mu_);
  child = base->children[index].load(std::memory_order_relaxed);
  if (child == nullptr) {
    nodes_.emplace_back();
    child = &nodes_.back();
    child->phase = phase;
    child->parent = base;
    base->children[index].store(child, std::memory_order_release);
  }
  return child;
}

SelfProfiler::Node* SelfProfiler::Enter(Phase phase) {
  ThreadSlot& slot = Slot();
  if (slot.owner != id_) {
    slot.owner = id_;
    slot.current = nullptr;
  }
  Node* base = slot.current;
  if (base == nullptr) {
    // No enclosing scope on this thread: control-plane roots start the
    // control tree; anything else is a worker-thread stack.
    const bool control_root = phase == Phase::kDispatch || phase == Phase::kAdmission;
    base = control_root ? &control_root_ : &workers_root_;
  }
  Node* node = ChildOf(base, phase);
  slot.current = node;
  return node;
}

void SelfProfiler::Exit(Node* node, Node* prev, std::int64_t elapsed_ns) {
  node->ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  node->calls.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot& slot = Slot();
  if (slot.owner == id_) {
    slot.current = prev;
  }
}

void SelfProfiler::Charge(Phase phase, std::int64_t ns) {
  if (!enabled()) {
    return;
  }
  Node* prev = Slot().current;
  Node* node = Enter(phase);
  Exit(node, prev, ns);
}

SelfProfiler::Node* PhaseTimer::CurrentOf(const SelfProfiler* profiler) {
  SelfProfiler::ThreadSlot& slot = SelfProfiler::Slot();
  return slot.owner == profiler->id_ ? slot.current : nullptr;
}

namespace {

// Child-inclusive sums and per-phase aggregation over one tree. Children are
// read with acquire loads; accumulators with relaxed loads (exact only while
// no scope is mid-flight, per the header contract).
struct TreeAgg {
  std::array<std::uint64_t, kNumPhases> calls{};
  std::array<std::int64_t, kNumPhases> inclusive{};
  std::array<std::int64_t, kNumPhases> exclusive{};
  std::int64_t root_inclusive = 0;  // summed over top-level nodes
};

}  // namespace

SelfProfile SelfProfiler::Report(std::int64_t measured_wall_ns) const {
  const auto aggregate = [](const Node& root) {
    TreeAgg agg;
    // Manual DFS; the tree is tiny (bounded by distinct stacks).
    std::function<std::int64_t(const Node&)> walk =
        [&](const Node& node) -> std::int64_t {
      std::int64_t children_ns = 0;
      for (const auto& slot : node.children) {
        const Node* child = slot.load(std::memory_order_acquire);
        if (child != nullptr) {
          children_ns += walk(*child);
        }
      }
      const std::int64_t inc = node.ns.load(std::memory_order_relaxed);
      const int index = static_cast<int>(node.phase);
      agg.calls[index] += node.calls.load(std::memory_order_relaxed);
      agg.inclusive[index] += inc;
      agg.exclusive[index] += inc - children_ns;
      return inc;
    };
    for (const auto& slot : root.children) {
      const Node* child = slot.load(std::memory_order_acquire);
      if (child != nullptr) {
        agg.root_inclusive += walk(*child);
      }
    }
    return agg;
  };

  const TreeAgg control = aggregate(control_root_);
  const TreeAgg workers = aggregate(workers_root_);

  SelfProfile profile;
  profile.workers_ns = workers.root_inclusive;
  std::int64_t exclusive_sum = 0;
  for (int i = 0; i < kNumPhases; ++i) {
    exclusive_sum += control.exclusive[i];
    // The control tree reports every phase, zero-call ones included, so
    // exporters (bench JSON, PublishTo) emit a complete per-phase series
    // whose exclusives telescope to the wall. The worker tree stays sparse:
    // it is informational overlap, not part of the accounting identity.
    profile.phases.push_back({static_cast<Phase>(i), control.calls[i],
                              control.inclusive[i], control.exclusive[i]});
    if (workers.calls[i] > 0) {
      profile.worker_phases.push_back({static_cast<Phase>(i), workers.calls[i],
                                       workers.inclusive[i], workers.exclusive[i]});
    }
  }
  profile.wall_ns = measured_wall_ns > 0 ? measured_wall_ns : control.root_inclusive;
  profile.residual_ns = profile.wall_ns - exclusive_sum;
  return profile;
}

std::string SelfProfile::Render() const {
  TextTable table({"Phase", "Calls", "Inclusive", "Exclusive", "Share"});
  const double wall = wall_ns > 0 ? static_cast<double>(wall_ns) : 1.0;
  for (const PhaseStat& stat : phases) {
    if (stat.calls == 0 && stat.inclusive_ns == 0) {
      continue;  // every phase is reported; only render the active ones
    }
    table.AddRow({std::string(PhaseName(stat.phase)), WithThousands(stat.calls),
                  HumanDuration(SimDuration::Nanos(stat.inclusive_ns)),
                  HumanDuration(SimDuration::Nanos(stat.exclusive_ns)),
                  FormatDouble(100.0 * static_cast<double>(stat.exclusive_ns) / wall, 1) +
                      "%"});
  }
  table.AddRow({"(residual)", "-", "-", HumanDuration(SimDuration::Nanos(residual_ns)),
                FormatDouble(100.0 * static_cast<double>(residual_ns) / wall, 1) + "%"});
  std::string out = "== control-plane profile (wall " +
                    HumanDuration(SimDuration::Nanos(wall_ns)) + ") ==\n" + table.Render();
  if (!worker_phases.empty()) {
    TextTable wt({"Worker-side phase", "Calls", "Inclusive", "Exclusive"});
    for (const PhaseStat& stat : worker_phases) {
      wt.AddRow({std::string(PhaseName(stat.phase)), WithThousands(stat.calls),
                 HumanDuration(SimDuration::Nanos(stat.inclusive_ns)),
                 HumanDuration(SimDuration::Nanos(stat.exclusive_ns))});
    }
    out += "\nworker-thread time (overlaps the wall above): " +
           HumanDuration(SimDuration::Nanos(workers_ns)) + "\n" + wt.Render();
  }
  return out;
}

std::string SelfProfiler::CollapsedStacks() const {
  std::string out;
  std::function<void(const Node&, const std::string&)> walk =
      [&](const Node& node, const std::string& prefix) {
        const std::string frame =
            prefix.empty() ? std::string(PhaseName(node.phase))
                           : prefix + ";" + std::string(PhaseName(node.phase));
        std::int64_t children_ns = 0;
        for (const auto& slot : node.children) {
          const Node* child = slot.load(std::memory_order_acquire);
          if (child != nullptr) {
            children_ns += child->ns.load(std::memory_order_relaxed);
            walk(*child, frame);
          }
        }
        const std::int64_t exclusive =
            node.ns.load(std::memory_order_relaxed) - children_ns;
        if (exclusive > 0) {
          out += frame + " " + std::to_string(exclusive) + "\n";
        }
      };
  for (const auto& slot : control_root_.children) {
    const Node* child = slot.load(std::memory_order_acquire);
    if (child != nullptr) {
      walk(*child, "");
    }
  }
  for (const auto& slot : workers_root_.children) {
    const Node* child = slot.load(std::memory_order_acquire);
    if (child != nullptr) {
      walk(*child, "workers");
    }
  }
  return out;
}

std::uint64_t SelfProfiler::Fingerprint() const {
  // Sum calls per phase across both trees (the control/workers split of body
  // scopes depends on which thread happened to run each body; the totals do
  // not), then fold only the schedule-deterministic phases.
  std::array<std::uint64_t, kNumPhases> calls{};
  std::function<void(const Node&)> walk = [&](const Node& node) {
    calls[static_cast<int>(node.phase)] += node.calls.load(std::memory_order_relaxed);
    for (const auto& slot : node.children) {
      const Node* child = slot.load(std::memory_order_acquire);
      if (child != nullptr) {
        walk(*child);
      }
    }
  };
  for (const Node* root : {&control_root_, &workers_root_}) {
    for (const auto& slot : root->children) {
      const Node* child = slot.load(std::memory_order_acquire);
      if (child != nullptr) {
        walk(*child);
      }
    }
  }
  std::uint64_t h = 0x5e1f9406ULL;
  for (int i = 0; i < kNumPhases; ++i) {
    if (!PhaseCountDeterministic(static_cast<Phase>(i))) {
      continue;
    }
    h = HashCombine(h, static_cast<std::uint64_t>(i));
    h = HashCombine(h, calls[i]);
  }
  return h;
}

void SelfProfiler::PublishTo(Registry& registry) const {
  const SelfProfile profile = Report();
  const auto publish = [&registry](const std::vector<PhaseStat>& stats,
                                   const char* scope) {
    for (const PhaseStat& stat : stats) {
      const Labels labels = {{"phase", std::string(PhaseName(stat.phase))},
                             {"scope", scope}};
      registry
          .GetGauge("selfprof_phase_inclusive_ns",
                    "Control-plane self-profiler: wall ns inside a phase, children "
                    "included",
                    labels)
          ->Set(static_cast<double>(stat.inclusive_ns));
      registry
          .GetGauge("selfprof_phase_exclusive_ns",
                    "Control-plane self-profiler: wall ns inside a phase, children "
                    "excluded",
                    labels)
          ->Set(static_cast<double>(stat.exclusive_ns));
      registry
          .GetGauge("selfprof_phase_calls",
                    "Control-plane self-profiler: scope entries per phase", labels)
          ->Set(static_cast<double>(stat.calls));
    }
  };
  publish(profile.phases, "control");
  publish(profile.worker_phases, "workers");
  registry
      .GetGauge("selfprof_wall_ns",
                "Control-plane self-profiler: profiled dispatch+admission wall ns")
      ->Set(static_cast<double>(profile.wall_ns));
}

}  // namespace memflow::telemetry
