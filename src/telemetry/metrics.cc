// Copyright (c) memflow authors. MIT license.

#include "telemetry/metrics.h"

#include <algorithm>

#include "common/assert.h"
#include "common/json.h"

namespace memflow::telemetry {

namespace {

// Canonical map key for a label set: sorted `k=v` pairs joined by 0x1f.
std::string CanonicalKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\x1f';
  }
  return key;
}

// Prometheus label value escaping: backslash, double quote, newline.
std::string PromEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '"') {
      out += "\\\"";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

std::string PromLabels(const Labels& labels, std::string_view extra_key = {},
                       std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += k;
    out += "=\"";
    out += PromEscape(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) {
      out += ',';
    }
    out += extra_key;
    out += "=\"";
    out += PromEscape(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

// Trims trailing zeros so bucket bounds read "1024" / "1.5", not "1024.000000".
std::string PromNumber(double v) { return JsonNumber(v); }

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(const HistogramSpec& spec)
    : buckets_(static_cast<std::size_t>(std::max(1, spec.buckets)) + 1) {
  MEMFLOW_CHECK(spec.first_bound > 0 && spec.growth > 1.0);
  bounds_.reserve(static_cast<std::size_t>(std::max(1, spec.buckets)));
  double bound = spec.first_bound;
  for (int i = 0; i < std::max(1, spec.buckets); ++i) {
    bounds_.push_back(bound);
    bound *= spec.growth;
  }
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound is >= v (`le` semantics); +Inf otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

std::optional<double> Histogram::Quantile(double p) const {
  if (count() == 0) {
    return std::nullopt;
  }
  return HistogramQuantile(bounds_, counts(), p);
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& bucket_counts, double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) {
    total += c;
  }
  if (total == 0 || bounds.empty()) {
    return 0.0;
  }
  p = std::min(1.0, std::max(0.0, p));
  const double target = p * static_cast<double>(total);
  double cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (cumulative + in_bucket < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: no finite upper edge to interpolate toward; saturate at
      // the largest finite bound (Prometheus does the same).
      return bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction = (target - cumulative) / in_bucket;
    return lower + fraction * (upper - lower);
  }
  return bounds.back();
}

const SeriesSnapshot* FamilySnapshot::Find(const Labels& labels) const {
  Labels canonical = labels;
  std::sort(canonical.begin(), canonical.end());
  for (const SeriesSnapshot& s : series) {
    if (s.labels == canonical) {
      return &s;
    }
  }
  return nullptr;
}

std::optional<double> FamilySnapshot::Quantile(double p) const {
  if (kind != MetricKind::kHistogram) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> merged;
  std::uint64_t mass = 0;
  for (const SeriesSnapshot& s : series) {
    if (merged.size() < s.bucket_counts.size()) {
      merged.resize(s.bucket_counts.size(), 0);
    }
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
      merged[i] += s.bucket_counts[i];
      mass += s.bucket_counts[i];
    }
  }
  if (mass == 0) {
    return std::nullopt;  // no samples: nothing to interpolate off
  }
  return HistogramQuantile(bounds, merged, p);
}

const FamilySnapshot* MetricsSnapshot::FindFamily(std::string_view name) const {
  for (const FamilySnapshot& family : families) {
    if (family.name == name) {
      return &family;
    }
  }
  return nullptr;
}

std::vector<std::string> MetricsSnapshot::OverflowedFamilies() const {
  const Labels overflow = {{"overflow", "true"}};
  std::vector<std::string> names;
  for (const FamilySnapshot& family : families) {
    for (const SeriesSnapshot& s : family.series) {
      if (s.labels == overflow) {
        names.push_back(family.name);
        break;
      }
    }
  }
  return names;
}

Registry::Registry(std::size_t max_series_per_family) : max_series_(max_series_per_family) {
  MEMFLOW_CHECK(max_series_ >= 1);
}

Registry::Series* Registry::Intern(std::string_view name, std::string_view help,
                                   MetricKind kind, const HistogramSpec& spec,
                                   Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = families_.find(name);
  if (fit == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    family.spec = spec;
    fit = families_.emplace(std::string(name), std::move(family)).first;
  }
  Family& family = fit->second;
  MEMFLOW_CHECK_MSG(family.kind == kind, "metric family re-registered with another kind");

  std::string key = CanonicalKey(labels);
  auto sit = family.series.find(key);
  if (sit == family.series.end()) {
    if (family.series.size() >= max_series_) {
      // Cardinality cap: collapse into the shared overflow series.
      labels = Labels{{"overflow", "true"}};
      key = CanonicalKey(labels);
      sit = family.series.find(key);
    }
    if (sit == family.series.end()) {
      Series series;
      series.labels = std::move(labels);
      switch (kind) {
        case MetricKind::kCounter:
          series.counter = std::make_unique<Counter>();
          break;
        case MetricKind::kGauge:
          series.gauge = std::make_unique<Gauge>();
          break;
        case MetricKind::kHistogram:
          series.histogram = std::make_unique<Histogram>(family.spec);
          break;
      }
      sit = family.series.emplace(std::move(key), std::move(series)).first;
    }
  }
  return &sit->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help, Labels labels) {
  return Intern(name, help, MetricKind::kCounter, {}, std::move(labels))->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help, Labels labels) {
  return Intern(name, help, MetricKind::kGauge, {}, std::move(labels))->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view help,
                                  const HistogramSpec& spec, Labels labels) {
  return Intern(name, help, MetricKind::kHistogram, spec, std::move(labels))
      ->histogram.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.kind = family.kind;
    for (const auto& [key, series] : family.series) {
      (void)key;
      SeriesSnapshot ss;
      ss.labels = series.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.counter = series.counter->value();
          break;
        case MetricKind::kGauge:
          ss.gauge = series.gauge->value();
          break;
        case MetricKind::kHistogram:
          if (fs.bounds.empty()) {
            fs.bounds = series.histogram->bounds();
          }
          ss.bucket_counts = series.histogram->counts();
          ss.sum = series.histogram->sum();
          ss.count = series.histogram->count();
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    snapshot.families.push_back(std::move(fs));
  }
  return snapshot;
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const FamilySnapshot& family : families) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + std::string(MetricKindName(family.kind)) + "\n";
    for (const SeriesSnapshot& series : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter:
          out += family.name + PromLabels(series.labels) + " " +
                 std::to_string(series.counter) + "\n";
          break;
        case MetricKind::kGauge:
          out += family.name + PromLabels(series.labels) + " " + PromNumber(series.gauge) +
                 "\n";
          break;
        case MetricKind::kHistogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < series.bucket_counts.size(); ++i) {
            cumulative += series.bucket_counts[i];
            const std::string le =
                i < family.bounds.size() ? PromNumber(family.bounds[i]) : "+Inf";
            out += family.name + "_bucket" + PromLabels(series.labels, "le", le) + " " +
                   std::to_string(cumulative) + "\n";
          }
          out += family.name + "_sum" + PromLabels(series.labels) + " " +
                 PromNumber(series.sum) + "\n";
          out += family.name + "_count" + PromLabels(series.labels) + " " +
                 std::to_string(series.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"families\":[";
  bool first_family = true;
  for (const FamilySnapshot& family : families) {
    if (!first_family) {
      out += ',';
    }
    first_family = false;
    out += "{\"name\":" + JsonQuote(family.name) + ",\"kind\":\"" +
           std::string(MetricKindName(family.kind)) + "\",\"help\":" +
           JsonQuote(family.help);
    if (family.kind == MetricKind::kHistogram) {
      out += ",\"bounds\":[";
      for (std::size_t i = 0; i < family.bounds.size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        out += JsonNumber(family.bounds[i]);
      }
      out += ']';
    }
    out += ",\"series\":[";
    bool first_series = true;
    for (const SeriesSnapshot& series : family.series) {
      if (!first_series) {
        out += ',';
      }
      first_series = false;
      out += "{\"labels\":{";
      for (std::size_t i = 0; i < series.labels.size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        out += JsonQuote(series.labels[i].first) + ":" + JsonQuote(series.labels[i].second);
      }
      out += '}';
      switch (family.kind) {
        case MetricKind::kCounter:
          out += ",\"value\":" + std::to_string(series.counter);
          break;
        case MetricKind::kGauge:
          out += ",\"value\":" + JsonNumber(series.gauge);
          break;
        case MetricKind::kHistogram: {
          out += ",\"buckets\":[";
          for (std::size_t i = 0; i < series.bucket_counts.size(); ++i) {
            if (i != 0) {
              out += ',';
            }
            out += std::to_string(series.bucket_counts[i]);
          }
          out += "],\"sum\":" + JsonNumber(series.sum) +
                 ",\"count\":" + std::to_string(series.count);
          break;
        }
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

MetricsSnapshot Snapshot() { return DefaultRegistry().Snapshot(); }

}  // namespace memflow::telemetry
