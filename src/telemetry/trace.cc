// Copyright (c) memflow authors. MIT license.

#include "telemetry/trace.h"

#include "common/assert.h"

namespace memflow::telemetry {

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  MEMFLOW_CHECK(capacity_ >= 1);
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceBuffer::Emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    dropped_by_track_[ring_[head_].track]++;
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

void TraceBuffer::SetTrackName(std::uint64_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_[track] = std::move(name);
}

std::map<std::uint64_t, std::string> TraceBuffer::TrackNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return track_names_;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  return total > capacity_ ? total - capacity_ : 0;
}

std::map<std::uint64_t, std::uint64_t> TraceBuffer::DroppedByTrack() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_by_track_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_.store(0, std::memory_order_relaxed);
  dropped_by_track_.clear();
}

TraceBuffer& DefaultTracer() {
  static TraceBuffer* tracer = new TraceBuffer();
  return *tracer;
}

}  // namespace memflow::telemetry
