// Copyright (c) memflow authors. MIT license.

#include "telemetry/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cstddef>

#include "common/json.h"
#include "common/strings.h"
#include "common/table.h"

namespace memflow::telemetry {

namespace {

// Scalar value of one series for delta/rate purposes: counters and histogram
// counts difference monotonically; gauges difference as signed drift.
double ScalarOf(const FamilySnapshot& family, const SeriesSnapshot& series) {
  switch (family.kind) {
    case MetricKind::kCounter:
      return static_cast<double>(series.counter);
    case MetricKind::kGauge:
      return series.gauge;
    case MetricKind::kHistogram:
      return static_cast<double>(series.count);
  }
  return 0;
}

// Sums ScalarOf over the selected series (all when `labels` empty, else the
// exact series). Returns false when the selection matches nothing.
bool SumSelected(const FamilySnapshot& family, const Labels& labels, double* out) {
  if (labels.empty()) {
    double total = 0;
    for (const SeriesSnapshot& series : family.series) {
      total += ScalarOf(family, series);
    }
    *out = total;
    return true;
  }
  const SeriesSnapshot* series = family.Find(labels);
  if (series == nullptr) {
    return false;
  }
  *out = ScalarOf(family, *series);
  return true;
}

// Element-wise bucket sum over the selected series of a histogram family.
// Returns an empty vector when the selection matches nothing.
std::vector<std::uint64_t> BucketsSelected(const FamilySnapshot& family,
                                           const Labels& labels) {
  std::vector<std::uint64_t> merged;
  const auto add = [&merged](const std::vector<std::uint64_t>& counts) {
    if (merged.size() < counts.size()) {
      merged.resize(counts.size(), 0);
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
      merged[i] += counts[i];
    }
  };
  if (labels.empty()) {
    for (const SeriesSnapshot& series : family.series) {
      add(series.bucket_counts);
    }
  } else if (const SeriesSnapshot* series = family.Find(labels)) {
    add(series->bucket_counts);
  }
  return merged;
}

std::int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SnapshotRing::SnapshotRing(const Registry* registry, std::size_t capacity)
    : registry_(registry), capacity_(capacity == 0 ? 1 : capacity) {}

void SnapshotRing::AddPreTickHook(std::function<void()> hook) {
  hooks_.push_back(std::move(hook));
}

void SnapshotRing::Tick(SimTime now) {
  for (const auto& hook : hooks_) {
    hook();
  }
  TimedSnapshot entry;
  entry.sim_time = now;
  entry.wall_ns = WallNowNs();
  entry.metrics = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
  }
  ++total_ticks_;
}

std::size_t SnapshotRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t SnapshotRing::total_ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ticks_;
}

std::vector<TimedSnapshot> SnapshotRing::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::optional<TimedSnapshot> SnapshotRing::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) {
    return std::nullopt;
  }
  return ring_.back();
}

bool SnapshotRing::WindowLocked(SimDuration window, const TimedSnapshot** newest,
                                const TimedSnapshot** baseline) const {
  if (ring_.size() < 2) {
    return false;
  }
  *newest = &ring_.back();
  const SimTime cutoff = (*newest)->sim_time + SimDuration::Nanos(-window.ns);
  // Newest entry at least `window` old; the oldest retained entry when the
  // ring's history is shorter than the window.
  *baseline = &ring_.front();
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->sim_time <= cutoff) {
      *baseline = &*it;
      break;
    }
  }
  return *baseline != *newest;
}

std::optional<double> SnapshotRing::DeltaOver(std::string_view family,
                                              SimDuration window,
                                              const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimedSnapshot* newest = nullptr;
  const TimedSnapshot* baseline = nullptr;
  if (!WindowLocked(window, &newest, &baseline)) {
    return std::nullopt;
  }
  const FamilySnapshot* now_family = newest->metrics.FindFamily(family);
  if (now_family == nullptr) {
    return std::nullopt;
  }
  double now_value = 0;
  if (!SumSelected(*now_family, labels, &now_value)) {
    return std::nullopt;
  }
  // A family (or series) absent at the baseline was created inside the
  // window: everything it counted happened in-window, baseline 0.
  double then_value = 0;
  if (const FamilySnapshot* then_family = baseline->metrics.FindFamily(family)) {
    SumSelected(*then_family, labels, &then_value);
  }
  return now_value - then_value;
}

std::optional<double> SnapshotRing::RateOver(std::string_view family,
                                             SimDuration window,
                                             const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimedSnapshot* newest = nullptr;
  const TimedSnapshot* baseline = nullptr;
  if (!WindowLocked(window, &newest, &baseline)) {
    return std::nullopt;
  }
  const SimDuration elapsed = newest->sim_time - baseline->sim_time;
  if (elapsed.ns <= 0) {
    return std::nullopt;
  }
  const FamilySnapshot* now_family = newest->metrics.FindFamily(family);
  if (now_family == nullptr) {
    return std::nullopt;
  }
  double now_value = 0;
  if (!SumSelected(*now_family, labels, &now_value)) {
    return std::nullopt;
  }
  double then_value = 0;
  if (const FamilySnapshot* then_family = baseline->metrics.FindFamily(family)) {
    SumSelected(*then_family, labels, &then_value);
  }
  return (now_value - then_value) / elapsed.ToSeconds();
}

std::optional<double> SnapshotRing::QuantileOver(std::string_view family,
                                                 SimDuration window, double p,
                                                 const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimedSnapshot* newest = nullptr;
  const TimedSnapshot* baseline = nullptr;
  if (!WindowLocked(window, &newest, &baseline)) {
    return std::nullopt;
  }
  const FamilySnapshot* now_family = newest->metrics.FindFamily(family);
  if (now_family == nullptr || now_family->kind != MetricKind::kHistogram) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> now_buckets = BucketsSelected(*now_family, labels);
  if (now_buckets.empty()) {
    return std::nullopt;
  }
  if (const FamilySnapshot* then_family = baseline->metrics.FindFamily(family)) {
    const std::vector<std::uint64_t> then_buckets =
        BucketsSelected(*then_family, labels);
    for (std::size_t i = 0; i < then_buckets.size() && i < now_buckets.size(); ++i) {
      // Counts are monotonic per bucket; min() guards a registry Clear()
      // between ticks from underflowing.
      now_buckets[i] -= std::min(then_buckets[i], now_buckets[i]);
    }
  }
  std::uint64_t mass = 0;
  for (const std::uint64_t c : now_buckets) {
    mass += c;
  }
  if (mass == 0) {
    return std::nullopt;  // no samples landed inside the window
  }
  return HistogramQuantile(now_family->bounds, now_buckets, p);
}

// --- dashboard ------------------------------------------------------------------

namespace {

double GaugeSum(const MetricsSnapshot& snapshot, std::string_view family_name) {
  const FamilySnapshot* family = snapshot.FindFamily(family_name);
  if (family == nullptr) {
    return 0;
  }
  double total = 0;
  for (const SeriesSnapshot& series : family->series) {
    total += ScalarOf(*family, series);
  }
  return total;
}

QuantileTriple QuantilesOver(const SnapshotRing& ring, std::string_view family,
                             SimDuration window) {
  QuantileTriple q;
  q.p50 = ring.QuantileOver(family, window, 0.50).value_or(0);
  q.p99 = ring.QuantileOver(family, window, 0.99).value_or(0);
  q.p999 = ring.QuantileOver(family, window, 0.999).value_or(0);
  return q;
}

std::string LabelsSuffix(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

}  // namespace

DashboardStats ComputeDashboard(const SnapshotRing& ring, SimDuration window) {
  DashboardStats stats;
  const std::optional<TimedSnapshot> latest = ring.Latest();
  if (!latest.has_value()) {
    stats.warnings.push_back("no snapshots yet (ring never ticked)");
    return stats;
  }
  stats.sim_now = latest->sim_time;
  stats.wall_ns = latest->wall_ns;
  stats.ticks = ring.total_ticks();

  stats.jobs_per_sec = ring.RateOver("rts_jobs_total", window).value_or(0);
  stats.tasks_per_sec =
      ring.RateOver("rts_tasks_executed_total", window).value_or(0);
  stats.queue_wait_ns = QuantilesOver(ring, "rts_task_queue_wait_ns", window);
  stats.task_duration_ns = QuantilesOver(ring, "rts_task_duration_ns", window);

  if (const FamilySnapshot* depths =
          latest->metrics.FindFamily("rts_device_queue_depth")) {
    for (const SeriesSnapshot& series : depths->series) {
      std::string device = LabelsSuffix(series.labels);
      for (const auto& [key, value] : series.labels) {
        if (key == "device") {
          device = value;
          break;
        }
      }
      stats.queue_depths.emplace_back(std::move(device), series.gauge);
    }
  }

  // Serving rows: one per tenant label of the serving latency family. The
  // rate differences serving_jobs_total{tenant,outcome=completed}; the
  // quantiles difference the tenant's latency histogram over the window.
  if (const FamilySnapshot* served =
          latest->metrics.FindFamily("serving_job_latency_ns")) {
    for (const SeriesSnapshot& series : served->series) {
      for (const auto& [key, value] : series.labels) {
        if (key != "tenant") {
          continue;
        }
        TenantDashboardRow row;
        row.tenant = value;
        row.completed_per_sec =
            ring.RateOver("serving_jobs_total", window,
                          {{"tenant", value}, {"outcome", "completed"}})
                .value_or(0);
        const Labels tenant_only = {{"tenant", value}};
        row.latency_ns.p50 =
            ring.QuantileOver("serving_job_latency_ns", window, 0.50, tenant_only)
                .value_or(0);
        row.latency_ns.p99 =
            ring.QuantileOver("serving_job_latency_ns", window, 0.99, tenant_only)
                .value_or(0);
        row.latency_ns.p999 =
            ring.QuantileOver("serving_job_latency_ns", window, 0.999, tenant_only)
                .value_or(0);
        stats.tenants.push_back(std::move(row));
      }
    }
    std::sort(stats.tenants.begin(), stats.tenants.end(),
              [](const TenantDashboardRow& a, const TenantDashboardRow& b) {
                return a.tenant < b.tenant;
              });
  }

  stats.selfprof_wall_ns = GaugeSum(latest->metrics, "selfprof_wall_ns");
  if (const FamilySnapshot* phases =
          latest->metrics.FindFamily("selfprof_phase_exclusive_ns")) {
    const double wall = stats.selfprof_wall_ns > 0 ? stats.selfprof_wall_ns : 1.0;
    for (const SeriesSnapshot& series : phases->series) {
      std::string phase;
      bool control = false;
      for (const auto& [key, value] : series.labels) {
        if (key == "phase") {
          phase = value;
        } else if (key == "scope" && value == "control") {
          control = true;
        }
      }
      if (control && !phase.empty()) {
        stats.phase_share.emplace_back(std::move(phase), series.gauge / wall);
      }
    }
    std::sort(stats.phase_share.begin(), stats.phase_share.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second : a.first < b.first;
              });
  }

  stats.trace_dropped =
      GaugeSum(latest->metrics, "trace_buffer_events_dropped_total");
  if (stats.trace_dropped > 0) {
    stats.warnings.push_back(
        "trace ring dropped " +
        WithThousands(static_cast<std::uint64_t>(stats.trace_dropped)) +
        " events; raise TraceBuffer capacity or narrow categories");
  }
  stats.overflowed_families = latest->metrics.OverflowedFamilies();
  for (const std::string& name : stats.overflowed_families) {
    stats.warnings.push_back("metric family '" + name +
                             "' hit its series cap; data collapsed into "
                             "{overflow=\"true\"}");
  }
  return stats;
}

std::string RenderDashboard(const DashboardStats& stats) {
  std::string out;
  out += "memflow top — sim " + HumanDuration(stats.sim_now - SimTime()) +
         ", snapshots " + WithThousands(stats.ticks) + "\n";
  out += "  jobs/s " + FormatDouble(stats.jobs_per_sec, 2) + "   tasks/s " +
         FormatDouble(stats.tasks_per_sec, 2) + "\n\n";

  TextTable latency({"Latency (virtual)", "p50", "p99", "p999"});
  const auto row = [](const char* name, const QuantileTriple& q) {
    return std::vector<std::string>{
        name, HumanDuration(SimDuration::Nanos(static_cast<std::int64_t>(q.p50))),
        HumanDuration(SimDuration::Nanos(static_cast<std::int64_t>(q.p99))),
        HumanDuration(SimDuration::Nanos(static_cast<std::int64_t>(q.p999)))};
  };
  latency.AddRow(row("task queue wait", stats.queue_wait_ns));
  latency.AddRow(row("task duration", stats.task_duration_ns));
  out += latency.Render();

  if (!stats.queue_depths.empty()) {
    TextTable depths({"Device queue", "Depth"});
    for (const auto& [device, depth] : stats.queue_depths) {
      depths.AddRow({device, FormatDouble(depth, 0)});
    }
    out += "\n" + depths.Render();
  }

  if (!stats.tenants.empty()) {
    TextTable tenants({"Tenant", "Jobs/s", "p50", "p99", "p999"});
    for (const TenantDashboardRow& t : stats.tenants) {
      tenants.AddRow(
          {t.tenant, FormatDouble(t.completed_per_sec, 2),
           HumanDuration(SimDuration::Nanos(static_cast<std::int64_t>(t.latency_ns.p50))),
           HumanDuration(SimDuration::Nanos(static_cast<std::int64_t>(t.latency_ns.p99))),
           HumanDuration(
               SimDuration::Nanos(static_cast<std::int64_t>(t.latency_ns.p999)))});
    }
    out += "\n" + tenants.Render();
  }

  if (!stats.phase_share.empty()) {
    TextTable phases({"Control-plane phase", "Share"});
    for (const auto& [phase, share] : stats.phase_share) {
      phases.AddRow({phase, FormatDouble(100.0 * share, 1) + "%"});
    }
    out += "\n" + phases.Render();
    out += "control-plane wall " +
           HumanDuration(SimDuration::Nanos(
               static_cast<std::int64_t>(stats.selfprof_wall_ns))) +
           " (host time; shares are exclusive-ns / wall)\n";
  }

  for (const std::string& warning : stats.warnings) {
    out += "WARNING: " + warning + "\n";
  }
  return out;
}

std::string DashboardJson(const DashboardStats& stats) {
  std::string out = "{";
  out += JsonQuote("sim_now_ns") + ":" + JsonNumber(static_cast<double>(stats.sim_now.ns));
  out += "," + JsonQuote("snapshots") + ":" + JsonNumber(static_cast<double>(stats.ticks));
  out += "," + JsonQuote("jobs_per_sec") + ":" + JsonNumber(stats.jobs_per_sec);
  out += "," + JsonQuote("tasks_per_sec") + ":" + JsonNumber(stats.tasks_per_sec);
  const auto triple = [](const QuantileTriple& q) {
    return "{\"p50\":" + JsonNumber(q.p50) + ",\"p99\":" + JsonNumber(q.p99) +
           ",\"p999\":" + JsonNumber(q.p999) + "}";
  };
  out += "," + JsonQuote("queue_wait_ns") + ":" + triple(stats.queue_wait_ns);
  out += "," + JsonQuote("task_duration_ns") + ":" + triple(stats.task_duration_ns);
  out += "," + JsonQuote("queue_depths") + ":{";
  for (std::size_t i = 0; i < stats.queue_depths.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += JsonQuote(stats.queue_depths[i].first) + ":" +
           JsonNumber(stats.queue_depths[i].second);
  }
  out += "}";
  out += "," + JsonQuote("tenants") + ":{";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    const TenantDashboardRow& t = stats.tenants[i];
    out += JsonQuote(t.tenant) + ":{" + JsonQuote("completed_per_sec") + ":" +
           JsonNumber(t.completed_per_sec) + "," + JsonQuote("latency_ns") + ":" +
           triple(t.latency_ns) + "}";
  }
  out += "}";
  out += "," + JsonQuote("selfprof_wall_ns") + ":" + JsonNumber(stats.selfprof_wall_ns);
  out += "," + JsonQuote("phase_share") + ":{";
  for (std::size_t i = 0; i < stats.phase_share.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += JsonQuote(stats.phase_share[i].first) + ":" +
           JsonNumber(stats.phase_share[i].second);
  }
  out += "}";
  out += "," + JsonQuote("trace_dropped") + ":" + JsonNumber(stats.trace_dropped);
  out += "," + JsonQuote("overflowed_families") + ":[";
  for (std::size_t i = 0; i < stats.overflowed_families.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += JsonQuote(stats.overflowed_families[i]);
  }
  out += "]";
  out += "," + JsonQuote("warnings") + ":[";
  for (std::size_t i = 0; i < stats.warnings.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += JsonQuote(stats.warnings[i]);
  }
  out += "]}";
  return out;
}

// --- Perfetto counter tracks ----------------------------------------------------

std::string ExportCounterTracksJson(const SnapshotRing& ring,
                                    const std::vector<std::string>& families) {
  const std::vector<TimedSnapshot> entries = ring.Entries();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& json) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += json;
  };
  emit(std::string("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",") +
       "\"args\":{\"name\":" + JsonQuote("memflow metrics") + "}}");
  for (const TimedSnapshot& entry : entries) {
    const double ts_us = static_cast<double>(entry.sim_time.ns) / 1e3;
    for (const FamilySnapshot& family : entry.metrics.families) {
      if (!families.empty() &&
          std::find(families.begin(), families.end(), family.name) ==
              families.end()) {
        continue;
      }
      for (const SeriesSnapshot& series : family.series) {
        std::string name = family.name;
        if (family.kind == MetricKind::kHistogram) {
          name += "_count";
        }
        name += LabelsSuffix(series.labels);
        emit("{\"ph\":\"C\",\"pid\":1,\"ts\":" + JsonNumber(ts_us) +
             ",\"name\":" + JsonQuote(name) + ",\"args\":{\"value\":" +
             JsonNumber(ScalarOf(family, series)) + "}}");
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

}  // namespace memflow::telemetry
