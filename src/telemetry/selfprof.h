// Copyright (c) memflow authors. MIT license.
//
// Control-plane self-profiler (DESIGN.md §13): where does the *runtime
// itself* spend wall-clock time? The critical-path analyzer
// (telemetry/analyze) attributes a job's virtual-time makespan; this profiler
// attributes the host's real time across the dispatch loop's phases —
// admission verification, placement scoring, event-queue drain, staging, the
// parallel run phase, commit, checkpoint encode, and contended RegionManager
// lock waits — so "the executor is control-path bound" becomes a per-phase
// number instead of a guess.
//
// Design: a calling-context tree (CCT). Each thread tracks its current node;
// entering a phase walks (or lazily creates, under a mutex — once per novel
// stack, never on the steady-state path) the child for that phase and
// accumulates elapsed ns + call counts into relaxed atomics on scope exit.
// Steady state is two steady_clock reads and two relaxed atomic adds per
// scope; a disabled profiler costs one relaxed load per scope.
//
// Scopes opened on the control thread nest under the dispatch/admission
// roots; scopes opened on worker-pool threads (task bodies, checkpoint
// encode inside them, contended lock waits) have no control-plane parent and
// land in a separate "workers" tree — they overlap the dispatch wall clock,
// so counting them inside it would double-book.
//
// Accounting identity: summed over the control tree,
//   exclusive(node) = inclusive(node) - sum(inclusive(children))
// telescopes to wall = sum(inclusive(roots)) — so the per-phase exclusive
// breakdown sums to the profiled control-plane wall time *exactly*, and the
// residual against an externally measured wall is only the unprofiled slack
// (loop glue, report assembly), asserted < 1% in tests and bench artifacts.

#ifndef MEMFLOW_TELEMETRY_SELFPROF_H_
#define MEMFLOW_TELEMETRY_SELFPROF_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace memflow::telemetry {

// Phase taxonomy (DESIGN.md §13). Stable order: the fingerprint and metric
// labels depend on it — append, never reorder.
enum class Phase : int {
  kDispatch = 0,       // one RunToCompletion loop step (control-plane root);
                       // scoped per iteration so snapshot-ring ticks between
                       // steps always see fully flushed counters
  kAdmission,          // Runtime::Submit (control-plane root)
  kEventDrain,         // one EventQueue::RunNext (event callback included)
  kStage,              // StageDispatch: claim slot, build TaskContext
  kBatchRun,           // parallel run phase of ExecuteBatch
  kBatchCommit,        // serial commit phase of ExecuteBatch
  kBody,               // one task body (control thread or worker)
  kPlacementScore,     // PlacementPolicy::Place / CostModel scoring
  kAdmissionVerify,    // analysis::Verify at admission
  kCheckpointEncode,   // checkpoint save: serialize + persist an output
  kCheckpointRestore,  // checkpoint restore: rebuild an output
  kLockWaitShared,     // contended RegionManager shared-lock acquisition
  kLockWaitExclusive,  // contended RegionManager exclusive-lock acquisition
};
inline constexpr int kNumPhases = 13;

// Kebab-case phase name, used for flamegraph frames and metric labels.
std::string_view PhaseName(Phase phase);

// Phases whose *call counts* are functions of the deterministic schedule
// alone (everything except contended-lock probes, which count host-timing
// accidents). Only these feed Fingerprint().
bool PhaseCountDeterministic(Phase phase);

// Aggregated per-phase line of a profile report.
struct PhaseStat {
  Phase phase = Phase::kDispatch;
  std::uint64_t calls = 0;
  std::int64_t inclusive_ns = 0;  // time inside the phase, children included
  std::int64_t exclusive_ns = 0;  // inclusive minus children
};

struct SelfProfile {
  // Profiled control-plane wall: the externally measured wall when one was
  // passed to Report(), otherwise the sum of root-scope inclusive time.
  std::int64_t wall_ns = 0;
  // wall_ns minus the summed exclusive breakdown: unprofiled slack. Zero by
  // construction when no external wall was given.
  std::int64_t residual_ns = 0;
  // Worker-thread time (bodies and their nested scopes); overlaps the
  // control-plane wall, reported separately.
  std::int64_t workers_ns = 0;
  std::vector<PhaseStat> phases;          // control tree, by phase, enum order
  std::vector<PhaseStat> worker_phases;   // workers tree, by phase, enum order

  // Text table: phase, calls, inclusive, exclusive, share of wall.
  std::string Render() const;
};

class SelfProfiler {
 public:
  explicit SelfProfiler(bool enabled = true);

  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Charges `ns` (and one call) to `phase` under the calling thread's current
  // scope without opening a timer — for probes that measured the interval
  // themselves (contended-lock waits). No-op when disabled.
  void Charge(Phase phase, std::int64_t ns);

  // Aggregates the tree. `measured_wall_ns` > 0 anchors wall_ns/residual_ns
  // to an externally measured control-plane wall (e.g. around SubmitAndRun).
  // Safe to call concurrently with scope recording; numbers are only exact
  // while no scope is mid-flight (serial phases — the runtime snapshots
  // between event-loop steps).
  SelfProfile Report(std::int64_t measured_wall_ns = 0) const;

  // Collapsed-stack flamegraph text (one "frame;frame;frame value" line per
  // stack, value = exclusive ns; feed to flamegraph.pl / speedscope). Worker
  //-thread stacks are rooted at a synthetic "workers" frame.
  std::string CollapsedStacks() const;

  // Order-independent digest of the deterministic per-phase call counts.
  // Identical at every worker count for one workload — asserted by tests and
  // the bench artifact.
  std::uint64_t Fingerprint() const;

  // Exports the current aggregate as gauges:
  //   selfprof_phase_inclusive_ns / selfprof_phase_exclusive_ns /
  //   selfprof_phase_calls, labels {phase, scope=control|workers},
  // plus unlabeled selfprof_wall_ns. Gauges overwrite; call repeatedly.
  void PublishTo(Registry& registry) const;

 private:
  friend class PhaseTimer;

  struct Node {
    Phase phase = Phase::kDispatch;
    const Node* parent = nullptr;  // sentinel roots have nullptr
    std::atomic<std::int64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
    std::array<std::atomic<Node*>, kNumPhases> children{};
  };

  // Resolves (lazily creating) the child of the calling thread's current
  // scope — or of the matching root sentinel when there is none — and makes
  // it current. Returns nullptr when disabled.
  Node* Enter(Phase phase);
  // Accumulates into `node` and restores `prev` as the thread's current.
  void Exit(Node* node, Node* prev, std::int64_t elapsed_ns);

  Node* ChildOf(Node* base, Phase phase);

  // Per-thread cursor into the tree. `owner` holds the profiler's unique id:
  // a thread that last recorded into another (possibly destroyed) profiler
  // sees a mismatch and resets, so stale node pointers are never followed.
  struct ThreadSlot {
    std::uint64_t owner = 0;
    Node* current = nullptr;
  };
  static ThreadSlot& Slot();

  std::atomic<bool> enabled_;
  const std::uint64_t id_;  // process-unique, so stale thread slots never match

  // Sentinel parents: control-plane roots (dispatch/admission scopes opened
  // with no current node) vs worker-thread stacks. Their ns/calls stay 0.
  Node control_root_;
  Node workers_root_;

  // Node storage: deque so addresses are stable under append; guarded by
  // mu_ for creation only (readers follow atomic child pointers lock-free).
  mutable std::mutex mu_;
  std::deque<Node> nodes_;
};

// RAII phase scope. Cheap to construct against a null or disabled profiler
// (one branch + relaxed load), so instrumentation sites need no ifdefs.
class PhaseTimer {
 public:
  PhaseTimer(SelfProfiler* profiler, Phase phase) {
    if (profiler == nullptr || !profiler->enabled()) {
      return;
    }
    profiler_ = profiler;
    prev_ = CurrentOf(profiler);
    node_ = profiler->Enter(phase);
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  // Closes the scope early (idempotent). Returns the elapsed ns charged, 0
  // if the scope never opened.
  std::int64_t Stop() {
    if (node_ == nullptr) {
      return 0;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const std::int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    profiler_->Exit(node_, prev_, ns);
    node_ = nullptr;
    return ns;
  }

 private:
  // The calling thread's current node in `profiler`'s tree (nullptr at top
  // level). Defined in selfprof.cc next to the thread-local slot.
  static SelfProfiler::Node* CurrentOf(const SelfProfiler* profiler);

  SelfProfiler* profiler_ = nullptr;
  SelfProfiler::Node* node_ = nullptr;
  SelfProfiler::Node* prev_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_SELFPROF_H_
