// Copyright (c) memflow authors. MIT license.
//
// Memory-access observability (DESIGN.md §16): a low-overhead sampled view of
// the region data path that answers the three questions a paging/eviction
// policy needs answered before it exists (ROADMAP item 3):
//
//   * "What miss ratio would an N-byte hot buffer see?"  — SHARDS-style
//     spatially-hashed reuse-distance sampling, folded into miss-ratio
//     curves (MRC) per device and per latency class.
//   * "What is the working set right now?"  — unique bytes touched per
//     virtual-time window, with exponential decay across windows.
//   * "Which regions stream and which re-reference?"  — a per-accessor
//     stride/sequential/random classifier whose verdicts aggregate into
//     per-region pattern counters, prefetch-opportunity counters, and
//     per-region spatial heatmaps.
//
// Overhead discipline (same as SelfProfiler): when disabled, Note() is one
// relaxed load and a branch. When enabled, the always-on slice is a handful
// of relaxed atomic increments (it *replaces* the RegionManager's old
// hotness counter — this module is now the single source of truth for
// hotness), and the reuse-distance slice runs only for the spatially
// sampled subset of chunks.
//
// Determinism contract (enforced by the sim-wss oracle invariant): every
// aggregate this module fingerprints is a pure function of the deterministic
// access multiset {(region key, chunk, virtual time)} — never of the host
// interleaving of task bodies inside one virtual-time step:
//
//   * whether a chunk is sampled is a pure hash of (region key, chunk index),
//     where the region key is the worker-count-stable allocation identity
//     (owner principal + per-owner allocation sequence), not the raw region
//     id (the one value the executor permits to diverge across worker
//     counts);
//   * reuse distances are quantized to virtual-time epochs: the distance of
//     a revisit is the number of epoch-first chunk touches between the two
//     accesses' epochs, a quantity independent of intra-epoch ordering
//     (the conservative-PDES barrier guarantees all accesses of epoch e
//     complete, in host time, before any access of epoch e+1 starts);
//   * per-region/pattern/heatmap counters are order-independent sums of
//     per-accessor deterministic streams.

#ifndef MEMFLOW_TELEMETRY_MEMACCESS_H_
#define MEMFLOW_TELEMETRY_MEMACCESS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace memflow::telemetry {

// Verdict of the per-accessor stride detector for one access.
enum class AccessPatternKind : std::uint8_t {
  kSequential = 0,  // continues exactly where the previous access ended
  kStrided = 1,     // constant nonzero delta from the previous offset
  kRandom = 2,      // anything else
};
inline constexpr int kNumAccessPatterns = 3;

std::string_view AccessPatternName(AccessPatternKind k);

// Per-accessor pattern state machine. Lives inside each accessor (which is
// single-threaded by construction), so classification is deterministic in
// the accessor's program order; only the resulting per-kind counts are
// aggregated across threads.
struct PatternTracker {
  std::uint64_t next_sequential = 0;
  std::uint64_t last_offset = 0;
  std::int64_t last_delta = 0;

  AccessPatternKind Classify(std::uint64_t offset, std::uint64_t size) {
    const bool sequential = offset == next_sequential;
    const auto delta =
        static_cast<std::int64_t>(offset) - static_cast<std::int64_t>(last_offset);
    const bool strided = !sequential && delta != 0 && delta == last_delta;
    next_sequential = offset + size;
    last_delta = delta;
    last_offset = offset;
    if (sequential) {
      return AccessPatternKind::kSequential;
    }
    return strided ? AccessPatternKind::kStrided : AccessPatternKind::kRandom;
  }
};

// One observed access, delivered by the RegionManager's data-path tap.
struct AccessSample {
  std::uint64_t region = 0;       // raw region id value (export/hotness key)
  std::uint64_t region_key = 0;   // worker-count-stable identity (sampling key)
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t region_size = 0;
  std::uint32_t device = 0;       // memory device id value
  std::uint32_t latency_class = 0;
  AccessPatternKind pattern = AccessPatternKind::kRandom;
  bool is_write = false;
  bool latency_charged = false;   // paid the full access latency (not hidden)
  std::int64_t vtime_ns = -1;     // virtual time; < 0 disables reuse/WSS sampling
};

struct AccessProfilerConfig {
  // Spatial sampling rate is 2^-sample_shift of all chunks (SHARDS: the kept
  // subset is decided by a hash threshold, and every estimate is corrected
  // by the reciprocal rate). Shift 0 samples everything.
  int sample_shift = 3;
  std::uint64_t chunk_bytes = 4096;
  // Virtual-time window = epoch both for WSS windows and for reuse-distance
  // quantization.
  std::int64_t epoch_ns = 10'000;
  // EMA keep fraction applied to the smoothed WSS at every closed window.
  double wss_decay = 0.5;
  // Capacity of the sampled-chunk table (rounded up to a power of two).
  // Overflow drops samples (counted; the oracle skips fingerprints then).
  std::size_t max_sampled_chunks = std::size_t{1} << 16;
};

// Number of ladder points of every miss-ratio curve: hypothetical hot-buffer
// capacities of 1<<i *sampled* chunks, i in [0, kMrcPoints). In real bytes
// that is chunk_bytes << (i + sample_shift).
inline constexpr int kMrcPoints = 20;
// Spatial heatmap resolution: bytes touched per 1/16th of each region,
// estimated from the sampled chunk subset (SHARDS-corrected) so the hot path
// pays the bucket division only for sampled accesses.
inline constexpr int kHeatBuckets = 16;

struct MissRatioCurve {
  std::string scope;                 // "global", "device:<name>", "latency:<name>"
  std::vector<std::uint64_t> sizes;  // hypothetical hot-buffer bytes (ladder)
  std::vector<double> miss_ratio;    // same length as sizes
  std::uint64_t sampled = 0;         // sampled accesses attributed to the scope
  std::uint64_t cold = 0;            // first-ever touches (miss at every size)
};

struct WssStats {
  std::string scope;
  std::uint64_t window_bytes = 0;  // unique bytes in the last active window
  double smoothed_bytes = 0;       // decayed EMA over closed windows
  std::uint64_t unique_bytes = 0;  // distinct sampled footprint ever, scaled
  std::uint64_t windows = 0;       // closed virtual-time windows observed
};

struct RegionAccessStats {
  std::uint64_t region = 0;
  std::uint64_t size = 0;
  std::uint64_t accesses = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hotness = 0;  // decayed weighted access counter
  std::array<std::uint64_t, kNumAccessPatterns> pattern = {};
  std::uint64_t prefetch_candidates = 0;  // predictable accesses that stalled
  // Estimated bytes per region 1/16th, from sampled chunks (SHARDS-corrected).
  std::array<std::uint64_t, kHeatBuckets> heat = {};
};

// Exact LRU stack-distance miss ratios over an explicit chunk-key trace,
// evaluated at capacities of 1<<i chunks for i in [0, points). The reference
// the oracle and tests hold the sampled estimator against. O(n * unique) —
// small corpora only.
std::vector<double> ExactMissRatios(const std::vector<std::uint64_t>& chunk_keys,
                                    int points);

class AccessProfiler {
 public:
  explicit AccessProfiler(AccessProfilerConfig config = {});
  AccessProfiler(const AccessProfiler&) = delete;
  AccessProfiler& operator=(const AccessProfiler&) = delete;
  ~AccessProfiler();

  // One relaxed load; when false, Note() is a no-op (and hotness freezes).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  const AccessProfilerConfig& config() const { return config_; }

  // Human names for the device / latency-class indices arriving in samples;
  // used in scope labels. Unnamed indices render as "device-<i>" / "class-<i>".
  void BindScopeNames(std::vector<std::string> device_names,
                      std::vector<std::string> latency_class_names);

  // Hot path. Thread-safe; relaxed atomics only (plus a mutex on the first
  // access of a new virtual-time epoch and on first-visit slab growth).
  void Note(const AccessSample& sample);

  // --- hotness (single source of truth for RegionManager/tiering) ---------------

  std::uint64_t RegionHotness(std::uint64_t region) const;
  // Multiplies every region's hotness by keep_fraction (tiering epochs).
  void DecayHotness(double keep_fraction);

  // --- estimates (read from serial phases; safe but racy mid-batch) -------------

  MissRatioCurve GlobalCurve() const;
  std::vector<MissRatioCurve> Curves() const;  // global + devices + classes
  WssStats GlobalWss() const;
  std::vector<WssStats> Wss() const;           // global + devices
  // Touched regions in id order.
  std::vector<RegionAccessStats> RegionStats() const;

  std::uint64_t sampled_accesses() const;
  std::uint64_t dropped_samples() const;  // chunk-table overflow

  // --- recording (oracle cross-check) -------------------------------------------

  // Records the chunk key of every sampled access (up to `cap`) so the exact
  // reference can replay the same stream. Off by default: the hot path then
  // never takes the trace mutex.
  void StartRecording(std::size_t cap);
  std::vector<std::uint64_t> RecordedChunkKeys() const;
  bool recording_truncated() const;

  // --- export --------------------------------------------------------------------

  // Deterministic digest of every fingerprint-safe aggregate (MRC ladders,
  // WSS, pattern totals). Bit-identical across worker counts; the sim-wss
  // oracle invariant compares it across differential legs.
  std::string Fingerprint() const;

  // Internal counter-algebra audit (read from a serial phase): per scope,
  // ladder-sum + cold == sampled and first-touches == cold + revisits; device
  // and latency scopes each sum to the global scope; every MRC is monotone
  // non-increasing. Returns human-readable problems (empty when consistent);
  // the sim-wss oracle turns them into violations.
  std::vector<std::string> SelfCheck() const;

  // Gauges for SnapshotRing ticks: WSS per scope, miss ratios at four ladder
  // sizes, pattern mix, sampler health, and heat lanes for the three hottest
  // regions (bounded so the family never hits the cardinality cap).
  void PublishTo(Registry& registry) const;

  // memflow_top --memory: MRC table, WSS, pattern mix, hottest regions.
  std::string RenderPanel() const;

 private:
  struct RegionState;
  struct RegionChunk;
  struct GroupState;
  struct ChunkSlot;

  RegionState* RegionSlot(std::uint64_t region, bool create);
  GroupState* DeviceGroup(std::uint32_t device, bool create);
  GroupState* LatencyGroup(std::uint32_t latency_class);
  // Closes every epoch < epoch under roll_mu_ (WSS windows + cum counters).
  void RollTo(std::uint64_t epoch);
  void RecordDistance(GroupState& g, std::uint64_t distance);

  MissRatioCurve CurveOf(const GroupState& g, std::string scope) const;
  WssStats WssOf(const GroupState& g, std::string scope) const;
  std::string DeviceScopeName(std::uint32_t device) const;
  std::string LatencyScopeName(std::uint32_t latency_class) const;

  static constexpr std::uint32_t kRegionChunkShift = 9;  // 512 regions/chunk
  static constexpr std::uint32_t kRegionChunkSize = 1u << kRegionChunkShift;
  static constexpr std::uint32_t kMaxRegionChunks = 8192;  // 4M regions
  static constexpr std::uint32_t kMaxDevices = 256;
  static constexpr std::uint32_t kMaxLatencyClasses = 4;

  const AccessProfilerConfig config_;
  const std::uint64_t sample_threshold_;  // keep iff MixU64(key) <= threshold
  const std::size_t table_mask_;          // chunk-table capacity - 1

  std::atomic<bool> enabled_{true};

  // Sampled-chunk table: open-addressed, insert-only, lock-free.
  std::unique_ptr<ChunkSlot[]> chunks_;
  std::atomic<std::uint64_t> dropped_{0};

  // Region slabs (always-on stats), chunked like RegionManager's records.
  std::atomic<RegionChunk*> region_chunks_[kMaxRegionChunks] = {};
  std::atomic<std::uint64_t> max_region_{0};  // highest region id seen
  std::mutex region_mu_;                      // slab growth only

  // Scope groups: global always, devices lazily, latency classes eagerly.
  std::unique_ptr<GroupState> global_;
  std::atomic<GroupState*> devices_[kMaxDevices] = {};
  std::unique_ptr<GroupState> latency_[kMaxLatencyClasses];
  mutable std::mutex group_mu_;  // group creation + scope names
  std::vector<std::string> device_names_;
  std::vector<std::string> latency_names_;

  // Epoch machinery. open_epoch_ stores epoch+1 (0 = nothing open yet).
  std::atomic<std::uint64_t> open_epoch_{0};
  std::mutex roll_mu_;

  // Order-independent pattern aggregates (also kept per region).
  std::atomic<std::uint64_t> pattern_[kNumAccessPatterns] = {};
  std::atomic<std::uint64_t> prefetch_{0};

  // Recording (oracle cross-check).
  mutable std::mutex trace_mu_;
  std::atomic<bool> recording_{false};
  std::size_t trace_cap_ = 0;
  bool trace_truncated_ = false;
  std::vector<std::uint64_t> trace_;
};

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_MEMACCESS_H_
