// Copyright (c) memflow authors. MIT license.

#include "telemetry/export.h"

#include <map>
#include <set>

#include "common/json.h"
#include "common/strings.h"
#include "common/table.h"

namespace memflow::telemetry {

namespace {

std::string Micros(std::int64_t ns) {
  return FormatDouble(static_cast<double>(ns) / 1e3, 3);
}

std::string RenderArgs(const std::vector<TraceArg>& args) {
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += JsonQuote(args[i].key);
    out += ':';
    out += args[i].quoted ? JsonQuote(args[i].value) : args[i].value;
  }
  out += '}';
  return out;
}

}  // namespace

std::string ExportTraceJson(const TraceBuffer& tracer, std::uint32_t job,
                            std::string_view process_name) {
  TraceExportOptions options;
  options.job = job;
  options.process_name = std::string(process_name);
  return ExportTraceJson(tracer, options);
}

std::string ExportTraceJson(const TraceBuffer& tracer, const TraceExportOptions& options) {
  const std::uint32_t job = options.job;
  const std::string_view process_name = options.process_name;
  const std::vector<TraceEvent> events = tracer.Events();
  const std::map<std::uint64_t, std::string> track_names = tracer.TrackNames();

  std::string json = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& entry) {
    if (!first) {
      json += ',';
    }
    first = false;
    json += entry;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":" +
       JsonQuote(process_name) + "}}");

  // Thread lanes for every track that appears in the filtered stream.
  std::set<std::uint64_t> tracks;
  for (const TraceEvent& e : events) {
    if (job == 0 || e.job == job) {
      tracks.insert(e.track);
    }
  }
  for (const std::uint64_t track : tracks) {
    const auto it = track_names.find(track);
    const std::string name =
        it != track_names.end() ? it->second : "track " + std::to_string(track);
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(track) + ",\"args\":{\"name\":" + JsonQuote(name) + "}}");
  }

  for (const TraceEvent& e : events) {
    if (job != 0 && e.job != job) {
      continue;
    }
    const bool highlighted = options.highlight && options.highlight(e);
    std::string entry = "{\"name\":" + JsonQuote(e.name) + ",\"cat\":" +
                        JsonQuote(e.category.empty() ? "event" : e.category) +
                        ",\"pid\":1,\"tid\":" + std::to_string(e.track) +
                        ",\"ts\":" + Micros(e.ts.ns);
    if (highlighted) {
      entry += ",\"cname\":\"terrible\"";  // Chrome trace reserved bright red
    }
    switch (e.type) {
      case TraceEventType::kSpan:
        entry += ",\"ph\":\"X\",\"dur\":" + Micros(e.dur.ns);
        break;
      case TraceEventType::kInstant:
        entry += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case TraceEventType::kFlowBegin:
        entry += ",\"ph\":\"s\",\"id\":" + std::to_string(e.flow_id);
        break;
      case TraceEventType::kFlowEnd:
        entry += ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" + std::to_string(e.flow_id);
        break;
    }
    std::vector<TraceArg> args = e.args;
    if (highlighted) {
      args.push_back({"critical", "true", /*quoted=*/false});
    }
    if (!args.empty()) {
      entry += ",\"args\":" + RenderArgs(args);
    }
    entry += '}';
    emit(entry);
  }
  json += "]}";
  return json;
}

std::string RenderTraceSummary(const TraceBuffer& tracer) {
  return RenderTraceSummary(tracer, nullptr);
}

std::string RenderTraceSummary(const TraceBuffer& tracer, const MetricsSnapshot* metrics) {
  const std::vector<TraceEvent> events = tracer.Events();

  struct CategoryAgg {
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::uint64_t flows = 0;
    SimDuration total;
  };
  std::map<std::string, CategoryAgg> by_category;
  struct JobAgg {
    std::uint64_t events = 0;
    SimDuration span_time;
  };
  std::map<std::uint32_t, JobAgg> by_job;

  for (const TraceEvent& e : events) {
    CategoryAgg& cat = by_category[e.category.empty() ? "event" : e.category];
    switch (e.type) {
      case TraceEventType::kSpan:
        cat.spans++;
        cat.total += e.dur;
        break;
      case TraceEventType::kInstant:
        cat.instants++;
        break;
      case TraceEventType::kFlowBegin:
      case TraceEventType::kFlowEnd:
        cat.flows++;
        break;
    }
    if (e.job != 0) {
      JobAgg& job = by_job[e.job];
      job.events++;
      if (e.type == TraceEventType::kSpan) {
        job.span_time += e.dur;
      }
    }
  }

  std::string out = "== trace summary (cross-job) ====================================\n";
  if (tracer.dropped() > 0) {
    out += "WARNING: " + WithThousands(tracer.dropped()) +
           " spans dropped — profile incomplete\n";
  }
  if (metrics != nullptr) {
    for (const std::string& name : metrics->OverflowedFamilies()) {
      out += "WARNING: metric family '" + name +
             "' hit its series cap — data collapsed into {overflow=\"true\"}\n";
    }
  }
  out += "events buffered     " + WithThousands(events.size()) + "\n";
  out += "events emitted      " + WithThousands(tracer.total_emitted()) + "\n";
  out += "events dropped      " + WithThousands(tracer.dropped()) + "\n";
  if (tracer.dropped() > 0) {
    const std::map<std::uint64_t, std::string> names = tracer.TrackNames();
    for (const auto& [track, count] : tracer.DroppedByTrack()) {
      const auto it = names.find(track);
      const std::string name =
          it != names.end() ? it->second : "track " + std::to_string(track);
      out += "  dropped on " + name + "  " + WithThousands(count) + "\n";
    }
  }
  out += "\n";

  TextTable categories({"Category", "Spans", "Span time", "Instants", "Flow events"});
  for (const auto& [name, agg] : by_category) {
    categories.AddRow({name, WithThousands(agg.spans), HumanDuration(agg.total),
                       WithThousands(agg.instants), WithThousands(agg.flows)});
  }
  out += categories.Render();

  if (!by_job.empty()) {
    out += "\n";
    TextTable jobs({"Job", "Events", "Span time"});
    for (const auto& [id, agg] : by_job) {
      jobs.AddRow({"#" + std::to_string(id), WithThousands(agg.events),
                   HumanDuration(agg.span_time)});
    }
    out += jobs.Render();
  }
  return out;
}

void PublishTraceHealth(const TraceBuffer& tracer, Registry& registry) {
  registry
      .GetGauge("trace_buffer_events_emitted", "Events emitted into the trace ring")
      ->Set(static_cast<double>(tracer.total_emitted()));
  registry
      .GetGauge("trace_buffer_events_dropped_total",
                "Events overwritten by trace ring wraparound")
      ->Set(static_cast<double>(tracer.dropped()));
  const std::map<std::uint64_t, std::string> names = tracer.TrackNames();
  for (const auto& [track, count] : tracer.DroppedByTrack()) {
    const auto it = names.find(track);
    const std::string name =
        it != names.end() ? it->second : "track " + std::to_string(track);
    registry
        .GetGauge("trace_buffer_events_dropped",
                  "Events overwritten by trace ring wraparound, per track",
                  {{"track", name}})
        ->Set(static_cast<double>(count));
  }
}

}  // namespace memflow::telemetry
