// Copyright (c) memflow authors. MIT license.
//
// Time-series layer over the metrics registry (DESIGN.md §13): a point-in-
// time Registry::Snapshot() cannot express "jobs per second over the last
// window" or "p99 queue wait of the tasks that finished recently". The
// SnapshotRing keeps a bounded ring of periodic snapshots stamped with both
// virtual and wall time, and answers windowed rate / delta / histogram-
// quantile queries by differencing the newest snapshot against the one just
// outside the window.
//
// The ring is driven by whoever owns the timeline: the runtime ticks it on
// the virtual clock (RuntimeOptions::snapshot_ring + snapshot_interval, so
// tick times — and therefore ring contents' shape — are deterministic at
// every worker count), a serving loop may tick it on wall time. Pre-tick
// hooks let publishers that export on demand (self-profiler gauges, trace-
// ring health) refresh just before each snapshot is taken.
//
// On top of the ring: the memflow_top dashboard (text + JSON) and a Perfetto
// counter-track export that turns the ring into "ph":"C" counter lanes.

#ifndef MEMFLOW_TELEMETRY_TIMESERIES_H_
#define MEMFLOW_TELEMETRY_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.h"
#include "telemetry/metrics.h"

namespace memflow::telemetry {

// One ring entry: a full registry snapshot stamped with virtual time (the
// query axis) and wall time (context for humans; never used in queries).
struct TimedSnapshot {
  SimTime sim_time;
  std::int64_t wall_ns = 0;
  MetricsSnapshot metrics;
};

class SnapshotRing {
 public:
  // Snapshots `registry` (not owned; must outlive the ring) on every Tick,
  // keeping the most recent `capacity` entries.
  explicit SnapshotRing(const Registry* registry, std::size_t capacity = 128);

  SnapshotRing(const SnapshotRing&) = delete;
  SnapshotRing& operator=(const SnapshotRing&) = delete;

  // Runs before every Tick's snapshot — for gauges that are published on
  // demand (PublishTraceHealth, SelfProfiler::PublishTo). Register at setup;
  // not thread-safe against concurrent Tick.
  void AddPreTickHook(std::function<void()> hook);

  // Takes one snapshot at virtual time `now`, evicting the oldest entry when
  // full. Thread-safe against the query methods.
  void Tick(SimTime now);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t total_ticks() const;  // including evicted entries
  std::vector<TimedSnapshot> Entries() const;  // oldest -> newest (copies)
  std::optional<TimedSnapshot> Latest() const;

  // --- windowed queries ---------------------------------------------------------
  //
  // All windows are virtual-time, anchored at the newest snapshot: the
  // baseline is the newest entry at least `window` old (or the oldest
  // retained entry when history is shorter). Empty `labels` sums every
  // series of the family; non-empty labels select exactly that series.
  // nullopt when the family is missing from the newest snapshot or fewer
  // than two snapshots overlap the window.

  // Counter/histogram-count/gauge difference across the window.
  std::optional<double> DeltaOver(std::string_view family, SimDuration window,
                                  const Labels& labels = {}) const;

  // DeltaOver per elapsed virtual second (elapsed = actual snapshot spacing,
  // not the requested window, so partial windows do not inflate rates).
  std::optional<double> RateOver(std::string_view family, SimDuration window,
                                 const Labels& labels = {}) const;

  // Interpolated p-quantile of the histogram samples *observed inside the
  // window* (element-wise bucket difference, then HistogramQuantile).
  std::optional<double> QuantileOver(std::string_view family, SimDuration window,
                                     double p, const Labels& labels = {}) const;

 private:
  // Newest entry and the window baseline under mu_. Returns false when the
  // ring holds fewer than two entries.
  bool WindowLocked(SimDuration window, const TimedSnapshot** newest,
                    const TimedSnapshot** baseline) const;

  const Registry* registry_;
  const std::size_t capacity_;
  std::vector<std::function<void()>> hooks_;
  mutable std::mutex mu_;
  std::deque<TimedSnapshot> ring_;
  std::uint64_t total_ticks_ = 0;
};

// --- dashboard ------------------------------------------------------------------

// Quantile triple rendered on the dashboard.
struct QuantileTriple {
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

// One serving tenant's live view (DESIGN.md §15): completed-jobs rate and
// end-to-end latency quantiles over the query window, from the serving
// layer's serving_jobs_total / serving_job_latency_ns families.
struct TenantDashboardRow {
  std::string tenant;
  double completed_per_sec = 0;
  QuantileTriple latency_ns;
};

// Everything memflow_top shows, computed once so the text and JSON renderings
// can never disagree.
struct DashboardStats {
  SimTime sim_now;
  std::int64_t wall_ns = 0;
  std::uint64_t ticks = 0;
  double jobs_per_sec = 0;   // completed jobs / virtual second over the window
  double tasks_per_sec = 0;  // executed tasks / virtual second over the window
  QuantileTriple queue_wait_ns;     // rts_task_queue_wait_ns over the window
  QuantileTriple task_duration_ns;  // rts_task_duration_ns over the window
  std::vector<std::pair<std::string, double>> queue_depths;  // device -> depth
  // Per-tenant serving rows, one per tenant label of serving_job_latency_ns;
  // empty when no serving layer published to the observed registry.
  std::vector<TenantDashboardRow> tenants;
  // Control-plane share per phase: exclusive ns / profiled wall, from the
  // self-profiler gauges in the newest snapshot. Sorted by share, descending.
  std::vector<std::pair<std::string, double>> phase_share;
  double selfprof_wall_ns = 0;
  double trace_dropped = 0;  // trace_buffer_events_dropped_total gauge
  std::vector<std::string> overflowed_families;
  std::vector<std::string> warnings;  // human-readable WARNING lines
};

DashboardStats ComputeDashboard(const SnapshotRing& ring, SimDuration window);

// Live text dashboard (one screenful; memflow_top redraws it per refresh).
std::string RenderDashboard(const DashboardStats& stats);

// The same numbers as a stable JSON document (memflow_top --once --json).
std::string DashboardJson(const DashboardStats& stats);

// --- Perfetto counter tracks ----------------------------------------------------

// Renders the ring as Chrome trace-event JSON counter tracks ("ph":"C"): one
// counter lane per series of every counter/gauge family (histograms
// contribute their _count), one sample per retained snapshot, timestamped on
// the virtual timeline. Load alongside ExportTraceJson output to see metric
// evolution under the span lanes. `families` filters by family name; empty
// exports everything.
std::string ExportCounterTracksJson(const SnapshotRing& ring,
                                    const std::vector<std::string>& families = {});

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_TIMESERIES_H_
