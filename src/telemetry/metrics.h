// Copyright (c) memflow authors. MIT license.
//
// Runtime-wide metrics registry (paper §3, Challenge 8): the observability
// substrate every layer of the runtime reports into. A metric *family* is a
// named counter/gauge/histogram with a help string; a *series* is one
// instrument inside a family, identified by its label set (`device`,
// `region_class`, `job`, ...). Instrument handles are resolved once (at
// component construction) and cached; the hot path is a single relaxed
// atomic op, so instrumentation stays cheap enough for the data path
// (every simulated memory access goes through it).
//
// Cardinality is bounded: once a family holds `max_series_per_family`
// series, further label sets collapse into one overflow series
// (`{overflow="true"}`) instead of growing without bound.

#ifndef MEMFLOW_TELEMETRY_METRICS_H_
#define MEMFLOW_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace memflow::telemetry {

// Label set: key/value pairs, canonicalized (sorted by key) on intern.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view MetricKindName(MetricKind kind);

// Monotonically increasing counter.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value (queue depth, resident bytes, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Exponential-bucket histogram: finite upper bounds
// first_bound * growth^i for i in [0, buckets), plus an implicit +Inf bucket.
// A sample lands in the first bucket whose bound is >= the value
// (Prometheus `le` semantics).
struct HistogramSpec {
  double first_bound = 1.0;
  double growth = 2.0;
  int buckets = 16;
};

class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);

  void Observe(double v);

  // Finite upper bounds; the +Inf bucket is counts().back().
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> counts() const;  // per-bucket (not cumulative)
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  // Interpolated p-quantile (p in [0,1]) over the live buckets — see
  // HistogramQuantile below for the estimation contract. nullopt when the
  // histogram holds no samples (there is no mass to interpolate off).
  std::optional<double> Quantile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// --- snapshots ----------------------------------------------------------------

// Interpolated quantile over exponential buckets (Prometheus
// histogram_quantile semantics): find the bucket holding the p*count-th
// sample and interpolate linearly inside [previous bound, bound]. Samples in
// the +Inf bucket report the largest finite bound (the estimate saturates);
// an empty histogram reports 0. `bucket_counts` is per-bucket with +Inf last,
// exactly as SeriesSnapshot carries it.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& bucket_counts, double p);

struct SeriesSnapshot {
  Labels labels;
  std::uint64_t counter = 0;                  // kCounter
  double gauge = 0;                           // kGauge
  std::vector<std::uint64_t> bucket_counts;   // kHistogram, per-bucket, +Inf last
  double sum = 0;                             // kHistogram
  std::uint64_t count = 0;                    // kHistogram

  // Interpolated p-quantile of a histogram series; `bounds` come from the
  // enclosing FamilySnapshot. nullopt when the series holds no samples.
  std::optional<double> Quantile(const std::vector<double>& bounds, double p) const {
    if (count == 0) {
      return std::nullopt;
    }
    return HistogramQuantile(bounds, bucket_counts, p);
  }
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<double> bounds;  // kHistogram only
  std::vector<SeriesSnapshot> series;

  // Exact-label-set lookup (labels canonicalized: sorted by key). nullptr
  // when the series does not exist.
  const SeriesSnapshot* Find(const Labels& labels) const;
  // Interpolated p-quantile over all series of a histogram family summed
  // (element-wise bucket addition). nullopt for non-histogram families and
  // for histogram families holding no samples.
  std::optional<double> Quantile(double p) const;
};

// A consistent point-in-time view of every family in a registry. Both
// renderings are deterministic: families sorted by name, series by label set.
struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  // Family lookup by name (families are sorted; binary search). nullptr when
  // absent.
  const FamilySnapshot* FindFamily(std::string_view name) const;

  // Names of families that hit the cardinality cap and collapsed label sets
  // into the shared `{overflow="true"}` series — data under those labels is
  // aggregated, not per-series, and dashboards warn about it.
  std::vector<std::string> OverflowedFamilies() const;

  // Stable machine-readable JSON document.
  std::string ToJson() const;
  // Prometheus text exposition format (HELP/TYPE + one line per sample).
  std::string ToPrometheus() const;
};

// --- registry -----------------------------------------------------------------

class Registry {
 public:
  explicit Registry(std::size_t max_series_per_family = 64);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Instrument lookup: creates the family and/or series on first use and
  // returns a stable pointer (valid for the registry's lifetime). Requesting
  // an existing name with a different kind is a programming error (checked).
  Counter* GetCounter(std::string_view name, std::string_view help, Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help, Labels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          const HistogramSpec& spec, Labels labels = {});

  MetricsSnapshot Snapshot() const;

  // Drops every family and series (test isolation).
  void Clear();

  std::size_t max_series_per_family() const { return max_series_; }

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    HistogramSpec spec;
    std::map<std::string, Series> series;  // key = canonical label string
  };

  Series* Intern(std::string_view name, std::string_view help, MetricKind kind,
                 const HistogramSpec& spec, Labels labels);

  const std::size_t max_series_;
  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

// Process-wide default registry: components report here unless handed an
// explicit registry (tests pass their own for isolation).
Registry& DefaultRegistry();

// Snapshot of the default registry — `telemetry::Snapshot().ToJson()`.
MetricsSnapshot Snapshot();

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_METRICS_H_
