// Copyright (c) memflow authors. MIT license.
//
// Cross-layer event/span tracing on the virtual timeline (paper §3,
// Challenge 8). Every layer of the runtime emits causal events into one
// bounded ring buffer:
//
//   spans    — task lifetimes, handover copies, migrations, checkpoints
//   instants — point events (faults, stalls)
//   flows    — producer -> consumer arrows linking a task's output handover
//              to the consumer's dispatch (kFlowBegin on the producer track,
//              kFlowEnd with the same flow id on the consumer track)
//
// The buffer is bounded: when full, the oldest events are overwritten and
// counted as dropped — tracing can stay on in a long-running system without
// growing memory. Exporters (telemetry/export.h) turn the stream into
// Chrome/Perfetto trace JSON and cross-job aggregate views.

#ifndef MEMFLOW_TELEMETRY_TRACE_H_
#define MEMFLOW_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"

namespace memflow::telemetry {

enum class TraceEventType { kSpan, kInstant, kFlowBegin, kFlowEnd };

// One pre-rendered argument. `quoted` false means `value` is emitted as a
// raw JSON token (number / bool), true means it is escaped and quoted.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;
};

struct TraceEvent {
  TraceEventType type = TraceEventType::kInstant;
  std::string name;
  std::string category;
  std::uint64_t track = 0;   // lane: compute device id, or a synthetic track
  std::uint32_t job = 0;     // owning job id; 0 = not job-scoped
  SimTime ts;
  SimDuration dur;           // kSpan only
  std::uint64_t flow_id = 0; // kFlowBegin / kFlowEnd pairs share an id
  std::vector<TraceArg> args;
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Emit(TraceEvent event);

  // Fresh id for a kFlowBegin/kFlowEnd pair.
  std::uint64_t NextFlowId() { return next_flow_.fetch_add(1, std::memory_order_relaxed); }

  // Human-readable lane names ("cpu0", "GPU", "region-manager") for exporters.
  void SetTrackName(std::uint64_t track, std::string name);
  std::map<std::uint64_t, std::string> TrackNames() const;

  // Buffered events, oldest first (at most `capacity()` of them).
  std::vector<TraceEvent> Events() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_emitted() const { return total_.load(std::memory_order_relaxed); }
  // Events overwritten by ring wraparound.
  std::uint64_t dropped() const;
  // Overwritten events per track of the *overwritten* event, so exporters and
  // analyzers can say which lanes of a truncated profile are incomplete.
  std::map<std::uint64_t, std::uint64_t> DroppedByTrack() const;

  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> next_flow_{1};
  std::map<std::uint64_t, std::string> track_names_;
  std::map<std::uint64_t, std::uint64_t> dropped_by_track_;
};

// Process-wide default tracer for components not handed an explicit one.
TraceBuffer& DefaultTracer();

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_TRACE_H_
