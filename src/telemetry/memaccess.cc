// Copyright (c) memflow authors. MIT license.

#include "telemetry/memaccess.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace memflow::telemetry {

namespace {

// Smallest i with (1 << i) >= n, for n >= 1.
int CeilLog2(std::uint64_t n) {
  int i = 0;
  while ((std::uint64_t{1} << i) < n) {
    ++i;
  }
  return i;
}

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

std::string_view AccessPatternName(AccessPatternKind k) {
  switch (k) {
    case AccessPatternKind::kSequential:
      return "sequential";
    case AccessPatternKind::kStrided:
      return "strided";
    case AccessPatternKind::kRandom:
      return "random";
  }
  return "unknown";
}

// --- internal state -----------------------------------------------------------

// One sampled chunk: insert-only open-addressed slot. `key` 0 means empty
// (real keys hashing to 0 are remapped to 1 before insert). `last_epoch`
// stores epoch+1 so 0 means never touched; the atomic exchange on it elects
// exactly one winner per (chunk, epoch), which is what keeps the first-touch
// counters order-independent.
struct AccessProfiler::ChunkSlot {
  std::atomic<std::uint64_t> key{0};
  std::atomic<std::uint64_t> last_epoch{0};
  // Global cum_closed at the chunk's previous touch; the reuse distance of a
  // revisit is the growth of cum_closed since then, minus the chunk's own
  // first-touch contribution.
  std::atomic<std::uint64_t> cum_snapshot{0};
};

// Per-scope aggregate (global, one per device, one per latency class). All
// counters are in sampled-chunk units; exported values scale by
// chunk_bytes << sample_shift (the SHARDS correction).
struct AccessProfiler::GroupState {
  std::atomic<std::uint64_t> sampled{0};          // sampled accesses
  std::atomic<std::uint64_t> cold{0};             // first-ever chunk touches
  std::atomic<std::uint64_t> epoch_revisits{0};   // revisits across epochs
  std::atomic<std::uint64_t> ladder[kMrcPoints + 1] = {};  // [i] hits at 1<<i
  std::atomic<std::uint64_t> open_first{0};   // epoch-first touches, open epoch
  std::atomic<std::uint64_t> cum_closed{0};   // epoch-first touches, closed
  std::atomic<std::uint64_t> last_window{0};  // firsts in last closed epoch
  std::atomic<std::uint64_t> windows{0};      // closed epochs observed
  std::atomic<double> wss_ema{0.0};           // decayed window bytes
};

struct AccessProfiler::RegionState {
  std::atomic<std::uint64_t> size{0};
  std::atomic<std::uint64_t> accesses{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> hotness{0};
  std::atomic<std::uint64_t> pattern[kNumAccessPatterns] = {};
  std::atomic<std::uint64_t> prefetch{0};
  std::atomic<std::uint64_t> heat[kHeatBuckets] = {};
};

struct AccessProfiler::RegionChunk {
  RegionState slots[kRegionChunkSize];
};

// --- construction -------------------------------------------------------------

AccessProfiler::AccessProfiler(AccessProfilerConfig config)
    : config_(config),
      sample_threshold_(config.sample_shift <= 0
                            ? ~std::uint64_t{0}
                            : (~std::uint64_t{0} >> config.sample_shift)),
      table_mask_(RoundUpPow2(std::max<std::size_t>(config.max_sampled_chunks, 64)) -
                  1),
      chunks_(new ChunkSlot[table_mask_ + 1]),
      global_(new GroupState) {
  for (auto& g : latency_) {
    g.reset(new GroupState);
  }
}

AccessProfiler::~AccessProfiler() {
  for (auto& chunk : region_chunks_) {
    delete chunk.load(std::memory_order_relaxed);
  }
  for (auto& dev : devices_) {
    delete dev.load(std::memory_order_relaxed);
  }
}

void AccessProfiler::BindScopeNames(std::vector<std::string> device_names,
                                    std::vector<std::string> latency_class_names) {
  std::lock_guard<std::mutex> lock(group_mu_);
  device_names_ = std::move(device_names);
  latency_names_ = std::move(latency_class_names);
}

// --- slabs and groups ---------------------------------------------------------

AccessProfiler::RegionState* AccessProfiler::RegionSlot(std::uint64_t region,
                                                        bool create) {
  const std::uint64_t chunk = region >> kRegionChunkShift;
  if (chunk >= kMaxRegionChunks) {
    return nullptr;
  }
  RegionChunk* slab = region_chunks_[chunk].load(std::memory_order_acquire);
  if (slab == nullptr) {
    if (!create) {
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(region_mu_);
    slab = region_chunks_[chunk].load(std::memory_order_relaxed);
    if (slab == nullptr) {
      slab = new RegionChunk;
      region_chunks_[chunk].store(slab, std::memory_order_release);
    }
  }
  if (create) {
    std::uint64_t cur = max_region_.load(std::memory_order_relaxed);
    while (cur < region &&
           !max_region_.compare_exchange_weak(cur, region, std::memory_order_relaxed)) {
    }
  }
  return &slab->slots[region & (kRegionChunkSize - 1)];
}

AccessProfiler::GroupState* AccessProfiler::DeviceGroup(std::uint32_t device,
                                                        bool create) {
  if (device >= kMaxDevices) {
    return nullptr;
  }
  GroupState* g = devices_[device].load(std::memory_order_acquire);
  if (g == nullptr && create) {
    std::lock_guard<std::mutex> lock(group_mu_);
    g = devices_[device].load(std::memory_order_relaxed);
    if (g == nullptr) {
      g = new GroupState;
      devices_[device].store(g, std::memory_order_release);
    }
  }
  return g;
}

AccessProfiler::GroupState* AccessProfiler::LatencyGroup(std::uint32_t latency_class) {
  return latency_[latency_class < kMaxLatencyClasses ? latency_class : 0].get();
}

// --- epoch roll ---------------------------------------------------------------

void AccessProfiler::RollTo(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(roll_mu_);
  const std::uint64_t open = open_epoch_.load(std::memory_order_relaxed);
  if (epoch <= open) {
    return;  // another thread rolled first
  }
  if (open != 0) {
    // Close the open epoch (and account the empty epochs between it and the
    // new one). Safe without synchronizing against Note(): the PDES barrier
    // guarantees every access of an earlier epoch completed, in host time,
    // before the first access of a later epoch reaches this roll.
    const std::uint64_t gap = epoch - open;
    const double unit =
        static_cast<double>(config_.chunk_bytes << config_.sample_shift);
    const auto close = [&](GroupState& g) {
      const std::uint64_t firsts = g.open_first.exchange(0, std::memory_order_relaxed);
      g.cum_closed.fetch_add(firsts, std::memory_order_relaxed);
      g.last_window.store(firsts, std::memory_order_relaxed);
      g.windows.fetch_add(gap, std::memory_order_relaxed);
      double ema = g.wss_ema.load(std::memory_order_relaxed);
      ema = ema * config_.wss_decay +
            (1.0 - config_.wss_decay) * static_cast<double>(firsts) * unit;
      if (gap > 1) {  // epochs with zero accesses decay the EMA toward zero
        ema *= std::pow(config_.wss_decay, static_cast<double>(gap - 1));
      }
      g.wss_ema.store(ema, std::memory_order_relaxed);
    };
    close(*global_);
    for (auto& dev : devices_) {
      if (GroupState* g = dev.load(std::memory_order_relaxed)) {
        close(*g);
      }
    }
    for (auto& lat : latency_) {
      close(*lat);
    }
  }
  open_epoch_.store(epoch, std::memory_order_release);
}

// --- hot path -----------------------------------------------------------------

void AccessProfiler::RecordDistance(GroupState& g, std::uint64_t distance) {
  const int bucket = std::min(kMrcPoints, CeilLog2(distance + 1));
  g.ladder[bucket].fetch_add(1, std::memory_order_relaxed);
}

void AccessProfiler::Note(const AccessSample& sample) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }

  // Always-on slice: per-region counters (this is the hotness source of
  // truth) and pattern aggregates. Relaxed increments only; the spatial
  // heatmap — the one per-region stat that needs a division — is deferred to
  // the sampled slice below and SHARDS-corrected there.
  RegionState* rs = RegionSlot(sample.region, /*create=*/true);
  if (rs != nullptr) {
    rs->size.store(sample.region_size, std::memory_order_relaxed);
    rs->accesses.fetch_add(1, std::memory_order_relaxed);
    rs->bytes.fetch_add(sample.size, std::memory_order_relaxed);
    rs->hotness.fetch_add(1 + sample.size / 256, std::memory_order_relaxed);
    rs->pattern[static_cast<int>(sample.pattern)].fetch_add(1,
                                                            std::memory_order_relaxed);
    if (sample.pattern != AccessPatternKind::kRandom && sample.latency_charged) {
      rs->prefetch.fetch_add(1, std::memory_order_relaxed);
      prefetch_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  pattern_[static_cast<int>(sample.pattern)].fetch_add(1, std::memory_order_relaxed);

  // Reuse-distance / WSS slice needs virtual time.
  if (sample.vtime_ns < 0 || config_.epoch_ns <= 0) {
    return;
  }
  const std::uint64_t epoch =
      static_cast<std::uint64_t>(sample.vtime_ns) /
          static_cast<std::uint64_t>(config_.epoch_ns) +
      1;  // +1 so 0 means "no epoch open yet"
  if (epoch > open_epoch_.load(std::memory_order_acquire)) {
    RollTo(epoch);
  }

  // SHARDS spatial sampling: keep the chunk iff its hash clears the
  // threshold. Keyed on the worker-count-stable region identity, never the
  // raw region id.
  std::uint64_t key =
      HashCombine(sample.region_key, sample.offset / config_.chunk_bytes);
  if (key == 0) {
    key = 1;
  }
  const std::uint64_t hash = MixU64(key);
  if (hash > sample_threshold_) {
    return;
  }

  // Find-or-insert the chunk slot (lock-free linear probing, insert-only).
  ChunkSlot* slot = nullptr;
  std::size_t idx = hash & table_mask_;
  for (std::size_t probe = 0; probe <= table_mask_; ++probe) {
    std::uint64_t cur = chunks_[idx].key.load(std::memory_order_acquire);
    if (cur == key) {
      slot = &chunks_[idx];
      break;
    }
    if (cur == 0) {
      std::uint64_t expected = 0;
      if (chunks_[idx].key.compare_exchange_strong(expected, key,
                                                   std::memory_order_acq_rel) ||
          expected == key) {
        slot = &chunks_[idx];
        break;
      }
    }
    idx = (idx + 1) & table_mask_;
  }
  if (slot == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  GroupState* groups[3] = {global_.get(), DeviceGroup(sample.device, /*create=*/true),
                           LatencyGroup(sample.latency_class)};
  for (GroupState* g : groups) {
    if (g != nullptr) {
      g->sampled.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Spatial heat, sampled and SHARDS-corrected back to bytes.
  if (rs != nullptr) {
    const std::uint64_t span = std::max<std::uint64_t>(sample.region_size, 1);
    const int heat = static_cast<int>(std::min<std::uint64_t>(
        kHeatBuckets - 1, sample.offset * kHeatBuckets / span));
    rs->heat[heat].fetch_add(sample.size << config_.sample_shift,
                             std::memory_order_relaxed);
  }

  // cum_closed is constant for the duration of an epoch (only RollTo, which
  // the PDES barrier serializes against all earlier accesses, advances it),
  // so every thread in this epoch reads the same value.
  const std::uint64_t cum_now = global_->cum_closed.load(std::memory_order_relaxed);
  const std::uint64_t prev = slot->last_epoch.exchange(epoch, std::memory_order_acq_rel);
  if (prev == epoch) {
    // Same-epoch re-touch: reuse distance 0, a hit at every capacity.
    for (GroupState* g : groups) {
      if (g != nullptr) {
        RecordDistance(*g, 0);
      }
    }
  } else if (prev == 0) {
    // First-ever touch: a miss at every capacity.
    slot->cum_snapshot.store(cum_now, std::memory_order_relaxed);
    for (GroupState* g : groups) {
      if (g != nullptr) {
        g->cold.fetch_add(1, std::memory_order_relaxed);
        g->open_first.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else {
    // Revisit across epochs: the distance is the number of *other* sampled
    // chunks whose epoch-first touches closed between the two accesses
    // (cum_closed growth minus this chunk's own first-touch from `prev`).
    const std::uint64_t prev_cum =
        slot->cum_snapshot.exchange(cum_now, std::memory_order_relaxed);
    const std::uint64_t distance = cum_now - prev_cum - 1;
    for (GroupState* g : groups) {
      if (g != nullptr) {
        g->epoch_revisits.fetch_add(1, std::memory_order_relaxed);
        g->open_first.fetch_add(1, std::memory_order_relaxed);
        RecordDistance(*g, distance);
      }
    }
  }

  if (recording_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (trace_.size() < trace_cap_) {
      trace_.push_back(key);
    } else {
      trace_truncated_ = true;
    }
  }
}

// --- hotness ------------------------------------------------------------------

std::uint64_t AccessProfiler::RegionHotness(std::uint64_t region) const {
  RegionState* rs =
      const_cast<AccessProfiler*>(this)->RegionSlot(region, /*create=*/false);
  return rs == nullptr ? 0 : rs->hotness.load(std::memory_order_relaxed);
}

void AccessProfiler::DecayHotness(double keep_fraction) {
  const std::uint64_t max_region = max_region_.load(std::memory_order_relaxed);
  for (std::uint64_t chunk = 0; chunk <= (max_region >> kRegionChunkShift) &&
                                chunk < kMaxRegionChunks;
       ++chunk) {
    RegionChunk* slab = region_chunks_[chunk].load(std::memory_order_acquire);
    if (slab == nullptr) {
      continue;
    }
    for (RegionState& rs : slab->slots) {
      const std::uint64_t h = rs.hotness.load(std::memory_order_relaxed);
      if (h != 0) {
        rs.hotness.store(
            static_cast<std::uint64_t>(static_cast<double>(h) * keep_fraction),
            std::memory_order_relaxed);
      }
    }
  }
}

// --- estimates ----------------------------------------------------------------

std::string AccessProfiler::DeviceScopeName(std::uint32_t device) const {
  std::lock_guard<std::mutex> lock(group_mu_);
  if (device < device_names_.size() && !device_names_[device].empty()) {
    return "device:" + device_names_[device];
  }
  return "device:" + std::to_string(device);
}

std::string AccessProfiler::LatencyScopeName(std::uint32_t latency_class) const {
  std::lock_guard<std::mutex> lock(group_mu_);
  if (latency_class < latency_names_.size() && !latency_names_[latency_class].empty()) {
    return "latency:" + latency_names_[latency_class];
  }
  return "latency:" + std::to_string(latency_class);
}

MissRatioCurve AccessProfiler::CurveOf(const GroupState& g, std::string scope) const {
  MissRatioCurve curve;
  curve.scope = std::move(scope);
  curve.sampled = g.sampled.load(std::memory_order_relaxed);
  curve.cold = g.cold.load(std::memory_order_relaxed);
  std::uint64_t ladder[kMrcPoints + 1];
  for (int i = 0; i <= kMrcPoints; ++i) {
    ladder[i] = g.ladder[i].load(std::memory_order_relaxed);
  }
  curve.sizes.reserve(kMrcPoints);
  curve.miss_ratio.reserve(kMrcPoints);
  // misses at capacity 1<<i = cold + every reuse that needed a larger stack.
  std::uint64_t misses = curve.cold;
  for (int i = kMrcPoints; i >= 1; --i) {
    misses += ladder[i];
  }
  for (int i = 0; i < kMrcPoints; ++i) {
    curve.sizes.push_back(config_.chunk_bytes << (i + config_.sample_shift));
    curve.miss_ratio.push_back(
        curve.sampled == 0
            ? 1.0
            : static_cast<double>(misses) / static_cast<double>(curve.sampled));
    misses -= ladder[i + 1];  // capacity doubled: ladder[i+1] hits now fit
  }
  return curve;
}

WssStats AccessProfiler::WssOf(const GroupState& g, std::string scope) const {
  const std::uint64_t unit = config_.chunk_bytes << config_.sample_shift;
  WssStats w;
  w.scope = std::move(scope);
  w.window_bytes = g.last_window.load(std::memory_order_relaxed) * unit;
  w.smoothed_bytes = g.wss_ema.load(std::memory_order_relaxed);
  w.unique_bytes = g.cold.load(std::memory_order_relaxed) * unit;
  w.windows = g.windows.load(std::memory_order_relaxed);
  return w;
}

MissRatioCurve AccessProfiler::GlobalCurve() const {
  return CurveOf(*global_, "global");
}

std::vector<MissRatioCurve> AccessProfiler::Curves() const {
  std::vector<MissRatioCurve> out;
  out.push_back(CurveOf(*global_, "global"));
  for (std::uint32_t d = 0; d < kMaxDevices; ++d) {
    if (const GroupState* g = devices_[d].load(std::memory_order_acquire)) {
      out.push_back(CurveOf(*g, DeviceScopeName(d)));
    }
  }
  for (std::uint32_t c = 0; c < kMaxLatencyClasses; ++c) {
    if (latency_[c]->sampled.load(std::memory_order_relaxed) != 0) {
      out.push_back(CurveOf(*latency_[c], LatencyScopeName(c)));
    }
  }
  return out;
}

WssStats AccessProfiler::GlobalWss() const { return WssOf(*global_, "global"); }

std::vector<WssStats> AccessProfiler::Wss() const {
  std::vector<WssStats> out;
  out.push_back(WssOf(*global_, "global"));
  for (std::uint32_t d = 0; d < kMaxDevices; ++d) {
    if (const GroupState* g = devices_[d].load(std::memory_order_acquire)) {
      out.push_back(WssOf(*g, DeviceScopeName(d)));
    }
  }
  return out;
}

std::vector<RegionAccessStats> AccessProfiler::RegionStats() const {
  std::vector<RegionAccessStats> out;
  const std::uint64_t max_region = max_region_.load(std::memory_order_relaxed);
  for (std::uint64_t region = 0; region <= max_region; ++region) {
    RegionState* rs =
        const_cast<AccessProfiler*>(this)->RegionSlot(region, /*create=*/false);
    if (rs == nullptr || rs->accesses.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    RegionAccessStats stats;
    stats.region = region;
    stats.size = rs->size.load(std::memory_order_relaxed);
    stats.accesses = rs->accesses.load(std::memory_order_relaxed);
    stats.bytes = rs->bytes.load(std::memory_order_relaxed);
    stats.hotness = rs->hotness.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumAccessPatterns; ++i) {
      stats.pattern[i] = rs->pattern[i].load(std::memory_order_relaxed);
    }
    stats.prefetch_candidates = rs->prefetch.load(std::memory_order_relaxed);
    for (int i = 0; i < kHeatBuckets; ++i) {
      stats.heat[i] = rs->heat[i].load(std::memory_order_relaxed);
    }
    out.push_back(stats);
  }
  return out;
}

std::uint64_t AccessProfiler::sampled_accesses() const {
  return global_->sampled.load(std::memory_order_relaxed);
}

std::uint64_t AccessProfiler::dropped_samples() const {
  return dropped_.load(std::memory_order_relaxed);
}

// --- recording ----------------------------------------------------------------

void AccessProfiler::StartRecording(std::size_t cap) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_cap_ = cap;
  trace_.clear();
  trace_.reserve(std::min<std::size_t>(cap, 4096));
  trace_truncated_ = false;
  recording_.store(true, std::memory_order_relaxed);
}

std::vector<std::uint64_t> AccessProfiler::RecordedChunkKeys() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_;
}

bool AccessProfiler::recording_truncated() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_truncated_;
}

// --- exact reference ----------------------------------------------------------

std::vector<double> ExactMissRatios(const std::vector<std::uint64_t>& chunk_keys,
                                    int points) {
  std::vector<std::uint64_t> misses(static_cast<std::size_t>(points), 0);
  std::vector<std::uint64_t> stack;  // most recent first
  stack.reserve(1024);
  for (const std::uint64_t key : chunk_keys) {
    const auto it = std::find(stack.begin(), stack.end(), key);
    if (it == stack.end()) {
      for (auto& m : misses) {
        ++m;  // cold: a miss at every capacity
      }
      stack.insert(stack.begin(), key);
    } else {
      const auto depth = static_cast<std::uint64_t>(it - stack.begin());
      for (int i = 0; i < points; ++i) {
        if ((std::uint64_t{1} << i) < depth + 1) {
          ++misses[static_cast<std::size_t>(i)];
        }
      }
      stack.erase(it);
      stack.insert(stack.begin(), key);
    }
  }
  std::vector<double> out(static_cast<std::size_t>(points), 1.0);
  if (!chunk_keys.empty()) {
    for (int i = 0; i < points; ++i) {
      out[static_cast<std::size_t>(i)] =
          static_cast<double>(misses[static_cast<std::size_t>(i)]) /
          static_cast<double>(chunk_keys.size());
    }
  }
  return out;
}

// --- export -------------------------------------------------------------------

std::string AccessProfiler::Fingerprint() const {
  // Deterministic digest over every order-independent integer aggregate.
  // Excluded on purpose: anything keyed by raw region ids (heatmaps,
  // per-region stats, hotness) — region ids are the one value the executor
  // lets diverge across worker counts — plus the float WSS EMA and the
  // dropped-sample counter.
  std::string out;
  const auto group = [&out](const GroupState& g, const std::string& scope) {
    out += scope;
    out += "|s=" + std::to_string(g.sampled.load(std::memory_order_relaxed));
    out += ",c=" + std::to_string(g.cold.load(std::memory_order_relaxed));
    out += ",r=" + std::to_string(g.epoch_revisits.load(std::memory_order_relaxed));
    out += ",f=" + std::to_string(g.cum_closed.load(std::memory_order_relaxed) +
                                  g.open_first.load(std::memory_order_relaxed));
    out += ",w=" + std::to_string(g.windows.load(std::memory_order_relaxed));
    out += ",lw=" + std::to_string(g.last_window.load(std::memory_order_relaxed));
    out += ",L=";
    for (int i = 0; i <= kMrcPoints; ++i) {
      if (i != 0) {
        out += ":";
      }
      out += std::to_string(g.ladder[i].load(std::memory_order_relaxed));
    }
    out += "\n";
  };
  group(*global_, "global");
  for (std::uint32_t d = 0; d < kMaxDevices; ++d) {
    if (const GroupState* g = devices_[d].load(std::memory_order_acquire)) {
      group(*g, DeviceScopeName(d));
    }
  }
  for (std::uint32_t c = 0; c < kMaxLatencyClasses; ++c) {
    group(*latency_[c], LatencyScopeName(c));
  }
  out += "pattern=";
  for (int i = 0; i < kNumAccessPatterns; ++i) {
    if (i != 0) {
      out += ":";
    }
    out += std::to_string(pattern_[i].load(std::memory_order_relaxed));
  }
  out += ",prefetch=" + std::to_string(prefetch_.load(std::memory_order_relaxed));
  out += "\n";
  return out;
}

std::vector<std::string> AccessProfiler::SelfCheck() const {
  std::vector<std::string> problems;
  struct Sums {
    std::uint64_t sampled = 0;
    std::uint64_t cold = 0;
    std::uint64_t revisits = 0;
  };
  Sums device_sum;
  Sums latency_sum;
  const auto audit = [&problems](const GroupState& g, const std::string& scope,
                                 Sums* sums) {
    const std::uint64_t sampled = g.sampled.load(std::memory_order_relaxed);
    const std::uint64_t cold = g.cold.load(std::memory_order_relaxed);
    const std::uint64_t revisits = g.epoch_revisits.load(std::memory_order_relaxed);
    std::uint64_t ladder_sum = 0;
    for (int i = 0; i <= kMrcPoints; ++i) {
      ladder_sum += g.ladder[i].load(std::memory_order_relaxed);
    }
    // Every sampled access lands in exactly one bucket: cold, or one ladder
    // entry (same-epoch retouch at distance 0, or a cross-epoch revisit).
    if (ladder_sum + cold != sampled) {
      problems.push_back(scope + ": ladder(" + std::to_string(ladder_sum) +
                         ") + cold(" + std::to_string(cold) + ") != sampled(" +
                         std::to_string(sampled) + ")");
    }
    // Every epoch-first touch is either the chunk's first ever (cold) or a
    // cross-epoch revisit, and lives in exactly one of open/closed.
    const std::uint64_t firsts = g.cum_closed.load(std::memory_order_relaxed) +
                                 g.open_first.load(std::memory_order_relaxed);
    if (cold + revisits != firsts) {
      problems.push_back(scope + ": cold(" + std::to_string(cold) + ") + revisits(" +
                         std::to_string(revisits) + ") != epoch-firsts(" +
                         std::to_string(firsts) + ")");
    }
    if (sums != nullptr) {
      sums->sampled += sampled;
      sums->cold += cold;
      sums->revisits += revisits;
    }
  };
  audit(*global_, "global", nullptr);
  for (std::uint32_t d = 0; d < kMaxDevices; ++d) {
    if (const GroupState* g = devices_[d].load(std::memory_order_acquire)) {
      audit(*g, DeviceScopeName(d), &device_sum);
    }
  }
  for (std::uint32_t c = 0; c < kMaxLatencyClasses; ++c) {
    audit(*latency_[c], LatencyScopeName(c), &latency_sum);
  }
  const std::uint64_t global_sampled = global_->sampled.load(std::memory_order_relaxed);
  const std::uint64_t global_cold = global_->cold.load(std::memory_order_relaxed);
  const std::uint64_t global_revisits =
      global_->epoch_revisits.load(std::memory_order_relaxed);
  const auto partition = [&problems, global_sampled, global_cold,
                          global_revisits](const Sums& s, const char* kind) {
    if (s.sampled != global_sampled || s.cold != global_cold ||
        s.revisits != global_revisits) {
      problems.push_back(std::string(kind) + " scopes do not partition global: " +
                         std::to_string(s.sampled) + "/" + std::to_string(s.cold) +
                         "/" + std::to_string(s.revisits) + " vs " +
                         std::to_string(global_sampled) + "/" +
                         std::to_string(global_cold) + "/" +
                         std::to_string(global_revisits));
    }
  };
  partition(device_sum, "device");
  partition(latency_sum, "latency");
  for (const MissRatioCurve& curve : Curves()) {
    if (curve.cold > curve.sampled) {
      problems.push_back(curve.scope + ": cold(" + std::to_string(curve.cold) +
                         ") > sampled(" + std::to_string(curve.sampled) + ")");
    }
    for (std::size_t i = 0; i < curve.miss_ratio.size(); ++i) {
      const double r = curve.miss_ratio[i];
      if (r < 0.0 || r > 1.0 ||
          (i > 0 && r > curve.miss_ratio[i - 1] + 1e-12)) {
        problems.push_back(curve.scope + ": miss ratio not in [0,1] or not "
                           "monotone non-increasing at point " + std::to_string(i));
        break;
      }
    }
  }
  return problems;
}

void AccessProfiler::PublishTo(Registry& registry) const {
  static constexpr int kLadderPoints[] = {4, 8, 12, 16};
  for (const MissRatioCurve& curve : Curves()) {
    if (HasPrefix(curve.scope, "latency:")) {
      continue;  // bounded cardinality: miss ratios per global + device only
    }
    registry
        .GetGauge("memaccess_sampled_accesses",
                  "Access profiler: spatially sampled accesses per scope",
                  {{"scope", curve.scope}})
        ->Set(static_cast<double>(curve.sampled));
    for (const int i : kLadderPoints) {
      registry
          .GetGauge("memaccess_miss_ratio",
                    "Access profiler: estimated miss ratio for a hypothetical "
                    "hot buffer of `size` bytes",
                    {{"scope", curve.scope},
                     {"size", std::to_string(curve.sizes[static_cast<std::size_t>(i)])}})
          ->Set(curve.miss_ratio[static_cast<std::size_t>(i)]);
    }
  }
  for (const WssStats& w : Wss()) {
    registry
        .GetGauge("memaccess_wss_window_bytes",
                  "Access profiler: unique bytes touched in the last closed "
                  "virtual-time window (SHARDS-scaled)",
                  {{"scope", w.scope}})
        ->Set(static_cast<double>(w.window_bytes));
    registry
        .GetGauge("memaccess_wss_smoothed_bytes",
                  "Access profiler: decayed working-set-size estimate",
                  {{"scope", w.scope}})
        ->Set(w.smoothed_bytes);
    registry
        .GetGauge("memaccess_wss_unique_bytes",
                  "Access profiler: distinct sampled footprint ever touched "
                  "(SHARDS-scaled)",
                  {{"scope", w.scope}})
        ->Set(static_cast<double>(w.unique_bytes));
  }
  for (int i = 0; i < kNumAccessPatterns; ++i) {
    registry
        .GetGauge("memaccess_pattern_accesses",
                  "Access profiler: accesses per detected pattern class",
                  {{"pattern",
                    std::string(AccessPatternName(static_cast<AccessPatternKind>(i)))}})
        ->Set(static_cast<double>(pattern_[i].load(std::memory_order_relaxed)));
  }
  registry
      .GetGauge("memaccess_prefetch_candidates",
                "Access profiler: predictable (sequential/strided) accesses "
                "that still paid full latency")
      ->Set(static_cast<double>(prefetch_.load(std::memory_order_relaxed)));
  registry
      .GetGauge("memaccess_dropped_samples",
                "Access profiler: sampled accesses dropped on chunk-table "
                "overflow (should be 0)")
      ->Set(static_cast<double>(dropped_.load(std::memory_order_relaxed)));

  // Spatial heat lanes for the three hottest regions (bounded cardinality:
  // 3 regions x kHeatBuckets series).
  std::vector<RegionAccessStats> regions = RegionStats();
  std::sort(regions.begin(), regions.end(),
            [](const RegionAccessStats& a, const RegionAccessStats& b) {
              if (a.hotness != b.hotness) {
                return a.hotness > b.hotness;
              }
              return a.region < b.region;
            });
  for (std::size_t r = 0; r < regions.size() && r < 3; ++r) {
    for (int b = 0; b < kHeatBuckets; ++b) {
      registry
          .GetGauge("memaccess_region_heat",
                    "Access profiler: bytes touched per 1/16th of a hot region",
                    {{"region", std::to_string(regions[r].region)},
                     {"bucket", std::to_string(b)}})
          ->Set(static_cast<double>(regions[r].heat[b]));
    }
  }
}

std::string AccessProfiler::RenderPanel() const {
  using memflow::FormatDouble;
  using memflow::HumanBytes;
  using memflow::TextTable;
  using memflow::WithThousands;

  std::string out = "== memory access profile ==\n";
  const std::uint64_t sampled = sampled_accesses();
  std::uint64_t total_pattern = 0;
  std::uint64_t pattern[kNumAccessPatterns];
  for (int i = 0; i < kNumAccessPatterns; ++i) {
    pattern[i] = pattern_[i].load(std::memory_order_relaxed);
    total_pattern += pattern[i];
  }
  out += "accesses " + WithThousands(total_pattern) + ", sampled " +
         WithThousands(sampled) + " (rate 1/" +
         std::to_string(std::uint64_t{1} << config_.sample_shift) + ", chunk " +
         HumanBytes(config_.chunk_bytes) + ", dropped " +
         WithThousands(dropped_samples()) + ")\n";
  out += "pattern mix:";
  for (int i = 0; i < kNumAccessPatterns; ++i) {
    const double share =
        total_pattern == 0
            ? 0.0
            : 100.0 * static_cast<double>(pattern[i]) / static_cast<double>(total_pattern);
    out += " " + std::string(AccessPatternName(static_cast<AccessPatternKind>(i))) +
           " " + FormatDouble(share, 1) + "%";
  }
  out += "  prefetch candidates " + WithThousands(prefetch_.load(std::memory_order_relaxed)) +
         "\n";

  {
    TextTable table({"Working set", "Window", "Smoothed", "Unique", "Windows"});
    for (const WssStats& w : Wss()) {
      table.AddRow({w.scope, HumanBytes(w.window_bytes),
                    HumanBytes(static_cast<std::uint64_t>(w.smoothed_bytes)),
                    HumanBytes(w.unique_bytes), WithThousands(w.windows)});
    }
    out += table.Render();
  }

  {
    static constexpr int kPanelPoints[] = {4, 8, 12, 16};
    std::vector<std::string> headers = {"Miss ratio", "Sampled"};
    const MissRatioCurve global = GlobalCurve();
    for (const int i : kPanelPoints) {
      headers.push_back(HumanBytes(global.sizes[static_cast<std::size_t>(i)]));
    }
    TextTable table(headers);
    for (const MissRatioCurve& curve : Curves()) {
      std::vector<std::string> row = {curve.scope, WithThousands(curve.sampled)};
      for (const int i : kPanelPoints) {
        row.push_back(curve.sampled == 0
                          ? "-"
                          : FormatDouble(
                                100.0 * curve.miss_ratio[static_cast<std::size_t>(i)],
                                1) + "%");
      }
      table.AddRow(row);
    }
    out += table.Render();
  }

  {
    std::vector<RegionAccessStats> regions = RegionStats();
    std::sort(regions.begin(), regions.end(),
              [](const RegionAccessStats& a, const RegionAccessStats& b) {
                if (a.hotness != b.hotness) {
                  return a.hotness > b.hotness;
                }
                return a.region < b.region;
              });
    TextTable table({"Region", "Size", "Accesses", "Bytes", "Hotness", "Pattern",
                     "Heat (16 buckets)"});
    static constexpr char kShades[] = " .:-=+*#%@";
    for (std::size_t r = 0; r < regions.size() && r < 8; ++r) {
      const RegionAccessStats& stats = regions[r];
      std::uint64_t peak = 1;
      for (const std::uint64_t h : stats.heat) {
        peak = std::max(peak, h);
      }
      std::string heat(kHeatBuckets, ' ');
      for (int b = 0; b < kHeatBuckets; ++b) {
        heat[static_cast<std::size_t>(b)] =
            kShades[stats.heat[b] * 9 / peak];
      }
      int dominant = 0;
      for (int i = 1; i < kNumAccessPatterns; ++i) {
        if (stats.pattern[i] > stats.pattern[dominant]) {
          dominant = i;
        }
      }
      table.AddRow({"r" + std::to_string(stats.region), HumanBytes(stats.size),
                    WithThousands(stats.accesses), HumanBytes(stats.bytes),
                    WithThousands(stats.hotness),
                    std::string(AccessPatternName(static_cast<AccessPatternKind>(dominant))),
                    "[" + heat + "]"});
    }
    out += table.Render();
  }
  return out;
}

}  // namespace memflow::telemetry
