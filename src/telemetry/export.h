// Copyright (c) memflow authors. MIT license.
//
// Machine-readable exports of the telemetry substrate:
//  - MetricsSnapshot::ToPrometheus() / ToJson() (declared in metrics.h),
//  - Chrome/Perfetto trace JSON built from the shared event stream, with
//    async flow arrows linking producer -> consumer task handovers,
//  - a cross-job aggregate text view of the event stream.

#ifndef MEMFLOW_TELEMETRY_EXPORT_H_
#define MEMFLOW_TELEMETRY_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace memflow::telemetry {

// Renders the buffered events as Chrome trace-event JSON (chrome://tracing /
// Perfetto). `job` != 0 keeps only that job's events (plus the flows between
// its tasks); 0 exports everything, including job-unscoped events such as
// migrations. Tracks named via TraceBuffer::SetTrackName become thread lanes.
std::string ExportTraceJson(const TraceBuffer& tracer, std::uint32_t job = 0,
                            std::string_view process_name = "memflow");

// Cross-job aggregate view: per-category span counts/total durations and
// per-job event counts, plus ring-buffer health (dropped events).
std::string RenderTraceSummary(const TraceBuffer& tracer);

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_EXPORT_H_
