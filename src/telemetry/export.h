// Copyright (c) memflow authors. MIT license.
//
// Machine-readable exports of the telemetry substrate:
//  - MetricsSnapshot::ToPrometheus() / ToJson() (declared in metrics.h),
//  - Chrome/Perfetto trace JSON built from the shared event stream, with
//    async flow arrows linking producer -> consumer task handovers,
//  - a cross-job aggregate text view of the event stream.

#ifndef MEMFLOW_TELEMETRY_EXPORT_H_
#define MEMFLOW_TELEMETRY_EXPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace memflow::telemetry {

struct TraceExportOptions {
  // != 0 keeps only that job's events (plus the flows between its tasks).
  std::uint32_t job = 0;
  std::string process_name = "memflow";
  // When set, events for which this returns true are highlighted in the
  // rendered trace (colored + tagged `"critical":true`). The critical-path
  // analyzer (telemetry/analyze) uses this to light up the path that bounds
  // a job's makespan.
  std::function<bool(const TraceEvent&)> highlight;
};

// Renders the buffered events as Chrome trace-event JSON (chrome://tracing /
// Perfetto). `job` != 0 keeps only that job's events (plus the flows between
// its tasks); 0 exports everything, including job-unscoped events such as
// migrations. Tracks named via TraceBuffer::SetTrackName become thread lanes.
std::string ExportTraceJson(const TraceBuffer& tracer, std::uint32_t job = 0,
                            std::string_view process_name = "memflow");
std::string ExportTraceJson(const TraceBuffer& tracer, const TraceExportOptions& options);

// Cross-job aggregate view: per-category span counts/total durations and
// per-job event counts, plus ring-buffer health (dropped events). When the
// ring has wrapped, the summary leads with a WARNING banner and a per-track
// dropped table instead of silently aggregating a truncated stream.
std::string RenderTraceSummary(const TraceBuffer& tracer);

// Same summary, plus WARNING lines for metric families that hit their series
// cap and collapsed into `{overflow="true"}` — the two ways the telemetry
// substrate silently degrades (ring wrap, cardinality cap) surfaced in one
// place. Pass the snapshot the caller already took; nullptr skips the check.
std::string RenderTraceSummary(const TraceBuffer& tracer, const MetricsSnapshot* metrics);

// Publishes ring-buffer health into `registry` as gauges so the Prometheus /
// JSON metric exports carry it: `trace_buffer_events_dropped` per track
// (label `track`) plus unlabeled totals for emitted/buffered/dropped. Call
// before Registry::Snapshot(); gauges overwrite, so repeat calls are cheap.
void PublishTraceHealth(const TraceBuffer& tracer, Registry& registry);

}  // namespace memflow::telemetry

#endif  // MEMFLOW_TELEMETRY_EXPORT_H_
