// Copyright (c) memflow authors. MIT license.
//
// Static ownership & property verifier for job DAGs — a "borrow checker" for
// the declarative programming model. The paper's safety claim (§2.2, Figure 4)
// is that every memory chunk is exclusively owned and handed over by transfer,
// not copy; those invariants are checkable *before* execution from the DAG
// alone. Verify() abstract-interprets chunk ownership states along the
// topological order and cross-checks declared task/edge properties, producing
// structured diagnostics the runtime gates admission on.
//
// Three integration layers:
//   1. Library:   analysis::Verify(job[, cluster]) -> Report.
//   2. Admission: rts::Runtime runs Verify() before planning (VerifyMode).
//   3. Execution: accessors assert the statically computed ownership states,
//      so the analyzer and the executor validate each other.

#ifndef MEMFLOW_ANALYSIS_VERIFIER_H_
#define MEMFLOW_ANALYSIS_VERIFIER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/concurrency.h"
#include "dataflow/job.h"
#include "region/region.h"
#include "simhw/cluster.h"

namespace memflow::analysis {

enum class Severity : std::uint8_t {
  kNote,     // informational
  kWarning,  // suspicious but admissible
  kError,    // violates an invariant; admission rejects the job
};

std::string_view SeverityName(Severity s);

// Stable rule identifiers (the rule catalog lives in DESIGN.md).
// Ownership dataflow rules.
inline constexpr std::string_view kRuleUseAfterTransfer = "own-use-after-transfer";
inline constexpr std::string_view kRuleDoubleTransfer = "own-double-transfer";
inline constexpr std::string_view kRuleLeakedOutput = "own-leaked-output";
inline constexpr std::string_view kRuleWriteSharedInput = "own-write-shared-input";
// Property-consistency rules.
inline constexpr std::string_view kRuleConfidentialityDowngrade =
    "prop-confidential-downgrade";
inline constexpr std::string_view kRulePersistentLatency = "prop-persistent-latency";
// Placement-feasibility rules (require a cluster).
inline constexpr std::string_view kRuleUnsatisfiableCompute = "place-unsatisfiable-compute";
inline constexpr std::string_view kRuleUnsatisfiableMemory = "place-unsatisfiable-memory";
// Graph-shape rules beyond Job::Validate().
inline constexpr std::string_view kRuleDeadTask = "graph-dead-task";
// May-happen-in-parallel rules (concurrency.h): conflicts between task pairs
// the DAG leaves unordered.
inline constexpr std::string_view kRuleMhpWriteWriteRace = "mhp-write-write-race";
inline constexpr std::string_view kRuleMhpWriteReadRace = "mhp-write-read-race";
inline constexpr std::string_view kRuleMhpTransferRace = "mhp-transfer-race";
inline constexpr std::string_view kRuleMhpSerialized = "mhp-serialized";
// Capacity-feasibility rules (require a cluster): symbolic peak-bytes bounds
// cross-checked against device capacities.
inline constexpr std::string_view kRuleCapUnplaceable = "cap-unplaceable";
inline constexpr std::string_view kRuleCapOvercommit = "cap-overcommit";
inline constexpr std::string_view kRuleCapFragile = "cap-fragile";

// One catalog entry: the stable id, the (worst) severity the rule emits, and
// a one-line summary. The catalog is the source the regression test checks
// against DESIGN.md §6.1 — adding a rule without docs fails that test.
struct RuleInfo {
  std::string_view id;
  Severity severity;
  std::string_view summary;
};
const std::vector<RuleInfo>& RuleCatalog();

// One finding: severity, stable rule id, location (task, and the edge peer
// for edge-scoped rules), human message, and a fix-it hint.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string_view rule;
  dataflow::TaskId task;
  std::optional<dataflow::TaskId> other;  // edge peer, if edge-scoped
  std::string message;
  std::string hint;

  // e.g. "error[own-double-transfer] task 2 -> 3: ... (hint: ...)"
  std::string ToString() const;
};

// Statically computed ownership state of one delivered input, used by the
// runtime cross-check: when `task` runs, the region produced by `producer`
// must be in `state`.
struct ExpectedInput {
  dataflow::TaskId task;
  dataflow::TaskId producer;
  region::OwnershipState state = region::OwnershipState::kExclusive;
};

class Report {
 public:
  void Add(Diagnostic diag) { diagnostics_.push_back(std::move(diag)); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int errors() const;
  int warnings() const;
  bool ok() const { return errors() == 0; }

  bool HasRule(std::string_view rule) const;

  // All findings, one line each.
  std::string ToString() const;
  // Compact one-liner for Status messages: first error + counts.
  std::string Summary() const;

  // Cross-check data consumed by the runtime (empty for invalid jobs).
  const std::vector<ExpectedInput>& expected_inputs() const { return expected_inputs_; }
  std::optional<region::OwnershipState> ExpectedStateOf(dataflow::TaskId task,
                                                        dataflow::TaskId producer) const;

  // The static MHP relation (num_tasks == 0 for invalid jobs) — the executor
  // cross-checks every observed concurrent pair against it.
  const MhpSummary& mhp() const { return mhp_; }
  // Symbolic peak-memory bounds (computed == false without a cluster) — the
  // sim-mhp oracle checks observed per-device peaks against them.
  const CapacityBound& capacity() const { return capacity_; }

 private:
  friend Report Verify(const dataflow::Job&, const simhw::Cluster*,
                       const struct VerifyOptions&);

  std::vector<Diagnostic> diagnostics_;
  std::vector<ExpectedInput> expected_inputs_;
  MhpSummary mhp_;
  CapacityBound capacity_;
};

struct VerifyOptions {
  // Mirror of region::PlacementConfig::allow_latency_relax: when the manager
  // may spill to a slower tier, an unsatisfiable latency class is not fatal.
  bool allow_latency_relax = false;
};

// Graph, ownership and property passes only.
Report Verify(const dataflow::Job& job, const VerifyOptions& options = {});

// All passes including placement feasibility against `cluster`. A null
// cluster skips the placement pass (same as the overload above).
Report Verify(const dataflow::Job& job, const simhw::Cluster* cluster,
              const VerifyOptions& options = {});

}  // namespace memflow::analysis

#endif  // MEMFLOW_ANALYSIS_VERIFIER_H_
