// Copyright (c) memflow authors. MIT license.

#include "analysis/concurrency.h"

#include <algorithm>
#include <queue>

namespace memflow::analysis {

namespace {

using dataflow::Job;
using dataflow::TaskId;
using dataflow::TaskProperties;

// --- min-flow max-weight antichain -------------------------------------------------
//
// Dilworth-style reduction: split every element v into v_in -> v_out with a
// flow lower bound of weight(v); wire s -> v_in, v_out -> t, and
// u_out -> v_in for u < v. Any feasible flow decomposes into chains, and the
// minimum feasible flow equals the maximum total weight any antichain can
// carry (weighted mirror of "minimum chain cover = maximum antichain").
// Min flow = F0 - maxflow(t -> s over the residual of the trivial feasible
// flow F0 that routes each weight through its own element.

struct FlowEdge {
  int to;
  std::uint64_t cap;  // residual capacity
  std::size_t rev;    // index of the paired reverse edge in adj[to]
};

class FlowGraph {
 public:
  explicit FlowGraph(int n) : adj_(static_cast<std::size_t>(n)) {}

  void AddEdge(int u, int v, std::uint64_t cap_uv, std::uint64_t cap_vu) {
    adj_[u].push_back({v, cap_uv, adj_[v].size()});
    adj_[v].push_back({u, cap_vu, adj_[u].size() - 1});
  }

  // Edmonds-Karp: BFS augmenting paths, polynomial in nodes/edges regardless
  // of capacity magnitudes (weights are byte counts).
  std::uint64_t MaxFlow(int s, int t) {
    std::uint64_t total = 0;
    while (true) {
      std::vector<std::pair<int, std::size_t>> parent(adj_.size(), {-1, 0});
      parent[s] = {s, 0};
      std::queue<int> q;
      q.push(s);
      while (!q.empty() && parent[t].first < 0) {
        const int u = q.front();
        q.pop();
        for (std::size_t i = 0; i < adj_[u].size(); ++i) {
          const FlowEdge& e = adj_[u][i];
          if (e.cap > 0 && parent[e.to].first < 0) {
            parent[e.to] = {u, i};
            q.push(e.to);
          }
        }
      }
      if (parent[t].first < 0) {
        return total;
      }
      std::uint64_t push = ~0ULL;
      for (int v = t; v != s;) {
        const auto [u, i] = parent[v];
        push = std::min(push, adj_[u][i].cap);
        v = u;
      }
      for (int v = t; v != s;) {
        const auto [u, i] = parent[v];
        FlowEdge& e = adj_[u][i];
        e.cap -= push;
        adj_[e.to][e.rev].cap += push;
        v = u;
      }
      total += push;
    }
  }

 private:
  std::vector<std::vector<FlowEdge>> adj_;
};

std::uint64_t RoundUpTo(std::uint64_t size, std::uint64_t granularity) {
  return (size + granularity - 1) / granularity * granularity;
}

// Permissive candidate test: could the region manager ever place a request
// with `props` on device `m`? Latency is relaxed to kAny (the manager may
// spill-relax one step, and after faults tasks re-place onto other
// observers), every compute device is a potential observer, and failed-ness
// is ignored (devices recover on the fault timeline). Over-approximating the
// candidate set only raises the per-device bound, which keeps it sound.
bool CouldPlaceOn(const simhw::Cluster& cluster, simhw::MemoryDeviceId m,
                  region::Properties props) {
  props.latency = region::LatencyClass::kAny;
  for (const simhw::ComputeDeviceId c : cluster.AllComputeDevices()) {
    const auto view = cluster.View(c, m);
    if (view.ok() && Satisfies(*view, props)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool JobParallelSafe(const Job& job) {
  if (job.options().global_state_bytes > 0 || job.options().global_scratch_bytes > 0) {
    return false;
  }
  for (std::size_t i = 0; i < job.num_tasks(); ++i) {
    const auto t = TaskId(static_cast<std::uint32_t>(i));
    for (const TaskId s : job.successors(t)) {
      if (job.edge_options(t, s).writes_input) {
        return false;
      }
    }
  }
  return true;
}

std::size_t MhpSummary::UnorderedPairCount() const {
  std::size_t count = 0;
  for (std::uint32_t a = 0; a < num_tasks; ++a) {
    for (std::uint32_t b = a + 1; b < num_tasks; ++b) {
      if (Unordered(TaskId(a), TaskId(b))) {
        ++count;
      }
    }
  }
  return count;
}

MhpSummary ComputeMhp(const Job& job) {
  MhpSummary mhp;
  mhp.num_tasks = static_cast<std::uint32_t>(job.num_tasks());
  mhp.parallel_safe = JobParallelSafe(job);
  const std::size_t n = job.num_tasks();
  mhp.reach.assign(n * n, false);

  // Strict transitive closure: walk the topological order backwards; each
  // task reaches its successors and everything they reach.
  const std::vector<TaskId> order = job.TopologicalOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId u = *it;
    const std::size_t row = static_cast<std::size_t>(u.value) * n;
    for (const TaskId v : job.successors(u)) {
      mhp.reach[row + v.value] = true;
      const std::size_t vrow = static_cast<std::size_t>(v.value) * n;
      for (std::size_t k = 0; k < n; ++k) {
        if (mhp.reach[vrow + k]) {
          mhp.reach[row + k] = true;
        }
      }
    }
  }
  return mhp;
}

std::uint64_t EstimatedOutputBytes(const TaskProperties& props, std::uint64_t input_bytes) {
  return props.output_bytes +
         static_cast<std::uint64_t>(props.output_bytes_per_input_byte *
                                    static_cast<double>(input_bytes));
}

std::uint64_t EstimatedScratchBytes(const TaskProperties& props, std::uint64_t input_bytes) {
  return props.scratch_bytes +
         static_cast<std::uint64_t>(props.scratch_bytes_per_input_byte *
                                    static_cast<double>(input_bytes));
}

region::Properties ScratchRequestProps(const TaskProperties& props) {
  region::Properties p = region::Properties::PrivateScratch();
  if (props.mem_latency != region::LatencyClass::kAny) {
    p.latency = props.mem_latency;
  }
  p.confidential = props.confidential;
  return p;
}

region::Properties OutputRequestProps(const TaskProperties& props) {
  region::Properties p;
  p.latency = props.persistent ? region::LatencyClass::kAny : props.mem_latency;
  p.persistent = props.persistent;
  p.confidential = props.confidential;
  return p;
}

std::uint64_t MaxWeightAntichain(const std::vector<std::vector<bool>>& strictly_before,
                                 const std::vector<std::uint64_t>& weights) {
  // Elements with zero weight cannot contribute; drop them (they also cannot
  // help chains, since flow through them has no lower bound).
  std::vector<int> keep;
  std::uint64_t f0 = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) {
      keep.push_back(static_cast<int>(i));
      f0 += weights[i];
    }
  }
  if (keep.size() <= 1) {
    return f0;
  }

  const std::uint64_t inf = ~0ULL / 2;
  const int m = static_cast<int>(keep.size());
  const int s = 0;
  const int t = 1;
  const auto in_node = [](int i) { return 2 + 2 * i; };
  const auto out_node = [](int i) { return 3 + 2 * i; };
  FlowGraph g(2 + 2 * m);
  for (int i = 0; i < m; ++i) {
    const std::uint64_t w = weights[static_cast<std::size_t>(keep[i])];
    // Residuals of the trivial feasible flow (each weight routed through its
    // own element): backward residuals expose exactly the flow that the
    // t -> s max-flow below may cancel — except across the lower bound.
    g.AddEdge(s, in_node(i), inf, w);
    g.AddEdge(in_node(i), out_node(i), inf, 0);
    g.AddEdge(out_node(i), t, inf, w);
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i != j && strictly_before[static_cast<std::size_t>(keep[i])]
                                   [static_cast<std::size_t>(keep[j])]) {
        g.AddEdge(out_node(i), in_node(j), inf, 0);
      }
    }
  }
  return f0 - g.MaxFlow(t, s);
}

CapacityBound ComputeCapacityBound(const Job& job, const simhw::Cluster& cluster,
                                   const MhpSummary& mhp) {
  CapacityBound bound;
  bound.computed = true;

  // Input-size estimates propagate forward exactly like Runtime::Plan.
  const std::size_t n = job.num_tasks();
  std::vector<std::uint64_t> est_input(n, 0);
  for (const TaskId t : job.TopologicalOrder()) {
    std::uint64_t est = 0;
    for (const TaskId p : job.DataPredecessors(t)) {
      est += EstimatedOutputBytes(job.task(p).props, est_input[p.value]);
    }
    est_input[t.value] = est;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto t = TaskId(static_cast<std::uint32_t>(i));
    const TaskProperties& props = job.task(t).props;
    const std::uint64_t out_bytes = EstimatedOutputBytes(props, est_input[i]);
    if (out_bytes > 0) {
      bound.demands.push_back(
          {RegionDemand::Kind::kOutput, t, out_bytes, OutputRequestProps(props)});
    }
    const std::uint64_t scratch_bytes = EstimatedScratchBytes(props, est_input[i]);
    if (scratch_bytes > 0) {
      bound.demands.push_back(
          {RegionDemand::Kind::kScratch, t, scratch_bytes, ScratchRequestProps(props)});
    }
  }
  const dataflow::JobOptions& jopts = job.options();
  if (jopts.global_state_bytes > 0) {
    region::Properties p = region::Properties::GlobalState();
    p.confidential = jopts.confidential;
    bound.demands.push_back({RegionDemand::Kind::kGlobalState, dataflow::TaskId{},
                             jopts.global_state_bytes, p});
  }
  if (jopts.global_scratch_bytes > 0) {
    region::Properties p = region::Properties::GlobalScratch();
    p.confidential = jopts.confidential;
    bound.demands.push_back({RegionDemand::Kind::kGlobalScratch, dataflow::TaskId{},
                             jopts.global_scratch_bytes, p});
  }

  // Lifetime poset over the task-anchored demands. A demand is born when its
  // task starts; a scratch dies at its task's completion, an output when its
  // last data consumer completes (a sink output is retained until teardown
  // and never dies). Inputs are released at the consumer's completion event,
  // *before* successors are enqueued, so strict happens-before of every
  // end-task separates two lifetimes under any schedule.
  const std::size_t d = bound.demands.size();
  std::vector<std::vector<bool>> before(d, std::vector<bool>(d, false));
  std::vector<std::vector<TaskId>> ends(d);
  for (std::size_t i = 0; i < d; ++i) {
    const RegionDemand& dem = bound.demands[i];
    if (dem.kind == RegionDemand::Kind::kScratch) {
      ends[i] = {dem.task};
    } else if (dem.kind == RegionDemand::Kind::kOutput) {
      ends[i] = job.DataSuccessors(dem.task);  // empty = retained, never dies
    }
    // Globals live for the whole job: ends[i] stays empty and they are kept
    // out of the antichain below (added unconditionally instead).
  }
  for (std::size_t i = 0; i < d; ++i) {
    if (ends[i].empty()) {
      continue;
    }
    for (std::size_t j = 0; j < d; ++j) {
      if (i == j || !bound.demands[j].task.valid()) {
        continue;
      }
      bool all = true;
      for (const TaskId c : ends[i]) {
        all = all && mhp.Reaches(c, bound.demands[j].task);
      }
      before[i][j] = all;
    }
  }

  std::uint64_t global_bytes = 0;
  std::vector<std::uint64_t> weights(d, 0);
  for (std::size_t i = 0; i < d; ++i) {
    if (bound.demands[i].task.valid()) {
      weights[i] = bound.demands[i].bytes;
    } else {
      global_bytes += bound.demands[i].bytes;
    }
  }
  bound.peak_concurrent_bytes = MaxWeightAntichain(before, weights) + global_bytes;

  // Per-device bound: weight each demand by its granularity-rounded size on
  // the devices it could ever be placed on, zero elsewhere.
  std::uint32_t max_id = 0;
  for (const simhw::MemoryDeviceId m : cluster.AllMemoryDevices()) {
    max_id = std::max(max_id, m.value);
  }
  bound.peak_device_bytes.assign(cluster.num_memory_devices() == 0 ? 0 : max_id + 1, 0);
  for (const simhw::MemoryDeviceId m : cluster.AllMemoryDevices()) {
    const simhw::MemoryDevice& dev = cluster.memory(m);
    if (!dev.profile().allocatable) {
      continue;
    }
    bound.total_capacity_bytes += dev.capacity();
    const std::uint64_t gran = dev.profile().granularity;
    std::uint64_t device_globals = 0;
    std::vector<std::uint64_t> w(d, 0);
    for (std::size_t i = 0; i < d; ++i) {
      if (!CouldPlaceOn(cluster, m, bound.demands[i].props)) {
        continue;
      }
      if (bound.demands[i].task.valid()) {
        w[i] = RoundUpTo(bound.demands[i].bytes, gran);
      } else {
        device_globals += RoundUpTo(bound.demands[i].bytes, gran);
      }
    }
    bound.peak_device_bytes[m.value] = MaxWeightAntichain(before, w) + device_globals;
  }
  return bound;
}

}  // namespace memflow::analysis
