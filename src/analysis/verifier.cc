// Copyright (c) memflow authors. MIT license.

#include "analysis/verifier.h"

#include <algorithm>

#include "region/properties.h"

namespace memflow::analysis {

namespace {

using dataflow::EdgeMode;
using dataflow::Job;
using dataflow::TaskId;
using dataflow::TaskProperties;

std::string TaskRef(const Job& job, TaskId id) {
  return "task '" + job.task(id).name + "' (#" + std::to_string(id.value) + ")";
}

bool DeclaresOutput(const TaskProperties& props) {
  return props.output_bytes > 0 || props.output_bytes_per_input_byte > 0.0;
}

// The region properties the task's private scratch / output allocations will
// request, mirroring TaskContext::ScratchProperties / OutputProperties so the
// static feasibility check and the executor agree.
region::Properties ScratchPropsOf(const TaskProperties& props) {
  region::Properties p = region::Properties::PrivateScratch();
  if (props.mem_latency != region::LatencyClass::kAny) {
    p.latency = props.mem_latency;
  }
  p.confidential = props.confidential;
  return p;
}

region::Properties OutputPropsOf(const TaskProperties& props) {
  region::Properties p;
  p.latency = props.persistent ? region::LatencyClass::kAny : props.mem_latency;
  p.persistent = props.persistent;
  p.confidential = props.confidential;
  return p;
}

// --- ownership dataflow pass -------------------------------------------------------
//
// Abstract interpretation of chunk ownership along the topological order.
// Each producer's output chunk starts Exclusive(producer); its data edges
// determine the handover: one kAuto/kMove edge moves it, a kShare edge or
// fan-out shares it, no data edge retains it with the job. A move consumes
// the chunk — any other data edge observes it after transfer.
void OwnershipPass(const Job& job, Report& report,
                   std::vector<ExpectedInput>& expected) {
  for (const TaskId producer : job.TopologicalOrder()) {
    const std::vector<TaskId> data_succs = job.DataSuccessors(producer);
    const auto& all_succs = job.successors(producer);

    std::vector<TaskId> moves;
    for (const TaskId c : data_succs) {
      if (job.edge_options(producer, c).mode == EdgeMode::kMove) {
        moves.push_back(c);
      }
    }

    // Double-transfer: two sibling edges both demand exclusive ownership of
    // the same chunk. The first move wins; every later one is a violation.
    for (std::size_t i = 1; i < moves.size(); ++i) {
      report.Add(Diagnostic{
          Severity::kError, kRuleDoubleTransfer, producer, moves[i],
          "output of " + TaskRef(job, producer) + " is moved twice: to " +
              TaskRef(job, moves[0]) + " and again to " + TaskRef(job, moves[i]),
          "keep one move edge; demote the others to EdgeMode::kShare or kAuto"});
    }

    // Use-after-transfer: the chunk was moved to one consumer, but another
    // data edge still expects to read it.
    if (!moves.empty() && data_succs.size() > moves.size()) {
      for (const TaskId c : data_succs) {
        if (job.edge_options(producer, c).mode != EdgeMode::kMove) {
          report.Add(Diagnostic{
              Severity::kError, kRuleUseAfterTransfer, producer, c,
              TaskRef(job, c) + " reads the output of " + TaskRef(job, producer) +
                  " after its ownership was moved to " + TaskRef(job, moves[0]),
              "share the output (EdgeMode::kShare / kAuto on every edge) or "
              "drop the exclusive move"});
        }
      }
    }

    // The delivery the executor will perform (HandoverOutput): exclusive
    // transfer to a sole kAuto/kMove consumer, shared otherwise.
    const bool shared_delivery =
        data_succs.size() > 1 ||
        (data_succs.size() == 1 &&
         job.edge_options(producer, data_succs.front()).mode == EdgeMode::kShare);
    for (const TaskId c : data_succs) {
      expected.push_back(ExpectedInput{
          c, producer,
          shared_delivery ? region::OwnershipState::kShared
                          : region::OwnershipState::kExclusive});
    }

    // Writes through a shared input: relaxed-ordering writes to a chunk with
    // multiple concurrent owners (§2.2(2) forbids it without coherence, and
    // sibling readers observe torn data regardless).
    for (const TaskId c : data_succs) {
      if (job.edge_options(producer, c).writes_input && shared_delivery) {
        report.Add(Diagnostic{
            Severity::kError, kRuleWriteSharedInput, c, producer,
            TaskRef(job, c) + " declares in-place writes to the output of " +
                TaskRef(job, producer) + ", which is delivered as a shared region",
            "make the writer the sole consumer (EdgeMode::kMove) or have it "
            "copy into its own scratch before writing"});
      }
    }

    // Leaked output: the task declares it produces data, is ordered before
    // other tasks, yet no edge consumes the chunk — it sits untouched until
    // job teardown. (Sink outputs are the job's declared results and are
    // retained for the submitter, so plain sinks are not flagged.)
    if (DeclaresOutput(job.task(producer).props) && !all_succs.empty() &&
        data_succs.empty() && !job.task(producer).props.persistent) {
      report.Add(Diagnostic{
          Severity::kWarning, kRuleLeakedOutput, producer, std::nullopt,
          "output of " + TaskRef(job, producer) +
              " is never consumed: every outgoing edge is control-only, so the "
              "chunk is leaked until job teardown",
          "make one edge data-carrying, mark the task persistent, or drop the "
          "declared output size"});
    }
  }
}

// --- property-consistency pass -----------------------------------------------------

void PropertyPass(const Job& job, Report& report) {
  for (const TaskId producer : job.TopologicalOrder()) {
    const TaskProperties& pp = job.task(producer).props;
    for (const TaskId consumer : job.DataSuccessors(producer)) {
      const TaskProperties& cp = job.task(consumer).props;

      // Confidential data flowing into a task whose own regions are not
      // encrypted/isolated is a downgrade, unless the consumer declares it
      // emits only non-sensitive derived data.
      if (pp.confidential && !cp.confidential && !cp.declassifies) {
        report.Add(Diagnostic{
            Severity::kError, kRuleConfidentialityDowngrade, consumer, producer,
            "confidential output of " + TaskRef(job, producer) +
                " flows into non-confidential " + TaskRef(job, consumer),
            "mark the consumer confidential, or set declassifies=true if it "
            "derives only non-sensitive data"});
      }

      // A persistent producer's output lives on persistent media, which no
      // low-latency class covers; the consumer's demand cannot be met on its
      // input path.
      if (pp.persistent && cp.mem_latency == region::LatencyClass::kLow) {
        report.Add(Diagnostic{
            Severity::kWarning, kRulePersistentLatency, consumer, producer,
            TaskRef(job, consumer) + " demands low-latency memory but consumes "
                "the persistent output of " + TaskRef(job, producer) +
                ", which lives on slow persistent media",
            "relax the consumer's mem_latency, or drop `persistent` on the "
            "producer and checkpoint its output instead"});
      }
    }
  }
}

// --- graph-shape pass --------------------------------------------------------------

void GraphPass(const Job& job, Report& report) {
  if (job.num_tasks() < 2) {
    return;
  }
  for (std::uint32_t i = 0; i < job.num_tasks(); ++i) {
    const TaskId t(i);
    if (job.predecessors(t).empty() && job.successors(t).empty()) {
      report.Add(Diagnostic{
          Severity::kWarning, kRuleDeadTask, t, std::nullopt,
          TaskRef(job, t) + " is disconnected from the rest of the job DAG",
          "connect it with an edge (kControl for pure ordering) or submit it "
          "as its own job"});
    }
  }
}

// --- placement-feasibility pass ----------------------------------------------------

bool AnyViewSatisfies(const simhw::Cluster& cluster,
                      const std::vector<simhw::ComputeDeviceId>& observers,
                      const region::Properties& props) {
  for (const simhw::ComputeDeviceId c : observers) {
    for (const simhw::MemoryDeviceId m : cluster.AllMemoryDevices()) {
      const simhw::MemoryDevice& mem = cluster.memory(m);
      if (mem.failed() || !mem.profile().allocatable) {
        continue;
      }
      auto view = cluster.View(c, m);
      if (view.ok() && Satisfies(*view, props)) {
        return true;
      }
    }
  }
  return false;
}

void PlacementPass(const Job& job, const simhw::Cluster& cluster,
                   const VerifyOptions& options, Report& report) {
  for (std::uint32_t i = 0; i < job.num_tasks(); ++i) {
    const TaskId t(i);
    const TaskProperties& props = job.task(t).props;

    std::vector<simhw::ComputeDeviceId> eligible;
    bool kind_exists = false;
    for (const simhw::ComputeDeviceId c : cluster.AllComputeDevices()) {
      const simhw::ComputeDevice& dev = cluster.compute(c);
      if (props.compute_device.has_value() && dev.kind() != *props.compute_device) {
        continue;
      }
      kind_exists = true;
      if (!dev.failed()) {
        eligible.push_back(c);
      }
    }
    if (eligible.empty()) {
      const std::string demand =
          props.compute_device.has_value()
              ? "a " + std::string(simhw::ComputeDeviceKindName(*props.compute_device))
              : "any compute device";
      report.Add(Diagnostic{
          Severity::kError, kRuleUnsatisfiableCompute, t, std::nullopt,
          TaskRef(job, t) + " requires " + demand +
              (kind_exists ? ", but every matching device has failed"
                           : ", but the cluster has none"),
          "relax the compute_device requirement or target a cluster that "
          "provides the device"});
      continue;  // memory feasibility is meaningless with nowhere to run
    }

    // Would the task's scratch / output allocation requests resolve to any
    // device at all, from at least one eligible observer? Capacity is a
    // runtime concern; this checks the topology, like the RegionManager's
    // device ranking with infinite free space.
    for (region::Properties want : {ScratchPropsOf(props), OutputPropsOf(props)}) {
      if (options.allow_latency_relax) {
        want.latency = region::LatencyClass::kAny;  // manager would spill-relax
      }
      if (!AnyViewSatisfies(cluster, eligible, want)) {
        report.Add(Diagnostic{
            Severity::kError, kRuleUnsatisfiableMemory, t, std::nullopt,
            "no memory device satisfies " + want.ToString() + " from any device " +
                TaskRef(job, t) + " may run on",
            "relax mem_latency / persistent, or add a satisfying memory device "
            "to the cluster"});
        break;  // one diagnostic per task is enough
      }
    }
  }
}

}  // namespace

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out(SeverityName(severity));
  out += "[";
  out += rule;
  out += "] ";
  out += message;
  if (!hint.empty()) {
    out += " (fix: " + hint + ")";
  }
  return out;
}

int Report::errors() const {
  return static_cast<int>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

int Report::warnings() const {
  return static_cast<int>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

bool Report::HasRule(std::string_view rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string Report::Summary() const {
  std::string out = std::to_string(errors()) + " error(s), " +
                    std::to_string(warnings()) + " warning(s)";
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      out += "; first: " + d.ToString();
      break;
    }
  }
  return out;
}

std::optional<region::OwnershipState> Report::ExpectedStateOf(
    dataflow::TaskId task, dataflow::TaskId producer) const {
  for (const ExpectedInput& e : expected_inputs_) {
    if (e.task == task && e.producer == producer) {
      return e.state;
    }
  }
  return std::nullopt;
}

Report Verify(const dataflow::Job& job, const simhw::Cluster* cluster,
              const VerifyOptions& options) {
  Report report;
  // The analyses below assume a well-formed acyclic DAG; Job::Validate()
  // already rejects anything else at submission, so just bail.
  if (!job.Validate().ok()) {
    return report;
  }
  OwnershipPass(job, report, report.expected_inputs_);
  PropertyPass(job, report);
  GraphPass(job, report);
  if (cluster != nullptr) {
    PlacementPass(job, *cluster, options, report);
  }
  return report;
}

Report Verify(const dataflow::Job& job, const VerifyOptions& options) {
  return Verify(job, nullptr, options);
}

}  // namespace memflow::analysis
