// Copyright (c) memflow authors. MIT license.

#include "analysis/verifier.h"

#include <algorithm>

#include "region/properties.h"

namespace memflow::analysis {

namespace {

using dataflow::EdgeMode;
using dataflow::Job;
using dataflow::TaskId;
using dataflow::TaskProperties;

std::string TaskRef(const Job& job, TaskId id) {
  return "task '" + job.task(id).name + "' (#" + std::to_string(id.value) + ")";
}

bool DeclaresOutput(const TaskProperties& props) {
  return props.output_bytes > 0 || props.output_bytes_per_input_byte > 0.0;
}

// --- ownership dataflow pass -------------------------------------------------------
//
// Abstract interpretation of chunk ownership along the topological order.
// Each producer's output chunk starts Exclusive(producer); its data edges
// determine the handover: one kAuto/kMove edge moves it, a kShare edge or
// fan-out shares it, no data edge retains it with the job. A move consumes
// the chunk — any other data edge observes it after transfer.
void OwnershipPass(const Job& job, Report& report,
                   std::vector<ExpectedInput>& expected) {
  for (const TaskId producer : job.TopologicalOrder()) {
    const std::vector<TaskId> data_succs = job.DataSuccessors(producer);
    const auto& all_succs = job.successors(producer);

    std::vector<TaskId> moves;
    for (const TaskId c : data_succs) {
      if (job.edge_options(producer, c).mode == EdgeMode::kMove) {
        moves.push_back(c);
      }
    }

    // Double-transfer: two sibling edges both demand exclusive ownership of
    // the same chunk. The first move wins; every later one is a violation.
    for (std::size_t i = 1; i < moves.size(); ++i) {
      report.Add(Diagnostic{
          Severity::kError, kRuleDoubleTransfer, producer, moves[i],
          "output of " + TaskRef(job, producer) + " is moved twice: to " +
              TaskRef(job, moves[0]) + " and again to " + TaskRef(job, moves[i]),
          "keep one move edge; demote the others to EdgeMode::kShare or kAuto"});
    }

    // Use-after-transfer: the chunk was moved to one consumer, but another
    // data edge still expects to read it.
    if (!moves.empty() && data_succs.size() > moves.size()) {
      for (const TaskId c : data_succs) {
        if (job.edge_options(producer, c).mode != EdgeMode::kMove) {
          report.Add(Diagnostic{
              Severity::kError, kRuleUseAfterTransfer, producer, c,
              TaskRef(job, c) + " reads the output of " + TaskRef(job, producer) +
                  " after its ownership was moved to " + TaskRef(job, moves[0]),
              "share the output (EdgeMode::kShare / kAuto on every edge) or "
              "drop the exclusive move"});
        }
      }
    }

    // The delivery the executor will perform (HandoverOutput): exclusive
    // transfer to a sole kAuto/kMove consumer, shared otherwise.
    const bool shared_delivery =
        data_succs.size() > 1 ||
        (data_succs.size() == 1 &&
         job.edge_options(producer, data_succs.front()).mode == EdgeMode::kShare);
    for (const TaskId c : data_succs) {
      expected.push_back(ExpectedInput{
          c, producer,
          shared_delivery ? region::OwnershipState::kShared
                          : region::OwnershipState::kExclusive});
    }

    // Writes through a shared input: relaxed-ordering writes to a chunk with
    // multiple concurrent owners (§2.2(2) forbids it without coherence, and
    // sibling readers observe torn data regardless).
    for (const TaskId c : data_succs) {
      if (job.edge_options(producer, c).writes_input && shared_delivery) {
        report.Add(Diagnostic{
            Severity::kError, kRuleWriteSharedInput, c, producer,
            TaskRef(job, c) + " declares in-place writes to the output of " +
                TaskRef(job, producer) + ", which is delivered as a shared region",
            "make the writer the sole consumer (EdgeMode::kMove) or have it "
            "copy into its own scratch before writing"});
      }
    }

    // Leaked output: the task declares it produces data, is ordered before
    // other tasks, yet no edge consumes the chunk — it sits untouched until
    // job teardown. (Sink outputs are the job's declared results and are
    // retained for the submitter, so plain sinks are not flagged.)
    if (DeclaresOutput(job.task(producer).props) && !all_succs.empty() &&
        data_succs.empty() && !job.task(producer).props.persistent) {
      report.Add(Diagnostic{
          Severity::kWarning, kRuleLeakedOutput, producer, std::nullopt,
          "output of " + TaskRef(job, producer) +
              " is never consumed: every outgoing edge is control-only, so the "
              "chunk is leaked until job teardown",
          "make one edge data-carrying, mark the task persistent, or drop the "
          "declared output size"});
    }
  }
}

// --- property-consistency pass -----------------------------------------------------

void PropertyPass(const Job& job, Report& report) {
  for (const TaskId producer : job.TopologicalOrder()) {
    const TaskProperties& pp = job.task(producer).props;
    for (const TaskId consumer : job.DataSuccessors(producer)) {
      const TaskProperties& cp = job.task(consumer).props;

      // Confidential data flowing into a task whose own regions are not
      // encrypted/isolated is a downgrade, unless the consumer declares it
      // emits only non-sensitive derived data.
      if (pp.confidential && !cp.confidential && !cp.declassifies) {
        report.Add(Diagnostic{
            Severity::kError, kRuleConfidentialityDowngrade, consumer, producer,
            "confidential output of " + TaskRef(job, producer) +
                " flows into non-confidential " + TaskRef(job, consumer),
            "mark the consumer confidential, or set declassifies=true if it "
            "derives only non-sensitive data"});
      }

      // A persistent producer's output lives on persistent media, which no
      // low-latency class covers; the consumer's demand cannot be met on its
      // input path.
      if (pp.persistent && cp.mem_latency == region::LatencyClass::kLow) {
        report.Add(Diagnostic{
            Severity::kWarning, kRulePersistentLatency, consumer, producer,
            TaskRef(job, consumer) + " demands low-latency memory but consumes "
                "the persistent output of " + TaskRef(job, producer) +
                ", which lives on slow persistent media",
            "relax the consumer's mem_latency, or drop `persistent` on the "
            "producer and checkpoint its output instead"});
      }
    }
  }
}

// --- graph-shape pass --------------------------------------------------------------

void GraphPass(const Job& job, Report& report) {
  if (job.num_tasks() < 2) {
    return;
  }
  for (std::uint32_t i = 0; i < job.num_tasks(); ++i) {
    const TaskId t(i);
    if (job.predecessors(t).empty() && job.successors(t).empty()) {
      report.Add(Diagnostic{
          Severity::kWarning, kRuleDeadTask, t, std::nullopt,
          TaskRef(job, t) + " is disconnected from the rest of the job DAG",
          "connect it with an edge (kControl for pure ordering) or submit it "
          "as its own job"});
    }
  }
}

// --- placement-feasibility pass ----------------------------------------------------

bool AnyViewSatisfies(const simhw::Cluster& cluster,
                      const std::vector<simhw::ComputeDeviceId>& observers,
                      const region::Properties& props) {
  for (const simhw::ComputeDeviceId c : observers) {
    for (const simhw::MemoryDeviceId m : cluster.AllMemoryDevices()) {
      const simhw::MemoryDevice& mem = cluster.memory(m);
      if (mem.failed() || !mem.profile().allocatable) {
        continue;
      }
      auto view = cluster.View(c, m);
      if (view.ok() && Satisfies(*view, props)) {
        return true;
      }
    }
  }
  return false;
}

void PlacementPass(const Job& job, const simhw::Cluster& cluster,
                   const VerifyOptions& options, Report& report) {
  for (std::uint32_t i = 0; i < job.num_tasks(); ++i) {
    const TaskId t(i);
    const TaskProperties& props = job.task(t).props;

    std::vector<simhw::ComputeDeviceId> eligible;
    bool kind_exists = false;
    for (const simhw::ComputeDeviceId c : cluster.AllComputeDevices()) {
      const simhw::ComputeDevice& dev = cluster.compute(c);
      if (props.compute_device.has_value() && dev.kind() != *props.compute_device) {
        continue;
      }
      kind_exists = true;
      if (!dev.failed()) {
        eligible.push_back(c);
      }
    }
    if (eligible.empty()) {
      const std::string demand =
          props.compute_device.has_value()
              ? "a " + std::string(simhw::ComputeDeviceKindName(*props.compute_device))
              : "any compute device";
      report.Add(Diagnostic{
          Severity::kError, kRuleUnsatisfiableCompute, t, std::nullopt,
          TaskRef(job, t) + " requires " + demand +
              (kind_exists ? ", but every matching device has failed"
                           : ", but the cluster has none"),
          "relax the compute_device requirement or target a cluster that "
          "provides the device"});
      continue;  // memory feasibility is meaningless with nowhere to run
    }

    // Would the task's scratch / output allocation requests resolve to any
    // device at all, from at least one eligible observer? Capacity is a
    // runtime concern; this checks the topology, like the RegionManager's
    // device ranking with infinite free space.
    for (region::Properties want : {ScratchRequestProps(props), OutputRequestProps(props)}) {
      if (options.allow_latency_relax) {
        want.latency = region::LatencyClass::kAny;  // manager would spill-relax
      }
      if (!AnyViewSatisfies(cluster, eligible, want)) {
        report.Add(Diagnostic{
            Severity::kError, kRuleUnsatisfiableMemory, t, std::nullopt,
            "no memory device satisfies " + want.ToString() + " from any device " +
                TaskRef(job, t) + " may run on",
            "relax mem_latency / persistent, or add a satisfying memory device "
            "to the cluster"});
        break;  // one diagnostic per task is enough
      }
    }
  }
}

// --- may-happen-in-parallel pass ---------------------------------------------------
//
// Conflicts between task pairs the DAG leaves unordered (concurrency.h). The
// error rules flag accesses to one producer's output whose order the DAG does
// not fix: even when the executor serializes the bodies (non-parallel-safe
// jobs), the serialization order is an executor implementation detail, not a
// declared happens-before — the result is schedule-dependent.
void MhpPass(const Job& job, const MhpSummary& mhp, Report& report) {
  for (std::uint32_t i = 0; i < job.num_tasks(); ++i) {
    const TaskId producer(i);
    const std::vector<TaskId> data_succs = job.DataSuccessors(producer);
    if (data_succs.size() < 2) {
      continue;  // every conflict below needs two consumers of one output
    }
    std::vector<TaskId> writers;
    std::vector<TaskId> movers;
    for (const TaskId c : data_succs) {
      const dataflow::EdgeOptions eopts = job.edge_options(producer, c);
      if (eopts.writes_input) {
        writers.push_back(c);
      }
      if (eopts.mode == EdgeMode::kMove) {
        movers.push_back(c);
      }
    }

    // Two unordered in-place writers of the same delivered region.
    for (std::size_t a = 0; a < writers.size(); ++a) {
      for (std::size_t b = a + 1; b < writers.size(); ++b) {
        if (mhp.Unordered(writers[a], writers[b])) {
          report.Add(Diagnostic{
              Severity::kError, kRuleMhpWriteWriteRace, writers[a], writers[b],
              TaskRef(job, writers[a]) + " and " + TaskRef(job, writers[b]) +
                  " both write the output of " + TaskRef(job, producer) +
                  " in place, and no path orders them",
              "add a control edge between the writers, or keep a single "
              "writer and copy into scratch elsewhere"});
        }
      }
    }

    // An unordered writer/reader pair on one delivered region.
    for (const TaskId w : writers) {
      for (const TaskId r : data_succs) {
        if (r == w || job.edge_options(producer, r).writes_input) {
          continue;
        }
        if (mhp.Unordered(w, r)) {
          report.Add(Diagnostic{
              Severity::kError, kRuleMhpWriteReadRace, w, r,
              TaskRef(job, w) + " writes the output of " + TaskRef(job, producer) +
                  " in place while unordered " + TaskRef(job, r) + " reads it",
              "add a control edge ordering the reader before (or after) the "
              "writer, or have the writer copy into its own scratch"});
        }
      }
    }

    // A move consumer unordered with a sibling reader: the transfer can
    // consume the region while the reader still expects it.
    for (const TaskId m : movers) {
      for (const TaskId r : data_succs) {
        if (r == m || job.edge_options(producer, r).mode == EdgeMode::kMove) {
          continue;
        }
        if (mhp.Unordered(m, r)) {
          report.Add(Diagnostic{
              Severity::kError, kRuleMhpTransferRace, m, r,
              "exclusive move of the output of " + TaskRef(job, producer) + " to " +
                  TaskRef(job, m) + " races unordered reader " + TaskRef(job, r),
              "add a control edge ordering the reader before the move, or "
              "share the output (EdgeMode::kShare) instead of moving it"});
        }
      }
    }
  }

  // A job whose bodies the executor must serialize (global regions or
  // in-place writes) still *looks* parallel when the DAG leaves pairs
  // unordered — surface the lost parallelism as a note.
  if (!mhp.parallel_safe && mhp.num_tasks > 1) {
    const std::size_t pairs = mhp.UnorderedPairCount();
    if (pairs > 0) {
      const bool globals = job.options().global_state_bytes > 0 ||
                           job.options().global_scratch_bytes > 0;
      report.Add(Diagnostic{
          Severity::kNote, kRuleMhpSerialized, TaskId(0), std::nullopt,
          "job declares " +
              std::string(globals ? "Global State/Scratch" : "in-place input writes") +
              ", so the executor serializes its bodies; " + std::to_string(pairs) +
              " task pair(s) the DAG leaves unordered lose their parallelism",
          "drop the global regions / writes_input declarations, or accept "
          "serial execution of same-step bodies"});
    }
  }
}

// --- capacity-feasibility pass -----------------------------------------------------

void CapacityPass(const Job& job, const simhw::Cluster& cluster,
                  const VerifyOptions& options, const MhpSummary& mhp,
                  Report& report, CapacityBound& bound) {
  bound = ComputeCapacityBound(job, cluster, mhp);

  const auto demand_ref = [&job](const RegionDemand& d) -> std::string {
    switch (d.kind) {
      case RegionDemand::Kind::kOutput:
        return "output of " + TaskRef(job, d.task);
      case RegionDemand::Kind::kScratch:
        return "scratch of " + TaskRef(job, d.task);
      case RegionDemand::Kind::kGlobalState:
        return "Global State";
      case RegionDemand::Kind::kGlobalScratch:
        return "Global Scratch";
    }
    return "?";
  };

  // cap-unplaceable: a single declared region larger than every device that
  // could hold it. The candidate set honors the latency-relax policy the
  // region manager will actually run with; an empty candidate set is
  // PlacementPass territory (place-unsatisfiable-memory), not a capacity bug.
  for (const RegionDemand& d : bound.demands) {
    std::uint64_t best_capacity = 0;
    bool any_candidate = false;
    for (const simhw::MemoryDeviceId m : cluster.AllMemoryDevices()) {
      const simhw::MemoryDevice& dev = cluster.memory(m);
      if (!dev.profile().allocatable) {
        continue;
      }
      region::Properties want = d.props;
      if (options.allow_latency_relax) {
        want.latency = region::LatencyClass::kAny;
      }
      bool satisfiable = false;
      for (const simhw::ComputeDeviceId c : cluster.AllComputeDevices()) {
        const auto view = cluster.View(c, m);
        satisfiable = satisfiable || (view.ok() && Satisfies(*view, want));
      }
      if (satisfiable) {
        any_candidate = true;
        best_capacity = std::max(best_capacity, dev.capacity());
      }
    }
    if (any_candidate && d.bytes > best_capacity) {
      report.Add(Diagnostic{
          Severity::kError, kRuleCapUnplaceable,
          d.task.valid() ? d.task : TaskId(0), std::nullopt,
          demand_ref(d) + " needs " + std::to_string(d.bytes) +
              " bytes, but the largest satisfying device holds only " +
              std::to_string(best_capacity) + " — no schedule can place it",
          "shrink the declared size, relax the region's property demands, or "
          "add a larger satisfying memory device"});
    }
  }

  // cap-overcommit: the worst-case concurrent footprint (max-weight antichain
  // of region lifetimes + job-lifetime globals) exceeds everything the
  // cluster can allocate at once — under adverse batch interleaving the
  // allocator runs out even though each region fits individually.
  if (bound.peak_concurrent_bytes > bound.total_capacity_bytes) {
    report.Add(Diagnostic{
        Severity::kWarning, kRuleCapOvercommit, TaskId(0), std::nullopt,
        "worst-case concurrent footprint is " +
            std::to_string(bound.peak_concurrent_bytes) +
            " bytes, but allocatable capacity totals " +
            std::to_string(bound.total_capacity_bytes),
        "add control edges to cap how many regions are live at once, shrink "
        "declared sizes, or grow the cluster's memory"});
  }

  // cap-fragile: demands pinned to a strict latency class can outgrow the
  // capacity reachable at that class, so placement silently depends on the
  // manager's latency-relax / fragmentation-fallthrough paths (or fails when
  // relaxing is disabled). Checked per strict class.
  for (const region::LatencyClass lat :
       {region::LatencyClass::kLow, region::LatencyClass::kMedium}) {
    std::uint64_t strict_demand = 0;
    for (const RegionDemand& d : bound.demands) {
      if (d.props.latency != region::LatencyClass::kAny &&
          d.props.latency >= lat) {  // enum order: stricter classes compare higher
        strict_demand += d.bytes;
      }
    }
    if (strict_demand == 0) {
      continue;
    }
    std::uint64_t strict_capacity = 0;
    region::Properties probe;
    probe.latency = lat;
    for (const simhw::MemoryDeviceId m : cluster.AllMemoryDevices()) {
      const simhw::MemoryDevice& dev = cluster.memory(m);
      if (!dev.profile().allocatable) {
        continue;
      }
      for (const simhw::ComputeDeviceId c : cluster.AllComputeDevices()) {
        const auto view = cluster.View(c, m);
        if (view.ok() && Satisfies(*view, probe)) {
          strict_capacity += dev.capacity();
          break;
        }
      }
    }
    if (strict_demand > strict_capacity) {
      report.Add(Diagnostic{
          Severity::kWarning, kRuleCapFragile, TaskId(0), std::nullopt,
          std::string(region::LatencyClassName(lat)) + "-latency demands total " +
              std::to_string(strict_demand) + " bytes against " +
              std::to_string(strict_capacity) + " bytes of capacity at that "
              "class — placement depends on latency-relax spills or "
              "fragmentation fallthrough",
          options.allow_latency_relax
              ? "shrink the strict-latency demands or accept silent spills to "
                "slower tiers"
              : "shrink the strict-latency demands, or enable "
                "allow_latency_relax so the manager may spill"});
      break;  // one fragility diagnostic per job is enough
    }
  }
}

}  // namespace

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out(SeverityName(severity));
  out += "[";
  out += rule;
  out += "] ";
  out += message;
  if (!hint.empty()) {
    out += " (fix: " + hint + ")";
  }
  return out;
}

int Report::errors() const {
  return static_cast<int>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

int Report::warnings() const {
  return static_cast<int>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

bool Report::HasRule(std::string_view rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string Report::Summary() const {
  std::string out = std::to_string(errors()) + " error(s), " +
                    std::to_string(warnings()) + " warning(s)";
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      out += "; first: " + d.ToString();
      break;
    }
  }
  return out;
}

std::optional<region::OwnershipState> Report::ExpectedStateOf(
    dataflow::TaskId task, dataflow::TaskId producer) const {
  for (const ExpectedInput& e : expected_inputs_) {
    if (e.task == task && e.producer == producer) {
      return e.state;
    }
  }
  return std::nullopt;
}

Report Verify(const dataflow::Job& job, const simhw::Cluster* cluster,
              const VerifyOptions& options) {
  Report report;
  // The analyses below assume a well-formed acyclic DAG; Job::Validate()
  // already rejects anything else at submission, so just bail.
  if (!job.Validate().ok()) {
    return report;
  }
  OwnershipPass(job, report, report.expected_inputs_);
  PropertyPass(job, report);
  GraphPass(job, report);
  report.mhp_ = ComputeMhp(job);
  MhpPass(job, report.mhp_, report);
  if (cluster != nullptr) {
    PlacementPass(job, *cluster, options, report);
    CapacityPass(job, *cluster, options, report.mhp_, report, report.capacity_);
  }
  return report;
}

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {kRuleUseAfterTransfer, Severity::kError,
       "a data edge reads an output whose ownership was moved elsewhere"},
      {kRuleDoubleTransfer, Severity::kError,
       "two edges demand exclusive ownership of one output"},
      {kRuleLeakedOutput, Severity::kWarning,
       "a declared output is never consumed and leaks until teardown"},
      {kRuleWriteSharedInput, Severity::kError,
       "an edge declares in-place writes to a shared delivery"},
      {kRuleConfidentialityDowngrade, Severity::kError,
       "confidential data flows into a non-confidential task"},
      {kRulePersistentLatency, Severity::kWarning,
       "a low-latency consumer reads a persistent producer's output"},
      {kRuleUnsatisfiableCompute, Severity::kError,
       "no live compute device matches the task's requirement"},
      {kRuleUnsatisfiableMemory, Severity::kError,
       "no memory device satisfies the task's region properties"},
      {kRuleDeadTask, Severity::kWarning,
       "a task is disconnected from the rest of the job DAG"},
      {kRuleMhpWriteWriteRace, Severity::kError,
       "two unordered tasks write one delivered region in place"},
      {kRuleMhpWriteReadRace, Severity::kError,
       "an unordered writer and reader share one delivered region"},
      {kRuleMhpTransferRace, Severity::kError,
       "an exclusive move races an unordered sibling reader"},
      {kRuleMhpSerialized, Severity::kNote,
       "unordered tasks lose parallelism to executor serialization"},
      {kRuleCapUnplaceable, Severity::kError,
       "a declared region exceeds every satisfying device's capacity"},
      {kRuleCapOvercommit, Severity::kWarning,
       "worst-case concurrent footprint exceeds total allocatable capacity"},
      {kRuleCapFragile, Severity::kWarning,
       "strict-latency demand outgrows that class's capacity"},
  };
  return kCatalog;
}

Report Verify(const dataflow::Job& job, const VerifyOptions& options) {
  return Verify(job, nullptr, options);
}

}  // namespace memflow::analysis
