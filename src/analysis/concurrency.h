// Copyright (c) memflow authors. MIT license.
//
// Static concurrency & capacity models over job DAGs (DESIGN.md §12).
//
// May-happen-in-parallel (MHP): the two-phase executor stages every body
// dispatchable at one virtual-time step and runs the batch concurrently, so
// two tasks of one job can overlap iff neither happens-before the other *and*
// the job is parallel-safe (no Global State/Scratch, no writes_input edge —
// the executor serializes a non-parallel-safe job's same-step bodies into one
// chain). ComputeMhp() derives that relation from the DAG alone; the verifier
// turns statically detectable conflicts into mhp-* diagnostics and the
// sim-mhp oracle invariant checks every *observed* concurrent pair against
// the prediction.
//
// Capacity: each declared allocation (task output, task scratch, job-wide
// globals) is a poset element whose lifetime interval is bounded by
// happens-before; allocations whose lifetimes no schedule can separate form
// an antichain, and the max-weight antichain is a sound upper bound on the
// bytes simultaneously live — per candidate device and cluster-wide. The
// verifier turns infeasible bounds into cap-* diagnostics and the sim-mhp
// invariant checks observed per-device peak bytes against the bound.
//
// This header deliberately knows nothing about Report/Diagnostic: the models
// are plain data so the runtime (parallel_safe predicate, executor
// cross-check) and the verifier share one source of truth.

#ifndef MEMFLOW_ANALYSIS_CONCURRENCY_H_
#define MEMFLOW_ANALYSIS_CONCURRENCY_H_

#include <cstdint>
#include <vector>

#include "dataflow/job.h"
#include "region/properties.h"
#include "simhw/cluster.h"

namespace memflow::analysis {

// Whether a job's task bodies may run concurrently with each other under the
// executor's dispatch rules: no two bodies may touch the same mutable region,
// i.e. no job-wide Global State/Scratch and no edge declaring in-place writes
// to a delivered input. This is the single source of truth for
// rts::Runtime's per-job serialization decision.
bool JobParallelSafe(const dataflow::Job& job);

// The may-happen-in-parallel relation of one job, derived statically.
struct MhpSummary {
  std::uint32_t num_tasks = 0;
  bool parallel_safe = true;
  // Strict happens-before over all edges (data + control), row-major n*n:
  // reach[a*n + b] == true iff task a is ordered before task b.
  std::vector<bool> reach;

  bool Reaches(dataflow::TaskId a, dataflow::TaskId b) const {
    return reach[static_cast<std::size_t>(a.value) * num_tasks + b.value];
  }
  // Neither task is ordered before the other (and they are distinct).
  bool Unordered(dataflow::TaskId a, dataflow::TaskId b) const {
    return a != b && !Reaches(a, b) && !Reaches(b, a);
  }
  // The pair can actually share a parallel batch: unordered *and* the job's
  // bodies are not serialized into one chain by the executor.
  bool MayRunConcurrently(dataflow::TaskId a, dataflow::TaskId b) const {
    return parallel_safe && Unordered(a, b);
  }
  std::size_t UnorderedPairCount() const;
};

// Computes the MHP relation; the job must pass Validate().
MhpSummary ComputeMhp(const dataflow::Job& job);

// One statically modeled allocation with its lifetime anchor.
struct RegionDemand {
  enum class Kind : std::uint8_t { kOutput, kScratch, kGlobalState, kGlobalScratch };

  Kind kind = Kind::kOutput;
  dataflow::TaskId task;       // producing task; invalid for job-wide globals
  std::uint64_t bytes = 0;     // estimated size (CostModel's propagation)
  region::Properties props;    // the allocation request the runtime will make
};

// Symbolic peak-memory bounds for one job on one cluster.
struct CapacityBound {
  bool computed = false;
  std::vector<RegionDemand> demands;
  // Sound per-device upper bound on bytes this job can have simultaneously
  // allocated, indexed by MemoryDeviceId::value. Candidate sets are
  // permissive (latency relaxed, any compute observer) so the bound stays an
  // upper bound under re-placement after faults; sizes are rounded up to the
  // device granularity, matching MemoryDevice::Allocate.
  std::vector<std::uint64_t> peak_device_bytes;
  // Cluster-wide peak concurrent footprint (unrounded bytes).
  std::uint64_t peak_concurrent_bytes = 0;
  // Total capacity of allocatable memory devices.
  std::uint64_t total_capacity_bytes = 0;
};

CapacityBound ComputeCapacityBound(const dataflow::Job& job,
                                   const simhw::Cluster& cluster,
                                   const MhpSummary& mhp);

// Maximum total weight over antichains of the strict partial order
// `strictly_before` (weights[i] == 0 drops element i). Solved exactly as a
// minimum flow with lower bounds (Dilworth-style), polynomial in the element
// count regardless of weight magnitudes. Exposed for focused tests.
std::uint64_t MaxWeightAntichain(const std::vector<std::vector<bool>>& strictly_before,
                                 const std::vector<std::uint64_t>& weights);

// Size-estimate formulas, kept bit-identical to rts::CostModel::OutputBytes /
// ScratchBytes (analysis cannot link rts; tests assert the mirror holds).
std::uint64_t EstimatedOutputBytes(const dataflow::TaskProperties& props,
                                   std::uint64_t input_bytes);
std::uint64_t EstimatedScratchBytes(const dataflow::TaskProperties& props,
                                    std::uint64_t input_bytes);

// The region properties a task's scratch / output allocations will request,
// mirroring TaskContext::ScratchProperties / OutputProperties so the static
// models and the executor agree.
region::Properties ScratchRequestProps(const dataflow::TaskProperties& props);
region::Properties OutputRequestProps(const dataflow::TaskProperties& props);

}  // namespace memflow::analysis

#endif  // MEMFLOW_ANALYSIS_CONCURRENCY_H_
