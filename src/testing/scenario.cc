// Copyright (c) memflow authors. MIT license.

#include "testing/scenario.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "rts/checkpoint.h"

namespace memflow::testing {
namespace {

// Everything one leg of a scenario produced, for cross-leg comparison.
struct LegOutcome {
  bool ran = false;  // RunToCompletion returned OK
  std::string fingerprint;
  std::string semantic;
  // Critical-path attribution digest (oracle.h CheckAttribution): must be
  // identical at every worker count, like the JobReport fingerprint.
  std::string attribution;
  // Access-profiler MRC/WSS digest (oracle.h CheckWss): same contract.
  std::string wss;
  rts::RuntimeStats stats;
};

void Annotate(std::vector<Violation>* out, std::vector<Violation> leg,
              const std::string& prefix) {
  for (Violation& v : leg) {
    v.message = prefix + ": " + v.message;
    out->push_back(std::move(v));
  }
}

// The job's observable meaning: per retained output, a hash of its bytes as
// read back through the first CPU. JobReport::outputs is ordered by retention
// (completion order), which legitimately differs between a fault-free run and
// a checkpoint-restart one — so the per-job hash multiset is sorted before it
// is compared.
std::string SemanticOf(rts::Runtime& rt, dataflow::JobId id,
                       simhw::ComputeDeviceId reader) {
  const rts::JobReport& report = rt.report(id);
  std::string s = report.name;
  if (!report.status.ok()) {
    return s + ":failed\n";
  }
  std::vector<std::string> hashes;
  for (const region::RegionId out : report.outputs) {
    auto acc = rt.regions().OpenAsync(out, rt.JobPrincipal(id), reader);
    if (!acc.ok()) {
      hashes.push_back("?");
      continue;
    }
    std::vector<char> bytes(acc->size());
    acc->EnqueueRead(0, bytes.data(), bytes.size());
    hashes.push_back(acc->Drain().ok()
                         ? std::to_string(Fnv1a64(bytes.data(), bytes.size()))
                         : "?");
  }
  std::sort(hashes.begin(), hashes.end());
  for (const std::string& h : hashes) {
    s += " " + h;
  }
  return s + "\n";
}

// One runtime lifetime: submit every job, run, audit, read outputs, release.
LegOutcome RunLeg(const Scenario& sc, TopologyInstance& inst, int workers,
                  bool with_faults, rts::JobCheckpointer* ckpt,
                  std::vector<Violation>* out, bool leak_outputs_hook) {
  LegOutcome leg;
  telemetry::Registry registry;
  simhw::FaultInjector injector(*inst.cluster);
  const std::optional<simhw::MemoryDeviceId> exclude =
      ckpt ? inst.persistent_device : std::nullopt;
  const DeviceUsage baseline = CaptureDeviceUsage(*inst.cluster);
  ResetPeakUsage(*inst.cluster);

  rts::RuntimeOptions ropts;
  ropts.policy = sc.policy;
  ropts.max_task_attempts = sc.max_task_attempts;
  ropts.worker_threads = workers;
  ropts.registry = &registry;
  rts::Runtime rt(*inst.cluster, ropts);
  // Record the sampled chunk stream so CheckWss can replay it through the
  // exact LRU reference; started before any submission so it covers every
  // sampled access.
  rt.regions().access_profiler().StartRecording(std::size_t{1} << 16);
  if (with_faults) {
    ApplyPlan(sc.faults, EligibleTargets(*inst.cluster, exclude), injector);
    rt.AttachFaultInjector(&injector);
  }

  std::vector<dataflow::JobId> ids;
  for (const JobSpec& spec : sc.jobs) {
    dataflow::Job job = BuildJob(spec);
    if (ckpt != nullptr) {
      job = ckpt->Instrument(std::move(job));
    }
    auto id = rt.Submit(std::move(job));
    if (!id.ok()) {
      // The generator only emits verifier-admissible, placeable jobs.
      out->push_back({kInvAdmission,
                      "job " + spec.name + " rejected: " + id.status().ToString()});
      continue;
    }
    ids.push_back(*id);
  }

  const Status run = rt.RunToCompletion();
  if (!run.ok()) {
    out->push_back({kInvLiveness, "RunToCompletion: " + run.ToString()});
    return leg;
  }
  leg.ran = true;

  const OracleScope scope{baseline, exclude, sc.max_task_attempts};
  CheckPostRun(rt, ids, scope, out);
  CheckMhp(rt, ids, scope, out);
  leg.attribution = CheckAttribution(rt, ids, out);
  // Snapshot before SemanticOf: reading outputs back taps the profiler too.
  leg.wss = CheckWss(rt, out);

  for (const dataflow::JobId id : ids) {
    leg.fingerprint += Fingerprint(rt.report(id));
    leg.semantic += SemanticOf(rt, id, inst.reader);
  }
  leg.stats = rt.stats();

  bool leaked_one = false;
  for (const dataflow::JobId id : ids) {
    if (leak_outputs_hook && !leaked_one && rt.report(id).status.ok()) {
      leaked_one = true;  // deliberate bug: oracle must flag sim-region-leak
      continue;
    }
    (void)rt.ReleaseJobOutputs(id);
  }
  CheckPostRelease(rt, scope, out);
  return leg;
}

// One open-loop runtime lifetime: schedule every merged arrival as a virtual-
// time event that Offers one of the scenario's generated jobs, drain, audit.
// Fault-free: the crash-under-load direction is owned by crash_sweep_test.
LegOutcome RunServingLeg(const Scenario& sc, TopologyInstance& inst, int workers,
                         std::vector<Violation>* out) {
  LegOutcome leg;
  telemetry::Registry registry;
  const DeviceUsage baseline = CaptureDeviceUsage(*inst.cluster);
  ResetPeakUsage(*inst.cluster);

  rts::RuntimeOptions ropts;
  ropts.policy = sc.policy;
  ropts.max_task_attempts = sc.max_task_attempts;
  ropts.worker_threads = workers;
  ropts.registry = &registry;
  rts::Runtime rt(*inst.cluster, ropts);
  rt.regions().access_profiler().StartRecording(std::size_t{1} << 16);
  rts::ServingLayer serving(rt);

  std::vector<ArrivalSpec> specs;
  for (const ServingTenantGen& tenant : sc.serving.tenants) {
    serving.AddTenant(tenant.config);
    specs.push_back(tenant.arrivals);
  }
  const std::vector<MergedArrival> merged =
      MergeArrivals(specs, sc.seed, SimTime{} + sc.serving.horizon);

  // Admission decisions in arrival order: part of the determinism comparand —
  // a worker count must not change what gets admitted, rejected, or shed.
  std::vector<dataflow::JobId> ids;
  std::string rules;
  for (std::size_t k = 0; k < merged.size(); ++k) {
    const MergedArrival& arrival = merged[k];
    rt.ScheduleAt(arrival.at, [&, k, arrival](SimTime) {
      const rts::AdmissionDecision d =
          serving.Offer(arrival.tenant, BuildJob(sc.jobs[k % sc.jobs.size()]));
      rules += std::string(d.rule) + ";";
      if (d.admitted) {
        ids.push_back(d.job);
      }
    });
  }

  const Status run = rt.RunToCompletion();
  if (!run.ok()) {
    out->push_back({kInvLiveness, "open-loop RunToCompletion: " + run.ToString()});
    return leg;
  }
  leg.ran = true;

  const OracleScope scope{baseline, std::nullopt, sc.max_task_attempts};
  CheckPostRun(rt, ids, scope, out);
  CheckMhp(rt, ids, scope, out);
  CheckServing(serving, rt, out);
  leg.attribution = CheckAttribution(rt, ids, out);
  leg.wss = CheckWss(rt, out);

  leg.fingerprint = rules + "\n";
  for (const dataflow::JobId id : ids) {
    leg.fingerprint += Fingerprint(rt.report(id));
    leg.semantic += SemanticOf(rt, id, inst.reader);
  }
  for (std::size_t t = 0; t < serving.num_tenants(); ++t) {
    const rts::TenantStats& ts = serving.stats(t);
    leg.fingerprint += "tenant " + serving.config(t).name + " arrived=" +
                       std::to_string(ts.arrived) + " admitted=" +
                       std::to_string(ts.admitted) + " rejected=" +
                       std::to_string(ts.Rejections()) + " completed=" +
                       std::to_string(ts.completed) + " failed=" +
                       std::to_string(ts.failed) + "\n";
  }
  leg.stats = rt.stats();

  for (const dataflow::JobId id : ids) {
    (void)rt.ReleaseJobOutputs(id);
  }
  CheckPostRelease(rt, scope, out);
  return leg;
}

std::string DiffStats(const rts::RuntimeStats& a, const rts::RuntimeStats& b) {
  std::string diff;
  auto cmp = [&diff](const char* name, std::uint64_t x, std::uint64_t y) {
    if (x != y) {
      diff += std::string(name) + " " + std::to_string(x) + "!=" + std::to_string(y) + " ";
    }
  };
  cmp("jobs_completed", a.jobs_completed, b.jobs_completed);
  cmp("jobs_failed", a.jobs_failed, b.jobs_failed);
  cmp("jobs_rejected", a.jobs_rejected, b.jobs_rejected);
  cmp("tasks_executed", a.tasks_executed, b.tasks_executed);
  cmp("task_retries", a.task_retries, b.task_retries);
  cmp("zero_copy_handovers", a.zero_copy_handovers, b.zero_copy_handovers);
  cmp("copied_handovers", a.copied_handovers, b.copied_handovers);
  return diff;
}

}  // namespace

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kCxlHost:
      return "cxl-host";
    case TopologyKind::kDisaggRack:
      return "disagg-rack";
    case TopologyKind::kMemoryPool:
      return "memory-pool";
    case TopologyKind::kTieredHost:
      return "tiered-host";
    case TopologyKind::kComputeRack:
      return "compute-rack";
  }
  return "unknown";
}

TopologyInstance BuildTopology(TopologyKind kind) {
  TopologyInstance inst;
  switch (kind) {
    case TopologyKind::kCxlHost: {
      auto h = std::make_shared<simhw::CxlHostHandles>(simhw::MakeCxlExpansionHost());
      inst.cluster = h->cluster.get();
      inst.holder = std::move(h);
      break;
    }
    case TopologyKind::kDisaggRack: {
      auto h = std::make_shared<simhw::DisaggHandles>(
          simhw::MakeDisaggRack({.compute_nodes = 2, .memory_nodes = 2}));
      inst.cluster = h->cluster.get();
      inst.holder = std::move(h);
      break;
    }
    case TopologyKind::kMemoryPool: {
      auto h = std::make_shared<std::unique_ptr<simhw::Cluster>>(
          simhw::MakeMemoryCentricPool());
      inst.cluster = h->get();
      inst.holder = std::move(h);
      break;
    }
    case TopologyKind::kTieredHost: {
      auto h = std::make_shared<simhw::TieredHandles>(simhw::MakeTieredStorageHost());
      inst.cluster = h->cluster.get();
      inst.holder = std::move(h);
      break;
    }
    case TopologyKind::kComputeRack: {
      auto h = std::make_shared<std::unique_ptr<simhw::Cluster>>(
          simhw::MakeComputeCentricRack({.servers = 2}));
      inst.cluster = h->get();
      inst.holder = std::move(h);
      break;
    }
  }
  // Generic discovery, so the scenario layer never special-cases a preset.
  for (const simhw::ComputeDeviceId c : inst.cluster->AllComputeDevices()) {
    const simhw::ComputeDeviceKind k = inst.cluster->compute(c).kind();
    if (!inst.reader.valid() && k == simhw::ComputeDeviceKind::kCPU) {
      inst.reader = c;
    }
    bool seen = false;
    for (const simhw::ComputeDeviceKind have : inst.compute_kinds) {
      seen = seen || have == k;
    }
    if (!seen) {
      inst.compute_kinds.push_back(k);
    }
  }
  for (const simhw::MemoryDeviceId m : inst.cluster->AllMemoryDevices()) {
    if (!inst.persistent_device && inst.cluster->memory(m).profile().persistent) {
      inst.persistent_device = m;
    }
  }
  return inst;
}

std::size_t Scenario::CoverageUnits() const {
  // Each (job, topology, fault-schedule, worker-count) tuple is one covered
  // scenario; the restart check adds its reference, phase-A, and phase-B
  // legs, and the open-loop plan adds one (tenant, worker-count) unit per
  // arrival-driven leg.
  return jobs.size() * (worker_counts.size() + (restart_check ? 3 : 0)) +
         (serving.enabled ? serving.tenants.size() * worker_counts.size() : 0);
}

std::size_t Scenario::TotalTasks() const {
  std::size_t n = 0;
  for (const JobSpec& j : jobs) {
    n += j.tasks.size();
  }
  return n;
}

Scenario MakeScenario(std::uint64_t seed, const ScenarioOptions& opts) {
  Scenario sc;
  sc.seed = seed;
  Rng rng(seed);
  sc.topology = static_cast<TopologyKind>(rng.Below(kNumTopologyKinds));

  // Probe the topology so generated jobs only demand what it offers.
  const TopologyInstance probe = BuildTopology(sc.topology);
  WorkloadOptions wopts = opts.workload;
  wopts.available_compute = probe.compute_kinds;
  wopts.allow_persistent = probe.persistent_device.has_value();

  const int num_jobs =
      opts.min_jobs +
      static_cast<int>(rng.Below(static_cast<std::uint64_t>(opts.max_jobs - opts.min_jobs) + 1));
  for (int i = 0; i < num_jobs; ++i) {
    sc.jobs.push_back(GenerateJobSpec(rng, wopts, "job" + std::to_string(i)));
  }
  sc.faults = GenerateFaultPlan(rng, opts.faults);
  sc.max_task_attempts = 2 + static_cast<int>(rng.Below(2));
  sc.policy = static_cast<rts::PlacementPolicyKind>(rng.Below(4));
  sc.restart_check = probe.persistent_device.has_value();

  // --- open-loop serving plan. These draws are appended AFTER every
  // pre-serving draw so existing seeds keep their closed-loop expansions
  // bit-identical (replay lines stay valid across this change).
  const int num_tenants = 2 + static_cast<int>(rng.Below(2));
  for (int i = 0; i < num_tenants; ++i) {
    ServingTenantGen t;
    t.config.name = "tenant" + std::to_string(i);
    t.config.weight = 1.0 + static_cast<double>(rng.Below(3));
    t.config.priority = static_cast<int>(rng.Below(2));
    t.config.slo = static_cast<dataflow::SloClass>(rng.Below(3));
    // Deadlines in the random corpus are generous relative to the horizon:
    // sim-slo audits them as a starvation bound, not a tight-latency one
    // (serving_test pins the tight-deadline reject path deterministically).
    t.config.deadline = rng.Below(2) == 0 ? SimDuration{} : SimDuration::Seconds(5);
    // A small in-flight cap on some tenants keeps the shed path exercised —
    // and shed decisions depend on completion timing, which the determinism
    // invariant then holds identical across worker counts.
    t.config.max_inflight = rng.Below(2) == 0 ? 0 : 4;
    t.arrivals.kind =
        rng.Below(2) == 0 ? ArrivalKind::kPoisson : ArrivalKind::kBursty;
    t.arrivals.rate_per_sec = 50000.0 * static_cast<double>(1 + rng.Below(4));
    sc.serving.tenants.push_back(std::move(t));
  }
  sc.serving.horizon = SimDuration::Micros(200);
  sc.serving.enabled = true;
  return sc;
}

std::string ScenarioResult::ToString() const {
  std::string s = "scenario seed=" + std::to_string(seed) + ": " +
                  std::to_string(violations.size()) + " violation(s)\n";
  for (const Violation& v : violations) {
    s += "  [" + v.invariant + "] " + v.message + "\n";
  }
  s += "replay: seed=" + std::to_string(seed) + "\n";
  return s;
}

ScenarioResult RunScenario(const Scenario& scenario, const RunHooks& hooks) {
  ScenarioResult result;
  result.seed = scenario.seed;
  result.coverage = scenario.CoverageUnits();
  std::vector<Violation>* out = &result.violations;

  // --- differential across worker counts (faults included: the schedule
  // lives on the virtual timeline, so it replays identically).
  std::optional<LegOutcome> base;
  int base_workers = 0;
  for (std::size_t i = 0; i < scenario.worker_counts.size(); ++i) {
    const int workers = scenario.worker_counts[i];
    TopologyInstance inst = BuildTopology(scenario.topology);
    std::vector<Violation> leg_violations;
    const LegOutcome leg =
        RunLeg(scenario, inst, workers, /*with_faults=*/true, /*ckpt=*/nullptr,
               &leg_violations, i == 0 && hooks.leak_job_outputs);
    Annotate(out, std::move(leg_violations), "workers=" + std::to_string(workers));
    if (!leg.ran) {
      continue;
    }
    if (!base) {
      base = leg;
      base_workers = workers;
      continue;
    }
    const std::string vs =
        "workers=" + std::to_string(workers) + " vs workers=" + std::to_string(base_workers);
    if (leg.fingerprint != base->fingerprint) {
      out->push_back({kInvDeterminism, vs + ": JobReport fingerprints differ"});
    }
    if (leg.semantic != base->semantic) {
      out->push_back({kInvDeterminism, vs + ": output bytes differ\n" + base->semantic +
                                           "--- vs ---\n" + leg.semantic});
    }
    const std::string stats_diff = DiffStats(base->stats, leg.stats);
    if (!stats_diff.empty()) {
      out->push_back({kInvDeterminism, vs + ": stats differ: " + stats_diff});
    }
    if (leg.attribution != base->attribution) {
      out->push_back({kInvAttribution,
                      vs + ": critical-path attribution differs\n" + base->attribution +
                          "--- vs ---\n" + leg.attribution});
    }
    if (leg.wss != base->wss) {
      out->push_back({kInvWss, vs + ": MRC/WSS fingerprints differ\n" + base->wss +
                                   "--- vs ---\n" + leg.wss});
    }
  }

  // --- fault-free vs. fault + checkpoint-restart (topologies with
  // persistent media only).
  if (scenario.restart_check) {
    TopologyInstance ref_inst = BuildTopology(scenario.topology);
    std::vector<Violation> ref_violations;
    const LegOutcome ref = RunLeg(scenario, ref_inst, /*workers=*/1,
                                  /*with_faults=*/false, /*ckpt=*/nullptr,
                                  &ref_violations, false);
    Annotate(out, std::move(ref_violations), "fault-free reference");

    TopologyInstance inst = BuildTopology(scenario.topology);
    telemetry::Registry ckpt_registry;
    rts::JobCheckpointer ckpt(*inst.cluster, *inst.persistent_device, &ckpt_registry);
    {
      std::vector<Violation> a_violations;
      (void)RunLeg(scenario, inst, /*workers=*/1, /*with_faults=*/true, &ckpt,
                   &a_violations, false);
      Annotate(out, std::move(a_violations), "restart phase A (faulted)");
    }
    // Phase B starts on a healthy cluster, whatever the schedule left behind.
    RecoverAll(*inst.cluster, scenario.faults,
               EligibleTargets(*inst.cluster, inst.persistent_device));
    std::vector<Violation> b_violations;
    const LegOutcome b = RunLeg(scenario, inst, /*workers=*/1,
                                /*with_faults=*/false, &ckpt, &b_violations, false);
    Annotate(out, std::move(b_violations), "restart phase B (restored)");
    if (ref.ran && b.ran && b.semantic != ref.semantic) {
      out->push_back({kInvRestartEquivalence,
                      "restored outputs differ from fault-free run\n" + ref.semantic +
                          "--- vs ---\n" + b.semantic});
    }
  }

  // --- open-loop serving differential (fault-free): arrival-driven
  // admission, WFQ ordering, and shedding must be exactly as deterministic
  // as the closed batch — same decisions, fingerprints, outputs, and stats
  // at every worker count.
  if (scenario.serving.enabled && !scenario.jobs.empty() &&
      !scenario.serving.tenants.empty()) {
    std::optional<LegOutcome> sbase;
    int sbase_workers = 0;
    for (const int workers : scenario.worker_counts) {
      TopologyInstance inst = BuildTopology(scenario.topology);
      std::vector<Violation> leg_violations;
      const LegOutcome leg = RunServingLeg(scenario, inst, workers, &leg_violations);
      Annotate(out, std::move(leg_violations),
               "open-loop workers=" + std::to_string(workers));
      if (!leg.ran) {
        continue;
      }
      if (!sbase) {
        sbase = leg;
        sbase_workers = workers;
        continue;
      }
      const std::string vs = "open-loop workers=" + std::to_string(workers) +
                             " vs workers=" + std::to_string(sbase_workers);
      if (leg.fingerprint != sbase->fingerprint) {
        out->push_back(
            {kInvDeterminism, vs + ": admission/report fingerprints differ"});
      }
      if (leg.semantic != sbase->semantic) {
        out->push_back({kInvDeterminism, vs + ": output bytes differ\n" +
                                             sbase->semantic + "--- vs ---\n" +
                                             leg.semantic});
      }
      const std::string stats_diff = DiffStats(sbase->stats, leg.stats);
      if (!stats_diff.empty()) {
        out->push_back({kInvDeterminism, vs + ": stats differ: " + stats_diff});
      }
      if (leg.attribution != sbase->attribution) {
        out->push_back({kInvAttribution,
                        vs + ": critical-path attribution differs"});
      }
      if (leg.wss != sbase->wss) {
        out->push_back({kInvWss, vs + ": MRC/WSS fingerprints differ"});
      }
    }
  }
  return result;
}

}  // namespace memflow::testing
