// Copyright (c) memflow authors. MIT license.

#include "testing/oracle.h"

#include <cmath>
#include <string>

#include "telemetry/analyze/analyzer.h"

namespace memflow::testing {
namespace {

void Add(std::vector<Violation>* out, const char* invariant, std::string message) {
  out->push_back({invariant, std::move(message)});
}

// Counter value of `family` summed over all series matching `label` ==
// `value` (empty label = every series). Missing families read as 0: the
// runtime registers its instruments eagerly, so absence only happens when the
// caller wired a different registry — which the equality checks will flag.
std::uint64_t CounterSum(const telemetry::MetricsSnapshot& snap, const std::string& family,
                         const std::string& label = "", const std::string& value = "") {
  std::uint64_t sum = 0;
  for (const telemetry::FamilySnapshot& f : snap.families) {
    if (f.name != family) {
      continue;
    }
    for (const telemetry::SeriesSnapshot& s : f.series) {
      bool match = label.empty();
      for (const auto& [k, v] : s.labels) {
        if (k == label && v == value) {
          match = true;
        }
      }
      if (match) {
        sum += s.counter;
      }
    }
  }
  return sum;
}

std::uint64_t HistogramCount(const telemetry::MetricsSnapshot& snap,
                             const std::string& family) {
  std::uint64_t count = 0;
  for (const telemetry::FamilySnapshot& f : snap.families) {
    if (f.name == family) {
      for (const telemetry::SeriesSnapshot& s : f.series) {
        count += s.count;
      }
    }
  }
  return count;
}

void ExpectEq(std::vector<Violation>* out, std::uint64_t got, std::uint64_t want,
              const std::string& what) {
  if (got != want) {
    Add(out, kInvCounterConsistency,
        what + ": got " + std::to_string(got) + ", want " + std::to_string(want));
  }
}

}  // namespace

DeviceUsage CaptureDeviceUsage(const simhw::Cluster& cluster) {
  DeviceUsage usage(cluster.num_memory_devices(), 0);
  for (const simhw::MemoryDeviceId id : cluster.AllMemoryDevices()) {
    usage[id.value] = cluster.memory(id).used();
  }
  return usage;
}

void ResetPeakUsage(simhw::Cluster& cluster) {
  for (const simhw::MemoryDeviceId id : cluster.AllMemoryDevices()) {
    cluster.memory(id).ResetPeakUsed();
  }
}

std::string Fingerprint(const rts::JobReport& report) {
  // Status *codes*, not messages: error text may embed region ids, which are
  // the one divergence the executor permits across worker counts.
  std::string out = report.name + "@" + std::to_string(report.finished.ns) +
                    " status=" + std::to_string(static_cast<int>(report.status.code())) + "\n";
  for (const rts::TaskReport& t : report.tasks) {
    out += t.name + " dev=" + std::to_string(t.device.value) +
           " start=" + std::to_string(t.start.ns) +
           " finish=" + std::to_string(t.finish.ns) +
           " dur=" + std::to_string(t.duration.ns) +
           " handover=" + std::to_string(t.handover_cost.ns) +
           " zc=" + (t.zero_copy_handover ? "1" : "0") +
           " attempts=" + std::to_string(t.attempts) +
           " st=" + std::to_string(static_cast<int>(t.status.code())) + "\n";
  }
  return out;
}

void CheckPostRun(rts::Runtime& rt, const std::vector<dataflow::JobId>& jobs,
                  const OracleScope& scope, std::vector<Violation>* out) {
  // --- byte conservation: every byte a device reports in use (beyond the
  // baseline) is accounted for by exactly the live regions the manager says
  // live there. Holds across faults: a failed device loses contents but
  // keeps its allocator bookkeeping.
  const simhw::Cluster& cluster = rt.cluster();
  for (const simhw::MemoryDeviceId id : cluster.AllMemoryDevices()) {
    if (scope.exclude_device && id == *scope.exclude_device) {
      continue;
    }
    std::uint64_t extent_sum = 0;
    for (const region::RegionId r : rt.regions().RegionsOn(id)) {
      const auto extent = rt.regions().ExtentOfForTest(r);
      if (extent.ok()) {
        extent_sum += extent->size;
      }
    }
    const std::uint64_t baseline =
        id.value < scope.baseline.size() ? scope.baseline[id.value] : 0;
    const std::uint64_t used = cluster.memory(id).used();
    if (used < baseline || extent_sum != used - baseline) {
      Add(out, kInvByteConservation,
          "device " + cluster.memory(id).name() + ": live extents sum to " +
              std::to_string(extent_sum) + " bytes but used()-baseline is " +
              std::to_string(used) + "-" + std::to_string(baseline));
    }
  }

  // --- counter consistency: RuntimeStats, the telemetry registry, and the
  // job reports must tell one story.
  const rts::RuntimeStats& stats = rt.stats();
  const telemetry::MetricsSnapshot snap = rt.metrics().Snapshot();
  ExpectEq(out, CounterSum(snap, "rts_jobs_submitted_total"), stats.jobs_submitted,
           "rts_jobs_submitted_total vs stats.jobs_submitted");
  ExpectEq(out, CounterSum(snap, "rts_jobs_total", "result", "completed"),
           stats.jobs_completed, "rts_jobs_total{completed} vs stats");
  ExpectEq(out, CounterSum(snap, "rts_jobs_total", "result", "failed"), stats.jobs_failed,
           "rts_jobs_total{failed} vs stats");
  ExpectEq(out, CounterSum(snap, "rts_jobs_total", "result", "rejected"),
           stats.jobs_rejected, "rts_jobs_total{rejected} vs stats");
  ExpectEq(out, stats.jobs_completed + stats.jobs_failed + stats.jobs_rejected,
           stats.jobs_submitted, "job outcomes vs submissions");
  ExpectEq(out, CounterSum(snap, "rts_task_retries_total"), stats.task_retries,
           "rts_task_retries_total vs stats.task_retries");
  ExpectEq(out, CounterSum(snap, "rts_handovers_total", "kind", "zero_copy"),
           stats.zero_copy_handovers, "rts_handovers_total{zero_copy} vs stats");
  ExpectEq(out, CounterSum(snap, "rts_handovers_total", "kind", "copied"),
           stats.copied_handovers, "rts_handovers_total{copied} vs stats");
  ExpectEq(out, CounterSum(snap, "rts_tasks_executed_total"), stats.tasks_executed,
           "sum(rts_tasks_executed_total{device}) vs stats.tasks_executed");
  ExpectEq(out, HistogramCount(snap, "rts_task_duration_ns"), stats.tasks_executed,
           "rts_task_duration_ns count vs stats.tasks_executed");
  // Every completion had a dispatch, every retry implies an extra one.
  const std::uint64_t dispatches = HistogramCount(snap, "rts_task_queue_wait_ns");
  if (dispatches < stats.tasks_executed + stats.task_retries) {
    Add(out, kInvCounterConsistency,
        "rts_task_queue_wait_ns counted " + std::to_string(dispatches) +
            " dispatches < tasks_executed+retries = " +
            std::to_string(stats.tasks_executed + stats.task_retries));
  }
  // At quiescence no device may still claim queued tasks.
  for (const telemetry::FamilySnapshot& f : snap.families) {
    if (f.name != "rts_device_queue_depth") {
      continue;
    }
    for (const telemetry::SeriesSnapshot& s : f.series) {
      if (s.gauge != 0) {
        Add(out, kInvCounterConsistency,
            "rts_device_queue_depth nonzero after RunToCompletion: " +
                std::to_string(s.gauge));
      }
    }
  }

  // --- report sanity + ownership-divergence classification.
  for (const dataflow::JobId id : jobs) {
    const rts::JobReport& report = rt.report(id);
    if (!report.status.ok() &&
        report.status.ToString().find("ownership cross-check failed") != std::string::npos) {
      Add(out, kInvOwnershipDivergence, "job " + report.name + ": " + report.status.ToString());
    }
    for (const rts::TaskReport& t : report.tasks) {
      if (!t.status.ok() &&
          t.status.ToString().find("ownership cross-check failed") != std::string::npos) {
        Add(out, kInvOwnershipDivergence,
            "job " + report.name + " task " + t.name + ": " + t.status.ToString());
      }
      if (t.attempts == 0) {
        continue;  // never dispatched (job failed upstream)
      }
      if (t.finish < t.start) {
        Add(out, kInvReportSanity,
            "job " + report.name + " task " + t.name + ": finish " +
                std::to_string(t.finish.ns) + " < start " + std::to_string(t.start.ns));
      }
      if (t.duration.ns < 0) {
        Add(out, kInvReportSanity,
            "job " + report.name + " task " + t.name + ": negative duration");
      }
      if (t.attempts < 0 || t.attempts > scope.max_task_attempts) {
        Add(out, kInvReportSanity,
            "job " + report.name + " task " + t.name + ": " + std::to_string(t.attempts) +
                " attempts, max is " + std::to_string(scope.max_task_attempts));
      }
    }
    if (report.status.ok() && report.finished < report.submitted) {
      Add(out, kInvReportSanity, "job " + report.name + " finished before it was submitted");
    }
  }
}

void CheckPostRelease(rts::Runtime& rt, const OracleScope& scope,
                      std::vector<Violation>* out) {
  const std::vector<region::RegionId> live = rt.regions().LiveRegions();
  if (!live.empty()) {
    std::string ids;
    for (const region::RegionId r : live) {
      ids += (ids.empty() ? "" : ",") + std::to_string(r.value);
    }
    Add(out, kInvRegionLeak,
        std::to_string(live.size()) + " region(s) leaked after release: ids " + ids);
  }
  const simhw::Cluster& cluster = rt.cluster();
  for (const simhw::MemoryDeviceId id : cluster.AllMemoryDevices()) {
    if (scope.exclude_device && id == *scope.exclude_device) {
      continue;
    }
    const std::uint64_t baseline =
        id.value < scope.baseline.size() ? scope.baseline[id.value] : 0;
    const std::uint64_t used = cluster.memory(id).used();
    if (used != baseline) {
      Add(out, kInvRegionLeak,
          "device " + cluster.memory(id).name() + " still holds " + std::to_string(used) +
              " bytes, baseline " + std::to_string(baseline));
    }
  }
}

std::string CheckAttribution(rts::Runtime& rt, const std::vector<dataflow::JobId>& jobs,
                             std::vector<Violation>* out) {
  namespace analyze = telemetry::analyze;
  std::string fingerprint;
  for (const dataflow::JobId id : jobs) {
    const rts::JobReport& report = rt.report(id);
    auto profile = analyze::AnalyzeJob(rt.tracer(), id.value);
    if (!profile.ok()) {
      Add(out, kInvAttribution,
          "job " + report.name + ": profile unavailable: " + profile.status().ToString());
      continue;
    }
    if (profile->makespan.ns != report.Makespan().ns) {
      Add(out, kInvAttribution,
          "job " + report.name + ": traced makespan " +
              std::to_string(profile->makespan.ns) + "ns != reported " +
              std::to_string(report.Makespan().ns) + "ns");
    }
    if (profile->attribution.Sum().ns != report.Makespan().ns) {
      Add(out, kInvAttribution,
          "job " + report.name + ": attribution sums to " +
              std::to_string(profile->attribution.Sum().ns) + "ns, makespan is " +
              std::to_string(report.Makespan().ns) + "ns");
    }
    if (report.status.ok() && profile->dropped_events == 0) {
      if (!profile->complete) {
        Add(out, kInvAttribution,
            "job " + report.name +
                ": successful fully-traced job reconstructed incomplete");
      }
      if (profile->attribution.unattributed.ns != 0) {
        Add(out, kInvAttribution,
            "job " + report.name + ": " +
                std::to_string(profile->attribution.unattributed.ns) +
                "ns of a successful job unattributed");
      }
      if (profile->critical_path.empty() && !report.tasks.empty()) {
        Add(out, kInvAttribution, "job " + report.name + ": empty critical path");
      }
    }
    fingerprint += analyze::AttributionFingerprint(*profile) + "\n";
  }
  // Placement explainability half of the contract: every region still alive
  // (retained job outputs at this point) must rank at least its own device.
  for (const region::RegionId r : rt.regions().LiveRegions()) {
    auto explain = rt.ExplainPlacement(r);
    if (!explain.ok()) {
      Add(out, kInvAttribution,
          "region " + std::to_string(r.value) +
              ": ExplainPlacement failed: " + explain.status().ToString());
    } else if (explain->candidates.empty()) {
      Add(out, kInvAttribution,
          "region " + std::to_string(r.value) + ": empty placement explanation");
    }
  }
  return fingerprint;
}

void CheckMhp(rts::Runtime& rt, const std::vector<dataflow::JobId>& jobs,
              const OracleScope& scope, std::vector<Violation>* out) {
  // --- dynamic ⊆ static: every pair that shared a parallel batch must be in
  // the predicted MHP set. An empty verify report (kOff runtimes) has
  // num_tasks == 0 and is skipped — there is no prediction to validate.
  bool all_bounds_computed = true;
  for (const dataflow::JobId id : jobs) {
    const analysis::Report& rep = rt.VerifyReportOf(id);
    auto job = rt.GetJob(id);
    if (!job.ok() || rep.mhp().num_tasks != (*job)->num_tasks()) {
      all_bounds_computed = false;
      continue;
    }
    const analysis::MhpSummary& mhp = rep.mhp();
    for (const auto& [a, b] : rt.ObservedConcurrentPairs(id)) {
      if (!mhp.MayRunConcurrently(a, b)) {
        Add(out, kInvMhp,
            "job " + rt.report(id).name + ": tasks " + std::to_string(a.value) + " and " +
                std::to_string(b.value) +
                " shared a parallel batch outside the predicted MHP set");
      }
    }
    if (!rep.capacity().computed) {
      all_bounds_computed = false;
    }
  }
  if (rt.stats().mhp_divergences != 0) {
    Add(out, kInvMhp,
        "executor MHP cross-check tripped " + std::to_string(rt.stats().mhp_divergences) +
            " time(s)");
  }

  // --- observed peak ⊆ static bound: each device's high-water mark above the
  // leg baseline must fit under the sum of the admitted jobs' per-device
  // capacity bounds. Only meaningful when every job carries a bound — a
  // missing bound (kOff, or a topology-free Verify) makes the sum unsound.
  if (!all_bounds_computed) {
    return;
  }
  const simhw::Cluster& cluster = rt.cluster();
  for (const simhw::MemoryDeviceId id : cluster.AllMemoryDevices()) {
    if (scope.exclude_device && id == *scope.exclude_device) {
      continue;
    }
    if (!cluster.memory(id).profile().allocatable) {
      continue;
    }
    std::uint64_t bound = 0;
    for (const dataflow::JobId jid : jobs) {
      const analysis::CapacityBound& cap = rt.VerifyReportOf(jid).capacity();
      if (id.value < cap.peak_device_bytes.size()) {
        bound += cap.peak_device_bytes[id.value];
      }
    }
    const std::uint64_t baseline =
        id.value < scope.baseline.size() ? scope.baseline[id.value] : 0;
    const std::uint64_t peak = cluster.memory(id).peak_used();
    if (peak > baseline && peak - baseline > bound) {
      Add(out, kInvMhp,
          "device " + cluster.memory(id).name() + ": observed peak " +
              std::to_string(peak - baseline) + " bytes above baseline exceeds static bound " +
              std::to_string(bound));
    }
  }
}

void CheckServing(const rts::ServingLayer& serving, rts::Runtime& rt,
                  std::vector<Violation>* out) {
  const telemetry::MetricsSnapshot snap = rt.metrics().Snapshot();

  // Per-tenant tallies recomputed from the served-job log, to cross-check
  // against the layer's own running counters.
  std::vector<std::uint64_t> log_completed(serving.num_tenants(), 0);
  std::vector<std::uint64_t> log_failed(serving.num_tenants(), 0);
  for (const rts::ServedJob& sj : serving.served()) {
    if (sj.tenant >= serving.num_tenants()) {
      Add(out, kInvSlo, "served-job log names unknown tenant " +
                            std::to_string(sj.tenant));
      continue;
    }
    (sj.ok ? log_completed : log_failed)[sj.tenant]++;
    // The SLO contract: a job the predictor admitted for a deadline-carrying
    // tenant must not *successfully* finish past its deadline — a late job
    // should have been rejected or shed at admission instead.
    if (sj.ok && sj.deadline.ns > 0 && (sj.finished - sj.arrival) > sj.deadline) {
      Add(out, kInvSlo,
          "tenant " + serving.config(sj.tenant).name + " job " +
              std::to_string(sj.job.value) + " admitted but finished " +
              std::to_string((sj.finished - sj.arrival).ns) +
              "ns after arrival, deadline was " + std::to_string(sj.deadline.ns) +
              "ns and no shed/reject was recorded");
    }
  }

  for (std::size_t t = 0; t < serving.num_tenants(); ++t) {
    const rts::TenantStats& stats = serving.stats(t);
    const std::string& name = serving.config(t).name;
    const auto slo_eq = [&](std::uint64_t got, std::uint64_t want,
                            const std::string& what) {
      if (got != want) {
        Add(out, kInvSlo,
            "tenant " + name + " " + what + ": got " + std::to_string(got) +
                ", want " + std::to_string(want));
      }
    };
    slo_eq(stats.admitted + stats.Rejections(), stats.arrived,
           "admitted+rejections vs arrived");
    slo_eq(stats.completed + stats.failed, stats.admitted,
           "terminal outcomes vs admitted (quiescence)");
    slo_eq(serving.inflight(t), 0, "inflight at quiescence");
    slo_eq(log_completed[t], stats.completed, "served-log completions vs stats");
    slo_eq(log_failed[t], stats.failed, "served-log failures vs stats");
    // The telemetry mirror (serving_jobs_total{tenant, outcome}) must agree
    // with the in-memory stats — one story, like the rts_jobs_* families.
    const auto counter = [&](const char* outcome) {
      std::uint64_t sum = 0;
      for (const telemetry::FamilySnapshot& f : snap.families) {
        if (f.name != "serving_jobs_total") {
          continue;
        }
        for (const telemetry::SeriesSnapshot& s : f.series) {
          bool tenant_match = false, outcome_match = false;
          for (const auto& [k, v] : s.labels) {
            tenant_match = tenant_match || (k == "tenant" && v == name);
            outcome_match = outcome_match || (k == "outcome" && v == outcome);
          }
          if (tenant_match && outcome_match) {
            sum += s.counter;
          }
        }
      }
      return sum;
    };
    slo_eq(counter(rts::kServeAdmit), stats.admitted, "telemetry admitted");
    slo_eq(counter(rts::kServeRejectQuota), stats.rejected_quota,
           "telemetry reject-quota");
    slo_eq(counter(rts::kServeRejectSlo), stats.rejected_slo, "telemetry reject-slo");
    slo_eq(counter(rts::kServeRejectInfeasible), stats.rejected_infeasible,
           "telemetry reject-infeasible");
    slo_eq(counter(rts::kServeShedBackpressure), stats.shed, "telemetry shed");
    slo_eq(counter("completed"), stats.completed, "telemetry completed");
    slo_eq(counter("failed"), stats.failed, "telemetry failed");
  }
}

void CheckFairShare(const rts::ServingLayer& serving, SimTime until,
                    double tolerance, std::vector<Violation>* out) {
  double total_work = 0.0, total_weight = 0.0;
  std::vector<double> work(serving.num_tenants(), 0.0);
  for (const rts::ServedJob& sj : serving.served()) {
    if (sj.finished > until) {
      continue;  // outside the saturated window the caller vouches for
    }
    if (sj.ok && sj.tenant < work.size()) {
      work[sj.tenant] += static_cast<double>(sj.work.ns);
      total_work += static_cast<double>(sj.work.ns);
    }
  }
  for (std::size_t t = 0; t < serving.num_tenants(); ++t) {
    total_weight += serving.config(t).weight;
  }
  if (total_work <= 0.0 || total_weight <= 0.0) {
    Add(out, kInvFairness, "no completed work to audit fairness over");
    return;
  }
  for (std::size_t t = 0; t < serving.num_tenants(); ++t) {
    const double share = work[t] / total_work;
    const double want = serving.config(t).weight / total_weight;
    if (share < want - tolerance || share > want + tolerance) {
      Add(out, kInvFairness,
          "tenant " + serving.config(t).name + " completed-work share " +
              std::to_string(share) + " strays more than " +
              std::to_string(tolerance) + " from its weight share " +
              std::to_string(want));
    }
  }
}

std::string CheckWss(rts::Runtime& rt, std::vector<Violation>* out) {
  const telemetry::AccessProfiler& prof = rt.regions().access_profiler();

  // Counter algebra (ladder + cold == sampled, device/latency scopes
  // partition global, MRC monotone non-increasing) — computed by the
  // profiler itself so the audit stays next to the data structures it reads.
  for (const std::string& problem : prof.SelfCheck()) {
    Add(out, kInvWss, "access profiler self-check: " + problem);
  }

  // Cross-check the sampled, epoch-quantized MRC against an exact LRU replay
  // over the recorded chunk trace. Only meaningful when the trace covers
  // every sampled access: an untruncated recording with zero drops.
  const std::vector<std::uint64_t> trace = prof.RecordedChunkKeys();
  if (!trace.empty() && !prof.recording_truncated() && prof.dropped_samples() == 0 &&
      trace.size() >= 64) {
    if (trace.size() != prof.sampled_accesses()) {
      Add(out, kInvWss,
          "recorded trace length " + std::to_string(trace.size()) +
              " != sampled accesses " + std::to_string(prof.sampled_accesses()));
    }
    const std::vector<double> exact =
        telemetry::ExactMissRatios(trace, telemetry::kMrcPoints);
    const telemetry::MissRatioCurve curve = prof.GlobalCurve();
    double mae = 0.0;
    for (int i = 0; i < telemetry::kMrcPoints; ++i) {
      mae += std::abs(curve.miss_ratio[static_cast<std::size_t>(i)] -
                      exact[static_cast<std::size_t>(i)]);
    }
    mae /= telemetry::kMrcPoints;
    if (mae > kWssMrcTolerance) {
      Add(out, kInvWss,
          "sampled MRC strays from exact LRU reference: MAE " +
              std::to_string(mae) + " > " + std::to_string(kWssMrcTolerance) +
              " over " + std::to_string(trace.size()) + " sampled accesses");
    }
  }

  // Samples dropped on table overflow make the aggregates depend on arrival
  // order, so the fingerprint is no longer comparable across worker counts.
  if (prof.dropped_samples() > 0) {
    return "wss:overflow";
  }
  return prof.Fingerprint();
}

}  // namespace memflow::testing
