// Copyright (c) memflow authors. MIT license.
//
// Greedy scenario shrinking (DESIGN.md §10). Given a failing scenario and a
// predicate that re-runs it, Minimize() repeatedly tries structural
// simplifications — drop a job, a fault, a task, an edge; collapse the worker
// sweep; disable the restart check — keeping each change only if the scenario
// still fails. Every simplification preserves admissibility (removing tasks
// or edges only removes verifier constraints), so shrunken scenarios replay
// through the same pipeline. The predicate evaluation count is bounded:
// minimization trades completeness for a quick, readable repro.

#ifndef MEMFLOW_TESTING_MINIMIZE_H_
#define MEMFLOW_TESTING_MINIMIZE_H_

#include <functional>

#include "testing/scenario.h"

namespace memflow::testing {

// Returns true if the (shrunken) scenario still exhibits the failure.
using ScenarioPredicate = std::function<bool(const Scenario&)>;

Scenario Minimize(Scenario failing, const ScenarioPredicate& still_fails,
                  int max_evals = 64);

}  // namespace memflow::testing

#endif  // MEMFLOW_TESTING_MINIMIZE_H_
