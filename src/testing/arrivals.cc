// Copyright (c) memflow authors. MIT license.

#include "testing/arrivals.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/hash.h"

namespace memflow::testing {

namespace {

// Exponential gap in whole nanoseconds, floored at 1 so streams are strictly
// increasing (two arrivals at one instant would make the merge order depend
// on tenant enumeration, not on time).
std::int64_t ExpGapNs(Rng& rng, double rate_per_sec) {
  MEMFLOW_CHECK(rate_per_sec > 0.0);
  const double mean_ns = 1e9 / rate_per_sec;
  const double gap = rng.Exponential(mean_ns);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(gap)));
}

}  // namespace

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kTrace:
      return "trace";
  }
  return "unknown";
}

ArrivalGenerator::ArrivalGenerator(ArrivalSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  if (spec_.kind == ArrivalKind::kTrace) {
    MEMFLOW_CHECK_MSG(!spec_.trace.empty(), "trace arrivals need offsets");
    MEMFLOW_CHECK_MSG(spec_.trace.back() < spec_.trace_period,
                      "trace offsets must fit inside the period");
    for (std::size_t i = 1; i < spec_.trace.size(); ++i) {
      MEMFLOW_CHECK_MSG(spec_.trace[i - 1] < spec_.trace[i],
                        "trace offsets must be strictly increasing");
    }
  }
}

SimTime ArrivalGenerator::NextPoisson(double rate_per_sec) {
  last_ = last_ + SimDuration::Nanos(ExpGapNs(rng_, rate_per_sec));
  return last_;
}

SimTime ArrivalGenerator::NextBursty() {
  if (!state_initialized_) {
    state_initialized_ = true;
    in_burst_ = false;
    state_until_ =
        last_ + SimDuration::Nanos(std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(std::llround(
                           rng_.Exponential(static_cast<double>(spec_.mean_calm.ns))))));
  }
  // Draw gaps from the current state's rate; when a gap would cross the state
  // boundary, jump to the boundary, flip states, and redraw (memoryless, so
  // discarding the partial gap preserves the process).
  for (;;) {
    const double rate = in_burst_ ? spec_.rate_per_sec * spec_.burst_multiplier
                                  : spec_.rate_per_sec;
    const SimTime candidate = last_ + SimDuration::Nanos(ExpGapNs(rng_, rate));
    if (candidate <= state_until_) {
      last_ = candidate;
      return last_;
    }
    last_ = state_until_;
    in_burst_ = !in_burst_;
    const SimDuration mean_sojourn = in_burst_ ? spec_.mean_burst : spec_.mean_calm;
    state_until_ =
        last_ + SimDuration::Nanos(std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(std::llround(
                           rng_.Exponential(static_cast<double>(mean_sojourn.ns))))));
  }
}

SimTime ArrivalGenerator::NextTrace() {
  const SimTime at = SimTime{} +
                     spec_.trace_period * static_cast<std::int64_t>(trace_cycle_) +
                     spec_.trace[trace_index_];
  trace_index_++;
  if (trace_index_ == spec_.trace.size()) {
    trace_index_ = 0;
    trace_cycle_++;
  }
  last_ = at;
  return at;
}

SimTime ArrivalGenerator::Next() {
  count_++;
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
      return NextPoisson(spec_.rate_per_sec);
    case ArrivalKind::kBursty:
      return NextBursty();
    case ArrivalKind::kTrace:
      return NextTrace();
  }
  MEMFLOW_CHECK_MSG(false, "unknown arrival kind");
  __builtin_unreachable();
}

std::uint64_t TenantSeed(std::uint64_t seed, std::size_t tenant) {
  return HashCombine(seed, static_cast<std::uint64_t>(tenant) + 0x7e4a7c15ULL);
}

std::vector<MergedArrival> MergeArrivals(const std::vector<ArrivalSpec>& specs,
                                         std::uint64_t seed, SimTime horizon) {
  std::vector<MergedArrival> merged;
  for (std::size_t tenant = 0; tenant < specs.size(); ++tenant) {
    ArrivalGenerator gen(specs[tenant], TenantSeed(seed, tenant));
    for (;;) {
      const SimTime at = gen.Next();
      if (at > horizon) {
        break;
      }
      merged.push_back({at, tenant});
    }
  }
  // Per-tenant streams are strictly increasing, so (time, tenant) is a total
  // order and the merged stream is independent of enumeration order.
  std::sort(merged.begin(), merged.end(),
            [](const MergedArrival& a, const MergedArrival& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              return a.tenant < b.tenant;
            });
  return merged;
}

}  // namespace memflow::testing
