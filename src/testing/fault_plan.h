// Copyright (c) memflow authors. MIT license.
//
// Seeded fault-schedule generation for deterministic simulation testing
// (DESIGN.md §10). A FaultPlan is a value-type list of fault specs —
// target kind, victim index, fail time, repair delay — generated from a
// single Rng independently of any concrete topology. ApplyPlan() resolves
// the plan against a cluster's *eligible* victims and emits fail/recover
// pairs into a simhw::FaultInjector.
//
// Eligibility keeps scenarios live rather than wedged: the scheduler never
// re-pumps a task queued on a failed compute device, so victims are
// restricted to (a) volatile memory devices (data loss is the interesting
// failure; persistent media additionally backs checkpoints), (b) nodes with
// no compute devices (memory pools, far-memory shelves), and (c) interconnect
// links. The checkpoint device, when one is in use, is excluded so the
// checkpoint catalog's media never rejects a restore.

#ifndef MEMFLOW_TESTING_FAULT_PLAN_H_
#define MEMFLOW_TESTING_FAULT_PLAN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "simhw/fault.h"

namespace memflow::testing {

enum class FaultTargetKind : std::uint8_t {
  kMemoryDevice = 0,
  kMemoryNode,
  kLink,
};

struct FaultSpec {
  FaultTargetKind target = FaultTargetKind::kMemoryDevice;
  // Index into the eligible-victim list of `target`'s kind, reduced modulo
  // the list size at apply time — the plan stays valid (and shrinkable)
  // across topologies with different device counts.
  std::uint32_t victim = 0;
  SimTime fail_at;
  SimDuration repair_after;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
};

struct FaultPlanOptions {
  int max_faults = 4;  // drawn uniformly in [0, max_faults]
  // Faults land in [earliest, horizon]; repairs repair_after later.
  SimTime earliest = SimTime(10'000);        // 10 us
  SimTime horizon = SimTime(1'500'000);      // 1.5 ms
  SimDuration min_repair = SimDuration::Micros(20);
  SimDuration max_repair = SimDuration::Micros(300);
};

FaultPlan GenerateFaultPlan(Rng& rng, const FaultPlanOptions& opts);

// The victims a plan may legally hit on `cluster` (see file comment).
struct FaultTargets {
  std::vector<simhw::MemoryDeviceId> devices;
  std::vector<simhw::NodeId> nodes;
  std::vector<simhw::LinkId> links;
};

FaultTargets EligibleTargets(const simhw::Cluster& cluster,
                             std::optional<simhw::MemoryDeviceId> exclude_device);

// Emits each spec's fail event and its recover event (fail_at + repair_after)
// into `injector`. Specs whose eligible list is empty are skipped.
void ApplyPlan(const FaultPlan& plan, const FaultTargets& targets,
               simhw::FaultInjector& injector);

// Force-recovers every victim the plan can name, whether or not its scheduled
// recovery fired — the restart phase of a differential run must begin on a
// healthy cluster.
void RecoverAll(simhw::Cluster& cluster, const FaultPlan& plan,
                const FaultTargets& targets);

}  // namespace memflow::testing

#endif  // MEMFLOW_TESTING_FAULT_PLAN_H_
