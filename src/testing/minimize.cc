// Copyright (c) memflow authors. MIT license.

#include "testing/minimize.h"

#include <utility>

namespace memflow::testing {
namespace {

// Removes task `idx` from the spec: incident edges go away, higher task
// indices shift down. Stale rewrite/declassify flags on surviving tasks are
// harmless (they only ever relax what the body does, never admissibility).
void DropTask(JobSpec& job, int idx) {
  job.tasks.erase(job.tasks.begin() + idx);
  std::vector<EdgeGen> kept;
  kept.reserve(job.edges.size());
  for (EdgeGen e : job.edges) {
    if (e.from == idx || e.to == idx) {
      continue;
    }
    if (e.from > idx) {
      --e.from;
    }
    if (e.to > idx) {
      --e.to;
    }
    kept.push_back(e);
  }
  job.edges = std::move(kept);
}

}  // namespace

Scenario Minimize(Scenario failing, const ScenarioPredicate& still_fails, int max_evals) {
  int evals = 0;
  const auto try_shrink = [&](Scenario candidate) {
    if (evals >= max_evals) {
      return false;
    }
    ++evals;
    if (!still_fails(candidate)) {
      return false;
    }
    failing = std::move(candidate);
    return true;
  };

  bool progress = true;
  while (progress && evals < max_evals) {
    progress = false;

    // Whole jobs first: the biggest, cheapest wins.
    for (std::size_t i = 0; i < failing.jobs.size() && failing.jobs.size() > 1;) {
      Scenario c = failing;
      c.jobs.erase(c.jobs.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_shrink(std::move(c))) {
        progress = true;
      } else {
        ++i;
      }
    }

    for (std::size_t i = 0; i < failing.faults.specs.size();) {
      Scenario c = failing;
      c.faults.specs.erase(c.faults.specs.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_shrink(std::move(c))) {
        progress = true;
      } else {
        ++i;
      }
    }

    if (failing.worker_counts.size() > 1) {
      Scenario c = failing;
      c.worker_counts = {failing.worker_counts.front()};
      progress = try_shrink(std::move(c)) || progress;
    }
    if (failing.restart_check) {
      Scenario c = failing;
      c.restart_check = false;
      progress = try_shrink(std::move(c)) || progress;
    }

    for (std::size_t j = 0; j < failing.jobs.size(); ++j) {
      for (int t = 0; t < static_cast<int>(failing.jobs[j].tasks.size()) &&
                      failing.jobs[j].tasks.size() > 1;) {
        Scenario c = failing;
        DropTask(c.jobs[j], t);
        if (try_shrink(std::move(c))) {
          progress = true;
        } else {
          ++t;
        }
      }
    }

    for (std::size_t j = 0; j < failing.jobs.size(); ++j) {
      for (std::size_t e = 0; e < failing.jobs[j].edges.size();) {
        Scenario c = failing;
        c.jobs[j].edges.erase(c.jobs[j].edges.begin() + static_cast<std::ptrdiff_t>(e));
        if (try_shrink(std::move(c))) {
          progress = true;
        } else {
          ++e;
        }
      }
    }
  }
  return failing;
}

}  // namespace memflow::testing
