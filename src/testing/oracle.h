// Copyright (c) memflow authors. MIT license.
//
// Invariant oracle for deterministic simulation testing (DESIGN.md §10).
// After every scenario leg the oracle audits the runtime, the region manager,
// the devices, and the telemetry registry against each other. Each invariant
// has a stable id (like the static verifier's rule catalog) so failures are
// greppable and the catalog is documentable:
//
//   sim-region-leak          live regions remain after outputs were released
//   sim-byte-conservation    sum of live extents != device used() delta
//   sim-counter-consistency  telemetry counters disagree with RuntimeStats
//                            or with each other
//   sim-ownership-divergence executor/verifier ownership cross-check tripped
//   sim-report-sanity        malformed JobReport (time travel, attempt count
//                            out of range)
//   sim-determinism          fingerprints/outputs differ across worker counts
//   sim-restart-equivalence  fault+checkpoint-restart outputs differ from the
//                            fault-free run
//   sim-liveness             RunToCompletion wedged or errored
//   sim-admission            a generated (admissible-by-construction) job was
//                            rejected at Submit
//   sim-attribution          trace-reconstructed critical-path attribution
//                            (telemetry/analyze) does not sum exactly to the
//                            makespan, a clean job has unattributed time, a
//                            live region cannot explain its placement, or
//                            attribution differs across worker counts
//   sim-mhp                  static-vs-dynamic concurrency contract
//                            (DESIGN.md §12): a task pair shared a parallel
//                            batch outside the predicted MHP set, or a
//                            device's observed peak bytes exceeded the
//                            static capacity bound
//   sim-slo                  open-loop serving contract (DESIGN.md §15): an
//                            admitted job missed its tenant's declared
//                            deadline without a recorded shed/reject, or the
//                            serving layer's own counters disagree with its
//                            telemetry mirror or its served-job log
//   sim-fairness             under saturation, a tenant's share of completed
//                            work strays further from its weight share than
//                            the declared bound
//   sim-wss                  memory-access observability contract (DESIGN.md
//                            §16): the access profiler's internal counters
//                            disagree with each other (ladder/cold/sampled,
//                            per-device vs global, non-monotone MRC), the
//                            sampled MRC strays beyond tolerance from the
//                            exact LRU reference over the recorded trace, or
//                            the MRC/WSS fingerprint differs across worker
//                            counts
//
// The first five, sim-attribution, sim-mhp, sim-slo, sim-fairness and the
// sim-wss self-checks are checked here; the rest are emitted by the
// differential runner (scenario.h) which owns the cross-run comparisons.

#ifndef MEMFLOW_TESTING_ORACLE_H_
#define MEMFLOW_TESTING_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "rts/runtime.h"
#include "rts/serving.h"

namespace memflow::testing {

inline constexpr char kInvRegionLeak[] = "sim-region-leak";
inline constexpr char kInvByteConservation[] = "sim-byte-conservation";
inline constexpr char kInvCounterConsistency[] = "sim-counter-consistency";
inline constexpr char kInvOwnershipDivergence[] = "sim-ownership-divergence";
inline constexpr char kInvReportSanity[] = "sim-report-sanity";
inline constexpr char kInvDeterminism[] = "sim-determinism";
inline constexpr char kInvRestartEquivalence[] = "sim-restart-equivalence";
inline constexpr char kInvLiveness[] = "sim-liveness";
inline constexpr char kInvAdmission[] = "sim-admission";
inline constexpr char kInvAttribution[] = "sim-attribution";
inline constexpr char kInvMhp[] = "sim-mhp";
inline constexpr char kInvSlo[] = "sim-slo";
inline constexpr char kInvFairness[] = "sim-fairness";
inline constexpr char kInvWss[] = "sim-wss";

struct Violation {
  std::string invariant;  // one of the stable ids above
  std::string message;
};

// Bytes in use per memory device (indexed by MemoryDeviceId::value), captured
// *before* a runtime runs: earlier runtimes on the same cluster may leave
// legitimate residue (retained outputs of a destroyed runtime, checkpoint
// extents), so conservation is asserted as a delta against this baseline.
using DeviceUsage = std::vector<std::uint64_t>;
DeviceUsage CaptureDeviceUsage(const simhw::Cluster& cluster);

// Rebases every memory device's allocation high-water mark to its current
// used(); call right after CaptureDeviceUsage so peak_used() - baseline is
// exactly the leg's own contribution.
void ResetPeakUsage(simhw::Cluster& cluster);

struct OracleScope {
  DeviceUsage baseline;
  // Checkpoint media: the checkpointer allocates raw extents directly on the
  // device (bypassing the RegionManager), so it cannot balance and is skipped.
  std::optional<simhw::MemoryDeviceId> exclude_device;
  int max_task_attempts = 2;
};

// Every observable per-task fact except region ids (the one permitted
// divergence across worker counts) — the determinism comparand.
std::string Fingerprint(const rts::JobReport& report);

// Post-run audit: byte conservation, counter consistency, report sanity,
// ownership-divergence classification. `jobs` are the admitted job ids.
void CheckPostRun(rts::Runtime& rt, const std::vector<dataflow::JobId>& jobs,
                  const OracleScope& scope, std::vector<Violation>* out);

// Post-release audit (after ReleaseJobOutputs on every job): no region may
// outlive its job, and every device must be back at its baseline.
void CheckPostRelease(rts::Runtime& rt, const OracleScope& scope,
                      std::vector<Violation>* out);

// Critical-path attribution audit (DESIGN.md §11), run while the jobs'
// outputs are still live: every finished job's trace-reconstructed profile
// must sum its buckets exactly to the reported makespan; a successful,
// fully-traced job must have zero unattributed time; and every live region
// must return a non-empty ranked placement explanation. Returns a
// deterministic fingerprint of all profiles — the differential runner
// compares it across worker counts.
std::string CheckAttribution(rts::Runtime& rt, const std::vector<dataflow::JobId>& jobs,
                             std::vector<Violation>* out);

// Static-vs-dynamic concurrency & capacity contract (DESIGN.md §12):
// every task pair observed sharing a parallel batch must be in its job's
// statically predicted MHP set, the executor's own cross-check counter must
// be zero, and every device's peak_used() - baseline must stay within the
// sum of the admitted jobs' static per-device capacity bounds. Skipped for
// runtimes that ran with VerifyMode::kOff (no static prediction exists).
void CheckMhp(rts::Runtime& rt, const std::vector<dataflow::JobId>& jobs,
              const OracleScope& scope, std::vector<Violation>* out);

// Open-loop serving audit (DESIGN.md §15), run after an arrival-driven leg
// drained. sim-slo: every admitted job of a deadline-carrying tenant either
// finished within `arrival + deadline` or failed — a *successful* miss means
// the admission predictor let through a job it was contracted to reject or
// shed. Also cross-checks the layer's TenantStats against its served-job log
// and its serving_jobs_total telemetry mirror, and asserts zero in-flight
// jobs at quiescence.
void CheckServing(const rts::ServingLayer& serving, rts::Runtime& rt,
                  std::vector<Violation>* out);

// sim-fairness: over the window [start, until] — which the caller chooses so
// every tenant stays backlogged throughout (WFQ only promises proportional
// service under contention) — each tenant's share of the completed work must
// lie within `tolerance` (absolute) of its weight share. Tenants with no
// completed work in the window count as share 0.
void CheckFairShare(const rts::ServingLayer& serving, SimTime until,
                    double tolerance, std::vector<Violation>* out);

// Maximum mean absolute error allowed between the access profiler's sampled
// miss-ratio curve and the exact LRU reference replayed over the recorded
// chunk trace. The sampled estimator quantizes reuse distances to virtual-
// time epochs (the determinism trade: intra-epoch order is not observable),
// so it is systematically optimistic for reuse within an epoch — the bound
// absorbs that quantization plus SHARDS sampling noise.
inline constexpr double kWssMrcTolerance = 0.20;

// Memory-access observability audit (DESIGN.md §16), run after a leg
// completes and before outputs are re-read. Self-checks the profiler's
// counter algebra (ladder+cold == sampled, device/latency scopes sum to
// global, MRC monotone non-increasing) and — when a recorded trace is
// available, untruncated, and no samples were dropped — cross-checks the
// sampled MRC against ExactMissRatios within kWssMrcTolerance. Returns the
// profiler fingerprint (or a sentinel when samples were dropped); the
// differential runner compares it across worker counts as sim-wss.
std::string CheckWss(rts::Runtime& rt, std::vector<Violation>* out);

}  // namespace memflow::testing

#endif  // MEMFLOW_TESTING_ORACLE_H_
