// Copyright (c) memflow authors. MIT license.

#include "testing/workload.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/status.h"
#include "common/units.h"
#include "dataflow/context.h"

namespace memflow::testing {
namespace {

using dataflow::EdgeMode;
using dataflow::TaskContext;
using dataflow::TaskId;

// Hash of one input region's bytes. Word order matters *within* an input
// (its bytes are a stable function of the producer), but the caller must fold
// the returned values commutatively: ctx.inputs() is ordered by producer
// completion, which is deterministic across worker counts but differs between
// fault-free and checkpoint-restart executions.
std::uint64_t HashWords(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t w : words) {
    h = HashCombine(h, w);
  }
  return h;
}

}  // namespace

dataflow::TaskFn ChecksumBody(TaskGen gen) {
  return [gen](TaskContext& ctx) -> Status {
    // Fold every input into a commutative accumulator (see HashWords).
    std::uint64_t acc = MixU64(gen.salt);
    for (const region::RegionId in : ctx.inputs()) {
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc_in, ctx.OpenAsync(in));
      std::vector<std::uint64_t> data(acc_in.size() / 8);
      if (!data.empty()) {
        acc_in.EnqueueRead(0, data.data(), data.size() * 8);
      }
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration rcost, acc_in.Drain());
      ctx.Charge(rcost);
      acc += MixU64(HashWords(data));
      if (gen.rewrite_exclusive_inputs && !data.empty()) {
        // Write back the bytes just read — idempotent, so a retried or
        // restarted attempt observes identical input. Only exclusive
        // deliveries are writable (writes_input edges guarantee exclusivity;
        // re-check at runtime so fan-in from shared siblings stays read-only).
        MEMFLOW_ASSIGN_OR_RETURN(region::RegionInfo info, ctx.regions().Info(in));
        if (info.state == region::OwnershipState::kExclusive) {
          acc_in.EnqueueWrite(0, data.data(), data.size() * 8);
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration wcost, acc_in.Drain());
          ctx.Charge(wcost);
        }
      }
    }

    // Blind salt writes to the job-wide regions: never read back into the
    // output (Global State survives restarts with whatever a lost attempt
    // already wrote, so outputs must not depend on its contents).
    if (gen.touch_global_state && ctx.global_state().valid()) {
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor gs, ctx.OpenAsync(ctx.global_state()));
      const std::uint64_t slot = gen.salt % std::max<std::uint64_t>(gs.size() / 8, 1);
      gs.EnqueueWrite(slot * 8, &gen.salt, 8);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, gs.Drain());
      ctx.Charge(cost);
    }
    if (gen.touch_global_scratch && ctx.global_scratch().valid()) {
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor sc, ctx.OpenAsync(ctx.global_scratch()));
      const std::uint64_t slot = MixU64(gen.salt) % std::max<std::uint64_t>(sc.size() / 8, 1);
      sc.EnqueueWrite(slot * 8, &gen.salt, 8);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, sc.Drain());
      ctx.Charge(cost);
    }

    if (gen.scratch_bytes > 0) {
      MEMFLOW_ASSIGN_OR_RETURN(region::RegionId s,
                               ctx.AllocatePrivateScratch(gen.scratch_bytes));
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor sacc, ctx.OpenAsync(s));
      std::vector<std::uint64_t> pad(std::min<std::uint64_t>(gen.scratch_bytes / 8, 64),
                                     gen.salt);
      if (!pad.empty()) {
        sacc.EnqueueWrite(0, pad.data(), pad.size() * 8);
        MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, sacc.Drain());
        ctx.Charge(cost);
      }
    }

    ctx.ChargeCompute(gen.base_work +
                      gen.work_per_byte * static_cast<double>(ctx.input_bytes()));

    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(gen.output_bytes));
    MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor oacc, ctx.OpenAsync(out));
    std::vector<std::uint64_t> words(gen.output_bytes / 8);
    for (std::size_t i = 0; i < words.size(); ++i) {
      words[i] = HashCombine(acc, i);
    }
    oacc.EnqueueWrite(0, words.data(), words.size() * 8);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, oacc.Drain());
    ctx.Charge(cost);
    return OkStatus();
  };
}

JobSpec GenerateJobSpec(Rng& rng, const WorkloadOptions& opts, std::string name) {
  JobSpec spec;
  spec.name = std::move(name);
  if (rng.Chance(opts.p_global_state)) {
    spec.global_state_bytes = KiB(4);
  }
  if (rng.Chance(opts.p_global_scratch)) {
    spec.global_scratch_bytes = KiB(64);
  }

  const int n = opts.min_tasks +
                static_cast<int>(rng.Below(
                    static_cast<std::uint64_t>(opts.max_tasks - opts.min_tasks) + 1));
  int shifts = 0;
  while ((64ULL << (shifts + 1)) <= opts.max_chunk_bytes) {
    ++shifts;
  }

  spec.tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    TaskGen t;
    t.name = "t" + std::to_string(i);
    t.salt = rng.Next();
    t.output_bytes = 64ULL << rng.Below(static_cast<std::uint64_t>(shifts) + 1);
    if (rng.Chance(opts.p_scratch)) {
      t.scratch_bytes = KiB(8);
    }
    t.base_work = 1000 + static_cast<double>(rng.Below(50000));
    t.work_per_byte = rng.NextDouble() * 0.05;
    t.parallel_fraction = rng.NextDouble();
    t.confidential = rng.Chance(opts.p_confidential);
    t.persistent = opts.allow_persistent && rng.Chance(opts.p_persistent);
    if (!t.persistent && rng.Chance(opts.p_medium_latency)) {
      t.mem_latency = region::LatencyClass::kMedium;
    }
    // No pins in Global State jobs: admission shares the state region with
    // *every* task coherently, and a pinned kind (e.g. a lone FPGA behind a
    // non-coherent link) may have no coherent path to wherever the state can
    // live — such a job is rejected, not merely re-placed.
    if (spec.global_state_bytes == 0 && !opts.available_compute.empty() &&
        rng.Chance(opts.p_pin_compute)) {
      t.compute_device = opts.available_compute[rng.Below(opts.available_compute.size())];
    }
    if (spec.global_state_bytes > 0 && rng.Chance(0.5)) {
      t.touch_global_state = true;
    }
    if (spec.global_scratch_bytes > 0 && rng.Chance(0.5)) {
      t.touch_global_scratch = true;
    }
    spec.tasks.push_back(std::move(t));
  }

  // Forward edges i -> j (i < j): acyclic by construction.
  const double p_edge = std::min(1.0, opts.edge_factor / static_cast<double>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Chance(p_edge)) {
        spec.edges.push_back({i, j, EdgeMode::kAuto, false});
      }
    }
  }

  // Per-producer edge-mode assignment, under the verifier's rules: kMove and
  // writes_input only when the producer has exactly one data consumer and the
  // delivery is not kShare.
  for (int i = 0; i < n; ++i) {
    std::vector<std::size_t> data_edges;
    for (std::size_t e = 0; e < spec.edges.size(); ++e) {
      if (spec.edges[e].from != i) {
        continue;
      }
      if (rng.Chance(opts.p_control_edge)) {
        spec.edges[e].mode = EdgeMode::kControl;
      } else {
        data_edges.push_back(e);
      }
    }
    if (data_edges.size() == 1) {
      EdgeGen& e = spec.edges[data_edges.front()];
      if (rng.Chance(opts.p_move_edge)) {
        e.mode = EdgeMode::kMove;
      } else if (rng.Chance(opts.p_share_edge)) {
        e.mode = EdgeMode::kShare;
      }
      if (e.mode != EdgeMode::kShare && rng.Chance(opts.p_writes_input)) {
        e.writes_input = true;
        spec.tasks[static_cast<std::size_t>(e.to)].rewrite_exclusive_inputs = true;
      }
    } else {
      for (const std::size_t ei : data_edges) {
        if (rng.Chance(opts.p_share_edge)) {
          spec.edges[ei].mode = EdgeMode::kShare;
        }
      }
    }
  }

  // Declassify fix-up: a non-confidential consumer of a confidential
  // producer's data is a verifier error unless it declares declassifies.
  // Edges go forward, so one pass in index order settles the whole DAG.
  for (const EdgeGen& e : spec.edges) {
    if (e.mode == EdgeMode::kControl) {
      continue;
    }
    const TaskGen& from = spec.tasks[static_cast<std::size_t>(e.from)];
    TaskGen& to = spec.tasks[static_cast<std::size_t>(e.to)];
    if (from.confidential && !to.confidential) {
      to.declassifies = true;
    }
  }
  return spec;
}

dataflow::Job BuildJob(const JobSpec& spec) {
  dataflow::JobOptions jopts;
  jopts.global_state_bytes = spec.global_state_bytes;
  jopts.global_scratch_bytes = spec.global_scratch_bytes;
  dataflow::Job job(spec.name, jopts);
  for (const TaskGen& t : spec.tasks) {
    dataflow::TaskProperties props;
    props.compute_device = t.compute_device;
    props.confidential = t.confidential;
    props.declassifies = t.declassifies;
    props.persistent = t.persistent;
    props.mem_latency = t.mem_latency;
    props.base_work = t.base_work;
    props.work_per_byte = t.work_per_byte;
    props.parallel_fraction = t.parallel_fraction;
    props.output_bytes = t.output_bytes;
    props.scratch_bytes = t.scratch_bytes;
    job.AddTask(t.name, props, ChecksumBody(t));
  }
  for (const EdgeGen& e : spec.edges) {
    dataflow::EdgeOptions eopts;
    eopts.mode = e.mode;
    eopts.writes_input = e.writes_input;
    MEMFLOW_CHECK(job.Connect(TaskId(static_cast<std::uint32_t>(e.from)),
                              TaskId(static_cast<std::uint32_t>(e.to)), eopts)
                      .ok());
  }
  return job;
}

dataflow::Job RandomDag(Rng& rng, int n, const char* name) {
  WorkloadOptions o;
  o.min_tasks = n;
  o.max_tasks = n;
  o.edge_factor = 2.5;
  o.max_chunk_bytes = 64;  // fixed 64-byte chunks, as the stress suite used
  o.p_global_state = 0.5;
  o.p_global_scratch = 0.5;
  o.p_scratch = 0.5;
  o.p_confidential = 0.2;
  o.p_persistent = 0.15;
  o.p_medium_latency = 0.25;
  o.p_control_edge = 0;
  o.p_move_edge = 0;
  o.p_share_edge = 0;
  o.p_writes_input = 0;
  o.p_pin_compute = 0;
  return BuildJob(GenerateJobSpec(rng, o, name));
}

dataflow::TaskFn Producer(std::uint64_t n) {
  return [n](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(n * 8));
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(out));
    std::vector<std::uint64_t> data(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      data[i] = i * 3;
    }
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Write(0, data.data(), n * 8));
    ctx.Charge(cost);
    ctx.ChargeCompute(static_cast<double>(n));
    return OkStatus();
  };
}

dataflow::TaskFn SummingConsumer() {
  return [](TaskContext& ctx) -> Status {
    MEMFLOW_CHECK(!ctx.inputs().empty());
    std::uint64_t sum = 0;
    for (const region::RegionId in : ctx.inputs()) {
      MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(in));
      const std::uint64_t n = acc.size() / 8;
      std::vector<std::uint64_t> data(n);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Read(0, data.data(), n * 8));
      ctx.Charge(cost);
      for (const std::uint64_t v : data) {
        sum += v;
      }
    }
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(8));
    MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc, ctx.OpenSync(out));
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Store(0, sum));
    ctx.Charge(cost);
    return OkStatus();
  };
}

dataflow::TaskFn AsyncProducer(std::uint64_t n) {
  return [n](TaskContext& ctx) -> Status {
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(n * 8));
    MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(out));
    std::vector<std::uint64_t> data(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      data[i] = i * 3;
    }
    acc.EnqueueWrite(0, data.data(), n * 8);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    ctx.Charge(cost);
    ctx.ChargeCompute(static_cast<double>(n));
    return OkStatus();
  };
}

dataflow::TaskFn AsyncSummingConsumer() {
  return [](TaskContext& ctx) -> Status {
    MEMFLOW_CHECK(!ctx.inputs().empty());
    std::uint64_t sum = 0;
    for (const region::RegionId in : ctx.inputs()) {
      MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(in));
      const std::uint64_t n = acc.size() / 8;
      std::vector<std::uint64_t> data(n);
      acc.EnqueueRead(0, data.data(), n * 8);
      MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
      ctx.Charge(cost);
      for (const std::uint64_t v : data) {
        sum += v;
      }
    }
    MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out, ctx.AllocateOutput(8));
    MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(out));
    acc.EnqueueWrite(0, &sum, 8);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    ctx.Charge(cost);
    return OkStatus();
  };
}

dataflow::Job WideJob(const std::string& name, int width) {
  dataflow::Job job(name);
  dataflow::TaskProperties heavy;
  heavy.base_work = 5e4;
  const TaskId src = job.AddTask("src", {}, AsyncProducer(512));
  std::vector<TaskId> mids;
  mids.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    mids.push_back(job.AddTask("mid" + std::to_string(i), heavy, AsyncSummingConsumer()));
    MEMFLOW_CHECK(job.Connect(src, mids.back()).ok());
  }
  const TaskId sink = job.AddTask("sink", {}, AsyncSummingConsumer());
  for (const TaskId t : mids) {
    MEMFLOW_CHECK(job.Connect(t, sink).ok());
  }
  return job;
}

std::vector<std::uint64_t> SequentialTrace(std::uint64_t bytes, std::uint64_t step,
                                           int passes) {
  std::vector<std::uint64_t> trace;
  for (int p = 0; p < passes; ++p) {
    for (std::uint64_t off = 0; off < bytes; off += step) {
      trace.push_back(off);
    }
  }
  return trace;
}

std::vector<std::uint64_t> ZipfTrace(Rng& rng, std::uint64_t chunks,
                                     std::uint64_t chunk_bytes, double theta,
                                     std::size_t n) {
  const ZipfGenerator zipf(chunks, theta);
  std::vector<std::uint64_t> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace.push_back(zipf.Sample(rng) * chunk_bytes);
  }
  return trace;
}

std::vector<std::uint64_t> ScanWithReuseTrace(Rng& rng, std::uint64_t scan_chunks,
                                              std::uint64_t hot_chunks,
                                              std::uint64_t chunk_bytes,
                                              double reuse_p, std::size_t n) {
  std::vector<std::uint64_t> trace;
  trace.reserve(n);
  std::uint64_t cursor = hot_chunks;  // scan region sits above the hot set
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Chance(reuse_p)) {
      trace.push_back(rng.Below(hot_chunks) * chunk_bytes);
    } else {
      trace.push_back(cursor * chunk_bytes);
      cursor = hot_chunks + (cursor + 1 - hot_chunks) % scan_chunks;
    }
  }
  return trace;
}

JobSpec MakeRacyJobSpec() {
  JobSpec spec;
  spec.name = "racy-fanout";
  for (const char* name : {"producer", "writer-a", "writer-b"}) {
    TaskGen t;
    t.name = name;
    t.salt = spec.tasks.size() + 1;
    spec.tasks.push_back(t);
  }
  spec.tasks[1].rewrite_exclusive_inputs = true;
  spec.tasks[2].rewrite_exclusive_inputs = true;
  spec.edges.push_back({0, 1, dataflow::EdgeMode::kAuto, /*writes_input=*/true});
  spec.edges.push_back({0, 2, dataflow::EdgeMode::kAuto, /*writes_input=*/true});
  return spec;
}

JobSpec MakeOvercommittedJobSpec(std::uint64_t chunk_bytes, int width) {
  JobSpec spec;
  spec.name = "overcommitted-fanout";
  TaskGen src;
  src.name = "src";
  src.salt = 1;
  spec.tasks.push_back(src);
  for (int i = 0; i < width; ++i) {
    TaskGen t;
    t.name = "hog" + std::to_string(i);
    t.salt = static_cast<std::uint64_t>(i) + 2;
    t.output_bytes = chunk_bytes;
    spec.tasks.push_back(t);
    spec.edges.push_back({0, i + 1, dataflow::EdgeMode::kShare, /*writes_input=*/false});
  }
  return spec;
}

}  // namespace memflow::testing
