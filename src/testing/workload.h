// Copyright (c) memflow authors. MIT license.
//
// Seeded workload generation for deterministic simulation testing
// (DESIGN.md §10). A JobSpec is a plain-value description of a job DAG —
// tasks with property sheets, salts, and chunk sizes; edges with modes and
// writes_input flags — generated from a single Rng and buildable into a
// dataflow::Job whose task bodies are *pure*: every byte a body writes is a
// function of its salt and its input bytes only, never of wall time, retry
// count, or Global State contents. That purity is what lets the differential
// harness (scenario.h) demand byte-identical outputs across worker counts
// and across checkpoint/restart cycles.
//
// GenerateJobSpec only emits DAGs that are admissible under the static
// verifier's error rules (analysis::Verify + VerifyMode::kEnforce):
//   - kMove edges and writes_input only on exclusive deliveries (sole data
//     consumer, mode kAuto/kMove) — never on fan-out or kShare;
//   - non-confidential consumers of confidential producers declare
//     declassifies;
//   - persistent outputs only when the target topology has persistent media
//     (WorkloadOptions::allow_persistent);
//   - compute pins drawn from WorkloadOptions::available_compute.

#ifndef MEMFLOW_TESTING_WORKLOAD_H_
#define MEMFLOW_TESTING_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataflow/job.h"

namespace memflow::testing {

// One generated task: the property sheet plus the parameters of its
// deterministic checksum body.
struct TaskGen {
  std::string name;
  std::uint64_t salt = 0;
  std::uint64_t output_bytes = 64;   // always > 0 and a multiple of 8
  std::uint64_t scratch_bytes = 0;
  double base_work = 1000;
  double work_per_byte = 0.0;
  double parallel_fraction = 0.5;
  bool confidential = false;
  bool declassifies = false;
  bool persistent = false;
  region::LatencyClass mem_latency = region::LatencyClass::kAny;
  std::optional<simhw::ComputeDeviceKind> compute_device;
  // Body behaviour beyond the property sheet.
  bool touch_global_state = false;    // blind write of the salt (never read back
  bool touch_global_scratch = false;  //   into the output — see file comment)
  // Set iff an incoming edge declares writes_input: the body writes back, in
  // place, the bytes it just read from every *exclusively delivered* input
  // (writes through shared deliveries are a verifier error, and only
  // exclusive ones carry writes_input edges). Writing back the bytes read
  // keeps the rewrite idempotent — a retried or restarted attempt observes
  // identical input bytes.
  bool rewrite_exclusive_inputs = false;
};

struct EdgeGen {
  int from = 0;
  int to = 0;
  dataflow::EdgeMode mode = dataflow::EdgeMode::kAuto;
  bool writes_input = false;
};

// A value-type job description: generable, shrinkable (minimize.h), and
// buildable into a dataflow::Job any number of times.
struct JobSpec {
  std::string name;
  std::uint64_t global_state_bytes = 0;
  std::uint64_t global_scratch_bytes = 0;
  std::vector<TaskGen> tasks;
  std::vector<EdgeGen> edges;
};

struct WorkloadOptions {
  int min_tasks = 4;
  int max_tasks = 10;
  // Expected forward out-degree numerator: P(edge i->j) = edge_factor / n.
  double edge_factor = 2.5;
  // Output chunk sizes are 64 << k, capped here (mixed chunk sizes are part
  // of the scenario space: they change placement and handover decisions).
  std::uint64_t max_chunk_bytes = 16 * kKiB;
  double p_global_state = 0.3;
  double p_global_scratch = 0.3;
  double p_scratch = 0.5;
  double p_confidential = 0.2;
  double p_persistent = 0.15;
  double p_medium_latency = 0.25;
  double p_control_edge = 0.1;
  double p_move_edge = 0.25;
  double p_share_edge = 0.15;
  double p_writes_input = 0.25;
  double p_pin_compute = 0.25;
  // Compute kinds present in the target topology; empty = never pin.
  std::vector<simhw::ComputeDeviceKind> available_compute;
  // False on topologies without persistent media (e.g. the disagg rack),
  // where a persistent task would be rejected as place-unsatisfiable.
  bool allow_persistent = true;
};

// Draws a random admissible JobSpec from `rng`.
JobSpec GenerateJobSpec(Rng& rng, const WorkloadOptions& opts, std::string name);

// Materializes the spec into a runnable job with deterministic bodies.
dataflow::Job BuildJob(const JobSpec& spec);

// The deterministic body of one generated task (exposed for focused tests).
dataflow::TaskFn ChecksumBody(TaskGen gen);

// --- shared fixture builders --------------------------------------------------
//
// The hand-rolled DAG builders formerly duplicated across tests/stress_test.cc
// and tests/rts_test.cc, centralized here so every suite exercises the same
// bodies.

// Random DAG with the stress-test distributions, implemented on the
// generator: n tasks, forward edges with probability 2.5/n, checksum bodies.
dataflow::Job RandomDag(Rng& rng, int n, const char* name);

// Producer writing `n` uint64s (i*3); consumer summing all inputs into an
// 8-byte output. Sync and async variants.
dataflow::TaskFn Producer(std::uint64_t n);
dataflow::TaskFn SummingConsumer();
dataflow::TaskFn AsyncProducer(std::uint64_t n);
dataflow::TaskFn AsyncSummingConsumer();

// One source fanning out to `width` heavy middle tasks that fan back into a
// sink; sink value for AsyncProducer(512) is width * (3 * 511 * 512 / 2).
dataflow::Job WideJob(const std::string& name, int width);

// --- synthetic access traces --------------------------------------------------
//
// Offset streams over one logical region, for driving the access profiler
// (telemetry::AccessProfiler::Note) directly — no runtime needed. Used by
// tests/memaccess_test.cc and bench/bench_memaccess.cpp to compare the
// sampled miss-ratio curve against the exact LRU reference on workloads whose
// shape is known in closed form.

// `passes` full sweeps over [0, bytes) in `step`-byte strides.
std::vector<std::uint64_t> SequentialTrace(std::uint64_t bytes, std::uint64_t step,
                                           int passes);

// `n` Zipf(theta)-distributed chunk picks over `chunks` chunks of
// `chunk_bytes` each; rank 0 is the hottest chunk.
std::vector<std::uint64_t> ZipfTrace(Rng& rng, std::uint64_t chunks,
                                     std::uint64_t chunk_bytes, double theta,
                                     std::size_t n);

// A streaming scan polluted with a hot reuse set: each step advances the scan
// cursor one chunk and, with probability `reuse_p`, interleaves a uniform
// touch of the first `hot_chunks` chunks.
std::vector<std::uint64_t> ScanWithReuseTrace(Rng& rng, std::uint64_t scan_chunks,
                                              std::uint64_t hot_chunks,
                                              std::uint64_t chunk_bytes,
                                              double reuse_p, std::size_t n);

// --- intentionally inadmissible specs -----------------------------------------
//
// Negative fixtures for the static analyzer's self-tests (tools/verify_corpus
// and tests/analysis_mhp_test.cc): specs GenerateJobSpec can never emit, built
// here so the "the analyzer must flag this" direction is exercised with the
// same TaskGen/EdgeGen vocabulary as the admissible corpus.

// A producer fanned out to two unordered consumers that both declare
// writes_input: Verify must report mhp-write-write-race (and the ownership
// pass's own-write-shared-input).
JobSpec MakeRacyJobSpec();

// One source fanned out to `width` unordered consumers each producing
// `chunk_bytes` (multiple of 8). Pick width * chunk_bytes above the target
// topology's total capacity to trigger cap-overcommit, or chunk_bytes above
// every single device to trigger cap-unplaceable.
JobSpec MakeOvercommittedJobSpec(std::uint64_t chunk_bytes, int width);

}  // namespace memflow::testing

#endif  // MEMFLOW_TESTING_WORKLOAD_H_
