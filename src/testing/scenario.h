// Copyright (c) memflow authors. MIT license.
//
// The differential scenario runner (DESIGN.md §10). One uint64 seed expands
// deterministically into a full scenario — topology preset, a batch of
// generated jobs, a fault schedule, worker counts, retry budget, placement
// policy — and RunScenario() executes it differentially:
//
//   * once per worker count in Scenario::worker_counts, asserting
//     fingerprint-equal JobReports, byte-equal outputs, and equal stats
//     (the parallel executor's determinism promise, DESIGN.md §8), with the
//     invariant oracle auditing every leg;
//   * when the topology has persistent media: a fault-free reference run vs.
//     a faulted, checkpointed run that is torn down, recovered, and
//     resubmitted — restored outputs must be byte-identical to the
//     fault-free reference (checkpoint/restart transparency).
//
// Every violation carries the scenario seed; ScenarioResult::ToString()
// prints a single "replay: seed=N" line, and minimize.h shrinks a failing
// scenario before it is reported.

#ifndef MEMFLOW_TESTING_SCENARIO_H_
#define MEMFLOW_TESTING_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rts/placement.h"
#include "rts/serving.h"
#include "simhw/presets.h"
#include "testing/arrivals.h"
#include "testing/fault_plan.h"
#include "testing/oracle.h"
#include "testing/workload.h"

namespace memflow::testing {

enum class TopologyKind : std::uint8_t {
  kCxlHost = 0,     // MakeCxlExpansionHost
  kDisaggRack,      // MakeDisaggRack (no persistent media)
  kMemoryPool,      // MakeMemoryCentricPool
  kTieredHost,      // MakeTieredStorageHost
  kComputeRack,     // MakeComputeCentricRack
};
inline constexpr int kNumTopologyKinds = 5;

const char* TopologyKindName(TopologyKind kind);

// A freshly built preset cluster plus the handles every leg needs. The holder
// keeps whichever preset handle struct owns the cluster alive.
struct TopologyInstance {
  std::shared_ptr<void> holder;
  simhw::Cluster* cluster = nullptr;
  simhw::ComputeDeviceId reader;  // first CPU: used to read outputs back
  std::optional<simhw::MemoryDeviceId> persistent_device;  // checkpoint media
  std::vector<simhw::ComputeDeviceKind> compute_kinds;     // distinct, present
};

TopologyInstance BuildTopology(TopologyKind kind);

// One generated serving tenant: its admission config plus the arrival
// process that drives it (seeded with TenantSeed(scenario seed, index)).
struct ServingTenantGen {
  rts::TenantConfig config;
  ArrivalSpec arrivals;
};

// The open-loop extension of a scenario (DESIGN.md §15): tenants offering a
// continuous stream of the scenario's generated jobs through a ServingLayer,
// on the runtime's virtual timeline, up to `horizon`. Runs as its own
// fault-free differential leg set at every worker count.
struct ServingPlan {
  bool enabled = false;
  std::vector<ServingTenantGen> tenants;
  SimDuration horizon;
};

struct Scenario {
  std::uint64_t seed = 0;
  TopologyKind topology = TopologyKind::kCxlHost;
  std::vector<JobSpec> jobs;
  FaultPlan faults;
  std::vector<int> worker_counts = {1, 2, 8};
  bool restart_check = false;  // only when the topology has persistent media
  int max_task_attempts = 2;
  rts::PlacementPolicyKind policy = rts::PlacementPolicyKind::kCostModel;
  ServingPlan serving;

  // (job, topology, fault-schedule, worker-count) tuples this scenario
  // exercises — what the corpus-size acceptance criterion counts.
  std::size_t CoverageUnits() const;
  std::size_t TotalTasks() const;
};

struct ScenarioOptions {
  int min_jobs = 4;
  int max_jobs = 6;
  WorkloadOptions workload;        // available_compute/allow_persistent are
                                   // overwritten from the chosen topology
  FaultPlanOptions faults;
};

// Expands `seed` into a scenario. Deterministic: same seed, same scenario.
Scenario MakeScenario(std::uint64_t seed, const ScenarioOptions& opts = {});

// Deliberate-bug hooks for mutation-testing the oracle (sim_test verifies a
// seeded bug is caught and reported with a replayable seed).
struct RunHooks {
  // Skip releasing the first completed job's outputs in the first leg: the
  // oracle must flag sim-region-leak.
  bool leak_job_outputs = false;
};

struct ScenarioResult {
  std::uint64_t seed = 0;
  std::size_t coverage = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;  // includes the "replay: seed=N" line
};

ScenarioResult RunScenario(const Scenario& scenario, const RunHooks& hooks = {});

}  // namespace memflow::testing

#endif  // MEMFLOW_TESTING_SCENARIO_H_
