// Copyright (c) memflow authors. MIT license.
//
// Seeded deterministic arrival generators for open-loop serving workloads
// (DESIGN.md §15). A generator is a pure function of (spec, seed): the k-th
// arrival time depends on nothing but those two values, never on wall time or
// on what the runtime did with earlier arrivals — which is what lets the
// differential harness replay an arrival-driven run bit-identically at every
// worker count, and lets a failing open-loop scenario be replayed from its
// seed alone.
//
// Three processes cover the serving test space:
//   * kPoisson — memoryless arrivals at a configured mean rate;
//   * kBursty  — a 2-state Markov-modulated Poisson process (calm/burst) with
//     exponential state sojourns, for flash-crowd admission tests;
//   * kTrace   — cyclic replay of recorded offsets, for exact-schedule
//     fixtures (deadline boundaries, token-refill edges).

#ifndef MEMFLOW_TESTING_ARRIVALS_H_
#define MEMFLOW_TESTING_ARRIVALS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace memflow::testing {

enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,
  kBursty,
  kTrace,
};
inline constexpr int kNumArrivalKinds = 3;

const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;

  // Mean arrival rate (Poisson), or the calm-state rate (bursty).
  double rate_per_sec = 1000.0;

  // Bursty (MMPP-2) only: the burst state arrives at rate_per_sec *
  // burst_multiplier; state sojourns are exponential with these means.
  double burst_multiplier = 8.0;
  SimDuration mean_calm = SimDuration::Millis(2);
  SimDuration mean_burst = SimDuration::Micros(500);

  // Trace only: strictly increasing offsets within one period, replayed
  // cyclically (arrival k = (k / n) * period + trace[k % n]). The last offset
  // must be below `trace_period`.
  std::vector<SimDuration> trace;
  SimDuration trace_period;
};

// Strictly increasing arrival-time stream. Consecutive arrivals are always at
// least 1 ns apart, so an arrival stream is a valid virtual-time event
// schedule under any interleaving.
class ArrivalGenerator {
 public:
  ArrivalGenerator(ArrivalSpec spec, std::uint64_t seed);

  // The next arrival instant; the k-th call returns a pure function of
  // (spec, seed, k).
  SimTime Next();

  std::uint64_t count() const { return count_; }
  const ArrivalSpec& spec() const { return spec_; }

 private:
  SimTime NextPoisson(double rate_per_sec);
  SimTime NextBursty();
  SimTime NextTrace();

  ArrivalSpec spec_;
  Rng rng_;
  SimTime last_;
  std::uint64_t count_ = 0;
  // Bursty state machine.
  bool in_burst_ = false;
  SimTime state_until_;
  bool state_initialized_ = false;
  // Trace cursor.
  std::size_t trace_index_ = 0;
  std::uint64_t trace_cycle_ = 0;
};

// Seed for tenant `tenant` inside a merged multi-tenant stream: a stateless
// mix, so one scenario seed fans out into independent per-tenant streams.
std::uint64_t TenantSeed(std::uint64_t seed, std::size_t tenant);

struct MergedArrival {
  SimTime at;
  std::size_t tenant = 0;
};

// All arrivals of `specs` (tenant i seeded with TenantSeed(seed, i)) up to
// and including `horizon`, merged into one stream ordered by (time, tenant).
// Equal to sorting the tenant-wise streams' interleaving — the merge property
// arrivals_test pins down.
std::vector<MergedArrival> MergeArrivals(const std::vector<ArrivalSpec>& specs,
                                         std::uint64_t seed, SimTime horizon);

}  // namespace memflow::testing

#endif  // MEMFLOW_TESTING_ARRIVALS_H_
