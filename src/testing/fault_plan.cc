// Copyright (c) memflow authors. MIT license.

#include "testing/fault_plan.h"

#include <algorithm>

namespace memflow::testing {

FaultPlan GenerateFaultPlan(Rng& rng, const FaultPlanOptions& opts) {
  FaultPlan plan;
  const int n = static_cast<int>(rng.Below(static_cast<std::uint64_t>(opts.max_faults) + 1));
  plan.specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FaultSpec spec;
    spec.target = static_cast<FaultTargetKind>(rng.Below(3));
    spec.victim = static_cast<std::uint32_t>(rng.Below(1u << 16));
    spec.fail_at =
        SimTime(rng.Range(opts.earliest.ns, opts.horizon.ns));
    spec.repair_after =
        SimDuration(rng.Range(opts.min_repair.ns, opts.max_repair.ns));
    plan.specs.push_back(spec);
  }
  return plan;
}

FaultTargets EligibleTargets(const simhw::Cluster& cluster,
                             std::optional<simhw::MemoryDeviceId> exclude_device) {
  FaultTargets t;
  for (const simhw::MemoryDeviceId id : cluster.AllMemoryDevices()) {
    if (exclude_device && id == *exclude_device) {
      continue;
    }
    if (!cluster.memory(id).profile().persistent) {
      t.devices.push_back(id);
    }
  }
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    const simhw::NodeId id(static_cast<std::uint32_t>(i));
    const simhw::Node& node = cluster.node(id);
    if (!node.compute.empty()) {
      continue;  // crashing compute wedges the scheduler's device queues
    }
    if (exclude_device &&
        std::find(node.memory.begin(), node.memory.end(), *exclude_device) !=
            node.memory.end()) {
      continue;  // node crash would take the checkpoint device down with it
    }
    t.nodes.push_back(id);
  }
  for (std::size_t i = 0; i < cluster.topology().num_links(); ++i) {
    t.links.push_back(simhw::LinkId(static_cast<std::uint32_t>(i)));
  }
  return t;
}

void ApplyPlan(const FaultPlan& plan, const FaultTargets& targets,
               simhw::FaultInjector& injector) {
  for (const FaultSpec& spec : plan.specs) {
    const SimTime recover_at = spec.fail_at + spec.repair_after;
    switch (spec.target) {
      case FaultTargetKind::kMemoryDevice: {
        if (targets.devices.empty()) {
          break;
        }
        const simhw::MemoryDeviceId d = targets.devices[spec.victim % targets.devices.size()];
        injector.FailDeviceAt(spec.fail_at, d);
        injector.RecoverDeviceAt(recover_at, d);
        break;
      }
      case FaultTargetKind::kMemoryNode: {
        if (targets.nodes.empty()) {
          break;
        }
        const simhw::NodeId n = targets.nodes[spec.victim % targets.nodes.size()];
        injector.CrashNodeAt(spec.fail_at, n);
        injector.RecoverNodeAt(recover_at, n);
        break;
      }
      case FaultTargetKind::kLink: {
        if (targets.links.empty()) {
          break;
        }
        const simhw::LinkId l = targets.links[spec.victim % targets.links.size()];
        simhw::FaultEvent fail;
        fail.at = spec.fail_at;
        fail.kind = simhw::FaultEvent::Kind::kLinkFail;
        fail.link = l;
        injector.Add(fail);
        simhw::FaultEvent recover = fail;
        recover.at = recover_at;
        recover.kind = simhw::FaultEvent::Kind::kLinkRecover;
        injector.Add(recover);
        break;
      }
    }
  }
}

void RecoverAll(simhw::Cluster& cluster, const FaultPlan& plan,
                const FaultTargets& targets) {
  for (const FaultSpec& spec : plan.specs) {
    switch (spec.target) {
      case FaultTargetKind::kMemoryDevice:
        if (!targets.devices.empty()) {
          cluster.memory(targets.devices[spec.victim % targets.devices.size()]).Recover();
        }
        break;
      case FaultTargetKind::kMemoryNode:
        if (!targets.nodes.empty()) {
          // Recovering a healthy node is a no-op error we ignore.
          (void)cluster.RecoverNode(targets.nodes[spec.victim % targets.nodes.size()]);
        }
        break;
      case FaultTargetKind::kLink:
        if (!targets.links.empty()) {
          (void)cluster.topology().RecoverLink(
              targets.links[spec.victim % targets.links.size()]);
        }
        break;
    }
  }
}

}  // namespace memflow::testing
