// Copyright (c) memflow authors. MIT license.

#include "dataflow/context.h"

namespace memflow::dataflow {

TaskContext::TaskContext(Init init) : init_(std::move(init)), rng_(init_.rng_seed) {
  MEMFLOW_CHECK(init_.regions != nullptr);
}

void TaskContext::Reset(Init init) {
  MEMFLOW_CHECK(init.regions != nullptr);
  init_ = std::move(init);
  output_ = region::RegionId{};
  scratch_.clear();
  staged_trace_.clear();
  charged_ = SimDuration{};
  rng_ = Rng(init_.rng_seed);
}

simhw::ComputeDeviceKind TaskContext::device_kind() const {
  return init_.regions->cluster().compute(init_.device).kind();
}

std::uint64_t TaskContext::input_bytes() const {
  std::uint64_t total = 0;
  for (const region::RegionId id : init_.inputs) {
    auto info = init_.regions->Info(id);
    if (info.ok()) {
      total += info->size;
    }
  }
  return total;
}

region::Properties TaskContext::ScratchProperties() const {
  region::Properties props = region::Properties::PrivateScratch();
  if (init_.props.mem_latency != region::LatencyClass::kAny) {
    props.latency = init_.props.mem_latency;
  }
  props.confidential = init_.props.confidential;
  return props;
}

region::Properties TaskContext::OutputProperties() const {
  region::Properties props;
  // Output must be reachable by the consumer; latency follows the task's
  // declared requirement, persistence/confidentiality follow its properties.
  // When the output must be persistent, persistence dominates: the latency
  // class is dropped, since no persistent media is load-latency class and a
  // persistent result is a *store*, not working memory (Figure 2's T5 needs
  // low-latency scratch but durable alerts).
  props.latency = init_.props.persistent ? region::LatencyClass::kAny
                                         : init_.props.mem_latency;
  props.persistent = init_.props.persistent;
  props.confidential = init_.props.confidential;
  return props;
}

Result<region::RegionId> TaskContext::AllocatePrivateScratch(std::uint64_t size,
                                                             region::AccessHint hint) {
  region::RegionManager::AllocRequest request;
  request.size = size;
  request.props = ScratchProperties();
  request.hint = hint;
  request.observer = init_.device;
  request.owner = init_.self;
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId id, init_.regions->Allocate(request));
  scratch_.push_back(id);
  return id;
}

Result<region::RegionId> TaskContext::AllocateOutput(std::uint64_t size,
                                                     region::AccessHint hint) {
  if (output_.valid()) {
    return FailedPrecondition("task already allocated its output region");
  }
  region::RegionManager::AllocRequest request;
  request.size = size;
  request.props = OutputProperties();
  request.hint = hint;
  // Key trick (Figure 4): allocate where the *consumer* can use it, so the
  // handover is an ownership transfer, not a copy.
  request.observer = init_.output_observer;
  request.owner = init_.self;
  MEMFLOW_ASSIGN_OR_RETURN(region::RegionId id, init_.regions->Allocate(request));
  output_ = id;
  return id;
}

Result<region::SyncAccessor> TaskContext::OpenSync(region::RegionId id) {
  MEMFLOW_ASSIGN_OR_RETURN(region::SyncAccessor acc,
                           init_.regions->OpenSync(id, init_.self, init_.device));
  for (const auto& [input, state] : init_.expected_input_states) {
    if (input == id) {
      acc.ExpectOwnership(state);
    }
  }
  return acc;
}

Result<region::AsyncAccessor> TaskContext::OpenAsync(region::RegionId id) {
  MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc,
                           init_.regions->OpenAsync(id, init_.self, init_.device));
  for (const auto& [input, state] : init_.expected_input_states) {
    if (input == id) {
      acc.ExpectOwnership(state);
    }
  }
  return acc;
}

void TaskContext::ChargeCompute(double work) {
  const simhw::ComputeDevice& dev = init_.regions->cluster().compute(init_.device);
  charged_ += dev.ComputeTime(work, init_.props.parallel_fraction);
}

}  // namespace memflow::dataflow
