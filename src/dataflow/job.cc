// Copyright (c) memflow authors. MIT license.

#include "dataflow/job.h"

#include <algorithm>
#include <queue>

namespace memflow::dataflow {

Job::Job(std::string name, JobOptions options)
    : name_(std::move(name)), options_(options) {}

TaskId Job::AddTask(std::string name, TaskProperties props, TaskFn fn) {
  const auto id = TaskId(static_cast<std::uint32_t>(tasks_.size()));
  tasks_.push_back(TaskSpec{std::move(name), props, std::move(fn)});
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

std::string_view EdgeModeName(EdgeMode mode) {
  switch (mode) {
    case EdgeMode::kAuto:
      return "auto";
    case EdgeMode::kMove:
      return "move";
    case EdgeMode::kShare:
      return "share";
    case EdgeMode::kControl:
      return "control";
  }
  return "?";
}

Status Job::Connect(TaskId from, TaskId to, EdgeOptions options) {
  if (from.value >= tasks_.size() || to.value >= tasks_.size()) {
    return InvalidArgument("unknown task id");
  }
  if (from == to) {
    return InvalidArgument("self-loop on task '" + tasks_[from.value].name + "'");
  }
  auto& successors = succ_[from.value];
  if (std::find(successors.begin(), successors.end(), to) != successors.end()) {
    return AlreadyExists("duplicate edge " + tasks_[from.value].name + " -> " +
                         tasks_[to.value].name);
  }
  if (options.writes_input && options.mode == EdgeMode::kControl) {
    return InvalidArgument("control edge " + tasks_[from.value].name + " -> " +
                           tasks_[to.value].name + " delivers no data to write");
  }
  successors.push_back(to);
  pred_[to.value].push_back(from);
  edge_options_.emplace(EdgeKey(from, to), options);
  return OkStatus();
}

Status Job::Validate() const {
  if (tasks_.empty()) {
    return InvalidArgument("job '" + name_ + "' has no tasks");
  }
  for (const TaskSpec& spec : tasks_) {
    if (!spec.fn) {
      return InvalidArgument("task '" + spec.name + "' has no body");
    }
  }
  // Kahn's algorithm: if we cannot consume every task, there is a cycle.
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    indegree[i] = pred_[i].size();
  }
  std::queue<std::uint32_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(static_cast<std::uint32_t>(i));
    }
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::uint32_t t = ready.front();
    ready.pop();
    ++seen;
    for (const TaskId s : succ_[t]) {
      if (--indegree[s.value] == 0) {
        ready.push(s.value);
      }
    }
  }
  if (seen != tasks_.size()) {
    return InvalidArgument("job '" + name_ + "' contains a cycle");
  }
  return OkStatus();
}

std::vector<TaskId> Job::TopologicalOrder() const {
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    indegree[i] = pred_[i].size();
  }
  // Min-id tiebreak keeps the order deterministic and source-stable.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const std::uint32_t t = ready.top();
    ready.pop();
    order.push_back(TaskId(t));
    for (const TaskId s : succ_[t]) {
      if (--indegree[s.value] == 0) {
        ready.push(s.value);
      }
    }
  }
  MEMFLOW_CHECK_MSG(order.size() == tasks_.size(), "TopologicalOrder on a cyclic job");
  return order;
}

const TaskSpec& Job::task(TaskId id) const {
  MEMFLOW_CHECK(id.value < tasks_.size());
  return tasks_[id.value];
}

TaskSpec& Job::task(TaskId id) {
  MEMFLOW_CHECK(id.value < tasks_.size());
  return tasks_[id.value];
}

const std::vector<TaskId>& Job::successors(TaskId id) const {
  MEMFLOW_CHECK(id.value < succ_.size());
  return succ_[id.value];
}

const std::vector<TaskId>& Job::predecessors(TaskId id) const {
  MEMFLOW_CHECK(id.value < pred_.size());
  return pred_[id.value];
}

EdgeOptions Job::edge_options(TaskId from, TaskId to) const {
  auto it = edge_options_.find(EdgeKey(from, to));
  MEMFLOW_CHECK_MSG(it != edge_options_.end(), "edge_options on a nonexistent edge");
  return it->second;
}

std::vector<TaskId> Job::DataSuccessors(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(successors(id).size());
  for (const TaskId s : successors(id)) {
    if (edge_options(id, s).mode != EdgeMode::kControl) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<TaskId> Job::DataPredecessors(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(predecessors(id).size());
  for (const TaskId p : predecessors(id)) {
    if (edge_options(p, id).mode != EdgeMode::kControl) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<TaskId> Job::Sources() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (pred_[i].empty()) {
      out.push_back(TaskId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

std::vector<TaskId> Job::Sinks() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (succ_[i].empty()) {
      out.push_back(TaskId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

}  // namespace memflow::dataflow
